// Package o2pc is a from-scratch implementation of the optimistic
// two-phase commit protocol (O2PC) of Levy, Korth and Silberschatz,
// "An Optimistic Commit Protocol for Distributed Transaction Management"
// (SIGMOD 1991), together with everything the protocol needs underneath:
// a per-site storage engine, write-ahead logging with undo/redo recovery,
// a strict-2PL lock manager with deadlock detection, a simulated (and a
// TCP) message network, the baseline distributed-2PL 2PC protocol, the
// compensating-transaction framework, the P1/P2 site-marking protocols of
// the paper's Section 6, and an executable form of the Section 5
// serialization-graph theory used to verify executions.
//
// # The protocol in one paragraph
//
// Under distributed 2PL with standard 2PC, a participant that votes YES
// must hold its exclusive locks until the coordinator's decision arrives —
// an unbounded wait if the coordinator fails. O2PC instead lets the
// participant locally commit and release all locks at the YES vote; if the
// global decision turns out to be abort, the exposed updates are undone
// semantically by a compensating transaction. The system then guarantees
// semantic atomicity rather than all-or-nothing atomicity, and the paper's
// correctness criterion ("no regular cycles in the global serialization
// graph") replaces plain serializability; protocol P1 enforces it using
// per-site marking sets with no messages beyond the standard 2PC exchange.
//
// # Quick start
//
//	cl := o2pc.NewCluster(o2pc.ClusterConfig{Sites: 3, Record: true})
//	cl.SeedInt64("balance", 100)
//	res := cl.Run(ctx, o2pc.TxnSpec{
//		Protocol: o2pc.O2PC,
//		Marking:  o2pc.MarkP1,
//		Subtxns: []o2pc.SubtxnSpec{
//			{Site: "s0", Ops: []o2pc.Operation{o2pc.AddMin("balance", -40, 0)}, Comp: o2pc.CompSemantic},
//			{Site: "s1", Ops: []o2pc.Operation{o2pc.Add("balance", 40)}, Comp: o2pc.CompSemantic},
//		},
//	})
//	if res.Committed() { ... }
//
// See examples/ for complete programs, DESIGN.md for the architecture and
// the experiment index, and EXPERIMENTS.md for the reproduction results.
package o2pc

import (
	"context"

	"o2pc/internal/compensate"
	"o2pc/internal/coord"
	"o2pc/internal/core"
	"o2pc/internal/proto"
	"o2pc/internal/rpc"
	"o2pc/internal/sg"
	"o2pc/internal/sim"
	"o2pc/internal/site"
	"o2pc/internal/storage"
	"o2pc/internal/txn"
	"o2pc/internal/workload"
)

// Cluster is an in-process multidatabase: N autonomous site DBMSs joined
// by a simulated network, with coordinators running the commit protocols.
type Cluster = core.Cluster

// ClusterConfig parameterizes NewCluster.
type ClusterConfig = core.Config

// NetworkConfig tunes the simulated network (latency, jitter, loss, seed).
type NetworkConfig = rpc.Config

// NewCluster assembles a cluster.
func NewCluster(cfg ClusterConfig) *Cluster { return core.NewCluster(cfg) }

// TxnSpec describes a global transaction; SubtxnSpec is one site's share.
type (
	TxnSpec    = coord.TxnSpec
	SubtxnSpec = coord.SubtxnSpec
)

// Result reports a global transaction's execution; Outcome classifies it.
type (
	Result  = coord.Result
	Outcome = coord.Outcome
)

// Outcome values.
const (
	Committed          = coord.Committed
	AbortedVote        = coord.AbortedVote
	AbortedExec        = coord.AbortedExec
	AbortedMarking     = coord.AbortedMarking
	AbortedCoordinator = coord.AbortedCoordinator
)

// Protocol selects the commit protocol of a transaction.
type Protocol = proto.Protocol

// Protocol values.
const (
	// TwoPC is the baseline: distributed strict 2PL with standard 2PC
	// (exclusive locks held until the DECISION message).
	TwoPC = proto.TwoPC
	// O2PC is the paper's optimistic protocol: locks released at the YES
	// vote; aborts handled by compensation.
	O2PC = proto.O2PC
)

// MarkProtocol selects the correctness protocol layered over O2PC.
type MarkProtocol = proto.MarkProtocol

// MarkProtocol values.
const (
	MarkNone = proto.MarkNone
	MarkP1   = proto.MarkP1
	MarkP2   = proto.MarkP2
	// MarkSimple is the "very simple protocol" of Section 6.2's closing
	// discussion: stricter than P1 (all sites must be undone w.r.t. the
	// same transactions and locally-committed w.r.t. none) but trivially
	// stratified — the paper's simplicity/concurrency trade-off point.
	MarkSimple = proto.MarkSimple
)

// Operation is one step of a subtransaction; constructors below build the
// operation repertoire (the restricted model's site interface).
type Operation = proto.Operation

// Read returns a read of key.
func Read(key string) Operation { return proto.Read(key) }

// Write returns a write of key.
func Write(key string, value []byte) Operation { return proto.Write(key, value) }

// Delete returns a delete of key.
func Delete(key string) Operation { return proto.Delete(key) }

// Add returns an unconditional int64 increment of key by delta; its
// semantic inverse is Add(key, -delta).
func Add(key string, delta int64) Operation { return proto.Add(key, delta) }

// AddMin returns an int64 increment that makes the site vote NO when the
// result would fall below min (insufficient funds, no seats left, ...).
func AddMin(key string, delta, min int64) Operation { return proto.AddMin(key, delta, min) }

// CompMode selects how an exposed subtransaction is compensated.
type CompMode = proto.CompMode

// CompMode values.
const (
	// CompSemantic derives inverse operations from the forward operation
	// list (restricted model).
	CompSemantic = proto.CompSemantic
	// CompBeforeImage restores before-images as a fresh transaction
	// (generic model).
	CompBeforeImage = proto.CompBeforeImage
	// CompCustom invokes a compensator registered with a Registry.
	CompCustom = proto.CompCustom
	// CompNone marks a real action: the site retains locks until the
	// decision even under O2PC.
	CompNone = proto.CompNone
)

// Txn is a transaction handle bound to one site, used by local
// transactions (Cluster.RunLocal) and custom compensators.
type Txn = txn.Txn

// Key identifies a data item at a site.
type Key = storage.Key

// OpKind enumerates subtransaction operation kinds (inspection of
// Forward.Ops in custom compensators).
type OpKind = proto.OpKind

// OpKind values.
const (
	OpRead   = proto.OpRead
	OpWrite  = proto.OpWrite
	OpDelete = proto.OpDelete
	OpAdd    = proto.OpAdd
)

// Registry holds application-defined compensators (CompCustom).
type Registry = compensate.Registry

// NewRegistry returns an empty compensator registry.
func NewRegistry() *Registry { return compensate.NewRegistry() }

// CompensatorFunc is an application-defined compensator.
type CompensatorFunc = compensate.Func

// Forward describes the forward subtransaction a compensator undoes.
type Forward = compensate.Forward

// CheckStrategy selects the marking-set locking discipline (Section 6.2).
type CheckStrategy = site.CheckStrategy

// CheckStrategy values.
const (
	CheckEarlyRevalidate = site.CheckEarlyRevalidate
	CheckHold            = site.CheckHold
)

// CrashPhase identifies coordinator crash-injection points for failure
// experiments.
type CrashPhase = coord.CrashPhase

// CrashPhase values.
const (
	// CrashAfterVotes crashes the coordinator after collecting votes,
	// before logging a decision (recovery presumes abort).
	CrashAfterVotes = coord.CrashAfterVotes
	// CrashAfterDecisionLogged crashes after the decision is durable but
	// before any participant learns it (recovery re-sends it).
	CrashAfterDecisionLogged = coord.CrashAfterDecisionLogged
)

// Audit is the Section 5 verifier's verdict on a recorded history.
type Audit = sg.Audit

// Clock abstracts time for the whole system; ClusterConfig.Clock accepts
// one. The zero value (nil) means real time.
type Clock = sim.Clock

// VirtualClock is a deterministic discrete-event clock: with it, an entire
// cluster run — crashes, partitions, message loss — executes in virtual
// time with no real sleeping, and a fixed seed reproduces the identical
// execution. See internal/sim.
type VirtualClock = sim.VirtualClock

// NewVirtualClock returns a virtual clock starting at a fixed epoch.
func NewVirtualClock() *VirtualClock { return sim.NewVirtualClock() }

// Group is a clock-aware errgroup-lite: goroutines spawned through it are
// tracked by a virtual clock so waiting on them cannot stall virtual time.
type Group = sim.Group

// NewGroup returns a Group tracked by c (nil means real time).
func NewGroup(c Clock) *Group { return sim.NewGroup(c) }

// WorkloadConfig parameterizes a generated transaction mix.
type WorkloadConfig = workload.Config

// WorkloadReport summarizes a workload run.
type WorkloadReport = workload.Report

// RunWorkload seeds the cluster and drives the configured mix against it.
func RunWorkload(ctx context.Context, cl *Cluster, cfg WorkloadConfig) WorkloadReport {
	return workload.Run(ctx, cl, cfg)
}
