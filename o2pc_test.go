package o2pc_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"o2pc"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestQuickstartFlow(t *testing.T) {
	cl := o2pc.NewCluster(o2pc.ClusterConfig{Sites: 3, Record: true})
	cl.SeedInt64("balance", 100)
	ctx := ctxT(t)

	res := cl.Run(ctx, o2pc.TxnSpec{
		Protocol: o2pc.O2PC,
		Marking:  o2pc.MarkP1,
		Subtxns: []o2pc.SubtxnSpec{
			{Site: "s0", Ops: []o2pc.Operation{o2pc.AddMin("balance", -40, 0)}, Comp: o2pc.CompSemantic},
			{Site: "s1", Ops: []o2pc.Operation{o2pc.Add("balance", 40)}, Comp: o2pc.CompSemantic},
		},
	})
	if !res.Committed() {
		t.Fatalf("quickstart transfer failed: %v", res.Err)
	}
	if got := cl.Site(0).ReadInt64("balance"); got != 60 {
		t.Fatalf("s0 balance = %d", got)
	}
	if audit := cl.Audit(); !audit.Correct() {
		t.Fatalf("audit failed")
	}
}

// TestMoneyConservation is the semantic-atomicity invariant: across any
// mix of committed and aborted (compensated) transfers, under every
// protocol stack, the total amount of money in the system is unchanged.
func TestMoneyConservation(t *testing.T) {
	stacks := []struct {
		name     string
		protocol o2pc.Protocol
		marking  o2pc.MarkProtocol
	}{
		{"2PC", o2pc.TwoPC, o2pc.MarkNone},
		{"O2PC", o2pc.O2PC, o2pc.MarkNone},
		{"O2PC+P1", o2pc.O2PC, o2pc.MarkP1},
		{"O2PC+P2", o2pc.O2PC, o2pc.MarkP2},
		{"O2PC+simple", o2pc.O2PC, o2pc.MarkSimple},
	}
	for _, stack := range stacks {
		t.Run(stack.name, func(t *testing.T) {
			const (
				nSites   = 4
				nAccts   = 8
				initBal  = 1000
				nClients = 4
				nTxns    = 30
			)
			cl := o2pc.NewCluster(o2pc.ClusterConfig{Sites: nSites})
			for a := 0; a < nAccts; a++ {
				cl.SeedInt64(acctKey(a), initBal)
			}
			ctx := ctxT(t)
			rng := rand.New(rand.NewSource(7))
			type job struct {
				spec o2pc.TxnSpec
				doom string
			}
			var jobs []job
			for i := 0; i < nClients*nTxns; i++ {
				from, to := rng.Intn(nSites), rng.Intn(nSites)
				for to == from {
					to = rng.Intn(nSites)
				}
				amount := int64(1 + rng.Intn(50))
				acct := acctKey(rng.Intn(nAccts))
				spec := o2pc.TxnSpec{
					ID:       fmt.Sprintf("X%d", i),
					Protocol: stack.protocol,
					Marking:  stack.marking,
					Subtxns: []o2pc.SubtxnSpec{
						{Site: siteName(from), Ops: []o2pc.Operation{o2pc.AddMin(acct, -amount, 0)}, Comp: o2pc.CompSemantic},
						{Site: siteName(to), Ops: []o2pc.Operation{o2pc.Add(acct, amount)}, Comp: o2pc.CompSemantic},
					},
				}
				j := job{spec: spec}
				if rng.Float64() < 0.25 {
					j.doom = siteName([]int{from, to}[rng.Intn(2)])
				}
				jobs = append(jobs, j)
			}
			results := make(chan o2pc.Result, len(jobs))
			sem := make(chan struct{}, nClients)
			for _, j := range jobs {
				j := j
				sem <- struct{}{}
				go func() {
					defer func() { <-sem }()
					if j.doom != "" {
						cl.DoomAtSite(j.spec.ID, j.doom)
					}
					results <- cl.Run(ctx, j.spec)
				}()
			}
			var committed, aborted int
			for range jobs {
				if r := <-results; r.Committed() {
					committed++
				} else {
					aborted++
				}
			}
			qctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			if err := cl.Quiesce(qctx); err != nil {
				t.Fatalf("quiesce: %v", err)
			}
			var total int64
			for s := 0; s < nSites; s++ {
				for a := 0; a < nAccts; a++ {
					total += cl.Site(s).ReadInt64(o2pc.Key(acctKey(a)))
				}
			}
			want := int64(nSites * nAccts * initBal)
			if total != want {
				t.Fatalf("money not conserved: total=%d want=%d (committed=%d aborted=%d)",
					total, want, committed, aborted)
			}
			if committed == 0 || aborted == 0 {
				t.Fatalf("degenerate mix: committed=%d aborted=%d", committed, aborted)
			}
			t.Logf("%s: %d committed, %d aborted, money conserved", stack.name, committed, aborted)
		})
	}
}

func acctKey(a int) string  { return fmt.Sprintf("acct%d", a) }
func siteName(i int) string { return fmt.Sprintf("s%d", i) }

// TestWorkloadFacade drives the workload generator through the public API
// and sanity-checks the report shape.
func TestWorkloadFacade(t *testing.T) {
	cl := o2pc.NewCluster(o2pc.ClusterConfig{Sites: 4, Record: true})
	rep := o2pc.RunWorkload(ctxT(t), cl, o2pc.WorkloadConfig{
		Clients:       4,
		TxnsPerClient: 25,
		SitesPerTxn:   2,
		KeysPerSite:   128,
		ReadFrac:      0.5,
		AbortProb:     0.1,
		Protocol:      o2pc.O2PC,
		Marking:       o2pc.MarkP1,
	})
	if rep.Committed == 0 || rep.Throughput <= 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.CommitRate <= 0 || rep.CommitRate > 1 {
		t.Fatalf("commit rate = %v", rep.CommitRate)
	}
	if audit := cl.Audit(); audit.EffectiveCount != 0 {
		t.Fatalf("effective regular cycles under P1 workload: %d", audit.EffectiveCount)
	}
}

// TestCustomCompensator exercises the CompCustom path through the facade.
func TestCustomCompensator(t *testing.T) {
	reg := o2pc.NewRegistry()
	reg.Register("release-seat", func(ctx context.Context, tx *o2pc.Txn, f o2pc.Forward) error {
		// Release exactly what the forward transaction reserved.
		for _, op := range f.Ops {
			if op.Kind == o2pc.OpAdd {
				cur, err := tx.ReadInt64ForUpdate(ctx, o2pc.Key(op.Key))
				if err != nil {
					return err
				}
				if err := tx.WriteInt64(ctx, o2pc.Key(op.Key), cur-op.Delta); err != nil {
					return err
				}
			}
		}
		return nil
	})
	cl := o2pc.NewCluster(o2pc.ClusterConfig{Sites: 2, Compensators: reg})
	cl.SeedInt64("seats", 10)
	ctx := ctxT(t)

	cl.DoomAtSite("Tbook", "s1")
	res := cl.Run(ctx, o2pc.TxnSpec{
		ID:       "Tbook",
		Protocol: o2pc.O2PC,
		Marking:  o2pc.MarkP1,
		Subtxns: []o2pc.SubtxnSpec{
			{Site: "s0", Ops: []o2pc.Operation{o2pc.AddMin("seats", -1, 0)}, Comp: o2pc.CompCustom, Compensator: "release-seat"},
			{Site: "s1", Ops: []o2pc.Operation{o2pc.Add("seats", 0)}, Comp: o2pc.CompSemantic},
		},
	})
	if res.Committed() {
		t.Fatalf("doomed booking committed")
	}
	qctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = cl.Quiesce(qctx)
	if got := cl.Site(0).ReadInt64("seats"); got != 10 {
		t.Fatalf("seats = %d, want 10 after custom compensation", got)
	}
}
