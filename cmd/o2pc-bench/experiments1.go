package main

import (
	"fmt"
	"time"

	"o2pc/internal/coord"
	"o2pc/internal/core"
	"o2pc/internal/proto"
	"o2pc/internal/rpc"
	"o2pc/internal/txn"
	"o2pc/internal/workload"
)

// runF1 — Figure 1: regular cycles form under bare O2PC in the Section 4
// interleaving and never under P1; the Section 5 auditor classifies them.
func runF1(e *env) {
	iters := e.scale(20, 5)
	e.row("marking", "runs", "reader committed", "effective regular", "doomed regular", "benign", "criterion violated")
	for _, marking := range []proto.MarkProtocol{proto.MarkNone, proto.MarkP1} {
		var committed, effective, doomed, benign, violated int
		for i := 0; i < iters; i++ {
			cl, reader := dangerousScenario(marking, e.seed+int64(i))
			if reader.Committed() {
				committed++
			}
			audit := cl.Audit()
			effective += audit.EffectiveCount
			doomed += audit.DoomedCount
			benign += audit.BenignCount
			if !audit.Correct() {
				violated++
			}
			if i == 0 {
				e.dumpHistory(cl, "F1-"+marking.String())
			}
		}
		e.row(marking.String(), d(int64(iters)), d(int64(committed)),
			d(int64(effective)), d(int64(doomed)), d(int64(benign)), d(int64(violated)))
	}
}

// runF2 — Figure 2: walk one transaction's marking through every
// transition of the state machine, printing the observed state at each
// protocol event.
func runF2(e *env) {
	cl := e.cluster(core.Config{Sites: 2, Record: true})
	cl.SeedInt64("a", 100)
	state := func(site int) string {
		if cl.Site(site).Marks().Contains("Tdead") {
			return "undone"
		}
		return "unmarked"
	}
	e.row("event", "s0 marking wrt Tdead", "s1 marking wrt Tdead")
	e.row("initial", state(0), state(1))

	// Doomed write at both sites: s1 votes NO (-> undone via rollback-as-
	// compensation), s0 votes YES then compensates on the abort decision
	// (-> undone via rule R2).
	cl.DoomAtSite("Tdead", "s1")
	cl.Run(bg(), coord.TxnSpec{
		ID: "Tdead", Protocol: proto.O2PC, Marking: proto.MarkP1,
		Subtxns: []coord.SubtxnSpec{
			{Site: "s0", Ops: []proto.Operation{proto.Add("a", 1)}, Comp: proto.CompSemantic},
			{Site: "s1", Ops: []proto.Operation{proto.Add("a", 1)}, Comp: proto.CompSemantic},
		},
	})
	quiesce(cl)
	e.row("abort decided (NO vote at s1; CT at s0)", state(0), state(1))

	// Witness transactions at each site establish UDUM1...
	for _, site := range []string{"s0", "s1"} {
		cl.Run(bg(), coord.TxnSpec{
			Protocol: proto.O2PC, Marking: proto.MarkP1,
			Subtxns: []coord.SubtxnSpec{
				{Site: site, Ops: []proto.Operation{proto.Add("a", 1)}, Comp: proto.CompSemantic},
			},
		})
	}
	e.row("after witnesses at both sites", state(0), state(1))

	// ...and the unmark notices ride the next decisions (rule R3).
	deadline := time.Now().Add(5 * time.Second)
	for (cl.Site(0).Marks().Contains("Tdead") || cl.Site(1).Marks().Contains("Tdead")) &&
		time.Now().Before(deadline) {
		for _, site := range []string{"s0", "s1"} {
			cl.Run(bg(), coord.TxnSpec{
				Protocol: proto.O2PC, Marking: proto.MarkP1,
				Subtxns: []coord.SubtxnSpec{
					{Site: site, Ops: []proto.Operation{proto.Add("a", 1)}, Comp: proto.CompSemantic},
				},
			})
		}
	}
	e.row("after R3 unmark notices delivered", state(0), state(1))
}

// runE1 — early lock release: mean exclusive-lock hold time as one-way
// latency grows. 2PC's hold time includes the decision round trip; O2PC's
// does not.
func runE1(e *env) {
	latencies := []time.Duration{
		100 * time.Microsecond, 500 * time.Microsecond,
		1 * time.Millisecond, 5 * time.Millisecond, 25 * time.Millisecond,
	}
	if e.quick {
		latencies = latencies[:3]
	}
	e.row("one-way latency", "2PC holdX mean (ms)", "O2PC holdX mean (ms)", "ratio")
	for _, lat := range latencies {
		hold := map[string]float64{}
		for _, st := range []stack{st2PC, stO2PC} {
			rep, _ := runLoad(e, core.Config{
				Sites:   4,
				Network: rpc.Config{MinLatency: lat, MaxLatency: lat + lat/4, Seed: e.seed},
			}, workload.Config{
				Clients:       4,
				TxnsPerClient: e.scale(50, 15),
				SitesPerTxn:   2,
				KeysPerSite:   2048,
				ReadFrac:      0.2,
				Protocol:      st.protocol,
				Marking:       st.marking,
			})
			hold[st.name] = rep.LockHoldX.Mean
		}
		ratio := 0.0
		if hold["O2PC"] > 0 {
			ratio = hold["2PC"] / hold["O2PC"]
		}
		e.row(lat.String(), ms(hold["2PC"]), ms(hold["O2PC"]), fmt.Sprintf("%.1fx", ratio))
	}
}

// runE2 — data contention: throughput and p99 latency as the hot set
// shrinks. The shorter lock windows of O2PC matter more the hotter the
// data.
func runE2(e *env) {
	hotSets := []int{1024, 256, 64, 16, 4}
	if e.quick {
		hotSets = []int{256, 16}
	}
	e.row("hot keys", "2PC txn/s", "2PC p99 (ms)", "O2PC txn/s", "O2PC p99 (ms)", "speedup")
	for _, hot := range hotSets {
		type res struct {
			tps float64
			p99 float64
		}
		out := map[string]res{}
		for _, st := range []stack{st2PC, stO2PC} {
			rep, _ := runLoad(e, core.Config{
				Sites:   4,
				Network: rpc.Config{MinLatency: 500 * time.Microsecond, MaxLatency: 800 * time.Microsecond, Seed: e.seed},
			}, workload.Config{
				Clients:       8,
				TxnsPerClient: e.scale(60, 15),
				SitesPerTxn:   2,
				KeysPerSite:   1024,
				HotKeys:       hot,
				HotProb:       0.8,
				ReadFrac:      0.2,
				Protocol:      st.protocol,
				Marking:       st.marking,
			})
			out[st.name] = res{tps: rep.Throughput, p99: rep.Latency.P99}
		}
		speedup := 0.0
		if out["2PC"].tps > 0 {
			speedup = out["O2PC"].tps / out["2PC"].tps
		}
		e.row(d(int64(hot)), f0(out["2PC"].tps), ms(out["2PC"].p99),
			f0(out["O2PC"].tps), ms(out["O2PC"].p99), fmt.Sprintf("%.2fx", speedup))
	}
}

// runE3 — blocking under coordinator failure: how long a conflicting
// transaction at a participant waits, as the coordinator outage grows.
// 2PC tracks the outage (unbounded in the limit); O2PC stays flat.
func runE3(e *env) {
	outages := []time.Duration{
		10 * time.Millisecond, 50 * time.Millisecond,
		200 * time.Millisecond, 800 * time.Millisecond,
	}
	if e.quick {
		outages = outages[:2]
	}
	e.row("outage", "2PC conflicting wait", "O2PC conflicting wait")
	for _, outage := range outages {
		waits := map[string]time.Duration{}
		for _, st := range []stack{st2PC, stO2PC} {
			waits[st.name] = measureBlocking(st.protocol, outage)
		}
		e.row(outage.String(), dur(waits["2PC"]), dur(waits["O2PC"]))
	}
}

func measureBlocking(protocol proto.Protocol, outage time.Duration) time.Duration {
	cl := core.NewCluster(core.Config{Sites: 2, LockTimeout: time.Hour})
	cl.SeedInt64("x", 0)
	cl.Coordinator(0).SetCrashInjector(func(id string, phase coord.CrashPhase) bool {
		return id == "Tcrash" && phase == coord.CrashAfterVotes
	})
	cl.Run(bg(), coord.TxnSpec{
		ID: "Tcrash", Protocol: protocol,
		Subtxns: []coord.SubtxnSpec{
			{Site: "s0", Ops: []proto.Operation{proto.Add("x", 1)}, Comp: proto.CompSemantic},
			{Site: "s1", Ops: []proto.Operation{proto.Add("x", 1)}, Comp: proto.CompSemantic},
		},
	})
	cl.Network().SetDown("c0", true)

	start := time.Now()
	done := make(chan time.Duration, 1)
	go func() {
		//o2pcvet:ignore errflow -- the experiment measures how long the read blocks; its outcome is immaterial
		_ = cl.RunLocal(bg(), 0, func(t *txn.Txn) error {
			_, err := t.ReadInt64(bg(), "x")
			return err
		})
		done <- time.Since(start)
	}()
	time.Sleep(outage)
	//o2pcvet:ignore errflow -- bench harness: a failed recovery shows up as an unterminated wait in the measurement
	_ = cl.RecoverCoordinator(bg(), 0)
	wait := <-done
	quiesce(cl)
	return wait
}

// runE4 — the optimistic-assumption crossover: committed throughput as the
// abort probability rises. O2PC wins while aborts are rare; compensation
// (and under P1, marking aborts) erode the win as the assumption fails.
func runE4(e *env) {
	probs := []float64{0, 0.02, 0.05, 0.10, 0.20, 0.50}
	if e.quick {
		probs = []float64{0, 0.05, 0.20}
	}
	e.row("abort prob", "2PC txn/s", "O2PC txn/s", "O2PC+P1 txn/s", "O2PC comps", "P1 commit rate")
	for _, p := range probs {
		tps := map[string]float64{}
		var comps int64
		var p1Rate float64
		for _, st := range []stack{st2PC, stO2PC, stO2PCP1} {
			rep, _ := runLoad(e, core.Config{
				Sites:   8,
				Network: rpc.Config{MinLatency: 300 * time.Microsecond, MaxLatency: 500 * time.Microsecond, Seed: e.seed},
			}, workload.Config{
				Clients:       8,
				TxnsPerClient: e.scale(50, 12),
				SitesPerTxn:   2,
				KeysPerSite:   512,
				HotKeys:       32,
				HotProb:       0.5,
				ReadFrac:      0.3,
				AbortProb:     p,
				Protocol:      st.protocol,
				Marking:       st.marking,
			})
			tps[st.name] = rep.Throughput
			if st == stO2PC {
				comps = rep.Compensations
			}
			if st == stO2PCP1 {
				p1Rate = rep.CommitRate
			}
		}
		e.row(pct(p), f0(tps["2PC"]), f0(tps["O2PC"]), f0(tps["O2PC+P1"]),
			d(comps), pct(p1Rate))
	}
}

// runE5 — P1's price: rejection profile vs abort rate, and the
// autonomy guarantee — local transactions see no P1 restriction.
func runE5(e *env) {
	probs := []float64{0, 0.05, 0.20}
	e.row("abort prob", "raw O2PC commit", "P1 commit", "P1 retries", "P1 fatal rejects",
		"local p50 no-P1 (ms)", "local p50 P1 (ms)")
	for _, p := range probs {
		var rawCommit, p1Commit float64
		var retries, fatals int64
		var localNoP1, localP1 float64
		for _, st := range []stack{stO2PC, stO2PCP1} {
			rep, _ := runLoad(e, core.Config{Sites: 6}, workload.Config{
				Clients:          6,
				TxnsPerClient:    e.scale(50, 12),
				SitesPerTxn:      2,
				KeysPerSite:      512,
				HotKeys:          32,
				HotProb:          0.5,
				ReadFrac:         0.3,
				AbortProb:        p,
				LocalTxnsPerSite: e.scale(100, 25),
				Protocol:         st.protocol,
				Marking:          st.marking,
			})
			if st == stO2PC {
				rawCommit = rep.CommitRate
				localNoP1 = rep.LocalLatency.P50
			} else {
				p1Commit = rep.CommitRate
				retries = rep.MarkRetries
				fatals = rep.RejectsFatal
				localP1 = rep.LocalLatency.P50
			}
		}
		e.row(pct(p), pct(rawCommit), pct(p1Commit), d(retries), d(fatals),
			ms(localNoP1), ms(localP1))
	}
}
