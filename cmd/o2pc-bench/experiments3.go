package main

import (
	"fmt"
	"time"

	"o2pc/internal/core"
	"o2pc/internal/proto"
	"o2pc/internal/rpc"
	"o2pc/internal/workload"
)

// hostileCluster is the common cluster shape for the multi-shot and
// hostile-workload experiments: a mid-size cluster with realistic WAN-ish
// one-way latency, seeded from the bench seed.
func hostileCluster(e *env) core.Config {
	return core.Config{
		Sites:   6,
		Network: rpc.Config{MinLatency: 300 * time.Microsecond, MaxLatency: 500 * time.Microsecond, Seed: e.seed},
	}
}

// runE11 — the optimistic-assumption crossover, revisited with multi-shot
// sessions. A session holds its subtransactions open across several rounds
// of think time, so an eventual NO vote throws away strictly more work than
// a one-shot abort — and under O2PC the compensation debt per abort grows
// with the rounds that preceded the vote. The crossover point (where 2PC
// catches O2PC+P1) therefore arrives at a lower abort probability than in
// the one-shot sweep of E4.
func runE11(e *env) {
	probs := []float64{0, 0.02, 0.05, 0.10, 0.20, 0.50}
	if e.quick {
		probs = []float64{0, 0.05, 0.20}
	}
	rounds := 3
	if e.multishot > 0 {
		rounds = e.multishot
	}
	load := func(p float64, st stack, rounds int) workload.Config {
		return workload.Config{
			Clients:       8,
			TxnsPerClient: e.scale(40, 10),
			SitesPerTxn:   2,
			KeysPerSite:   512,
			HotKeys:       32,
			HotProb:       0.5,
			ReadFrac:      0.3,
			AbortProb:     p,
			Protocol:      st.protocol,
			Marking:       st.marking,
			Rounds:        rounds,
			ThinkTime:     100 * time.Microsecond,
		}
	}
	e.row("abort prob", "2PC txn/s", "O2PC+P1 txn/s", "P1 1-shot txn/s", "P1 commit rate", "comps")
	for _, p := range probs {
		tps := map[string]float64{}
		var oneShot float64
		var p1Rate float64
		var comps int64
		for _, st := range []stack{st2PC, stO2PCP1} {
			rep, _ := runLoad(e, hostileCluster(e), load(p, st, rounds))
			tps[st.name] = rep.Throughput
			if st == stO2PCP1 {
				p1Rate = rep.CommitRate
				comps = rep.Compensations
			}
		}
		// The one-shot P1 baseline at the same abort probability, for the
		// crossover comparison against E4's regime.
		repOne, _ := runLoad(e, hostileCluster(e), load(p, stO2PCP1, 1))
		oneShot = repOne.Throughput
		e.row(pct(p), f0(tps["2PC"]), f0(tps["O2PC+P1"]), f0(oneShot), pct(p1Rate), d(comps))
	}
}

// runE12 — exposure-duration distribution vs session round count. The
// exposure window (a site's local commit at the YES vote until the decision
// arrives) is bounded by the commit point's message round trips, not by
// session length: rounds happen before the vote, so stretching a session
// must NOT stretch exposure. The table pins that claim — the per-decided-
// subtransaction exposure quantiles stay flat as rounds grow while lock
// hold times (which DO cover the rounds) climb.
func runE12(e *env) {
	roundCounts := []int{1, 2, 4, 8}
	if e.quick {
		roundCounts = []int{1, 4}
	}
	e.row("rounds", "exposure p50 (ms)", "exposure p99 (ms)", "exposed n", "holdX mean (ms)", "commit rate")
	for _, rounds := range roundCounts {
		rep, _ := runLoad(e, hostileCluster(e), workload.Config{
			Clients:       6,
			TxnsPerClient: e.scale(30, 8),
			SitesPerTxn:   2,
			KeysPerSite:   512,
			HotKeys:       32,
			HotProb:       0.5,
			ReadFrac:      0.3,
			AbortProb:     0.1,
			Protocol:      stO2PCP1.protocol,
			Marking:       stO2PCP1.marking,
			Rounds:        rounds,
			ThinkTime:     100 * time.Microsecond,
		})
		e.row(fmt.Sprintf("%d", rounds), ms(rep.Exposure.P50), ms(rep.Exposure.P99),
			d(int64(rep.Exposure.Count)), ms(rep.LockHoldX.Mean), pct(rep.CommitRate))
	}
}

// runE13 — the marking tax under Zipfian skew and flash-crowd arrivals.
// Marking only costs when transactions actually meet: under uniform access
// the R1 check almost never fires, while a Zipf hot-spot concentrates every
// session on the same few keys and burst arrivals synchronize them in time.
// The sweep shows the R1 rejection and retry counters climbing with skew,
// and what that does to P1's commit rate relative to unprotected O2PC.
func runE13(e *env) {
	skews := []float64{0, 1.2, 1.5, 2.0, 3.0}
	if e.quick {
		skews = []float64{0, 1.5, 3.0}
	}
	e.row("zipf s", "P1 txn/s", "P1 commit rate", "rej retry", "rej fatal", "mark retries", "O2PC txn/s")
	for _, s := range skews {
		var p1 workload.Report
		tps := map[string]float64{}
		for _, st := range []stack{stO2PCP1, stO2PC} {
			rep, _ := runLoad(e, hostileCluster(e), workload.Config{
				Clients:       8,
				TxnsPerClient: e.scale(40, 10),
				SitesPerTxn:   2,
				KeysPerSite:   256,
				ZipfS:         s,
				HotKeys:       16,
				HotProb:       0.6,
				ReadFrac:      0.3,
				AbortProb:     0.1,
				Protocol:      st.protocol,
				Marking:       st.marking,
				Rounds:        3,
				ThinkTime:     50 * time.Microsecond,
				BurstSize:     8,
				BurstGap:      300 * time.Microsecond,
			})
			tps[st.name] = rep.Throughput
			if st == stO2PCP1 {
				p1 = rep
			}
		}
		label := "uniform+hot"
		if s > 0 {
			label = fmt.Sprintf("%.1f", s)
		} else if e.zipfS > 1 {
			// The global -zipf-s flag fills the baseline row's zero field
			// (flags fill what the experiment leaves unpinned), so the
			// uniform baseline is not uniform on this invocation.
			label = fmt.Sprintf("%.1f (flag)", e.zipfS)
		}
		e.row(label, f0(tps["O2PC+P1"]), pct(p1.CommitRate),
			d(p1.RejectsRetry), d(p1.RejectsFatal), d(p1.MarkRetries), f0(tps["O2PC"]))
	}
}

// runE16 — the decision-durability trade, three ways. The same contended
// transfer workload runs under 2PC (decision in the coordinator's local
// WAL; participants hold locks across the decision round trip and block
// if the coordinator dies), O2PC+P1 (locks released at the local commit;
// a wrong optimistic guess pays compensation), and Paxos Commit (locks
// held like 2PC, but the decision is only delivered after a majority of
// decision-log replicas acks its ballot, so no single crash blocks
// anyone). The columns surface each protocol's cost lever side by side:
// the 2PC blocking window (exclusive-lock hold), the O2PC compensation
// volume, and the Paxos majority-ack latency.
func runE16(e *env) {
	e.row("stack", "txn/s", "commit rate", "p99 (ms)", "holdX mean (ms)", "comps", "ballot p50/p99 (ms)")
	for _, st := range []stack{st2PC, stO2PCP1, stPaxos} {
		cfg := core.Config{
			Sites:   4,
			Network: rpc.Config{MinLatency: 300 * time.Microsecond, MaxLatency: 600 * time.Microsecond, Seed: e.seed},
		}
		if st.protocol == proto.Paxos {
			cfg.Replicas = 3
		}
		rep, cl := runLoad(e, cfg, workload.Config{
			Clients:       8,
			TxnsPerClient: e.scale(60, 15),
			SitesPerTxn:   2,
			KeysPerSite:   512,
			HotKeys:       32,
			HotProb:       0.6,
			ReadFrac:      0.2,
			AbortProb:     0.05,
			Protocol:      st.protocol,
			Marking:       st.marking,
		})
		ballot := "-"
		if l := cl.Leader(0); l != nil {
			s := l.Stats().BallotMs.Snapshot()
			ballot = ms(s.P50) + "/" + ms(s.P99)
		}
		e.row(st.name, f0(rep.Throughput), pct(rep.CommitRate), ms(rep.Latency.P99),
			ms(rep.LockHoldX.Mean), d(rep.Compensations), ballot)
	}
}
