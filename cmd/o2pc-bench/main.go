// Command o2pc-bench regenerates every experiment in EXPERIMENTS.md.
//
// The paper ("An Optimistic Commit Protocol for Distributed Transaction
// Management", SIGMOD 1991) contains no quantitative evaluation tables —
// its claims are qualitative and its two figures are structural — so each
// experiment here operationalizes one claim or figure, as indexed in
// DESIGN.md:
//
//	F1  Figure 1: regular-cycle formation and detection
//	F2  Figure 2: the marking state machine walkthrough
//	E1  early lock release: exclusive-lock hold time vs network latency
//	E2  throughput under data contention
//	E3  blocking under coordinator failure
//	E4  the optimistic-assumption crossover (abort-rate sweep)
//	E5  protocol P1 overhead and its effect on local transactions
//	E6  message census ("no extra messages")
//	E7  serialization-graph audit (criterion enforcement)
//	E8  atomicity of compensation (Theorem 2)
//	E9  real actions (non-compensatable subtransactions)
//	E10 scaling with sites per transaction
//	E11 multi-shot sessions: the abort-rate crossover revisited
//	E12 exposure-duration distribution vs session round count
//	E13 the marking tax under Zipfian skew and flash-crowd arrivals
//	A1  ablation: read-lock release at VOTE-REQ
//	A2  ablation: marking-set lock strategy (Section 6.2 deadlock)
//	A3  ablation: P1 vs the dual P2
//	A4  extension: read-only participant optimization
//
// Usage:
//
//	o2pc-bench [-exp all|F1,E3,...] [-quick] [-seed N] [-dump DIR]
//	           [-trace FILE] [-trace-chrome FILE] [-metrics FILE]
//	           [-multishot N] [-zipf-s S] [-burst N] [-read-frac F]
//
// -dump writes each experiment's recorded history as JSON for offline
// auditing with sgcheck. -trace / -trace-chrome write the protocol event
// log of the first cluster built as JSONL / Chrome trace-event JSON
// (combine with -exp to choose which experiment is traced), and -metrics
// writes that cluster's counters, gauges, and latency histograms in
// Prometheus text exposition form.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"o2pc/internal/metrics"
	"o2pc/internal/trace"
)

// experiment is one runnable experiment.
type experiment struct {
	id    string
	title string
	run   func(e *env)
}

// artifacts captures the observability outputs of the first cluster built
// across the whole bench invocation (so -exp picks what gets traced).
type artifacts struct {
	tracer *trace.Tracer
	reg    *metrics.Registry
	used   bool
}

// env carries shared experiment settings.
type env struct {
	quick bool
	seed  int64
	dump  string
	art   *artifacts
	out   *tabwriter.Writer
	// Commit-path tuning applied to every cluster built (zero = default):
	// walBatch enables WAL group commit with the given max batch size,
	// lockShards overrides the lock managers' key-shard count, and
	// parallelExec fans out execution of unmarked transactions.
	walBatch     int
	lockShards   int
	parallelExec bool
	// Hostile-workload knobs applied to every workload run (unless the
	// experiment pinned the field itself): multishot switches loads to
	// sessions of that many rounds, zipfS replaces the hot-set model with a
	// Zipf(s) skew, burst groups arrivals into flash-crowd waves of that
	// size, and readFrac overrides the read fraction (negative = keep the
	// experiment's own value).
	multishot int
	zipfS     float64
	burst     int
	readFrac  float64
}

// row writes one tab-separated table row.
func (e *env) row(cells ...string) {
	fmt.Fprintln(e.out, strings.Join(cells, "\t"))
}

func (e *env) flush() { e.out.Flush() }

var experiments = []experiment{
	{"F1", "Figure 1 — regular cycles form without P1 and are excluded by it", runF1},
	{"F2", "Figure 2 — marking state machine walkthrough", runF2},
	{"E1", "early lock release — X-lock hold time vs one-way network latency", runE1},
	{"E2", "throughput under data contention (hot-set sweep)", runE2},
	{"E3", "blocking under coordinator failure (outage sweep)", runE3},
	{"E4", "the optimistic-assumption crossover (abort-rate sweep)", runE4},
	{"E5", "protocol P1 overhead; local transactions unaffected", runE5},
	{"E6", "message census — no extra messages beyond 2PC", runE6},
	{"E7", "serialization-graph audit across protocol stacks", runE7},
	{"E8", "atomicity of compensation (Theorem 2)", runE8},
	{"E9", "real actions — lock retention fraction sweep", runE9},
	{"E10", "scaling with sites per transaction", runE10},
	{"E11", "multi-shot sessions — the abort-rate crossover revisited", runE11},
	{"E12", "exposure-duration distribution vs session round count", runE12},
	{"E13", "the marking tax under Zipfian skew and flash-crowd arrivals", runE13},
	{"E16", "replicated decisions — 2PC blocking vs O2PC compensation vs Paxos majority-ack", runE16},
	{"A1", "ablation — releasing read locks at VOTE-REQ", runA1},
	{"A2", "ablation — marking-set lock strategy (Section 6.2)", runA2},
	{"A3", "ablation — P1 vs the dual protocol P2", runA3},
	{"A4", "extension — read-only participant optimization (R*-style)", runA4},
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command, factored for tests: flags from args, tables to
// stdout, diagnostics to stderr. Returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("o2pc-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	expFlag := fs.String("exp", "all", "experiments to run (comma-separated IDs, or 'all')")
	quick := fs.Bool("quick", false, "smaller workloads (CI-sized)")
	seed := fs.Int64("seed", 1991, "workload seed")
	dump := fs.String("dump", "", "directory for history JSON dumps (sgcheck input)")
	traceFile := fs.String("trace", "", "write the first cluster's protocol event log as JSONL to this file")
	chromeFile := fs.String("trace-chrome", "", "write the first cluster's protocol event log as Chrome trace-event JSON (Perfetto-loadable) to this file")
	metricsFile := fs.String("metrics", "", "write the first cluster's metrics in Prometheus text form to this file")
	walBatch := fs.Int("wal-batch", 0, "enable WAL group commit at every site with this max batch size (0 = off)")
	lockShards := fs.Int("lock-shards", 0, "key-shard count for every site's lock manager (0 = default)")
	parallelExec := fs.Bool("parallel-exec", false, "fan out execution of unmarked transactions to their sites concurrently")
	multishot := fs.Int("multishot", 0, "run workloads as multi-shot sessions of this many rounds (0 = one-shot)")
	zipfS := fs.Float64("zipf-s", 0, "replace the hot-set model with a Zipf(s) key skew (needs s > 1)")
	burst := fs.Int("burst", 0, "flash-crowd arrival: clients pause after every N transactions (0 = smooth)")
	readFrac := fs.Float64("read-frac", -1, "override each workload's read fraction (negative = keep per-experiment values)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	want := map[string]bool{}
	if *expFlag != "all" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	if *dump != "" {
		if err := os.MkdirAll(*dump, 0o755); err != nil {
			fmt.Fprintln(stderr, "o2pc-bench:", err)
			return 1
		}
	}

	var art *artifacts
	if *traceFile != "" || *chromeFile != "" || *metricsFile != "" {
		art = &artifacts{reg: metrics.NewRegistry()}
	}

	ran := map[string]bool{}
	for _, ex := range experiments {
		if len(want) > 0 && !want[ex.id] {
			continue
		}
		ran[ex.id] = true
		fmt.Fprintf(stdout, "== %s: %s ==\n", ex.id, ex.title)
		e := &env{
			quick:        *quick,
			seed:         *seed,
			dump:         *dump,
			art:          art,
			out:          tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0),
			walBatch:     *walBatch,
			lockShards:   *lockShards,
			parallelExec: *parallelExec,
			multishot:    *multishot,
			zipfS:        *zipfS,
			burst:        *burst,
			readFrac:     *readFrac,
		}
		ex.run(e)
		e.flush()
		fmt.Fprintln(stdout)
	}
	if art != nil {
		if err := writeArtifacts(art, *traceFile, *chromeFile, *metricsFile); err != nil {
			fmt.Fprintln(stderr, "o2pc-bench:", err)
			return 1
		}
	}
	var missing []string
	for id := range want {
		if !ran[id] {
			missing = append(missing, id)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		fmt.Fprintln(stderr, "o2pc-bench: unknown experiments:", strings.Join(missing, ","))
		return 2
	}
	return 0
}

// writeArtifacts dumps the captured trace and metrics to the flagged files.
func writeArtifacts(art *artifacts, traceFile, chromeFile, metricsFile string) error {
	if !art.used {
		return fmt.Errorf("no cluster was traced (selected experiments build none)")
	}
	writeTo := func(path string, write func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if traceFile != "" {
		events := art.tracer.Events()
		if err := writeTo(traceFile, func(w io.Writer) error { return trace.WriteJSONL(w, events) }); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
	}
	if chromeFile != "" {
		events := art.tracer.Events()
		if err := writeTo(chromeFile, func(w io.Writer) error { return trace.WriteChrome(w, events) }); err != nil {
			return fmt.Errorf("write chrome trace: %w", err)
		}
	}
	if metricsFile != "" {
		if err := writeTo(metricsFile, art.reg.WriteText); err != nil {
			return fmt.Errorf("write metrics: %w", err)
		}
	}
	return nil
}
