package main

import (
	"bytes"
	"strings"
	"testing"

	"o2pc/internal/workload"
)

// TestRunFlags drives the factored run() through the hostile-workload
// flags and the error paths, checking exit codes and output.
func TestRunFlags(t *testing.T) {
	cases := []struct {
		name      string
		args      []string
		wantCode  int
		wantOut   []string
		wantErrTx []string
	}{
		{
			name: "multishot zipf burst readfrac",
			args: []string{"-exp", "E12", "-quick",
				"-multishot", "3", "-zipf-s", "1.5", "-burst", "5", "-read-frac", "0.4"},
			wantCode: 0,
			wantOut:  []string{"== E12:", "exposure p50", "rounds"},
		},
		{
			name:     "unknown experiment",
			args:     []string{"-exp", "E99", "-quick"},
			wantCode: 2,
			wantErrTx: []string{
				"unknown experiments: E99",
			},
		},
		{
			name:     "bad flag",
			args:     []string{"-no-such-flag"},
			wantCode: 2,
		},
		{
			name:     "bad flag value",
			args:     []string{"-multishot", "three"},
			wantCode: 2,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("exit code = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					code, tc.wantCode, stdout.String(), stderr.String())
			}
			for _, want := range tc.wantOut {
				if !strings.Contains(stdout.String(), want) {
					t.Errorf("stdout missing %q:\n%s", want, stdout.String())
				}
			}
			for _, want := range tc.wantErrTx {
				if !strings.Contains(stderr.String(), want) {
					t.Errorf("stderr missing %q:\n%s", want, stderr.String())
				}
			}
		})
	}
}

// TestRunFlagOverridesRespectPins checks the precedence contract: global
// hostile-workload flags fill workload fields the experiment left zero, but
// never override a field the experiment pinned.
func TestRunFlagOverridesRespectPins(t *testing.T) {
	e := &env{multishot: 5, zipfS: 2.0, burst: 4, readFrac: 0.7}
	cfg := applyHostileFlags(e, workload.Config{})
	if cfg.Rounds != 5 || cfg.ZipfS != 2.0 || cfg.BurstSize != 4 || cfg.ReadFrac != 0.7 {
		t.Errorf("flags not applied to unpinned config: %+v", cfg)
	}
	pinned := workload.Config{Rounds: 2, ZipfS: 1.1, BurstSize: 9}
	got := applyHostileFlags(e, pinned)
	if got.Rounds != 2 || got.ZipfS != 1.1 || got.BurstSize != 9 {
		t.Errorf("flags overrode pinned fields: %+v", got)
	}
	if got.ReadFrac != 0.7 {
		t.Errorf("read-frac >= 0 must always win, got %v", got.ReadFrac)
	}
}
