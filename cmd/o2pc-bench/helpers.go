package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"o2pc/internal/coord"
	"o2pc/internal/core"
	"o2pc/internal/history"
	"o2pc/internal/proto"
	"o2pc/internal/rpc"
	"o2pc/internal/sim"
	"o2pc/internal/trace"
	"o2pc/internal/workload"
)

func bg() context.Context { return context.Background() }

// stack names a protocol combination under test.
type stack struct {
	name     string
	protocol proto.Protocol
	marking  proto.MarkProtocol
}

var (
	st2PC    = stack{"2PC", proto.TwoPC, proto.MarkNone}
	stO2PC   = stack{"O2PC", proto.O2PC, proto.MarkNone}
	stO2PCP1 = stack{"O2PC+P1", proto.O2PC, proto.MarkP1}
	stO2PCP2 = stack{"O2PC+P2", proto.O2PC, proto.MarkP2}
	stSimple = stack{"O2PC+simple", proto.O2PC, proto.MarkSimple}
	stPaxos  = stack{"Paxos", proto.Paxos, proto.MarkNone}
)

// cluster builds a core cluster, applying the global commit-path tuning
// flags (-wal-batch, -lock-shards, -parallel-exec) unless the experiment
// already pinned those fields itself. The first cluster built under
// -trace/-metrics gets the tracer attached and its stats adopted into the
// artifacts registry (adoption shares the live instruments, so counts
// accumulated after this call are exposed too).
func (e *env) cluster(cfg core.Config) *core.Cluster {
	if e.walBatch > 0 && !cfg.WALGroupCommit {
		cfg.WALGroupCommit = true
		cfg.WALGroupMaxBatch = e.walBatch
	}
	if e.lockShards > 0 && cfg.LockShards == 0 {
		cfg.LockShards = e.lockShards
	}
	if e.parallelExec {
		cfg.ParallelExec = true
	}
	if e.art != nil && !e.art.used {
		e.art.used = true
		e.art.tracer = trace.New(sim.OrReal(cfg.Clock), trace.DefaultNodeCapacity)
		cfg.Tracer = e.art.tracer
		cl := core.NewCluster(cfg)
		cl.PublishMetrics(e.art.reg)
		return cl
	}
	return core.NewCluster(cfg)
}

// runLoad builds a cluster with cfgCluster, runs the workload, and returns
// the report (and the cluster for further inspection). The global hostile-
// workload flags (-multishot, -zipf-s, -burst, -read-frac) are applied
// unless the experiment pinned the corresponding field itself.
func runLoad(e *env, cfgCluster core.Config, cfgLoad workload.Config) (workload.Report, *core.Cluster) {
	if cfgLoad.Seed == 0 {
		cfgLoad.Seed = e.seed
	}
	cfgLoad = applyHostileFlags(e, cfgLoad)
	cl := e.cluster(cfgCluster)
	rep := workload.Run(bg(), cl, cfgLoad)
	return rep, cl
}

// applyHostileFlags merges the global hostile-workload flags into a
// workload config: flags fill fields the experiment left zero, experiment
// pins win, and -read-frac (>= 0) always wins because zero is a meaningful
// read fraction.
func applyHostileFlags(e *env, cfg workload.Config) workload.Config {
	if e.multishot > 0 && cfg.Rounds == 0 {
		cfg.Rounds = e.multishot
	}
	if e.zipfS > 1 && cfg.ZipfS == 0 {
		cfg.ZipfS = e.zipfS
	}
	if e.burst > 0 && cfg.BurstSize == 0 {
		cfg.BurstSize = e.burst
		if cfg.BurstGap == 0 {
			cfg.BurstGap = 200 * time.Microsecond
		}
	}
	if e.readFrac >= 0 {
		cfg.ReadFrac = e.readFrac
	}
	return cfg
}

// scale shrinks a count in quick mode.
func (e *env) scale(full, quick int) int {
	if e.quick {
		return quick
	}
	return full
}

// dumpHistory writes the cluster's recorded history for sgcheck.
func (e *env) dumpHistory(cl *core.Cluster, name string) {
	if e.dump == "" {
		return
	}
	h := cl.History()
	if h == nil {
		return
	}
	path := filepath.Join(e.dump, name+".json")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "o2pc-bench: dump:", err)
		return
	}
	defer f.Close()
	if err := history.WriteJSON(f, h); err != nil {
		fmt.Fprintln(os.Stderr, "o2pc-bench: dump:", err)
	}
}

// quiesce drains a cluster with a bounded wait.
func quiesce(cl *core.Cluster) {
	ctx, cancel := context.WithTimeout(bg(), 30*time.Second)
	defer cancel()
	//o2pcvet:ignore errflow -- best-effort drain bounded by the timeout; the next experiment re-seeds regardless
	_ = cl.Quiesce(ctx)
}

// dangerousScenario reproduces the Section 4 interleaving (experiments F1,
// E7, E8): transaction Ta writes at two sites; one site votes NO and rolls
// back; the coordinator crashes before the abort decision, leaving the
// other site's update exposed; a reader transaction Tb then observes the
// exposed update at one site and the rolled-back state at the other; the
// recovered coordinator's presumed abort finally compensates the exposed
// site — after the reader. Without P1 this yields a regular cycle
// (Tb -> CTa at one site, CTa -> Tb at the other) and a Theorem 2
// violation; under P1 the reader is refused.
//
// Returns the cluster (quiesced, history recorded) and the reader's
// outcome.
func dangerousScenario(marking proto.MarkProtocol, seed int64) (*core.Cluster, coord.Result) {
	cl := core.NewCluster(core.Config{
		Sites:        2,
		Coordinators: 2,
		Record:       true,
		Network:      rpc.Config{Seed: seed},
	})
	cl.SeedInt64("x", 100)
	cl.SeedInt64("y", 100)

	cl.Coordinator(0).SetCrashInjector(func(id string, phase coord.CrashPhase) bool {
		return id == "Ta" && phase == coord.CrashAfterVotes
	})
	cl.DoomAtSite("Ta", "s1")
	cl.Run(bg(), coord.TxnSpec{
		ID: "Ta", Protocol: proto.O2PC, Marking: marking,
		Subtxns: []coord.SubtxnSpec{
			{Site: "s0", Ops: []proto.Operation{proto.Add("x", 5)}, Comp: proto.CompSemantic},
			{Site: "s1", Ops: []proto.Operation{proto.Add("y", 5)}, Comp: proto.CompSemantic},
		},
	})

	reader := cl.RunAt(bg(), 1, coord.TxnSpec{
		ID: "Tb", Protocol: proto.O2PC, Marking: marking,
		Subtxns: []coord.SubtxnSpec{
			{Site: "s0", Ops: []proto.Operation{proto.Read("x"), proto.Add("sum", 1)}, Comp: proto.CompSemantic},
			{Site: "s1", Ops: []proto.Operation{proto.Read("y"), proto.Add("sum", 1)}, Comp: proto.CompSemantic},
		},
	})

	//o2pcvet:ignore errflow -- bench harness: the scenario's assertions observe the recovered state directly
	_ = cl.RecoverCoordinator(bg(), 0)
	quiesce(cl)
	return cl, reader
}

func pct(x float64) string       { return fmt.Sprintf("%.1f%%", 100*x) }
func ms(x float64) string        { return fmt.Sprintf("%.3f", x) }
func f0(x float64) string        { return fmt.Sprintf("%.0f", x) }
func d(x int64) string           { return fmt.Sprintf("%d", x) }
func b(x bool) string            { return fmt.Sprintf("%v", x) }
func dur(x time.Duration) string { return x.Round(10 * time.Microsecond).String() }
