package main

import (
	"sort"
	"time"

	"o2pc/internal/core"
	"o2pc/internal/proto"
	"o2pc/internal/rpc"
	"o2pc/internal/site"
	"o2pc/internal/workload"
)

// runE6 — message census. With no aborts, every protocol stack exchanges
// exactly the same messages per transaction — O2PC and P1 add none (all
// their state piggybacks on the standard exchange). Under aborts, O2PC
// still matches 2PC exactly; P1's counts differ only because R1
// rejections change control flow (retried ExecRequests, skipped vote
// rounds for refused transactions), never because of new message types or
// extra rounds for admitted transactions.
func runE6(e *env) {
	counts := func(st stack, abortProb float64) (map[string]int64, int64) {
		cl := e.cluster(core.Config{Sites: 4})
		rep := workload.Run(bg(), cl, workload.Config{
			Seed:          e.seed,
			Clients:       4,
			TxnsPerClient: 10,
			SitesPerTxn:   2,
			KeysPerSite:   512,
			ReadFrac:      0.3,
			AbortProb:     abortProb,
			Protocol:      st.protocol,
			Marking:       st.marking,
		})
		return cl.MessageCounts(), rep.Committed + rep.Aborted
	}
	stacks := []stack{st2PC, stO2PC, stO2PCP1}
	for _, scenario := range []struct {
		name      string
		abortProb float64
	}{{"no aborts", 0}, {"15% vote aborts", 0.15}} {
		all := map[string]map[string]int64{}
		typeSet := map[string]bool{}
		for _, st := range stacks {
			c, _ := counts(st, scenario.abortProb)
			all[st.name] = c
			for name := range c {
				typeSet[name] = true
			}
		}
		var types []string
		for name := range typeSet {
			types = append(types, name)
		}
		sort.Strings(types)
		e.row("["+scenario.name+"]", "", "", "", "")
		e.row("message type", "2PC", "O2PC", "O2PC+P1", "2PC==O2PC")
		for _, name := range types {
			a, bb, c := all["2PC"][name], all["O2PC"][name], all["O2PC+P1"][name]
			e.row(name, d(a), d(bb), d(c), b(a == bb))
		}
	}
}

// runE7 — serialization-graph audit: repeated adversarial scenarios plus a
// plain contended workload, audited per protocol stack.
func runE7(e *env) {
	iters := e.scale(15, 4)
	e.row("workload", "stack", "effective regular", "doomed regular", "benign", "correct")
	for _, marking := range []proto.MarkProtocol{proto.MarkNone, proto.MarkP1, proto.MarkP2} {
		var effective, doomed, benign int
		correct := true
		for i := 0; i < iters; i++ {
			cl, _ := dangerousScenario(marking, e.seed+int64(100+i))
			audit := cl.Audit()
			effective += audit.EffectiveCount
			doomed += audit.DoomedCount
			benign += audit.BenignCount
			correct = correct && audit.Correct()
		}
		e.row("adversarial (coordinator crash)", "O2PC+"+marking.String(),
			d(int64(effective)), d(int64(doomed)), d(int64(benign)), b(correct))
	}
	for _, st := range []stack{st2PC, stO2PCP1} {
		cl := e.cluster(core.Config{Sites: 4, Record: true})
		_ = workload.Run(bg(), cl, workload.Config{
			Seed:          e.seed,
			Clients:       4,
			TxnsPerClient: e.scale(40, 10),
			SitesPerTxn:   2,
			KeysPerSite:   256,
			HotKeys:       16,
			HotProb:       0.5,
			ReadFrac:      0.4,
			AbortProb:     0.15,
			Protocol:      st.protocol,
			Marking:       st.marking,
		})
		audit := cl.Audit()
		e.row("contended mix", st.name, d(int64(audit.EffectiveCount)),
			d(int64(audit.DoomedCount)), d(int64(audit.BenignCount)), b(audit.Correct()))
		e.dumpHistory(cl, "E7-"+st.name)
	}
}

// runE8 — atomicity of compensation (Theorem 2): count readers that
// observed both a forward transaction and its compensation.
func runE8(e *env) {
	iters := e.scale(15, 4)
	e.row("stack", "runs", "Theorem 2 violations")
	for _, marking := range []proto.MarkProtocol{proto.MarkNone, proto.MarkP1} {
		violations := 0
		for i := 0; i < iters; i++ {
			cl, _ := dangerousScenario(marking, e.seed+int64(200+i))
			violations += len(cl.CompensationViolations())
		}
		e.row("O2PC+"+marking.String(), d(int64(iters)), d(int64(violations)))
	}
}

// runE9 — real actions: as the fraction of non-compensatable
// subtransactions grows, O2PC degenerates toward 2PC's lock-hold profile.
func runE9(e *env) {
	fracs := []float64{0, 0.25, 0.5, 1.0}
	e.row("real-action frac", "txn/s", "holdX mean (ms)")
	for _, f := range fracs {
		rep, _ := runLoad(e, core.Config{
			Sites:   4,
			Network: rpc.Config{MinLatency: 500 * time.Microsecond, MaxLatency: 800 * time.Microsecond, Seed: e.seed},
		}, workload.Config{
			Clients:        6,
			TxnsPerClient:  e.scale(50, 12),
			SitesPerTxn:    2,
			KeysPerSite:    1024,
			HotKeys:        64,
			HotProb:        0.6,
			ReadFrac:       0.2,
			Protocol:       proto.O2PC,
			RealActionFrac: f,
		})
		e.row(pct(f), f0(rep.Throughput), ms(rep.LockHoldX.Mean))
	}
	// Reference: pure 2PC.
	rep, _ := runLoad(e, core.Config{
		Sites:   4,
		Network: rpc.Config{MinLatency: 500 * time.Microsecond, MaxLatency: 800 * time.Microsecond, Seed: e.seed},
	}, workload.Config{
		Clients:       6,
		TxnsPerClient: e.scale(50, 12),
		SitesPerTxn:   2,
		KeysPerSite:   1024,
		HotKeys:       64,
		HotProb:       0.6,
		ReadFrac:      0.2,
		Protocol:      proto.TwoPC,
	})
	e.row("(2PC reference)", f0(rep.Throughput), ms(rep.LockHoldX.Mean))
}

// runE10 — scaling with the number of participating sites per transaction.
// More participants mean a longer decision fan-in, so the O2PC advantage
// grows with transaction breadth.
func runE10(e *env) {
	widths := []int{2, 4, 8, 16}
	if e.quick {
		widths = []int{2, 4}
	}
	e.row("sites/txn", "2PC txn/s", "O2PC txn/s", "O2PC+P1 txn/s")
	for _, w := range widths {
		tps := map[string]float64{}
		for _, st := range []stack{st2PC, stO2PC, stO2PCP1} {
			rep, _ := runLoad(e, core.Config{
				Sites:   16,
				Network: rpc.Config{MinLatency: 300 * time.Microsecond, MaxLatency: 500 * time.Microsecond, Seed: e.seed},
			}, workload.Config{
				Clients:       8,
				TxnsPerClient: e.scale(40, 10),
				SitesPerTxn:   w,
				KeysPerSite:   1024,
				HotKeys:       64,
				HotProb:       0.4,
				ReadFrac:      0.3,
				AbortProb:     0.02,
				Protocol:      st.protocol,
				Marking:       st.marking,
			})
			tps[st.name] = rep.Throughput
		}
		e.row(d(int64(w)), f0(tps["2PC"]), f0(tps["O2PC"]), f0(tps["O2PC+P1"]))
	}
}

// runA1 — ablation: Section 2 permits releasing read locks at VOTE-REQ
// even under strict distributed 2PL. How much of O2PC's win is write
// locks?
func runA1(e *env) {
	e.row("config", "txn/s", "holdS mean (ms)", "holdX mean (ms)")
	for _, cfg := range []struct {
		name    string
		release bool
		st      stack
	}{
		{"2PC, S held to decision", false, st2PC},
		{"2PC, S released at vote", true, st2PC},
		{"O2PC", false, stO2PC},
	} {
		cl := e.cluster(core.Config{
			Sites:               4,
			ReleaseSharedAtVote: cfg.release,
			Network:             rpc.Config{MinLatency: 1 * time.Millisecond, MaxLatency: 2 * time.Millisecond, Seed: e.seed},
		})
		rep := workload.Run(bg(), cl, workload.Config{
			Seed:          e.seed,
			Clients:       8,
			TxnsPerClient: e.scale(40, 10),
			SitesPerTxn:   2,
			KeysPerSite:   512,
			HotKeys:       32,
			HotProb:       0.7,
			ReadFrac:      0.8, // read-heavy: the S-lock ablation's domain
			Protocol:      cfg.st.protocol,
			Marking:       cfg.st.marking,
		})
		holdS := 0.0
		for _, s := range cl.Sites() {
			holdS += s.Manager().Locks().Stats().HoldTimeS.Mean()
		}
		holdS /= float64(len(cl.Sites()))
		e.row(cfg.name, f0(rep.Throughput), ms(holdS), ms(rep.LockHoldX.Mean))
	}
}

// runA2 — ablation: the Section 6.2 marking-set deadlock. Holding the
// marking-set read lock for the whole subtransaction (CheckHold) invites
// deadlocks against compensating transactions writing the mark (rule R2);
// the paper's check-then-revalidate compromise avoids them.
func runA2(e *env) {
	e.row("strategy", "commit rate", "deadlock victims", "txn/s")
	for _, cfg := range []struct {
		name     string
		strategy core.Config
	}{
		{"early-check + revalidate", core.Config{Sites: 4}},
		{"hold marking lock (plain 2PL)", core.Config{Sites: 4, CheckStrategy: site.CheckHold}},
	} {
		cc := cfg.strategy
		rep, _ := runLoad(e, cc, workload.Config{
			Clients:       8,
			TxnsPerClient: e.scale(50, 12),
			SitesPerTxn:   2,
			KeysPerSite:   128,
			HotKeys:       8,
			HotProb:       0.7,
			ReadFrac:      0.3,
			AbortProb:     0.15, // aborts drive compensation -> R2 writes
			Protocol:      proto.O2PC,
			Marking:       proto.MarkP1,
		})
		e.row(cfg.name, pct(rep.CommitRate), d(rep.Deadlocks), f0(rep.Throughput))
	}
}

// runA3 — ablation: P1 vs its dual P2 under commit-heavy and abort-heavy
// mixes. P1 marks aborted transactions (rare under the optimistic
// assumption); P2 marks locally-committed ones (every transaction,
// briefly).
func runA3(e *env) {
	e.row("mix", "stack", "commit rate", "txn/s", "retries", "fatal rejects")
	for _, mix := range []struct {
		name string
		p    float64
	}{{"commit-heavy (2% aborts)", 0.02}, {"abort-heavy (20% aborts)", 0.20}} {
		for _, st := range []stack{stO2PCP1, stO2PCP2, stSimple} {
			rep, _ := runLoad(e, core.Config{Sites: 6}, workload.Config{
				Clients:       6,
				TxnsPerClient: e.scale(50, 12),
				SitesPerTxn:   2,
				KeysPerSite:   512,
				HotKeys:       32,
				HotProb:       0.5,
				ReadFrac:      0.3,
				AbortProb:     mix.p,
				Protocol:      st.protocol,
				Marking:       st.marking,
			})
			e.row(mix.name, st.name, pct(rep.CommitRate), f0(rep.Throughput),
				d(rep.MarkRetries), d(rep.RejectsFatal))
		}
	}
}

// runA4 — extension: the classic read-only participant optimization from
// the R* lineage the paper builds on. Read-only participants answer their
// VOTE-REQ with READ-ONLY and drop out of the protocol: no DECISION/Ack
// round for them. Measured on a read-heavy mix.
func runA4(e *env) {
	e.row("config", "txn/s", "Decision msgs", "Ack msgs", "msgs/txn")
	for _, cfg := range []struct {
		name string
		on   bool
	}{{"read-only votes off", false}, {"read-only votes on", true}} {
		cl := e.cluster(core.Config{
			Sites:         4,
			ReadOnlyVotes: cfg.on,
		})
		rep := workload.Run(bg(), cl, workload.Config{
			Seed:          e.seed,
			Clients:       6,
			TxnsPerClient: e.scale(50, 12),
			SitesPerTxn:   3,
			KeysPerSite:   1024,
			ReadFrac:      0.95, // most subtransactions end up read-only
			AllowReadOnly: true,
			Protocol:      proto.O2PC,
		})
		counts := cl.MessageCounts()
		var total int64
		for _, n := range counts {
			total += n
		}
		perTxn := 0.0
		if n := rep.Committed + rep.Aborted; n > 0 {
			perTxn = float64(total) / float64(n)
		}
		e.row(cfg.name, f0(rep.Throughput), d(counts["proto.Decision"]),
			d(counts["proto.Ack"]), ms(perTxn))
	}
}
