package main

import (
	"bytes"
	"context"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"o2pc/internal/proto"
	"o2pc/internal/rpc"
	"o2pc/internal/site"
	"o2pc/internal/storage"
	"o2pc/internal/trace"
)

// startTestSite serves a real site over TCP loopback, seeded with
// acct=1000, and returns its -site flag value.
func startTestSite(t *testing.T, name string) string {
	t.Helper()
	s := site.NewSite(site.Config{Name: name})
	s.SeedInt64(storage.Key("acct"), 1000)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go rpc.NewServer(name, s.Handle).Serve(ln)
	return name + "=" + ln.Addr().String()
}

// TestRunPaths drives the run() entrypoint end to end over TCP loopback:
// the single-transaction, repeat, demo, and serve paths, each with and
// without trace/metrics artifacts.
func TestRunPaths(t *testing.T) {
	dir := t.TempDir()

	// Each case gets fresh sites: a coordinator's generated transaction IDs
	// restart at T1 per run() invocation, and sites fence IDs they have
	// already resolved.
	cases := []struct {
		name      string
		args      func(s0, s1 string) []string
		cancelCtx bool     // cancel the context before run (serve path exits immediately)
		wantOut   []string // substrings of stdout
		wantErr   string   // substring of the error, "" for success
		jsonl     string   // expect a JSONL trace at this path containing a txn.begin
		chrome    string   // expect Chrome trace JSON at this path
		metrics   []string // expect these substrings in the -metrics file
	}{
		{
			name: "single txn with artifacts",
			args: func(s0, s1 string) []string {
				return []string{
					"-listen", "127.0.0.1:0", "-site", s0, "-site", s1,
					"-txn", "s0:addmin:acct:-40:0 / s1:add:acct:40", "-marking", "p1",
					"-trace", filepath.Join(dir, "txn.jsonl"),
					"-trace-chrome", filepath.Join(dir, "txn.chrome.json"),
					"-metrics", filepath.Join(dir, "txn.metrics"),
				}
			},
			wantOut: []string{"committed"},
			jsonl:   filepath.Join(dir, "txn.jsonl"),
			chrome:  filepath.Join(dir, "txn.chrome.json"),
			metrics: []string{"o2pc_coord_commits_total 1", "# TYPE o2pc_coord_latency_ms summary"},
		},
		{
			name: "repeat prints a summary",
			args: func(s0, s1 string) []string {
				return []string{
					"-listen", "127.0.0.1:0", "-site", s0, "-site", s1,
					"-txn", "s0:add:acct:1", "-repeat", "3",
				}
			},
			wantOut: []string{"3/3 committed"},
		},
		{
			name: "demo with trace",
			args: func(s0, s1 string) []string {
				return []string{
					"-listen", "127.0.0.1:0", "-site", s0, "-site", s1,
					"-demo", "6", "-demo-seed", "1", "-demo-doom", "0.5",
					"-trace", filepath.Join(dir, "demo.jsonl"),
				}
			},
			wantOut: []string{"demo: ", "insufficient-funds"},
			jsonl:   filepath.Join(dir, "demo.jsonl"),
		},
		{
			name: "serve path exits on context cancel",
			args: func(s0, s1 string) []string {
				return []string{"-listen", "127.0.0.1:0", "-site", s0}
			},
			cancelCtx: true,
			wantOut:   []string{"serving on"},
		},
		{
			name: "ops plane with phase metrics",
			args: func(s0, s1 string) []string {
				return []string{
					"-listen", "127.0.0.1:0", "-site", s0, "-site", s1,
					"-txn", "s0:addmin:acct:-40:0 / s1:add:acct:40", "-marking", "p1",
					"-ops-addr", "127.0.0.1:0",
					"-metrics", filepath.Join(dir, "txn.metrics"),
				}
			},
			wantOut: []string{"committed", "ops plane on http://"},
			metrics: []string{
				"# TYPE o2pc_coord_phase_vote_decision_ms summary",
				"o2pc_coord_phase_decision_ack_ms_count 1",
				`o2pc_coord_phase_prepare_vote_ms{site="s0",quantile="0.5"}`,
				`o2pc_coord_phase_prepare_vote_ms{site="s1",quantile="0.5"}`,
			},
		},
		{
			name: "paxos replicated decisions",
			args: func(s0, s1 string) []string {
				return []string{
					"-listen", "127.0.0.1:0", "-site", s0, "-site", s1,
					"-txn", "s0:addmin:acct:-40:0 / s1:add:acct:40", "-protocol", "paxos",
					"-metrics", filepath.Join(dir, "txn.metrics"),
				}
			},
			wantOut: []string{"committed", "replicating decisions to 3 replicas"},
			metrics: []string{
				"# TYPE o2pc_coord_replog_ballot_ms summary",
				"o2pc_coord_replog_leader 1",
				"o2pc_coord_replog_term 1",
				"o2pc_coord_replog_majority_acks_total",
			},
		},
		{
			name: "bad txn spec",
			args: func(s0, s1 string) []string {
				return []string{"-listen", "127.0.0.1:0", "-site", s0, "-txn", "s0:frobnicate:k"}
			},
			wantErr: "unknown op",
		},
		{
			name: "demo needs two sites",
			args: func(s0, s1 string) []string {
				return []string{"-listen", "127.0.0.1:0", "-site", s0, "-demo", "3"}
			},
			wantErr: "at least two -site",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s0 := startTestSite(t, "s0")
			s1 := startTestSite(t, "s1")
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			if tc.cancelCtx {
				cancel()
			}
			var out bytes.Buffer
			err := run(ctx, tc.args(s0, s1), &out)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("run: %v\noutput:\n%s", err, out.String())
			}
			for _, want := range tc.wantOut {
				if !strings.Contains(out.String(), want) {
					t.Errorf("output missing %q:\n%s", want, out.String())
				}
			}
			if tc.jsonl != "" {
				f, err := os.Open(tc.jsonl)
				if err != nil {
					t.Fatalf("trace file: %v", err)
				}
				events, err := trace.ReadJSONL(f)
				f.Close()
				if err != nil {
					t.Fatalf("trace parse: %v", err)
				}
				found := false
				for _, e := range events {
					if e.Type == trace.EvTxnBegin {
						found = true
					}
				}
				if !found {
					t.Errorf("trace %s has no txn.begin among %d events", tc.jsonl, len(events))
				}
			}
			if tc.chrome != "" {
				b, err := os.ReadFile(tc.chrome)
				if err != nil {
					t.Fatalf("chrome file: %v", err)
				}
				if !bytes.Contains(b, []byte(`"traceEvents"`)) {
					t.Errorf("chrome trace missing traceEvents envelope: %s", b[:min(len(b), 200)])
				}
			}
			for _, want := range tc.metrics {
				b, err := os.ReadFile(filepath.Join(dir, "txn.metrics"))
				if err != nil {
					t.Fatalf("metrics file: %v", err)
				}
				if !strings.Contains(string(b), want) {
					t.Errorf("metrics missing %q:\n%s", want, b)
				}
			}
		})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestParseTxnSingleOps(t *testing.T) {
	subs, err := parseTxn("s0:addmin:acct:-40:0 / s1:add:acct:40 / s1:read:acct", proto.CompSemantic)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(subs) != 2 {
		t.Fatalf("subs = %+v", subs)
	}
	if subs[0].Site != "s0" || len(subs[0].Ops) != 1 {
		t.Fatalf("sub0 = %+v", subs[0])
	}
	op := subs[0].Ops[0]
	if op.Kind != proto.OpAdd || op.Delta != -40 || !op.HasMin || op.Min != 0 {
		t.Fatalf("op0 = %+v", op)
	}
	// Ops for the same site merge into one subtransaction, in order.
	if len(subs[1].Ops) != 2 || subs[1].Ops[0].Kind != proto.OpAdd || subs[1].Ops[1].Kind != proto.OpRead {
		t.Fatalf("sub1 = %+v", subs[1])
	}
	if subs[0].Comp != proto.CompSemantic {
		t.Fatalf("comp = %v", subs[0].Comp)
	}
}

func TestParseTxnWriteAndDelete(t *testing.T) {
	subs, err := parseTxn("s0:write:name:alice", proto.CompBeforeImage)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if string(subs[0].Ops[0].Value) != "alice" {
		t.Fatalf("value = %q", subs[0].Ops[0].Value)
	}
}

func TestParseTxnErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"s0",
		"s0:frobnicate:k",
		"s0:write:k",      // missing value
		"s0:add:k",        // missing delta
		"s0:add:k:notnum", // bad delta
		"s0:addmin:k:-1",  // missing min
	} {
		if _, err := parseTxn(bad, proto.CompSemantic); err == nil {
			t.Errorf("parseTxn(%q) accepted", bad)
		}
	}
}

func TestParseComp(t *testing.T) {
	if parseComp("before-image") != proto.CompBeforeImage {
		t.Fatalf("before-image")
	}
	if parseComp("none") != proto.CompNone {
		t.Fatalf("none")
	}
	if parseComp("anything-else") != proto.CompSemantic {
		t.Fatalf("default")
	}
}
