package main

import (
	"testing"

	"o2pc/internal/proto"
)

func TestParseTxnSingleOps(t *testing.T) {
	subs, err := parseTxn("s0:addmin:acct:-40:0 / s1:add:acct:40 / s1:read:acct", proto.CompSemantic)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(subs) != 2 {
		t.Fatalf("subs = %+v", subs)
	}
	if subs[0].Site != "s0" || len(subs[0].Ops) != 1 {
		t.Fatalf("sub0 = %+v", subs[0])
	}
	op := subs[0].Ops[0]
	if op.Kind != proto.OpAdd || op.Delta != -40 || !op.HasMin || op.Min != 0 {
		t.Fatalf("op0 = %+v", op)
	}
	// Ops for the same site merge into one subtransaction, in order.
	if len(subs[1].Ops) != 2 || subs[1].Ops[0].Kind != proto.OpAdd || subs[1].Ops[1].Kind != proto.OpRead {
		t.Fatalf("sub1 = %+v", subs[1])
	}
	if subs[0].Comp != proto.CompSemantic {
		t.Fatalf("comp = %v", subs[0].Comp)
	}
}

func TestParseTxnWriteAndDelete(t *testing.T) {
	subs, err := parseTxn("s0:write:name:alice", proto.CompBeforeImage)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if string(subs[0].Ops[0].Value) != "alice" {
		t.Fatalf("value = %q", subs[0].Ops[0].Value)
	}
}

func TestParseTxnErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"s0",
		"s0:frobnicate:k",
		"s0:write:k",      // missing value
		"s0:add:k",        // missing delta
		"s0:add:k:notnum", // bad delta
		"s0:addmin:k:-1",  // missing min
	} {
		if _, err := parseTxn(bad, proto.CompSemantic); err == nil {
			t.Errorf("parseTxn(%q) accepted", bad)
		}
	}
}

func TestParseComp(t *testing.T) {
	if parseComp("before-image") != proto.CompBeforeImage {
		t.Fatalf("before-image")
	}
	if parseComp("none") != proto.CompNone {
		t.Fatalf("none")
	}
	if parseComp("anything-else") != proto.CompSemantic {
		t.Fatalf("default")
	}
}
