// Command o2pc-coord runs a coordinator process over TCP: it serves
// Resolve inquiries from blocked participants and executes global
// transactions against o2pc-site processes.
//
// A transaction is described with -txn as slash-separated subtransactions,
// each "site:op:key[:arg[:arg]]" with ops:
//
//	read:key              read a key
//	write:key:value       write a string value
//	add:key:delta         int64 increment
//	addmin:key:delta:min  increment that votes NO below min
//
// Example:
//
//	o2pc-coord -name c0 -listen 127.0.0.1:7001 \
//	    -site s0=127.0.0.1:7101 -site s1=127.0.0.1:7102 \
//	    -txn "s0:addmin:acct:-40:0 / s1:add:acct:40" -protocol o2pc -marking p1
//
// With -repeat N the transaction runs N times and a latency summary is
// printed. Without -txn the coordinator just serves Resolve requests.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"sort"
	"strconv"
	"strings"
	"time"

	"o2pc/internal/coord"
	"o2pc/internal/metrics"
	"o2pc/internal/proto"
	"o2pc/internal/rpc"
	"o2pc/internal/wal"
)

type addrList map[string]string

func (a addrList) String() string { return fmt.Sprint(map[string]string(a)) }
func (a addrList) Set(v string) error {
	name, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want name=host:port, got %q", v)
	}
	a[name] = addr
	return nil
}

func main() {
	name := flag.String("name", "c0", "coordinator node name")
	listen := flag.String("listen", "127.0.0.1:7001", "listen address for Resolve inquiries")
	walPath := flag.String("wal", "", "decision log file (default: in-memory)")
	txnSpec := flag.String("txn", "", "transaction description (see package docs)")
	protocolName := flag.String("protocol", "o2pc", "commit protocol: 2pc | o2pc")
	markingName := flag.String("marking", "p1", "marking protocol: none | p1 | p2")
	repeat := flag.Int("repeat", 1, "run the transaction N times")
	demo := flag.Int("demo", 0, "run N random transfers of key 'acct' across the sites and report")
	demoDoom := flag.Float64("demo-doom", 0.1, "fraction of demo transfers that attempt an over-withdrawal (aborted by the AddMin constraint)")
	demoSeed := flag.Int64("demo-seed", 1, "seed for the demo's transfer choices (same seed, same transfer sequence)")
	comp := flag.String("comp", "semantic", "compensation mode: semantic | before-image | none")
	sites := addrList{}
	flag.Var(sites, "site", "site address as name=host:port (repeatable)")
	flag.Parse()

	proto.RegisterGob()

	cfg := coord.Config{Name: *name}
	if *walPath != "" {
		fl, err := wal.OpenFileLog(*walPath)
		if err != nil {
			log.Fatalf("o2pc-coord: open wal: %v", err)
		}
		defer fl.Close()
		cfg.Log = fl
	}
	client := rpc.NewTCPClient(sites)
	c := coord.New(cfg, client)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("o2pc-coord: listen: %v", err)
	}
	srv := rpc.NewServer(*name, c.Handle)
	go srv.Serve(ln)
	log.Printf("coordinator %s serving on %s", *name, ln.Addr())

	if *demo > 0 {
		runDemo(c, sites, *demo, *demoDoom, *demoSeed, protocolOf(*protocolName), markingOf(*markingName))
		return
	}

	if *txnSpec == "" {
		select {} // serve Resolve inquiries forever
	}

	subtxns, err := parseTxn(*txnSpec, parseComp(*comp))
	if err != nil {
		log.Fatalf("o2pc-coord: %v", err)
	}
	protocol := protocolOf(*protocolName)
	marking := markingOf(*markingName)

	lat := metrics.NewHistogram()
	committed := 0
	for i := 0; i < *repeat; i++ {
		res := c.Run(context.Background(), coord.TxnSpec{
			Protocol: protocol,
			Marking:  marking,
			Subtxns:  subtxns,
		})
		if res.Committed() {
			committed++
			lat.ObserveDuration(res.Latency)
		}
		if *repeat == 1 {
			fmt.Printf("%s: %v (latency %v)\n", res.ID, res.Outcome, res.Latency.Round(time.Microsecond))
			if res.Err != nil {
				fmt.Println("  error:", res.Err)
			}
			for site, reads := range res.Reads {
				for key, val := range reads {
					fmt.Printf("  read %s@%s = %q\n", key, site, val)
				}
			}
		}
	}
	if *repeat > 1 {
		fmt.Printf("%d/%d committed; latency(ms): %s\n", committed, *repeat, lat.Snapshot())
	}
}

func protocolOf(name string) proto.Protocol {
	if strings.EqualFold(name, "2pc") {
		return proto.TwoPC
	}
	return proto.O2PC
}

func markingOf(name string) proto.MarkProtocol {
	switch strings.ToLower(name) {
	case "p1":
		return proto.MarkP1
	case "p2":
		return proto.MarkP2
	case "simple":
		return proto.MarkSimple
	default:
		return proto.MarkNone
	}
}

// runDemo drives random transfers of the key "acct" between the configured
// sites, with a fraction refused at vote time, and prints outcome counts
// and a latency summary — a self-contained way to exercise a TCP
// deployment (seed the sites with -seed acct=<amount> first).
func runDemo(c *coord.Coordinator, sites addrList, n int, doom float64, seed int64, protocol proto.Protocol, marking proto.MarkProtocol) {
	names := make([]string, 0, len(sites))
	for name := range sites {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) < 2 {
		log.Fatal("o2pc-coord: -demo needs at least two -site entries")
	}
	rng := rand.New(rand.NewSource(seed))
	lat := metrics.NewHistogram()
	committed, refused, failed := 0, 0, 0
	for i := 0; i < n; i++ {
		from := names[rng.Intn(len(names))]
		to := names[rng.Intn(len(names))]
		for to == from {
			to = names[rng.Intn(len(names))]
		}
		amount := int64(1 + rng.Intn(25))
		if rng.Float64() < doom {
			amount = 1 << 40 // guaranteed over-withdrawal: the source site aborts the transaction
		}
		spec := coord.TxnSpec{
			Protocol: protocol,
			Marking:  marking,
			Subtxns: []coord.SubtxnSpec{
				{Site: from, Ops: []proto.Operation{proto.AddMin("acct", -amount, 0)}, Comp: proto.CompSemantic},
				{Site: to, Ops: []proto.Operation{proto.Add("acct", amount)}, Comp: proto.CompSemantic},
			},
		}
		res := c.Run(context.Background(), spec)
		switch {
		case res.Committed():
			committed++
			lat.ObserveDuration(res.Latency)
		case res.Outcome == coord.AbortedExec:
			failed++
		default:
			refused++
		}
	}
	fmt.Printf("demo: %d committed, %d insufficient-funds, %d other aborts\n", committed, failed, refused)
	fmt.Printf("latency(ms): %s\n", lat.Snapshot())
}

func parseComp(s string) proto.CompMode {
	switch strings.ToLower(s) {
	case "before-image":
		return proto.CompBeforeImage
	case "none":
		return proto.CompNone
	default:
		return proto.CompSemantic
	}
}

// parseTxn parses "site:op:key[:arg[:arg]] / site:op:..." descriptions.
func parseTxn(s string, comp proto.CompMode) ([]coord.SubtxnSpec, error) {
	bySite := make(map[string]*coord.SubtxnSpec)
	var order []string
	for _, part := range strings.Split(s, "/") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 3 {
			return nil, fmt.Errorf("bad subtransaction %q", part)
		}
		site, opName, key := fields[0], fields[1], fields[2]
		var op proto.Operation
		switch strings.ToLower(opName) {
		case "read":
			op = proto.Read(key)
		case "write":
			if len(fields) < 4 {
				return nil, fmt.Errorf("write needs a value: %q", part)
			}
			op = proto.Write(key, []byte(fields[3]))
		case "add":
			if len(fields) < 4 {
				return nil, fmt.Errorf("add needs a delta: %q", part)
			}
			d, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				return nil, err
			}
			op = proto.Add(key, d)
		case "addmin":
			if len(fields) < 5 {
				return nil, fmt.Errorf("addmin needs delta and min: %q", part)
			}
			d, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				return nil, err
			}
			m, err := strconv.ParseInt(fields[4], 10, 64)
			if err != nil {
				return nil, err
			}
			op = proto.AddMin(key, d, m)
		default:
			return nil, fmt.Errorf("unknown op %q", opName)
		}
		st, ok := bySite[site]
		if !ok {
			st = &coord.SubtxnSpec{Site: site, Comp: comp}
			bySite[site] = st
			order = append(order, site)
		}
		st.Ops = append(st.Ops, op)
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("empty transaction")
	}
	out := make([]coord.SubtxnSpec, 0, len(order))
	for _, site := range order {
		out = append(out, *bySite[site])
	}
	return out, nil
}
