// Command o2pc-coord runs a coordinator process over TCP: it serves
// Resolve inquiries from blocked participants and executes global
// transactions against o2pc-site processes.
//
// A transaction is described with -txn as slash-separated subtransactions,
// each "site:op:key[:arg[:arg]]" with ops:
//
//	read:key              read a key
//	write:key:value       write a string value
//	add:key:delta         int64 increment
//	addmin:key:delta:min  increment that votes NO below min
//
// Example:
//
//	o2pc-coord -name c0 -listen 127.0.0.1:7001 \
//	    -site s0=127.0.0.1:7101 -site s1=127.0.0.1:7102 \
//	    -txn "s0:addmin:acct:-40:0 / s1:add:acct:40" -protocol o2pc -marking p1
//
// With -repeat N the transaction runs N times and a latency summary is
// printed. Without -txn the coordinator just serves Resolve requests.
//
// With -protocol paxos (or an explicit -replog-replicas N) the coordinator
// replicates every commit decision through Paxos Commit: N in-process
// acceptor replicas are served over loopback TCP and a DECISION is only
// delivered once a majority has acked its ballot, so the decision survives
// the coordinator's own WAL. /readyz on the ops plane then reflects
// leadership over the replica group.
//
// Observability: -trace FILE writes the coordinator's protocol event log
// as JSONL on exit, -trace-chrome FILE writes the same log as Chrome
// trace-event JSON (loadable in Perfetto or chrome://tracing), and
// -metrics FILE writes the coordinator's counters, gauges, and latency
// histograms in Prometheus text exposition form.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"o2pc/internal/coord"
	"o2pc/internal/metrics"
	"o2pc/internal/ops"
	"o2pc/internal/proto"
	"o2pc/internal/replog"
	"o2pc/internal/rpc"
	"o2pc/internal/sim"
	"o2pc/internal/trace"
	"o2pc/internal/wal"
)

type addrList map[string]string

func (a addrList) String() string { return fmt.Sprint(map[string]string(a)) }
func (a addrList) Set(v string) error {
	name, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want name=host:port, got %q", v)
	}
	a[name] = addr
	return nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		log.Fatalf("o2pc-coord: %v", err)
	}
}

// run is the whole command, factored so tests can drive every path: flags
// are parsed from args, output goes to stdout, and the serve-only path
// (no -txn, no -demo) blocks until ctx is cancelled instead of forever.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("o2pc-coord", flag.ContinueOnError)
	name := fs.String("name", "c0", "coordinator node name")
	listen := fs.String("listen", "127.0.0.1:7001", "listen address for Resolve inquiries")
	walPath := fs.String("wal", "", "decision log file (default: in-memory)")
	txnSpec := fs.String("txn", "", "transaction description (see package docs)")
	protocolName := fs.String("protocol", "o2pc", "commit protocol: 2pc | o2pc | paxos")
	markingName := fs.String("marking", "p1", "marking protocol: none | p1 | p2")
	repeat := fs.Int("repeat", 1, "run the transaction N times")
	demo := fs.Int("demo", 0, "run N random transfers of key 'acct' across the sites and report")
	demoDoom := fs.Float64("demo-doom", 0.1, "fraction of demo transfers that attempt an over-withdrawal (aborted by the AddMin constraint)")
	demoSeed := fs.Int64("demo-seed", 1, "seed for the demo's transfer choices (same seed, same transfer sequence)")
	comp := fs.String("comp", "semantic", "compensation mode: semantic | before-image | none")
	tracePath := fs.String("trace", "", "write the protocol event log as JSONL to this file on exit")
	chromePath := fs.String("trace-chrome", "", "write the protocol event log as Chrome trace-event JSON (Perfetto-loadable) to this file on exit")
	metricsPath := fs.String("metrics", "", "write coordinator metrics in Prometheus text form to this file on exit")
	opsAddr := fs.String("ops-addr", "", "serve the operations HTTP plane (metrics, health, pprof, trace) on this address")
	idlePerPeer := fs.Int("rpc-idle-per-peer", 0, "warm TCP connections kept per peer (0 = default 16, negative disables pooling)")
	batchWindow := fs.Duration("rpc-batch-window", 0, "coalesce outbound votes/decisions per site into one envelope per window (0 disables)")
	batchMax := fs.Int("rpc-batch-max", 0, "messages per coalesced envelope (0 = default 64)")
	execWorkers := fs.Int("exec-workers", 0, "bounded worker pool for exec/vote fan-out (0 = goroutine per site per phase)")
	replicas := fs.Int("replog-replicas", 0, "run N in-process decision-log replicas and log decisions through Paxos Commit ballots (0 = local WAL; defaults to 3 under -protocol paxos)")
	sites := addrList{}
	fs.Var(sites, "site", "site address as name=host:port (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	proto.RegisterGob()

	var tracer *trace.Tracer
	if *tracePath != "" || *chromePath != "" || *opsAddr != "" {
		tracer = trace.New(sim.Real(), trace.DefaultNodeCapacity)
	}
	cfg := coord.Config{Name: *name, Tracer: tracer, ExecWorkers: *execWorkers}
	if *walPath != "" {
		fl, err := wal.OpenFileLog(*walPath)
		if err != nil {
			return fmt.Errorf("open wal: %w", err)
		}
		//o2pcvet:ignore errflow -- process-exit close of a read-side handle; appends were already synced
		defer fl.Close()
		cfg.Log = fl
	}
	if strings.EqualFold(*protocolName, "paxos") && *replicas == 0 {
		*replicas = 3
	}
	var leader *replog.Leader
	if *replicas > 0 {
		// The replicated decision log: N acceptor replicas served over
		// loopback TCP (file-backed next to -wal when set, else in-memory),
		// with this coordinator as the group's Paxos Commit leader. The
		// DECISION for every transaction is majority-acked before delivery.
		repAddrs := map[string]string{}
		repNames := make([]string, 0, *replicas)
		for i := 0; i < *replicas; i++ {
			rcfg := replog.ReplicaConfig{Name: fmt.Sprintf("r%d", i), Tracer: tracer}
			if *walPath != "" {
				fl, err := wal.OpenFileLog(fmt.Sprintf("%s.r%d", *walPath, i))
				if err != nil {
					return fmt.Errorf("open replica wal: %w", err)
				}
				//o2pcvet:ignore errflow -- process-exit close of a read-side handle; appends were already synced
				defer fl.Close()
				rcfg.Log = fl
			}
			rep, err := replog.NewReplica(rcfg)
			if err != nil {
				return fmt.Errorf("replica %s: %w", rcfg.Name, err)
			}
			rln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return fmt.Errorf("replica listen: %w", err)
			}
			defer rln.Close()
			rsrv := rpc.NewServer(rep.Name(), rep.Handle)
			go func() {
				if err := rsrv.Serve(rln); err != nil && !errors.Is(err, net.ErrClosed) {
					fmt.Fprintln(stdout, "o2pc-coord: replica serve:", err)
				}
			}()
			repAddrs[rep.Name()] = rln.Addr().String()
			repNames = append(repNames, rep.Name())
		}
		leader = replog.NewLeader(replog.Config{
			Group:    *name,
			Replicas: repNames,
			Caller:   rpc.NewTCPClientConfig(repAddrs, rpc.TCPClientConfig{}),
			Clock:    sim.Real(),
			Tracer:   tracer,
		})
		cfg.DecisionLog = leader
		fmt.Fprintf(stdout, "coordinator %s replicating decisions to %d replicas\n", *name, *replicas)
	}
	client := rpc.NewTCPClientConfig(sites, rpc.TCPClientConfig{MaxIdlePerPeer: *idlePerPeer})
	var caller rpc.Caller = client
	var coal *rpc.Coalescer
	if *batchWindow > 0 {
		// Per-peer message coalescing: votes and decisions to one site ride
		// shared envelopes (the sites' servers always unwrap them).
		coal = rpc.NewCoalescer(client, rpc.CoalesceConfig{
			Window:   *batchWindow,
			MaxBatch: *batchMax,
			Tracer:   tracer,
		})
		caller = coal
	}
	c := coord.New(cfg, caller)
	defer c.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	defer ln.Close()
	srv := rpc.NewServer(*name, c.Handle)
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, net.ErrClosed) {
			fmt.Fprintln(stdout, "o2pc-coord: serve:", err)
		}
	}()
	fmt.Fprintf(stdout, "coordinator %s serving on %s\n", *name, ln.Addr())

	if *opsAddr != "" {
		opsSrv := ops.NewServer(ops.Config{
			Node:     *name,
			Registry: metrics.NewRegistry(),
			Collect: func(r *metrics.Registry) {
				c.Stats().Publish(r, "o2pc_coord_")
				if coal != nil {
					coal.Stats().Publish(r, "o2pc_coord_")
				}
				if leader != nil {
					leader.Stats().Publish(r, "o2pc_coord_replog_")
				}
			},
			Health: c.Health,
			Ready:  c.Ready,
			Tracer: tracer,
			Vars: map[string]any{
				"name":     *name,
				"listen":   *listen,
				"sites":    map[string]string(sites),
				"protocol": *protocolName,
				"marking":  *markingName,
				"replicas": *replicas,
			},
			Sample: true,
		})
		bound, err := opsSrv.Start(*opsAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "coordinator %s ops plane on http://%s\n", *name, bound)
		defer func() {
			sctx, cancel := sim.Real().WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			//o2pcvet:ignore errflow -- process-exit drain; a failed ops shutdown must not mask the run's result
			_ = opsSrv.Shutdown(sctx)
		}()
	}

	switch {
	case *demo > 0:
		err = runDemo(stdout, c, sites, *demo, *demoDoom, *demoSeed, protocolOf(*protocolName), markingOf(*markingName))
	case *txnSpec != "":
		err = runTxn(ctx, stdout, c, *txnSpec, parseComp(*comp), protocolOf(*protocolName), markingOf(*markingName), *repeat)
	default:
		<-ctx.Done() // serve Resolve inquiries until cancelled
	}
	if err != nil {
		return err
	}
	return writeArtifacts(c, leader, tracer, *tracePath, *chromePath, *metricsPath)
}

// writeArtifacts dumps the trace and metrics files requested by flags.
func writeArtifacts(c *coord.Coordinator, leader *replog.Leader, tracer *trace.Tracer, tracePath, chromePath, metricsPath string) error {
	writeFile := func(path string, write func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if tracePath != "" {
		events := tracer.Events()
		if err := writeFile(tracePath, func(w io.Writer) error { return trace.WriteJSONL(w, events) }); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
	}
	if chromePath != "" {
		events := tracer.Events()
		if err := writeFile(chromePath, func(w io.Writer) error { return trace.WriteChrome(w, events) }); err != nil {
			return fmt.Errorf("write chrome trace: %w", err)
		}
	}
	if metricsPath != "" {
		reg := metrics.NewRegistry()
		c.Stats().Publish(reg, "o2pc_coord_")
		if leader != nil {
			leader.Stats().Publish(reg, "o2pc_coord_replog_")
		}
		if err := writeFile(metricsPath, reg.WriteText); err != nil {
			return fmt.Errorf("write metrics: %w", err)
		}
	}
	return nil
}

// runTxn parses and executes the -txn transaction -repeat times.
func runTxn(ctx context.Context, stdout io.Writer, c *coord.Coordinator, txnSpec string, comp proto.CompMode, protocol proto.Protocol, marking proto.MarkProtocol, repeat int) error {
	subtxns, err := parseTxn(txnSpec, comp)
	if err != nil {
		return err
	}
	lat := metrics.NewHistogram()
	committed := 0
	for i := 0; i < repeat; i++ {
		res := c.Run(ctx, coord.TxnSpec{
			Protocol: protocol,
			Marking:  marking,
			Subtxns:  subtxns,
		})
		if res.Committed() {
			committed++
			lat.ObserveDuration(res.Latency)
		}
		if repeat == 1 {
			fmt.Fprintf(stdout, "%s: %v (latency %v)\n", res.ID, res.Outcome, res.Latency.Round(time.Microsecond))
			if res.Err != nil {
				fmt.Fprintln(stdout, "  error:", res.Err)
			}
			for site, reads := range res.Reads {
				for key, val := range reads {
					fmt.Fprintf(stdout, "  read %s@%s = %q\n", key, site, val)
				}
			}
		}
	}
	if repeat > 1 {
		fmt.Fprintf(stdout, "%d/%d committed; latency(ms): %s\n", committed, repeat, lat.Snapshot())
	}
	return nil
}

func protocolOf(name string) proto.Protocol {
	switch {
	case strings.EqualFold(name, "2pc"):
		return proto.TwoPC
	case strings.EqualFold(name, "paxos"):
		return proto.Paxos
	}
	return proto.O2PC
}

func markingOf(name string) proto.MarkProtocol {
	switch strings.ToLower(name) {
	case "p1":
		return proto.MarkP1
	case "p2":
		return proto.MarkP2
	case "simple":
		return proto.MarkSimple
	default:
		return proto.MarkNone
	}
}

// runDemo drives random transfers of the key "acct" between the configured
// sites, with a fraction refused at vote time, and prints outcome counts
// and a latency summary — a self-contained way to exercise a TCP
// deployment (seed the sites with -seed acct=<amount> first).
func runDemo(stdout io.Writer, c *coord.Coordinator, sites addrList, n int, doom float64, seed int64, protocol proto.Protocol, marking proto.MarkProtocol) error {
	names := make([]string, 0, len(sites))
	for name := range sites {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) < 2 {
		return fmt.Errorf("-demo needs at least two -site entries")
	}
	rng := rand.New(rand.NewSource(seed))
	lat := metrics.NewHistogram()
	committed, refused, failed := 0, 0, 0
	for i := 0; i < n; i++ {
		from := names[rng.Intn(len(names))]
		to := names[rng.Intn(len(names))]
		for to == from {
			to = names[rng.Intn(len(names))]
		}
		amount := int64(1 + rng.Intn(25))
		if rng.Float64() < doom {
			amount = 1 << 40 // guaranteed over-withdrawal: the source site aborts the transaction
		}
		spec := coord.TxnSpec{
			Protocol: protocol,
			Marking:  marking,
			Subtxns: []coord.SubtxnSpec{
				{Site: from, Ops: []proto.Operation{proto.AddMin("acct", -amount, 0)}, Comp: proto.CompSemantic},
				{Site: to, Ops: []proto.Operation{proto.Add("acct", amount)}, Comp: proto.CompSemantic},
			},
		}
		res := c.Run(context.Background(), spec)
		switch {
		case res.Committed():
			committed++
			lat.ObserveDuration(res.Latency)
		case res.Outcome == coord.AbortedExec:
			failed++
		default:
			refused++
		}
	}
	fmt.Fprintf(stdout, "demo: %d committed, %d insufficient-funds, %d other aborts\n", committed, failed, refused)
	fmt.Fprintf(stdout, "latency(ms): %s\n", lat.Snapshot())
	return nil
}

func parseComp(s string) proto.CompMode {
	switch strings.ToLower(s) {
	case "before-image":
		return proto.CompBeforeImage
	case "none":
		return proto.CompNone
	default:
		return proto.CompSemantic
	}
}

// parseTxn parses "site:op:key[:arg[:arg]] / site:op:..." descriptions.
func parseTxn(s string, comp proto.CompMode) ([]coord.SubtxnSpec, error) {
	bySite := make(map[string]*coord.SubtxnSpec)
	var order []string
	for _, part := range strings.Split(s, "/") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 3 {
			return nil, fmt.Errorf("bad subtransaction %q", part)
		}
		site, opName, key := fields[0], fields[1], fields[2]
		var op proto.Operation
		switch strings.ToLower(opName) {
		case "read":
			op = proto.Read(key)
		case "write":
			if len(fields) < 4 {
				return nil, fmt.Errorf("write needs a value: %q", part)
			}
			op = proto.Write(key, []byte(fields[3]))
		case "add":
			if len(fields) < 4 {
				return nil, fmt.Errorf("add needs a delta: %q", part)
			}
			d, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				return nil, err
			}
			op = proto.Add(key, d)
		case "addmin":
			if len(fields) < 5 {
				return nil, fmt.Errorf("addmin needs delta and min: %q", part)
			}
			d, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				return nil, err
			}
			m, err := strconv.ParseInt(fields[4], 10, 64)
			if err != nil {
				return nil, err
			}
			op = proto.AddMin(key, d, m)
		default:
			return nil, fmt.Errorf("unknown op %q", opName)
		}
		st, ok := bySite[site]
		if !ok {
			st = &coord.SubtxnSpec{Site: site, Comp: comp}
			bySite[site] = st
			order = append(order, site)
		}
		st.Ops = append(st.Ops, op)
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("empty transaction")
	}
	out := make([]coord.SubtxnSpec, 0, len(order))
	for _, site := range order {
		out = append(out, *bySite[site])
	}
	return out, nil
}
