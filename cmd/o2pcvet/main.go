// Command o2pcvet is the repository's multichecker: it runs the
// internal/analyzers suite (walltime, walorder, lockheld, exhaustive,
// randdet) over the named package patterns and exits non-zero if any
// diagnostic is reported. CI runs it as `go run ./cmd/o2pcvet ./...`; see
// DESIGN.md §8 for what each pass enforces and why.
//
// Findings can be suppressed line-by-line with a justified directive:
//
//	//o2pcvet:ignore walltime -- reason the wall clock is correct here
//
// placed on the offending line or the line above it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"o2pc/internal/analyzers"
	"o2pc/internal/analyzers/framework"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("o2pcvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "directory to resolve package patterns from")
	only := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*framework.Analyzer, len(suite))
		for _, a := range suite {
			byName[a.Name] = a
		}
		var picked []*framework.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "o2pcvet: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		suite = picked
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	pkgs, err := framework.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "o2pcvet: %v\n", err)
		return 2
	}
	diags, err := framework.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintf(stderr, "o2pcvet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "o2pcvet: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
