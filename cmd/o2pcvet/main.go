// Command o2pcvet is the repository's multichecker: it runs the
// internal/analyzers suite (walltime, walorder, ackorder, lockheld,
// exhaustive, randdet, maporder, errflow, lockorder, goleak) over the named package
// patterns and exits non-zero if any diagnostic is reported. CI runs it as
// `go run ./cmd/o2pcvet ./...`; see DESIGN.md §8 and §13 for what each
// pass enforces and why.
//
// Findings can be suppressed line-by-line with a justified directive:
//
//	//o2pcvet:ignore walltime -- reason the wall clock is correct here
//
// placed on the offending line or the line above it.
//
// For machine consumption, -json prints the findings as a sorted JSON
// array of {analyzer, file, line, col, message} objects with repo-relative
// file paths. A baseline workflow supports ratcheting: -baseline FILE
// suppresses findings whose (analyzer, file, message) triple appears in
// FILE (line numbers are deliberately ignored so unrelated edits don't
// invalidate the baseline), and -update-baseline rewrites FILE with the
// current findings. The checked-in o2pcvet.baseline.json is empty and must
// stay empty: new findings are fixed or annotated with a reasoned
// directive, never baselined away.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"o2pc/internal/analyzers"
	"o2pc/internal/analyzers/framework"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the machine-readable shape of one diagnostic. File is
// relative to the -C directory when the diagnostic lies under it.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("o2pcvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "directory to resolve package patterns from")
	only := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	asJSON := fs.Bool("json", false, "print findings as a JSON array instead of text")
	baseline := fs.String("baseline", "", "suppress findings recorded in this baseline JSON file")
	update := fs.Bool("update-baseline", false, "rewrite the -baseline file with the current findings and exit 0")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*framework.Analyzer, len(suite))
		for _, a := range suite {
			byName[a.Name] = a
		}
		var picked []*framework.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "o2pcvet: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		suite = picked
	}
	if *update && *baseline == "" {
		fmt.Fprintln(stderr, "o2pcvet: -update-baseline requires -baseline")
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	pkgs, err := framework.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "o2pcvet: %v\n", err)
		return 2
	}
	diags, err := framework.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintf(stderr, "o2pcvet: %v\n", err)
		return 2
	}

	findings := relativize(diags, *dir)
	if *baseline != "" && !*update {
		old, err := readBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "o2pcvet: %v\n", err)
			return 2
		}
		findings = filterBaselined(findings, old)
	}
	if *update {
		if err := writeBaseline(*baseline, findings); err != nil {
			fmt.Fprintf(stderr, "o2pcvet: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "o2pcvet: wrote %d finding(s) to %s\n", len(findings), *baseline)
		return 0
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []jsonFinding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "o2pcvet: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "o2pcvet: %d finding(s) across %d package(s)\n",
			len(findings), countTargets(pkgs))
		return 1
	}
	return 0
}

// relativize converts framework diagnostics to the JSON shape, rewriting
// file paths under dir as dir-relative so baselines and artifacts are
// stable across checkouts. Run already sorted and deduplicated the input.
func relativize(diags []framework.Diagnostic, dir string) []jsonFinding {
	abs, err := filepath.Abs(dir)
	if err != nil {
		abs = ""
	}
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if abs != "" {
			if rel, err := filepath.Rel(abs, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
		}
		out = append(out, jsonFinding{
			Analyzer: d.Analyzer,
			File:     file,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		})
	}
	return out
}

// baselineKey identifies a finding for baseline matching. Line and column
// are excluded on purpose: a baseline entry keeps suppressing its finding
// as surrounding code moves, and disappears from -update-baseline output
// once the finding is actually fixed.
func baselineKey(f jsonFinding) string {
	return f.Analyzer + "\x00" + f.File + "\x00" + f.Message
}

func readBaseline(path string) ([]jsonFinding, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var out []jsonFinding
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return out, nil
}

func writeBaseline(path string, findings []jsonFinding) error {
	if findings == nil {
		findings = []jsonFinding{}
	}
	data, err := json.MarshalIndent(findings, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func filterBaselined(findings, baseline []jsonFinding) []jsonFinding {
	if len(baseline) == 0 {
		return findings
	}
	known := make(map[string]bool, len(baseline))
	for _, f := range baseline {
		known[baselineKey(f)] = true
	}
	var out []jsonFinding
	for _, f := range findings {
		if !known[baselineKey(f)] {
			out = append(out, f)
		}
	}
	return out
}

// countTargets counts the packages the patterns named directly, excluding
// dependencies loaded only for cross-package facts.
func countTargets(pkgs []*framework.Package) int {
	n := 0
	for _, p := range pkgs {
		if !p.DepOnly {
			n++
		}
	}
	return n
}
