package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunCleanAtHead is the executable form of the acceptance criterion:
// `go run ./cmd/o2pcvet ./...` must exit 0 on the repository as committed.
func TestRunCleanAtHead(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped in -short")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", "../..", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("o2pcvet ./... = exit %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("o2pcvet -list = exit %d, want 0 (stderr: %s)", code, stderr.String())
	}
	for _, name := range []string{
		"walltime", "walorder", "lockheld", "exhaustive", "randdet",
		"maporder", "errflow", "lockorder", "goleak",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", "nosuchpass", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown analyzer = exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing explanation: %s", stderr.String())
	}
}

// TestRunSubset runs a single cheap analyzer over this package only, so the
// subset plumbing is covered without a full-module load.
func TestRunSubset(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", "randdet", "."}, &stdout, &stderr); code != 0 {
		t.Fatalf("o2pcvet -analyzers randdet . = exit %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}

// TestRunJSONClean checks that a clean run under -json emits exactly an
// empty JSON array, so CI artifact consumers never have to special-case
// the no-findings shape.
func TestRunJSONClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", "randdet", "-json", "."}, &stdout, &stderr); code != 0 {
		t.Fatalf("o2pcvet -json . = exit %d, want 0 (stderr: %s)", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}

func TestRunUpdateBaselineRequiresPath(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-update-baseline", "."}, &stdout, &stderr); code != 2 {
		t.Fatalf("-update-baseline without -baseline = exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "requires -baseline") {
		t.Errorf("stderr missing explanation: %s", stderr.String())
	}
}

// TestBaselineRoundTrip exercises the baseline file format and its
// matching rule: entries suppress findings by (analyzer, file, message)
// regardless of position, and unknown findings survive the filter.
func TestBaselineRoundTrip(t *testing.T) {
	old := jsonFinding{Analyzer: "errflow", File: "internal/wal/wal.go", Line: 10, Col: 2, Message: "discards the error"}
	path := t.TempDir() + "/base.json"
	if err := writeBaseline(path, []jsonFinding{old}); err != nil {
		t.Fatalf("writeBaseline: %v", err)
	}
	base, err := readBaseline(path)
	if err != nil {
		t.Fatalf("readBaseline: %v", err)
	}
	moved := old
	moved.Line, moved.Col = 99, 7
	novel := jsonFinding{Analyzer: "maporder", File: "internal/site/site.go", Line: 3, Col: 1, Message: "map order"}
	got := filterBaselined([]jsonFinding{moved, novel}, base)
	if len(got) != 1 || got[0] != novel {
		t.Errorf("filterBaselined = %+v, want only the novel finding", got)
	}
}

// TestRunBaselineFlags drives -update-baseline and -baseline end to end on
// a clean package: the update writes an empty array, and a baseline with a
// stale entry still yields exit 0.
func TestRunBaselineFlags(t *testing.T) {
	path := t.TempDir() + "/base.json"
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", "randdet", "-baseline", path, "-update-baseline", "."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-update-baseline = exit %d, want 0 (stderr: %s)", code, stderr.String())
	}
	base, err := readBaseline(path)
	if err != nil {
		t.Fatalf("readBaseline after update: %v", err)
	}
	if len(base) != 0 {
		t.Errorf("baseline of clean package has %d entries, want 0", len(base))
	}
	stdout.Reset()
	stderr.Reset()
	if err := writeBaseline(path, []jsonFinding{{Analyzer: "randdet", File: "gone.go", Message: "stale"}}); err != nil {
		t.Fatalf("writeBaseline: %v", err)
	}
	if code := run([]string{"-analyzers", "randdet", "-baseline", path, "."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-baseline run = exit %d, want 0 (stderr: %s)", code, stderr.String())
	}
}
