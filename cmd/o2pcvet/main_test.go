package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunCleanAtHead is the executable form of the acceptance criterion:
// `go run ./cmd/o2pcvet ./...` must exit 0 on the repository as committed.
func TestRunCleanAtHead(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped in -short")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", "../..", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("o2pcvet ./... = exit %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("o2pcvet -list = exit %d, want 0 (stderr: %s)", code, stderr.String())
	}
	for _, name := range []string{"walltime", "walorder", "lockheld", "exhaustive", "randdet"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", "nosuchpass", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown analyzer = exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing explanation: %s", stderr.String())
	}
}

// TestRunSubset runs a single cheap analyzer over this package only, so the
// subset plumbing is covered without a full-module load.
func TestRunSubset(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", "randdet", "."}, &stdout, &stderr); code != 0 {
		t.Fatalf("o2pcvet -analyzers randdet . = exit %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}
