package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"o2pc/internal/rpc"
	"o2pc/internal/site"
)

// syncBuffer is a goroutine-safe stdout sink: the live table and scrape
// goroutines write concurrently with the main run.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startTestSite serves a real site over TCP loopback. Accounts start
// empty: the loadgen's own -fund seeding pass must make them usable.
func startTestSite(t *testing.T, name string) string {
	t.Helper()
	s := site.NewSite(site.Config{Name: name})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go rpc.NewServer(name, s.Handle).Serve(ln)
	return name + "=" + ln.Addr().String()
}

// TestLoadgenRun drives the full loadgen against two live TCP sites: a
// mixed one-shot/session workload with dooms, self-scraping through its
// own ops plane, and a BENCH-style summary whose scraped view must agree
// with the client-measured one.
func TestLoadgenRun(t *testing.T) {
	s0 := startTestSite(t, "s0")
	s1 := startTestSite(t, "s1")
	out := &syncBuffer{}
	summaryPath := filepath.Join(t.TempDir(), "summary.json")

	err := run(context.Background(), []string{
		"-listen", "127.0.0.1:0",
		"-site", s0, "-site", s1,
		"-clients", "4", "-n", "60",
		"-session-frac", "0.4", "-rounds", "2",
		"-doom", "0.2", "-seed", "1",
		"-scrape-interval", "20ms", "-table", "25ms",
		"-ops-addr", "127.0.0.1:0",
		"-out", summaryPath,
	}, out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}

	text := out.String()
	for _, want := range []string{
		"resolve server on",
		"funded 4 account(s) x 2 site(s)",
		"ops plane on http://",
		"loadgen: 60 txns",
		"committed",
		"client latency(ms):",
		"scraped self:",
		"summary written to",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}

	raw, err := os.ReadFile(summaryPath)
	if err != nil {
		t.Fatalf("summary: %v", err)
	}
	var summary struct {
		Benchmarks map[string]map[string]float64 `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &summary); err != nil {
		t.Fatalf("summary parse: %v\n%s", err, raw)
	}
	total := summary.Benchmarks["Loadgen/total"]
	if total == nil {
		t.Fatalf("summary missing Loadgen/total: %s", raw)
	}
	if total["iterations"] != 60 {
		t.Errorf("iterations = %v, want 60", total["iterations"])
	}
	if total["txn_per_s"] <= 0 || total["p50_ms"] <= 0 || total["p99_ms"] <= 0 {
		t.Errorf("degenerate totals: %+v", total)
	}
	// With site-ordered transfer subtxns and funded accounts, the only
	// systematic aborts are the 20% dooms — the run must commit well over
	// half its transactions rather than collapsing into lock-timeout churn.
	if total["pct_commit"] < 50 {
		t.Errorf("pct_commit = %.1f, want > 50 (deadlock/funding regression?)\n%s", total["pct_commit"], text)
	}
	scraped := summary.Benchmarks["Loadgen/scraped"]
	if scraped == nil {
		t.Fatalf("summary missing Loadgen/scraped: %s", raw)
	}
	// The scraped coordinator counted exactly the transactions the clients
	// issued, so the two throughput numbers must agree well inside the 10%
	// acceptance band.
	if rel := math.Abs(scraped["txn_per_s"]-total["txn_per_s"]) / total["txn_per_s"]; rel > 0.10 {
		t.Errorf("scraped txn/s %.2f vs client %.2f: off by %.1f%%",
			scraped["txn_per_s"], total["txn_per_s"], 100*rel)
	}
	if scraped["iterations"] != 60 {
		t.Errorf("scraped iterations = %v, want 60", scraped["iterations"])
	}
	// Latency is measured at two points of the same call path (around
	// c.Run vs inside it); on loopback they track closely, but leave slack
	// for scheduler noise under -race.
	if total["p50_ms"] > 0 && scraped["p50_ms"] > 0 {
		if ratio := scraped["p50_ms"] / total["p50_ms"]; ratio < 0.5 || ratio > 1.5 {
			t.Errorf("scraped p50 %.3fms vs client %.3fms: ratio %.2f", scraped["p50_ms"], total["p50_ms"], ratio)
		}
	}
	if oneshot := summary.Benchmarks["Loadgen/oneshot"]; oneshot["iterations"]+summary.Benchmarks["Loadgen/session"]["iterations"] != 60 {
		t.Errorf("one-shot (%v) + session (%v) iterations != 60",
			oneshot["iterations"], summary.Benchmarks["Loadgen/session"]["iterations"])
	}
}

// TestLoadgenFlagValidation exercises the fail-fast paths.
func TestLoadgenFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no sites", []string{"-n", "5"}, "two -site"},
		{"one site", []string{"-n", "5", "-site", "s0=127.0.0.1:1"}, "two -site"},
		{"unbounded", []string{"-n", "0", "-site", "s0=127.0.0.1:1", "-site", "s1=127.0.0.1:2"}, "-n or -duration"},
		{"bad rounds", []string{"-rounds", "0", "-site", "s0=127.0.0.1:1", "-site", "s1=127.0.0.1:2"}, "-rounds"},
		{"bad keys", []string{"-keys", "0", "-site", "s0=127.0.0.1:1", "-site", "s1=127.0.0.1:2"}, "-keys"},
		{"bad site flag", []string{"-site", "s0"}, "name=value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(context.Background(), tc.args, &syncBuffer{})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestNormalizeScrapeURL(t *testing.T) {
	cases := map[string]string{
		"127.0.0.1:9100":                "http://127.0.0.1:9100/metrics",
		"127.0.0.1:9100/metrics":        "http://127.0.0.1:9100/metrics",
		"http://h:1/metrics":            "http://h:1/metrics",
		"http://h:1":                    "http://h:1/metrics",
		"https://h:1/custom/path":       "https://h:1/custom/path",
		"h.example.com:9100/other/path": "http://h.example.com:9100/other/path",
	}
	for in, want := range cases {
		if got := normalizeScrapeURL(in); got != want {
			t.Errorf("normalizeScrapeURL(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParsePromText(t *testing.T) {
	in := `# HELP m_total things
# TYPE m_total counter
m_total 41
m_ms{quantile="0.5"} 1.25
m_ms{site="a b",quantile="0.99"} 7
malformed line without number trailing
`
	got, err := parsePromText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got["m_total"] != 41 {
		t.Errorf("m_total = %v", got["m_total"])
	}
	if got[`m_ms{quantile="0.5"}`] != 1.25 {
		t.Errorf("quantile sample = %v", got[`m_ms{quantile="0.5"}`])
	}
	// Label values may contain spaces; the split is at the LAST space.
	if got[`m_ms{site="a b",quantile="0.99"}`] != 7 {
		t.Errorf("labeled sample = %v", got)
	}
	if _, ok := got["malformed line without number"]; ok {
		t.Errorf("malformed line parsed: %v", got)
	}
}
