// Command o2pc-loadgen drives a live TCP cluster of o2pc-site processes
// with N concurrent clients issuing a mix of one-shot transfers and
// multi-shot sessions, while scraping /metrics endpoints on an interval.
// It embeds its own coordinator (so sites must be launched with
// -coord <name>=<loadgen resolve address>, default name "lg", for
// in-doubt Resolve inquiries to route back here).
//
// On startup it funds -keys accounts per site (acct0..acctN-1) with
// -fund through a one-off seeding transaction, so sites need no -seed
// flags; transfers then spread across those accounts, with each
// transfer's debit/credit pair shipped in site-name order so concurrent
// opposite transfers cannot form a distributed 2PL deadlock.
//
// Example against two sites serving on 7101/7102 with ops planes:
//
//	o2pc-site -name s0 -listen 127.0.0.1:7101 -coord lg=127.0.0.1:7201 \
//	    -ops-addr 127.0.0.1:9101
//	o2pc-site -name s1 -listen 127.0.0.1:7102 -coord lg=127.0.0.1:7201 \
//	    -ops-addr 127.0.0.1:9102
//	o2pc-loadgen -listen 127.0.0.1:7201 \
//	    -site s0=127.0.0.1:7101 -site s1=127.0.0.1:7102 \
//	    -clients 8 -n 2000 -session-frac 0.25 -doom 0.1 \
//	    -scrape s0=127.0.0.1:9101 -scrape s1=127.0.0.1:9102 \
//	    -ops-addr 127.0.0.1:9200 -out BENCH_loadgen.json
//
// While running it prints a live table (throughput, client-side latency
// quantiles, and the scraped exposure-window p99 from the sites); on exit
// it writes a BENCH_*.json-compatible summary whose client-measured
// txn/s and latency quantiles sit next to the values scraped from its
// own /metrics, so the two measurement paths can be cross-checked.
//
// With -ops-addr the loadgen serves the operations plane itself
// (its embedded coordinator's commit/abort counters and per-phase
// latency histograms) and adds that endpoint to the scrape set as
// target "self".
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"o2pc/internal/coord"
	"o2pc/internal/metrics"
	"o2pc/internal/ops"
	"o2pc/internal/proto"
	"o2pc/internal/rpc"
	"o2pc/internal/sim"
	"o2pc/internal/trace"
)

// addrList collects repeated name=value flags.
type addrList map[string]string

func (a addrList) String() string { return fmt.Sprint(map[string]string(a)) }
func (a addrList) Set(v string) error {
	name, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want name=value, got %q", v)
	}
	a[name] = addr
	return nil
}

// sortedNames returns the map's keys in sorted order, so every iteration
// that reaches output is deterministic.
func sortedNames(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "o2pc-loadgen:", err)
		os.Exit(1)
	}
}

// config carries the parsed flags plus derived state shared by the
// workers, the scraper, and the table printer.
type config struct {
	name        string
	protocol    proto.Protocol
	marking     proto.MarkProtocol
	comp        proto.CompMode
	keys        []string
	clients     int
	n           int
	duration    time.Duration
	doom        float64
	sessionFrac float64
	rounds      int
	think       time.Duration
	seed        int64
}

// keyNames derives the account keys: the bare base for -keys 1, else
// base0..baseN-1 so concurrent transfers spread over N accounts per site.
func keyNames(base string, n int) []string {
	if n <= 1 {
		return []string{base}
	}
	out := make([]string, n)
	for i := range out {
		out[i] = base + strconv.Itoa(i)
	}
	return out
}

// tally aggregates client-side measurements across the workers.
type tally struct {
	mu         sync.Mutex
	done       int
	committed  int
	execAborts int // insufficient funds / deadlock victims
	other      int
	sessions   int
	lat        *metrics.Histogram // ms, all outcomes
	oneShotLat *metrics.Histogram
	sessionLat *metrics.Histogram
}

func newTally() *tally {
	return &tally{
		lat:        metrics.NewHistogram(),
		oneShotLat: metrics.NewHistogram(),
		sessionLat: metrics.NewHistogram(),
	}
}

func (t *tally) record(res coord.Result, session bool, ms float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done++
	if session {
		t.sessions++
		t.sessionLat.Observe(ms)
	} else {
		t.oneShotLat.Observe(ms)
	}
	t.lat.Observe(ms)
	switch {
	case res.Committed():
		t.committed++
	case res.Outcome == coord.AbortedExec:
		t.execAborts++
	default:
		t.other++
	}
}

// snapshot returns the tally's fields without holding the lock afterwards.
func (t *tally) snapshot() (done, committed, execAborts, other, sessions int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done, t.committed, t.execAborts, t.other, t.sessions
}

// run is the whole command, factored so tests can drive it end to end.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("o2pc-loadgen", flag.ContinueOnError)
	name := fs.String("name", "lg", "loadgen coordinator node name (sites must be started with -coord <name>=<addr>)")
	listen := fs.String("listen", "127.0.0.1:0", "listen address for Resolve inquiries from blocked sites")
	clients := fs.Int("clients", 4, "concurrent client workers")
	n := fs.Int("n", 200, "total transactions to issue across all clients (0 = run until -duration)")
	duration := fs.Duration("duration", 0, "stop issuing new transactions after this long (0 = until -n)")
	protocolName := fs.String("protocol", "o2pc", "commit protocol: 2pc | o2pc | paxos")
	markingName := fs.String("marking", "p1", "marking protocol: none | p1 | p2 | simple")
	compName := fs.String("comp", "semantic", "compensation mode: semantic | before-image | none")
	key := fs.String("key", "acct", "account key base the transfers move money between")
	keys := fs.Int("keys", 4, "accounts per site (key0..keyN-1; 1 uses the bare -key name)")
	fund := fs.Int64("fund", 1_000_000, "initial balance credited to every account at startup (0 skips funding)")
	doom := fs.Float64("doom", 0.1, "fraction of transfers attempting an over-withdrawal (aborted by the AddMin constraint)")
	sessionFrac := fs.Float64("session-frac", 0.25, "fraction of transactions driven as multi-shot sessions")
	rounds := fs.Int("rounds", 2, "rounds per multi-shot session")
	think := fs.Duration("think", 0, "client pause between session rounds")
	seed := fs.Int64("seed", 1, "base seed for the per-worker transfer choices")
	scrapeInterval := fs.Duration("scrape-interval", time.Second, "interval between /metrics scrapes")
	tableInterval := fs.Duration("table", time.Second, "live table print interval (0 disables)")
	outPath := fs.String("out", "", "write a BENCH-style summary JSON to this file")
	opsAddr := fs.String("ops-addr", "", "serve the loadgen's own operations HTTP plane on this address (also scraped as target \"self\")")
	idlePerPeer := fs.Int("rpc-idle-per-peer", 0, "warm TCP connections kept per peer (0 = default 16, negative disables pooling)")
	batchWindow := fs.Duration("rpc-batch-window", 0, "coalesce outbound votes/decisions per site into one envelope per window (0 disables)")
	batchMax := fs.Int("rpc-batch-max", 0, "messages per coalesced envelope (0 = default 64)")
	execWorkers := fs.Int("exec-workers", 0, "bounded worker pool for exec/vote fan-out (0 = goroutine per site per phase)")
	sites := addrList{}
	fs.Var(sites, "site", "site address as name=host:port (repeatable)")
	scrapes := addrList{}
	fs.Var(scrapes, "scrape", "metrics endpoint to scrape as name=url (repeatable; bare host:port gets http:// and /metrics added)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(sites) < 2 {
		return fmt.Errorf("need at least two -site entries to transfer between")
	}
	if *n <= 0 && *duration <= 0 {
		return fmt.Errorf("need -n or -duration to bound the run")
	}
	if *rounds < 1 {
		return fmt.Errorf("-rounds must be at least 1")
	}
	if *keys < 1 {
		return fmt.Errorf("-keys must be at least 1")
	}

	proto.RegisterGob()
	clock := sim.Real()
	cfg := config{
		name:        *name,
		protocol:    protocolOf(*protocolName),
		marking:     markingOf(*markingName),
		comp:        compOf(*compName),
		keys:        keyNames(*key, *keys),
		clients:     *clients,
		n:           *n,
		duration:    *duration,
		doom:        *doom,
		sessionFrac: *sessionFrac,
		rounds:      *rounds,
		think:       *think,
		seed:        *seed,
	}

	// The embedded coordinator. The PID in the ID prefix keeps transaction
	// IDs unique across loadgen runs against the same long-lived sites —
	// sites fence re-used IDs of already-decided transactions — and away
	// from any o2pc-coord sharing the cluster.
	idPrefix := fmt.Sprintf("%s-%d-", *name, os.Getpid())
	var tracer *trace.Tracer
	if *opsAddr != "" {
		tracer = trace.New(clock, trace.DefaultNodeCapacity)
	}
	client := rpc.NewTCPClientConfig(sites, rpc.TCPClientConfig{MaxIdlePerPeer: *idlePerPeer})
	var caller rpc.Caller = client
	var coal *rpc.Coalescer
	if *batchWindow > 0 {
		// Per-peer message coalescing: the workload coordinator's votes and
		// decisions to one site ride shared envelopes.
		coal = rpc.NewCoalescer(client, rpc.CoalesceConfig{
			Window:   *batchWindow,
			MaxBatch: *batchMax,
			Tracer:   tracer,
		})
		caller = coal
	}
	c := coord.New(coord.Config{
		Name:        *name,
		IDPrefix:    idPrefix,
		Tracer:      tracer,
		ExecWorkers: *execWorkers,
	}, caller)
	defer c.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	defer ln.Close()
	srv := rpc.NewServer(*name, c.Handle)
	go func() {
		if serr := srv.Serve(ln); serr != nil {
			fmt.Fprintln(stdout, "o2pc-loadgen: serve:", serr)
		}
	}()
	fmt.Fprintf(stdout, "loadgen %s resolve server on %s\n", *name, ln.Addr())

	siteNames := sortedNames(sites)
	if *fund > 0 {
		// Fund every account at every site up front, through a separate
		// coordinator so the workload's stats (and the scraped view the
		// summary is cross-checked against) stay untouched.
		if err := fundAccounts(ctx, cfg, *name, idPrefix, *fund, siteNames, sites); err != nil {
			return fmt.Errorf("funding accounts: %w", err)
		}
		fmt.Fprintf(stdout, "funded %d account(s) x %d site(s) with %d each\n",
			len(cfg.keys), len(siteNames), *fund)
	}

	targets := make(map[string]string, len(scrapes)+1)
	for tname, url := range scrapes {
		targets[tname] = normalizeScrapeURL(url)
	}
	if *opsAddr != "" {
		opsSrv := ops.NewServer(ops.Config{
			Node:     *name,
			Registry: metrics.NewRegistry(),
			Collect: func(r *metrics.Registry) {
				c.Stats().Publish(r, "o2pc_coord_")
				if coal != nil {
					coal.Stats().Publish(r, "o2pc_coord_")
				}
			},
			Health: c.Health,
			Ready:  c.Ready,
			Tracer: tracer,
			Vars: map[string]any{
				"name":    *name,
				"listen":  *listen,
				"sites":   map[string]string(sites),
				"clients": *clients,
				"n":       *n,
			},
			Sample: true,
		})
		bound, err := opsSrv.Start(*opsAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "loadgen %s ops plane on http://%s\n", *name, bound)
		targets["self"] = "http://" + bound + "/metrics"
		defer func() {
			sctx, cancel := clock.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			//o2pcvet:ignore errflow -- process-exit drain; a failed ops shutdown must not mask the run's result
			_ = opsSrv.Shutdown(sctx)
		}()
	}

	// Workers run under runCtx (bounded by -duration); the scraper and the
	// table printer run under auxCtx, which outlives the workers so a final
	// row and scrape can land.
	runCtx := ctx
	cancelRun := func() {}
	if cfg.duration > 0 {
		runCtx, cancelRun = clock.WithTimeout(ctx, cfg.duration)
	}
	defer cancelRun()
	auxCtx, cancelAux := context.WithCancel(ctx)
	defer cancelAux()

	tl := newTally()
	scr := &scrapeSet{latest: make(map[string]map[string]float64), errs: make(map[string]string)}
	start := clock.Now()

	var aux sync.WaitGroup
	if len(targets) > 0 {
		aux.Add(1)
		go func() {
			defer aux.Done()
			for {
				scr.scrapeAll(auxCtx, targets)
				if clock.Sleep(auxCtx, *scrapeInterval) != nil {
					return
				}
			}
		}()
	}
	if *tableInterval > 0 {
		aux.Add(1)
		go func() {
			defer aux.Done()
			fmt.Fprintf(stdout, "%8s %7s %8s %8s %8s %8s %8s %14s\n",
				"elapsed", "txns", "txn/s", "commit%", "p50ms", "p90ms", "p99ms", "exposure-p99ms")
			for {
				if clock.Sleep(auxCtx, *tableInterval) != nil {
					return
				}
				fmt.Fprintln(stdout, tableRow(clock.Since(start), tl, scr))
			}
		}()
	}

	var (
		issued int64
		wg     sync.WaitGroup
	)
	for i := 0; i < cfg.clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(id)*7919))
			for runCtx.Err() == nil {
				if cfg.n > 0 && atomic.AddInt64(&issued, 1) > int64(cfg.n) {
					return
				}
				oneTxn(runCtx, clock, c, cfg, siteNames, rng, tl)
			}
		}(i)
	}
	wg.Wait()
	elapsed := clock.Since(start)

	// One last scrape so the summary's "scraped" column reflects the
	// finished run, then stop the aux goroutines.
	if len(targets) > 0 {
		scr.scrapeAll(auxCtx, targets)
	}
	cancelAux()
	aux.Wait()

	printSummary(stdout, tl, scr, elapsed)
	if *outPath != "" {
		if err := writeSummaryJSON(*outPath, tl, scr, elapsed); err != nil {
			return fmt.Errorf("write summary: %w", err)
		}
		fmt.Fprintf(stdout, "summary written to %s\n", *outPath)
	}
	if cerr := srv.Close(); cerr != nil {
		return fmt.Errorf("close resolve server: %w", cerr)
	}
	return nil
}

// fundAccounts credits every configured account at every site in one
// global transaction, driven by a throwaway coordinator so the workload
// coordinator's published stats count only the workload.
func fundAccounts(ctx context.Context, cfg config, name, idPrefix string, amount int64, siteNames []string, sites map[string]string) error {
	seeder := coord.New(coord.Config{
		Name:     name,
		IDPrefix: idPrefix + "seed-",
	}, rpc.NewTCPClient(sites))
	subtxns := make([]coord.SubtxnSpec, 0, len(siteNames))
	for _, site := range siteNames {
		ops := make([]proto.Operation, 0, len(cfg.keys))
		for _, k := range cfg.keys {
			ops = append(ops, proto.Add(k, amount))
		}
		subtxns = append(subtxns, coord.SubtxnSpec{Site: site, Ops: ops, Comp: cfg.comp})
	}
	res := seeder.Run(ctx, coord.TxnSpec{
		Protocol: cfg.protocol,
		Marking:  cfg.marking,
		Subtxns:  subtxns,
	})
	if !res.Committed() {
		return fmt.Errorf("%s: %w", res.Outcome, res.Err)
	}
	return nil
}

// oneTxn issues one transaction — a one-shot transfer or a multi-shot
// session per the configured mix — and records the client-side outcome.
func oneTxn(ctx context.Context, clock sim.Clock, c *coord.Coordinator, cfg config, siteNames []string, rng *rand.Rand, tl *tally) {
	from := siteNames[rng.Intn(len(siteNames))]
	to := siteNames[rng.Intn(len(siteNames))]
	for to == from {
		to = siteNames[rng.Intn(len(siteNames))]
	}
	key := cfg.keys[rng.Intn(len(cfg.keys))]
	amount := int64(1 + rng.Intn(25))
	if rng.Float64() < cfg.doom {
		amount = 1 << 40 // guaranteed over-withdrawal: the source site refuses
	}
	session := rng.Float64() < cfg.sessionFrac

	begin := clock.Now()
	var res coord.Result
	if session {
		res = runSession(ctx, clock, c, cfg, from, to, key, amount, rng)
	} else {
		res = c.Run(ctx, coord.TxnSpec{
			Protocol: cfg.protocol,
			Marking:  cfg.marking,
			Subtxns:  transfer(cfg, from, to, key, amount),
		})
	}
	tl.record(res, session, float64(clock.Since(begin))/float64(time.Millisecond))
}

// runSession drives one multi-shot session: -rounds rounds of transfer
// work (fresh amount per round, same endpoints) separated by think time,
// then the commit point. A failed round settles the session as aborted
// and Commit just reports that result.
func runSession(ctx context.Context, clock sim.Clock, c *coord.Coordinator, cfg config, from, to, key string, amount int64, rng *rand.Rand) coord.Result {
	sess, err := c.OpenSession(coord.SessionSpec{Protocol: cfg.protocol, Marking: cfg.marking})
	if err != nil {
		return coord.Result{Outcome: coord.AbortedCoordinator, Err: err}
	}
	for r := 0; r < cfg.rounds && sess.State() == coord.SessionActive; r++ {
		if r > 0 {
			amount = int64(1 + rng.Intn(25))
		}
		if _, err := sess.Round(ctx, transfer(cfg, from, to, key, amount)); err != nil {
			break
		}
		if cfg.think > 0 && clock.Sleep(ctx, cfg.think) != nil {
			break
		}
	}
	return sess.Commit(ctx)
}

// transfer builds the two-site debit/credit subtransactions of one
// transfer: the AddMin floor of 0 at the source makes over-withdrawals
// refuse. Subtransactions ship in site-name order, so two opposite
// transfers over the same key serialize on the first site's lock instead
// of forming a distributed 2PL deadlock that only the sites' lock-wait
// timeout can break — the classical resource-ordering discipline a real
// client library would apply.
func transfer(cfg config, from, to, key string, amount int64) []coord.SubtxnSpec {
	debit := coord.SubtxnSpec{Site: from, Ops: []proto.Operation{proto.AddMin(key, -amount, 0)}, Comp: cfg.comp}
	credit := coord.SubtxnSpec{Site: to, Ops: []proto.Operation{proto.Add(key, amount)}, Comp: cfg.comp}
	if to < from {
		return []coord.SubtxnSpec{credit, debit}
	}
	return []coord.SubtxnSpec{debit, credit}
}

// scrapeSet holds the latest sample map per scrape target.
type scrapeSet struct {
	mu     sync.Mutex
	latest map[string]map[string]float64
	errs   map[string]string
}

// scrapeAll fetches every target once, replacing its latest sample map.
// Failures are recorded per target and do not disturb the previous
// samples — a scraper outliving a shutting-down site keeps the last view.
func (s *scrapeSet) scrapeAll(ctx context.Context, targets map[string]string) {
	for _, name := range sortedNames(targets) {
		samples, err := scrapeOnce(ctx, targets[name])
		s.mu.Lock()
		if err != nil {
			s.errs[name] = err.Error()
		} else {
			delete(s.errs, name)
			s.latest[name] = samples
		}
		s.mu.Unlock()
	}
}

// value returns the latest sample for metric at target.
func (s *scrapeSet) value(target, metric string) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.latest[target][metric]
	return v, ok
}

// anyValue returns metric's sample from whichever target reports it
// first (in sorted target order).
func (s *scrapeSet) anyValue(metric string) (string, float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.latest))
	for name := range s.latest {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if v, ok := s.latest[name][metric]; ok {
			return name, v, true
		}
	}
	return "", 0, false
}

// scrapeOnce fetches one Prometheus text endpoint and parses it into a
// flat metric→value map (labels kept verbatim in the metric name).
func scrapeOnce(ctx context.Context, url string) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: HTTP %d", url, resp.StatusCode)
	}
	return parsePromText(resp.Body)
}

// parsePromText parses Prometheus text exposition into metric→value.
// Only the sample lines are read; comments and malformed lines are
// skipped, matching what a tolerant scraper does.
func parsePromText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out, sc.Err()
}

// normalizeScrapeURL accepts full URLs, bare host:port, or host:port
// with a custom path, and returns a fetchable metrics URL.
func normalizeScrapeURL(v string) string {
	if !strings.Contains(v, "://") {
		v = "http://" + v
	}
	rest := v[strings.Index(v, "://")+3:]
	if !strings.Contains(rest, "/") {
		v += "/metrics"
	}
	return v
}

// exposureP99Metric is the scraped quantile the live table surfaces: the
// paper's exposure window (local commit at YES vote until the decision
// arrives) at the committed-outcome tail.
const exposureP99Metric = `o2pc_site_exposure_duration_ms{outcome="commit",quantile="0.99"}`

// tableRow renders one live-table line.
func tableRow(elapsed time.Duration, tl *tally, scr *scrapeSet) string {
	done, committed, _, _, _ := tl.snapshot()
	rate := 0.0
	if s := elapsed.Seconds(); s > 0 {
		rate = float64(done) / s
	}
	pct := 0.0
	if done > 0 {
		pct = 100 * float64(committed) / float64(done)
	}
	exposure := "-"
	if target, v, ok := scr.anyValue(exposureP99Metric); ok {
		exposure = fmt.Sprintf("%.2f(%s)", v, target)
	}
	return fmt.Sprintf("%8s %7d %8.1f %8.1f %8.2f %8.2f %8.2f %14s",
		elapsed.Round(100*time.Millisecond), done, rate, pct,
		tl.lat.Quantile(0.5), tl.lat.Quantile(0.9), tl.lat.Quantile(0.99), exposure)
}

// printSummary writes the end-of-run report.
func printSummary(w io.Writer, tl *tally, scr *scrapeSet, elapsed time.Duration) {
	done, committed, execAborts, other, sessions := tl.snapshot()
	rate := 0.0
	if s := elapsed.Seconds(); s > 0 {
		rate = float64(done) / s
	}
	pct := 0.0
	if done > 0 {
		pct = 100 * float64(committed) / float64(done)
	}
	fmt.Fprintf(w, "loadgen: %d txns in %s (%.1f txn/s): %d committed (%.1f%%), %d insufficient-funds/deadlock, %d other aborts; %d multi-shot sessions\n",
		done, elapsed.Round(time.Millisecond), rate, committed, pct, execAborts, other, sessions)
	fmt.Fprintf(w, "client latency(ms): p50=%.3f p90=%.3f p99=%.3f max=%.3f (one-shot p50=%.3f, session p50=%.3f)\n",
		tl.lat.Quantile(0.5), tl.lat.Quantile(0.9), tl.lat.Quantile(0.99), tl.lat.Max(),
		tl.oneShotLat.Quantile(0.5), tl.sessionLat.Quantile(0.5))
	if count, ok := scr.value("self", "o2pc_coord_latency_ms_count"); ok {
		p50, _ := scr.value("self", `o2pc_coord_latency_ms{quantile="0.5"}`)
		p99, _ := scr.value("self", `o2pc_coord_latency_ms{quantile="0.99"}`)
		srate := 0.0
		if s := elapsed.Seconds(); s > 0 {
			srate = count / s
		}
		fmt.Fprintf(w, "scraped self: %.0f txns (%.1f txn/s), p50=%.3f p99=%.3f\n", count, srate, p50, p99)
	}
	scr.mu.Lock()
	for _, name := range sortedStringKeys(scr.errs) {
		fmt.Fprintf(w, "scrape %s: %s\n", name, scr.errs[name])
	}
	scr.mu.Unlock()
}

func sortedStringKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// writeSummaryJSON writes the BENCH_*.json-compatible summary: the
// client-measured numbers under Loadgen/total (plus the one-shot and
// session splits), and the self-scraped coordinator view under
// Loadgen/scraped so the two paths can be diffed mechanically.
func writeSummaryJSON(path string, tl *tally, scr *scrapeSet, elapsed time.Duration) error {
	done, committed, _, _, sessions := tl.snapshot()
	rate, nsPerOp := 0.0, 0.0
	if done > 0 && elapsed > 0 {
		rate = float64(done) / elapsed.Seconds()
		nsPerOp = float64(elapsed.Nanoseconds()) / float64(done)
	}
	pct := 0.0
	if done > 0 {
		pct = 100 * float64(committed) / float64(done)
	}
	benches := map[string]map[string]float64{
		"Loadgen/total": {
			"iterations": float64(done),
			"txn_per_s":  rate,
			"ns_per_op":  nsPerOp,
			"pct_commit": pct,
			"p50_ms":     tl.lat.Quantile(0.5),
			"p90_ms":     tl.lat.Quantile(0.9),
			"p99_ms":     tl.lat.Quantile(0.99),
		},
		"Loadgen/oneshot": {
			"iterations": float64(done - sessions),
			"p50_ms":     tl.oneShotLat.Quantile(0.5),
			"p99_ms":     tl.oneShotLat.Quantile(0.99),
		},
		"Loadgen/session": {
			"iterations": float64(sessions),
			"p50_ms":     tl.sessionLat.Quantile(0.5),
			"p99_ms":     tl.sessionLat.Quantile(0.99),
		},
	}
	if count, ok := scr.value("self", "o2pc_coord_latency_ms_count"); ok {
		p50, _ := scr.value("self", `o2pc_coord_latency_ms{quantile="0.5"}`)
		p99, _ := scr.value("self", `o2pc_coord_latency_ms{quantile="0.99"}`)
		srate := 0.0
		if elapsed > 0 {
			srate = count / elapsed.Seconds()
		}
		benches["Loadgen/scraped"] = map[string]float64{
			"iterations": count,
			"txn_per_s":  srate,
			"p50_ms":     p50,
			"p99_ms":     p99,
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{"benchmarks": benches}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func protocolOf(name string) proto.Protocol {
	switch {
	case strings.EqualFold(name, "2pc"):
		return proto.TwoPC
	case strings.EqualFold(name, "paxos"):
		return proto.Paxos
	}
	return proto.O2PC
}

func markingOf(name string) proto.MarkProtocol {
	switch strings.ToLower(name) {
	case "p1":
		return proto.MarkP1
	case "p2":
		return proto.MarkP2
	case "simple":
		return proto.MarkSimple
	default:
		return proto.MarkNone
	}
}

func compOf(s string) proto.CompMode {
	switch strings.ToLower(s) {
	case "before-image":
		return proto.CompBeforeImage
	case "none":
		return proto.CompNone
	default:
		return proto.CompSemantic
	}
}
