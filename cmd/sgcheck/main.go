// Command sgcheck audits a recorded execution history against the paper's
// Section 5 theory: it builds the local and global serialization graphs,
// reports local cycles, enumerates and classifies global cycles into
// regular (forbidden) and benign compensating-transaction cycles, checks
// the stratification properties S1/S2, and checks atomicity of
// compensation (Theorem 2).
//
// Usage:
//
//	sgcheck [-max-cycles N] [-max-len N] [-v] history.json
//
// The input is a history file written by history.WriteJSON (the o2pc-bench
// tool's -dump flag produces them). Exit status is 0 when the history
// satisfies the correctness criterion, 1 when it violates it, and 2 on
// usage or input errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"o2pc/internal/history"
	"o2pc/internal/sg"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, audits the named
// history, writes the report to stdout, and returns the exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sgcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	maxCycles := fs.Int("max-cycles", 10000, "bound on enumerated global cycles")
	maxLen := fs.Int("max-len", 10, "bound on cycle length (junctions)")
	verbose := fs.Bool("v", false, "print every classified cycle")
	dotPath := fs.String("dot", "", "write a Graphviz rendering of the SGs to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: sgcheck [-max-cycles N] [-max-len N] [-v] history.json")
		return 2
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "sgcheck:", err)
		return 2
	}
	h, err := history.ReadJSON(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(stderr, "sgcheck:", err)
		return 2
	}

	nGlobal, nComp, nLocal := 0, 0, 0
	for _, info := range h.Txns {
		switch info.Kind {
		case history.KindGlobal:
			nGlobal++
		case history.KindCompensating:
			nComp++
		default:
			nLocal++
		}
	}
	fmt.Fprintf(stdout, "history: %d ops, %d sites, %d global / %d compensating / %d local transactions\n",
		len(h.Ops), len(h.Sites()), nGlobal, nComp, nLocal)

	audit := sg.AuditHistory(h, *maxLen, *maxCycles)
	for site, cyc := range audit.LocalCycles {
		fmt.Fprintf(stdout, "LOCAL CYCLE at %s: %s\n", site, strings.Join(cyc, " -> "))
	}
	fmt.Fprintf(stdout, "global cycles: %d effective regular (forbidden), %d doomed-reader regular (tolerated), %d benign CT-only",
		audit.EffectiveCount, audit.DoomedCount, audit.BenignCount)
	if audit.Truncated {
		fmt.Fprintf(stdout, " (enumeration truncated at %d)", len(audit.Cycles))
	}
	fmt.Fprintln(stdout)
	if *verbose {
		for _, c := range audit.Cycles {
			kind := "benign "
			switch {
			case c.Effective:
				kind = "REGULAR"
			case c.Regular:
				kind = "doomed "
			}
			fmt.Fprintf(stdout, "  %s cycle %s; minimal representations: %v\n",
				kind, strings.Join(c.Junctions, " -> "), c.MinimalReps)
		}
	}

	if *dotPath != "" {
		df, err := os.Create(*dotPath)
		if err != nil {
			fmt.Fprintln(stderr, "sgcheck:", err)
			return 2
		}
		if err := sg.WriteDOT(df, h); err != nil {
			fmt.Fprintln(stderr, "sgcheck:", err)
			df.Close()
			return 2
		}
		df.Close()
		fmt.Fprintf(stdout, "graphviz rendering written to %s\n", *dotPath)
	}

	strat := sg.NewStratification(h)
	s1 := strat.CheckS1()
	s2 := strat.CheckS2()
	fmt.Fprintf(stdout, "stratification: S1 %s (%d violating pairs), S2 %s (%d violating pairs)\n",
		holds(len(s1) == 0), len(s1), holds(len(s2) == 0), len(s2))

	viol := sg.CheckCompensationAtomicity(h)
	committedViol := sg.CommittedViolations(viol)
	if len(viol) == 0 {
		fmt.Fprintln(stdout, "atomicity of compensation: preserved")
	} else {
		for _, v := range viol {
			tag := "ATOMICITY VIOLATION"
			if v.ReaderFate == history.FateAborted {
				tag = "doomed-reader atomicity residue (tolerated)"
			}
			fmt.Fprintf(stdout, "%s: %s read from both %s and %s\n",
				tag, v.Reader, v.Forward, v.Comp)
		}
	}

	if cyc, checked := sg.SerializableWithoutAborts(h); checked {
		if cyc == nil {
			fmt.Fprintln(stdout, "no aborted globals: history is (conflict-)serializable")
		} else {
			fmt.Fprintf(stdout, "no aborted globals but SG cyclic: %s\n", strings.Join(cyc, " -> "))
		}
	}

	if audit.Correct() && len(committedViol) == 0 {
		fmt.Fprintln(stdout, "verdict: CORRECT (criterion of Section 5 satisfied)")
		return 0
	}
	fmt.Fprintln(stdout, "verdict: INCORRECT")
	return 1
}

func holds(b bool) string {
	if b {
		return "holds"
	}
	return "violated"
}
