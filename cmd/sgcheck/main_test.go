package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"o2pc/internal/history"
)

// writeHistory encodes h into dir and returns the file path.
func writeHistory(t *testing.T, dir, name string, h *history.History) string {
	t.Helper()
	var buf bytes.Buffer
	if err := history.WriteJSON(&buf, h); err != nil {
		t.Fatalf("encode %s: %v", name, err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatalf("write %s: %v", name, err)
	}
	return path
}

// correctHistory is a two-site execution with a committed global, a cleanly
// compensated abort and no cycles: it must satisfy the Section 5 criterion.
func correctHistory() *history.History {
	h := &history.History{Txns: map[string]history.TxnInfo{
		"T1":  {ID: "T1", Kind: history.KindGlobal, Fate: history.FateCommitted},
		"T2":  {ID: "T2", Kind: history.KindGlobal, Fate: history.FateAborted},
		"CT2": {ID: "CT2", Kind: history.KindCompensating, Fate: history.FateCommitted, Forward: "T2"},
	}}
	h.Ops = []history.Op{
		{Site: "s0", Txn: "T1", Type: history.OpWrite, Key: "x", Seq: 1},
		{Site: "s0", Txn: "T2", Type: history.OpWrite, Key: "x", Seq: 2},
		{Site: "s0", Txn: "CT2", Type: history.OpWrite, Key: "x", Seq: 3},
		{Site: "s1", Txn: "T1", Type: history.OpWrite, Key: "y", Seq: 1},
	}
	return h
}

// regularCycleHistory is the Figure 1 shape the marking protocols exist to
// prevent: committed T2 reads aborted T1's exposed value at s0 before CT1
// compensates there, and reads the restored version at s1 after CT1 ran.
// The global cycle T2 -> CT1 -> T2 is an effective regular cycle, so the
// checker must report the history INCORRECT.
func regularCycleHistory() *history.History {
	h := &history.History{Txns: map[string]history.TxnInfo{
		"T1":  {ID: "T1", Kind: history.KindGlobal, Fate: history.FateAborted},
		"T2":  {ID: "T2", Kind: history.KindGlobal, Fate: history.FateCommitted},
		"CT1": {ID: "CT1", Kind: history.KindCompensating, Fate: history.FateCommitted, Forward: "T1"},
	}}
	h.Ops = []history.Op{
		{Site: "s0", Txn: "T1", Type: history.OpWrite, Key: "x", Seq: 1},
		{Site: "s0", Txn: "T2", Type: history.OpRead, Key: "x", Seq: 2, ReadFrom: "T1"},
		{Site: "s0", Txn: "CT1", Type: history.OpWrite, Key: "x", Seq: 3},
		{Site: "s1", Txn: "T1", Type: history.OpWrite, Key: "y", Seq: 1},
		{Site: "s1", Txn: "CT1", Type: history.OpWrite, Key: "y", Seq: 2},
		{Site: "s1", Txn: "T2", Type: history.OpRead, Key: "y", Seq: 3, ReadFrom: "CT1"},
	}
	return h
}

func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	valid := writeHistory(t, dir, "valid.json", correctHistory())
	cyclic := writeHistory(t, dir, "cyclic.json", regularCycleHistory())
	malformed := filepath.Join(dir, "malformed.json")
	if err := os.WriteFile(malformed, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name       string
		args       []string
		wantCode   int
		wantStdout string // substring that must appear on stdout
		wantStderr string // substring that must appear on stderr
	}{
		{
			name:       "valid history",
			args:       []string{valid},
			wantCode:   0,
			wantStdout: "verdict: CORRECT",
		},
		{
			name:       "effective regular cycle",
			args:       []string{cyclic},
			wantCode:   1,
			wantStdout: "verdict: INCORRECT",
		},
		{
			name:       "regular cycle counted",
			args:       []string{"-v", cyclic},
			wantCode:   1,
			wantStdout: "1 effective regular (forbidden)",
		},
		{
			name:       "malformed json",
			args:       []string{malformed},
			wantCode:   2,
			wantStderr: "sgcheck:",
		},
		{
			name:       "missing file",
			args:       []string{filepath.Join(dir, "no-such-history.json")},
			wantCode:   2,
			wantStderr: "sgcheck:",
		},
		{
			name:       "no arguments",
			args:       nil,
			wantCode:   2,
			wantStderr: "usage: sgcheck",
		},
		{
			name:       "too many arguments",
			args:       []string{valid, cyclic},
			wantCode:   2,
			wantStderr: "usage: sgcheck",
		},
		{
			name:       "bad flag",
			args:       []string{"-no-such-flag", valid},
			wantCode:   2,
			wantStderr: "flag provided but not defined",
		},
		{
			name:       "dot output",
			args:       []string{"-dot", filepath.Join(dir, "out.dot"), valid},
			wantCode:   0,
			wantStdout: "graphviz rendering written",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("exit code = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					code, tc.wantCode, stdout.String(), stderr.String())
			}
			if tc.wantStdout != "" && !strings.Contains(stdout.String(), tc.wantStdout) {
				t.Fatalf("stdout missing %q:\n%s", tc.wantStdout, stdout.String())
			}
			if tc.wantStderr != "" && !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Fatalf("stderr missing %q:\n%s", tc.wantStderr, stderr.String())
			}
		})
	}
}

// TestRunDotUnwritable covers the dot-file error path: the rendering
// target is a directory, so the create fails and sgcheck exits 2.
func TestRunDotUnwritable(t *testing.T) {
	dir := t.TempDir()
	valid := writeHistory(t, dir, "valid.json", correctHistory())
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dot", dir, valid}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr:\n%s", code, stderr.String())
	}
}
