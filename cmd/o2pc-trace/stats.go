package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"o2pc/internal/metrics"
	"o2pc/internal/trace"
)

// runStats is the "stats" subcommand: it pairs protocol events into
// per-phase spans and prints latency percentiles.
//
// The spans mirror the live phase_* metrics of the cluster binaries, so a
// trace captured from a run can be cross-checked against what the ops
// plane reported:
//
//	prepare->vote    votereq.send -> vote.recv, paired per (txn, site)
//	                 at the coordinator (the per-site vote round trip)
//	vote->decision   first votereq.send -> decision.reached per txn
//	                 (the coordinator's collect window)
//	exposure         exposed -> decision.recv, paired per (txn, site) at
//	                 the site (the paper's exposure window: local commit
//	                 at the YES vote until the decision lands)
func runStats(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("o2pc-trace stats", flag.ContinueOnError)
	txn := fs.String("txn", "", "keep only this transaction's events")
	perTxn := fs.Bool("per-txn", false, "also print each transaction's individual spans")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 1 {
		return fmt.Errorf("at most one trace file, got %d", fs.NArg())
	}
	in := stdin
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	events, err := trace.ReadJSONL(in)
	if err != nil {
		return err
	}
	if *txn != "" {
		if events, err = filter(events, *txn, "", ""); err != nil {
			return err
		}
	}
	st := computeSpans(events)
	return writeStats(stdout, st, *perTxn)
}

// txnSite keys a span by transaction and participant.
type txnSite struct{ txn, site string }

// spanStats aggregates the paired spans of one trace.
type spanStats struct {
	prepVote     map[string]*metrics.Histogram // site -> vote RTT (ms)
	prepVoteAll  *metrics.Histogram
	voteDecision *metrics.Histogram
	exposure     map[string]*metrics.Histogram // site -> exposure window (ms)
	exposureAll  *metrics.Histogram

	perTxn map[string]*txnSpans
}

// txnSpans records one transaction's individual spans for the -per-txn
// listing.
type txnSpans struct {
	voteDecision float64
	hasDecision  bool
	sites        map[string]*siteSpans
}

type siteSpans struct {
	prepVote, exposure float64
	hasPrep, hasExp    bool
}

func (s *spanStats) txnEntry(txn string) *txnSpans {
	t, ok := s.perTxn[txn]
	if !ok {
		t = &txnSpans{sites: make(map[string]*siteSpans)}
		s.perTxn[txn] = t
	}
	return t
}

func (t *txnSpans) siteEntry(site string) *siteSpans {
	ss, ok := t.sites[site]
	if !ok {
		ss = &siteSpans{}
		t.sites[site] = ss
	}
	return ss
}

// computeSpans pairs the trace's events into spans. Pairing consumes the
// opening event, so a session's re-vote after an R1 retry starts a fresh
// span instead of stretching the first one.
func computeSpans(events []trace.Event) *spanStats {
	st := &spanStats{
		prepVote:     make(map[string]*metrics.Histogram),
		prepVoteAll:  metrics.NewHistogram(),
		voteDecision: metrics.NewHistogram(),
		exposure:     make(map[string]*metrics.Histogram),
		exposureAll:  metrics.NewHistogram(),
		perTxn:       make(map[string]*txnSpans),
	}
	hist := func(m map[string]*metrics.Histogram, site string) *metrics.Histogram {
		h, ok := m[site]
		if !ok {
			h = metrics.NewHistogram()
			m[site] = h
		}
		return h
	}
	ms := func(delta int64) float64 { return float64(delta) / 1e6 }

	reqAt := make(map[txnSite]int64)     // votereq.send awaiting its vote.recv
	exposedAt := make(map[txnSite]int64) // exposed awaiting its decision.recv
	firstSend := make(map[string]int64)  // txn -> earliest votereq.send
	decidedAt := make(map[string]int64)  // txn -> earliest decision.reached

	for _, e := range events {
		switch e.Type {
		case trace.EvVoteReqSend:
			k := txnSite{e.Txn, e.Peer}
			if _, open := reqAt[k]; !open {
				reqAt[k] = e.T
			}
			if t0, ok := firstSend[e.Txn]; !ok || e.T < t0 {
				firstSend[e.Txn] = e.T
			}
		case trace.EvVoteRecv:
			k := txnSite{e.Txn, e.Peer}
			if t0, open := reqAt[k]; open {
				delete(reqAt, k)
				v := ms(e.T - t0)
				hist(st.prepVote, e.Peer).Observe(v)
				st.prepVoteAll.Observe(v)
				sp := st.txnEntry(e.Txn).siteEntry(e.Peer)
				sp.prepVote, sp.hasPrep = v, true
			}
		case trace.EvDecisionReached:
			if _, ok := decidedAt[e.Txn]; !ok {
				decidedAt[e.Txn] = e.T
			}
		case trace.EvExposed:
			k := txnSite{e.Txn, e.Node}
			if _, open := exposedAt[k]; !open {
				exposedAt[k] = e.T
			}
		case trace.EvDecisionRecv:
			k := txnSite{e.Txn, e.Node}
			if t0, open := exposedAt[k]; open {
				delete(exposedAt, k)
				v := ms(e.T - t0)
				hist(st.exposure, e.Node).Observe(v)
				st.exposureAll.Observe(v)
				sp := st.txnEntry(e.Txn).siteEntry(e.Node)
				sp.exposure, sp.hasExp = v, true
			}
		//o2pcvet:ignore exhaustive -- span pairing is a filter: every other event type carries no commit-phase boundary
		default:
		}
	}
	for txn, t1 := range decidedAt {
		t0, ok := firstSend[txn]
		if !ok {
			continue
		}
		v := ms(t1 - t0)
		st.voteDecision.Observe(v)
		te := st.txnEntry(txn)
		te.voteDecision, te.hasDecision = v, true
	}
	return st
}

// writeStats renders the aggregate tables (and the per-txn listing when
// asked). All iteration is over sorted keys, so the same trace always
// renders the same bytes.
func writeStats(w io.Writer, st *spanStats, perTxn bool) error {
	row := func(label string, h *metrics.Histogram) error {
		_, err := fmt.Fprintf(w, "  %-5s %6d %8.3f %8.3f %8.3f %8.3f\n",
			label, h.Count(), h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99), h.Max())
		return err
	}
	table := func(title string, bySite map[string]*metrics.Histogram, all *metrics.Histogram) error {
		if _, err := fmt.Fprintf(w, "%s:\n  %-5s %6s %8s %8s %8s %8s\n",
			title, "site", "count", "p50ms", "p90ms", "p99ms", "maxms"); err != nil {
			return err
		}
		sites := make([]string, 0, len(bySite))
		for s := range bySite {
			sites = append(sites, s)
		}
		sort.Strings(sites)
		for _, s := range sites {
			if err := row(s, bySite[s]); err != nil {
				return err
			}
		}
		return row("all", all)
	}

	if st.prepVoteAll.Count() == 0 && st.voteDecision.Count() == 0 && st.exposureAll.Count() == 0 {
		_, err := fmt.Fprintln(w, "(no commit-phase spans in trace)")
		return err
	}
	if err := table("prepare->vote (votereq.send -> vote.recv)", st.prepVote, st.prepVoteAll); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "vote->decision (first votereq.send -> decision.reached):\n"); err != nil {
		return err
	}
	if err := row("all", st.voteDecision); err != nil {
		return err
	}
	if err := table("exposure window (exposed -> decision.recv)", st.exposure, st.exposureAll); err != nil {
		return err
	}

	if !perTxn {
		return nil
	}
	if _, err := fmt.Fprintln(w, "per-txn (ms):"); err != nil {
		return err
	}
	txns := make([]string, 0, len(st.perTxn))
	for txn := range st.perTxn {
		txns = append(txns, txn)
	}
	sort.Strings(txns)
	for _, txn := range txns {
		te := st.perTxn[txn]
		if te.hasDecision {
			if _, err := fmt.Fprintf(w, "  %s: vote->decision=%.3f\n", txn, te.voteDecision); err != nil {
				return err
			}
		} else {
			if _, err := fmt.Fprintf(w, "  %s:\n", txn); err != nil {
				return err
			}
		}
		sites := make([]string, 0, len(te.sites))
		for s := range te.sites {
			sites = append(sites, s)
		}
		sort.Strings(sites)
		for _, s := range sites {
			sp := te.sites[s]
			line := "    " + s + ":"
			if sp.hasPrep {
				line += fmt.Sprintf(" prepare->vote=%.3f", sp.prepVote)
			}
			if sp.hasExp {
				line += fmt.Sprintf(" exposure=%.3f", sp.exposure)
			}
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}
