// Command o2pc-trace filters and renders protocol traces.
//
// It reads a JSONL event log — written by the -trace flag of o2pc-coord or
// o2pc-bench, or by the schedule explorer — and renders it for humans:
//
//	o2pc-trace run.jsonl                     # timeline of every event
//	o2pc-trace -txn T7 run.jsonl             # one transaction's timeline
//	o2pc-trace -node s0 run.jsonl            # one node's timeline
//	o2pc-trace -type vote.yes,vote.no ...    # only these event types
//	o2pc-trace -format lanes run.jsonl       # per-node lane view
//	o2pc-trace -format chrome run.jsonl      # convert to Chrome trace JSON
//	o2pc-trace -format jsonl -txn T7 ...     # re-emit the filtered JSONL
//	o2pc-trace stats run.jsonl               # per-phase latency percentiles
//	o2pc-trace stats -per-txn run.jsonl      # plus each txn's spans
//
// With no file argument the trace is read from stdin. Virtual-time traces
// print offsets relative to the first (filtered) event, so deterministic
// runs render identically.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"o2pc/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		log.Fatalf("o2pc-trace: %v", err)
	}
}

// run is the whole command, factored for tests: flags from args, trace
// from stdin when no file operand, rendering to stdout.
func run(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) > 0 && args[0] == "stats" {
		return runStats(args[1:], stdin, stdout)
	}
	fs := flag.NewFlagSet("o2pc-trace", flag.ContinueOnError)
	txn := fs.String("txn", "", "keep only this transaction's events")
	node := fs.String("node", "", "keep only this node's events")
	types := fs.String("type", "", "keep only these event types (comma-separated names, e.g. vote.yes,decision.reached)")
	format := fs.String("format", "timeline", "output format: timeline | lanes | jsonl | chrome")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 1 {
		return fmt.Errorf("at most one trace file, got %d", fs.NArg())
	}

	in := stdin
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	events, err := trace.ReadJSONL(in)
	if err != nil {
		return err
	}
	events, err = filter(events, *txn, *node, *types)
	if err != nil {
		return err
	}

	switch *format {
	case "timeline":
		return writeTimeline(stdout, events)
	case "lanes":
		return writeLanes(stdout, events)
	case "jsonl":
		return trace.WriteJSONL(stdout, events)
	case "chrome":
		return trace.WriteChrome(stdout, events)
	default:
		return fmt.Errorf("unknown format %q (want timeline, lanes, jsonl, or chrome)", *format)
	}
}

// filter keeps the events matching every given predicate (empty = any).
func filter(events []trace.Event, txn, node, types string) ([]trace.Event, error) {
	keepType := map[trace.EventType]bool{}
	if types != "" {
		for _, name := range strings.Split(types, ",") {
			name = strings.TrimSpace(name)
			t, ok := trace.TypeByName(name)
			if !ok {
				return nil, fmt.Errorf("unknown event type %q", name)
			}
			keepType[t] = true
		}
	}
	var out []trace.Event
	for _, e := range events {
		if txn != "" && e.Txn != txn {
			continue
		}
		if node != "" && e.Node != node {
			continue
		}
		if len(keepType) > 0 && !keepType[e.Type] {
			continue
		}
		out = append(out, e)
	}
	return out, nil
}

// eventLabel compresses one event for rendering.
func eventLabel(e trace.Event, withNode bool) string {
	var b strings.Builder
	if withNode {
		fmt.Fprintf(&b, "%-3s ", e.Node)
	}
	b.WriteString(e.Type.String())
	if e.Txn != "" {
		b.WriteString(" txn=" + e.Txn)
	}
	if e.Peer != "" {
		b.WriteString(" peer=" + e.Peer)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " %q", e.Detail)
	}
	return b.String()
}

// writeTimeline prints one event per line with time offsets relative to
// the first event.
func writeTimeline(w io.Writer, events []trace.Event) error {
	if len(events) == 0 {
		_, err := fmt.Fprintln(w, "(no events)")
		return err
	}
	t0 := events[0].T
	for _, e := range events {
		if _, err := fmt.Fprintf(w, "+%-10s %s\n", time.Duration(e.T-t0), eventLabel(e, true)); err != nil {
			return err
		}
	}
	return nil
}

// writeLanes prints a per-node lane view: one column per node, one row per
// event, so concurrent protocol steps at different sites read side by side.
func writeLanes(w io.Writer, events []trace.Event) error {
	if len(events) == 0 {
		_, err := fmt.Fprintln(w, "(no events)")
		return err
	}
	nodes := trace.Nodes(events)
	col := make(map[string]int, len(nodes))
	for i, n := range nodes {
		col[n] = i
	}
	const width = 34
	header := make([]string, len(nodes))
	for i, n := range nodes {
		header[i] = pad(n, width)
	}
	if _, err := fmt.Fprintf(w, "%-12s %s\n", "time", strings.Join(header, " ")); err != nil {
		return err
	}
	t0 := events[0].T
	for _, e := range events {
		cells := make([]string, len(nodes))
		for i := range cells {
			cells[i] = pad("", width)
		}
		cells[col[e.Node]] = pad(eventLabel(e, false), width)
		if _, err := fmt.Fprintf(w, "+%-11s %s\n",
			time.Duration(e.T-t0), strings.TrimRight(strings.Join(cells, " "), " ")); err != nil {
			return err
		}
	}
	return nil
}

// pad right-pads or truncates s to n runes.
func pad(s string, n int) string {
	if len(s) > n {
		return s[:n-1] + "…"
	}
	return s + strings.Repeat(" ", n-len(s))
}
