package main

import (
	"bytes"
	"strings"
	"testing"

	"o2pc/internal/trace"
)

// sampleJSONL is a tiny two-transaction trace: T1 commits across c0/s0,
// T2 gets a NO vote at s1.
const sampleJSONL = `{"t":1000000,"node":"c0","seq":1,"type":"txn.begin","txn":"T1"}
{"t":2000000,"node":"s0","seq":1,"type":"vote.yes","txn":"T1","peer":"c0"}
{"t":3000000,"node":"c0","seq":2,"type":"decision.reached","txn":"T1","detail":"commit"}
{"t":4000000,"node":"c0","seq":3,"type":"txn.begin","txn":"T2"}
{"t":5000000,"node":"s1","seq":1,"type":"vote.no","txn":"T2","peer":"c0","detail":"unilateral abort"}
`

func TestRunFormats(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		want    []string // substrings of output
		wantNot []string
		wantErr string
	}{
		{
			name: "timeline default",
			args: nil,
			want: []string{"+0s", "txn.begin txn=T1", "+4ms", "vote.no txn=T2", `"unilateral abort"`},
		},
		{
			name:    "txn filter",
			args:    []string{"-txn", "T1"},
			want:    []string{"txn.begin txn=T1", "decision.reached txn=T1"},
			wantNot: []string{"T2"},
		},
		{
			name:    "node filter",
			args:    []string{"-node", "s1"},
			want:    []string{"vote.no"},
			wantNot: []string{"txn.begin"},
		},
		{
			name:    "type filter",
			args:    []string{"-type", "vote.yes,vote.no"},
			want:    []string{"vote.yes", "vote.no"},
			wantNot: []string{"txn.begin", "decision.reached"},
		},
		{
			name: "lanes",
			args: []string{"-format", "lanes"},
			want: []string{"time", "c0", "s0", "s1", "vote.yes txn=T1"},
		},
		{
			name: "jsonl round trip",
			args: []string{"-format", "jsonl", "-txn", "T2"},
			want: []string{`"type":"vote.no"`, `"txn":"T2"`},
		},
		{
			name: "chrome",
			args: []string{"-format", "chrome"},
			want: []string{`"traceEvents"`, `"ph":"X"`, `"ph":"i"`},
		},
		{
			name:    "unknown format",
			args:    []string{"-format", "nope"},
			wantErr: "unknown format",
		},
		{
			name:    "unknown type",
			args:    []string{"-type", "frobnicate"},
			wantErr: `unknown event type "frobnicate"`,
		},
		{
			name: "empty filter result",
			args: []string{"-txn", "T999"},
			want: []string{"(no events)"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(tc.args, strings.NewReader(sampleJSONL), &out)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			for _, want := range tc.want {
				if !strings.Contains(out.String(), want) {
					t.Errorf("output missing %q:\n%s", want, out.String())
				}
			}
			for _, not := range tc.wantNot {
				if strings.Contains(out.String(), not) {
					t.Errorf("output unexpectedly contains %q:\n%s", not, out.String())
				}
			}
		})
	}
}

// recoverySampleJSONL is a site crash/recover episode: T1 is exposed at
// s0, the site crashes, restarts, replays its marks, rebuilds the exposed
// entry, and re-runs the compensation after the ABORT lands.
const recoverySampleJSONL = `{"t":1000000,"node":"s0","seq":1,"type":"exposed","txn":"T1","peer":"c0"}
{"t":2000000,"node":"s0","seq":2,"type":"crash"}
{"t":3000000,"node":"s0","seq":3,"type":"recover"}
{"t":3100000,"node":"s0","seq":4,"type":"recover.marks","detail":"undone=1 lc=0"}
{"t":3200000,"node":"s0","seq":5,"type":"recover.pending","txn":"T1","peer":"c0","detail":"exposed"}
{"t":4000000,"node":"s1","seq":1,"type":"recover.pending","txn":"T2","peer":"c0","detail":"in-doubt"}
{"t":5000000,"node":"s0","seq":6,"type":"recover.comp","txn":"T1"}
`

// TestRunRecoveryEvents pins that the tool recognizes and renders the
// recovery/exposure events in both timeline and lanes formats, and that
// they filter by name.
func TestRunRecoveryEvents(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		want    []string
		wantNot []string
	}{
		{
			name: "timeline",
			args: nil,
			want: []string{
				"exposed txn=T1 peer=c0",
				"recover.marks", `"undone=1 lc=0"`,
				"recover.pending txn=T1 peer=c0", `"exposed"`,
				"recover.comp txn=T1",
			},
		},
		{
			name: "lanes place recovery in the site's column",
			args: []string{"-format", "lanes"},
			want: []string{"s0", "s1", "recover.comp txn=T1", "recover.pending txn=T2"},
		},
		{
			name:    "type filter by recovery names",
			args:    []string{"-type", "recover.pending,recover.comp"},
			want:    []string{"recover.pending", "recover.comp"},
			wantNot: []string{"recover.marks", "exposed txn=T1 peer=c0", "crash"},
		},
		{
			name:    "exposed filters alone",
			args:    []string{"-type", "exposed"},
			want:    []string{"exposed txn=T1"},
			wantNot: []string{"recover"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tc.args, strings.NewReader(recoverySampleJSONL), &out); err != nil {
				t.Fatalf("run: %v", err)
			}
			for _, want := range tc.want {
				if !strings.Contains(out.String(), want) {
					t.Errorf("output missing %q:\n%s", want, out.String())
				}
			}
			for _, not := range tc.wantNot {
				if strings.Contains(out.String(), not) {
					t.Errorf("output unexpectedly contains %q:\n%s", not, out.String())
				}
			}
		})
	}
}

// TestJSONLOutputReparses pins that filtered jsonl output is itself a
// valid trace (the tool's output can be piped back into the tool).
func TestJSONLOutputReparses(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-format", "jsonl", "-txn", "T1"}, strings.NewReader(sampleJSONL), &out); err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadJSONL(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	for _, e := range events {
		if e.Txn != "T1" {
			t.Errorf("unfiltered event leaked: %+v", e)
		}
	}
}

// sessionSampleJSONL is a multi-shot session: S1 opens at c0, runs three
// rounds (the site set growing from s0 to s0+s1), then commits.
const sessionSampleJSONL = `{"t":1000000,"node":"c0","seq":1,"type":"txn.begin","txn":"S1","detail":"O2PC/P1 session"}
{"t":1000001,"node":"c0","seq":2,"type":"session.open","txn":"S1"}
{"t":2000000,"node":"c0","seq":3,"type":"session.round","txn":"S1","detail":"round=1 sites=s0"}
{"t":2500000,"node":"s0","seq":1,"type":"exec.recv","txn":"S1","peer":"c0"}
{"t":3000000,"node":"c0","seq":4,"type":"session.round","txn":"S1","detail":"round=2 sites=s0,s1"}
{"t":3500000,"node":"s0","seq":2,"type":"exec.recv","txn":"S1","peer":"c0","detail":"round=2"}
{"t":5000000,"node":"c0","seq":5,"type":"decision.reached","txn":"S1","detail":"commit"}
`

// TestRunSessionEvents pins that the tool recognizes and renders the
// session-round trace events, and that they filter by name.
func TestRunSessionEvents(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		want    []string
		wantNot []string
	}{
		{
			name: "timeline",
			args: nil,
			want: []string{
				"session.open txn=S1",
				"session.round txn=S1", `"round=1 sites=s0"`, `"round=2 sites=s0,s1"`,
				"exec.recv txn=S1", `"round=2"`,
			},
		},
		{
			name:    "type filter by session names",
			args:    []string{"-type", "session.open,session.round"},
			want:    []string{"session.open", "round=2 sites=s0,s1"},
			wantNot: []string{"exec.recv", "decision.reached"},
		},
		{
			name: "lanes place session events in the coordinator's column",
			args: []string{"-format", "lanes"},
			want: []string{"c0", "s0", "session.round txn=S1"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tc.args, strings.NewReader(sessionSampleJSONL), &out); err != nil {
				t.Fatalf("run: %v", err)
			}
			for _, want := range tc.want {
				if !strings.Contains(out.String(), want) {
					t.Errorf("output missing %q:\n%s", want, out.String())
				}
			}
			for _, not := range tc.wantNot {
				if strings.Contains(out.String(), not) {
					t.Errorf("output unexpectedly contains %q:\n%s", not, out.String())
				}
			}
		})
	}
}
