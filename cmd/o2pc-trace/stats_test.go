package main

import (
	"bytes"
	"strings"
	"testing"
)

// statsGoldenJSONL is a two-transaction commit trace with hand-picked
// timestamps, so every span below is checkable by arithmetic:
//
//	T1 (s0+s1): votereq@1ms; s0 votes back at 3ms (RTT 2.0), s1 at 3.4ms
//	(RTT 2.4); decision at 4ms (collect window 3.0); s0 exposed 2ms→5ms
//	(3.0), s1 exposed 2.4ms→5.4ms (3.0).
//	T2 (s0 only): votereq@10ms, vote back 11ms (RTT 1.0), decision
//	11.5ms (window 1.5), exposed 10.5ms→12ms (1.5).
const statsGoldenJSONL = `{"t":1000000,"node":"c0","seq":1,"type":"votereq.send","txn":"T1","peer":"s0"}
{"t":1000000,"node":"c0","seq":2,"type":"votereq.send","txn":"T1","peer":"s1"}
{"t":2000000,"node":"s0","seq":1,"type":"exposed","txn":"T1","peer":"c0"}
{"t":2400000,"node":"s1","seq":1,"type":"exposed","txn":"T1","peer":"c0"}
{"t":3000000,"node":"c0","seq":3,"type":"vote.recv","txn":"T1","peer":"s0","detail":"yes"}
{"t":3400000,"node":"c0","seq":4,"type":"vote.recv","txn":"T1","peer":"s1","detail":"yes"}
{"t":4000000,"node":"c0","seq":5,"type":"decision.reached","txn":"T1","detail":"commit"}
{"t":5000000,"node":"s0","seq":2,"type":"decision.recv","txn":"T1","detail":"commit"}
{"t":5400000,"node":"s1","seq":2,"type":"decision.recv","txn":"T1","detail":"commit"}
{"t":10000000,"node":"c0","seq":6,"type":"votereq.send","txn":"T2","peer":"s0"}
{"t":10500000,"node":"s0","seq":3,"type":"exposed","txn":"T2","peer":"c0"}
{"t":11000000,"node":"c0","seq":7,"type":"vote.recv","txn":"T2","peer":"s0","detail":"yes"}
{"t":11500000,"node":"c0","seq":8,"type":"decision.reached","txn":"T2","detail":"commit"}
{"t":12000000,"node":"s0","seq":4,"type":"decision.recv","txn":"T2","detail":"commit"}
`

// statsGoldenOut is the byte-exact rendering of the trace above. The
// quantiles follow the histogram's linear interpolation: e.g. s0's vote
// RTTs [1.0, 2.0] give p50 = 1.5, p90 = 1.9, p99 = 1.99.
const statsGoldenOut = `prepare->vote (votereq.send -> vote.recv):
  site   count    p50ms    p90ms    p99ms    maxms
  s0         2    1.500    1.900    1.990    2.000
  s1         1    2.400    2.400    2.400    2.400
  all        3    2.000    2.320    2.392    2.400
vote->decision (first votereq.send -> decision.reached):
  all        2    2.250    2.850    2.985    3.000
exposure window (exposed -> decision.recv):
  site   count    p50ms    p90ms    p99ms    maxms
  s0         2    2.250    2.850    2.985    3.000
  s1         1    3.000    3.000    3.000    3.000
  all        3    3.000    3.000    3.000    3.000
per-txn (ms):
  T1: vote->decision=3.000
    s0: prepare->vote=2.000 exposure=3.000
    s1: prepare->vote=2.400 exposure=3.000
  T2: vote->decision=1.500
    s0: prepare->vote=1.000 exposure=1.500
`

// TestStatsGolden pins the stats subcommand's full output for the golden
// trace, byte for byte.
func TestStatsGolden(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"stats", "-per-txn"}, strings.NewReader(statsGoldenJSONL), &out); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if out.String() != statsGoldenOut {
		t.Errorf("stats output differs from golden:\n--- got ---\n%s--- want ---\n%s", out.String(), statsGoldenOut)
	}
}

// TestStatsTxnFilter keeps only one transaction's spans.
func TestStatsTxnFilter(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"stats", "-txn", "T2"}, strings.NewReader(statsGoldenJSONL), &out); err != nil {
		t.Fatalf("stats: %v", err)
	}
	text := out.String()
	for _, want := range []string{
		"  s0         1    1.000",
		"  all        1    1.500    1.500    1.500    1.500",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("filtered output missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "s1") {
		t.Errorf("filtered output leaked T1's site s1:\n%s", text)
	}
}

// TestStatsNoSpans reports traces without commit-phase pairs instead of
// printing empty tables (sampleJSONL has votes but no votereq.send).
func TestStatsNoSpans(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"stats"}, strings.NewReader(sampleJSONL), &out); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if !strings.Contains(out.String(), "(no commit-phase spans in trace)") {
		t.Errorf("output = %q", out.String())
	}
}

// TestStatsRevotePairsFresh pins the session-retry pairing rule: a second
// votereq.send for the same (txn, site) after the first vote landed opens
// a fresh span rather than stretching the first.
func TestStatsRevotePairsFresh(t *testing.T) {
	const revote = `{"t":1000000,"node":"c0","seq":1,"type":"votereq.send","txn":"T1","peer":"s0"}
{"t":2000000,"node":"c0","seq":2,"type":"vote.recv","txn":"T1","peer":"s0","detail":"retry"}
{"t":8000000,"node":"c0","seq":3,"type":"votereq.send","txn":"T1","peer":"s0"}
{"t":9000000,"node":"c0","seq":4,"type":"vote.recv","txn":"T1","peer":"s0","detail":"yes"}
`
	var out bytes.Buffer
	if err := run([]string{"stats"}, strings.NewReader(revote), &out); err != nil {
		t.Fatalf("stats: %v", err)
	}
	// Two spans of 1.0ms each — NOT one span of 8ms.
	if !strings.Contains(out.String(), "  s0         2    1.000    1.000    1.000    1.000") {
		t.Errorf("revote spans wrong:\n%s", out.String())
	}
}
