package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe stdout sink for run().
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var opsAddrRe = regexp.MustCompile(`ops plane on http://(\S+)`)

// TestRunServesOpsPlane boots the site binary's run() with an ephemeral
// ops address, scrapes the live endpoints, and shuts down via context
// cancel — the SIGTERM path.
func TestRunServesOpsPlane(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-name", "s9", "-listen", "127.0.0.1:0",
			"-ops-addr", "127.0.0.1:0", "-seed", "acct=500",
		}, &out)
	}()

	var opsAddr string
	deadline := time.Now().Add(5 * time.Second)
	for opsAddr == "" {
		if m := opsAddrRe.FindStringSubmatch(out.String()); m != nil {
			opsAddr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ops address never printed; stdout:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	fetch := func(path string) (int, string) {
		resp, err := http.Get("http://" + opsAddr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := fetch("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}
	if code, _ := fetch("/readyz"); code != 200 {
		t.Fatalf("readyz: %d", code)
	}
	code, body := fetch("/metrics")
	if code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		"o2pc_site_execs_total",
		`o2pc_site_exposure_duration_ms{outcome="commit",quantile="0.5"}`,
		"o2pc_site_compensation_duration_ms",
		"o2pc_site_readmit_rejects_total",
		"ops_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	if code, body := fetch("/debug/vars"); code != 200 || !strings.Contains(body, `"node": "s9"`) {
		t.Fatalf("vars: %d %s", code, body)
	}
	if code, _ := fetch("/trace/recent"); code != 200 {
		t.Fatalf("trace/recent: %d", code)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want nil on graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("run did not return after cancel")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out syncBuffer
	err := run(context.Background(), []string{"-seed", "acct"}, &out)
	if err == nil {
		t.Fatalf("malformed -seed accepted")
	}
	if !strings.Contains(fmt.Sprint(err), "key=int") {
		t.Fatalf("err = %v", err)
	}
}
