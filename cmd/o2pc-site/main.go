// Command o2pc-site runs one participant DBMS as a standalone process
// serving the commit-protocol messages over TCP. Together with o2pc-coord
// it deploys the system as a real multi-process multidatabase.
//
// Example (three shells):
//
//	o2pc-site -name s0 -listen 127.0.0.1:7101 -coord c0=127.0.0.1:7001 -seed acct=100
//	o2pc-site -name s1 -listen 127.0.0.1:7102 -coord c0=127.0.0.1:7001 -seed acct=100
//	o2pc-coord -name c0 -listen 127.0.0.1:7001 \
//	    -site s0=127.0.0.1:7101 -site s1=127.0.0.1:7102 \
//	    -txn "s0:addmin:acct:-40:0 / s1:add:acct:40" -protocol o2pc -marking p1
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"maps"
	"net"
	"os"
	"slices"
	"strconv"
	"strings"

	"o2pc/internal/proto"
	"o2pc/internal/rpc"
	"o2pc/internal/site"
	"o2pc/internal/storage"
	"o2pc/internal/wal"
)

// addrList collects repeated name=addr flags.
type addrList map[string]string

func (a addrList) String() string { return fmt.Sprint(map[string]string(a)) }
func (a addrList) Set(v string) error {
	name, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want name=host:port, got %q", v)
	}
	a[name] = addr
	return nil
}

// seedList collects repeated key=int64 flags.
type seedList map[string]int64

func (s seedList) String() string { return fmt.Sprint(map[string]int64(s)) }
func (s seedList) Set(v string) error {
	key, val, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want key=int, got %q", v)
	}
	n, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return err
	}
	s[key] = n
	return nil
}

func main() {
	name := flag.String("name", "s0", "site node name")
	listen := flag.String("listen", "127.0.0.1:7101", "listen address")
	walPath := flag.String("wal", "", "write-ahead log file (default: in-memory)")
	recover := flag.Bool("recover", false, "recover state from the WAL before serving")
	coords := addrList{}
	flag.Var(coords, "coord", "coordinator address as name=host:port (repeatable)")
	seeds := seedList{}
	flag.Var(seeds, "seed", "initial integer value as key=value (repeatable)")
	flag.Parse()

	proto.RegisterGob()

	cfg := site.Config{Name: *name}
	if *walPath != "" {
		fl, err := wal.OpenFileLog(*walPath)
		if err != nil {
			log.Fatalf("o2pc-site: open wal: %v", err)
		}
		//o2pcvet:ignore errflow -- process-exit close; every append the protocol relies on was synced when it was logged
		defer fl.Close()
		cfg.Log = fl
	}
	s := site.NewSite(cfg)
	if len(coords) > 0 {
		s.SetCaller(rpc.NewTCPClient(coords))
	}
	if *recover {
		res, err := s.Recover(context.Background())
		if err != nil {
			log.Fatalf("o2pc-site: recover: %v", err)
		}
		log.Printf("recovered: %d redone, %d undone, %d in doubt",
			len(res.Redone), len(res.Undone), len(res.InDoubt))
	}
	// Seed in sorted key order: SeedInt64 appends to the WAL, and the log
	// must not depend on map iteration order.
	for _, key := range slices.Sorted(maps.Keys(seeds)) {
		s.SeedInt64(storage.Key(key), seeds[key])
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("o2pc-site: listen: %v", err)
	}
	log.Printf("site %s serving on %s (wal=%s)", *name, ln.Addr(), walOrMemory(*walPath))
	srv := rpc.NewServer(*name, s.Handle)
	if err := srv.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "o2pc-site:", err)
		os.Exit(1)
	}
}

func walOrMemory(p string) string {
	if p == "" {
		return "memory"
	}
	return p
}
