// Command o2pc-site runs one participant DBMS as a standalone process
// serving the commit-protocol messages over TCP. Together with o2pc-coord
// it deploys the system as a real multi-process multidatabase.
//
// Example (three shells):
//
//	o2pc-site -name s0 -listen 127.0.0.1:7101 -coord c0=127.0.0.1:7001 -seed acct=100
//	o2pc-site -name s1 -listen 127.0.0.1:7102 -coord c0=127.0.0.1:7001 -seed acct=100
//	o2pc-coord -name c0 -listen 127.0.0.1:7001 \
//	    -site s0=127.0.0.1:7101 -site s1=127.0.0.1:7102 \
//	    -txn "s0:addmin:acct:-40:0 / s1:add:acct:40" -protocol o2pc -marking p1
//
// With -ops-addr the site also serves the live operations plane
// (Prometheus /metrics, /healthz, /readyz, /debug/pprof, /trace/recent);
// /healthz tracks the site's crash/recover epoch, so a scraper watching
// it sees 503 while -recover replays the WAL. SIGINT/SIGTERM shut both
// servers down gracefully.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"maps"
	"net"
	"os"
	"os/signal"
	"slices"
	"strconv"
	"strings"
	"syscall"
	"time"

	"o2pc/internal/metrics"
	"o2pc/internal/ops"
	"o2pc/internal/proto"
	"o2pc/internal/rpc"
	"o2pc/internal/sim"
	"o2pc/internal/site"
	"o2pc/internal/storage"
	"o2pc/internal/trace"
	"o2pc/internal/wal"
)

// addrList collects repeated name=addr flags.
type addrList map[string]string

func (a addrList) String() string { return fmt.Sprint(map[string]string(a)) }
func (a addrList) Set(v string) error {
	name, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want name=host:port, got %q", v)
	}
	a[name] = addr
	return nil
}

// seedList collects repeated key=int64 flags.
type seedList map[string]int64

func (s seedList) String() string { return fmt.Sprint(map[string]int64(s)) }
func (s seedList) Set(v string) error {
	key, val, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want key=int, got %q", v)
	}
	n, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return err
	}
	s[key] = n
	return nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "o2pc-site:", err)
		os.Exit(1)
	}
}

// run is the testable entrypoint: it serves until ctx is cancelled (the
// signal handler in main), then shuts both servers down gracefully.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("o2pc-site", flag.ContinueOnError)
	name := fs.String("name", "s0", "site node name")
	listen := fs.String("listen", "127.0.0.1:7101", "listen address")
	walPath := fs.String("wal", "", "write-ahead log file (default: in-memory)")
	recover := fs.Bool("recover", false, "recover state from the WAL before serving")
	opsAddr := fs.String("ops-addr", "", "serve the operations HTTP plane (metrics, health, pprof, trace) on this address")
	idlePerPeer := fs.Int("rpc-idle-per-peer", 0, "warm TCP connections kept per peer (0 = default 16, negative disables pooling)")
	coords := addrList{}
	fs.Var(coords, "coord", "coordinator address as name=host:port (repeatable)")
	seeds := seedList{}
	fs.Var(seeds, "seed", "initial integer value as key=value (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	proto.RegisterGob()

	cfg := site.Config{Name: *name}
	if *walPath != "" {
		fl, err := wal.OpenFileLog(*walPath)
		if err != nil {
			return fmt.Errorf("open wal: %w", err)
		}
		//o2pcvet:ignore errflow -- process-exit close; every append the protocol relies on was synced when it was logged
		defer fl.Close()
		cfg.Log = fl
	}
	var tracer *trace.Tracer
	if *opsAddr != "" {
		// The ops plane's /trace/recent tails this ring.
		tracer = trace.New(sim.Real(), trace.DefaultNodeCapacity)
		cfg.Tracer = tracer
	}
	s := site.NewSite(cfg)
	if len(coords) > 0 {
		s.SetCaller(rpc.NewTCPClientConfig(coords, rpc.TCPClientConfig{MaxIdlePerPeer: *idlePerPeer}))
	}

	// Start the ops plane before recovery: /healthz reports 503
	// (recovering) while the WAL replays, exactly the window an operator
	// watches on a restarting site.
	var opsSrv *ops.Server
	if *opsAddr != "" {
		reg := metrics.NewRegistry()
		opsSrv = ops.NewServer(ops.Config{
			Node:     *name,
			Registry: reg,
			Collect:  func(r *metrics.Registry) { s.Stats().Publish(r, "o2pc_site_") },
			Health:   s.Health,
			Ready:    s.Ready,
			Tracer:   tracer,
			Vars: map[string]any{
				"name":   *name,
				"listen": *listen,
				"wal":    walOrMemory(*walPath),
				"coords": map[string]string(coords),
				"seeds":  map[string]int64(seeds),
			},
			Sample: true,
		})
		bound, err := opsSrv.Start(*opsAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "site %s ops plane on http://%s\n", *name, bound)
	}

	if *recover {
		res, err := s.Recover(ctx)
		if err != nil {
			return fmt.Errorf("recover: %w", err)
		}
		log.Printf("recovered: %d redone, %d undone, %d in doubt",
			len(res.Redone), len(res.Undone), len(res.InDoubt))
	}
	// Seed in sorted key order: SeedInt64 appends to the WAL, and the log
	// must not depend on map iteration order.
	for _, key := range slices.Sorted(maps.Keys(seeds)) {
		s.SeedInt64(storage.Key(key), seeds[key])
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	fmt.Fprintf(stdout, "site %s serving on %s (wal=%s)\n", *name, ln.Addr(), walOrMemory(*walPath))
	// BatchHandler lets coalescing coordinators ship proto.Batch envelopes;
	// unbatched traffic passes through untouched, so wrapping is always on.
	srv := rpc.NewServer(*name, rpc.BatchHandler(s.Handle, nil))
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case <-ctx.Done():
		// Graceful shutdown: stop accepting protocol traffic, then drain
		// the ops plane so a final scrape can finish.
		err = srv.Close()
		<-done
	case err = <-done:
	}
	if opsSrv != nil {
		sctx, cancel := sim.Real().WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		if serr := opsSrv.Shutdown(sctx); serr != nil && err == nil {
			err = serr
		}
	}
	return err
}

func walOrMemory(p string) string {
	if p == "" {
		return "memory"
	}
	return p
}
