package o2pc_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"o2pc"
)

// TestChaos is the randomized end-to-end gauntlet: concurrent transfers
// under a mixed protocol population, with injected unilateral aborts,
// coordinator crashes and recoveries, and concurrent local transactions —
// all while the two global invariants must hold at the end: money is
// conserved (semantic atomicity) and the recorded history satisfies the
// Section 5 criterion. The whole gauntlet runs on a virtual clock, so a
// seed pins the complete interleaving and no wall-clock time is slept.
func TestChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos gauntlet skipped in -short mode")
	}
	// One marking protocol per run: the Section 6 guarantee assumes every
	// global transaction follows the same marking discipline — a P2
	// transaction never consults undone marks, so mixing disciplines (or
	// letting 2PC transactions skip the check entirely) voids the
	// criterion. 2PC transactions in the mix therefore run under the same
	// marking protocol as everyone else.
	cases := []struct {
		seed    int64
		marking o2pc.MarkProtocol
	}{
		{1, o2pc.MarkP1},
		{7, o2pc.MarkP2},
		{1991, o2pc.MarkSimple},
	}
	for _, tc := range cases {
		seed, clusterMarking := tc.seed, tc.marking
		t.Run(fmt.Sprintf("seed=%d/%s", seed, clusterMarking), func(t *testing.T) {
			cl, nCommitted, nAborted := runChaosOnce(t, seed, clusterMarking)

			// Invariant 1: conservation.
			var total int64
			for s := 0; s < 4; s++ {
				for a := 0; a < 6; a++ {
					total += cl.Site(s).ReadInt64(o2pc.Key(chaosAcct(a)))
				}
			}
			want := int64(4 * 6 * 10_000)
			if total != want {
				t.Fatalf("money not conserved: %d != %d (committed=%d aborted=%d)",
					total, want, nCommitted, nAborted)
			}
			// Invariant 2: correctness criterion on the full history.
			audit := cl.Audit()
			if len(audit.LocalCycles) != 0 {
				t.Fatalf("local cycles: %v", audit.LocalCycles)
			}
			if audit.EffectiveCount != 0 {
				for _, c := range audit.Cycles {
					if c.Effective {
						t.Fatalf("effective regular cycle: %+v", c)
					}
				}
			}
			if audit.DoomedCount > 0 {
				t.Logf("doomed-reader cycles (allowed): %d", audit.DoomedCount)
			}
			// Invariant 3: atomicity of compensation.
			if v := cl.CompensationViolations(); len(v) != 0 {
				t.Fatalf("Theorem 2 violations: %+v", v)
			}
			if nCommitted == 0 || nAborted == 0 {
				t.Fatalf("degenerate chaos mix: committed=%d aborted=%d", nCommitted, nAborted)
			}
			t.Logf("chaos settled: %d committed, %d aborted, all invariants hold", nCommitted, nAborted)
		})
	}
}

// runChaosOnce executes one chaos round in virtual time and returns the
// cluster plus commit/abort counts (shared by TestChaos and the soak).
func runChaosOnce(t *testing.T, seed int64, clusterMarking o2pc.MarkProtocol) (*o2pc.Cluster, int, int) {
	t.Helper()
	const (
		nSites   = 4
		nAccts   = 6
		initBal  = 10_000
		nClients = 6
		nTxns    = 40
	)
	clock := o2pc.NewVirtualClock()
	cl := o2pc.NewCluster(o2pc.ClusterConfig{
		Sites:        nSites,
		Coordinators: 2,
		Record:       true,
		Clock:        clock,
		// A nonzero latency span puts every message on a virtual timer, so
		// the interleaving is driven entirely by the seeded schedule.
		Network: o2pc.NetworkConfig{
			Seed:       seed,
			MinLatency: 100 * time.Microsecond,
			MaxLatency: 2 * time.Millisecond,
		},
	})
	for a := 0; a < nAccts; a++ {
		cl.SeedInt64(chaosAcct(a), initBal)
	}
	ctx, cancel := clock.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rng := rand.New(rand.NewSource(seed))

	type job struct {
		spec    o2pc.TxnSpec
		doom    string
		coorIdx int
	}
	var jobs []job
	for i := 0; i < nClients*nTxns; i++ {
		from, to := rng.Intn(nSites), (rng.Intn(nSites-1)+1+rng.Intn(nSites))%nSites
		if to == from {
			to = (from + 1) % nSites
		}
		amount := int64(1 + rng.Intn(20))
		acct := chaosAcct(rng.Intn(nAccts))
		protocol := o2pc.O2PC
		marking := clusterMarking
		if rng.Float64() < 0.2 {
			protocol = o2pc.TwoPC
		}
		j := job{
			spec: o2pc.TxnSpec{
				ID:             fmt.Sprintf("c%d", i),
				Protocol:       protocol,
				Marking:        marking,
				MarkingRetries: 5,
				Subtxns: []o2pc.SubtxnSpec{
					{Site: chaosSite(from), Ops: []o2pc.Operation{o2pc.AddMin(acct, -amount, 0)}, Comp: o2pc.CompSemantic},
					{Site: chaosSite(to), Ops: []o2pc.Operation{o2pc.Add(acct, amount)}, Comp: o2pc.CompSemantic},
				},
			},
			coorIdx: rng.Intn(2),
		}
		if rng.Float64() < 0.15 {
			j.doom = chaosSite([]int{from, to}[rng.Intn(2)])
		}
		jobs = append(jobs, j)
	}

	var committed, aborted atomic.Int64
	clients := o2pc.NewGroup(clock)
	for c := 0; c < nClients; c++ {
		c := c
		clients.Go(func() {
			// The unique initial sleep parks each freshly-spawned client on
			// its own timer before it touches the cluster, removing the only
			// scheduling race of the spawn burst.
			_ = clock.Sleep(ctx, time.Duration(c+1)*time.Microsecond)
			for i := c; i < len(jobs); i += nClients {
				j := jobs[i]
				if j.doom != "" {
					cl.DoomAtSite(j.spec.ID, j.doom)
				}
				res := cl.RunAt(ctx, j.coorIdx, j.spec)
				if res.Committed() {
					committed.Add(1)
				} else {
					aborted.Add(1)
				}
			}
		})
	}

	var stop atomic.Bool
	chaos := o2pc.NewGroup(clock)
	chaos.Go(func() {
		mrng := rand.New(rand.NewSource(seed + 1))
		for {
			if err := clock.Sleep(ctx, time.Duration(5+mrng.Intn(10))*time.Millisecond); err != nil {
				return
			}
			if stop.Load() {
				return
			}
			cl.CrashCoordinator(1)
			_ = clock.Sleep(ctx, time.Duration(2+mrng.Intn(6))*time.Millisecond)
			// Recovery gets its own context: the crashed coordinator must
			// come back even if the run deadline expired meanwhile.
			rctx, rcancel := clock.WithTimeout(context.Background(), time.Minute)
			err := cl.RecoverCoordinator(rctx, 1)
			rcancel()
			if err != nil && ctx.Err() == nil {
				t.Errorf("coordinator recovery: %v", err)
				return
			}
		}
	})
	for si := 0; si < nSites; si++ {
		si := si
		chaos.Go(func() {
			lrng := rand.New(rand.NewSource(seed + int64(si) + 100))
			_ = clock.Sleep(ctx, time.Duration(10+si)*time.Microsecond)
			for i := 0; i < 30 && !stop.Load(); i++ {
				acct := o2pc.Key(chaosAcct(lrng.Intn(nAccts)))
				_ = cl.RunLocal(ctx, si, func(tx *o2pc.Txn) error {
					v, err := tx.ReadInt64ForUpdate(ctx, acct)
					if err != nil {
						return err
					}
					if err := tx.WriteInt64(ctx, acct, v+1); err != nil {
						return err
					}
					return tx.WriteInt64(ctx, acct, v)
				})
				if err := clock.Sleep(ctx, time.Duration(1+lrng.Intn(500))*time.Microsecond); err != nil {
					return
				}
			}
		})
	}

	clients.Wait()
	stop.Store(true)
	chaos.Wait()

	// Re-deliver every logged decision before auditing: a subtransaction
	// that exposed after a decision's original delivery pass (the site acked
	// it as unknown before the vote) is waiting on its resolver; recovery's
	// idempotent re-send settles it immediately.
	for i := 0; i < 2; i++ {
		rctx, rcancel := clock.WithTimeout(context.Background(), time.Minute)
		err := cl.RecoverCoordinator(rctx, i)
		rcancel()
		if err != nil {
			t.Fatalf("final recovery of c%d: %v", i, err)
		}
	}

	qctx, qcancel := clock.WithTimeout(context.Background(), 30*time.Second)
	defer qcancel()
	if err := cl.Quiesce(qctx); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	return cl, int(committed.Load()), int(aborted.Load())
}

func chaosAcct(a int) string { return fmt.Sprintf("acct%d", a) }
func chaosSite(i int) string { return fmt.Sprintf("s%d", i) }

// TestConservationSoak repeatedly runs the chaos round that historically
// exposed two races (a stale VOTE-REQ delayed across a coordinator crash
// interleaving with the recovery's presumed-abort decision; and a recovery
// presuming abort for a transaction whose run was still in flight and later
// decided commit) and asserts conservation every time. With the virtual
// clock the fifteen rounds are deterministic replicas, so the soak also
// doubles as a determinism regression: any divergence across iterations is
// a scheduling leak.
func TestConservationSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	var wantC, wantA int
	for iter := 0; iter < 15; iter++ {
		cl, nC, nA := runChaosOnce(t, 1991, o2pc.MarkSimple)
		var total int64
		for s := 0; s < 4; s++ {
			for a := 0; a < 6; a++ {
				total += cl.Site(s).ReadInt64(o2pc.Key(chaosAcct(a)))
			}
		}
		if total != 240000 {
			t.Fatalf("iter %d: money not conserved: %d (committed=%d aborted=%d)",
				iter, total, nC, nA)
		}
		if iter == 0 {
			wantC, wantA = nC, nA
		} else if nC != wantC || nA != wantA {
			t.Fatalf("iter %d: outcome divergence: %d/%d committed, %d/%d aborted",
				iter, nC, wantC, nA, wantA)
		}
	}
}
