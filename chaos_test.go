package o2pc_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"o2pc"
)

// TestChaos is the randomized end-to-end gauntlet: concurrent transfers
// under a mixed protocol population, with injected unilateral aborts,
// coordinator crashes and recoveries, site crashes and WAL recoveries, and
// concurrent local transactions — all while the two global invariants must
// hold at the end: money is conserved (semantic atomicity) and the
// recorded history satisfies the Section 5 criterion.
func TestChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos gauntlet skipped in -short mode")
	}
	// One marking protocol per run: the Section 6 guarantee assumes every
	// global transaction follows the same marking discipline — a P2
	// transaction never consults undone marks, so mixing disciplines (or
	// letting 2PC transactions skip the check entirely) voids the
	// criterion. 2PC transactions in the mix therefore run under the same
	// marking protocol as everyone else.
	cases := []struct {
		seed    int64
		marking o2pc.MarkProtocol
	}{
		{1, o2pc.MarkP1},
		{7, o2pc.MarkP2},
		{1991, o2pc.MarkSimple},
	}
	for _, tc := range cases {
		seed, clusterMarking := tc.seed, tc.marking
		t.Run(fmt.Sprintf("seed=%d/%s", seed, clusterMarking), func(t *testing.T) {
			cl, nCommitted, nAborted := runChaosOnce(t, seed, clusterMarking)

			// Invariant 1: conservation.
			var total int64
			for s := 0; s < 4; s++ {
				for a := 0; a < 6; a++ {
					total += cl.Site(s).ReadInt64(o2pc.Key(chaosAcct(a)))
				}
			}
			want := int64(4 * 6 * 10_000)
			if total != want {
				t.Fatalf("money not conserved: %d != %d (committed=%d aborted=%d)",
					total, want, nCommitted, nAborted)
			}
			// Invariant 2: correctness criterion on the full history.
			audit := cl.Audit()
			if len(audit.LocalCycles) != 0 {
				t.Fatalf("local cycles: %v", audit.LocalCycles)
			}
			if audit.EffectiveCount != 0 {
				for _, c := range audit.Cycles {
					if c.Effective {
						t.Fatalf("effective regular cycle: %+v", c)
					}
				}
			}
			if audit.DoomedCount > 0 {
				t.Logf("doomed-reader cycles (allowed): %d", audit.DoomedCount)
			}
			// Invariant 3: atomicity of compensation.
			if v := cl.CompensationViolations(); len(v) != 0 {
				t.Fatalf("Theorem 2 violations: %+v", v)
			}
			if nCommitted == 0 || nAborted == 0 {
				t.Fatalf("degenerate chaos mix: committed=%d aborted=%d", nCommitted, nAborted)
			}
			t.Logf("chaos settled: %d committed, %d aborted, all invariants hold", nCommitted, nAborted)
		})
	}
}

// runChaosOnce executes one chaos round and returns the cluster plus
// commit/abort counts (shared by TestChaos and diagnostic tests).
func runChaosOnce(t *testing.T, seed int64, clusterMarking o2pc.MarkProtocol) (*o2pc.Cluster, int, int) {
	t.Helper()
	const (
		nSites   = 4
		nAccts   = 6
		initBal  = 10_000
		nClients = 6
		nTxns    = 40
	)
	cl := o2pc.NewCluster(o2pc.ClusterConfig{
		Sites:        nSites,
		Coordinators: 2,
		Record:       true,
		Network:      o2pc.NetworkConfig{Seed: seed},
	})
	for a := 0; a < nAccts; a++ {
		cl.SeedInt64(chaosAcct(a), initBal)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rng := rand.New(rand.NewSource(seed))

	type job struct {
		spec    o2pc.TxnSpec
		doom    string
		coorIdx int
	}
	var jobs []job
	for i := 0; i < nClients*nTxns; i++ {
		from, to := rng.Intn(nSites), (rng.Intn(nSites-1)+1+rng.Intn(nSites))%nSites
		if to == from {
			to = (from + 1) % nSites
		}
		amount := int64(1 + rng.Intn(20))
		acct := chaosAcct(rng.Intn(nAccts))
		protocol := o2pc.O2PC
		marking := clusterMarking
		if rng.Float64() < 0.2 {
			protocol = o2pc.TwoPC
		}
		j := job{
			spec: o2pc.TxnSpec{
				ID:             fmt.Sprintf("c%d", i),
				Protocol:       protocol,
				Marking:        marking,
				MarkingRetries: 5,
				Subtxns: []o2pc.SubtxnSpec{
					{Site: chaosSite(from), Ops: []o2pc.Operation{o2pc.AddMin(acct, -amount, 0)}, Comp: o2pc.CompSemantic},
					{Site: chaosSite(to), Ops: []o2pc.Operation{o2pc.Add(acct, amount)}, Comp: o2pc.CompSemantic},
				},
			},
			coorIdx: rng.Intn(2),
		}
		if rng.Float64() < 0.15 {
			j.doom = chaosSite([]int{from, to}[rng.Intn(2)])
		}
		jobs = append(jobs, j)
	}

	var wg sync.WaitGroup
	jobCh := make(chan job)
	var committed, aborted sync.Map
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				if j.doom != "" {
					cl.DoomAtSite(j.spec.ID, j.doom)
				}
				res := cl.RunAt(ctx, j.coorIdx, j.spec)
				if res.Committed() {
					committed.Store(j.spec.ID, true)
				} else {
					aborted.Store(j.spec.ID, true)
				}
			}
		}()
	}

	stopChaos := make(chan struct{})
	var chaosWg sync.WaitGroup
	chaosWg.Add(1)
	go func() {
		defer chaosWg.Done()
		mrng := rand.New(rand.NewSource(seed + 1))
		for {
			select {
			case <-stopChaos:
				return
			case <-time.After(time.Duration(5+mrng.Intn(10)) * time.Millisecond):
			}
			cl.CrashCoordinator(1)
			time.Sleep(time.Duration(2+mrng.Intn(6)) * time.Millisecond)
			if err := cl.RecoverCoordinator(ctx, 1); err != nil && ctx.Err() == nil {
				t.Errorf("coordinator recovery: %v", err)
				return
			}
		}
	}()
	for si := 0; si < nSites; si++ {
		chaosWg.Add(1)
		go func(si int) {
			defer chaosWg.Done()
			lrng := rand.New(rand.NewSource(seed + int64(si) + 100))
			for i := 0; i < 30; i++ {
				select {
				case <-stopChaos:
					return
				default:
				}
				acct := o2pc.Key(chaosAcct(lrng.Intn(nAccts)))
				_ = cl.RunLocal(ctx, si, func(tx *o2pc.Txn) error {
					v, err := tx.ReadInt64ForUpdate(ctx, acct)
					if err != nil {
						return err
					}
					if err := tx.WriteInt64(ctx, acct, v+1); err != nil {
						return err
					}
					return tx.WriteInt64(ctx, acct, v)
				})
			}
		}(si)
	}

	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()
	close(stopChaos)
	chaosWg.Wait()

	qctx, qcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer qcancel()
	if err := cl.Quiesce(qctx); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	return cl, lenSyncMap(&committed), lenSyncMap(&aborted)
}

func chaosAcct(a int) string { return fmt.Sprintf("acct%d", a) }
func chaosSite(i int) string { return fmt.Sprintf("s%d", i) }

func lenSyncMap(m *sync.Map) int {
	n := 0
	m.Range(func(any, any) bool { n++; return true })
	return n
}

// TestConservationSoak repeatedly runs the chaos round that historically
// exposed a vote/decision race (a stale VOTE-REQ delayed across a
// coordinator crash interleaving with the recovery's presumed-abort
// decision, leaking one transfer's compensation) and asserts conservation
// every time.
func TestConservationSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	for iter := 0; iter < 15; iter++ {
		cl, nC, nA := runChaosOnce(t, 1991, o2pc.MarkSimple)
		var total int64
		for s := 0; s < 4; s++ {
			for a := 0; a < 6; a++ {
				total += cl.Site(s).ReadInt64(o2pc.Key(chaosAcct(a)))
			}
		}
		if total != 240000 {
			t.Fatalf("iter %d: money not conserved: %d (committed=%d aborted=%d)",
				iter, total, nC, nA)
		}
	}
}
