package o2pc_test

import (
	"context"
	"fmt"
	"time"

	"o2pc"
)

// ExampleNewCluster runs one committed O2PC transfer across two sites and
// audits the recorded history.
func ExampleNewCluster() {
	cl := o2pc.NewCluster(o2pc.ClusterConfig{Sites: 2, Record: true})
	cl.SeedInt64("balance", 100)
	ctx := context.Background()

	res := cl.Run(ctx, o2pc.TxnSpec{
		Protocol: o2pc.O2PC,
		Marking:  o2pc.MarkP1,
		Subtxns: []o2pc.SubtxnSpec{
			{Site: "s0", Ops: []o2pc.Operation{o2pc.AddMin("balance", -40, 0)}, Comp: o2pc.CompSemantic},
			{Site: "s1", Ops: []o2pc.Operation{o2pc.Add("balance", 40)}, Comp: o2pc.CompSemantic},
		},
	})
	fmt.Println("outcome:", res.Outcome)
	fmt.Println("s0 balance:", cl.Site(0).ReadInt64("balance"))
	fmt.Println("s1 balance:", cl.Site(1).ReadInt64("balance"))
	fmt.Println("history correct:", cl.Audit().Correct())
	// Output:
	// outcome: committed
	// s0 balance: 60
	// s1 balance: 140
	// history correct: true
}

// ExampleCluster_DoomAtSite shows semantic atomicity: a unilateral NO vote
// aborts the transfer, and the already-exposed debit is compensated.
func ExampleCluster_DoomAtSite() {
	cl := o2pc.NewCluster(o2pc.ClusterConfig{Sites: 2})
	cl.SeedInt64("balance", 100)
	ctx := context.Background()

	cl.DoomAtSite("Tdoomed", "s1") // s1 will vote NO
	res := cl.Run(ctx, o2pc.TxnSpec{
		ID:       "Tdoomed",
		Protocol: o2pc.O2PC,
		Marking:  o2pc.MarkP1,
		Subtxns: []o2pc.SubtxnSpec{
			{Site: "s0", Ops: []o2pc.Operation{o2pc.AddMin("balance", -40, 0)}, Comp: o2pc.CompSemantic},
			{Site: "s1", Ops: []o2pc.Operation{o2pc.Add("balance", 40)}, Comp: o2pc.CompSemantic},
		},
	})
	qctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	_ = cl.Quiesce(qctx)

	fmt.Println("outcome:", res.Outcome)
	fmt.Println("s0 balance restored:", cl.Site(0).ReadInt64("balance"))
	fmt.Println("s1 balance untouched:", cl.Site(1).ReadInt64("balance"))
	// Output:
	// outcome: aborted-vote
	// s0 balance restored: 100
	// s1 balance untouched: 100
}

// ExampleRunWorkload drives a small generated mix and prints the shape of
// the report.
func ExampleRunWorkload() {
	cl := o2pc.NewCluster(o2pc.ClusterConfig{Sites: 3})
	rep := o2pc.RunWorkload(context.Background(), cl, o2pc.WorkloadConfig{
		Clients:       2,
		TxnsPerClient: 10,
		SitesPerTxn:   2,
		KeysPerSite:   64,
		Protocol:      o2pc.O2PC,
		Marking:       o2pc.MarkP1,
	})
	fmt.Println("all committed:", rep.Committed == 20 && rep.Aborted == 0)
	// Output:
	// all committed: true
}
