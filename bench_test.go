// Benchmarks mirroring the experiment suite of cmd/o2pc-bench (one per
// DESIGN.md experiment, plus micro-benchmarks of the substrates). Run:
//
//	go test -bench=. -benchmem
//
// Benchmarks report committed transactions per second where relevant via
// the txn/s metric; the shapes (who wins, by how much) reproduce the
// paper's claims — see EXPERIMENTS.md.
package o2pc_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"o2pc"
)

// benchLoad runs b.N transactions through a cluster under the given stack
// and reports txn/s.
func benchLoad(b *testing.B, protocol o2pc.Protocol, marking o2pc.MarkProtocol, hotKeys int, abortProb float64) {
	b.Helper()
	// ExecWorkers enables the bounded executor fast path (PR9): the
	// coordinator's exec/vote fan-out reuses pooled workers instead of
	// spawning per site per phase.
	cl := o2pc.NewCluster(o2pc.ClusterConfig{Sites: 4, ExecWorkers: 16})
	cfg := o2pc.WorkloadConfig{
		Clients:       4,
		TxnsPerClient: (b.N + 3) / 4,
		SitesPerTxn:   2,
		KeysPerSite:   1024,
		HotKeys:       hotKeys,
		HotProb:       0.5,
		ReadFrac:      0.3,
		AbortProb:     abortProb,
		Protocol:      protocol,
		Marking:       marking,
	}
	b.ResetTimer()
	rep := o2pc.RunWorkload(context.Background(), cl, cfg)
	b.StopTimer()
	b.ReportMetric(rep.Throughput, "txn/s")
	b.ReportMetric(100*rep.CommitRate, "%commit")
	b.ReportMetric(rep.LockHoldX.Mean, "holdX-ms")
}

// --- E1/E2: protocol comparison under contention ---

func BenchmarkContention2PC(b *testing.B)    { benchLoad(b, o2pc.TwoPC, o2pc.MarkNone, 16, 0) }
func BenchmarkContentionO2PC(b *testing.B)   { benchLoad(b, o2pc.O2PC, o2pc.MarkNone, 16, 0) }
func BenchmarkContentionO2PCP1(b *testing.B) { benchLoad(b, o2pc.O2PC, o2pc.MarkP1, 16, 0) }

func BenchmarkUncontended2PC(b *testing.B)  { benchLoad(b, o2pc.TwoPC, o2pc.MarkNone, 0, 0) }
func BenchmarkUncontendedO2PC(b *testing.B) { benchLoad(b, o2pc.O2PC, o2pc.MarkNone, 0, 0) }

// BenchmarkLockHoldTime measures the per-protocol exclusive-lock hold time
// with a realistic network latency (experiment E1's core number).
func BenchmarkLockHoldTime(b *testing.B) {
	for _, tc := range []struct {
		name     string
		protocol o2pc.Protocol
	}{{"2PC", o2pc.TwoPC}, {"O2PC", o2pc.O2PC}} {
		b.Run(tc.name, func(b *testing.B) {
			cl := o2pc.NewCluster(o2pc.ClusterConfig{
				Sites: 2,
				Network: o2pc.NetworkConfig{
					MinLatency: time.Millisecond,
					MaxLatency: 2 * time.Millisecond,
				},
			})
			cfg := o2pc.WorkloadConfig{
				Clients:       4,
				TxnsPerClient: (b.N + 3) / 4,
				SitesPerTxn:   2,
				KeysPerSite:   4096,
				ReadFrac:      0.2,
				Protocol:      tc.protocol,
			}
			b.ResetTimer()
			rep := o2pc.RunWorkload(context.Background(), cl, cfg)
			b.StopTimer()
			b.ReportMetric(rep.LockHoldX.Mean, "holdX-ms")
		})
	}
}

// --- E4: the abort-rate crossover ---

func BenchmarkAbortRateCrossover(b *testing.B) {
	for _, p := range []float64{0, 0.05, 0.2} {
		for _, tc := range []struct {
			name     string
			protocol o2pc.Protocol
			marking  o2pc.MarkProtocol
		}{{"2PC", o2pc.TwoPC, o2pc.MarkNone}, {"O2PC", o2pc.O2PC, o2pc.MarkNone}, {"O2PCP1", o2pc.O2PC, o2pc.MarkP1}} {
			b.Run(fmt.Sprintf("abort=%.0f%%/%s", 100*p, tc.name), func(b *testing.B) {
				benchLoad(b, tc.protocol, tc.marking, 32, p)
			})
		}
	}
}

// --- E3: coordinator crash (fixed outage, measures blocked wait) ---

func BenchmarkCoordinatorCrash(b *testing.B) {
	for _, tc := range []struct {
		name     string
		protocol o2pc.Protocol
	}{{"2PC", o2pc.TwoPC}, {"O2PC", o2pc.O2PC}} {
		b.Run(tc.name, func(b *testing.B) {
			const outage = 20 * time.Millisecond
			var totalWait time.Duration
			for i := 0; i < b.N; i++ {
				totalWait += measureCrashWait(tc.protocol, outage)
			}
			b.ReportMetric(float64(totalWait.Milliseconds())/float64(b.N), "blocked-ms/op")
		})
	}
}

func measureCrashWait(protocol o2pc.Protocol, outage time.Duration) time.Duration {
	ctx := context.Background()
	cl := o2pc.NewCluster(o2pc.ClusterConfig{Sites: 2, LockTimeout: time.Hour})
	cl.SeedInt64("x", 0)
	cl.Coordinator(0).SetCrashInjector(func(id string, phase o2pc.CrashPhase) bool {
		return id == "Tcrash" && phase == o2pc.CrashAfterVotes
	})
	cl.Run(ctx, o2pc.TxnSpec{
		ID:       "Tcrash",
		Protocol: protocol,
		Subtxns: []o2pc.SubtxnSpec{
			{Site: "s0", Ops: []o2pc.Operation{o2pc.Add("x", 1)}, Comp: o2pc.CompSemantic},
			{Site: "s1", Ops: []o2pc.Operation{o2pc.Add("x", 1)}, Comp: o2pc.CompSemantic},
		},
	})
	cl.Network().SetDown("c0", true)
	start := time.Now()
	done := make(chan time.Duration, 1)
	go func() {
		_ = cl.RunLocal(ctx, 0, func(t *o2pc.Txn) error {
			_, err := t.ReadInt64(ctx, "x")
			return err
		})
		done <- time.Since(start)
	}()
	time.Sleep(outage)
	_ = cl.RecoverCoordinator(ctx, 0)
	wait := <-done
	qctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	_ = cl.Quiesce(qctx)
	return wait
}

// --- E6: message counts per committed transaction ---

func BenchmarkMessageCounts(b *testing.B) {
	for _, tc := range []struct {
		name     string
		protocol o2pc.Protocol
		marking  o2pc.MarkProtocol
	}{{"2PC", o2pc.TwoPC, o2pc.MarkNone}, {"O2PC", o2pc.O2PC, o2pc.MarkNone}, {"O2PCP1", o2pc.O2PC, o2pc.MarkP1}} {
		b.Run(tc.name, func(b *testing.B) {
			cl := o2pc.NewCluster(o2pc.ClusterConfig{Sites: 2})
			cl.SeedInt64("k", 1<<30)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cl.Run(ctx, o2pc.TxnSpec{
					Protocol: tc.protocol,
					Marking:  tc.marking,
					Subtxns: []o2pc.SubtxnSpec{
						{Site: "s0", Ops: []o2pc.Operation{o2pc.Add("k", 1)}, Comp: o2pc.CompSemantic},
						{Site: "s1", Ops: []o2pc.Operation{o2pc.Add("k", 1)}, Comp: o2pc.CompSemantic},
					},
				})
			}
			b.StopTimer()
			var total int64
			for _, n := range cl.MessageCounts() {
				total += n
			}
			b.ReportMetric(float64(total)/float64(b.N), "msgs/txn")
		})
	}
}

// --- F1/E7: serialization-graph audit throughput ---

func BenchmarkFig1RegularCycleDetection(b *testing.B) {
	cl := o2pc.NewCluster(o2pc.ClusterConfig{Sites: 4, Record: true})
	_ = o2pc.RunWorkload(context.Background(), cl, o2pc.WorkloadConfig{
		Clients:       4,
		TxnsPerClient: 50,
		SitesPerTxn:   2,
		KeysPerSite:   256,
		HotKeys:       16,
		HotProb:       0.5,
		ReadFrac:      0.4,
		AbortProb:     0.15,
		Protocol:      o2pc.O2PC,
		Marking:       o2pc.MarkP1,
	})
	h := cl.History()
	_ = h
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		audit := cl.Audit()
		if audit.RegularCount != 0 {
			b.Fatalf("regular cycles under P1: %d", audit.RegularCount)
		}
	}
}

// BenchmarkSGAudit measures the Section 5 verifier itself on a recorded
// contended history (experiment E7's tooling cost).
func BenchmarkSGAudit(b *testing.B) {
	cl := o2pc.NewCluster(o2pc.ClusterConfig{Sites: 8, Record: true})
	_ = o2pc.RunWorkload(context.Background(), cl, o2pc.WorkloadConfig{
		Clients:       8,
		TxnsPerClient: 40,
		SitesPerTxn:   3,
		KeysPerSite:   512,
		HotKeys:       32,
		HotProb:       0.5,
		ReadFrac:      0.4,
		AbortProb:     0.1,
		Protocol:      o2pc.O2PC,
		Marking:       o2pc.MarkP1,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cl.Audit()
	}
}

// --- E9: real actions ---

func BenchmarkRealActions(b *testing.B) {
	for _, frac := range []float64{0, 0.5, 1} {
		b.Run(fmt.Sprintf("frac=%.0f%%", 100*frac), func(b *testing.B) {
			cl := o2pc.NewCluster(o2pc.ClusterConfig{Sites: 4})
			cfg := o2pc.WorkloadConfig{
				Clients:        4,
				TxnsPerClient:  (b.N + 3) / 4,
				SitesPerTxn:    2,
				KeysPerSite:    1024,
				HotKeys:        64,
				HotProb:        0.5,
				ReadFrac:       0.2,
				Protocol:       o2pc.O2PC,
				RealActionFrac: frac,
			}
			b.ResetTimer()
			rep := o2pc.RunWorkload(context.Background(), cl, cfg)
			b.StopTimer()
			b.ReportMetric(rep.Throughput, "txn/s")
		})
	}
}

// --- E10: sites per transaction ---

func BenchmarkScaleSites(b *testing.B) {
	for _, width := range []int{2, 4, 8} {
		for _, tc := range []struct {
			name     string
			protocol o2pc.Protocol
		}{{"2PC", o2pc.TwoPC}, {"O2PC", o2pc.O2PC}} {
			b.Run(fmt.Sprintf("width=%d/%s", width, tc.name), func(b *testing.B) {
				cl := o2pc.NewCluster(o2pc.ClusterConfig{Sites: 8})
				cfg := o2pc.WorkloadConfig{
					Clients:       4,
					TxnsPerClient: (b.N + 3) / 4,
					SitesPerTxn:   width,
					KeysPerSite:   1024,
					ReadFrac:      0.3,
					Protocol:      tc.protocol,
				}
				b.ResetTimer()
				rep := o2pc.RunWorkload(context.Background(), cl, cfg)
				b.StopTimer()
				b.ReportMetric(rep.Throughput, "txn/s")
			})
		}
	}
}

// --- single-transaction latency ---

func BenchmarkSingleTxnLatency(b *testing.B) {
	for _, tc := range []struct {
		name     string
		protocol o2pc.Protocol
		marking  o2pc.MarkProtocol
	}{{"2PC", o2pc.TwoPC, o2pc.MarkNone}, {"O2PC", o2pc.O2PC, o2pc.MarkNone}, {"O2PCP1", o2pc.O2PC, o2pc.MarkP1}} {
		b.Run(tc.name, func(b *testing.B) {
			cl := o2pc.NewCluster(o2pc.ClusterConfig{Sites: 3})
			cl.SeedInt64("k", 1<<30)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := cl.Run(ctx, o2pc.TxnSpec{
					Protocol: tc.protocol,
					Marking:  tc.marking,
					Subtxns: []o2pc.SubtxnSpec{
						{Site: "s0", Ops: []o2pc.Operation{o2pc.Add("k", 1)}, Comp: o2pc.CompSemantic},
						{Site: "s1", Ops: []o2pc.Operation{o2pc.Add("k", 1)}, Comp: o2pc.CompSemantic},
						{Site: "s2", Ops: []o2pc.Operation{o2pc.Read("k")}, Comp: o2pc.CompSemantic},
					},
				})
				if !res.Committed() {
					b.Fatalf("txn failed: %v", res.Err)
				}
			}
		})
	}
}

// --- compensation cost ---

func BenchmarkCompensationRoundTrip(b *testing.B) {
	cl := o2pc.NewCluster(o2pc.ClusterConfig{Sites: 2})
	cl.SeedInt64("k", 1<<30)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("doom%d", i)
		cl.DoomAtSite(id, "s1")
		res := cl.Run(ctx, o2pc.TxnSpec{
			ID:       id,
			Protocol: o2pc.O2PC,
			Subtxns: []o2pc.SubtxnSpec{
				{Site: "s0", Ops: []o2pc.Operation{o2pc.Add("k", 1)}, Comp: o2pc.CompSemantic},
				{Site: "s1", Ops: []o2pc.Operation{o2pc.Add("k", 1)}, Comp: o2pc.CompSemantic},
			},
		})
		if res.Committed() {
			b.Fatalf("doomed txn committed")
		}
	}
	b.StopTimer()
	qctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	_ = cl.Quiesce(qctx)
}
