// Package metrics provides lightweight, concurrency-safe counters and
// histograms used by the simulation harness and the benchmark suite.
//
// The package is deliberately dependency-free: experiments in this
// repository must be runnable offline with the standard library only.
package metrics

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing concurrency-safe counter. Values
// that can go down (in-flight transactions, queue depths) belong in a
// Gauge.
type Counter struct {
	v atomic.Int64
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increments the counter by delta. Counters are strictly monotonic:
// a negative delta panics — use a Gauge for values that decrease.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic(fmt.Sprintf("metrics: Counter.Add(%d): counters are monotonic, use a Gauge", delta))
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is a concurrency-safe instantaneous value that can rise and fall
// (in-flight transactions, pending subtransactions, queue depths).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Inc increments the gauge by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec decrements the gauge by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add moves the gauge by delta (any sign).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the gauge's current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Reset sets the gauge back to zero.
func (g *Gauge) Reset() { g.v.Store(0) }

// Histogram records a stream of duration (or generic numeric) samples and
// reports order statistics. By default it keeps all samples: experiment
// runs in this repository are bounded, so exactness is preferred over a
// sketch, and golden tests rely on exact quantiles.
//
// For long benchmark runs the retained-sample memory grows without bound;
// NewReservoirHistogram caps it with uniform reservoir sampling
// (Algorithm R). In reservoir mode Count, Sum, and Mean stay exact (they
// are tracked outside the reservoir) while Quantile, Min, and Max become
// unbiased estimates whose error shrinks with the reservoir size — the
// usual tradeoff of bounded memory for approximate order statistics.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
	sum     float64

	// Reservoir mode (resCap > 0): count tracks all observations even
	// when only resCap samples are retained; rng drives Algorithm R's
	// replacement choice and is seeded explicitly so runs stay
	// deterministic (no global rand — the randdet analyzer forbids it).
	resCap int
	count  int
	rng    *rand.Rand
}

// NewHistogram returns an empty exact histogram that retains every sample.
func NewHistogram() *Histogram { return &Histogram{} }

// NewReservoirHistogram returns a histogram that retains at most cap
// samples using uniform reservoir sampling (Vitter's Algorithm R), seeded
// deterministically. Count/Sum/Mean remain exact; quantiles are estimates.
// A cap <= 0 yields an exact histogram.
func NewReservoirHistogram(cap int, seed int64) *Histogram {
	if cap <= 0 {
		return NewHistogram()
	}
	return &Histogram{
		resCap: cap,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.count++
	h.sum += v
	if h.resCap > 0 && len(h.samples) >= h.resCap {
		// Algorithm R: keep the new sample with probability cap/count.
		if j := h.rng.Intn(h.count); j < h.resCap {
			h.samples[j] = v
			h.sorted = false
		}
		h.mu.Unlock()
		return
	}
	h.samples = append(h.samples, v)
	h.sorted = false
	h.mu.Unlock()
}

// ObserveDuration records a duration sample in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count returns the number of observations (exact in every mode).
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean (exact in every mode), or 0 for an
// empty histogram.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// ensureSortedLocked sorts the sample slice if needed. Callers must hold mu.
func (h *Histogram) ensureSortedLocked() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) using nearest-rank
// interpolation, or 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSortedLocked()
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	pos := q * float64(len(h.samples)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return h.samples[lo]
	}
	frac := pos - float64(lo)
	return h.samples[lo]*(1-frac) + h.samples[hi]*frac
}

// Min returns the smallest sample, or 0 for an empty histogram.
func (h *Histogram) Min() float64 { return h.Quantile(0) }

// Max returns the largest sample, or 0 for an empty histogram.
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// Reset discards all samples (the reservoir seed stream is not rewound).
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.sum = 0
	h.count = 0
	h.sorted = false
	h.mu.Unlock()
}

// Summary is a point-in-time snapshot of a histogram.
type Summary struct {
	Count int
	Mean  float64
	P50   float64
	P90   float64
	P99   float64
	Min   float64
	Max   float64
}

// Snapshot computes a Summary of the histogram.
func (h *Histogram) Snapshot() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		Min:   h.Min(),
		Max:   h.Max(),
	}
}

// String renders the summary in a compact human-readable form.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max)
}

// Registry is a named collection of counters, gauges, and histograms. A
// Registry is safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it on first
// use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// Adopt registers externally-owned instruments under a name, so stats
// structs kept as plain fields elsewhere (coordinator and site Stats) can
// be exposed through WriteText without copying. A nil instrument is
// ignored; adopting over an existing name replaces it.
func (r *Registry) Adopt(name string, instrument any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch v := instrument.(type) {
	case *Counter:
		if v != nil {
			r.counters[name] = v
		}
	case *Gauge:
		if v != nil {
			r.gauges[name] = v
		}
	case *Histogram:
		if v != nil {
			r.histograms[name] = v
		}
	default:
		panic(fmt.Sprintf("metrics: Adopt(%q): unsupported instrument type %T", name, instrument))
	}
}

// CounterNames returns the sorted names of all registered counters.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GaugeNames returns the sorted names of all registered gauges.
func (r *Registry) GaugeNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HistogramNames returns the sorted names of all registered histograms.
func (r *Registry) HistogramNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.histograms))
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Reset zeroes every counter and clears every histogram, keeping the names
// registered so that concurrent holders of pointers remain valid.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.Reset()
	}
	for _, g := range r.gauges {
		g.Reset()
	}
	for _, h := range r.histograms {
		h.Reset()
	}
}

// sanitizeMetricName maps a registry name onto the Prometheus metric-name
// charset [a-zA-Z0-9_:], replacing everything else with '_'.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			r = '_'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// WriteText renders every registered metric in the Prometheus text
// exposition format, in deterministic sorted order: counters and gauges as
// single samples, histograms as a quantile summary with _sum and _count.
func (r *Registry) WriteText(w io.Writer) error {
	type histEntry struct {
		name string
		h    *Histogram
	}
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for n, c := range r.counters {
		counters[sanitizeMetricName(n)] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for n, g := range r.gauges {
		gauges[sanitizeMetricName(n)] = g.Value()
	}
	hists := make([]histEntry, 0, len(r.histograms))
	for n, h := range r.histograms {
		hists = append(hists, histEntry{sanitizeMetricName(n), h})
	}
	r.mu.Unlock()

	for _, name := range sortedKeys(counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, gauges[name]); err != nil {
			return err
		}
	}
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	for _, e := range hists {
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", e.name); err != nil {
			return err
		}
		for _, q := range []struct {
			label string
			q     float64
		}{{"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}} {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %g\n", e.name, q.label, e.h.Quantile(q.q)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", e.name, e.h.Sum(), e.name, e.h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// sortedKeys returns the map's keys in ascending order.
func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
