// Package metrics provides lightweight, concurrency-safe counters and
// histograms used by the simulation harness and the benchmark suite.
//
// The package is deliberately dependency-free: experiments in this
// repository must be runnable offline with the standard library only.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing concurrency-safe counter.
type Counter struct {
	v atomic.Int64
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increments the counter by delta. Negative deltas are permitted for
// gauge-like uses, but most counters in this repository only grow.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// Histogram records a stream of duration (or generic numeric) samples and
// reports order statistics. It keeps all samples; experiment runs in this
// repository are bounded, so exactness is preferred over a sketch.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
	sum     float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.sum += v
	h.sorted = false
	h.mu.Unlock()
}

// ObserveDuration records a duration sample in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

// ensureSortedLocked sorts the sample slice if needed. Callers must hold mu.
func (h *Histogram) ensureSortedLocked() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) using nearest-rank
// interpolation, or 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSortedLocked()
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	pos := q * float64(len(h.samples)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return h.samples[lo]
	}
	frac := pos - float64(lo)
	return h.samples[lo]*(1-frac) + h.samples[hi]*frac
}

// Min returns the smallest sample, or 0 for an empty histogram.
func (h *Histogram) Min() float64 { return h.Quantile(0) }

// Max returns the largest sample, or 0 for an empty histogram.
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.sum = 0
	h.sorted = false
	h.mu.Unlock()
}

// Summary is a point-in-time snapshot of a histogram.
type Summary struct {
	Count int
	Mean  float64
	P50   float64
	P90   float64
	P99   float64
	Min   float64
	Max   float64
}

// Snapshot computes a Summary of the histogram.
func (h *Histogram) Snapshot() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		Min:   h.Min(),
		Max:   h.Max(),
	}
}

// String renders the summary in a compact human-readable form.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max)
}

// Registry is a named collection of counters and histograms. A Registry is
// safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the histogram with the given name, creating it on first
// use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// CounterNames returns the sorted names of all registered counters.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HistogramNames returns the sorted names of all registered histograms.
func (r *Registry) HistogramNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.histograms))
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Reset zeroes every counter and clears every histogram, keeping the names
// registered so that concurrent holders of pointers remain valid.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.Reset()
	}
	for _, h := range r.histograms {
		h.Reset()
	}
}
