// Package metrics provides lightweight, concurrency-safe counters and
// histograms used by the simulation harness and the benchmark suite.
//
// The package is deliberately dependency-free: experiments in this
// repository must be runnable offline with the standard library only.
package metrics

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing concurrency-safe counter. Values
// that can go down (in-flight transactions, queue depths) belong in a
// Gauge.
type Counter struct {
	v atomic.Int64
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increments the counter by delta. Counters are strictly monotonic:
// a negative delta panics — use a Gauge for values that decrease.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic(fmt.Sprintf("metrics: Counter.Add(%d): counters are monotonic, use a Gauge", delta))
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is a concurrency-safe instantaneous value that can rise and fall
// (in-flight transactions, pending subtransactions, queue depths).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Inc increments the gauge by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec decrements the gauge by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add moves the gauge by delta (any sign).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the gauge's current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Reset sets the gauge back to zero.
func (g *Gauge) Reset() { g.v.Store(0) }

// Histogram records a stream of duration (or generic numeric) samples and
// reports order statistics. By default it keeps all samples: experiment
// runs in this repository are bounded, so exactness is preferred over a
// sketch, and golden tests rely on exact quantiles.
//
// For long benchmark runs the retained-sample memory grows without bound;
// NewReservoirHistogram caps it with uniform reservoir sampling
// (Algorithm R). In reservoir mode Count, Sum, and Mean stay exact (they
// are tracked outside the reservoir) while Quantile, Min, and Max become
// unbiased estimates whose error shrinks with the reservoir size — the
// usual tradeoff of bounded memory for approximate order statistics.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
	sum     float64

	// Reservoir mode (resCap > 0): count tracks all observations even
	// when only resCap samples are retained; rng drives Algorithm R's
	// replacement choice and is seeded explicitly so runs stay
	// deterministic (no global rand — the randdet analyzer forbids it).
	resCap int
	count  int
	rng    *rand.Rand
}

// NewHistogram returns an empty exact histogram that retains every sample.
func NewHistogram() *Histogram { return &Histogram{} }

// NewReservoirHistogram returns a histogram that retains at most cap
// samples using uniform reservoir sampling (Vitter's Algorithm R), seeded
// deterministically. Count/Sum/Mean remain exact; quantiles are estimates.
// A cap <= 0 yields an exact histogram.
func NewReservoirHistogram(cap int, seed int64) *Histogram {
	if cap <= 0 {
		return NewHistogram()
	}
	return &Histogram{
		resCap: cap,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.count++
	h.sum += v
	if h.resCap > 0 && len(h.samples) >= h.resCap {
		// Algorithm R: keep the new sample with probability cap/count.
		if j := h.rng.Intn(h.count); j < h.resCap {
			h.samples[j] = v
			h.sorted = false
		}
		h.mu.Unlock()
		return
	}
	h.samples = append(h.samples, v)
	h.sorted = false
	h.mu.Unlock()
}

// ObserveDuration records a duration sample in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count returns the number of observations (exact in every mode).
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean (exact in every mode), or 0 for an
// empty histogram.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// ensureSortedLocked sorts the sample slice if needed. Callers must hold mu.
func (h *Histogram) ensureSortedLocked() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) using nearest-rank
// interpolation, or 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSortedLocked()
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	pos := q * float64(len(h.samples)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return h.samples[lo]
	}
	frac := pos - float64(lo)
	return h.samples[lo]*(1-frac) + h.samples[hi]*frac
}

// Min returns the smallest sample, or 0 for an empty histogram.
func (h *Histogram) Min() float64 { return h.Quantile(0) }

// Max returns the largest sample, or 0 for an empty histogram.
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// Reset discards all samples (the reservoir seed stream is not rewound).
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.sum = 0
	h.count = 0
	h.sorted = false
	h.mu.Unlock()
}

// Summary is a point-in-time snapshot of a histogram.
type Summary struct {
	Count int
	Mean  float64
	P50   float64
	P90   float64
	P99   float64
	Min   float64
	Max   float64
}

// Snapshot computes a Summary of the histogram.
func (h *Histogram) Snapshot() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		Min:   h.Min(),
		Max:   h.Max(),
	}
}

// String renders the summary in a compact human-readable form.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max)
}

// Registry is a named collection of counters, gauges, and histograms. A
// Registry is safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		help:       make(map[string]string),
	}
}

// SetHelp attaches a help string to a metric, emitted by WriteText as a
// "# HELP" line before the metric's samples. The name may carry a label
// block (it is stripped — help is per metric family, not per series).
func (r *Registry) SetHelp(name, help string) {
	base, _ := splitLabels(name)
	r.mu.Lock()
	r.help[sanitizeMetricName(base)] = help
	r.mu.Unlock()
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it on first
// use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// Adopt registers externally-owned instruments under a name, so stats
// structs kept as plain fields elsewhere (coordinator and site Stats) can
// be exposed through WriteText without copying. A nil instrument is
// ignored; adopting over an existing name replaces it.
func (r *Registry) Adopt(name string, instrument any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch v := instrument.(type) {
	case *Counter:
		if v != nil {
			r.counters[name] = v
		}
	case *Gauge:
		if v != nil {
			r.gauges[name] = v
		}
	case *Histogram:
		if v != nil {
			r.histograms[name] = v
		}
	default:
		panic(fmt.Sprintf("metrics: Adopt(%q): unsupported instrument type %T", name, instrument))
	}
}

// CounterNames returns the sorted names of all registered counters.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GaugeNames returns the sorted names of all registered gauges.
func (r *Registry) GaugeNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HistogramNames returns the sorted names of all registered histograms.
func (r *Registry) HistogramNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.histograms))
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Reset zeroes every counter and clears every histogram, keeping the names
// registered so that concurrent holders of pointers remain valid.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.Reset()
	}
	for _, g := range r.gauges {
		g.Reset()
	}
	for _, h := range r.histograms {
		h.Reset()
	}
}

// sanitizeMetricName maps a registry name onto the Prometheus metric-name
// charset [a-zA-Z0-9_:], replacing everything else with '_'.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			r = '_'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// sanitizeLabelName maps a name onto the Prometheus label-name charset
// [a-zA-Z0-9_] (no colon, which is reserved for metric names).
func sanitizeLabelName(name string) string {
	return strings.ReplaceAll(sanitizeMetricName(name), ":", "_")
}

// labelPair is one parsed key="value" label, with value held unescaped.
type labelPair struct {
	key, value string
}

// Label renders a metric name with attached label pairs, suitable for
// Registry registration and Adopt: Label("rtt_ms", "site", "s0") yields
// `rtt_ms{site="s0"}`. WriteText recognizes the label block and escapes
// the values per the Prometheus text format instead of mangling the
// braces through name sanitization. Pairs must come as key, value, ...;
// an odd count panics.
func Label(base string, pairs ...string) string {
	if len(pairs)%2 != 0 {
		panic(fmt.Sprintf("metrics: Label(%q): odd label arguments %d", base, len(pairs)))
	}
	ps := make([]labelPair, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		ps = append(ps, labelPair{pairs[i], pairs[i+1]})
	}
	return base + renderLabels(ps)
}

// escapeLabelValue escapes a raw label value per the Prometheus text
// exposition format: backslash, double quote, and line feed.
func escapeLabelValue(v string) string {
	var b strings.Builder
	b.Grow(len(v))
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a help string per the Prometheus text exposition
// format: backslash and line feed (quotes stay literal on HELP lines).
func escapeHelp(h string) string {
	return strings.ReplaceAll(strings.ReplaceAll(h, `\`, `\\`), "\n", `\n`)
}

// renderLabels renders pairs as a `{k="v",...}` block with values escaped,
// or "" when there are no pairs.
func renderLabels(pairs []labelPair) string {
	if len(pairs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeLabelName(p.key))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// splitLabels splits a registry name into its base metric name and raw
// label block: `m{a="b"}` → ("m", `a="b"`). A name without a well-formed
// trailing block comes back with labels == "".
func splitLabels(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") || i+1 > len(name)-1 {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// parseLabels parses a raw label block (`k="v",k2="v2"`, values possibly
// containing \\, \", and \n escapes) into unescaped pairs. ok is false on
// any malformed input, in which case the caller should fall back to
// treating the whole registry name as an unlabeled metric name.
func parseLabels(s string) (pairs []labelPair, ok bool) {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return nil, false
		}
		key := s[:eq]
		rest := s[eq+2:]
		var val strings.Builder
		closed := false
		i := 0
		for i < len(rest) {
			switch c := rest[i]; c {
			case '\\':
				if i+1 >= len(rest) {
					return nil, false
				}
				switch rest[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, false
				}
				i += 2
			case '"':
				closed = true
				i++
			default:
				val.WriteByte(c)
				i++
			}
			if closed {
				break
			}
		}
		if !closed {
			return nil, false
		}
		pairs = append(pairs, labelPair{key, val.String()})
		s = rest[i:]
		if len(s) > 0 {
			if s[0] != ',' || len(s) == 1 {
				return nil, false
			}
			s = s[1:]
		}
	}
	return pairs, true
}

// normalizeName canonicalizes a registry name for exposition: the base is
// sanitized to the metric-name charset and label values are re-escaped.
// A name whose label block does not parse is sanitized wholesale (the
// pre-label legacy behavior, which mangles braces into underscores).
func normalizeName(name string) (base string, pairs []labelPair) {
	rawBase, rawLabels := splitLabels(name)
	if rawLabels == "" {
		return sanitizeMetricName(name), nil
	}
	pairs, ok := parseLabels(rawLabels)
	if !ok {
		return sanitizeMetricName(name), nil
	}
	return sanitizeMetricName(rawBase), pairs
}

// textSample is one exposition line's worth of snapshot, grouped by base
// metric family for TYPE/HELP emission.
type textSample struct {
	base   string
	labels string // canonical rendered block, "" when unlabeled
	value  int64
	h      *Histogram
}

func sortSamples(s []textSample) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].base != s[j].base {
			return s[i].base < s[j].base
		}
		return s[i].labels < s[j].labels
	})
}

// WriteText renders every registered metric in the Prometheus text
// exposition format, in deterministic sorted order: counters and gauges as
// single samples, histograms as a quantile summary with _sum and _count.
// Names built with Label keep their label block (values escaped per the
// format); HELP lines appear for families registered via SetHelp, with
// backslash and newline escaped.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	counters := make([]textSample, 0, len(r.counters))
	for n, c := range r.counters {
		base, pairs := normalizeName(n)
		counters = append(counters, textSample{base: base, labels: renderLabels(pairs), value: c.Value()})
	}
	gauges := make([]textSample, 0, len(r.gauges))
	for n, g := range r.gauges {
		base, pairs := normalizeName(n)
		gauges = append(gauges, textSample{base: base, labels: renderLabels(pairs), value: g.Value()})
	}
	hists := make([]textSample, 0, len(r.histograms))
	for n, h := range r.histograms {
		base, pairs := normalizeName(n)
		hists = append(hists, textSample{base: base, labels: renderLabels(pairs), h: h})
	}
	help := make(map[string]string, len(r.help))
	for base, h := range r.help {
		help[base] = h
	}
	r.mu.Unlock()

	head := func(base, kind string) error {
		if h, ok := help[base]; ok {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, escapeHelp(h)); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		return err
	}

	for _, kind := range []struct {
		name    string
		samples []textSample
	}{{"counter", counters}, {"gauge", gauges}} {
		sortSamples(kind.samples)
		prevBase := ""
		for _, e := range kind.samples {
			if e.base != prevBase {
				if err := head(e.base, kind.name); err != nil {
					return err
				}
				prevBase = e.base
			}
			if _, err := fmt.Fprintf(w, "%s%s %d\n", e.base, e.labels, e.value); err != nil {
				return err
			}
		}
	}

	sortSamples(hists)
	prevBase := ""
	for _, e := range hists {
		if e.base != prevBase {
			if err := head(e.base, "summary"); err != nil {
				return err
			}
			prevBase = e.base
		}
		for _, q := range []struct {
			label string
			q     float64
		}{{"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}} {
			if _, err := fmt.Fprintf(w, "%s%s %g\n", e.base, withQuantile(e.labels, q.label), e.h.Quantile(q.q)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %g\n%s_count%s %d\n",
			e.base, e.labels, e.h.Sum(), e.base, e.labels, e.h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// withQuantile merges a quantile label into an already-rendered label
// block: ("", "0.5") → `{quantile="0.5"}`; (`{site="s0"}`, "0.5") →
// `{site="s0",quantile="0.5"}`.
func withQuantile(labels, q string) string {
	if labels == "" {
		return `{quantile="` + q + `"}`
	}
	return labels[:len(labels)-1] + `,quantile="` + q + `"}`
}
