package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("reset failed")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("value = %d, want 8000", c.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram not zero-valued")
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 15 || h.Mean() != 3 {
		t.Fatalf("count=%d sum=%v mean=%v", h.Count(), h.Sum(), h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	// Interpolated quantile.
	if got := h.Quantile(0.25); got != 2 {
		t.Fatalf("p25 = %v", got)
	}
}

func TestHistogramObserveAfterQuantile(t *testing.T) {
	h := NewHistogram()
	h.Observe(10)
	_ = h.Quantile(0.5) // sorts
	h.Observe(1)        // must invalidate sort
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("min after late observe = %v", got)
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram()
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Observe(v)
		}
		last := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := h.Quantile(q)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestObserveDuration(t *testing.T) {
	h := NewHistogram()
	h.ObserveDuration(1500 * time.Microsecond)
	if got := h.Mean(); got != 1.5 {
		t.Fatalf("mean = %v ms, want 1.5", got)
	}
}

func TestSnapshotAndString(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 100 || s.P50 != 50.5 || s.Max != 100 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.String() == "" {
		t.Fatalf("empty string rendering")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(5)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("reset incomplete")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Add(2)
	if r.Counter("a").Value() != 2 {
		t.Fatalf("counter identity not stable")
	}
	r.Histogram("h").Observe(1)
	names := r.CounterNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	if h := r.HistogramNames(); len(h) != 1 || h[0] != "h" {
		t.Fatalf("hist names = %v", h)
	}
	// Reset zeroes but keeps registrations and pointer identity.
	c := r.Counter("a")
	r.Reset()
	if c.Value() != 0 || r.Counter("a") != c {
		t.Fatalf("reset broke identity")
	}
}
