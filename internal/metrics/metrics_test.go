package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("reset failed")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("value = %d, want 8000", c.Value())
	}
}

func TestCounterRejectsNegativeDelta(t *testing.T) {
	var c Counter
	defer func() {
		if recover() == nil {
			t.Fatalf("Add(-1) did not panic; counters must be monotonic")
		}
	}()
	c.Add(-1)
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Inc()
	g.Inc()
	g.Dec()
	if g.Value() != 1 {
		t.Fatalf("value = %d, want 1", g.Value())
	}
	g.Add(-5)
	if g.Value() != -4 {
		t.Fatalf("value = %d, want -4", g.Value())
	}
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("value = %d, want 7", g.Value())
	}
	g.Reset()
	if g.Value() != 0 {
		t.Fatalf("reset failed")
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if g.Value() != 0 {
		t.Fatalf("value = %d, want 0", g.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram not zero-valued")
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 15 || h.Mean() != 3 {
		t.Fatalf("count=%d sum=%v mean=%v", h.Count(), h.Sum(), h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	// Interpolated quantile.
	if got := h.Quantile(0.25); got != 2 {
		t.Fatalf("p25 = %v", got)
	}
}

func TestHistogramObserveAfterQuantile(t *testing.T) {
	h := NewHistogram()
	h.Observe(10)
	_ = h.Quantile(0.5) // sorts
	h.Observe(1)        // must invalidate sort
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("min after late observe = %v", got)
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram()
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Observe(v)
		}
		last := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := h.Quantile(q)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestObserveDuration(t *testing.T) {
	h := NewHistogram()
	h.ObserveDuration(1500 * time.Microsecond)
	if got := h.Mean(); got != 1.5 {
		t.Fatalf("mean = %v ms, want 1.5", got)
	}
}

func TestSnapshotAndString(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 100 || s.P50 != 50.5 || s.Max != 100 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.String() == "" {
		t.Fatalf("empty string rendering")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(5)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("reset incomplete")
	}
}

func TestReservoirHistogramBoundsMemory(t *testing.T) {
	h := NewReservoirHistogram(128, 1)
	for i := 1; i <= 100000; i++ {
		h.Observe(float64(i))
	}
	h.mu.Lock()
	retained := len(h.samples)
	h.mu.Unlock()
	if retained != 128 {
		t.Fatalf("retained %d samples, want 128", retained)
	}
	// Count/Sum/Mean are exact regardless of the reservoir.
	if h.Count() != 100000 {
		t.Fatalf("count = %d, want 100000", h.Count())
	}
	wantSum := float64(100000) * float64(100001) / 2
	if h.Sum() != wantSum {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	if h.Mean() != wantSum/100000 {
		t.Fatalf("mean = %v", h.Mean())
	}
	// Quantiles are approximate but must stay inside the observed range
	// and roughly near the true value for a uniform stream.
	p50 := h.Quantile(0.5)
	if p50 < 1 || p50 > 100000 {
		t.Fatalf("p50 = %v out of range", p50)
	}
	if p50 < 20000 || p50 > 80000 {
		t.Fatalf("p50 = %v implausibly far from 50000 for a uniform stream", p50)
	}
}

func TestReservoirHistogramDeterministic(t *testing.T) {
	a := NewReservoirHistogram(64, 42)
	b := NewReservoirHistogram(64, 42)
	for i := 0; i < 10000; i++ {
		v := float64(i % 977)
		a.Observe(v)
		b.Observe(v)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("q=%v: %v != %v; same seed must give the same reservoir", q, a.Quantile(q), b.Quantile(q))
		}
	}
}

func TestReservoirHistogramBelowCapIsExact(t *testing.T) {
	h := NewReservoirHistogram(1000, 3)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	if h.Quantile(0.5) != 3 || h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("below-cap reservoir not exact: p50=%v min=%v max=%v",
			h.Quantile(0.5), h.Min(), h.Max())
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Add(2)
	if r.Counter("a").Value() != 2 {
		t.Fatalf("counter identity not stable")
	}
	r.Histogram("h").Observe(1)
	names := r.CounterNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	if h := r.HistogramNames(); len(h) != 1 || h[0] != "h" {
		t.Fatalf("hist names = %v", h)
	}
	// Reset zeroes but keeps registrations and pointer identity.
	c := r.Counter("a")
	r.Reset()
	if c.Value() != 0 || r.Counter("a") != c {
		t.Fatalf("reset broke identity")
	}
}

func TestRegistryGauges(t *testing.T) {
	r := NewRegistry()
	r.Gauge("inflight").Inc()
	r.Gauge("inflight").Inc()
	if r.Gauge("inflight").Value() != 2 {
		t.Fatalf("gauge identity not stable")
	}
	r.Gauge("depth").Set(-3)
	if names := r.GaugeNames(); len(names) != 2 || names[0] != "depth" || names[1] != "inflight" {
		t.Fatalf("gauge names = %v", names)
	}
	g := r.Gauge("inflight")
	r.Reset()
	if g.Value() != 0 || r.Gauge("inflight") != g {
		t.Fatalf("reset broke gauge identity")
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("txn.commits").Add(12)
	r.Counter("txn.aborts").Inc()
	r.Gauge("txn.in-flight").Set(3)
	h := r.Histogram("latency ms")
	h.Observe(2.5)
	h.Observe(2.5)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE txn_aborts counter
txn_aborts 1
# TYPE txn_commits counter
txn_commits 12
# TYPE txn_in_flight gauge
txn_in_flight 3
# TYPE latency_ms summary
latency_ms{quantile="0.5"} 2.5
latency_ms{quantile="0.9"} 2.5
latency_ms{quantile="0.99"} 2.5
latency_ms_sum 5
latency_ms_count 2
`
	if got := sb.String(); got != want {
		t.Fatalf("WriteText mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// Determinism: a second render is byte-identical.
	var sb2 strings.Builder
	if err := r.WriteText(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Fatalf("WriteText not deterministic")
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"plain":        "plain",
		"a.b-c d":      "a_b_c_d",
		"9lead":        "_lead",
		"ok_name:sub9": "ok_name:sub9",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
