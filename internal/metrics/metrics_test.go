package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("reset failed")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("value = %d, want 8000", c.Value())
	}
}

func TestCounterRejectsNegativeDelta(t *testing.T) {
	var c Counter
	defer func() {
		if recover() == nil {
			t.Fatalf("Add(-1) did not panic; counters must be monotonic")
		}
	}()
	c.Add(-1)
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Inc()
	g.Inc()
	g.Dec()
	if g.Value() != 1 {
		t.Fatalf("value = %d, want 1", g.Value())
	}
	g.Add(-5)
	if g.Value() != -4 {
		t.Fatalf("value = %d, want -4", g.Value())
	}
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("value = %d, want 7", g.Value())
	}
	g.Reset()
	if g.Value() != 0 {
		t.Fatalf("reset failed")
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if g.Value() != 0 {
		t.Fatalf("value = %d, want 0", g.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram not zero-valued")
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 15 || h.Mean() != 3 {
		t.Fatalf("count=%d sum=%v mean=%v", h.Count(), h.Sum(), h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	// Interpolated quantile.
	if got := h.Quantile(0.25); got != 2 {
		t.Fatalf("p25 = %v", got)
	}
}

func TestHistogramObserveAfterQuantile(t *testing.T) {
	h := NewHistogram()
	h.Observe(10)
	_ = h.Quantile(0.5) // sorts
	h.Observe(1)        // must invalidate sort
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("min after late observe = %v", got)
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram()
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Observe(v)
		}
		last := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := h.Quantile(q)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestObserveDuration(t *testing.T) {
	h := NewHistogram()
	h.ObserveDuration(1500 * time.Microsecond)
	if got := h.Mean(); got != 1.5 {
		t.Fatalf("mean = %v ms, want 1.5", got)
	}
}

func TestSnapshotAndString(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 100 || s.P50 != 50.5 || s.Max != 100 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.String() == "" {
		t.Fatalf("empty string rendering")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(5)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("reset incomplete")
	}
}

func TestReservoirHistogramBoundsMemory(t *testing.T) {
	h := NewReservoirHistogram(128, 1)
	for i := 1; i <= 100000; i++ {
		h.Observe(float64(i))
	}
	h.mu.Lock()
	retained := len(h.samples)
	h.mu.Unlock()
	if retained != 128 {
		t.Fatalf("retained %d samples, want 128", retained)
	}
	// Count/Sum/Mean are exact regardless of the reservoir.
	if h.Count() != 100000 {
		t.Fatalf("count = %d, want 100000", h.Count())
	}
	wantSum := float64(100000) * float64(100001) / 2
	if h.Sum() != wantSum {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	if h.Mean() != wantSum/100000 {
		t.Fatalf("mean = %v", h.Mean())
	}
	// Quantiles are approximate but must stay inside the observed range
	// and roughly near the true value for a uniform stream.
	p50 := h.Quantile(0.5)
	if p50 < 1 || p50 > 100000 {
		t.Fatalf("p50 = %v out of range", p50)
	}
	if p50 < 20000 || p50 > 80000 {
		t.Fatalf("p50 = %v implausibly far from 50000 for a uniform stream", p50)
	}
}

func TestReservoirHistogramDeterministic(t *testing.T) {
	a := NewReservoirHistogram(64, 42)
	b := NewReservoirHistogram(64, 42)
	for i := 0; i < 10000; i++ {
		v := float64(i % 977)
		a.Observe(v)
		b.Observe(v)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("q=%v: %v != %v; same seed must give the same reservoir", q, a.Quantile(q), b.Quantile(q))
		}
	}
}

func TestReservoirHistogramBelowCapIsExact(t *testing.T) {
	h := NewReservoirHistogram(1000, 3)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	if h.Quantile(0.5) != 3 || h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("below-cap reservoir not exact: p50=%v min=%v max=%v",
			h.Quantile(0.5), h.Min(), h.Max())
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Add(2)
	if r.Counter("a").Value() != 2 {
		t.Fatalf("counter identity not stable")
	}
	r.Histogram("h").Observe(1)
	names := r.CounterNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	if h := r.HistogramNames(); len(h) != 1 || h[0] != "h" {
		t.Fatalf("hist names = %v", h)
	}
	// Reset zeroes but keeps registrations and pointer identity.
	c := r.Counter("a")
	r.Reset()
	if c.Value() != 0 || r.Counter("a") != c {
		t.Fatalf("reset broke identity")
	}
}

func TestRegistryGauges(t *testing.T) {
	r := NewRegistry()
	r.Gauge("inflight").Inc()
	r.Gauge("inflight").Inc()
	if r.Gauge("inflight").Value() != 2 {
		t.Fatalf("gauge identity not stable")
	}
	r.Gauge("depth").Set(-3)
	if names := r.GaugeNames(); len(names) != 2 || names[0] != "depth" || names[1] != "inflight" {
		t.Fatalf("gauge names = %v", names)
	}
	g := r.Gauge("inflight")
	r.Reset()
	if g.Value() != 0 || r.Gauge("inflight") != g {
		t.Fatalf("reset broke gauge identity")
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("txn.commits").Add(12)
	r.Counter("txn.aborts").Inc()
	r.Gauge("txn.in-flight").Set(3)
	h := r.Histogram("latency ms")
	h.Observe(2.5)
	h.Observe(2.5)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE txn_aborts counter
txn_aborts 1
# TYPE txn_commits counter
txn_commits 12
# TYPE txn_in_flight gauge
txn_in_flight 3
# TYPE latency_ms summary
latency_ms{quantile="0.5"} 2.5
latency_ms{quantile="0.9"} 2.5
latency_ms{quantile="0.99"} 2.5
latency_ms_sum 5
latency_ms_count 2
`
	if got := sb.String(); got != want {
		t.Fatalf("WriteText mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// Determinism: a second render is byte-identical.
	var sb2 strings.Builder
	if err := r.WriteText(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Fatalf("WriteText not deterministic")
	}
}

func TestLabelRendersEscapedBlock(t *testing.T) {
	cases := []struct {
		base  string
		pairs []string
		want  string
	}{
		{"rtt_ms", []string{"site", "s0"}, `rtt_ms{site="s0"}`},
		{"rtt_ms", []string{"site", "s0", "outcome", "commit"}, `rtt_ms{site="s0",outcome="commit"}`},
		{"m", []string{"k", `a"b`}, `m{k="a\"b"}`},
		{"m", []string{"k", `a\b`}, `m{k="a\\b"}`},
		{"m", []string{"k", "a\nb"}, `m{k="a\nb"}`},
		{"m", nil, "m"},
	}
	for _, c := range cases {
		if got := Label(c.base, c.pairs...); got != c.want {
			t.Errorf("Label(%q, %v) = %q, want %q", c.base, c.pairs, got, c.want)
		}
	}
}

func TestLabelOddPairsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Label with odd pairs did not panic")
		}
	}()
	Label("m", "k")
}

func TestWriteTextLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("req_total", "site", "s1")).Add(2)
	r.Counter(Label("req_total", "site", "s0")).Add(5)
	r.Counter(Label("req_total", "site", `we"ird\sí`+"\n")).Inc()
	h := r.Histogram(Label("rtt_ms", "site", "s0"))
	h.Observe(4)
	r.SetHelp("req_total", "requests per site")
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP req_total requests per site
# TYPE req_total counter
req_total{site="s0"} 5
req_total{site="s1"} 2
req_total{site="we\"ird\\sí\n"} 1
# TYPE rtt_ms summary
rtt_ms{site="s0",quantile="0.5"} 4
rtt_ms{site="s0",quantile="0.9"} 4
rtt_ms{site="s0",quantile="0.99"} 4
rtt_ms_sum{site="s0"} 4
rtt_ms_count{site="s0"} 1
`
	if got := sb.String(); got != want {
		t.Fatalf("WriteText mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteTextHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.SetHelp("c", "line one\nback\\slash")
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# HELP c line one\\nback\\\\slash\n# TYPE c counter\nc 1\n"
	if got := sb.String(); got != want {
		t.Fatalf("help escaping:\ngot:  %q\nwant: %q", got, want)
	}
}

func TestWriteTextMalformedLabelBlockFallsBack(t *testing.T) {
	// A brace-bearing name whose block does not parse as k="v" pairs is
	// sanitized wholesale, the pre-label behavior.
	r := NewRegistry()
	r.Counter(`m{oops}`).Inc()
	r.Counter(`m{k="bad\qescape"}`).Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"m_oops_ 1", "m_k__bad_qescape__ 1"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("fallback sample %q missing from:\n%s", want, sb.String())
		}
	}
}

func TestParseLabelsRoundTrip(t *testing.T) {
	raw := `site="s0",k="a\"b\\c\nd"`
	pairs, ok := parseLabels(raw)
	if !ok {
		t.Fatalf("parseLabels(%q) failed", raw)
	}
	if len(pairs) != 2 || pairs[0] != (labelPair{"site", "s0"}) || pairs[1] != (labelPair{"k", "a\"b\\c\nd"}) {
		t.Fatalf("pairs = %+v", pairs)
	}
	if got := renderLabels(pairs); got != "{"+raw+"}" {
		t.Fatalf("round trip = %q, want %q", got, "{"+raw+"}")
	}
	for _, bad := range []string{`k`, `k=`, `k="v`, `k="v",`, `k="a\zb"`, `="v"`} {
		if _, ok := parseLabels(bad); ok {
			t.Errorf("parseLabels(%q) accepted malformed input", bad)
		}
	}
}

// TestWriteTextConcurrentWithObserve races live scrapes against observers
// on every instrument kind; run under -race this pins that a scrape while
// the cluster is hot is safe.
func TestWriteTextConcurrentWithObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(Label("ops_total", "site", "s0"))
	g := r.Gauge("inflight")
	h := r.Histogram(Label("rtt_ms", "site", "s0"))
	r.SetHelp("rtt_ms", "round trip")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Add(int64(i - 2))
				h.Observe(float64(j % 17))
				// New series appearing mid-scrape must also be safe.
				r.Counter(Label("late_total", "w", string(rune('a'+i)))).Inc()
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), `ops_total{site="s0"}`) {
			t.Fatalf("scrape missing series:\n%s", sb.String())
		}
	}
	close(stop)
	wg.Wait()
}

// TestHistogramQuantilePins pins arbitrary-p interpolation behavior the
// loadgen live table relies on.
func TestHistogramQuantilePins(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i))
	}
	cases := map[float64]float64{
		0:    1,
		0.5:  5.5,
		0.75: 7.75,
		0.9:  9.1,
		0.99: 9.91,
		1:    10,
	}
	for q, want := range cases {
		if got := h.Quantile(q); math.Abs(got-want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"plain":        "plain",
		"a.b-c d":      "a_b_c_d",
		"9lead":        "_lead",
		"ok_name:sub9": "ok_name:sub9",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
