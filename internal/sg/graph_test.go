package sg

import (
	"testing"

	"o2pc/internal/history"
	"o2pc/internal/storage"
)

// hb (history builder) assembles synthetic histories for theory tests.
type hb struct {
	r *history.Recorder
}

func newHB() *hb { return &hb{r: history.NewRecorder()} }

func (b *hb) global(ids ...string) *hb {
	for _, id := range ids {
		b.r.Declare(id, history.KindGlobal, "")
	}
	return b
}

func (b *hb) comp(id, fwd string) *hb {
	b.r.Declare(id, history.KindCompensating, fwd)
	b.r.SetFate(id, history.FateCommitted)
	return b
}

func (b *hb) localTxn(ids ...string) *hb {
	for _, id := range ids {
		b.r.Declare(id, history.KindLocal, "")
		b.r.SetFate(id, history.FateCommitted)
	}
	return b
}

func (b *hb) commit(ids ...string) *hb {
	for _, id := range ids {
		b.r.SetFate(id, history.FateCommitted)
	}
	return b
}

func (b *hb) abort(ids ...string) *hb {
	for _, id := range ids {
		b.r.SetFate(id, history.FateAborted)
	}
	return b
}

func (b *hb) w(site, txn, key string) *hb {
	b.r.Record(site, txn, history.OpWrite, storage.Key(key), "")
	return b
}

func (b *hb) rd(site, txn, key, from string) *hb {
	b.r.Record(site, txn, history.OpRead, storage.Key(key), from)
	return b
}

func (b *hb) h() *history.History { return b.r.Snapshot() }

func TestBuildLocalConflictEdges(t *testing.T) {
	h := newHB().global("T1", "T2").commit("T1", "T2").
		w("s0", "T1", "x").
		rd("s0", "T2", "x", "T1").
		h()
	g := BuildLocal(h, "s0")
	if !g.HasEdge("T1", "T2") {
		t.Fatalf("missing w-r conflict edge:\n%s", g)
	}
	if g.HasEdge("T2", "T1") {
		t.Fatalf("reverse edge present")
	}
}

func TestBuildLocalExcludesUncommittedLocals(t *testing.T) {
	b := newHB().global("T1").commit("T1")
	b.r.Declare("L1", history.KindLocal, "") // no fate: not committed
	b.w("s0", "L1", "x").w("s0", "T1", "x")
	g := BuildLocal(b.h(), "s0")
	if _, ok := g.Nodes["L1"]; ok {
		t.Fatalf("uncommitted local in SG")
	}
	if _, ok := g.Nodes["T1"]; !ok {
		t.Fatalf("global txn missing from SG")
	}
}

func TestBuildLocalIncludesAbortedGlobals(t *testing.T) {
	// Aborted global transactions and their CTs are SG nodes — the whole
	// point of the extended model.
	h := newHB().global("T1").abort("T1").
		comp("CT1", "T1").
		w("s0", "T1", "x").w("s0", "CT1", "x").
		h()
	g := BuildLocal(h, "s0")
	if !g.HasEdge("T1", "CT1") {
		t.Fatalf("T1 -> CT1 edge missing:\n%s", g)
	}
}

func TestReachesWithAvoid(t *testing.T) {
	g := NewGraph()
	for _, n := range []string{"A", "B", "C"} {
		g.AddNode(n, history.KindGlobal)
	}
	g.AddEdge("A", "B")
	g.AddEdge("B", "C")
	if !g.Reaches("A", "C") {
		t.Fatalf("A should reach C")
	}
	if g.Reaches("A", "C", "B") {
		t.Fatalf("A reaches C while avoiding the only path through B")
	}
	// Add a bypass and retry.
	g.AddEdge("A", "C")
	if !g.Reaches("A", "C", "B") {
		t.Fatalf("direct edge should survive avoidance")
	}
	if g.Reaches("C", "A") {
		t.Fatalf("reverse reachability invented")
	}
}

func TestReachesRequiresRealPath(t *testing.T) {
	g := NewGraph()
	g.AddNode("A", history.KindGlobal)
	if g.Reaches("A", "A") {
		t.Fatalf("trivial self-reachability without a cycle")
	}
	g.AddNode("B", history.KindGlobal)
	g.AddEdge("A", "B")
	g.AddEdge("B", "A")
	if !g.Reaches("A", "A") {
		t.Fatalf("cycle self-reachability missed")
	}
}

func TestPathBetween(t *testing.T) {
	g := NewGraph()
	g.AddNode("A", history.KindGlobal)
	g.AddNode("B", history.KindGlobal)
	g.AddEdge("B", "A")
	if !g.PathBetween("A", "B") {
		t.Fatalf("either-direction path missed")
	}
}

func TestHasCycleWitness(t *testing.T) {
	g := NewGraph()
	for _, n := range []string{"A", "B", "C", "D"} {
		g.AddNode(n, history.KindGlobal)
	}
	g.AddEdge("A", "B")
	g.AddEdge("B", "C")
	g.AddEdge("C", "A")
	g.AddEdge("C", "D")
	cyc, has := g.HasCycle()
	if !has {
		t.Fatalf("cycle missed")
	}
	if len(cyc) != 3 {
		t.Fatalf("witness = %v", cyc)
	}
	seen := map[string]bool{}
	for _, n := range cyc {
		seen[n] = true
	}
	if !seen["A"] || !seen["B"] || !seen["C"] || seen["D"] {
		t.Fatalf("witness = %v, want {A,B,C}", cyc)
	}
}

func TestHasCycleAcyclic(t *testing.T) {
	g := NewGraph()
	for _, n := range []string{"A", "B", "C"} {
		g.AddNode(n, history.KindGlobal)
	}
	g.AddEdge("A", "B")
	g.AddEdge("A", "C")
	g.AddEdge("B", "C")
	if _, has := g.HasCycle(); has {
		t.Fatalf("phantom cycle in DAG")
	}
}

func TestSelfEdgeIgnored(t *testing.T) {
	g := NewGraph()
	g.AddNode("A", history.KindGlobal)
	g.AddEdge("A", "A")
	if _, has := g.HasCycle(); has {
		t.Fatalf("self-edge must be ignored (same-transaction ops don't conflict)")
	}
}

func TestBuildGlobalUnionsSites(t *testing.T) {
	h := newHB().global("T1", "T2").commit("T1", "T2").
		w("s0", "T1", "x").rd("s0", "T2", "x", "T1"). // T1 -> T2 at s0
		w("s1", "T2", "y").rd("s1", "T1", "y", "T2"). // T2 -> T1 at s1
		h()
	global, locals := BuildGlobal(h)
	if len(locals) != 2 {
		t.Fatalf("locals = %d", len(locals))
	}
	if !global.HasEdge("T1", "T2") || !global.HasEdge("T2", "T1") {
		t.Fatalf("global union missing edges:\n%s", global)
	}
	if _, has := global.HasCycle(); !has {
		t.Fatalf("global cycle missed (this is the classic non-serializable execution)")
	}
	// Each local SG alone is acyclic.
	if cycles := LocalCycles(h); len(cycles) != 0 {
		t.Fatalf("local cycles = %v", cycles)
	}
}

func TestLocalCyclesDetected(t *testing.T) {
	h := newHB().global("T1", "T2").commit("T1", "T2").
		w("s0", "T1", "x").w("s0", "T2", "x"). // T1 -> T2
		w("s0", "T2", "y").w("s0", "T1", "y"). // T2 -> T1, same site
		h()
	cycles := LocalCycles(h)
	if len(cycles) != 1 || len(cycles["s0"]) == 0 {
		t.Fatalf("cycles = %v", cycles)
	}
}
