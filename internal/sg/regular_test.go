package sg

import (
	"testing"

	"o2pc/internal/history"
)

// TestPaperExample1 reproduces Example 1 of Section 5 exactly:
//
//	CT1 -> T2        in SG1
//	CT1 -> T2 -> CT3 in SG2
//	CT3 -> CT1       in SG3
//
// The global path CT1 -> CT3 has two representations; the minimal one is
// the single segment {CT1 -> CT3 in SG2}, so the path "does not include
// T2". Consequently the global cycle CT1 -> CT3 -> CT1 consists only of
// compensating transactions and is benign; the history is correct.
func TestPaperExample1(t *testing.T) {
	b := newHB().global("T1", "T2", "T3").commit("T2").abort("T1", "T3").
		comp("CT1", "T1").comp("CT3", "T3")
	// SG1: CT1 -> T2
	b.w("s1", "CT1", "a").rd("s1", "T2", "a", "CT1")
	// SG2: CT1 -> T2 -> CT3 (a chain, giving also the path CT1 -> CT3)
	b.w("s2", "CT1", "b").rd("s2", "T2", "b", "CT1")
	b.w("s2", "T2", "c").w("s2", "CT3", "c")
	// SG3: CT3 -> CT1
	b.w("s3", "CT3", "d").w("s3", "CT1", "d")
	h := b.h()

	_, locals := BuildGlobal(h)
	hg := BuildHopGraph(h, locals)

	// The hop graph must contain the direct CT1 -> CT3 edge via s2.
	if !hg.HasHop("CT1", "CT3") {
		t.Fatalf("missing transitive hop CT1 -> CT3")
	}

	audit := AuditHistory(h, 0, 0)
	if audit.RegularCount != 0 {
		for _, c := range audit.Cycles {
			if c.Regular {
				t.Fatalf("cycle misclassified regular: junctions=%v reps=%v",
					c.Junctions, c.MinimalReps)
			}
		}
	}
	if audit.BenignCount == 0 {
		t.Fatalf("the CT1/CT3 cycle was not found at all")
	}
	// And T2 must not appear in any minimal representation of a cycle.
	for _, c := range audit.Cycles {
		for _, rep := range c.MinimalReps {
			for _, n := range rep {
				if n == "T2" {
					t.Fatalf("T2 on a minimal representation %v of cycle %v — contradicts Example 1",
						rep, c.Junctions)
				}
			}
		}
	}
	if !audit.Correct() {
		t.Fatalf("Example 1 history must satisfy the correctness criterion")
	}
}

// TestFigure1StyleRegularCycle builds the canonical regular cycle the
// marking protocols exist to prevent: T2 reads T1's exposed update at one
// site before CT1 compensates there (T2 -> CT1), and reads post-
// compensation state at another site (CT1 -> T2).
func TestFigure1StyleRegularCycle(t *testing.T) {
	b := newHB().global("T1", "T2").commit("T2").abort("T1").
		comp("CT1", "T1")
	// s0: T1 wrote, T2 read the exposed value, then CT1 compensated:
	// T1 -> T2 -> CT1.
	b.w("s0", "T1", "x").rd("s0", "T2", "x", "T1").w("s0", "CT1", "x")
	// s1: T1 wrote, was rolled back by CT1, then T2 read the restored
	// version: CT1 -> T2.
	b.w("s1", "T1", "y").w("s1", "CT1", "y").rd("s1", "T2", "y", "CT1")
	h := b.h()

	audit := AuditHistory(h, 0, 0)
	if audit.RegularCount == 0 {
		t.Fatalf("regular cycle not detected; cycles=%+v", audit.Cycles)
	}
	if audit.Correct() {
		t.Fatalf("incorrect history passed the criterion")
	}
	// T2 must be on the minimal representation.
	found := false
	for _, c := range audit.Cycles {
		if !c.Regular {
			continue
		}
		for _, rep := range c.MinimalReps {
			for _, n := range rep {
				if n == "T2" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatalf("regular cycle does not include T2: %+v", audit.Cycles)
	}
}

// TestLemma1NoRegularOnlyCycles: without compensating transactions there
// can be cycles (if 2PL were violated) but our classifier must still call
// them regular — and Lemma 1 says any *regular* cycle in a real O2PC
// execution includes a CT. Here we simply validate the classifier against
// a pure-T cycle.
func TestLemma1PureGlobalCycleIsRegular(t *testing.T) {
	b := newHB().global("T1", "T2").commit("T1", "T2")
	b.w("s0", "T1", "x").w("s0", "T2", "x") // T1 -> T2
	b.w("s1", "T2", "y").w("s1", "T1", "y") // T2 -> T1
	audit := AuditHistory(b.h(), 0, 0)
	if audit.RegularCount != 1 {
		t.Fatalf("regular count = %d", audit.RegularCount)
	}
}

func TestBenignTwoCTCycle(t *testing.T) {
	b := newHB().global("T1", "T2").abort("T1", "T2").
		comp("CT1", "T1").comp("CT2", "T2")
	b.w("s0", "CT1", "x").w("s0", "CT2", "x") // CT1 -> CT2
	b.w("s1", "CT2", "y").w("s1", "CT1", "y") // CT2 -> CT1
	audit := AuditHistory(b.h(), 0, 0)
	if audit.RegularCount != 0 || audit.BenignCount != 1 {
		t.Fatalf("regular=%d benign=%d", audit.RegularCount, audit.BenignCount)
	}
	if !audit.Correct() {
		t.Fatalf("benign CT cycle must be allowed by the criterion")
	}
}

// TestMinimalRepresentationShortcut: a 3-junction cycle through a regular
// transaction that has a 2-junction CT-only realization is benign, because
// the minimal representation drops the regular junction (the Example 1
// principle applied to a cycle).
func TestMinimalRepresentationShortcut(t *testing.T) {
	b := newHB().global("T1", "T2", "T9").commit("T2").abort("T1", "T9").
		comp("CT1", "T1").comp("CT9", "T9")
	// s0: CT1 -> T2.
	b.w("s0", "CT1", "a").rd("s0", "T2", "a", "CT1")
	// s1: CT1 -> T2 -> CT9 (chain also yields CT1 -> CT9 within s1).
	b.w("s1", "CT1", "b").rd("s1", "T2", "b", "CT1")
	b.w("s1", "T2", "c").w("s1", "CT9", "c")
	// s2: CT9 -> CT1.
	b.w("s2", "CT9", "d").w("s2", "CT1", "d")
	audit := AuditHistory(b.h(), 0, 0)
	for _, c := range audit.Cycles {
		if c.Regular {
			t.Fatalf("cycle %v classified regular; minimal reps %v",
				c.Junctions, c.MinimalReps)
		}
	}
	if audit.BenignCount == 0 {
		t.Fatalf("no cycles found")
	}
}

// TestNoShortcutKeepsRegular: same shape, but without the single-site
// CT1 -> CT9 path — the minimal representation must pass through T2, so
// the cycle is regular.
func TestNoShortcutKeepsRegular(t *testing.T) {
	b := newHB().global("T1", "T2", "T9").commit("T2").abort("T1", "T9").
		comp("CT1", "T1").comp("CT9", "T9")
	// s0: CT1 -> T2 only.
	b.w("s0", "CT1", "a").rd("s0", "T2", "a", "CT1")
	// s1: T2 -> CT9 only (no CT1 here, so no single-site shortcut).
	b.w("s1", "T2", "c").w("s1", "CT9", "c")
	// s2: CT9 -> CT1.
	b.w("s2", "CT9", "d").w("s2", "CT1", "d")
	audit := AuditHistory(b.h(), 0, 0)
	if audit.RegularCount == 0 {
		t.Fatalf("cycle through T2 with no shortcut must be regular: %+v", audit.Cycles)
	}
}

func TestEnumerateCyclesBound(t *testing.T) {
	// A clique of 4 CTs has many simple cycles; the bound must cap output.
	b := newHB()
	cts := []string{"CT1", "CT2", "CT3", "CT4"}
	for i, ct := range cts {
		b.global("T" + string(rune('1'+i)))
		b.abort("T" + string(rune('1'+i)))
		b.comp(ct, "T"+string(rune('1'+i)))
	}
	// Pairwise cycles via distinct sites.
	site := 0
	for i := range cts {
		for j := range cts {
			if i == j {
				continue
			}
			s := "s" + string(rune('0'+site%8))
			site++
			b.w(s, cts[i], "k"+s).w(s, cts[j], "k"+s)
		}
	}
	h := b.h()
	_, locals := BuildGlobal(h)
	hg := BuildHopGraph(h, locals)
	all := hg.EnumerateCycles(10, 0)
	if len(all) < 6 {
		t.Fatalf("expected many cycles, got %d", len(all))
	}
	capped := hg.EnumerateCycles(10, 3)
	if len(capped) != 3 {
		t.Fatalf("cap ignored: %d", len(capped))
	}
}

func TestSCCsPartitionGraph(t *testing.T) {
	b := newHB().global("T1", "T2").abort("T1", "T2").
		comp("CT1", "T1").comp("CT2", "T2")
	// Cycle between CT1, CT2; CT3 dangling.
	b.global("T3").abort("T3").comp("CT3", "T3")
	b.w("s0", "CT1", "x").w("s0", "CT2", "x")
	b.w("s1", "CT2", "y").w("s1", "CT1", "y")
	b.w("s0", "CT3", "z")
	h := b.h()
	_, locals := BuildGlobal(h)
	hg := BuildHopGraph(h, locals)
	comps := hg.SCCs()
	var big int
	for _, c := range comps {
		if len(c) > 1 {
			big++
			if len(c) != 2 {
				t.Fatalf("component = %v", c)
			}
		}
	}
	if big != 1 {
		t.Fatalf("non-trivial SCCs = %d, want 1", big)
	}
}

func TestAuditEmptyHistory(t *testing.T) {
	audit := AuditHistory(newHB().h(), 0, 0)
	if !audit.Correct() || len(audit.Cycles) != 0 {
		t.Fatalf("empty history audit: %+v", audit)
	}
}

func TestClassifyDegenerateCycles(t *testing.T) {
	hg := &HopGraph{
		Nodes: map[string]history.Kind{"T1": history.KindGlobal},
		Sites: map[string]map[string]map[string]bool{},
	}
	if cc := ClassifyCycle(hg, Cycle{}); cc.Regular {
		t.Fatalf("empty cycle regular")
	}
	if cc := ClassifyCycle(hg, Cycle{Junctions: []string{"T1"}}); !cc.Regular {
		t.Fatalf("single regular junction must classify regular")
	}
}
