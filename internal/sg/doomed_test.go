package sg

import "testing"

// TestDoomedReaderCycleClassification builds the residue the Section 6.2
// early-unlock compromise inherently admits: a regular cycle whose only
// regular junction is an aborted (fully rolled-back) reader. It must be
// classified Regular but not Effective, and the audit must still call the
// history correct.
func TestDoomedReaderCycleClassification(t *testing.T) {
	b := newHB().global("T1", "T2").abort("T1", "T2").
		comp("CT1", "T1").comp("CT2", "T2")
	// s0: T2 read T1's exposed value before CT1 compensated: T1 -> T2 -> CT1.
	b.w("s0", "T1", "x").rd("s0", "T2", "x", "T1").w("s0", "CT1", "x")
	// s1: T2 read the compensated value: CT1 -> T2.
	b.w("s1", "T1", "y").w("s1", "CT1", "y").rd("s1", "T2", "y", "CT1")
	// T2 itself was aborted (refused at validation) and compensated.
	b.w("s0", "CT2", "z")
	h := b.h()

	audit := AuditHistory(h, 0, 0)
	if audit.RegularCount == 0 {
		t.Fatalf("cycle not detected")
	}
	if audit.EffectiveCount != 0 {
		t.Fatalf("doomed cycle classified effective: %+v", audit.Cycles)
	}
	if audit.DoomedCount == 0 {
		t.Fatalf("doomed count = 0")
	}
	if !audit.Correct() {
		t.Fatalf("doomed-reader residue must not fail correctness")
	}
	// But the unfiltered Theorem 2 check still sees the aborted reader...
	all := CheckCompensationAtomicity(h)
	if len(all) != 1 || all[0].Reader != "T2" {
		t.Fatalf("violations = %+v", all)
	}
	// ...and the committed filter removes it.
	if got := CommittedViolations(all); len(got) != 0 {
		t.Fatalf("committed violations = %+v", got)
	}
}

// TestEffectiveCycleStillFlagged is the control: the same shape with a
// committed reader must fail correctness.
func TestEffectiveCycleStillFlagged(t *testing.T) {
	b := newHB().global("T1", "T2").commit("T2").abort("T1").comp("CT1", "T1")
	b.w("s0", "T1", "x").rd("s0", "T2", "x", "T1").w("s0", "CT1", "x")
	b.w("s1", "T1", "y").w("s1", "CT1", "y").rd("s1", "T2", "y", "CT1")
	audit := AuditHistory(b.h(), 0, 0)
	if audit.EffectiveCount == 0 {
		t.Fatalf("committed-reader cycle not flagged effective")
	}
	if audit.Correct() {
		t.Fatalf("criterion passed an effective regular cycle")
	}
	if got := CommittedViolations(CheckCompensationAtomicity(b.h())); len(got) != 1 {
		t.Fatalf("committed Theorem 2 violations = %+v", got)
	}
}
