package sg

import (
	"fmt"
	"math/rand"
	"testing"

	"o2pc/internal/history"
)

// TestActiveWrt checks the definition: Ti is active w.r.t. Tj iff some
// local SG has both, no Tj -> Ti path, and a path between CTi and Tj.
func TestActiveWrt(t *testing.T) {
	b := newHB().global("T1", "T2").commit("T2").abort("T1").comp("CT1", "T1")
	// s0: T1 -> T2 and CT1 after T2: T1 -> T2 -> CT1. Both appear, no
	// T2 -> T1, path between CT1 and T2 exists => active.
	b.w("s0", "T1", "x").rd("s0", "T2", "x", "T1")
	b.w("s0", "T2", "y").w("s0", "CT1", "y")
	s := NewStratification(b.h())
	if !s.ActiveWrt("T1", "T2") {
		t.Fatalf("T1 should be active wrt T2")
	}
	if s.ActiveWrt("T2", "T1") {
		t.Fatalf("T2 has no CT; cannot be active wrt anyone")
	}
}

func TestActiveWrtRequiresNoReversePath(t *testing.T) {
	b := newHB().global("T1", "T2").commit("T2").abort("T1").comp("CT1", "T1")
	// s0: T2 -> T1 -> CT1: the Tj -> Ti path disqualifies activity.
	b.w("s0", "T2", "x").w("s0", "T1", "x").w("s0", "CT1", "x")
	s := NewStratification(b.h())
	if s.ActiveWrt("T1", "T2") {
		t.Fatalf("T2 -> T1 present; T1 must not be active wrt T2")
	}
}

func TestPredicateA1(t *testing.T) {
	b := newHB().global("T1", "T2").commit("T2").abort("T1").comp("CT1", "T1")
	// Every SG where T2 appears has Ti -> CTi -> Tj.
	b.w("s0", "T1", "x").w("s0", "CT1", "x").rd("s0", "T2", "x", "CT1")
	b.w("s1", "T1", "y").w("s1", "CT1", "y").rd("s1", "T2", "y", "CT1")
	s := NewStratification(b.h())
	if !s.A1("T1", "T2") {
		t.Fatalf("A1 should hold")
	}
	// Break it at s2: T2 appears without the path.
	b.w("s2", "T2", "z")
	s = NewStratification(b.h())
	if s.A1("T1", "T2") {
		t.Fatalf("A1 should fail once T2 appears somewhere without Ti->CTi->Tj")
	}
}

func TestPredicateA2(t *testing.T) {
	b := newHB().global("T1", "T2").commit("T2").abort("T1").comp("CT1", "T1")
	// T2 -> CT1 without T1 on the path, at the only site T2 appears.
	b.w("s0", "T2", "x").w("s0", "CT1", "x")
	s := NewStratification(b.h())
	if !s.A2("T1", "T2") {
		t.Fatalf("A2 should hold")
	}
	// If the only path runs through T1, A2 fails.
	b2 := newHB().global("T1", "T2").commit("T2").abort("T1").comp("CT1", "T1")
	b2.w("s0", "T2", "x").w("s0", "T1", "x")
	b2.w("s0", "T1", "y").w("s0", "CT1", "y")
	s2 := NewStratification(b2.h())
	if s2.A2("T1", "T2") {
		t.Fatalf("A2 must fail when the path to CT1 runs through T1")
	}
}

func TestPredicateA3VacuousWithoutConnection(t *testing.T) {
	b := newHB().global("T1", "T2").commit("T2").abort("T1").comp("CT1", "T1")
	// Both appear at s0 but are not connected.
	b.w("s0", "T1", "x")
	b.w("s0", "T2", "y")
	s := NewStratification(b.h())
	if !s.A3("T1", "T2") {
		t.Fatalf("A3 should hold vacuously with no connecting path")
	}
}

func TestPredicateA4(t *testing.T) {
	b := newHB().global("T1", "T2").commit("T2").abort("T1").comp("CT1", "T1")
	// s0: T1 appears; T2 -> CT1 avoiding T1.
	b.w("s0", "T1", "w")
	b.w("s0", "T2", "x").w("s0", "CT1", "x")
	s := NewStratification(b.h())
	if !s.A4("T1", "T2") {
		t.Fatalf("A4 should hold")
	}
	// Reverse direction CT1 -> T2 violates A4.
	b2 := newHB().global("T1", "T2").commit("T2").abort("T1").comp("CT1", "T1")
	b2.w("s0", "T1", "w")
	b2.w("s0", "CT1", "x").rd("s0", "T2", "x", "CT1")
	s2 := NewStratification(b2.h())
	if s2.A4("T1", "T2") {
		t.Fatalf("A4 must fail when CT1 -> T2")
	}
}

// TestTheorem1OnFigure1Cycle: the regular-cycle history must violate both
// stratification properties (contrapositive of Theorem 1).
func TestTheorem1OnFigure1Cycle(t *testing.T) {
	b := newHB().global("T1", "T2").commit("T2").abort("T1").comp("CT1", "T1")
	b.w("s0", "T1", "x").rd("s0", "T2", "x", "T1").w("s0", "CT1", "x")
	b.w("s1", "T1", "y").w("s1", "CT1", "y").rd("s1", "T2", "y", "CT1")
	h := b.h()

	audit := AuditHistory(h, 0, 0)
	if audit.RegularCount == 0 {
		t.Fatalf("precondition failed: no regular cycle")
	}
	s := NewStratification(h)
	if len(s.CheckS1()) == 0 {
		t.Fatalf("S1 holds despite a regular cycle — contradicts Theorem 1")
	}
	if len(s.CheckS2()) == 0 {
		t.Fatalf("S2 holds despite a regular cycle — contradicts Theorem 1")
	}
}

// TestTheorem1Randomized is the executable form of Theorem 1: over many
// random histories, whenever S1 or S2 holds, the global SG has no regular
// cycles.
func TestTheorem1Randomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1991))
	checked, s1Held, s2Held, withRegular := 0, 0, 0, 0
	for trial := 0; trial < 2000; trial++ {
		h := randomHistory(rng)
		audit := AuditHistory(h, 0, 0)
		s := NewStratification(h)
		s1 := len(s.CheckS1()) == 0
		s2 := len(s.CheckS2()) == 0
		if s1 || s2 {
			checked++
			if s1 {
				s1Held++
			}
			if s2 {
				s2Held++
			}
			if audit.RegularCount != 0 {
				t.Fatalf("trial %d: S1=%v S2=%v but regular cycles=%d\ncycles=%+v",
					trial, s1, s2, audit.RegularCount, audit.Cycles)
			}
		}
		if audit.RegularCount > 0 {
			withRegular++
			// Contrapositive: a regular cycle must falsify both
			// stratification properties.
			if s1 || s2 {
				t.Fatalf("trial %d: regular cycle with S1=%v S2=%v", trial, s1, s2)
			}
		}
	}
	if checked < 200 {
		t.Fatalf("too few trials satisfied a stratification property (%d)", checked)
	}
	if withRegular < 10 {
		t.Fatalf("generator produced too few regular cycles (%d) — test is near-vacuous", withRegular)
	}
	t.Logf("verified Theorem 1 on %d histories (S1 held %d, S2 held %d, %d regular-cycle histories)",
		checked, s1Held, s2Held, withRegular)
}

// randomHistory builds a small random multi-site history under the
// paper's ambient assumptions: per-site executions are serial at the
// subtransaction level (what strict local 2PL produces), forward (regular)
// transactions follow global 2PL (their per-site block orders agree with
// one global order — Lemma 1's precondition), and each compensating
// transaction's block appears at an arbitrary per-site position strictly
// after its forward transaction's block. That last freedom — uncoordinated
// compensation placement across sites — is exactly where regular cycles
// come from. Reads record faithful reads-from edges.
func randomHistory(rng *rand.Rand) *history.History {
	b := newHB()
	nTxns := 2 + rng.Intn(3)
	nSites := 2 + rng.Intn(2)
	nKeys := 2 + rng.Intn(3)

	var tids []string
	aborted := make(map[string]bool)
	for i := 0; i < nTxns; i++ {
		id := fmt.Sprintf("T%d", i+1)
		tids = append(tids, id)
		b.global(id)
		if rng.Intn(3) == 0 {
			b.abort(id)
			b.comp("CT"+id, id)
			aborted[id] = true
		} else {
			b.commit(id)
		}
	}

	type op struct {
		key   string
		write bool
	}
	type block struct {
		txn string
		ops []op
	}
	for si := 0; si < nSites; si++ {
		site := fmt.Sprintf("s%d", si)
		// Forward blocks in global priority order at every site.
		var blocks []block
		for _, id := range tids {
			if rng.Intn(2) == 0 {
				continue // this transaction skips this site
			}
			var ops []op
			for j := 0; j < 1+rng.Intn(2); j++ {
				ops = append(ops, op{
					key:   fmt.Sprintf("k%d", rng.Intn(nKeys)),
					write: rng.Intn(2) == 0,
				})
			}
			blocks = append(blocks, block{txn: id, ops: ops})
		}
		// Insert each CT block at a random position strictly after its
		// forward block; the CT writes every key its forward wrote here.
		for bi := 0; bi < len(blocks); bi++ {
			id := blocks[bi].txn
			if !aborted[id] || len(id) > 2 && id[:2] == "CT" {
				continue
			}
			var ctOps []op
			for _, o := range blocks[bi].ops {
				if o.write {
					ctOps = append(ctOps, op{key: o.key, write: true})
				}
			}
			if len(ctOps) == 0 {
				continue
			}
			pos := bi + 1 + rng.Intn(len(blocks)-bi)
			ct := block{txn: "CT" + id, ops: ctOps}
			blocks = append(blocks, block{})
			copy(blocks[pos+1:], blocks[pos:])
			blocks[pos] = ct
		}
		// Emit serially with faithful reads-from.
		lastWriter := make(map[string]string)
		for _, blk := range blocks {
			if blk.txn == "" {
				continue
			}
			for _, o := range blk.ops {
				if o.write {
					b.w(site, blk.txn, o.key)
					lastWriter[o.key] = blk.txn
				} else {
					b.rd(site, blk.txn, o.key, lastWriter[o.key])
				}
			}
		}
	}
	return b.h()
}

// TestTheorem2Violation validates CheckCompensationAtomicity: a reader that
// observes both Ti's and CTi's versions is reported.
func TestTheorem2Violation(t *testing.T) {
	b := newHB().global("T1", "T2").commit("T2").abort("T1").comp("CT1", "T1")
	b.w("s0", "T1", "x").rd("s0", "T2", "x", "T1")
	b.w("s1", "T1", "y").w("s1", "CT1", "y").rd("s1", "T2", "y", "CT1")
	v := CheckCompensationAtomicity(b.h())
	if len(v) != 1 || v[0].Reader != "T2" || v[0].Forward != "T1" || v[0].Comp != "CT1" {
		t.Fatalf("violations = %+v", v)
	}
}

func TestTheorem2CleanHistory(t *testing.T) {
	b := newHB().global("T1", "T2").commit("T2").abort("T1").comp("CT1", "T1")
	b.w("s0", "T1", "x").w("s0", "CT1", "x").rd("s0", "T2", "x", "CT1")
	b.w("s1", "T1", "y").w("s1", "CT1", "y").rd("s1", "T2", "y", "CT1")
	if v := CheckCompensationAtomicity(b.h()); len(v) != 0 {
		t.Fatalf("violations = %+v", v)
	}
}

// TestTheorem2FollowsFromCorrectness is the executable form of Theorem 2:
// in random histories where the criterion holds (and CTs cover the forward
// write set, which randomHistory guarantees by writing the same keys), no
// transaction reads from both Ti and CTi.
func TestTheorem2FollowsFromCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	verified := 0
	for trial := 0; trial < 400; trial++ {
		h := randomHistory(rng)
		audit := AuditHistory(h, 0, 0)
		if !audit.Correct() {
			continue
		}
		verified++
		if v := CheckCompensationAtomicity(h); len(v) != 0 {
			t.Fatalf("trial %d: correct history with compensation-atomicity violation %+v", trial, v)
		}
	}
	if verified < 50 {
		t.Fatalf("too few correct histories (%d)", verified)
	}
	t.Logf("verified Theorem 2 on %d correct histories", verified)
}

func TestSerializableWithoutAborts(t *testing.T) {
	// Clean committed history: checked and acyclic.
	b := newHB().global("T1", "T2").commit("T1", "T2")
	b.w("s0", "T1", "x").rd("s0", "T2", "x", "T1")
	cyc, checked := SerializableWithoutAborts(b.h())
	if !checked || cyc != nil {
		t.Fatalf("checked=%v cyc=%v", checked, cyc)
	}
	// Cyclic committed history: witness returned.
	b2 := newHB().global("T1", "T2").commit("T1", "T2")
	b2.w("s0", "T1", "x").w("s0", "T2", "x")
	b2.w("s1", "T2", "y").w("s1", "T1", "y")
	cyc, checked = SerializableWithoutAborts(b2.h())
	if !checked || cyc == nil {
		t.Fatalf("cycle not reported: checked=%v", checked)
	}
	// Histories with aborts are out of scope for this reduction.
	b3 := newHB().global("T1").abort("T1").comp("CT1", "T1")
	b3.w("s0", "T1", "x")
	if _, checked := SerializableWithoutAborts(b3.h()); checked {
		t.Fatalf("aborted history must not be checked by the reduction")
	}
}
