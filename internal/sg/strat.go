package sg

import (
	"sort"

	"o2pc/internal/history"
)

// Stratification implements the predicates A1-A4, the "active with respect
// to" relation, and the stratification properties S1/S2 of Section 5.
//
// All predicates range over pairs of distinct regular global transactions
// (Ti, Tj) and quantify over local SGs; they are evaluated against the
// per-site graphs of one history.
type Stratification struct {
	h      *history.History
	locals map[string]*Graph
	// globalIDs lists the regular global transactions in the history.
	globalIDs []string
}

// NewStratification prepares a checker for h.
func NewStratification(h *history.History) *Stratification {
	_, locals := BuildGlobal(h)
	s := &Stratification{h: h, locals: locals}
	for id, info := range h.Txns {
		if info.Kind == history.KindGlobal {
			s.globalIDs = append(s.globalIDs, id)
		}
	}
	sort.Strings(s.globalIDs)
	return s
}

// ct returns the compensating transaction ID of ti ("" if none exists in
// the history — e.g. ti committed and never needed compensation).
func (s *Stratification) ct(ti string) string { return s.h.CompensationOf(ti) }

// appears reports whether txn has a node in the local SG of site.
func (s *Stratification) appears(site, txn string) bool {
	_, ok := s.locals[site].Nodes[txn]
	return ok
}

// ActiveWrt implements: Ti is active with respect to Tj iff there exists a
// local SG where both appear, Tj -> Ti is NOT in that SG, but there is a
// path (in either direction) between CTi and Tj in that SG.
func (s *Stratification) ActiveWrt(ti, tj string) bool {
	cti := s.ct(ti)
	if cti == "" {
		return false
	}
	for site, lg := range s.locals {
		if !s.appears(site, ti) || !s.appears(site, tj) {
			continue
		}
		if lg.Reaches(tj, ti) {
			continue
		}
		if _, ok := lg.Nodes[cti]; !ok {
			continue
		}
		if lg.PathBetween(cti, tj) {
			return true
		}
	}
	return false
}

// A1: at any SGa where Tj appears, the path Ti -> CTi -> Tj is in SGa.
func (s *Stratification) A1(ti, tj string) bool {
	cti := s.ct(ti)
	if cti == "" {
		return false
	}
	for site, lg := range s.locals {
		if !s.appears(site, tj) {
			continue
		}
		if !lg.Reaches(ti, cti) || !lg.Reaches(cti, tj) {
			return false
		}
	}
	return true
}

// A2: at any SGa where Tj appears, Tj -> CTi without having Ti on that path.
func (s *Stratification) A2(ti, tj string) bool {
	cti := s.ct(ti)
	if cti == "" {
		return false
	}
	for site, lg := range s.locals {
		if !s.appears(site, tj) {
			continue
		}
		if !lg.Reaches(tj, cti, ti) {
			return false
		}
	}
	return true
}

// A3: at any SGa where both Tj and Ti appear, if there is a path between Tj
// and either Ti or CTi, then the path Ti -> CTi -> Tj is in SGa.
func (s *Stratification) A3(ti, tj string) bool {
	cti := s.ct(ti)
	for site, lg := range s.locals {
		if !s.appears(site, ti) || !s.appears(site, tj) {
			continue
		}
		connected := lg.PathBetween(tj, ti)
		if cti != "" {
			if _, ok := lg.Nodes[cti]; ok {
				connected = connected || lg.PathBetween(tj, cti)
			}
		}
		if !connected {
			continue
		}
		if cti == "" {
			return false
		}
		if !lg.Reaches(ti, cti) || !lg.Reaches(cti, tj) {
			return false
		}
	}
	return true
}

// A4: at any SGa where both Tj and Ti appear, if there is a path between Tj
// and CTi in SGa, it must be the path Tj -> CTi without having Ti on it.
func (s *Stratification) A4(ti, tj string) bool {
	cti := s.ct(ti)
	for site, lg := range s.locals {
		if !s.appears(site, ti) || !s.appears(site, tj) {
			continue
		}
		if cti == "" {
			continue
		}
		if _, ok := lg.Nodes[cti]; !ok {
			continue
		}
		if !lg.PathBetween(tj, cti) {
			continue
		}
		// A path exists; it must be exactly Tj -> CTi avoiding Ti, and in
		// particular CTi must not reach Tj.
		if lg.Reaches(cti, tj) {
			return false
		}
		if !lg.Reaches(tj, cti, ti) {
			return false
		}
	}
	return true
}

// Violation records a pair that falsifies a stratification property.
type Violation struct {
	Ti, Tj string
}

// CheckS1 evaluates S1: for all pairs where Ti is active wrt Tj, A1 or A4
// holds. It returns the violating pairs (empty means S1 holds).
func (s *Stratification) CheckS1() []Violation {
	var out []Violation
	for _, ti := range s.globalIDs {
		for _, tj := range s.globalIDs {
			if ti == tj || !s.ActiveWrt(ti, tj) {
				continue
			}
			if !s.A1(ti, tj) && !s.A4(ti, tj) {
				out = append(out, Violation{Ti: ti, Tj: tj})
			}
		}
	}
	return out
}

// CheckS2 evaluates S2: for all pairs where Ti is active wrt Tj, A2 or A3
// holds. It returns the violating pairs (empty means S2 holds).
func (s *Stratification) CheckS2() []Violation {
	var out []Violation
	for _, ti := range s.globalIDs {
		for _, tj := range s.globalIDs {
			if ti == tj || !s.ActiveWrt(ti, tj) {
				continue
			}
			if !s.A2(ti, tj) && !s.A3(ti, tj) {
				out = append(out, Violation{Ti: ti, Tj: tj})
			}
		}
	}
	return out
}
