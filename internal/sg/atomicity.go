package sg

import (
	"sort"

	"o2pc/internal/history"
)

// CompensationViolation records a transaction that observed both a forward
// transaction's update and its compensation's update — the situation
// Theorem 2 rules out for correct histories when CTi writes (at least)
// Ti's write set.
type CompensationViolation struct {
	Reader  string // the Tj that read from both
	Forward string // Ti
	Comp    string // CTi
	// ReaderFate distinguishes committed readers (a genuine Theorem 2
	// violation) from doomed readers — transactions whose operations
	// entered the history before the marking protocol refused them at
	// vote time and whose effects were all rolled back or compensated
	// (the same residue as doomed-reader regular cycles; see
	// CycleClass.Effective).
	ReaderFate history.Fate
}

// CommittedViolations filters violations to those with non-aborted
// readers — the enforceable form of Theorem 2 (a doomed reader is refused
// before it can commit, but its reads precede the refusal).
func CommittedViolations(all []CompensationViolation) []CompensationViolation {
	var out []CompensationViolation
	for _, v := range all {
		if v.ReaderFate != history.FateAborted {
			out = append(out, v)
		}
	}
	return out
}

// CheckCompensationAtomicity scans reads-from evidence for violations of
// atomicity of compensation: a transaction Tj (of any kind other than the
// pair itself) with one read satisfied by Ti and another read satisfied by
// CTi. The returned slice is sorted and empty for conforming histories.
func CheckCompensationAtomicity(h *history.History) []CompensationViolation {
	// readerSources[reader] = set of writers it read from.
	readerSources := make(map[string]map[string]bool)
	for _, op := range h.Ops {
		if op.Type != history.OpRead || op.ReadFrom == "" {
			continue
		}
		set, ok := readerSources[op.Txn]
		if !ok {
			set = make(map[string]bool)
			readerSources[op.Txn] = set
		}
		set[op.ReadFrom] = true
	}

	var out []CompensationViolation
	for id, info := range h.Txns {
		if info.Kind != history.KindCompensating || info.Forward == "" {
			continue
		}
		forward, comp := info.Forward, id
		for reader, sources := range readerSources {
			if reader == forward || reader == comp {
				continue
			}
			if sources[forward] && sources[comp] {
				out = append(out, CompensationViolation{
					Reader:     reader,
					Forward:    forward,
					Comp:       comp,
					ReaderFate: h.FateOf(reader),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Reader != out[j].Reader {
			return out[i].Reader < out[j].Reader
		}
		return out[i].Forward < out[j].Forward
	})
	return out
}

// SerializableWithoutAborts reports whether the global SG restricted to
// histories with no aborted global transactions is acyclic — the paper's
// observation that the correctness criterion "reduces to serializability
// when no global transactions are aborted". It returns false with a
// witness cycle when the restriction is cyclic, and true with nil
// otherwise. Histories that do contain aborted global transactions are
// reported via the bool second return (checked=false).
func SerializableWithoutAborts(h *history.History) (cycle []string, checked bool) {
	for _, info := range h.Txns {
		if info.Kind == history.KindGlobal && info.Fate == history.FateAborted {
			return nil, false
		}
		if info.Kind == history.KindCompensating {
			return nil, false
		}
	}
	global, _ := BuildGlobal(h)
	cyc, has := global.HasCycle()
	if has {
		return cyc, true
	}
	return nil, true
}
