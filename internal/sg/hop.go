package sg

import (
	"sort"

	"o2pc/internal/history"
)

// HopGraph is the site-labeled reachability graph over global nodes
// (regular and compensating global transactions). An edge A -> B labeled
// with site a means the local SG of a contains a path from A to B. Global
// cyclic paths in the global SG correspond to closed walks in the hop
// graph, and the "local path" segments of the paper's path representations
// correspond to hop edges.
type HopGraph struct {
	// Nodes maps node ID to kind (KindGlobal or KindCompensating only).
	Nodes map[string]history.Kind
	// Fates maps node ID to its recorded fate (regular cycles through
	// exclusively aborted regular transactions are classified separately).
	Fates map[string]history.Fate
	// Sites maps from -> to -> set of sites witnessing a local path.
	Sites map[string]map[string]map[string]bool
}

// HasHop reports whether an edge from -> to exists at any site.
func (hg *HopGraph) HasHop(from, to string) bool {
	return len(hg.Sites[from][to]) > 0
}

// addHop inserts an edge witness.
func (hg *HopGraph) addHop(from, to, site string) {
	m, ok := hg.Sites[from]
	if !ok {
		m = make(map[string]map[string]bool)
		hg.Sites[from] = m
	}
	set, ok := m[to]
	if !ok {
		set = make(map[string]bool)
		m[to] = set
	}
	set[site] = true
}

// BuildHopGraph computes the hop graph from the per-site local SGs.
func BuildHopGraph(h *history.History, locals map[string]*Graph) *HopGraph {
	hg := &HopGraph{
		Nodes: make(map[string]history.Kind),
		Fates: make(map[string]history.Fate),
		Sites: make(map[string]map[string]map[string]bool),
	}
	for _, lg := range locals {
		for id, kind := range lg.Nodes {
			if kind == history.KindGlobal || kind == history.KindCompensating {
				hg.Nodes[id] = kind
				hg.Fates[id] = h.FateOf(id)
			}
		}
	}
	sites := make([]string, 0, len(locals))
	for s := range locals {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	for _, site := range sites {
		lg := locals[site]
		// Per-site transitive reachability restricted to global nodes as
		// endpoints; interior nodes may be local transactions.
		globalsHere := make([]string, 0)
		for id := range lg.Nodes {
			if k := hg.Nodes[id]; k == history.KindGlobal || k == history.KindCompensating {
				if _, appears := lg.Nodes[id]; appears {
					globalsHere = append(globalsHere, id)
				}
			}
		}
		sort.Strings(globalsHere)
		for _, from := range globalsHere {
			reach := lg.reachableFrom(from)
			for _, to := range globalsHere {
				if from != to && reach[to] {
					hg.addHop(from, to, site)
				}
			}
		}
	}
	return hg
}

// reachableFrom returns the set of nodes reachable from src by a path of
// length >= 1.
func (g *Graph) reachableFrom(src string) map[string]bool {
	seen := make(map[string]bool)
	stack := make([]string, 0, len(g.Adj[src]))
	for next := range g.Adj[src] {
		stack = append(stack, next)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		for next := range g.Adj[n] {
			if !seen[next] {
				stack = append(stack, next)
			}
		}
	}
	return seen
}

// Cycle is a simple cycle in the hop graph, as an ordered junction list
// (the edge from the last junction back to the first closes the cycle).
type Cycle struct {
	Junctions []string
}

// SCCs computes the strongly connected components of the hop graph
// (iterative Tarjan). Only components with more than one node — or a node
// with a self-loop, which hop graphs do not have — can contain cycles.
func (hg *HopGraph) SCCs() [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var comps [][]string
	next := 0

	type frame struct {
		node  string
		succs []string
		i     int
	}
	succsOf := func(n string) []string {
		out := make([]string, 0, len(hg.Sites[n]))
		for to := range hg.Sites[n] {
			out = append(out, to)
		}
		sort.Strings(out)
		return out
	}

	var roots []string
	for id := range hg.Nodes {
		roots = append(roots, id)
	}
	sort.Strings(roots)

	for _, root := range roots {
		if _, seen := index[root]; seen {
			continue
		}
		frames := []frame{{node: root, succs: succsOf(root)}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succs) {
				w := f.succs[f.i]
				f.i++
				if _, seen := index[w]; !seen {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{node: w, succs: succsOf(w)})
				} else if onStack[w] && index[w] < low[f.node] {
					low[f.node] = index[w]
				}
				continue
			}
			// Pop.
			n := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[n] < low[parent.node] {
					low[parent.node] = low[n]
				}
			}
			if low[n] == index[n] {
				var comp []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == n {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// EnumerateCycles lists simple cycles of the hop graph, bounded by maxLen
// junctions per cycle and maxCount cycles total (0 means no bound). The
// bound exists because experiment-scale histories without P1 can contain
// very many benign CT cycles; the audit reports "at least N".
//
// Enumeration is restricted to non-trivial strongly connected components:
// acyclic hop graphs (the common case under P1) cost one SCC pass.
func (hg *HopGraph) EnumerateCycles(maxLen, maxCount int) []Cycle {
	compID := make(map[string]int)
	var ids []string
	for ci, comp := range hg.SCCs() {
		if len(comp) > 1 {
			for _, n := range comp {
				compID[n] = ci + 1 // 0 is reserved for trivial components
				ids = append(ids, n)
			}
		}
	}
	if len(ids) == 0 {
		return nil
	}
	sort.Strings(ids)
	index := make(map[string]int, len(ids))
	for i, id := range ids {
		index[id] = i
	}

	var cycles []Cycle
	var path []string
	onPath := make(map[string]bool)

	// Johnson-style restriction: cycles are rooted at their smallest-index
	// node, so each simple cycle is found exactly once.
	var root int
	var dfs func(n string) bool // returns false to stop (maxCount hit)
	dfs = func(n string) bool {
		path = append(path, n)
		onPath[n] = true
		defer func() {
			path = path[:len(path)-1]
			delete(onPath, n)
		}()
		succs := make([]string, 0, len(hg.Sites[n]))
		for to := range hg.Sites[n] {
			succs = append(succs, to)
		}
		sort.Strings(succs)
		for _, to := range succs {
			// Simple cycles live entirely within one SCC.
			if compID[to] != compID[ids[root]] {
				continue
			}
			if idx, ok := index[to]; !ok || idx < root {
				continue
			}
			if to == ids[root] {
				cycles = append(cycles, Cycle{Junctions: append([]string(nil), path...)})
				if maxCount > 0 && len(cycles) >= maxCount {
					return false
				}
				continue
			}
			if onPath[to] {
				continue
			}
			if maxLen > 0 && len(path) >= maxLen {
				continue
			}
			if !dfs(to) {
				return false
			}
		}
		return true
	}

	for root = 0; root < len(ids); root++ {
		if !dfs(ids[root]) {
			break
		}
	}
	return cycles
}
