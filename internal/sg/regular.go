package sg

import (
	"sort"

	"o2pc/internal/history"
)

// CycleClass is a classified global cycle.
type CycleClass struct {
	Cycle
	// Regular reports whether the cycle is a regular cycle: at least one
	// of its minimal representations includes a regular (non-compensating)
	// global transaction. The correctness criterion forbids such cycles.
	Regular bool
	// Effective refines Regular: at least one minimal representation
	// includes a regular transaction that is NOT aborted. Regular cycles
	// whose every regular junction aborted are "doomed-reader" cycles: the
	// reader's operations entered the complete history before the marking
	// protocol's vote-time revalidation refused it, and all of its effects
	// were rolled back or compensated. The paper's check-first-then-
	// revalidate compromise (Section 6.2) inherently admits these into
	// complete histories; what the protocol enforceably excludes — and
	// what Audit.Correct checks — is effective regular cycles.
	Effective bool
	// MinimalReps lists the junction sets of the minimal representations
	// (each sorted), for diagnostics.
	MinimalReps [][]string
}

// ClassifyCycle computes the minimal representations of a simple hop-graph
// cycle and classifies it.
//
// A representation of the cyclic path is a cyclic subsequence of its
// junctions such that every consecutive pair (in cyclic order) is connected
// by a single-site local path — i.e., by a hop edge. Dropping a junction
// corresponds to merging its two adjacent segments into one local path, as
// in the paper's Example 1 where the representation {CT1 -> CT3 in SG2}
// supersedes {CT1 -> T2 in SG1; T2 -> CT3 in SG2} and therefore the path
// "does not include T2". A minimal representation has the fewest segments;
// the cycle "includes" a transaction when it appears on at least one
// minimal representation.
func ClassifyCycle(hg *HopGraph, c Cycle) CycleClass {
	k := len(c.Junctions)
	out := CycleClass{Cycle: c}
	if k == 0 {
		return out
	}
	if k == 1 {
		// A self-loop would be a local cycle; hop graphs have none, but be
		// defensive: classify by the junction itself.
		out.Regular = hg.Nodes[c.Junctions[0]] == history.KindGlobal
		out.Effective = out.Regular && hg.Fates[c.Junctions[0]] != history.FateAborted
		out.MinimalReps = [][]string{{c.Junctions[0]}}
		return out
	}

	// Brute-force subset search: cycles are bounded (maxLen in
	// EnumerateCycles), so 2^k enumeration is cheap and obviously correct.
	best := k + 1
	var bestSets [][]int
	for mask := 1; mask < (1 << k); mask++ {
		size := 0
		var members []int
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				size++
				members = append(members, i)
			}
		}
		if size < 2 || size > best {
			continue
		}
		valid := true
		for t := 0; t < size; t++ {
			from := c.Junctions[members[t]]
			to := c.Junctions[members[(t+1)%size]]
			if !hg.HasHop(from, to) {
				valid = false
				break
			}
		}
		if !valid {
			continue
		}
		if size < best {
			best = size
			bestSets = bestSets[:0]
		}
		bestSets = append(bestSets, members)
	}
	if len(bestSets) == 0 {
		// The cycle's own junction sequence is always a valid
		// representation, so this is unreachable; keep a safe fallback.
		all := make([]int, k)
		for i := range all {
			all[i] = i
		}
		bestSets = [][]int{all}
	}

	for _, set := range bestSets {
		rep := make([]string, 0, len(set))
		regular, effective := false, false
		for _, idx := range set {
			j := c.Junctions[idx]
			rep = append(rep, j)
			if hg.Nodes[j] == history.KindGlobal {
				regular = true
				if hg.Fates[j] != history.FateAborted {
					effective = true
				}
			}
		}
		sort.Strings(rep)
		out.MinimalReps = append(out.MinimalReps, rep)
		if regular {
			out.Regular = true
		}
		if effective {
			out.Effective = true
		}
	}
	return out
}

// Audit is the complete verdict of the Section 5 checker on one history.
type Audit struct {
	// LocalCycles maps site -> witness cycle for every non-serializable
	// local history (must be empty under correct per-site strict 2PL).
	LocalCycles map[string][]string
	// Cycles lists the classified global cycles found (possibly truncated).
	Cycles []CycleClass
	// RegularCount and BenignCount partition Cycles; EffectiveCount is
	// the subset of regular cycles involving a non-aborted regular
	// transaction (DoomedCount = RegularCount - EffectiveCount are
	// doomed-reader cycles, see CycleClass.Effective).
	RegularCount   int
	EffectiveCount int
	DoomedCount    int
	BenignCount    int
	// Truncated reports that cycle enumeration hit its bound, so counts
	// are lower bounds.
	Truncated bool
}

// Correct reports whether the history satisfies the enforceable form of
// the paper's correctness criterion: no local cycles and no effective
// regular cycles (within the audited bound). Doomed-reader cycles —
// regular cycles whose every regular junction aborted, the inherent
// residue of the Section 6.2 check-then-revalidate compromise — are
// reported via DoomedCount but do not fail correctness: every effect of
// such a reader was rolled back or compensated, and no committed
// transaction observed inconsistent compensation states.
func (a *Audit) Correct() bool {
	return len(a.LocalCycles) == 0 && a.EffectiveCount == 0
}

// DefaultMaxCycleLen bounds cycle enumeration length in audits.
const DefaultMaxCycleLen = 10

// DefaultMaxCycles bounds the number of enumerated cycles in audits.
const DefaultMaxCycles = 10000

// AuditHistory runs the full Section 5 verification on a history. Passing
// zero for the bounds selects the package defaults.
func AuditHistory(h *history.History, maxLen, maxCount int) *Audit {
	if maxLen == 0 {
		maxLen = DefaultMaxCycleLen
	}
	if maxCount == 0 {
		maxCount = DefaultMaxCycles
	}
	_, locals := BuildGlobal(h)
	audit := &Audit{LocalCycles: make(map[string][]string)}
	for site, lg := range locals {
		if cyc, ok := lg.HasCycle(); ok {
			audit.LocalCycles[site] = cyc
		}
	}
	hg := BuildHopGraph(h, locals)
	cycles := hg.EnumerateCycles(maxLen, maxCount)
	audit.Truncated = maxCount > 0 && len(cycles) >= maxCount
	for _, c := range cycles {
		cc := ClassifyCycle(hg, c)
		audit.Cycles = append(audit.Cycles, cc)
		switch {
		case cc.Effective:
			audit.RegularCount++
			audit.EffectiveCount++
		case cc.Regular:
			audit.RegularCount++
			audit.DoomedCount++
		default:
			audit.BenignCount++
		}
	}
	return audit
}
