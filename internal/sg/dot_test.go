package sg

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	b := newHB().global("T1", "T2").commit("T2").abort("T1").comp("CT1", "T1")
	b.w("s0", "T1", "x").rd("s0", "T2", "x", "T1").w("s0", "CT1", "x")
	b.w("s1", "T1", "y").w("s1", "CT1", "y").rd("s1", "T2", "y", "CT1")
	var sb strings.Builder
	if err := WriteDOT(&sb, b.h()); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph history",
		`label="SG s0"`,
		`label="SG s1"`,
		"hop graph",
		"shape=hexagon", // the compensating transaction
		"color=red",     // the regular cycle is highlighted
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// Balanced braces make for at least structurally valid DOT.
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Errorf("unbalanced braces in DOT output")
	}
}

func TestWriteDOTEmptyHistory(t *testing.T) {
	var sb strings.Builder
	if err := WriteDOT(&sb, newHB().h()); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	if !strings.Contains(sb.String(), "digraph") {
		t.Errorf("no document produced")
	}
}
