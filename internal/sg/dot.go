package sg

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"o2pc/internal/history"
)

// WriteDOT renders the per-site local serialization graphs and the hop
// graph as a Graphviz document: one cluster per site plus a "global"
// cluster of hop edges labeled with their witnessing sites. Node shapes
// encode kinds (box = regular global transaction, hexagon = compensating,
// ellipse = local); regular cycles found by the audit are highlighted red.
func WriteDOT(w io.Writer, h *history.History) error {
	_, locals := BuildGlobal(h)
	hg := BuildHopGraph(h, locals)
	audit := AuditHistory(h, 0, 0)

	// Nodes on a regular cycle get highlighted.
	hot := make(map[string]bool)
	for _, c := range audit.Cycles {
		if !c.Regular {
			continue
		}
		for _, j := range c.Junctions {
			hot[j] = true
		}
	}

	var b strings.Builder
	b.WriteString("digraph history {\n  rankdir=LR;\n  node [fontname=\"monospace\"];\n")

	sites := make([]string, 0, len(locals))
	for site := range locals {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	for i, site := range sites {
		lg := locals[site]
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n", i, "SG "+site)
		for _, id := range lg.NodeIDs() {
			fmt.Fprintf(&b, "    %q [%s];\n", site+"/"+id, nodeAttrs(id, lg.Nodes[id], hot[id]))
		}
		for _, from := range lg.NodeIDs() {
			succs := make([]string, 0, len(lg.Adj[from]))
			for to := range lg.Adj[from] {
				succs = append(succs, to)
			}
			sort.Strings(succs)
			for _, to := range succs {
				fmt.Fprintf(&b, "    %q -> %q;\n", site+"/"+from, site+"/"+to)
			}
		}
		b.WriteString("  }\n")
	}

	// Hop graph (the global-path structure of Section 5).
	b.WriteString("  subgraph cluster_global {\n    label=\"hop graph (single-site paths between global nodes)\";\n")
	ids := make([]string, 0, len(hg.Nodes))
	for id := range hg.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "    %q [%s];\n", "g/"+id, nodeAttrs(id, hg.Nodes[id], hot[id]))
	}
	for _, from := range ids {
		tos := make([]string, 0, len(hg.Sites[from]))
		for to := range hg.Sites[from] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			var witnesses []string
			for site := range hg.Sites[from][to] {
				witnesses = append(witnesses, site)
			}
			sort.Strings(witnesses)
			attrs := fmt.Sprintf("label=%q", strings.Join(witnesses, ","))
			if hot[from] && hot[to] {
				attrs += ", color=red, penwidth=2"
			}
			fmt.Fprintf(&b, "    %q -> %q [%s];\n", "g/"+from, "g/"+to, attrs)
		}
	}
	b.WriteString("  }\n}\n")

	_, err := io.WriteString(w, b.String())
	return err
}

func nodeAttrs(id string, kind history.Kind, hot bool) string {
	shape := "ellipse"
	switch kind {
	case history.KindGlobal:
		shape = "box"
	case history.KindCompensating:
		shape = "hexagon"
	case history.KindLocal:
		// Keep the ellipse default.
	}
	attrs := fmt.Sprintf("label=%q, shape=%s", id, shape)
	if hot {
		attrs += ", color=red, penwidth=2"
	}
	return attrs
}
