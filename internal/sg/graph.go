// Package sg implements the serialization-graph formalism of the paper's
// Section 5 as an executable verifier.
//
// Given a recorded history (package history), sg builds the extended local
// serialization graphs — whose nodes are global transactions, compensating
// transactions, and committed local transactions — merges them into a
// global SG, and answers the questions the theory asks:
//
//   - Does any local SG contain a cycle? (local serializability)
//   - Does the global SG contain a regular cycle — a global cyclic path
//     whose minimal representation includes at least one regular (i.e.,
//     non-compensating) global transaction? The correctness criterion is
//     "no local cycles and no regular cycles".
//   - Do the stratification properties S1 / S2 hold? (Theorem 1 makes
//     either sufficient for excluding regular cycles.)
//   - Is atomicity of compensation preserved — does any transaction read
//     from both Ti and CTi? (Theorem 2.)
//
// The verifier is used by the test suite as an oracle over randomized
// executions, and by experiment E7/E8 binaries for end-to-end audits.
package sg

import (
	"fmt"
	"sort"

	"o2pc/internal/history"
)

// Graph is a directed graph over transaction node IDs.
type Graph struct {
	// Nodes maps node ID to its kind.
	Nodes map[string]history.Kind
	// Adj maps node ID to the set of successor node IDs.
	Adj map[string]map[string]bool
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		Nodes: make(map[string]history.Kind),
		Adj:   make(map[string]map[string]bool),
	}
}

// AddNode inserts a node (idempotent).
func (g *Graph) AddNode(id string, kind history.Kind) {
	if _, ok := g.Nodes[id]; !ok {
		g.Nodes[id] = kind
		g.Adj[id] = make(map[string]bool)
	}
}

// AddEdge inserts a directed edge (idempotent); both nodes must exist.
func (g *Graph) AddEdge(from, to string) {
	if from == to {
		return
	}
	g.Adj[from][to] = true
}

// HasEdge reports whether the edge from -> to exists.
func (g *Graph) HasEdge(from, to string) bool { return g.Adj[from][to] }

// NodeIDs returns the sorted node IDs.
func (g *Graph) NodeIDs() []string {
	ids := make([]string, 0, len(g.Nodes))
	for id := range g.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Reaches reports whether there is a directed path (length >= 1) from src
// to dst. Nodes listed in avoid are treated as absent (the "without having
// Ti on that path" condition of predicates A2/A4).
func (g *Graph) Reaches(src, dst string, avoid ...string) bool {
	blocked := make(map[string]bool, len(avoid))
	for _, a := range avoid {
		blocked[a] = true
	}
	if blocked[dst] {
		return false
	}
	seen := map[string]bool{}
	stack := []string{}
	for next := range g.Adj[src] {
		if !blocked[next] {
			stack = append(stack, next)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == dst {
			return true
		}
		if seen[n] || blocked[n] {
			continue
		}
		seen[n] = true
		for next := range g.Adj[n] {
			if !seen[next] && !blocked[next] {
				stack = append(stack, next)
			}
		}
	}
	return false
}

// PathBetween reports whether a path exists in either direction between a
// and b (the "path (in either direction) between" phrasing of Section 5).
func (g *Graph) PathBetween(a, b string) bool {
	return g.Reaches(a, b) || g.Reaches(b, a)
}

// HasCycle reports whether the graph contains any directed cycle, returning
// one witness cycle (as a node sequence) when it does.
func (g *Graph) HasCycle() ([]string, bool) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int, len(g.Nodes))
	var stack []string
	var cycle []string

	var dfs func(n string) bool
	dfs = func(n string) bool {
		color[n] = grey
		stack = append(stack, n)
		// Deterministic order for reproducible witnesses.
		succs := make([]string, 0, len(g.Adj[n]))
		for s := range g.Adj[n] {
			succs = append(succs, s)
		}
		sort.Strings(succs)
		for _, next := range succs {
			switch color[next] {
			case white:
				if dfs(next) {
					return true
				}
			case grey:
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append([]string{stack[i]}, cycle...)
					if stack[i] == next {
						break
					}
				}
				return true
			}
		}
		color[n] = black
		stack = stack[:len(stack)-1]
		return false
	}
	for _, id := range g.NodeIDs() {
		if color[id] == white {
			if dfs(id) {
				return cycle, true
			}
		}
	}
	return nil, false
}

// String renders the graph compactly for debugging.
func (g *Graph) String() string {
	out := ""
	for _, id := range g.NodeIDs() {
		succs := make([]string, 0, len(g.Adj[id]))
		for s := range g.Adj[id] {
			succs = append(succs, s)
		}
		sort.Strings(succs)
		for _, s := range succs {
			out += fmt.Sprintf("%s -> %s\n", id, s)
		}
	}
	return out
}

// includeNode reports whether a transaction node belongs in the SG: global
// and compensating transactions always; local transactions only when
// committed (the committed-projection convention of BHG87 adopted by the
// paper).
func includeNode(h *history.History, txn string) bool {
	info, ok := h.Txns[txn]
	if !ok {
		return false
	}
	if info.Kind == history.KindLocal {
		return info.Fate == history.FateCommitted
	}
	return true
}

// BuildLocal constructs the local serialization graph of one site from a
// history: nodes are the qualifying transactions with operations at the
// site; an edge A -> B exists when an operation of A precedes and conflicts
// with an operation of B at that site.
func BuildLocal(h *history.History, site string) *Graph {
	g := NewGraph()
	ops := h.OpsAt(site)
	var kept []history.Op
	for _, op := range ops {
		if !includeNode(h, op.Txn) {
			continue
		}
		kept = append(kept, op)
		g.AddNode(op.Txn, h.KindOf(op.Txn))
	}
	// O(n^2) pairwise scan; local histories in tests and experiments are
	// bounded, and the first-conflict structure keeps edges deduplicated by
	// the graph itself.
	for i := 0; i < len(kept); i++ {
		for j := i + 1; j < len(kept); j++ {
			if history.Conflicts(kept[i], kept[j]) {
				g.AddEdge(kept[i].Txn, kept[j].Txn)
			}
		}
	}
	return g
}

// BuildGlobal constructs the global SG as the union of the local SGs, and
// returns the per-site local graphs alongside it.
func BuildGlobal(h *history.History) (global *Graph, locals map[string]*Graph) {
	global = NewGraph()
	locals = make(map[string]*Graph)
	for _, site := range h.Sites() {
		lg := BuildLocal(h, site)
		locals[site] = lg
		for id, kind := range lg.Nodes {
			global.AddNode(id, kind)
		}
		for from, succs := range lg.Adj {
			for to := range succs {
				global.AddEdge(from, to)
			}
		}
	}
	return global, locals
}

// LocalCycles returns, per site, a witness cycle for every site whose local
// SG is cyclic. Under correct per-site strict 2PL this must be empty.
func LocalCycles(h *history.History) map[string][]string {
	out := make(map[string][]string)
	for _, site := range h.Sites() {
		lg := BuildLocal(h, site)
		if cyc, ok := lg.HasCycle(); ok {
			out[site] = cyc
		}
	}
	return out
}
