package storage

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestGetMissing(t *testing.T) {
	s := NewStore()
	_, err := s.Get("nope")
	if !IsNotFound(err) {
		t.Fatalf("err = %v, want not-found", err)
	}
	if err.Error() == "" {
		t.Fatalf("not-found error has empty message")
	}
}

func TestPutGet(t *testing.T) {
	s := NewStore()
	if _, existed := s.Put("a", Value("v1"), "T1"); existed {
		t.Fatalf("fresh key reported as existing")
	}
	rec, err := s.Get("a")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(rec.Value) != "v1" || rec.Writer != "T1" {
		t.Fatalf("rec = %+v", rec)
	}
}

func TestPutReturnsPrevious(t *testing.T) {
	s := NewStore()
	s.Put("a", Value("v1"), "T1")
	prev, existed := s.Put("a", Value("v2"), "T2")
	if !existed || string(prev.Value) != "v1" || prev.Writer != "T1" {
		t.Fatalf("prev = %+v existed=%v", prev, existed)
	}
	rec, _ := s.Get("a")
	if string(rec.Value) != "v2" || rec.Writer != "T2" {
		t.Fatalf("rec = %+v", rec)
	}
}

func TestVersionMonotonic(t *testing.T) {
	s := NewStore()
	var last uint64
	for i := 0; i < 10; i++ {
		s.Put("k", EncodeInt64(int64(i)), "T")
		rec, _ := s.Get("k")
		if rec.Version <= last {
			t.Fatalf("version not monotonic: %d after %d", rec.Version, last)
		}
		last = rec.Version
	}
}

func TestDeleteTombstone(t *testing.T) {
	s := NewStore()
	s.Put("a", Value("v"), "T1")
	prev, existed := s.Delete("a", "T2")
	if !existed || string(prev.Value) != "v" {
		t.Fatalf("prev = %+v", prev)
	}
	if _, err := s.Get("a"); !IsNotFound(err) {
		t.Fatalf("deleted key readable: %v", err)
	}
	// The tombstone is still visible through GetAny.
	rec, ok := s.GetAny("a")
	if !ok || !rec.Deleted || rec.Writer != "T2" {
		t.Fatalf("tombstone = %+v ok=%v", rec, ok)
	}
}

func TestRestorePreservesPayloadAndWriter(t *testing.T) {
	s := NewStore()
	s.Put("a", Value("orig"), "T1")
	orig, _ := s.Get("a")
	s.Put("a", Value("changed"), "T2")

	s.Restore(Record{Key: "a", Value: orig.Value}, "CT2")
	rec, err := s.Get("a")
	if err != nil {
		t.Fatalf("Get after restore: %v", err)
	}
	if string(rec.Value) != "orig" {
		t.Fatalf("value = %q, want orig", rec.Value)
	}
	if rec.Writer != "CT2" {
		t.Fatalf("writer = %q, want CT2 (attribution)", rec.Writer)
	}
	if rec.Version <= orig.Version {
		t.Fatalf("restore did not advance version: %d <= %d", rec.Version, orig.Version)
	}
}

func TestRemoveErasesKey(t *testing.T) {
	s := NewStore()
	s.Put("a", Value("v"), "T1")
	s.Remove("a")
	if _, ok := s.GetAny("a"); ok {
		t.Fatalf("removed key still present")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
}

func TestLenExcludesTombstones(t *testing.T) {
	s := NewStore()
	s.Put("a", Value("v"), "T")
	s.Put("b", Value("v"), "T")
	s.Delete("a", "T")
	if got := s.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
}

func TestKeysSorted(t *testing.T) {
	s := NewStore()
	for _, k := range []Key{"c", "a", "b"} {
		s.Put(k, Value("v"), "T")
	}
	keys := s.Keys()
	want := []Key{"a", "b", "c"}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	s := NewStore()
	s.Put("a", Value("v1"), "T")
	snap := s.Snapshot()
	s.Put("a", Value("v2"), "T")
	if string(snap["a"].Value) != "v1" {
		t.Fatalf("snapshot mutated by later write")
	}
	snap["a"].Value[0] = 'X'
	rec, _ := s.Get("a")
	if string(rec.Value) != "v2" {
		t.Fatalf("store mutated through snapshot")
	}
}

func TestLoadSnapshotRoundTrip(t *testing.T) {
	s := NewStore()
	for i := 0; i < 5; i++ {
		s.Put(Key(fmt.Sprintf("k%d", i)), EncodeInt64(int64(i)), "T")
	}
	snap := s.Snapshot()
	s2 := NewStore()
	s2.LoadSnapshot(snap)
	if s2.Len() != s.Len() {
		t.Fatalf("len mismatch: %d vs %d", s2.Len(), s.Len())
	}
	for _, k := range s.Keys() {
		a, _ := s.Get(k)
		b, err := s2.Get(k)
		if err != nil || !bytes.Equal(a.Value, b.Value) {
			t.Fatalf("key %s mismatch: %v vs %v (%v)", k, a.Value, b.Value, err)
		}
	}
	// Version counter must not regress below the snapshot's max.
	if s2.Version() == 0 {
		t.Fatalf("version counter not restored")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := NewStore()
	s.Put("a", Value("abc"), "T")
	rec, _ := s.Get("a")
	rec.Value[0] = 'X'
	again, _ := s.Get("a")
	if string(again.Value) != "abc" {
		t.Fatalf("store mutated through Get result")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := Key(fmt.Sprintf("k%d", g%4))
			for i := 0; i < 200; i++ {
				s.Put(key, EncodeInt64(int64(i)), "T")
				if rec, err := s.Get(key); err == nil && len(rec.Value) != 8 {
					t.Errorf("corrupt value length %d", len(rec.Value))
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestInt64Codec(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 1 << 40, -(1 << 40), 9223372036854775807, -9223372036854775808} {
		got, err := DecodeInt64(EncodeInt64(v))
		if err != nil || got != v {
			t.Fatalf("roundtrip %d -> %d (%v)", v, got, err)
		}
	}
}

func TestInt64CodecQuick(t *testing.T) {
	f := func(v int64) bool {
		got, err := DecodeInt64(EncodeInt64(v))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeInt64BadLength(t *testing.T) {
	if _, err := DecodeInt64(Value("short")); err == nil {
		t.Fatalf("want error for short value")
	}
	if _, err := DecodeInt64(nil); err == nil {
		t.Fatalf("want error for nil value")
	}
}

func TestMustDecodeInt64Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustDecodeInt64 did not panic on bad input")
		}
	}()
	MustDecodeInt64(Value("x"))
}

func TestStringCodec(t *testing.T) {
	if got := DecodeString(EncodeString("héllo")); got != "héllo" {
		t.Fatalf("got %q", got)
	}
}
