package storage

import (
	"encoding/binary"
	"fmt"
)

// EncodeInt64 encodes v as an 8-byte big-endian Value. Numeric records (bank
// balances, seat counts) in the examples and workloads use this encoding.
func EncodeInt64(v int64) Value {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

// DecodeInt64 decodes a Value previously produced by EncodeInt64.
func DecodeInt64(v Value) (int64, error) {
	if len(v) != 8 {
		return 0, fmt.Errorf("storage: cannot decode int64 from %d bytes", len(v))
	}
	return int64(binary.BigEndian.Uint64(v)), nil
}

// MustDecodeInt64 is DecodeInt64 for values known to be well-formed; it
// panics on malformed input and is intended for tests and examples.
func MustDecodeInt64(v Value) int64 {
	n, err := DecodeInt64(v)
	if err != nil {
		panic(err)
	}
	return n
}

// EncodeString encodes s as a Value.
func EncodeString(s string) Value { return Value(s) }

// DecodeString decodes a Value written by EncodeString.
func DecodeString(v Value) string { return string(v) }
