// Package storage implements the per-site key/value storage engine used by
// the local transaction managers.
//
// The engine is intentionally simple — an in-memory versioned map — but it
// exposes exactly the hooks the protocols in this repository need:
//
//   - every committed record carries the version counter and the identity of
//     the transaction that wrote it, which the history/serialization-graph
//     verifier uses to reconstruct reads-from relationships;
//   - before-images are available to the WAL for state-based rollback (the
//     "standard recovery techniques" of the paper's Section 3.2);
//   - snapshots support consistency checks in tests and failure-injection
//     experiments.
//
// A Store is safe for concurrent use. Higher-level isolation is the lock
// manager's job; the store itself only guarantees per-operation atomicity.
package storage

import (
	"fmt"
	"sort"
	"sync"
)

// Key identifies a data item at a single site.
type Key string

// Value is an opaque record payload.
type Value []byte

// Record is a stored version of a data item.
type Record struct {
	Key     Key
	Value   Value
	Version uint64 // monotonically increasing per store
	Writer  string // transaction ID that installed this version
	Deleted bool   // tombstone marker
}

// Clone returns a deep copy of the record.
func (r Record) Clone() Record {
	cp := r
	cp.Value = append(Value(nil), r.Value...)
	return cp
}

// ErrNotFound is returned when a key has no live version.
type ErrNotFound struct{ Key Key }

func (e ErrNotFound) Error() string { return fmt.Sprintf("storage: key %q not found", e.Key) }

// IsNotFound reports whether err is an ErrNotFound.
func IsNotFound(err error) bool {
	_, ok := err.(ErrNotFound)
	return ok
}

// Store is an in-memory versioned key/value store.
type Store struct {
	mu      sync.RWMutex
	records map[Key]Record
	version uint64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{records: make(map[Key]Record)}
}

// Get returns the current record for key. Tombstoned and absent keys yield
// ErrNotFound.
func (s *Store) Get(key Key) (Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.records[key]
	if !ok || rec.Deleted {
		return Record{}, ErrNotFound{Key: key}
	}
	return rec.Clone(), nil
}

// GetAny returns the current record for key even if it is a tombstone. The
// boolean reports whether any version exists at all.
func (s *Store) GetAny(key Key) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.records[key]
	if !ok {
		return Record{}, false
	}
	return rec.Clone(), true
}

// Put installs a new version of key written by txnID and returns the record
// that was replaced (zero Record with ok=false if the key was absent).
func (s *Store) Put(key Key, value Value, txnID string) (prev Record, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, ok = s.records[key]
	s.version++
	s.records[key] = Record{
		Key:     key,
		Value:   append(Value(nil), value...),
		Version: s.version,
		Writer:  txnID,
	}
	return prev, ok
}

// Delete installs a tombstone for key written by txnID and returns the
// replaced record.
func (s *Store) Delete(key Key, txnID string) (prev Record, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, ok = s.records[key]
	s.version++
	s.records[key] = Record{
		Key:     key,
		Version: s.version,
		Writer:  txnID,
		Deleted: true,
	}
	return prev, ok
}

// Restore reinstalls a previously captured record verbatim, except that the
// version counter still advances so that later readers observe a change.
// Restore is the primitive the WAL uses for undo.
func (s *Store) Restore(rec Record, txnID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version++
	installed := rec.Clone()
	installed.Version = s.version
	installed.Writer = txnID
	s.records[rec.Key] = installed
}

// Remove erases all versions of key entirely; used to undo an insert of a
// previously absent key.
func (s *Store) Remove(key Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.records, key)
}

// Len returns the number of live (non-tombstoned) keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, rec := range s.records {
		if !rec.Deleted {
			n++
		}
	}
	return n
}

// Version returns the store's current version counter.
func (s *Store) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// Keys returns the sorted list of live keys.
func (s *Store) Keys() []Key {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]Key, 0, len(s.records))
	for k, rec := range s.records {
		if !rec.Deleted {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Snapshot returns a deep copy of all live records keyed by Key.
func (s *Store) Snapshot() map[Key]Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := make(map[Key]Record, len(s.records))
	for k, rec := range s.records {
		if !rec.Deleted {
			snap[k] = rec.Clone()
		}
	}
	return snap
}

// LoadSnapshot replaces the store's contents with the given snapshot. Used
// by recovery tests to reset a site to a known state.
func (s *Store) LoadSnapshot(snap map[Key]Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records = make(map[Key]Record, len(snap))
	var maxv uint64
	for k, rec := range snap {
		s.records[k] = rec.Clone()
		if rec.Version > maxv {
			maxv = rec.Version
		}
	}
	if maxv > s.version {
		s.version = maxv
	}
}
