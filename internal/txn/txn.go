// Package txn implements the per-site local transaction manager: the DBMS
// kernel each site of the multidatabase runs.
//
// A Manager combines one site's storage engine, lock manager and write-ahead
// log. It executes three classes of transactions (Section 3 of the paper):
//
//   - independent local transactions, under strict two-phase locking;
//   - local subtransactions of global transactions — their operations are
//     recorded in the history under the global transaction's node ID, and
//     the commit protocol (package coord) decides when their locks are
//     released;
//   - compensating subtransactions, which are deliberately treated as local
//     transactions with respect to locking (Section 3.2): they follow local
//     strict 2PL and release their locks when they complete locally,
//     regardless of sibling compensating subtransactions at other sites.
//
// The manager guarantees per-site serializability (strict 2PL plus
// waits-for deadlock detection); everything above it — votes, early lock
// release, compensation, markings — is protocol policy implemented by the
// site and coordinator packages.
package txn

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"o2pc/internal/history"
	"o2pc/internal/lock"
	"o2pc/internal/storage"
	"o2pc/internal/wal"
)

// Status is the lifecycle state of a transaction handle.
type Status uint8

const (
	// StatusActive means the transaction may issue further operations.
	StatusActive Status = iota + 1
	// StatusPrepared means Prepare succeeded; only Commit/Abort may follow.
	StatusPrepared
	// StatusCommitted is terminal.
	StatusCommitted
	// StatusAborted is terminal.
	StatusAborted
)

// String returns the status mnemonic.
func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusPrepared:
		return "prepared"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Errors returned by transaction operations.
var (
	// ErrNotActive is returned when an operation is issued against a
	// transaction that is prepared or terminal.
	ErrNotActive = errors.New("txn: transaction is not active")
	// ErrAlreadyExists is returned by Begin for a duplicate transaction ID.
	ErrAlreadyExists = errors.New("txn: transaction ID already active at this site")
)

// Manager is one site's transaction kernel.
type Manager struct {
	site  string
	store *storage.Store
	locks *lock.Manager
	log   wal.Log
	rec   *history.Recorder // may be nil (recording disabled)

	mu     sync.Mutex
	active map[string]*Txn
}

// NewManager assembles a site kernel. rec may be nil to disable history
// recording (benchmarks that do not audit histories).
func NewManager(site string, store *storage.Store, locks *lock.Manager, log wal.Log, rec *history.Recorder) *Manager {
	return &Manager{
		site:   site,
		store:  store,
		locks:  locks,
		log:    log,
		rec:    rec,
		active: make(map[string]*Txn),
	}
}

// Site returns the site identifier.
func (m *Manager) Site() string { return m.site }

// Store exposes the underlying storage engine (used by site bootstrap and
// consistency checks in tests).
func (m *Manager) Store() *storage.Store { return m.store }

// Locks exposes the lock manager (for protocol-level bulk release).
func (m *Manager) Locks() *lock.Manager { return m.locks }

// Log exposes the write-ahead log.
func (m *Manager) Log() wal.Log { return m.log }

// Recorder returns the history recorder (possibly nil).
func (m *Manager) Recorder() *history.Recorder { return m.rec }

// Txn is a transaction handle bound to one site.
type Txn struct {
	m    *Manager
	id   string // history node ID: global txn ID for subtransactions
	kind history.Kind

	mu      sync.Mutex
	status  Status
	updates []wal.Record // RecUpdate records, in issue order, for undo
}

// Begin starts a transaction at this site. For subtransactions of a global
// transaction, id must be the global transaction's node ID; for local and
// compensating transactions it is the node's own ID. kind classifies the
// node in the recorded history; forward links a compensating transaction to
// the transaction it compensates for ("" otherwise).
func (m *Manager) Begin(id string, kind history.Kind, forward string) (*Txn, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.active[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAlreadyExists, id)
	}
	t := &Txn{m: m, id: id, kind: kind, status: StatusActive}
	m.active[id] = t
	recType := wal.RecBegin
	if kind == history.KindCompensating {
		recType = wal.RecCompBegin
	}
	if _, err := m.log.Append(wal.Record{Type: recType, TxnID: id, Aux: forward}); err != nil {
		delete(m.active, id)
		return nil, err
	}
	if m.rec != nil {
		m.rec.Declare(id, kind, forward)
	}
	return t, nil
}

// Lookup returns the active transaction with the given ID, if any.
func (m *Manager) Lookup(id string) (*Txn, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.active[id]
	return t, ok
}

// ActiveCount returns the number of non-terminal transactions at the site.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// CrashReset discards every live transaction and releases its locks,
// modeling the loss of volatile state on a site crash: a real restart has
// no in-memory transaction table and an empty lock manager, and recovery
// rebuilds both from the log. Nothing is logged — the abandoned
// transactions have no terminal record, which is exactly what makes
// recovery treat them as losers.
func (m *Manager) CrashReset() {
	m.mu.Lock()
	ids := make([]string, 0, len(m.active))
	for id := range m.active {
		ids = append(ids, id)
	}
	m.active = make(map[string]*Txn)
	m.mu.Unlock()
	sort.Strings(ids)
	for _, id := range ids {
		m.locks.ReleaseAll(id)
	}
}

func (m *Manager) finish(id string) {
	m.mu.Lock()
	delete(m.active, id)
	m.mu.Unlock()
}

// ID returns the transaction's history node ID.
func (t *Txn) ID() string { return t.id }

// Kind returns the transaction's history classification.
func (t *Txn) Kind() history.Kind { return t.kind }

// Status returns the transaction's current lifecycle state.
func (t *Txn) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// WriteSet returns the keys this transaction has written, in first-write
// order (used by the compensation framework to honour Theorem 2's
// write-set coverage requirement).
func (t *Txn) WriteSet() []storage.Key {
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := make(map[storage.Key]bool)
	var keys []storage.Key
	for _, u := range t.updates {
		if !seen[u.Before.Key] {
			seen[u.Before.Key] = true
			keys = append(keys, u.Before.Key)
		}
	}
	return keys
}

func (t *Txn) requireActive() error {
	if t.status != StatusActive {
		return fmt.Errorf("%w: %s is %s", ErrNotActive, t.id, t.status)
	}
	return nil
}

// acquire takes a data lock for this transaction. Subtransactions of
// global transactions bound their waits by the lock manager's wait timeout
// (a distributed 2PL deadlock is invisible to per-site detection and is
// broken by timing out); local and compensating transactions wait
// unbounded — their lock scopes are single-site, where the waits-for
// detector suffices, and compensation must never fail on a spurious
// timeout (persistence of compensation).
func (t *Txn) acquire(ctx context.Context, key storage.Key, mode lock.Mode) error {
	if t.kind == history.KindGlobal {
		return t.m.locks.AcquireBounded(ctx, t.id, key, mode)
	}
	return t.m.locks.Acquire(ctx, t.id, key, mode)
}

// Read acquires a shared lock on key and returns its current value.
// Reading an absent key is legal (returns storage.ErrNotFound) and is still
// recorded as a read of the initial state.
func (t *Txn) Read(ctx context.Context, key storage.Key) (storage.Value, error) {
	t.mu.Lock()
	if err := t.requireActive(); err != nil {
		t.mu.Unlock()
		return nil, err
	}
	t.mu.Unlock()

	if err := t.acquire(ctx, key, lock.Shared); err != nil {
		return nil, err
	}

	// Serialize the read against concurrent commits under the txn mutex so
	// a racing abort cannot interleave between lock grant and read.
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.requireActive(); err != nil {
		return nil, err
	}
	rec, err := t.m.store.Get(key)
	if err != nil {
		if t.m.rec != nil {
			t.m.rec.Record(t.m.site, t.id, history.OpRead, key, "")
		}
		return nil, err
	}
	if t.m.rec != nil {
		readFrom := rec.Writer
		if readFrom == t.id {
			readFrom = "" // reading one's own write is not a reads-from edge
		}
		t.m.rec.Record(t.m.site, t.id, history.OpRead, key, readFrom)
	}
	return rec.Value, nil
}

// Write acquires an exclusive lock on key, logs a before/after image pair
// and installs the new value.
func (t *Txn) Write(ctx context.Context, key storage.Key, value storage.Value) error {
	return t.update(ctx, key, value, false)
}

// Delete acquires an exclusive lock on key and installs a tombstone.
func (t *Txn) Delete(ctx context.Context, key storage.Key) error {
	return t.update(ctx, key, nil, true)
}

func (t *Txn) update(ctx context.Context, key storage.Key, value storage.Value, del bool) error {
	t.mu.Lock()
	if err := t.requireActive(); err != nil {
		t.mu.Unlock()
		return err
	}
	t.mu.Unlock()

	if err := t.acquire(ctx, key, lock.Exclusive); err != nil {
		return err
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.requireActive(); err != nil {
		return err
	}
	prev, existed := t.m.store.GetAny(key)
	before := wal.ImageOf(prev, existed)
	before.Key = key
	var after wal.Image
	if del {
		t.m.store.Delete(key, t.id)
		after = wal.Image{Key: key, Deleted: true, Existed: true, Writer: t.id}
	} else {
		t.m.store.Put(key, value, t.id)
		after = wal.Image{Key: key, Value: append(storage.Value(nil), value...), Existed: true, Writer: t.id}
	}
	rec := wal.Record{Type: wal.RecUpdate, TxnID: t.id, Before: before, After: after}
	if _, err := t.m.log.Append(rec); err != nil {
		return err
	}
	t.updates = append(t.updates, rec)
	if t.m.rec != nil {
		t.m.rec.Record(t.m.site, t.id, history.OpWrite, key, "")
	}
	return nil
}

// ReadForUpdate reads key under an exclusive lock, for read-modify-write
// sequences: taking the write lock up front avoids the classic S-to-X
// upgrade deadlock between two concurrent updaters of the same key.
func (t *Txn) ReadForUpdate(ctx context.Context, key storage.Key) (storage.Value, error) {
	t.mu.Lock()
	if err := t.requireActive(); err != nil {
		t.mu.Unlock()
		return nil, err
	}
	t.mu.Unlock()

	if err := t.acquire(ctx, key, lock.Exclusive); err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.requireActive(); err != nil {
		return nil, err
	}
	rec, err := t.m.store.Get(key)
	if err != nil {
		if t.m.rec != nil {
			t.m.rec.Record(t.m.site, t.id, history.OpRead, key, "")
		}
		return nil, err
	}
	if t.m.rec != nil {
		readFrom := rec.Writer
		if readFrom == t.id {
			readFrom = ""
		}
		t.m.rec.Record(t.m.site, t.id, history.OpRead, key, readFrom)
	}
	return rec.Value, nil
}

// ReadInt64 reads key as an int64 (missing keys read as 0).
func (t *Txn) ReadInt64(ctx context.Context, key storage.Key) (int64, error) {
	v, err := t.Read(ctx, key)
	if err != nil {
		if storage.IsNotFound(err) {
			return 0, nil
		}
		return 0, err
	}
	return storage.DecodeInt64(v)
}

// ReadInt64ForUpdate reads key as an int64 under an exclusive lock
// (missing keys read as 0); pair it with WriteInt64 for increments.
func (t *Txn) ReadInt64ForUpdate(ctx context.Context, key storage.Key) (int64, error) {
	v, err := t.ReadForUpdate(ctx, key)
	if err != nil {
		if storage.IsNotFound(err) {
			return 0, nil
		}
		return 0, err
	}
	return storage.DecodeInt64(v)
}

// WriteInt64 writes key as an int64.
func (t *Txn) WriteInt64(ctx context.Context, key storage.Key, v int64) error {
	return t.Write(ctx, key, storage.EncodeInt64(v))
}

// Updates returns the transaction's WAL update records (with before and
// after images) in issue order; the O2PC participant captures them at the
// YES vote so compensation can run later.
func (t *Txn) Updates() []wal.Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]wal.Record, len(t.updates))
	copy(out, t.updates)
	return out
}

// Prepare logs the YES vote durably, recording the coordinator's node name
// so crash recovery can resume the decision inquiry. The transaction may no
// longer issue operations; only Commit or Abort may follow. Lock release
// policy is the caller's (protocol's) decision.
func (t *Txn) Prepare(coord string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.requireActive(); err != nil {
		return err
	}
	if _, err := t.m.log.Append(wal.Record{Type: wal.RecPrepared, TxnID: t.id, Aux: coord}); err != nil {
		return err
	}
	if err := t.m.log.Sync(); err != nil {
		return err
	}
	t.status = StatusPrepared
	return nil
}

// Commit logs the local commit and releases all locks. It does not set a
// history fate: for subtransactions the global fate is the coordinator's to
// record, while local and compensating transactions are finalized by their
// drivers (see Manager.CommitLocal / package compensate).
func (t *Txn) Commit() error {
	t.mu.Lock()
	if t.status != StatusActive && t.status != StatusPrepared {
		st := t.status
		t.mu.Unlock()
		return fmt.Errorf("%w: %s is %s", ErrNotActive, t.id, st)
	}
	recType := wal.RecCommit
	if t.kind == history.KindCompensating {
		recType = wal.RecCompEnd
	}
	if _, err := t.m.log.Append(wal.Record{Type: recType, TxnID: t.id}); err != nil {
		t.mu.Unlock()
		return err
	}
	t.status = StatusCommitted
	t.mu.Unlock()

	t.m.locks.ReleaseAll(t.id)
	t.m.finish(t.id)
	return nil
}

// CommitDurable is Commit with a durability barrier: the commit record is
// synced to stable storage before any lock is released. This is the O2PC
// exposure point — Theorem 2's write-ahead discipline requires the record
// of Ti's writes to be durable before the early lock release exposes them
// to other transactions (a reader could otherwise commit against state
// whose provenance a crash then erases). Under a wal.GroupCommitLog the
// sync coalesces with concurrent committers; the wait still completes
// before this transaction's locks fall.
func (t *Txn) CommitDurable() error {
	t.mu.Lock()
	if t.status != StatusActive && t.status != StatusPrepared {
		st := t.status
		t.mu.Unlock()
		return fmt.Errorf("%w: %s is %s", ErrNotActive, t.id, st)
	}
	recType := wal.RecCommit
	if t.kind == history.KindCompensating {
		recType = wal.RecCompEnd
	}
	if _, err := t.m.log.Append(wal.Record{Type: recType, TxnID: t.id}); err != nil {
		t.mu.Unlock()
		return err
	}
	t.status = StatusCommitted
	t.mu.Unlock()

	err := t.m.log.Sync()
	// Locks are released even when the sync fails (a failing log means the
	// site is shutting down or broken; wedging every waiter helps nobody),
	// but the error is reported so the vote does not claim durability.
	t.m.locks.ReleaseAll(t.id)
	t.m.finish(t.id)
	return err
}

// ReleaseLocks drops every lock the transaction holds without changing its
// state. This is the O2PC early-release step: the site votes YES, locally
// commits the subtransaction, and releases its locks at once.
func (t *Txn) ReleaseLocks() { t.m.locks.ReleaseAll(t.id) }

// ReleaseSharedLocks drops only shared locks (the read-lock-at-VOTE-REQ
// optimization of Section 2; ablation A1).
func (t *Txn) ReleaseSharedLocks() { t.m.locks.ReleaseShared(t.id) }

// Abort rolls the transaction back from its logged before-images and
// releases all locks.
//
// attributeTo controls reads-from attribution of the restored versions and
// history recording of the undo writes:
//
//   - "" (local transactions): before-images keep their original writers
//     and no undo operations are recorded — the aborted transaction simply
//     leaves the committed projection;
//   - a compensating-transaction node ID (global transactions rolled back
//     at a NO-voting site): the restored versions are attributed to that
//     CT node and the undo writes are recorded under it, reflecting the
//     paper's modeling of standard roll-back as a compensating
//     subtransaction (so that Lemma 5's CTi -> Tj edges materialize).
func (t *Txn) Abort(attributeTo string) error {
	t.mu.Lock()
	if t.status == StatusCommitted {
		t.mu.Unlock()
		return fmt.Errorf("txn: cannot abort committed transaction %s", t.id)
	}
	if t.status == StatusAborted {
		t.mu.Unlock()
		return nil
	}
	updates := t.updates

	if attributeTo != "" && t.m.rec != nil {
		t.m.rec.Declare(attributeTo, history.KindCompensating, t.id)
		// Record the undo writes in reverse order under the CT node.
		for i := len(updates) - 1; i >= 0; i-- {
			t.m.rec.Record(t.m.site, attributeTo, history.OpWrite, updates[i].Before.Key, "")
		}
	}
	wal.ApplyUndo(t.m.store, updates, attributeTo)
	if _, err := t.m.log.Append(wal.Record{Type: wal.RecAbort, TxnID: t.id, Aux: attributeTo}); err != nil {
		t.mu.Unlock()
		return err
	}
	t.status = StatusAborted
	t.mu.Unlock()

	t.m.locks.AbortWaiter(t.id)
	t.m.locks.ReleaseAll(t.id)
	t.m.finish(t.id)
	return nil
}

// RunLocal executes fn as an independent local transaction under strict
// 2PL, retrying on deadlock up to maxRetries times. On success the
// transaction commits and its fate is recorded; on error it is rolled back.
func (m *Manager) RunLocal(ctx context.Context, id string, maxRetries int, fn func(t *Txn) error) error {
	var lastErr error
	for attempt := 0; attempt <= maxRetries; attempt++ {
		t, err := m.Begin(id, history.KindLocal, "")
		if err != nil {
			return err
		}
		err = fn(t)
		if err == nil {
			if err := t.Commit(); err != nil {
				return err
			}
			if m.rec != nil {
				m.rec.SetFate(id, history.FateCommitted)
			}
			return nil
		}
		//o2pcvet:ignore errflow -- the caller gets fn's error; a failed undo append surfaces at the next Sync on the shared log
		_ = t.Abort("")
		if m.rec != nil {
			m.rec.SetFate(id, history.FateAborted)
		}
		lastErr = err
		if !errors.Is(err, lock.ErrDeadlock) {
			return err
		}
	}
	return lastErr
}
