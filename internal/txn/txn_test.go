package txn

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"o2pc/internal/history"
	"o2pc/internal/lock"
	"o2pc/internal/storage"
	"o2pc/internal/wal"
)

func newMgr(rec *history.Recorder) *Manager {
	return NewManager("s0", storage.NewStore(), lock.NewManager(), wal.NewMemoryLog(), rec)
}

func bg() context.Context { return context.Background() }

func TestBeginDuplicateID(t *testing.T) {
	m := newMgr(nil)
	if _, err := m.Begin("T1", history.KindGlobal, ""); err != nil {
		t.Fatalf("begin: %v", err)
	}
	if _, err := m.Begin("T1", history.KindGlobal, ""); !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("duplicate begin err = %v", err)
	}
}

func TestWriteReadOwn(t *testing.T) {
	m := newMgr(nil)
	tx, _ := m.Begin("T1", history.KindLocal, "")
	if err := tx.Write(bg(), "a", storage.Value("v")); err != nil {
		t.Fatalf("write: %v", err)
	}
	v, err := tx.Read(bg(), "a")
	if err != nil || string(v) != "v" {
		t.Fatalf("read own write: %q %v", v, err)
	}
}

func TestCommitMakesVisibleAndReleases(t *testing.T) {
	m := newMgr(nil)
	tx, _ := m.Begin("T1", history.KindLocal, "")
	_ = tx.Write(bg(), "a", storage.Value("v"))
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if m.Locks().HoldsAny("T1") {
		t.Fatalf("locks survived commit")
	}
	if m.ActiveCount() != 0 {
		t.Fatalf("active count = %d", m.ActiveCount())
	}
	rec, err := m.Store().Get("a")
	if err != nil || string(rec.Value) != "v" {
		t.Fatalf("committed value missing")
	}
}

func TestAbortRestoresBeforeImages(t *testing.T) {
	m := newMgr(nil)
	m.Store().Put("a", storage.Value("orig"), "T0")
	tx, _ := m.Begin("T1", history.KindLocal, "")
	_ = tx.Write(bg(), "a", storage.Value("new"))
	_ = tx.Write(bg(), "b", storage.Value("inserted"))
	if err := tx.Abort(""); err != nil {
		t.Fatalf("abort: %v", err)
	}
	rec, _ := m.Store().Get("a")
	if string(rec.Value) != "orig" || rec.Writer != "T0" {
		t.Fatalf("a = %+v, want orig/T0", rec)
	}
	if _, err := m.Store().Get("b"); !storage.IsNotFound(err) {
		t.Fatalf("inserted key survived abort")
	}
	if m.Locks().HoldsAny("T1") {
		t.Fatalf("locks survived abort")
	}
}

func TestAbortAttributedToCompensation(t *testing.T) {
	rec := history.NewRecorder()
	m := newMgr(rec)
	m.Store().Put("a", storage.Value("orig"), "T0")
	tx, _ := m.Begin("T1", history.KindGlobal, "")
	_ = tx.Write(bg(), "a", storage.Value("new"))
	if err := tx.Abort("CTT1"); err != nil {
		t.Fatalf("abort: %v", err)
	}
	r, _ := m.Store().Get("a")
	if r.Writer != "CTT1" {
		t.Fatalf("restored writer = %q, want CTT1", r.Writer)
	}
	h := rec.Snapshot()
	if h.KindOf("CTT1") != history.KindCompensating {
		t.Fatalf("CT node not declared compensating")
	}
	if h.Txns["CTT1"].Forward != "T1" {
		t.Fatalf("CT forward link = %q", h.Txns["CTT1"].Forward)
	}
	// The undo write must appear in the history under the CT node.
	found := false
	for _, op := range h.Ops {
		if op.Txn == "CTT1" && op.Type == history.OpWrite && op.Key == "a" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no undo write recorded for CTT1: %+v", h.Ops)
	}
}

func TestAbortUnattributedRecordsNoUndoOps(t *testing.T) {
	rec := history.NewRecorder()
	m := newMgr(rec)
	tx, _ := m.Begin("L1", history.KindLocal, "")
	_ = tx.Write(bg(), "a", storage.Value("v"))
	_ = tx.Abort("")
	h := rec.Snapshot()
	for _, op := range h.Ops {
		if op.Txn != "L1" {
			t.Fatalf("unexpected history node %q", op.Txn)
		}
	}
}

func TestDoubleAbortIsIdempotent(t *testing.T) {
	m := newMgr(nil)
	tx, _ := m.Begin("T1", history.KindLocal, "")
	_ = tx.Write(bg(), "a", storage.Value("v"))
	if err := tx.Abort(""); err != nil {
		t.Fatalf("first abort: %v", err)
	}
	if err := tx.Abort(""); err != nil {
		t.Fatalf("second abort: %v", err)
	}
}

func TestAbortAfterCommitFails(t *testing.T) {
	m := newMgr(nil)
	tx, _ := m.Begin("T1", history.KindLocal, "")
	_ = tx.Commit()
	if err := tx.Abort(""); err == nil {
		t.Fatalf("abort after commit succeeded")
	}
}

func TestOperationsAfterCommitFail(t *testing.T) {
	m := newMgr(nil)
	tx, _ := m.Begin("T1", history.KindLocal, "")
	_ = tx.Commit()
	if err := tx.Write(bg(), "a", storage.Value("v")); !errors.Is(err, ErrNotActive) {
		t.Fatalf("write after commit: %v", err)
	}
	if _, err := tx.Read(bg(), "a"); !errors.Is(err, ErrNotActive) {
		t.Fatalf("read after commit: %v", err)
	}
}

func TestPrepareBlocksFurtherOps(t *testing.T) {
	m := newMgr(nil)
	tx, _ := m.Begin("T1", history.KindGlobal, "")
	_ = tx.Write(bg(), "a", storage.Value("v"))
	if err := tx.Prepare("c0"); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	if tx.Status() != StatusPrepared {
		t.Fatalf("status = %v", tx.Status())
	}
	if err := tx.Write(bg(), "b", storage.Value("v")); !errors.Is(err, ErrNotActive) {
		t.Fatalf("write after prepare: %v", err)
	}
	// Commit after prepare is the decision path.
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit after prepare: %v", err)
	}
}

func TestPrepareLogsCoordinatorName(t *testing.T) {
	m := newMgr(nil)
	tx, _ := m.Begin("T1", history.KindGlobal, "")
	_ = tx.Prepare("coordX")
	recs, _ := m.Log().Records()
	found := false
	for _, r := range recs {
		if r.Type == wal.RecPrepared && r.Aux == "coordX" {
			found = true
		}
	}
	if !found {
		t.Fatalf("prepared record missing coordinator name: %+v", recs)
	}
}

func TestReadFromTracking(t *testing.T) {
	rec := history.NewRecorder()
	m := newMgr(rec)
	w, _ := m.Begin("T1", history.KindGlobal, "")
	_ = w.Write(bg(), "a", storage.Value("v"))
	_ = w.Commit()

	r, _ := m.Begin("T2", history.KindGlobal, "")
	_, _ = r.Read(bg(), "a")
	_ = r.Commit()

	h := rec.Snapshot()
	var readOp *history.Op
	for i, op := range h.Ops {
		if op.Txn == "T2" && op.Type == history.OpRead {
			readOp = &h.Ops[i]
		}
	}
	if readOp == nil || readOp.ReadFrom != "T1" {
		t.Fatalf("read-from = %+v, want T1", readOp)
	}
}

func TestReadOwnWriteNotAReadsFromEdge(t *testing.T) {
	rec := history.NewRecorder()
	m := newMgr(rec)
	tx, _ := m.Begin("T1", history.KindGlobal, "")
	_ = tx.Write(bg(), "a", storage.Value("v"))
	_, _ = tx.Read(bg(), "a")
	_ = tx.Commit()
	h := rec.Snapshot()
	for _, op := range h.Ops {
		if op.Type == history.OpRead && op.ReadFrom == "T1" && op.Txn == "T1" {
			t.Fatalf("self reads-from edge recorded")
		}
	}
}

func TestWriteSetDeduplicated(t *testing.T) {
	m := newMgr(nil)
	tx, _ := m.Begin("T1", history.KindLocal, "")
	_ = tx.Write(bg(), "a", storage.Value("1"))
	_ = tx.Write(bg(), "a", storage.Value("2"))
	_ = tx.Write(bg(), "b", storage.Value("3"))
	ws := tx.WriteSet()
	if len(ws) != 2 || ws[0] != "a" || ws[1] != "b" {
		t.Fatalf("write set = %v", ws)
	}
}

func TestInt64Helpers(t *testing.T) {
	m := newMgr(nil)
	tx, _ := m.Begin("T1", history.KindLocal, "")
	if v, err := tx.ReadInt64(bg(), "n"); err != nil || v != 0 {
		t.Fatalf("missing int reads as %d (%v), want 0", v, err)
	}
	_ = tx.WriteInt64(bg(), "n", 42)
	if v, _ := tx.ReadInt64(bg(), "n"); v != 42 {
		t.Fatalf("n = %d", v)
	}
}

func TestDeleteAndUndelete(t *testing.T) {
	m := newMgr(nil)
	m.Store().Put("a", storage.Value("v"), "T0")
	tx, _ := m.Begin("T1", history.KindLocal, "")
	_ = tx.Delete(bg(), "a")
	if _, err := tx.Read(bg(), "a"); !storage.IsNotFound(err) {
		t.Fatalf("deleted key readable in same txn")
	}
	_ = tx.Abort("")
	if rec, err := m.Store().Get("a"); err != nil || string(rec.Value) != "v" {
		t.Fatalf("delete not undone: %v %v", rec, err)
	}
}

func TestIsolationWriterBlocksReader(t *testing.T) {
	m := newMgr(nil)
	w, _ := m.Begin("T1", history.KindLocal, "")
	_ = w.Write(bg(), "a", storage.Value("dirty"))

	read := make(chan string, 1)
	go func() {
		r, _ := m.Begin("T2", history.KindLocal, "")
		v, err := r.Read(bg(), "a")
		if err != nil {
			read <- "err:" + err.Error()
			return
		}
		_ = r.Commit()
		read <- string(v)
	}()
	select {
	case v := <-read:
		t.Fatalf("reader saw %q while writer active (dirty read)", v)
	case <-time.After(20 * time.Millisecond):
	}
	_ = w.Commit()
	if v := <-read; v != "dirty" {
		t.Fatalf("reader saw %q after commit", v)
	}
}

func TestRunLocalCommits(t *testing.T) {
	rec := history.NewRecorder()
	m := newMgr(rec)
	err := m.RunLocal(bg(), "L1", 3, func(tx *Txn) error {
		return tx.WriteInt64(bg(), "n", 7)
	})
	if err != nil {
		t.Fatalf("RunLocal: %v", err)
	}
	h := rec.Snapshot()
	if h.FateOf("L1") != history.FateCommitted {
		t.Fatalf("fate = %v", h.FateOf("L1"))
	}
}

func TestRunLocalPropagatesAppError(t *testing.T) {
	m := newMgr(nil)
	m.Store().Put("a", storage.Value("v"), "T0")
	boom := errors.New("boom")
	err := m.RunLocal(bg(), "L1", 3, func(tx *Txn) error {
		_ = tx.Write(bg(), "a", storage.Value("x"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if rec, _ := m.Store().Get("a"); string(rec.Value) != "v" {
		t.Fatalf("failed local txn left effects")
	}
}

func TestRunLocalRetriesDeadlock(t *testing.T) {
	m := newMgr(nil)
	m.Store().Put("a", storage.EncodeInt64(0), "T0")
	m.Store().Put("b", storage.EncodeInt64(0), "T0")
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			keys := []storage.Key{"a", "b"}
			if g%2 == 1 {
				keys[0], keys[1] = keys[1], keys[0]
			}
			errs[g] = m.RunLocal(bg(), fmt.Sprintf("L%d", g), 25, func(tx *Txn) error {
				for _, k := range keys {
					v, err := tx.ReadInt64(bg(), k)
					if err != nil {
						return err
					}
					if err := tx.WriteInt64(bg(), k, v+1); err != nil {
						return err
					}
				}
				return nil
			})
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("client %d failed despite retries: %v", g, err)
		}
	}
	a, _ := m.Store().Get("a")
	if storage.MustDecodeInt64(a.Value) != 8 {
		t.Fatalf("a = %d, want 8 (lost update)", storage.MustDecodeInt64(a.Value))
	}
}

func TestUpdatesReturnsCopies(t *testing.T) {
	m := newMgr(nil)
	tx, _ := m.Begin("T1", history.KindGlobal, "")
	_ = tx.Write(bg(), "a", storage.Value("v"))
	ups := tx.Updates()
	if len(ups) != 1 || ups[0].Before.Key != "a" {
		t.Fatalf("updates = %+v", ups)
	}
	ups[0].TxnID = "mutated"
	if tx.Updates()[0].TxnID != "T1" {
		t.Fatalf("internal updates mutated through accessor")
	}
}

func TestStatusStrings(t *testing.T) {
	for st, want := range map[Status]string{
		StatusActive: "active", StatusPrepared: "prepared",
		StatusCommitted: "committed", StatusAborted: "aborted",
	} {
		if st.String() != want {
			t.Errorf("%v.String() = %q", st, st.String())
		}
	}
}

func TestAccessors(t *testing.T) {
	rec := history.NewRecorder()
	m := newMgr(rec)
	if m.Site() != "s0" || m.Recorder() != rec {
		t.Fatalf("accessors wrong")
	}
	tx, _ := m.Begin("T1", history.KindGlobal, "")
	if tx.ID() != "T1" || tx.Kind() != history.KindGlobal {
		t.Fatalf("txn accessors wrong")
	}
	got, ok := m.Lookup("T1")
	if !ok || got != tx {
		t.Fatalf("Lookup failed")
	}
	if _, ok := m.Lookup("ghost"); ok {
		t.Fatalf("phantom lookup")
	}
	_ = tx.Commit()
	if _, ok := m.Lookup("T1"); ok {
		t.Fatalf("finished txn still active")
	}
}

func TestReadForUpdateTakesExclusive(t *testing.T) {
	m := newMgr(nil)
	m.Store().Put("a", storage.EncodeInt64(7), "T0")
	tx, _ := m.Begin("T1", history.KindGlobal, "")
	v, err := tx.ReadForUpdate(bg(), "a")
	if err != nil || storage.MustDecodeInt64(v) != 7 {
		t.Fatalf("ReadForUpdate: %v %v", v, err)
	}
	if m.Locks().Held("T1")["a"] != lock.Exclusive {
		t.Fatalf("mode = %v, want X", m.Locks().Held("T1")["a"])
	}
	// A concurrent updater cannot even read-for-update (no upgrade race).
	ctx, cancel := context.WithTimeout(bg(), 20*time.Millisecond)
	defer cancel()
	t2, _ := m.Begin("T2", history.KindGlobal, "")
	if _, err := t2.ReadInt64ForUpdate(ctx, "a"); err == nil {
		t.Fatalf("second updater acquired X concurrently")
	}
	_ = t2.Abort("")
	_ = tx.Commit()
}

func TestReadForUpdateMissingKey(t *testing.T) {
	m := newMgr(nil)
	tx, _ := m.Begin("T1", history.KindGlobal, "")
	if v, err := tx.ReadInt64ForUpdate(bg(), "nope"); err != nil || v != 0 {
		t.Fatalf("missing key for-update: %d %v", v, err)
	}
	// Lock must still be exclusive so the subsequent write is safe.
	if m.Locks().Held("T1")["nope"] != lock.Exclusive {
		t.Fatalf("no X lock on missing key")
	}
	_ = tx.Commit()
}

func TestReadForUpdateNotActive(t *testing.T) {
	m := newMgr(nil)
	tx, _ := m.Begin("T1", history.KindGlobal, "")
	_ = tx.Commit()
	if _, err := tx.ReadForUpdate(bg(), "a"); !errors.Is(err, ErrNotActive) {
		t.Fatalf("err = %v", err)
	}
}

func TestReleaseLocksEarly(t *testing.T) {
	m := newMgr(nil)
	tx, _ := m.Begin("T1", history.KindGlobal, "")
	_ = tx.Write(bg(), "w", storage.Value("v"))
	_, _ = tx.Read(bg(), "r")
	tx.ReleaseSharedLocks()
	held := m.Locks().Held("T1")
	if _, ok := held["r"]; ok {
		t.Fatalf("S lock survived ReleaseSharedLocks")
	}
	if held["w"] != lock.Exclusive {
		t.Fatalf("X lock dropped")
	}
	tx.ReleaseLocks()
	if m.Locks().HoldsAny("T1") {
		t.Fatalf("locks survived ReleaseLocks")
	}
}

func TestCommitAfterAbortFails(t *testing.T) {
	m := newMgr(nil)
	tx, _ := m.Begin("T1", history.KindLocal, "")
	_ = tx.Abort("")
	if err := tx.Commit(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("commit after abort: %v", err)
	}
}
