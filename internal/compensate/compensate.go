// Package compensate implements the compensating-transaction framework of
// the paper's Section 3.2.
//
// A compensating transaction CTi semantically undoes a forward transaction
// Ti whose updates have already been exposed, without cascading aborts of
// transactions that read from Ti. This package provides:
//
//   - inverse-plan derivation for the two decomposition models: the
//     restricted model (semantic inverses drawn from the operation
//     repertoire — an unconditional Add(-delta) undoes Add(delta) while
//     leaving interleaved updates intact) and the generic model
//     (before-image restoration run as a fresh transaction);
//   - a compensator registry for application-defined counter-tasks
//     (CompCustom);
//   - Run, the persistence-of-compensation executor: once compensation is
//     initiated it must complete, so Run retries through deadlocks and
//     transient failures indefinitely (bounded only by its context);
//   - optional write-set coverage enforcement, matching Theorem 2's
//     premise that CTi writes at least every data item Ti wrote.
//
// With respect to locking, compensating transactions are deliberately local
// transactions: they follow the site's strict 2PL and release their locks
// at local completion, independent of sibling compensating subtransactions
// at other sites (Section 4's first two bullets).
package compensate

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"o2pc/internal/history"
	"o2pc/internal/lock"
	"o2pc/internal/proto"
	"o2pc/internal/sim"
	"o2pc/internal/storage"
	"o2pc/internal/trace"
	"o2pc/internal/txn"
	"o2pc/internal/wal"
)

// Forward describes the forward subtransaction being compensated for, as
// the site observed it.
type Forward struct {
	// TxnID is the forward (global) transaction's node ID.
	TxnID string
	// Ops is the operation list the subtransaction executed.
	Ops []proto.Operation
	// Updates are the forward subtransaction's WAL update records (with
	// before-images) in issue order.
	Updates []wal.Record
}

// Func is an application-defined compensator. It runs inside the
// compensating transaction t and must be idempotent under retry (the
// persistence loop may re-execute it after a deadlock abort).
type Func func(ctx context.Context, t *txn.Txn, f Forward) error

// Registry maps compensator names to functions (the "well-defined
// repertoire" interface of the restricted model).
type Registry struct {
	mu sync.RWMutex
	m  map[string]Func
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{m: make(map[string]Func)} }

// Register installs a compensator under name, replacing any previous one.
func (r *Registry) Register(name string, fn Func) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[name] = fn
}

// Lookup returns the compensator registered under name.
func (r *Registry) Lookup(name string) (Func, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.m[name]
	return fn, ok
}

// SemanticPlan executes the restricted-model inverse of the forward
// operations, in reverse order: Add(delta) inverts to an unconditional
// Add(-delta); Write and Delete, having no semantic inverse in the
// repertoire, restore the forward before-image of the key; reads invert to
// nothing.
func SemanticPlan(ctx context.Context, t *txn.Txn, f Forward) error {
	// Index the first before-image per key for Write/Delete inversion.
	before := make(map[storage.Key]wal.Image)
	for _, u := range f.Updates {
		if _, ok := before[u.Before.Key]; !ok {
			before[u.Before.Key] = u.Before
		}
	}
	for i := len(f.Ops) - 1; i >= 0; i-- {
		op := f.Ops[i]
		switch op.Kind {
		case proto.OpRead:
			// nothing to undo
		case proto.OpAdd:
			cur, err := t.ReadInt64ForUpdate(ctx, storage.Key(op.Key))
			if err != nil {
				return err
			}
			if err := t.WriteInt64(ctx, storage.Key(op.Key), cur-op.Delta); err != nil {
				return err
			}
		case proto.OpWrite, proto.OpDelete:
			if err := restoreImage(ctx, t, storage.Key(op.Key), before); err != nil {
				return err
			}
		default:
			return fmt.Errorf("compensate: cannot invert operation %v", op.Kind)
		}
	}
	return nil
}

// BeforeImagePlan executes the generic-model compensation: restore every
// written key's before-image, in reverse update order, as ordinary writes
// of a new transaction (readers of the forward values are not cascaded).
func BeforeImagePlan(ctx context.Context, t *txn.Txn, f Forward) error {
	before := make(map[storage.Key]wal.Image)
	for _, u := range f.Updates {
		if _, ok := before[u.Before.Key]; !ok {
			before[u.Before.Key] = u.Before
		}
	}
	for i := len(f.Updates) - 1; i >= 0; i-- {
		key := f.Updates[i].Before.Key
		if err := restoreImage(ctx, t, key, before); err != nil {
			return err
		}
	}
	return nil
}

func restoreImage(ctx context.Context, t *txn.Txn, key storage.Key, before map[storage.Key]wal.Image) error {
	img, ok := before[key]
	if !ok {
		return nil
	}
	if !img.Existed || img.Deleted {
		return t.Delete(ctx, key)
	}
	return t.Write(ctx, key, img.Value)
}

// PlanFor resolves the compensation plan for a mode, consulting reg for
// CompCustom. CompNone yields an error: non-compensatable subtransactions
// must never reach compensation (their sites hold locks until the
// decision).
func PlanFor(mode proto.CompMode, compensator string, reg *Registry) (Func, error) {
	switch mode {
	case proto.CompSemantic:
		return SemanticPlan, nil
	case proto.CompBeforeImage:
		return BeforeImagePlan, nil
	case proto.CompCustom:
		if reg == nil {
			return nil, errors.New("compensate: no registry for custom compensator")
		}
		fn, ok := reg.Lookup(compensator)
		if !ok {
			return nil, fmt.Errorf("compensate: unknown compensator %q", compensator)
		}
		return fn, nil
	case proto.CompNone:
		return nil, errors.New("compensate: subtransaction is non-compensatable")
	default:
		return nil, fmt.Errorf("compensate: unknown mode %v", mode)
	}
}

// Options tunes Run.
type Options struct {
	// RetryBackoff is the initial delay between attempts after a conflict
	// abort; it doubles up to 32x. Defaults to 100 microseconds.
	RetryBackoff time.Duration
	// EnsureWriteCoverage forces CTi's write set to cover Ti's (Theorem
	// 2's premise) by rewriting any forward-written key the plan did not
	// touch with its current value.
	EnsureWriteCoverage bool
	// Finalize runs inside the compensating transaction after the plan
	// (and after coverage enforcement). Protocol P1 uses it to write the
	// sitemark as the last operation of CTik (rule R2).
	Finalize func(ctx context.Context, t *txn.Txn) error
	// Clock times the retry backoff. Nil defaults to the real clock.
	Clock sim.Clock
	// Tracer, when non-nil, records the compensation run (begin, each
	// retry, end) as events at TraceNode.
	Tracer *trace.Tracer
	// TraceNode is the node name events are attributed to (the site
	// running the compensation).
	TraceNode string
}

// CTID returns the conventional compensating-transaction node ID for a
// forward transaction ID.
func CTID(forward string) string { return "CT" + forward }

// Run executes compensation for forward at the given site kernel,
// honouring persistence of compensation: deadlock victims and transient
// failures are retried until ctx expires. The compensating transaction is
// recorded in the history under CTID(forward.TxnID) with kind
// KindCompensating.
func Run(ctx context.Context, mgr *txn.Manager, forward Forward, plan Func, opts Options) error {
	backoff := opts.RetryBackoff
	if backoff <= 0 {
		backoff = 100 * time.Microsecond
	}
	maxBackoff := backoff * 32
	clock := sim.OrReal(opts.Clock)
	ctID := CTID(forward.TxnID)
	opts.Tracer.Emit(opts.TraceNode, trace.EvCompBegin, forward.TxnID, "", ctID)

	for attempt := 0; ; attempt++ {
		err := runOnce(ctx, mgr, ctID, forward, plan, opts)
		if err == nil {
			if rec := mgr.Recorder(); rec != nil {
				rec.SetFate(ctID, history.FateCommitted)
			}
			opts.Tracer.Emit(opts.TraceNode, trace.EvCompEnd, forward.TxnID, "", ctID)
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if !retryable(err) {
			return fmt.Errorf("compensate: %s at %s failed permanently: %w", ctID, mgr.Site(), err)
		}
		opts.Tracer.Emit(opts.TraceNode, trace.EvCompRetry, forward.TxnID, "", err.Error())
		if err := clock.Sleep(ctx, backoff); err != nil {
			return err
		}
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}

func runOnce(ctx context.Context, mgr *txn.Manager, ctID string, forward Forward, plan Func, opts Options) error {
	t, err := mgr.Begin(ctID, history.KindCompensating, forward.TxnID)
	if err != nil {
		return err
	}
	// errors.Join keeps the primary failure first (errors.Is still
	// classifies it for the retry loop) while surfacing an abort that
	// could not release its locks instead of swallowing it.
	if err := plan(ctx, t, forward); err != nil {
		return errors.Join(err, t.Abort(""))
	}
	if opts.EnsureWriteCoverage {
		if err := ensureCoverage(ctx, t, forward); err != nil {
			return errors.Join(err, t.Abort(""))
		}
	}
	if opts.Finalize != nil {
		if err := opts.Finalize(ctx, t); err != nil {
			return errors.Join(err, t.Abort(""))
		}
	}
	return t.Commit()
}

// ensureCoverage rewrites every forward-written key the compensating
// transaction has not written, with its current value, so that CTi's write
// set covers Ti's.
func ensureCoverage(ctx context.Context, t *txn.Txn, forward Forward) error {
	written := make(map[storage.Key]bool)
	for _, k := range t.WriteSet() {
		written[k] = true
	}
	for _, u := range forward.Updates {
		key := u.Before.Key
		if written[key] {
			continue
		}
		written[key] = true
		v, err := t.ReadForUpdate(ctx, key)
		if err != nil {
			if storage.IsNotFound(err) {
				if err := t.Delete(ctx, key); err != nil {
					return err
				}
				continue
			}
			return err
		}
		if err := t.Write(ctx, key, v); err != nil {
			return err
		}
	}
	return nil
}

// retryable classifies errors the persistence loop should absorb.
func retryable(err error) bool {
	return errors.Is(err, lock.ErrDeadlock) ||
		errors.Is(err, lock.ErrAborted) ||
		errors.Is(err, txn.ErrAlreadyExists)
}
