package compensate

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"o2pc/internal/history"
	"o2pc/internal/lock"
	"o2pc/internal/proto"
	"o2pc/internal/storage"
	"o2pc/internal/txn"
	"o2pc/internal/wal"
)

func newMgr(rec *history.Recorder) *txn.Manager {
	return txn.NewManager("s0", storage.NewStore(), lock.NewManager(), wal.NewMemoryLog(), rec)
}

func bg() context.Context { return context.Background() }

// runForward executes ops as a forward subtransaction, locally commits it,
// and returns the Forward descriptor (as the O2PC site would capture it).
func runForward(t *testing.T, m *txn.Manager, id string, ops []proto.Operation) Forward {
	t.Helper()
	tx, err := m.Begin(id, history.KindGlobal, "")
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	for _, op := range ops {
		key := storage.Key(op.Key)
		switch op.Kind {
		case proto.OpRead:
			if _, err := tx.Read(bg(), key); err != nil && !storage.IsNotFound(err) {
				t.Fatalf("read: %v", err)
			}
		case proto.OpWrite:
			if err := tx.Write(bg(), key, op.Value); err != nil {
				t.Fatalf("write: %v", err)
			}
		case proto.OpDelete:
			if err := tx.Delete(bg(), key); err != nil {
				t.Fatalf("delete: %v", err)
			}
		case proto.OpAdd:
			v, err := tx.ReadInt64(bg(), key)
			if err != nil {
				t.Fatalf("readint: %v", err)
			}
			if err := tx.WriteInt64(bg(), key, v+op.Delta); err != nil {
				t.Fatalf("writeint: %v", err)
			}
		}
	}
	fwd := Forward{TxnID: id, Ops: ops, Updates: tx.Updates()}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	return fwd
}

func TestSemanticPlanInvertsAddWithoutClobbering(t *testing.T) {
	m := newMgr(nil)
	m.Store().Put("n", storage.EncodeInt64(100), "init")
	fwd := runForward(t, m, "T1", []proto.Operation{proto.Add("n", 30)})

	// An interleaved transaction also updates n after T1 locally commits.
	if err := m.RunLocal(bg(), "L1", 0, func(tx *txn.Txn) error {
		v, _ := tx.ReadInt64(bg(), "n")
		return tx.WriteInt64(bg(), "n", v+7)
	}); err != nil {
		t.Fatalf("local: %v", err)
	}

	if err := Run(bg(), m, fwd, SemanticPlan, Options{}); err != nil {
		t.Fatalf("compensate: %v", err)
	}
	rec, _ := m.Store().Get("n")
	// 100 + 30 + 7 - 30 = 107: the interleaved +7 survives (semantic,
	// non-cascading undo).
	if got := storage.MustDecodeInt64(rec.Value); got != 107 {
		t.Fatalf("n = %d, want 107", got)
	}
}

func TestSemanticPlanInvertsWriteViaBeforeImage(t *testing.T) {
	m := newMgr(nil)
	m.Store().Put("a", storage.Value("orig"), "init")
	fwd := runForward(t, m, "T1", []proto.Operation{proto.Write("a", []byte("new"))})
	if err := Run(bg(), m, fwd, SemanticPlan, Options{}); err != nil {
		t.Fatalf("compensate: %v", err)
	}
	rec, _ := m.Store().Get("a")
	if string(rec.Value) != "orig" {
		t.Fatalf("a = %q", rec.Value)
	}
	if rec.Writer != "CTT1" {
		t.Fatalf("writer = %q, want CTT1", rec.Writer)
	}
}

func TestSemanticPlanInvertsInsertByDelete(t *testing.T) {
	m := newMgr(nil)
	fwd := runForward(t, m, "T1", []proto.Operation{proto.Write("fresh", []byte("v"))})
	if err := Run(bg(), m, fwd, SemanticPlan, Options{}); err != nil {
		t.Fatalf("compensate: %v", err)
	}
	if _, err := m.Store().Get("fresh"); !storage.IsNotFound(err) {
		t.Fatalf("inserted key survived compensation")
	}
}

func TestSemanticPlanInvertsDeleteByRestore(t *testing.T) {
	m := newMgr(nil)
	m.Store().Put("a", storage.Value("keepme"), "init")
	fwd := runForward(t, m, "T1", []proto.Operation{proto.Delete("a")})
	if err := Run(bg(), m, fwd, SemanticPlan, Options{}); err != nil {
		t.Fatalf("compensate: %v", err)
	}
	rec, err := m.Store().Get("a")
	if err != nil || string(rec.Value) != "keepme" {
		t.Fatalf("a = %v (%v)", rec, err)
	}
}

func TestSemanticPlanReversesMultiOpOrder(t *testing.T) {
	m := newMgr(nil)
	m.Store().Put("n", storage.EncodeInt64(0), "init")
	fwd := runForward(t, m, "T1", []proto.Operation{
		proto.Add("n", 5),
		proto.Add("n", 10),
	})
	if err := Run(bg(), m, fwd, SemanticPlan, Options{}); err != nil {
		t.Fatalf("compensate: %v", err)
	}
	rec, _ := m.Store().Get("n")
	if got := storage.MustDecodeInt64(rec.Value); got != 0 {
		t.Fatalf("n = %d, want 0", got)
	}
}

func TestBeforeImagePlanRestoresPhysically(t *testing.T) {
	m := newMgr(nil)
	m.Store().Put("n", storage.EncodeInt64(100), "init")
	fwd := runForward(t, m, "T1", []proto.Operation{proto.Add("n", 30)})
	// Interleaved update is clobbered by before-image restore (the
	// generic-model trade-off).
	_ = m.RunLocal(bg(), "L1", 0, func(tx *txn.Txn) error {
		v, _ := tx.ReadInt64(bg(), "n")
		return tx.WriteInt64(bg(), "n", v+7)
	})
	if err := Run(bg(), m, fwd, BeforeImagePlan, Options{}); err != nil {
		t.Fatalf("compensate: %v", err)
	}
	rec, _ := m.Store().Get("n")
	if got := storage.MustDecodeInt64(rec.Value); got != 100 {
		t.Fatalf("n = %d, want 100 (physical restore)", got)
	}
}

func TestCustomCompensatorViaRegistry(t *testing.T) {
	m := newMgr(nil)
	m.Store().Put("log", storage.Value(""), "init")
	reg := NewRegistry()
	reg.Register("apologize", func(ctx context.Context, tx *txn.Txn, f Forward) error {
		return tx.Write(ctx, "log", storage.Value("sorry for "+f.TxnID))
	})
	plan, err := PlanFor(proto.CompCustom, "apologize", reg)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	fwd := Forward{TxnID: "T1"}
	if err := Run(bg(), m, fwd, plan, Options{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	rec, _ := m.Store().Get("log")
	if string(rec.Value) != "sorry for T1" {
		t.Fatalf("log = %q", rec.Value)
	}
}

func TestPlanForErrors(t *testing.T) {
	if _, err := PlanFor(proto.CompNone, "", nil); err == nil {
		t.Fatalf("CompNone must not yield a plan")
	}
	if _, err := PlanFor(proto.CompCustom, "ghost", NewRegistry()); err == nil {
		t.Fatalf("unknown compensator accepted")
	}
	if _, err := PlanFor(proto.CompCustom, "x", nil); err == nil {
		t.Fatalf("nil registry accepted")
	}
	if _, err := PlanFor(proto.CompMode(99), "", nil); err == nil {
		t.Fatalf("unknown mode accepted")
	}
}

func TestWriteCoverageEnforced(t *testing.T) {
	rec := history.NewRecorder()
	m := newMgr(rec)
	m.Store().Put("a", storage.Value("v"), "init")
	fwd := runForward(t, m, "T1", []proto.Operation{proto.Write("a", []byte("x"))})

	// A plan that deliberately writes nothing.
	noop := func(ctx context.Context, tx *txn.Txn, f Forward) error { return nil }
	if err := Run(bg(), m, fwd, noop, Options{EnsureWriteCoverage: true}); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Coverage rewrote "a" under the CT's identity.
	r, _ := m.Store().Get("a")
	if r.Writer != "CTT1" {
		t.Fatalf("writer = %q, want CTT1 (coverage write)", r.Writer)
	}
	// Theorem 2 premise: CT's write set covers the forward write set.
	h := rec.Snapshot()
	covered := false
	for _, op := range h.Ops {
		if op.Txn == "CTT1" && op.Type == history.OpWrite && op.Key == "a" {
			covered = true
		}
	}
	if !covered {
		t.Fatalf("coverage write not recorded in history")
	}
}

func TestRunSetsCTFateAndKind(t *testing.T) {
	rec := history.NewRecorder()
	m := newMgr(rec)
	m.Store().Put("n", storage.EncodeInt64(1), "init")
	fwd := runForward(t, m, "T9", []proto.Operation{proto.Add("n", 1)})
	if err := Run(bg(), m, fwd, SemanticPlan, Options{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	h := rec.Snapshot()
	if h.KindOf("CTT9") != history.KindCompensating {
		t.Fatalf("kind = %v", h.KindOf("CTT9"))
	}
	if h.FateOf("CTT9") != history.FateCommitted {
		t.Fatalf("fate = %v", h.FateOf("CTT9"))
	}
	if h.CompensationOf("T9") != "CTT9" {
		t.Fatalf("link = %q", h.CompensationOf("T9"))
	}
}

func TestPersistenceRetriesThroughLockContention(t *testing.T) {
	m := newMgr(nil)
	m.Store().Put("n", storage.EncodeInt64(10), "init")
	fwd := runForward(t, m, "T1", []proto.Operation{proto.Add("n", 5)})

	// A local transaction holds the lock for a while; compensation must
	// wait (or retry) and still complete.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = m.RunLocal(bg(), "Lhold", 0, func(tx *txn.Txn) error {
			if _, err := tx.ReadInt64(bg(), "n"); err != nil {
				return err
			}
			time.Sleep(20 * time.Millisecond)
			return nil
		})
	}()
	time.Sleep(5 * time.Millisecond)
	if err := Run(bg(), m, fwd, SemanticPlan, Options{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	wg.Wait()
	rec, _ := m.Store().Get("n")
	if got := storage.MustDecodeInt64(rec.Value); got != 10 {
		t.Fatalf("n = %d, want 10", got)
	}
}

func TestRunHonoursContextCancellation(t *testing.T) {
	m := newMgr(nil)
	m.Store().Put("n", storage.EncodeInt64(0), "init")
	fwd := runForward(t, m, "T1", []proto.Operation{proto.Add("n", 1)})

	// Hold the lock forever in another transaction; cancel the context.
	holder, _ := m.Begin("holder", history.KindLocal, "")
	if err := holder.WriteInt64(bg(), "n", 99); err != nil {
		t.Fatalf("holder write: %v", err)
	}
	ctx, cancel := context.WithTimeout(bg(), 30*time.Millisecond)
	defer cancel()
	err := Run(ctx, m, fwd, SemanticPlan, Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline", err)
	}
	_ = holder.Abort("")
}

func TestRunPermanentFailurePropagates(t *testing.T) {
	m := newMgr(nil)
	boom := errors.New("boom")
	bad := func(ctx context.Context, tx *txn.Txn, f Forward) error { return boom }
	err := Run(bg(), m, Forward{TxnID: "T1"}, bad, Options{})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestCTID(t *testing.T) {
	if CTID("T7") != "CTT7" {
		t.Fatalf("CTID = %q", CTID("T7"))
	}
}

func TestWriteCoverageDeletesMissingKeys(t *testing.T) {
	m := newMgr(nil)
	// Forward inserted a fresh key; a later transaction deleted it; the
	// coverage pass must tombstone it rather than fail.
	fwd := runForward(t, m, "T1", []proto.Operation{proto.Write("ghost", []byte("v"))})
	_ = m.RunLocal(bg(), "L1", 0, func(tx *txn.Txn) error {
		return tx.Delete(bg(), "ghost")
	})
	noop := func(ctx context.Context, tx *txn.Txn, f Forward) error { return nil }
	if err := Run(bg(), m, fwd, noop, Options{EnsureWriteCoverage: true}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := m.Store().Get("ghost"); !storage.IsNotFound(err) {
		t.Fatalf("ghost resurrected")
	}
}

func TestFinalizeErrorAbortsAttempt(t *testing.T) {
	m := newMgr(nil)
	m.Store().Put("n", storage.EncodeInt64(5), "init")
	fwd := runForward(t, m, "T1", []proto.Operation{proto.Add("n", 1)})
	calls := 0
	opts := Options{Finalize: func(ctx context.Context, tx *txn.Txn) error {
		calls++
		if calls == 1 {
			return lock.ErrDeadlock // transient: persistence must retry
		}
		return nil
	}}
	if err := Run(bg(), m, fwd, SemanticPlan, opts); err != nil {
		t.Fatalf("run: %v", err)
	}
	if calls != 2 {
		t.Fatalf("finalize calls = %d, want retry", calls)
	}
	rec, _ := m.Store().Get("n")
	if storage.MustDecodeInt64(rec.Value) != 5 {
		t.Fatalf("n = %d", storage.MustDecodeInt64(rec.Value))
	}
}

func TestSemanticPlanUnknownOpKind(t *testing.T) {
	m := newMgr(nil)
	fwd := Forward{TxnID: "T1", Ops: []proto.Operation{{Kind: proto.OpKind(99), Key: "x"}}}
	if err := Run(bg(), m, fwd, SemanticPlan, Options{}); err == nil {
		t.Fatalf("uninvertible op accepted")
	}
}
