package lock

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"o2pc/internal/storage"
)

// shardIndex returns the key-shard index a key routes to.
func shardIndex(m *Manager, key storage.Key) int {
	return int(fnv32a(string(key))) % m.ShardCount()
}

// keysInDistinctShards returns n keys guaranteed to land in n different
// key shards (FNV routing is deterministic, so this is a pure computation).
func keysInDistinctShards(t *testing.T, m *Manager, n int) []storage.Key {
	t.Helper()
	if n > m.ShardCount() {
		t.Fatalf("asked for %d distinct shards of %d", n, m.ShardCount())
	}
	seen := make(map[int]bool)
	var keys []storage.Key
	for i := 0; len(keys) < n && i < 10000; i++ {
		k := storage.Key(fmt.Sprintf("k%04d", i))
		if idx := shardIndex(m, k); !seen[idx] {
			seen[idx] = true
			keys = append(keys, k)
		}
	}
	if len(keys) < n {
		t.Fatalf("found only %d distinct shards", len(keys))
	}
	return keys
}

// TestCrossShardReleaseAll locks keys spread over every shard under one
// transaction and checks ReleaseAll frees them all, leaving each key
// immediately grantable to another transaction.
func TestCrossShardReleaseAll(t *testing.T) {
	m := NewManager()
	keys := keysInDistinctShards(t, m, m.ShardCount())
	for _, k := range keys {
		mustAcquire(t, m, "T1", k, Exclusive)
	}
	if got := len(m.Held("T1")); got != len(keys) {
		t.Fatalf("held = %d, want %d", got, len(keys))
	}
	m.ReleaseAll("T1")
	if m.HoldsAny("T1") {
		t.Fatalf("T1 still holds locks after ReleaseAll")
	}
	for _, k := range keys {
		mustAcquire(t, m, "T2", k, Exclusive)
	}
	if got := len(m.Held("T2")); got != len(keys) {
		t.Fatalf("T2 held = %d, want %d", got, len(keys))
	}
}

// TestPromotionUnderContentionAcrossShards runs the upgrade-priority
// scenario concurrently on keys in different shards: on each key T-up
// holds S and queues an upgrade to X while T-plain queues a fresh X
// request; when the other S holder releases, the upgrade must win.
func TestPromotionUnderContentionAcrossShards(t *testing.T) {
	m := NewManager()
	keys := keysInDistinctShards(t, m, 4)
	for i, k := range keys {
		holder := fmt.Sprintf("H%d", i)
		up := fmt.Sprintf("U%d", i)
		plain := fmt.Sprintf("P%d", i)
		mustAcquire(t, m, holder, k, Shared)
		mustAcquire(t, m, up, k, Shared)

		upDone := make(chan error, 1)
		go func() { upDone <- m.Acquire(context.Background(), up, k, Exclusive) }()
		// Wait until the upgrade is queued so the plain X lands behind it.
		waitQueued(t, m, k, up)
		plainDone := make(chan error, 1)
		go func() { plainDone <- m.Acquire(context.Background(), plain, k, Exclusive) }()
		waitQueued(t, m, k, plain)

		m.ReleaseAll(holder)
		if err := <-upDone; err != nil {
			t.Fatalf("key %s: upgrade: %v", k, err)
		}
		// The plain X must still be waiting: the upgrade holds X.
		select {
		case err := <-plainDone:
			t.Fatalf("key %s: plain X granted before upgrader released: %v", k, err)
		case <-time.After(10 * time.Millisecond):
		}
		if m.Held(up)[k] != Exclusive {
			t.Fatalf("key %s: upgrader mode = %v, want X", k, m.Held(up)[k])
		}
		m.ReleaseAll(up)
		if err := <-plainDone; err != nil {
			t.Fatalf("key %s: plain X after upgrader release: %v", k, err)
		}
		m.ReleaseAll(plain)
	}
}

// waitQueued spins until txn has a queued (not granted) request on key.
func waitQueued(t *testing.T, m *Manager, key storage.Key, txn string) {
	t.Helper()
	sh := m.shardOf(key)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		sh.mu.Lock()
		queued := false
		if st, ok := sh.locks[key]; ok {
			for _, q := range st.queue {
				if q.txn == txn {
					queued = true
					break
				}
			}
		}
		sh.mu.Unlock()
		if queued {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("txn %s never queued on %s", txn, key)
}

// TestDeadlockVictimAcrossShards builds a two-transaction cycle whose keys
// live in different shards and checks the detector still sees it and
// aborts the younger transaction.
func TestDeadlockVictimAcrossShards(t *testing.T) {
	m := NewManager()
	keys := keysInDistinctShards(t, m, 2)
	a, b := keys[0], keys[1]

	mustAcquire(t, m, "T1", a, Exclusive) // T1 registers first: older
	mustAcquire(t, m, "T2", b, Exclusive)

	t1Done := make(chan error, 1)
	go func() { t1Done <- m.Acquire(context.Background(), "T1", b, Exclusive) }()
	waitQueued(t, m, b, "T1")

	// Closing the cycle from T2 must pick the younger T2 as victim.
	if err := m.Acquire(context.Background(), "T2", a, Exclusive); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("T2 acquire = %v, want ErrDeadlock", err)
	}
	m.ReleaseAll("T2")
	if err := <-t1Done; err != nil {
		t.Fatalf("T1 after victim release: %v", err)
	}
	if m.Stats().Deadlocks.Value() == 0 {
		t.Fatalf("deadlock not counted")
	}
	m.ReleaseAll("T1")
}

// TestDeadlockVictimPriorityAcrossShards checks SetVictimPriority still
// steers victim selection when the cycle spans shards: the high-priority
// (more abortable) transaction is killed even though it is older.
func TestDeadlockVictimPriorityAcrossShards(t *testing.T) {
	m := NewManager()
	m.SetVictimPriority(func(txn string) int {
		if txn == "T1" {
			return 1 // make the older T1 the preferred victim
		}
		return 0
	})
	keys := keysInDistinctShards(t, m, 2)
	a, b := keys[0], keys[1]

	mustAcquire(t, m, "T1", a, Exclusive)
	mustAcquire(t, m, "T2", b, Exclusive)

	t1Done := make(chan error, 1)
	go func() { t1Done <- m.Acquire(context.Background(), "T1", b, Exclusive) }()
	waitQueued(t, m, b, "T1")

	t2Done := make(chan error, 1)
	go func() { t2Done <- m.Acquire(context.Background(), "T2", a, Exclusive) }()

	// T2's detection pass must abort T1's pending request.
	if err := <-t1Done; !errors.Is(err, ErrDeadlock) {
		t.Fatalf("T1 acquire = %v, want ErrDeadlock (priority victim)", err)
	}
	m.ReleaseAll("T1")
	if err := <-t2Done; err != nil {
		t.Fatalf("T2 after victim release: %v", err)
	}
	m.ReleaseAll("T2")
}

// TestShardAcquisitionSpread checks the FNV routing actually spreads
// distinct keys across shards rather than piling onto one.
func TestShardAcquisitionSpread(t *testing.T) {
	m := NewManager()
	const n = 256
	for i := 0; i < n; i++ {
		mustAcquire(t, m, "T1", storage.Key(fmt.Sprintf("acct%03d", i)), Exclusive)
	}
	counts := m.ShardAcquisitions()
	var total int64
	busy := 0
	for _, c := range counts {
		total += c
		if c > 0 {
			busy++
		}
	}
	if total != n {
		t.Fatalf("total shard acquisitions = %d, want %d", total, n)
	}
	if busy < m.ShardCount()/2 {
		t.Fatalf("only %d/%d shards saw traffic", busy, m.ShardCount())
	}
	m.ReleaseAll("T1")
}

// TestShardCountConfig pins the shard-count plumbing.
func TestShardCountConfig(t *testing.T) {
	if got := NewManagerShards(0).ShardCount(); got != DefaultShards {
		t.Fatalf("NewManagerShards(0) shards = %d, want %d", got, DefaultShards)
	}
	if got := NewManagerShards(4).ShardCount(); got != 4 {
		t.Fatalf("NewManagerShards(4) shards = %d, want 4", got)
	}
	if got := NewManager().ShardCount(); got != DefaultShards {
		t.Fatalf("NewManager shards = %d, want %d", got, DefaultShards)
	}
}

// TestShardStressOrderedAcquire hammers the manager from many goroutines
// acquiring overlapping key sets in a global order (so no deadlock can
// form) and requires every acquisition to succeed. Run with -race -count=5
// for the shard-discipline stress the sharding change demands.
func TestShardStressOrderedAcquire(t *testing.T) {
	m := NewManager()
	const (
		workers = 8
		iters   = 150
		keys    = 24
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				txn := fmt.Sprintf("W%d-%d", w, i)
				// Three keys in ascending index order: global ordering
				// prevents deadlock, contention exercises queues and
				// promotion across shards.
				base := (w + i) % keys
				for j := 0; j < 3; j++ {
					k := storage.Key(fmt.Sprintf("s%02d", (base+j*5)%keys))
					mode := Exclusive
					if j == 0 {
						mode = Shared
					}
					if err := m.Acquire(context.Background(), txn, k, mode); err != nil {
						t.Errorf("%s acquire %s: %v", txn, k, err)
						return
					}
				}
				m.ReleaseAll(txn)
			}
		}()
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		for i := 0; i < iters; i++ {
			if m.HoldsAny(fmt.Sprintf("W%d-%d", w, i)) {
				t.Fatalf("W%d-%d leaked locks", w, i)
			}
		}
	}
}

// TestShardStressDeadlockRecovery hammers the detector: workers grab key
// pairs in opposite orders, so deadlocks are guaranteed; victims release
// and retry. The run must terminate with every worker eventually done and
// no locks leaked.
func TestShardStressDeadlockRecovery(t *testing.T) {
	m := NewManager()
	const (
		workers = 6
		iters   = 40
	)
	pairs := [][2]storage.Key{
		{"dx0", "dx1"}, {"dx2", "dx3"}, {"dx4", "dx5"},
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				txn := fmt.Sprintf("D%d-%d", w, i)
				pair := pairs[(w+i)%len(pairs)]
				first, second := pair[0], pair[1]
				if w%2 == 1 {
					first, second = second, first // opposite order: deadlocks
				}
				for {
					if err := m.Acquire(context.Background(), txn, first, Exclusive); err != nil {
						m.ReleaseAll(txn)
						continue
					}
					if err := m.Acquire(context.Background(), txn, second, Exclusive); err != nil {
						m.ReleaseAll(txn)
						continue
					}
					break
				}
				m.ReleaseAll(txn)
			}
		}()
	}
	wg.Wait()
	for _, pair := range pairs {
		for _, k := range pair {
			mustAcquire(t, m, "probe", k, Exclusive)
		}
	}
	m.ReleaseAll("probe")
}
