// Package lock implements the per-site lock manager.
//
// The manager provides shared/exclusive locks with lock upgrade, strict
// FIFO queuing (with priority for upgrades), waits-for-graph deadlock
// detection with youngest-victim selection, and per-transaction bulk release
// primitives matching the protocols under study:
//
//   - ReleaseAll(txn): release every lock — used by O2PC at the YES vote
//     ("locally committed"), by 2PC at the DECISION, and at abort.
//   - ReleaseShared(txn): release only shared locks — the paper notes that
//     even strict distributed 2PL may release read locks as soon as the
//     VOTE-REQ message is received (Section 2); this is ablation A1.
//
// The lock table is split into key-hashed shards, each with its own mutex,
// lock states and wait queues, so lock traffic on unrelated keys never
// contends on a common mutex. Per-transaction state (held-lock sets and
// registration sequence numbers) lives in txn-hashed shards. The locking
// discipline that keeps the two layers deadlock-free:
//
//   - key shards are only ever taken together in ascending index order
//     (deadlock detection, AbortWaiter, WaitsFor);
//   - a txn shard may be taken while key shards are held (victim
//     selection reads sequence numbers), but never the other way around —
//     every held-set update happens with no key shard held, which is why
//     waiters record their own held entries after the grant arrives
//     rather than having the granter write into a foreign txn shard.
//
// Lock-hold time instrumentation is built in because the headline claim of
// the paper (Experiment E1) is precisely about how long exclusive locks are
// held under each protocol.
package lock

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"o2pc/internal/metrics"
	"o2pc/internal/sim"
	"o2pc/internal/storage"
)

// Mode is a lock mode.
type Mode uint8

const (
	// Shared is a read lock; compatible with other shared locks.
	Shared Mode = iota + 1
	// Exclusive is a write lock; compatible with nothing.
	Exclusive
)

// String returns "S" or "X".
func (m Mode) String() string {
	switch m {
	case Shared:
		return "S"
	case Exclusive:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Compatible reports whether a lock in mode m can coexist with one in mode o.
func (m Mode) Compatible(o Mode) bool { return m == Shared && o == Shared }

// ErrDeadlock is returned to the victim of deadlock resolution. The caller
// must abort the transaction and may retry it.
var ErrDeadlock = errors.New("lock: deadlock detected; transaction chosen as victim")

// ErrAborted is returned to waiters whose transaction was aborted externally
// via AbortWaiter.
var ErrAborted = errors.New("lock: waiting transaction aborted")

// DefaultShards is the key-shard count used by NewManager. Sixteen shards
// dissolve cross-key contention on hot sites while keeping the all-shards
// operations (deadlock detection, AbortWaiter) cheap.
const DefaultShards = 16

// request is a pending lock acquisition.
type request struct {
	txn     string
	mode    Mode
	upgrade bool
	grant   chan error // buffered(1); receives nil on grant, error on abort
	start   time.Time
	// claim is the clock's wake-up reservation for this grant: set (under
	// the key's shard mutex) by the granter immediately before sending on
	// grant, claimed by the woken waiter. It keeps virtual time from
	// advancing in the window between the channel send and the waiter
	// actually resuming.
	claim func()
}

// lockState tracks one key's holders and wait queue.
type lockState struct {
	holders map[string]Mode
	queue   []*request
}

// heldLock records when a granted lock was acquired, for hold-time metrics.
type heldLock struct {
	mode    Mode
	grantAt time.Time
}

// Stats aggregates lock-manager measurements. Counters are atomic and
// contention-free; the histograms are a shared measurement sink (they are
// touched only on waits and releases, not on the grant fast path).
type Stats struct {
	Acquisitions *metrics.Counter
	Waits        *metrics.Counter
	Deadlocks    *metrics.Counter
	WaitTime     *metrics.Histogram // milliseconds
	HoldTimeX    *metrics.Histogram // milliseconds, exclusive locks only
	HoldTimeS    *metrics.Histogram // milliseconds, shared locks only
}

func newStats() *Stats {
	return &Stats{
		Acquisitions: &metrics.Counter{},
		Waits:        &metrics.Counter{},
		Deadlocks:    &metrics.Counter{},
		WaitTime:     metrics.NewHistogram(),
		HoldTimeX:    metrics.NewHistogram(),
		HoldTimeS:    metrics.NewHistogram(),
	}
}

// keyShard is one slice of the lock table.
type keyShard struct {
	mu    sync.Mutex
	locks map[storage.Key]*lockState
	// free recycles lockState values (and their holders maps) released by
	// fully-unlocked keys: commit-time bulk release empties a key's state
	// and the next transaction on that key would otherwise re-allocate it,
	// making the state churn a measurable share of the commit path's
	// allocations. Bounded so an unlock burst cannot pin memory.
	free []*lockState
	// acquisitions counts Acquire calls routed to this shard, for
	// observing how evenly the hash spreads traffic.
	acquisitions metrics.Counter
}

// maxFreeStates bounds each shard's lockState freelist.
const maxFreeStates = 64

// txnShard holds per-transaction state for a slice of the txn-ID space.
type txnShard struct {
	mu   sync.Mutex
	held map[string]map[storage.Key]heldLock
	seq  map[string]uint64 // txn -> registration order (age)
	// free recycles held-lock maps emptied by ReleaseAll: every
	// transaction allocates one on its first lock, so commit-time bulk
	// release feeds the next transaction's map (buckets and all).
	free []map[storage.Key]heldLock
}

// Manager is a per-site lock manager. The zero value is not usable; call
// NewManager or NewManagerShards.
type Manager struct {
	clock       sim.Clock
	priority    func(txn string) int
	waitTimeout time.Duration

	shards    []*keyShard
	txnShards []*txnShard
	nextSeq   atomic.Uint64
	stats     *Stats
}

// SetClock installs the clock the manager times waits and hold durations
// with. Call before any lock traffic; the site wires this at construction.
func (m *Manager) SetClock(c sim.Clock) { m.clock = sim.OrReal(c) }

// SetVictimPriority installs a victim-selection priority function: among
// the transactions on a deadlock cycle, the one with the highest
// (priority, registration sequence) pair is aborted. Returning a lower
// value for a transaction makes it less likely to be chosen. The site
// kernel uses this to shield compensating transactions (persistence of
// compensation) unless a cycle consists solely of them. Call before any
// lock traffic.
func (m *Manager) SetVictimPriority(f func(txn string) int) { m.priority = f }

// SetWaitTimeout bounds each blocking AcquireBounded wait by d (zero or
// negative means waits are bounded only by the caller's context). The
// deadline is armed lazily, inside the wait path: the grant fast path —
// the vast majority of acquisitions — never creates a timer or derived
// context, which a per-subtransaction timeout wrapped around the whole
// execution phase would pay even when no lock ever blocks. Call before
// any lock traffic; the site wires this from its LockTimeout at
// construction.
func (m *Manager) SetWaitTimeout(d time.Duration) { m.waitTimeout = d }

// NewManager returns an empty lock manager on the real clock with
// DefaultShards key shards.
func NewManager() *Manager { return NewManagerShards(DefaultShards) }

// NewManagerShards returns an empty lock manager with n key shards
// (n <= 0 selects DefaultShards).
func NewManagerShards(n int) *Manager {
	if n <= 0 {
		n = DefaultShards
	}
	m := &Manager{
		clock:     sim.Real(),
		shards:    make([]*keyShard, n),
		txnShards: make([]*txnShard, n),
		stats:     newStats(),
	}
	for i := range m.shards {
		m.shards[i] = &keyShard{locks: make(map[storage.Key]*lockState)}
		m.txnShards[i] = &txnShard{
			held: make(map[string]map[storage.Key]heldLock),
			seq:  make(map[string]uint64),
		}
	}
	return m
}

// Stats returns the manager's measurement sink.
func (m *Manager) Stats() *Stats { return m.stats }

// ShardCount returns the number of key shards.
func (m *Manager) ShardCount() int { return len(m.shards) }

// ShardAcquisitions returns the per-shard Acquire counts, for observing
// how the key hash spreads traffic.
func (m *Manager) ShardAcquisitions() []int64 {
	out := make([]int64, len(m.shards))
	for i, sh := range m.shards {
		out[i] = sh.acquisitions.Value()
	}
	return out
}

// fnv32a is FNV-1a inlined over a string: the hash/fnv Hash32 interface
// costs two allocations per lookup (the state object and the string->byte
// conversion), which shard routing on the lock fast path cannot afford.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// shardOf routes a key to its shard.
func (m *Manager) shardOf(key storage.Key) *keyShard {
	return m.shards[int(fnv32a(string(key)))%len(m.shards)]
}

// txnShardOf routes a transaction ID to its per-txn state shard.
func (m *Manager) txnShardOf(txn string) *txnShard {
	return m.txnShards[int(fnv32a(txn))%len(m.txnShards)]
}

// seqOf returns txn's registration sequence, assigning one on first sight.
func (m *Manager) seqOf(txn string) uint64 {
	ts := m.txnShardOf(txn)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if s, ok := ts.seq[txn]; ok {
		return s
	}
	s := m.nextSeq.Add(1)
	ts.seq[txn] = s
	return s
}

// seqPeek reads txn's registration sequence without assigning one.
func (m *Manager) seqPeek(txn string) uint64 {
	ts := m.txnShardOf(txn)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.seq[txn]
}

// stateOf returns key's lock state within sh, creating it on first use.
// Callers must hold sh.mu.
func (sh *keyShard) stateOf(key storage.Key) *lockState {
	st, ok := sh.locks[key]
	if !ok {
		if n := len(sh.free); n > 0 {
			st = sh.free[n-1]
			sh.free[n-1] = nil
			sh.free = sh.free[:n-1]
		} else {
			st = &lockState{holders: make(map[string]Mode)}
		}
		sh.locks[key] = st
	}
	return st
}

// recordHeld installs (or upgrades) txn's held-lock entry for key. It runs
// with no key shard held — on the immediate-grant path after the shard is
// unlocked, and on the wait path by the woken waiter itself. grantAt is
// the moment the lock was granted; an upgrade keeps the original grant
// time so hold-time metrics span the whole period the item was locked.
func (m *Manager) recordHeld(txn string, key storage.Key, mode Mode, grantAt time.Time) {
	ts := m.txnShardOf(txn)
	ts.mu.Lock()
	locks, ok := ts.held[txn]
	if !ok {
		if n := len(ts.free); n > 0 {
			locks = ts.free[n-1]
			ts.free[n-1] = nil
			ts.free = ts.free[:n-1]
		} else {
			locks = make(map[storage.Key]heldLock, 4)
		}
		ts.held[txn] = locks
	}
	if prev, had := locks[key]; had {
		grantAt = prev.grantAt
	}
	locks[key] = heldLock{mode: mode, grantAt: grantAt}
	ts.mu.Unlock()
}

// takeHeld removes and returns txn's held-lock entry for key, if any.
func (m *Manager) takeHeld(txn string, key storage.Key) (heldLock, bool) {
	ts := m.txnShardOf(txn)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	locks, ok := ts.held[txn]
	if !ok {
		return heldLock{}, false
	}
	hl, ok := locks[key]
	if ok {
		delete(locks, key)
	}
	return hl, ok
}

// canGrantLocked reports whether txn may immediately take mode on st.
// Callers must hold the key's shard mutex.
func canGrantLocked(st *lockState, txn string, mode Mode) bool {
	for holder, hmode := range st.holders {
		if holder == txn {
			continue // self-held locks never conflict (upgrade path)
		}
		if !mode.Compatible(hmode) {
			return false
		}
	}
	return true
}

// Acquire obtains a lock of the given mode on key for txn, blocking until
// the lock is granted, ctx is cancelled, or the transaction is chosen as a
// deadlock victim. Re-acquiring a held lock (same or weaker mode) returns
// immediately; requesting Exclusive while holding Shared performs an
// upgrade.
func (m *Manager) Acquire(ctx context.Context, txn string, key storage.Key, mode Mode) error {
	return m.acquire(ctx, txn, key, mode, false)
}

// AcquireBounded is Acquire with any blocking wait additionally bounded by
// the manager's wait timeout (SetWaitTimeout). Subtransactions of global
// transactions use it for every lock they take: a distributed 2PL deadlock
// (a lock cycle spanning sites) is invisible to per-site waits-for
// detection and is broken by timing out the wait and aborting the global
// transaction. Local and compensating transactions use plain Acquire —
// their lock scopes are single-site, where the detector suffices, and
// compensation in particular must never be failed by a spurious timeout
// (persistence of compensation).
func (m *Manager) AcquireBounded(ctx context.Context, txn string, key storage.Key, mode Mode) error {
	return m.acquire(ctx, txn, key, mode, true)
}

func (m *Manager) acquire(ctx context.Context, txn string, key storage.Key, mode Mode, bounded bool) error {
	m.seqOf(txn)
	m.stats.Acquisitions.Inc()

	sh := m.shardOf(key)
	sh.mu.Lock()
	sh.acquisitions.Inc()
	st := sh.stateOf(key)

	if cur, ok := st.holders[txn]; ok {
		if cur == Exclusive || mode == Shared {
			sh.mu.Unlock()
			return nil // already strong enough
		}
		// Upgrade S -> X.
		if canGrantLocked(st, txn, Exclusive) {
			st.holders[txn] = Exclusive
			sh.mu.Unlock()
			m.recordHeld(txn, key, Exclusive, m.clock.Now())
			return nil
		}
		req := &request{txn: txn, mode: Exclusive, upgrade: true, grant: make(chan error, 1), start: m.clock.Now()}
		// Upgrades go ahead of ordinary waiters but behind earlier upgrades.
		idx := 0
		for idx < len(st.queue) && st.queue[idx].upgrade {
			idx++
		}
		st.queue = append(st.queue, nil)
		copy(st.queue[idx+1:], st.queue[idx:])
		st.queue[idx] = req
		sh.mu.Unlock()
		return m.wait(ctx, sh, key, req, bounded)
	}

	if canGrantLocked(st, txn, mode) && len(st.queue) == 0 {
		st.holders[txn] = mode
		sh.mu.Unlock()
		m.recordHeld(txn, key, mode, m.clock.Now())
		return nil
	}
	// Shared requests may jump a queue composed solely of shared requests
	// when the holders are compatible; otherwise strict FIFO (prevents
	// writer starvation).
	if mode == Shared && canGrantLocked(st, txn, Shared) {
		allShared := true
		for _, q := range st.queue {
			if q.mode != Shared {
				allShared = false
				break
			}
		}
		if allShared {
			st.holders[txn] = Shared
			sh.mu.Unlock()
			m.recordHeld(txn, key, Shared, m.clock.Now())
			return nil
		}
	}
	req := &request{txn: txn, mode: mode, grant: make(chan error, 1), start: m.clock.Now()}
	st.queue = append(st.queue, req)
	sh.mu.Unlock()
	return m.wait(ctx, sh, key, req, bounded)
}

// lockAllShards takes every key shard in ascending index order — the one
// sanctioned way to hold more than one shard at a time.
func (m *Manager) lockAllShards() {
	for _, sh := range m.shards {
		sh.mu.Lock()
	}
}

func (m *Manager) unlockAllShards() {
	for _, sh := range m.shards {
		sh.mu.Unlock()
	}
}

// wait blocks on req after running deadlock detection. It is entered with
// no shard mutex held; req is already queued on key's state in sh.
func (m *Manager) wait(ctx context.Context, sh *keyShard, key storage.Key, req *request, bounded bool) error {
	m.stats.Waits.Inc()
	if bounded && m.waitTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = m.clock.WithTimeout(ctx, m.waitTimeout)
		defer cancel()
	}

	// Deadlock detection needs a consistent snapshot of every shard's
	// waits-for edges, so it runs under all shard mutexes. Between the
	// enqueue above and the snapshot here, a release may already have
	// granted req — then txn no longer waits and no cycle involves it.
	m.lockAllShards()
	if victim := m.detectDeadlockAllLocked(req.txn); victim != "" {
		if victim == req.txn {
			st, stillQueued := sh.locks[key], false
			if st != nil {
				stillQueued = removeRequestLocked(st, req)
			}
			if stillQueued {
				m.stats.Deadlocks.Inc()
				m.unlockAllShards()
				return ErrDeadlock
			}
			// Granted in the window before the snapshot: honour the grant
			// (the channel carries it) and fall through to the wait below.
		} else {
			m.abortWaiterAllLocked(victim, ErrDeadlock)
			m.stats.Deadlocks.Inc()
			// The victim's queue slots are gone; our request may now be
			// grantable.
			promoteLocked(m.clock, sh, key)
		}
	}
	m.unlockAllShards()

	// The wait on req.grant happens outside the clock's knowledge: under a
	// virtual clock the eventual granter may itself be asleep in virtual
	// time, so the waiter must be parked (BlockOn) for the duration or
	// time could never advance. The granter pairs every send with a
	// PrepareWake reservation (req.claim), returned to BlockOn so the wake
	// stays accounted until the waiter is back in the run queue.
	var err error
	granted := false
	select {
	case err = <-req.grant:
		granted = true
	default:
	}
	if !granted {
		m.clock.BlockOn(ctx, func() func() {
			select {
			case err = <-req.grant:
				granted = true
				return req.claim
			case <-ctx.Done():
				return nil
			}
		})
	}
	if granted {
		if req.claim != nil {
			req.claim()
		}
		if err == nil {
			m.recordHeld(req.txn, key, req.mode, m.clock.Now())
			m.stats.WaitTime.ObserveDuration(m.clock.Since(req.start))
		}
		return err
	}

	sh.mu.Lock()
	// A grant may have raced with cancellation.
	select {
	case err := <-req.grant:
		if req.claim != nil {
			req.claim()
		}
		sh.mu.Unlock()
		if err == nil {
			// Granted concurrently; honour the grant (caller will observe
			// ctx and release).
			m.recordHeld(req.txn, key, req.mode, m.clock.Now())
			m.stats.WaitTime.ObserveDuration(m.clock.Since(req.start))
			return nil
		}
		return err
	default:
	}
	if st, ok := sh.locks[key]; ok {
		removeRequestLocked(st, req)
		promoteLocked(m.clock, sh, key)
	}
	sh.mu.Unlock()
	return ctx.Err()
}

// removeRequestLocked deletes req from st's queue if still present,
// reporting whether it was. Callers must hold the key's shard mutex.
func removeRequestLocked(st *lockState, req *request) bool {
	for i, q := range st.queue {
		if q == req {
			st.queue = append(st.queue[:i], st.queue[i+1:]...)
			return true
		}
	}
	return false
}

// promoteLocked grants as many queued requests on key as compatibility
// allows, in FIFO order. The grant only flips the shard-side holder entry
// and wakes the waiter; the waiter records its own held entry when it
// resumes (the granter must not take a foreign txn shard while holding key
// shards). Callers must hold sh.mu.
func promoteLocked(clock sim.Clock, sh *keyShard, key storage.Key) {
	st, ok := sh.locks[key]
	if !ok {
		return
	}
	for len(st.queue) > 0 {
		req := st.queue[0]
		if !canGrantLocked(st, req.txn, req.mode) {
			return
		}
		st.queue = st.queue[1:]
		st.holders[req.txn] = req.mode
		req.claim = clock.PrepareWake()
		req.grant <- nil
		if req.mode == Exclusive {
			return
		}
	}
}

// release removes txn's lock on key, records hold time, and promotes
// waiters. hl is txn's held-lock entry (already detached from the txn
// shard). Callers must hold no shard mutex.
func (m *Manager) release(txn string, key storage.Key, hl heldLock, hadEntry bool) {
	sh := m.shardOf(key)
	sh.mu.Lock()
	st, ok := sh.locks[key]
	if !ok {
		sh.mu.Unlock()
		return
	}
	if _, held := st.holders[txn]; !held {
		sh.mu.Unlock()
		return
	}
	delete(st.holders, txn)
	if len(st.holders) == 0 && len(st.queue) == 0 {
		delete(sh.locks, key)
		if len(sh.free) < maxFreeStates {
			st.queue = nil
			sh.free = append(sh.free, st)
		}
	} else {
		promoteLocked(m.clock, sh, key)
	}
	sh.mu.Unlock()
	if hadEntry {
		d := m.clock.Since(hl.grantAt)
		if hl.mode == Exclusive {
			m.stats.HoldTimeX.ObserveDuration(d)
		} else {
			m.stats.HoldTimeS.ObserveDuration(d)
		}
	}
}

// Release drops txn's lock on a single key, if held.
func (m *Manager) Release(txn string, key storage.Key) {
	hl, ok := m.takeHeld(txn, key)
	m.release(txn, key, hl, ok)
}

// ReleaseAll drops every lock held by txn. Pending requests by txn are NOT
// cancelled (use AbortWaiter for that).
func (m *Manager) ReleaseAll(txn string) {
	ts := m.txnShardOf(txn)
	ts.mu.Lock()
	locks := ts.held[txn]
	type heldKey struct {
		key storage.Key
		hl  heldLock
	}
	keys := make([]heldKey, 0, len(locks))
	for k, hl := range locks {
		keys = append(keys, heldKey{k, hl})
	}
	delete(ts.held, txn)
	delete(ts.seq, txn)
	if locks != nil && len(ts.free) < maxFreeStates {
		clear(locks)
		ts.free = append(ts.free, locks)
	}
	ts.mu.Unlock()
	for _, e := range keys {
		m.release(txn, e.key, e.hl, true)
	}
}

// ReleaseShared drops only txn's shared locks (the "read locks at VOTE-REQ"
// optimization the paper permits for strict distributed 2PL).
func (m *Manager) ReleaseShared(txn string) {
	ts := m.txnShardOf(txn)
	ts.mu.Lock()
	locks := ts.held[txn]
	type heldKey struct {
		key storage.Key
		hl  heldLock
	}
	keys := make([]heldKey, 0, len(locks))
	for k, hl := range locks {
		if hl.mode == Shared {
			keys = append(keys, heldKey{k, hl})
			delete(locks, k)
		}
	}
	ts.mu.Unlock()
	for _, e := range keys {
		m.release(txn, e.key, e.hl, true)
	}
}

// abortWaiterAllLocked fails every pending request of txn with err.
// Callers must hold every shard mutex.
func (m *Manager) abortWaiterAllLocked(txn string, err error) {
	for _, sh := range m.shards {
		for _, st := range sh.locks {
			for i := 0; i < len(st.queue); {
				if st.queue[i].txn == txn {
					req := st.queue[i]
					st.queue = append(st.queue[:i], st.queue[i+1:]...)
					req.claim = m.clock.PrepareWake()
					req.grant <- err
					continue
				}
				i++
			}
		}
	}
}

// AbortWaiter cancels every pending lock request of txn with ErrAborted,
// releasing queue slots so other waiters can progress. Held locks are not
// released; call ReleaseAll after rolling back.
func (m *Manager) AbortWaiter(txn string) {
	m.lockAllShards()
	m.abortWaiterAllLocked(txn, ErrAborted)
	for _, sh := range m.shards {
		for key := range sh.locks {
			promoteLocked(m.clock, sh, key)
		}
	}
	m.unlockAllShards()
}

// Held returns the keys txn currently holds, with their modes.
func (m *Manager) Held(txn string) map[storage.Key]Mode {
	ts := m.txnShardOf(txn)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make(map[storage.Key]Mode, len(ts.held[txn]))
	for k, hl := range ts.held[txn] {
		out[k] = hl.mode
	}
	return out
}

// HoldsAny reports whether txn holds at least one lock.
func (m *Manager) HoldsAny(txn string) bool {
	ts := m.txnShardOf(txn)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.held[txn]) > 0
}

// WaitsFor returns the current waits-for graph: an edge waiter -> holder
// exists when waiter has a queued request blocked by holder's granted lock
// or by an earlier conflicting queued request.
func (m *Manager) WaitsFor() map[string][]string {
	m.lockAllShards()
	defer m.unlockAllShards()
	return m.waitsForAllLocked()
}

// waitsForAllLocked builds the waits-for graph. Callers must hold every
// shard mutex.
func (m *Manager) waitsForAllLocked() map[string][]string {
	g := make(map[string]map[string]bool)
	addEdge := func(from, to string) {
		if from == to {
			return
		}
		set, ok := g[from]
		if !ok {
			set = make(map[string]bool)
			g[from] = set
		}
		set[to] = true
	}
	for _, sh := range m.shards {
		for _, st := range sh.locks {
			for i, req := range st.queue {
				for holder, hmode := range st.holders {
					if holder == req.txn {
						continue
					}
					if !req.mode.Compatible(hmode) {
						addEdge(req.txn, holder)
					}
				}
				for j := 0; j < i; j++ {
					ahead := st.queue[j]
					if ahead.txn == req.txn {
						continue
					}
					if !req.mode.Compatible(ahead.mode) || !ahead.mode.Compatible(req.mode) {
						addEdge(req.txn, ahead.txn)
					}
				}
			}
		}
	}
	out := make(map[string][]string, len(g))
	for from, set := range g {
		for to := range set {
			out[from] = append(out[from], to)
		}
		sort.Strings(out[from])
	}
	return out
}

// detectDeadlockAllLocked looks for a cycle reachable from start in the
// waits-for graph and returns the chosen victim's txn ID ("" if no cycle).
// The victim is the youngest (highest registration sequence) transaction on
// the cycle. Callers must hold every shard mutex.
func (m *Manager) detectDeadlockAllLocked(start string) string {
	g := m.waitsForAllLocked()
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int)
	var stack []string
	var cycle []string

	var dfs func(n string) bool
	dfs = func(n string) bool {
		color[n] = grey
		stack = append(stack, n)
		for _, next := range g[n] {
			switch color[next] {
			case white:
				if dfs(next) {
					return true
				}
			case grey:
				// Found a cycle: the suffix of stack from next onwards.
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append(cycle, stack[i])
					if stack[i] == next {
						break
					}
				}
				return true
			}
		}
		color[n] = black
		stack = stack[:len(stack)-1]
		return false
	}
	if !dfs(start) {
		return ""
	}
	victim := ""
	var victimSeq uint64
	victimPrio := 0
	for _, txn := range cycle {
		prio := 0
		if m.priority != nil {
			prio = m.priority(txn)
		}
		s := m.seqPeek(txn)
		if victim == "" || prio > victimPrio || (prio == victimPrio && s > victimSeq) {
			victim, victimSeq, victimPrio = txn, s, prio
		}
	}
	return victim
}
