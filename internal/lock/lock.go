// Package lock implements the per-site lock manager.
//
// The manager provides shared/exclusive locks with lock upgrade, strict
// FIFO queuing (with priority for upgrades), waits-for-graph deadlock
// detection with youngest-victim selection, and per-transaction bulk release
// primitives matching the protocols under study:
//
//   - ReleaseAll(txn): release every lock — used by O2PC at the YES vote
//     ("locally committed"), by 2PC at the DECISION, and at abort.
//   - ReleaseShared(txn): release only shared locks — the paper notes that
//     even strict distributed 2PL may release read locks as soon as the
//     VOTE-REQ message is received (Section 2); this is ablation A1.
//
// Lock-hold time instrumentation is built in because the headline claim of
// the paper (Experiment E1) is precisely about how long exclusive locks are
// held under each protocol.
package lock

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"o2pc/internal/metrics"
	"o2pc/internal/sim"
	"o2pc/internal/storage"
)

// Mode is a lock mode.
type Mode uint8

const (
	// Shared is a read lock; compatible with other shared locks.
	Shared Mode = iota + 1
	// Exclusive is a write lock; compatible with nothing.
	Exclusive
)

// String returns "S" or "X".
func (m Mode) String() string {
	switch m {
	case Shared:
		return "S"
	case Exclusive:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Compatible reports whether a lock in mode m can coexist with one in mode o.
func (m Mode) Compatible(o Mode) bool { return m == Shared && o == Shared }

// ErrDeadlock is returned to the victim of deadlock resolution. The caller
// must abort the transaction and may retry it.
var ErrDeadlock = errors.New("lock: deadlock detected; transaction chosen as victim")

// ErrAborted is returned to waiters whose transaction was aborted externally
// via AbortWaiter.
var ErrAborted = errors.New("lock: waiting transaction aborted")

// request is a pending lock acquisition.
type request struct {
	txn     string
	mode    Mode
	upgrade bool
	grant   chan error // buffered(1); receives nil on grant, error on abort
	start   time.Time
	// claim is the clock's wake-up reservation for this grant: set (under
	// m.mu) by the granter immediately before sending on grant, claimed by
	// the woken waiter. It keeps virtual time from advancing in the window
	// between the channel send and the waiter actually resuming.
	claim func()
}

// lockState tracks one key's holders and wait queue.
type lockState struct {
	holders map[string]Mode
	queue   []*request
}

// heldLock records when a granted lock was acquired, for hold-time metrics.
type heldLock struct {
	mode    Mode
	grantAt time.Time
}

// Stats aggregates lock-manager measurements.
type Stats struct {
	Acquisitions *metrics.Counter
	Waits        *metrics.Counter
	Deadlocks    *metrics.Counter
	WaitTime     *metrics.Histogram // milliseconds
	HoldTimeX    *metrics.Histogram // milliseconds, exclusive locks only
	HoldTimeS    *metrics.Histogram // milliseconds, shared locks only
}

func newStats() *Stats {
	return &Stats{
		Acquisitions: &metrics.Counter{},
		Waits:        &metrics.Counter{},
		Deadlocks:    &metrics.Counter{},
		WaitTime:     metrics.NewHistogram(),
		HoldTimeX:    metrics.NewHistogram(),
		HoldTimeS:    metrics.NewHistogram(),
	}
}

// Manager is a per-site lock manager. The zero value is not usable; call
// NewManager.
type Manager struct {
	clock sim.Clock

	mu       sync.Mutex
	locks    map[storage.Key]*lockState
	held     map[string]map[storage.Key]heldLock
	seq      map[string]uint64 // txn -> registration order (age)
	nextSeq  uint64
	stats    *Stats
	priority func(txn string) int
}

// SetClock installs the clock the manager times waits and hold durations
// with. Call before any lock traffic; the site wires this at construction.
func (m *Manager) SetClock(c sim.Clock) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.clock = sim.OrReal(c)
}

// SetVictimPriority installs a victim-selection priority function: among
// the transactions on a deadlock cycle, the one with the highest
// (priority, registration sequence) pair is aborted. Returning a lower
// value for a transaction makes it less likely to be chosen. The site
// kernel uses this to shield compensating transactions (persistence of
// compensation) unless a cycle consists solely of them.
func (m *Manager) SetVictimPriority(f func(txn string) int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.priority = f
}

// NewManager returns an empty lock manager on the real clock.
func NewManager() *Manager {
	return &Manager{
		clock: sim.Real(),
		locks: make(map[storage.Key]*lockState),
		held:  make(map[string]map[storage.Key]heldLock),
		seq:   make(map[string]uint64),
		stats: newStats(),
	}
}

// Stats returns the manager's measurement sink.
func (m *Manager) Stats() *Stats { return m.stats }

func (m *Manager) seqOf(txn string) uint64 {
	if s, ok := m.seq[txn]; ok {
		return s
	}
	m.nextSeq++
	m.seq[txn] = m.nextSeq
	return m.nextSeq
}

func (m *Manager) stateOf(key storage.Key) *lockState {
	st, ok := m.locks[key]
	if !ok {
		st = &lockState{holders: make(map[string]Mode)}
		m.locks[key] = st
	}
	return st
}

// grantLocked installs a lock for txn. Callers must hold m.mu.
func (m *Manager) grantLocked(st *lockState, key storage.Key, txn string, mode Mode) {
	st.holders[txn] = mode
	locks, ok := m.held[txn]
	if !ok {
		locks = make(map[storage.Key]heldLock)
		m.held[txn] = locks
	}
	prev, had := locks[key]
	grantAt := m.clock.Now()
	if had {
		// Upgrade: keep the original grant time so hold-time metrics span
		// the whole period the item was locked.
		grantAt = prev.grantAt
	}
	locks[key] = heldLock{mode: mode, grantAt: grantAt}
}

// canGrantLocked reports whether txn may immediately take mode on st.
// Callers must hold m.mu.
func canGrantLocked(st *lockState, txn string, mode Mode) bool {
	for holder, hmode := range st.holders {
		if holder == txn {
			continue // self-held locks never conflict (upgrade path)
		}
		if !mode.Compatible(hmode) {
			return false
		}
	}
	return true
}

// Acquire obtains a lock of the given mode on key for txn, blocking until
// the lock is granted, ctx is cancelled, or the transaction is chosen as a
// deadlock victim. Re-acquiring a held lock (same or weaker mode) returns
// immediately; requesting Exclusive while holding Shared performs an
// upgrade.
func (m *Manager) Acquire(ctx context.Context, txn string, key storage.Key, mode Mode) error {
	m.mu.Lock()
	m.seqOf(txn)
	st := m.stateOf(key)
	m.stats.Acquisitions.Inc()

	if cur, ok := st.holders[txn]; ok {
		if cur == Exclusive || mode == Shared {
			m.mu.Unlock()
			return nil // already strong enough
		}
		// Upgrade S -> X.
		if canGrantLocked(st, txn, Exclusive) {
			m.grantLocked(st, key, txn, Exclusive)
			m.mu.Unlock()
			return nil
		}
		req := &request{txn: txn, mode: Exclusive, upgrade: true, grant: make(chan error, 1), start: m.clock.Now()}
		// Upgrades go ahead of ordinary waiters but behind earlier upgrades.
		idx := 0
		for idx < len(st.queue) && st.queue[idx].upgrade {
			idx++
		}
		st.queue = append(st.queue, nil)
		copy(st.queue[idx+1:], st.queue[idx:])
		st.queue[idx] = req
		return m.waitLocked(ctx, st, key, req)
	}

	if canGrantLocked(st, txn, mode) && len(st.queue) == 0 {
		m.grantLocked(st, key, txn, mode)
		m.mu.Unlock()
		return nil
	}
	// Shared requests may jump a queue composed solely of shared requests
	// when the holders are compatible; otherwise strict FIFO (prevents
	// writer starvation).
	if mode == Shared && canGrantLocked(st, txn, Shared) {
		allShared := true
		for _, q := range st.queue {
			if q.mode != Shared {
				allShared = false
				break
			}
		}
		if allShared {
			m.grantLocked(st, key, txn, Shared)
			m.mu.Unlock()
			return nil
		}
	}
	req := &request{txn: txn, mode: mode, grant: make(chan error, 1), start: m.clock.Now()}
	st.queue = append(st.queue, req)
	return m.waitLocked(ctx, st, key, req)
}

// waitLocked blocks on req after running deadlock detection. It is entered
// with m.mu held and releases it before blocking.
func (m *Manager) waitLocked(ctx context.Context, st *lockState, key storage.Key, req *request) error {
	m.stats.Waits.Inc()
	if victim := m.detectDeadlockLocked(req.txn); victim != "" {
		if victim == req.txn {
			m.removeRequestLocked(st, req)
			m.stats.Deadlocks.Inc()
			m.mu.Unlock()
			return ErrDeadlock
		}
		m.abortWaiterLocked(victim, ErrDeadlock)
		m.stats.Deadlocks.Inc()
		// The victim's queue slots are gone; our request may now be
		// grantable.
		m.promoteLocked(key)
	}
	m.mu.Unlock()

	// The wait on req.grant happens outside the clock's knowledge: under a
	// virtual clock the eventual granter may itself be asleep in virtual
	// time, so the waiter must be parked (BlockOn) for the duration or
	// time could never advance. The granter pairs every send with a
	// PrepareWake reservation (req.claim), returned to BlockOn so the wake
	// stays accounted until the waiter is back in the run queue.
	var err error
	granted := false
	select {
	case err = <-req.grant:
		granted = true
	default:
	}
	if !granted {
		m.clock.BlockOn(ctx, func() func() {
			select {
			case err = <-req.grant:
				granted = true
				return req.claim
			case <-ctx.Done():
				return nil
			}
		})
	}
	if granted {
		if req.claim != nil {
			req.claim()
		}
		if err == nil {
			m.stats.WaitTime.ObserveDuration(m.clock.Since(req.start))
		}
		return err
	}

	m.mu.Lock()
	// A grant may have raced with cancellation.
	select {
	case err := <-req.grant:
		if req.claim != nil {
			req.claim()
		}
		m.mu.Unlock()
		if err == nil {
			// Granted concurrently; honour the grant (caller will observe
			// ctx and release).
			m.stats.WaitTime.ObserveDuration(m.clock.Since(req.start))
			return nil
		}
		return err
	default:
	}
	m.removeRequestLocked(st, req)
	m.promoteLocked(key)
	m.mu.Unlock()
	return ctx.Err()
}

// removeRequestLocked deletes req from st's queue if still present.
func (m *Manager) removeRequestLocked(st *lockState, req *request) {
	for i, q := range st.queue {
		if q == req {
			st.queue = append(st.queue[:i], st.queue[i+1:]...)
			return
		}
	}
}

// promoteLocked grants as many queued requests on key as compatibility
// allows, in FIFO order. Callers must hold m.mu.
func (m *Manager) promoteLocked(key storage.Key) {
	st, ok := m.locks[key]
	if !ok {
		return
	}
	for len(st.queue) > 0 {
		req := st.queue[0]
		if !canGrantLocked(st, req.txn, req.mode) {
			return
		}
		st.queue = st.queue[1:]
		m.grantLocked(st, key, req.txn, req.mode)
		req.claim = m.clock.PrepareWake()
		req.grant <- nil
		if req.mode == Exclusive {
			return
		}
	}
}

// releaseLocked removes txn's lock on key and records hold time. Callers
// must hold m.mu.
func (m *Manager) releaseLocked(txn string, key storage.Key) {
	st, ok := m.locks[key]
	if !ok {
		return
	}
	if _, held := st.holders[txn]; !held {
		return
	}
	delete(st.holders, txn)
	if locks, ok := m.held[txn]; ok {
		if hl, ok := locks[key]; ok {
			d := m.clock.Since(hl.grantAt)
			if hl.mode == Exclusive {
				m.stats.HoldTimeX.ObserveDuration(d)
			} else {
				m.stats.HoldTimeS.ObserveDuration(d)
			}
			delete(locks, key)
		}
	}
	if len(st.holders) == 0 && len(st.queue) == 0 {
		delete(m.locks, key)
		return
	}
	m.promoteLocked(key)
}

// Release drops txn's lock on a single key, if held.
func (m *Manager) Release(txn string, key storage.Key) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.releaseLocked(txn, key)
}

// ReleaseAll drops every lock held by txn. Pending requests by txn are NOT
// cancelled (use AbortWaiter for that).
func (m *Manager) ReleaseAll(txn string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	locks := m.held[txn]
	keys := make([]storage.Key, 0, len(locks))
	for k := range locks {
		keys = append(keys, k)
	}
	for _, k := range keys {
		m.releaseLocked(txn, k)
	}
	delete(m.held, txn)
	delete(m.seq, txn)
}

// ReleaseShared drops only txn's shared locks (the "read locks at VOTE-REQ"
// optimization the paper permits for strict distributed 2PL).
func (m *Manager) ReleaseShared(txn string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	locks := m.held[txn]
	keys := make([]storage.Key, 0, len(locks))
	for k, hl := range locks {
		if hl.mode == Shared {
			keys = append(keys, k)
		}
	}
	for _, k := range keys {
		m.releaseLocked(txn, k)
	}
}

// abortWaiterLocked fails every pending request of txn with err. Callers
// must hold m.mu.
func (m *Manager) abortWaiterLocked(txn string, err error) {
	for key, st := range m.locks {
		for i := 0; i < len(st.queue); {
			if st.queue[i].txn == txn {
				req := st.queue[i]
				st.queue = append(st.queue[:i], st.queue[i+1:]...)
				req.claim = m.clock.PrepareWake()
				req.grant <- err
				continue
			}
			i++
		}
		_ = key
	}
}

// AbortWaiter cancels every pending lock request of txn with ErrAborted,
// releasing queue slots so other waiters can progress. Held locks are not
// released; call ReleaseAll after rolling back.
func (m *Manager) AbortWaiter(txn string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.abortWaiterLocked(txn, ErrAborted)
	for key := range m.locks {
		m.promoteLocked(key)
	}
}

// Held returns the keys txn currently holds, with their modes.
func (m *Manager) Held(txn string) map[storage.Key]Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[storage.Key]Mode, len(m.held[txn]))
	for k, hl := range m.held[txn] {
		out[k] = hl.mode
	}
	return out
}

// HoldsAny reports whether txn holds at least one lock.
func (m *Manager) HoldsAny(txn string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.held[txn]) > 0
}

// WaitsFor returns the current waits-for graph: an edge waiter -> holder
// exists when waiter has a queued request blocked by holder's granted lock
// or by an earlier conflicting queued request.
func (m *Manager) WaitsFor() map[string][]string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.waitsForLocked()
}

func (m *Manager) waitsForLocked() map[string][]string {
	g := make(map[string]map[string]bool)
	addEdge := func(from, to string) {
		if from == to {
			return
		}
		set, ok := g[from]
		if !ok {
			set = make(map[string]bool)
			g[from] = set
		}
		set[to] = true
	}
	for _, st := range m.locks {
		for i, req := range st.queue {
			for holder, hmode := range st.holders {
				if holder == req.txn {
					continue
				}
				if !req.mode.Compatible(hmode) {
					addEdge(req.txn, holder)
				}
			}
			for j := 0; j < i; j++ {
				ahead := st.queue[j]
				if ahead.txn == req.txn {
					continue
				}
				if !req.mode.Compatible(ahead.mode) || !ahead.mode.Compatible(req.mode) {
					addEdge(req.txn, ahead.txn)
				}
			}
		}
	}
	out := make(map[string][]string, len(g))
	for from, set := range g {
		for to := range set {
			out[from] = append(out[from], to)
		}
		sort.Strings(out[from])
	}
	return out
}

// detectDeadlockLocked looks for a cycle reachable from start in the
// waits-for graph and returns the chosen victim's txn ID ("" if no cycle).
// The victim is the youngest (highest registration sequence) transaction on
// the cycle. Callers must hold m.mu.
func (m *Manager) detectDeadlockLocked(start string) string {
	g := m.waitsForLocked()
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int)
	var stack []string
	var cycle []string

	var dfs func(n string) bool
	dfs = func(n string) bool {
		color[n] = grey
		stack = append(stack, n)
		for _, next := range g[n] {
			switch color[next] {
			case white:
				if dfs(next) {
					return true
				}
			case grey:
				// Found a cycle: the suffix of stack from next onwards.
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append(cycle, stack[i])
					if stack[i] == next {
						break
					}
				}
				return true
			}
		}
		color[n] = black
		stack = stack[:len(stack)-1]
		return false
	}
	if !dfs(start) {
		return ""
	}
	victim := ""
	var victimSeq uint64
	victimPrio := 0
	for _, txn := range cycle {
		prio := 0
		if m.priority != nil {
			prio = m.priority(txn)
		}
		s := m.seq[txn]
		if victim == "" || prio > victimPrio || (prio == victimPrio && s > victimSeq) {
			victim, victimSeq, victimPrio = txn, s, prio
		}
	}
	return victim
}
