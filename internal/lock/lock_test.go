package lock

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"o2pc/internal/storage"
)

func bg() context.Context { return context.Background() }

func mustAcquire(t *testing.T, m *Manager, txn string, key storage.Key, mode Mode) {
	t.Helper()
	if err := m.Acquire(bg(), txn, key, mode); err != nil {
		t.Fatalf("acquire %s %s %v: %v", txn, key, mode, err)
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	m := NewManager()
	mustAcquire(t, m, "T1", "a", Shared)
	mustAcquire(t, m, "T2", "a", Shared)
	if got := len(m.Held("T1")) + len(m.Held("T2")); got != 2 {
		t.Fatalf("held = %d, want 2", got)
	}
}

func TestExclusiveBlocksShared(t *testing.T) {
	m := NewManager()
	mustAcquire(t, m, "T1", "a", Exclusive)
	done := make(chan error, 1)
	go func() { done <- m.Acquire(bg(), "T2", "a", Shared) }()
	select {
	case err := <-done:
		t.Fatalf("T2 acquired S over X: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll("T1")
	if err := <-done; err != nil {
		t.Fatalf("T2 grant after release: %v", err)
	}
}

func TestReacquireIsIdempotent(t *testing.T) {
	m := NewManager()
	mustAcquire(t, m, "T1", "a", Exclusive)
	mustAcquire(t, m, "T1", "a", Exclusive)
	mustAcquire(t, m, "T1", "a", Shared) // weaker re-request is a no-op
	if m.Held("T1")["a"] != Exclusive {
		t.Fatalf("mode = %v, want X", m.Held("T1")["a"])
	}
}

func TestUpgradeSoleHolder(t *testing.T) {
	m := NewManager()
	mustAcquire(t, m, "T1", "a", Shared)
	mustAcquire(t, m, "T1", "a", Exclusive)
	if m.Held("T1")["a"] != Exclusive {
		t.Fatalf("upgrade failed: %v", m.Held("T1"))
	}
}

func TestUpgradeWaitsForOtherReaders(t *testing.T) {
	m := NewManager()
	mustAcquire(t, m, "T1", "a", Shared)
	mustAcquire(t, m, "T2", "a", Shared)
	done := make(chan error, 1)
	go func() { done <- m.Acquire(bg(), "T1", "a", Exclusive) }()
	select {
	case err := <-done:
		t.Fatalf("upgrade granted while T2 holds S: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll("T2")
	if err := <-done; err != nil {
		t.Fatalf("upgrade after release: %v", err)
	}
	if m.Held("T1")["a"] != Exclusive {
		t.Fatalf("mode = %v", m.Held("T1")["a"])
	}
}

func TestUpgradeHasPriorityOverQueuedWriters(t *testing.T) {
	m := NewManager()
	mustAcquire(t, m, "T1", "a", Shared)
	mustAcquire(t, m, "T2", "a", Shared)

	var order []string
	var mu sync.Mutex
	record := func(who string) {
		mu.Lock()
		order = append(order, who)
		mu.Unlock()
	}
	var wg sync.WaitGroup
	wg.Add(2)
	// T3 queues for X first...
	go func() {
		defer wg.Done()
		if err := m.Acquire(bg(), "T3", "a", Exclusive); err == nil {
			record("T3")
			m.ReleaseAll("T3")
		}
	}()
	time.Sleep(10 * time.Millisecond)
	// ...then T1 requests an upgrade, which must jump ahead of T3.
	go func() {
		defer wg.Done()
		if err := m.Acquire(bg(), "T1", "a", Exclusive); err == nil {
			record("T1")
			m.ReleaseAll("T1")
		}
	}()
	time.Sleep(10 * time.Millisecond)
	m.ReleaseAll("T2") // unblocks the queue
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "T1" {
		t.Fatalf("grant order = %v, want [T1 T3]", order)
	}
}

func TestWriterNotStarvedByLateReaders(t *testing.T) {
	m := NewManager()
	mustAcquire(t, m, "T1", "a", Shared)
	writerDone := make(chan error, 1)
	go func() { writerDone <- m.Acquire(bg(), "W", "a", Exclusive) }()
	time.Sleep(10 * time.Millisecond)
	// A late reader must queue behind the writer, not jump it.
	readerDone := make(chan error, 1)
	go func() { readerDone <- m.Acquire(bg(), "R", "a", Shared) }()
	select {
	case <-readerDone:
		t.Fatalf("late reader jumped queued writer")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll("T1")
	if err := <-writerDone; err != nil {
		t.Fatalf("writer: %v", err)
	}
	m.ReleaseAll("W")
	if err := <-readerDone; err != nil {
		t.Fatalf("reader: %v", err)
	}
}

func TestSharedBatchGrant(t *testing.T) {
	m := NewManager()
	mustAcquire(t, m, "W", "a", Exclusive)
	var granted atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := m.Acquire(bg(), fmt.Sprintf("R%d", i), "a", Shared); err == nil {
				granted.Add(1)
			}
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll("W")
	wg.Wait()
	if granted.Load() != 4 {
		t.Fatalf("granted = %d, want all 4 readers batched", granted.Load())
	}
}

func TestReleaseShared(t *testing.T) {
	m := NewManager()
	mustAcquire(t, m, "T1", "r", Shared)
	mustAcquire(t, m, "T1", "w", Exclusive)
	m.ReleaseShared("T1")
	held := m.Held("T1")
	if _, ok := held["r"]; ok {
		t.Fatalf("shared lock survived ReleaseShared")
	}
	if held["w"] != Exclusive {
		t.Fatalf("exclusive lock dropped by ReleaseShared")
	}
}

func TestDeadlockDetectedTwoTxns(t *testing.T) {
	m := NewManager()
	mustAcquire(t, m, "T1", "a", Exclusive)
	mustAcquire(t, m, "T2", "b", Exclusive)

	errs := make(chan error, 2)
	go func() { errs <- m.Acquire(bg(), "T1", "b", Exclusive) }()
	time.Sleep(10 * time.Millisecond)
	go func() { errs <- m.Acquire(bg(), "T2", "a", Exclusive) }()

	var sawDeadlock bool
	for i := 0; i < 1; i++ {
		select {
		case err := <-errs:
			if errors.Is(err, ErrDeadlock) {
				sawDeadlock = true
			}
		case <-time.After(time.Second):
			t.Fatalf("deadlock not resolved")
		}
	}
	if !sawDeadlock {
		// One request may have been granted after the victim aborted;
		// drain the other.
		select {
		case err := <-errs:
			sawDeadlock = errors.Is(err, ErrDeadlock)
		case <-time.After(time.Second):
			t.Fatalf("no deadlock error delivered")
		}
	}
	if !sawDeadlock {
		t.Fatalf("no transaction chosen as deadlock victim")
	}
	if m.Stats().Deadlocks.Value() == 0 {
		t.Fatalf("deadlock counter not incremented")
	}
}

func TestDeadlockThreeWayCycle(t *testing.T) {
	m := NewManager()
	mustAcquire(t, m, "T1", "a", Exclusive)
	mustAcquire(t, m, "T2", "b", Exclusive)
	mustAcquire(t, m, "T3", "c", Exclusive)

	errs := make(chan error, 3)
	go func() { errs <- m.Acquire(bg(), "T1", "b", Exclusive) }()
	time.Sleep(5 * time.Millisecond)
	go func() { errs <- m.Acquire(bg(), "T2", "c", Exclusive) }()
	time.Sleep(5 * time.Millisecond)
	go func() { errs <- m.Acquire(bg(), "T3", "a", Exclusive) }()

	deadline := time.After(2 * time.Second)
	for i := 0; i < 3; i++ {
		var err error
		select {
		case err = <-errs:
		case <-deadline:
			t.Fatalf("cycle not resolved (got %d results)", i)
		}
		if errors.Is(err, ErrDeadlock) {
			return // victim chosen; others may still be waiting on locks we hold
		}
		// A grant: release so remaining waiters can proceed.
	}
	t.Fatalf("three-way deadlock never produced a victim")
}

func TestVictimPriorityShieldsCompensation(t *testing.T) {
	m := NewManager()
	m.SetVictimPriority(func(id string) int {
		if id == "CT1" {
			return -1
		}
		return 0
	})
	mustAcquire(t, m, "CT1", "a", Exclusive)
	mustAcquire(t, m, "T2", "b", Exclusive)

	ctErr := make(chan error, 1)
	go func() { ctErr <- m.Acquire(bg(), "CT1", "b", Exclusive) }()
	time.Sleep(10 * time.Millisecond)
	t2Err := make(chan error, 1)
	go func() { t2Err <- m.Acquire(bg(), "T2", "a", Exclusive) }()

	select {
	case err := <-t2Err:
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("T2 err = %v, want deadlock victim", err)
		}
	case <-time.After(time.Second):
		t.Fatalf("no victim chosen")
	}
	m.ReleaseAll("T2")
	if err := <-ctErr; err != nil {
		t.Fatalf("CT1 should have survived: %v", err)
	}
}

func TestContextCancellationRemovesWaiter(t *testing.T) {
	m := NewManager()
	mustAcquire(t, m, "T1", "a", Exclusive)
	ctx, cancel := context.WithCancel(bg())
	done := make(chan error, 1)
	go func() { done <- m.Acquire(ctx, "T2", "a", Exclusive) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	// The queue slot must be gone: T3 gets the lock after T1 releases.
	m.ReleaseAll("T1")
	mustAcquire(t, m, "T3", "a", Exclusive)
}

func TestAbortWaiterFailsPendingRequests(t *testing.T) {
	m := NewManager()
	mustAcquire(t, m, "T1", "a", Exclusive)
	done := make(chan error, 1)
	go func() { done <- m.Acquire(bg(), "T2", "a", Exclusive) }()
	time.Sleep(10 * time.Millisecond)
	m.AbortWaiter("T2")
	if err := <-done; !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
}

func TestWaitsForGraph(t *testing.T) {
	m := NewManager()
	mustAcquire(t, m, "T1", "a", Exclusive)
	go m.Acquire(bg(), "T2", "a", Exclusive)
	time.Sleep(10 * time.Millisecond)
	g := m.WaitsFor()
	if len(g["T2"]) != 1 || g["T2"][0] != "T1" {
		t.Fatalf("waits-for = %v, want T2 -> T1", g)
	}
	m.ReleaseAll("T1")
}

func TestHoldTimeRecordedOnRelease(t *testing.T) {
	m := NewManager()
	mustAcquire(t, m, "T1", "a", Exclusive)
	mustAcquire(t, m, "T1", "b", Shared)
	time.Sleep(5 * time.Millisecond)
	m.ReleaseAll("T1")
	if m.Stats().HoldTimeX.Count() != 1 {
		t.Fatalf("X hold samples = %d", m.Stats().HoldTimeX.Count())
	}
	if m.Stats().HoldTimeS.Count() != 1 {
		t.Fatalf("S hold samples = %d", m.Stats().HoldTimeS.Count())
	}
	if m.Stats().HoldTimeX.Mean() < 4 {
		t.Fatalf("X hold mean = %.2fms, want >= ~5ms", m.Stats().HoldTimeX.Mean())
	}
}

func TestUpgradeHoldTimeSpansFromFirstGrant(t *testing.T) {
	m := NewManager()
	mustAcquire(t, m, "T1", "a", Shared)
	time.Sleep(5 * time.Millisecond)
	mustAcquire(t, m, "T1", "a", Exclusive)
	m.ReleaseAll("T1")
	if got := m.Stats().HoldTimeX.Mean(); got < 4 {
		t.Fatalf("upgrade hold time = %.2fms, want to span the S period", got)
	}
}

func TestModeStringsAndCompatibility(t *testing.T) {
	if Shared.String() != "S" || Exclusive.String() != "X" {
		t.Fatalf("mode strings wrong")
	}
	if !Shared.Compatible(Shared) {
		t.Fatalf("S/S must be compatible")
	}
	for _, pair := range [][2]Mode{{Shared, Exclusive}, {Exclusive, Shared}, {Exclusive, Exclusive}} {
		if pair[0].Compatible(pair[1]) {
			t.Fatalf("%v/%v must conflict", pair[0], pair[1])
		}
	}
}

func TestConcurrentStress(t *testing.T) {
	m := NewManager()
	keys := []storage.Key{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	var deadlocks atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				txn := fmt.Sprintf("T%d-%d", g, i)
				ok := true
				for _, k := range keys[:1+(g+i)%3] {
					mode := Shared
					if (g+i)%2 == 0 {
						mode = Exclusive
					}
					if err := m.Acquire(bg(), txn, k, mode); err != nil {
						deadlocks.Add(1)
						ok = false
						break
					}
				}
				_ = ok
				m.ReleaseAll(txn)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("stress run hung (lost wakeup or undetected deadlock)")
	}
	t.Logf("stress: %d deadlock victims, %d acquisitions",
		deadlocks.Load(), m.Stats().Acquisitions.Value())
}

// TestNoIncompatibleCoHolders randomly exercises the manager and checks
// the core safety invariant after every grant: no key is ever held in
// incompatible modes by two transactions.
func TestNoIncompatibleCoHolders(t *testing.T) {
	m := NewManager()
	keys := []storage.Key{"a", "b", "c"}
	var mu sync.Mutex
	violation := ""
	check := func() {
		mu.Lock()
		defer mu.Unlock()
		for _, k := range keys {
			holders := map[string]Mode{}
			for _, txn := range []string{"T0", "T1", "T2", "T3", "T4", "T5"} {
				if mode, ok := m.Held(txn)[k]; ok {
					holders[txn] = mode
				}
			}
			x, s := 0, 0
			for _, mode := range holders {
				if mode == Exclusive {
					x++
				} else {
					s++
				}
			}
			if x > 1 || (x == 1 && s > 0) {
				violation = fmt.Sprintf("key %s holders %v", k, holders)
			}
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			txn := fmt.Sprintf("T%d", g)
			for i := 0; i < 150; i++ {
				k := keys[(g+i)%len(keys)]
				mode := Shared
				if (g+i)%3 == 0 {
					mode = Exclusive
				}
				if err := m.Acquire(bg(), txn, k, mode); err == nil {
					check()
				}
				if i%4 == 3 {
					m.ReleaseAll(txn)
				}
			}
			m.ReleaseAll(txn)
		}(g)
	}
	wg.Wait()
	if violation != "" {
		t.Fatalf("incompatible co-holders: %s", violation)
	}
}
