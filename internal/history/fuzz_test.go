package history

import (
	"bytes"
	"reflect"
	"testing"
)

// validSeed builds one well-formed document through the encoder itself, so
// the corpus always contains a fully-populated valid history.
func validSeed() []byte {
	h := &History{Txns: map[string]TxnInfo{
		"T1":   {ID: "T1", Kind: KindGlobal, Fate: FateCommitted},
		"T2":   {ID: "T2", Kind: KindGlobal, Fate: FateAborted},
		"CTx2": {ID: "CTx2", Kind: KindCompensating, Fate: FateCommitted, Forward: "T2"},
		"L1":   {ID: "L1", Kind: KindLocal, Fate: FateUnknown},
	}}
	h.Ops = []Op{
		{Site: "s0", Txn: "T1", Type: OpWrite, Key: "x", Seq: 1},
		{Site: "s0", Txn: "T2", Type: OpRead, Key: "x", Seq: 2, ReadFrom: "T1"},
		{Site: "s1", Txn: "CTx2", Type: OpWrite, Key: "y", Seq: 1},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, h); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzHistoryJSON checks that the history codec round-trips: any document
// ReadJSON accepts must re-encode to a history equal to the first decode,
// and the encoding itself must be stable (a second encode of the re-read
// history is byte-identical).
func FuzzHistoryJSON(f *testing.F) {
	f.Add(validSeed())
	f.Add([]byte(`{"txns":null,"ops":null}`))
	f.Add([]byte(`{"txns":[{"id":"a","kind":"T","fate":"unknown"}],"ops":[]}`))
	f.Add([]byte(`{not json`))
	f.Add([]byte(`{"txns":[{"id":"a","kind":"X","fate":"unknown"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		h1, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return // malformed input must only be rejected, never crash
		}
		var enc1 bytes.Buffer
		if err := WriteJSON(&enc1, h1); err != nil {
			t.Fatalf("encode of accepted history failed: %v", err)
		}
		h2, err := ReadJSON(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of encoder output failed: %v\n%s", err, enc1.Bytes())
		}
		if !reflect.DeepEqual(h1, h2) {
			t.Fatalf("round-trip changed the history:\nfirst  %+v\nsecond %+v", h1, h2)
		}
		var enc2 bytes.Buffer
		if err := WriteJSON(&enc2, h2); err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatalf("encoding unstable:\n--- first ---\n%s\n--- second ---\n%s", enc1.Bytes(), enc2.Bytes())
		}
	})
}
