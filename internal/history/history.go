// Package history records executions for offline verification.
//
// The serialization-graph theory of the paper's Section 5 is stated over
// complete histories: per-site sequences of read/write operations tagged
// with the transaction that issued them, together with each transaction's
// classification (regular global transaction Ti, compensating transaction
// CTi, or local transaction Li) and fate. The Recorder captures exactly
// that evidence from live executions; package sg consumes it to build local
// and global serialization graphs, detect regular cycles, check the
// stratification properties, and check atomicity of compensation
// (Theorem 2) via reads-from tracking.
package history

import (
	"fmt"
	"sort"
	"sync"

	"o2pc/internal/storage"
)

// Kind classifies a transaction node in the serialization graph.
type Kind uint8

const (
	// KindGlobal is a regular global transaction (a Ti in the paper).
	KindGlobal Kind = iota + 1
	// KindCompensating is a compensating transaction (a CTi). Standard
	// roll-backs at sites that voted NO are also recorded with this kind,
	// per the paper's Section 3.2 modeling.
	KindCompensating
	// KindLocal is an independent local transaction (an Li).
	KindLocal
)

// String returns the kind mnemonic.
func (k Kind) String() string {
	switch k {
	case KindGlobal:
		return "T"
	case KindCompensating:
		return "CT"
	case KindLocal:
		return "L"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// OpType is the operation type.
type OpType uint8

const (
	// OpRead is a read of one key.
	OpRead OpType = iota + 1
	// OpWrite is a write (including delete) of one key.
	OpWrite
)

// String returns "r" or "w".
func (t OpType) String() string {
	if t == OpRead {
		return "r"
	}
	return "w"
}

// Op is one recorded operation.
type Op struct {
	Site string      // site identifier
	Txn  string      // transaction node ID (e.g. "T1", "CT1", "L5")
	Type OpType      // read or write
	Key  storage.Key // data item
	Seq  uint64      // per-site total order position
	// ReadFrom is, for reads, the transaction node that wrote the version
	// observed ("" if the initial database state was read). It drives the
	// atomicity-of-compensation check.
	ReadFrom string
}

// Fate is a transaction's terminal status in the recorded history.
type Fate uint8

const (
	// FateUnknown means no terminal event was recorded.
	FateUnknown Fate = iota
	// FateCommitted means the transaction (globally) committed.
	FateCommitted
	// FateAborted means the transaction was (globally) aborted; for global
	// transactions under O2PC this implies compensation ran.
	FateAborted
)

// String returns the fate mnemonic.
func (f Fate) String() string {
	switch f {
	case FateCommitted:
		return "committed"
	case FateAborted:
		return "aborted"
	default:
		return "unknown"
	}
}

// TxnInfo is the recorded metadata of one transaction node.
type TxnInfo struct {
	ID      string
	Kind    Kind
	Fate    Fate
	Forward string // for compensating transactions: the forward txn ID
}

// Recorder accumulates a history. It is safe for concurrent use and is
// designed to be cheap enough to leave enabled during benchmarks (a mutex
// and two appends per operation).
type Recorder struct {
	mu   sync.Mutex
	ops  []Op
	seq  map[string]uint64 // per-site sequence counters
	txns map[string]*TxnInfo
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		seq:  make(map[string]uint64),
		txns: make(map[string]*TxnInfo),
	}
}

// Declare registers (or updates) a transaction node's classification.
// Declaring an existing node updates its kind/forward link but preserves an
// already-recorded fate.
func (r *Recorder) Declare(id string, kind Kind, forward string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	info, ok := r.txns[id]
	if !ok {
		info = &TxnInfo{ID: id}
		r.txns[id] = info
	}
	info.Kind = kind
	info.Forward = forward
}

// SetFate records the terminal status of a transaction node.
func (r *Recorder) SetFate(id string, fate Fate) {
	r.mu.Lock()
	defer r.mu.Unlock()
	info, ok := r.txns[id]
	if !ok {
		info = &TxnInfo{ID: id}
		r.txns[id] = info
	}
	info.Fate = fate
}

// Record appends one operation. The per-site sequence number is assigned
// here, so callers must invoke Record in the site's real execution order
// (in this repository that order is enforced by the site's lock manager:
// conflicting operations are serialized by locks before they reach the
// recorder).
func (r *Recorder) Record(site, txn string, typ OpType, key storage.Key, readFrom string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq[site]++
	r.ops = append(r.ops, Op{
		Site:     site,
		Txn:      txn,
		Type:     typ,
		Key:      key,
		Seq:      r.seq[site],
		ReadFrom: readFrom,
	})
	if _, ok := r.txns[txn]; !ok {
		// Unclassified nodes default to local; Declare can upgrade later.
		r.txns[txn] = &TxnInfo{ID: txn, Kind: KindLocal}
	}
}

// VoidSiteOps removes every operation txn recorded at site. It supports
// the committed-projection treatment of subtransactions rolled back before
// any vote: such a roll-back happens atomically under the subtransaction's
// own locks — no other transaction observed anything — so the equivalent
// history is the one where the subtransaction never ran. (Roll-backs after
// a vote are different: they are modeled as compensating subtransactions
// and stay, per Section 3.2.)
func (r *Recorder) VoidSiteOps(site, txn string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	kept := r.ops[:0]
	for _, op := range r.ops {
		if op.Site == site && op.Txn == txn {
			continue
		}
		kept = append(kept, op)
	}
	r.ops = kept
}

// History is an immutable snapshot of a recorded execution.
type History struct {
	Ops  []Op
	Txns map[string]TxnInfo
}

// Snapshot returns a copy of everything recorded so far.
func (r *Recorder) Snapshot() *History {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := &History{
		Ops:  make([]Op, len(r.ops)),
		Txns: make(map[string]TxnInfo, len(r.txns)),
	}
	copy(h.Ops, r.ops)
	for id, info := range r.txns {
		h.Txns[id] = *info
	}
	return h
}

// Reset discards all recorded state.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = nil
	r.seq = make(map[string]uint64)
	r.txns = make(map[string]*TxnInfo)
}

// Sites returns the sorted list of sites appearing in the history.
func (h *History) Sites() []string {
	set := make(map[string]bool)
	for _, op := range h.Ops {
		set[op.Site] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// OpsAt returns the operations of one site in execution order.
func (h *History) OpsAt(site string) []Op {
	var out []Op
	for _, op := range h.Ops {
		if op.Site == site {
			out = append(out, op)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// KindOf returns the recorded kind of a transaction node (KindLocal for
// unknown nodes).
func (h *History) KindOf(txn string) Kind {
	if info, ok := h.Txns[txn]; ok {
		return info.Kind
	}
	return KindLocal
}

// FateOf returns the recorded fate of a transaction node.
func (h *History) FateOf(txn string) Fate {
	if info, ok := h.Txns[txn]; ok {
		return info.Fate
	}
	return FateUnknown
}

// CompensationOf returns the ID of the compensating transaction recorded for
// forward transaction txn, or "" if none exists.
func (h *History) CompensationOf(txn string) string {
	for id, info := range h.Txns {
		if info.Kind == KindCompensating && info.Forward == txn {
			return id
		}
	}
	return ""
}

// Conflicts reports whether two operations conflict: same key, same site,
// different transactions, and at least one write.
func Conflicts(a, b Op) bool {
	return a.Site == b.Site &&
		a.Key == b.Key &&
		a.Txn != b.Txn &&
		(a.Type == OpWrite || b.Type == OpWrite)
}
