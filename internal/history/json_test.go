package history

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.Declare("T1", KindGlobal, "")
	r.Declare("CT1", KindCompensating, "T1")
	r.Declare("L1", KindLocal, "")
	r.SetFate("T1", FateAborted)
	r.SetFate("CT1", FateCommitted)
	r.SetFate("L1", FateCommitted)
	r.Record("s0", "T1", OpWrite, "x", "")
	r.Record("s0", "CT1", OpWrite, "x", "")
	r.Record("s0", "L1", OpRead, "x", "CT1")
	r.Record("s1", "T1", OpRead, "y", "")
	h := r.Snapshot()

	var buf bytes.Buffer
	if err := WriteJSON(&buf, h); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !reflect.DeepEqual(h.Txns, got.Txns) {
		t.Fatalf("txns mismatch:\n%v\n%v", h.Txns, got.Txns)
	}
	if !reflect.DeepEqual(h.Ops, got.Ops) {
		t.Fatalf("ops mismatch:\n%v\n%v", h.Ops, got.Ops)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatalf("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"txns":[{"id":"T1","kind":"??","fate":"committed"}]}`)); err == nil {
		t.Fatalf("bad kind accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"txns":[{"id":"T1","kind":"T","fate":"??"}]}`)); err == nil {
		t.Fatalf("bad fate accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"ops":[{"site":"s0","txn":"T1","type":"??","key":"k"}]}`)); err == nil {
		t.Fatalf("bad op type accepted")
	}
}

func TestJSONEmptyHistory(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, &History{Txns: map[string]TxnInfo{}}); err != nil {
		t.Fatalf("write empty: %v", err)
	}
	h, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("read empty: %v", err)
	}
	if len(h.Ops) != 0 || len(h.Txns) != 0 {
		t.Fatalf("not empty: %+v", h)
	}
}
