package history

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"o2pc/internal/storage"
)

// jsonOp is the serialized form of an Op.
type jsonOp struct {
	Site     string `json:"site"`
	Txn      string `json:"txn"`
	Type     string `json:"type"` // "r" or "w"
	Key      string `json:"key"`
	Seq      uint64 `json:"seq"`
	ReadFrom string `json:"readFrom,omitempty"`
}

// jsonTxn is the serialized form of a TxnInfo.
type jsonTxn struct {
	ID      string `json:"id"`
	Kind    string `json:"kind"` // "T", "CT", "L"
	Fate    string `json:"fate"` // "committed", "aborted", "unknown"
	Forward string `json:"forward,omitempty"`
}

// jsonHistory is the on-disk document.
type jsonHistory struct {
	Txns []jsonTxn `json:"txns"`
	Ops  []jsonOp  `json:"ops"`
}

// WriteJSON serializes h so that offline tools (cmd/sgcheck) can audit it.
func WriteJSON(w io.Writer, h *History) error {
	doc := jsonHistory{}
	ids := make([]string, 0, len(h.Txns))
	for id := range h.Txns {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		info := h.Txns[id]
		doc.Txns = append(doc.Txns, jsonTxn{
			ID:      info.ID,
			Kind:    info.Kind.String(),
			Fate:    info.Fate.String(),
			Forward: info.Forward,
		})
	}
	for _, op := range h.Ops {
		doc.Ops = append(doc.Ops, jsonOp{
			Site:     op.Site,
			Txn:      op.Txn,
			Type:     op.Type.String(),
			Key:      string(op.Key),
			Seq:      op.Seq,
			ReadFrom: op.ReadFrom,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadJSON deserializes a history written by WriteJSON.
func ReadJSON(r io.Reader) (*History, error) {
	var doc jsonHistory
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("history: decode: %w", err)
	}
	h := &History{Txns: make(map[string]TxnInfo, len(doc.Txns))}
	for _, jt := range doc.Txns {
		info := TxnInfo{ID: jt.ID, Forward: jt.Forward}
		switch jt.Kind {
		case "T":
			info.Kind = KindGlobal
		case "CT":
			info.Kind = KindCompensating
		case "L":
			info.Kind = KindLocal
		default:
			return nil, fmt.Errorf("history: unknown kind %q for %s", jt.Kind, jt.ID)
		}
		switch jt.Fate {
		case "committed":
			info.Fate = FateCommitted
		case "aborted":
			info.Fate = FateAborted
		case "unknown":
			info.Fate = FateUnknown
		default:
			return nil, fmt.Errorf("history: unknown fate %q for %s", jt.Fate, jt.ID)
		}
		h.Txns[jt.ID] = info
	}
	for _, jo := range doc.Ops {
		op := Op{
			Site:     jo.Site,
			Txn:      jo.Txn,
			Key:      storage.Key(jo.Key),
			Seq:      jo.Seq,
			ReadFrom: jo.ReadFrom,
		}
		switch jo.Type {
		case "r":
			op.Type = OpRead
		case "w":
			op.Type = OpWrite
		default:
			return nil, fmt.Errorf("history: unknown op type %q", jo.Type)
		}
		h.Ops = append(h.Ops, op)
	}
	return h, nil
}
