package history

import (
	"testing"

	"o2pc/internal/storage"
)

func TestRecorderSequencesPerSite(t *testing.T) {
	r := NewRecorder()
	r.Record("s0", "T1", OpWrite, "a", "")
	r.Record("s1", "T1", OpWrite, "a", "")
	r.Record("s0", "T2", OpRead, "a", "T1")
	h := r.Snapshot()
	s0 := h.OpsAt("s0")
	if len(s0) != 2 || s0[0].Seq != 1 || s0[1].Seq != 2 {
		t.Fatalf("s0 ops = %+v", s0)
	}
	s1 := h.OpsAt("s1")
	if len(s1) != 1 || s1[0].Seq != 1 {
		t.Fatalf("s1 ops = %+v", s1)
	}
}

func TestDeclareAndFate(t *testing.T) {
	r := NewRecorder()
	r.Declare("T1", KindGlobal, "")
	r.Declare("CT1", KindCompensating, "T1")
	r.SetFate("T1", FateAborted)
	h := r.Snapshot()
	if h.KindOf("T1") != KindGlobal || h.KindOf("CT1") != KindCompensating {
		t.Fatalf("kinds wrong")
	}
	if h.FateOf("T1") != FateAborted {
		t.Fatalf("fate = %v", h.FateOf("T1"))
	}
	if h.CompensationOf("T1") != "CT1" {
		t.Fatalf("compensation link = %q", h.CompensationOf("T1"))
	}
	if h.CompensationOf("T9") != "" {
		t.Fatalf("phantom compensation")
	}
}

func TestUnknownNodeDefaultsLocal(t *testing.T) {
	r := NewRecorder()
	r.Record("s0", "Lx", OpRead, "a", "")
	h := r.Snapshot()
	if h.KindOf("Lx") != KindLocal {
		t.Fatalf("kind = %v", h.KindOf("Lx"))
	}
	if h.FateOf("Lx") != FateUnknown {
		t.Fatalf("fate = %v", h.FateOf("Lx"))
	}
}

func TestDeclarePreservesFate(t *testing.T) {
	r := NewRecorder()
	r.SetFate("T1", FateCommitted)
	r.Declare("T1", KindGlobal, "")
	if r.Snapshot().FateOf("T1") != FateCommitted {
		t.Fatalf("Declare clobbered fate")
	}
}

func TestSitesSorted(t *testing.T) {
	r := NewRecorder()
	r.Record("s2", "T1", OpWrite, "a", "")
	r.Record("s0", "T1", OpWrite, "a", "")
	h := r.Snapshot()
	sites := h.Sites()
	if len(sites) != 2 || sites[0] != "s0" || sites[1] != "s2" {
		t.Fatalf("sites = %v", sites)
	}
}

func TestConflicts(t *testing.T) {
	w := func(site, txn string, key storage.Key) Op {
		return Op{Site: site, Txn: txn, Type: OpWrite, Key: key}
	}
	r := func(site, txn string, key storage.Key) Op {
		return Op{Site: site, Txn: txn, Type: OpRead, Key: key}
	}
	cases := []struct {
		a, b Op
		want bool
	}{
		{w("s0", "T1", "a"), w("s0", "T2", "a"), true},  // w-w
		{w("s0", "T1", "a"), r("s0", "T2", "a"), true},  // w-r
		{r("s0", "T1", "a"), w("s0", "T2", "a"), true},  // r-w
		{r("s0", "T1", "a"), r("s0", "T2", "a"), false}, // r-r
		{w("s0", "T1", "a"), w("s0", "T1", "a"), false}, // same txn
		{w("s0", "T1", "a"), w("s1", "T2", "a"), false}, // different site
		{w("s0", "T1", "a"), w("s0", "T2", "b"), false}, // different key
	}
	for i, tc := range cases {
		if got := Conflicts(tc.a, tc.b); got != tc.want {
			t.Errorf("case %d: Conflicts = %v, want %v", i, got, tc.want)
		}
	}
}

func TestSnapshotIsolation(t *testing.T) {
	r := NewRecorder()
	r.Record("s0", "T1", OpWrite, "a", "")
	h := r.Snapshot()
	r.Record("s0", "T2", OpWrite, "a", "")
	if len(h.Ops) != 1 {
		t.Fatalf("snapshot grew after later records")
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder()
	r.Record("s0", "T1", OpWrite, "a", "")
	r.Reset()
	h := r.Snapshot()
	if len(h.Ops) != 0 || len(h.Txns) != 0 {
		t.Fatalf("reset incomplete: %+v", h)
	}
	r.Record("s0", "T2", OpWrite, "a", "")
	if r.Snapshot().OpsAt("s0")[0].Seq != 1 {
		t.Fatalf("sequence not reset")
	}
}

func TestKindAndFateStrings(t *testing.T) {
	if KindGlobal.String() != "T" || KindCompensating.String() != "CT" || KindLocal.String() != "L" {
		t.Fatalf("kind strings")
	}
	if OpRead.String() != "r" || OpWrite.String() != "w" {
		t.Fatalf("op strings")
	}
	if FateCommitted.String() != "committed" || FateAborted.String() != "aborted" || FateUnknown.String() != "unknown" {
		t.Fatalf("fate strings")
	}
}

func TestVoidSiteOps(t *testing.T) {
	r := NewRecorder()
	r.Record("s0", "T1", OpWrite, "a", "")
	r.Record("s0", "T2", OpWrite, "a", "")
	r.Record("s1", "T1", OpWrite, "b", "")
	r.VoidSiteOps("s0", "T1")
	h := r.Snapshot()
	for _, op := range h.Ops {
		if op.Site == "s0" && op.Txn == "T1" {
			t.Fatalf("voided op survived: %+v", op)
		}
	}
	if len(h.OpsAt("s0")) != 1 || len(h.OpsAt("s1")) != 1 {
		t.Fatalf("unrelated ops disturbed: s0=%d s1=%d", len(h.OpsAt("s0")), len(h.OpsAt("s1")))
	}
	// Voiding an absent pair is a no-op.
	r.VoidSiteOps("s9", "T9")
	if len(r.Snapshot().Ops) != 2 {
		t.Fatalf("no-op void changed history")
	}
}
