package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"o2pc/internal/sim"
	"o2pc/internal/wal"
)

func TestEventTypeNamesComplete(t *testing.T) {
	for i := EventType(0); i < numEventTypes; i++ {
		name := eventTypeNames[i]
		if name == "" {
			t.Fatalf("event type %d has no name", i)
		}
		got, ok := TypeByName(name)
		if !ok || got != i {
			t.Fatalf("TypeByName(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := TypeByName("no.such.event"); ok {
		t.Fatalf("unknown name resolved")
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit("s0", EvVoteYes, "T1", "", "")
	if tr.Events() != nil || tr.Dropped() != nil {
		t.Fatalf("nil tracer returned data")
	}
	tr.Reset()
}

func TestEmitAndOrder(t *testing.T) {
	clk := sim.NewVirtualClock()
	tr := New(clk, 16)
	g := sim.NewGroup(clk)
	g.Go(func() {
		tr.Emit("c0", EvTxnBegin, "T1", "", "")
		tr.Emit("s0", EvVoteReqRecv, "T1", "c0", "")
		_ = clk.Sleep(context.Background(), time.Millisecond)
		tr.Emit("s0", EvVoteYes, "T1", "c0", "")
		tr.Emit("c0", EvVoteRecv, "T1", "s0", "yes")
	})
	g.Wait()
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("got %d events, want 4", len(ev))
	}
	// Ordered by (T, Node, Seq): the two time-zero events sort by node
	// name, then the post-sleep pair likewise.
	want := []EventType{EvTxnBegin, EvVoteReqRecv, EvVoteRecv, EvVoteYes}
	for i, e := range ev {
		if e.Type != want[i] {
			t.Errorf("event %d = %v, want %v", i, e.Type, want[i])
		}
	}
	if ev[0].T >= ev[2].T {
		t.Errorf("virtual time did not advance: %d >= %d", ev[0].T, ev[2].T)
	}
}

func TestDrainEmptiesWithoutLosingSequence(t *testing.T) {
	var nilTr *Tracer
	if nilTr.Drain() != nil {
		t.Fatalf("nil tracer drained data")
	}
	tr := New(sim.NewVirtualClock(), 4)
	tr.Emit("s0", EvVoteYes, "T1", "", "")
	tr.Emit("s0", EvVoteNo, "T2", "", "")
	first := tr.Drain()
	if len(first) != 2 || first[0].Seq != 1 || first[1].Seq != 2 {
		t.Fatalf("first drain = %+v", first)
	}
	if ev := tr.Events(); len(ev) != 0 {
		t.Fatalf("drain left %d events behind", len(ev))
	}
	// Sequence numbering continues: an event is reported exactly once and
	// the node-local order across drains stays total.
	tr.Emit("s0", EvExposed, "T3", "", "")
	second := tr.Drain()
	if len(second) != 1 || second[0].Seq != 3 || second[0].Type != EvExposed {
		t.Fatalf("second drain = %+v", second)
	}
	if len(tr.Drain()) != 0 {
		t.Fatalf("third drain not empty")
	}
}

func TestRingDropsOldest(t *testing.T) {
	tr := New(sim.Real(), 4)
	for i := 0; i < 10; i++ {
		tr.Emit("n", EvMsgSend, "", "", "")
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d, want 4", len(ev))
	}
	// The survivors are the newest four emissions (seq 7..10).
	if ev[0].Seq != 7 || ev[3].Seq != 10 {
		t.Fatalf("wrong survivors: seq %d..%d", ev[0].Seq, ev[3].Seq)
	}
	if d := tr.Dropped()["n"]; d != 6 {
		t.Fatalf("dropped = %d, want 6", d)
	}
}

func TestEmitConcurrent(t *testing.T) {
	tr := New(sim.Real(), 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		node := string(rune('a' + g))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Emit(node, EvMsgRecv, "T", "", "")
			}
		}()
	}
	wg.Wait()
	if n := len(tr.Events()); n != 4000 {
		t.Fatalf("got %d events, want 4000", n)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := []Event{
		{T: 100, Node: "c0", Seq: 1, Type: EvTxnBegin, Txn: "T1"},
		{T: 200, Node: "s0", Seq: 1, Type: EvVoteYes, Txn: "T1", Peer: "c0", Detail: "o2pc"},
		{T: 300, Node: "net", Seq: 1, Type: EvMsgDrop, Peer: "s0"},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Fatalf("line count = %d", got)
	}
	if !strings.Contains(buf.String(), `"type":"vote.yes"`) {
		t.Fatalf("type not spelled by name: %s", buf.String())
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip length %d != %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("event %d: %+v != %+v", i, out[i], in[i])
		}
	}
}

func TestReadJSONLRejectsUnknownType(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader(`{"t":1,"node":"x","seq":1,"type":"bogus"}`))
	if err == nil {
		t.Fatalf("unknown type accepted")
	}
}

func TestWriteChromeSchema(t *testing.T) {
	events := []Event{
		{T: 1_000_000, Node: "c0", Seq: 1, Type: EvTxnBegin, Txn: "T1"},
		{T: 2_000_000, Node: "s0", Seq: 1, Type: EvVoteYes, Txn: "T1", Peer: "c0"},
		{T: 3_000_000, Node: "c0", Seq: 2, Type: EvCrash},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, events); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	phases := map[string]int{}
	for _, e := range f.TraceEvents {
		ph, _ := e["ph"].(string)
		phases[ph]++
		if _, ok := e["pid"].(float64); !ok {
			t.Fatalf("event missing pid: %v", e)
		}
		if _, ok := e["ts"]; !ok && ph != "M" {
			t.Fatalf("non-metadata event missing ts: %v", e)
		}
	}
	if phases["M"] == 0 || phases["X"] == 0 || phases["i"] != 3 {
		t.Fatalf("phase counts = %v", phases)
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "traceEvents") {
		t.Fatalf("empty trace missing envelope: %s", buf.String())
	}
}

func TestWrapLog(t *testing.T) {
	tr := New(sim.Real(), 0)
	l := WrapLog(wal.NewMemoryLog(), tr, "s0")
	if _, err := l.Append(wal.Record{Type: wal.RecBegin, TxnID: "T1", Aux: "sites=s0"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	ev := tr.Events()
	if len(ev) != 2 {
		t.Fatalf("got %d events, want 2", len(ev))
	}
	if ev[0].Type != EvWALAppend || ev[0].Txn != "T1" || !strings.Contains(ev[0].Detail, "sites=s0") {
		t.Fatalf("append event = %+v", ev[0])
	}
	if ev[1].Type != EvWALSync {
		t.Fatalf("sync event = %+v", ev[1])
	}
}

func TestWrapLogNilPassthrough(t *testing.T) {
	inner := wal.NewMemoryLog()
	if got := WrapLog(inner, nil, "s0"); got != wal.Log(inner) {
		t.Fatalf("nil tracer should return inner unchanged")
	}
	if got := WrapLog(nil, New(sim.Real(), 0), "s0"); got != nil {
		t.Fatalf("nil inner should stay nil")
	}
}

func TestNodesAndTxns(t *testing.T) {
	events := []Event{
		{Node: "s1", Txn: "T2"},
		{Node: "s0", Txn: "T1"},
		{Node: "s1", Txn: ""},
	}
	if got := Nodes(events); len(got) != 2 || got[0] != "s0" || got[1] != "s1" {
		t.Fatalf("nodes = %v", got)
	}
	if got := Txns(events); len(got) != 2 || got[0] != "T1" || got[1] != "T2" {
		t.Fatalf("txns = %v", got)
	}
}
