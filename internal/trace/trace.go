// Package trace is a structured, deterministic tracing layer for the
// commit protocols in this repository. Every protocol step — vote
// requests, YES/NO votes, local commits and lock releases, decisions,
// WAL appends and syncs, compensation runs, recovery inquiries — is
// recorded as an Event timestamped from sim.Clock virtual time.
//
// Under the deterministic virtual clock a given seed and fault schedule
// produce a byte-identical event stream, so traces are golden-testable:
// the JSONL export of a run is a stable artifact. The same events also
// export as Chrome trace-event JSON loadable in Perfetto or
// chrome://tracing for a visual per-transaction timeline.
//
// Events land in a bounded per-node ring buffer; when a node's ring
// overflows, the oldest events are dropped and the drop is counted, so
// a tracer never grows without bound on long runs.
//
// The package is stdlib-only and contains no wall-clock reads or global
// randomness (the o2pcvet walltime and randdet analyzers apply to it
// like to every other internal package).
package trace

import (
	"fmt"
	"sort"
	"sync"

	"o2pc/internal/sim"
)

// EventType classifies a protocol trace event.
type EventType int

// The event vocabulary. Names map onto the paper's protocol messages
// (Levy/Korth/Silberschatz 1991): VoteReq* are VOTE-REQ, VoteYes/VoteNo
// the YES/NO votes, Decision* the DECISION message, Comp* the
// compensating subtransaction CTik, and Resolve* the decision inquiry a
// blocked or recovering participant sends. WAL* mark the stable-storage
// write-ahead points of Theorem 2.
const (
	EvTxnBegin EventType = iota
	EvExecSend
	EvExecRecv
	EvExecDone
	EvVoteReqSend
	EvVoteReqRecv
	EvVoteYes
	EvVoteNo
	EvVoteRecv
	EvPrepared
	EvLocalCommit
	EvLockRelease
	EvDecisionReached
	EvDecisionSend
	EvDecisionRecv
	EvDecisionAck
	EvTxnOutcome
	EvResolveSend
	EvResolveRecv
	EvCompBegin
	EvCompRetry
	EvCompEnd
	EvWALAppend
	EvWALSync
	EvMsgSend
	EvMsgRecv
	EvMsgDrop
	EvCrash
	EvRecover
	EvExposed
	EvRecoverPending
	EvRecoverComp
	EvRecoverMarks
	EvSessionOpen
	EvSessionRound
	EvRPCBatch
	EvRepBegin
	EvRepAccept
	EvRepTakeover

	numEventTypes // sentinel; keep last
)

// eventTypeNames is the canonical wire spelling of each EventType. A map
// keyed by the full enum (rather than a switch) keeps the exhaustive
// analyzer trivially satisfied and makes the name set greppable.
var eventTypeNames = [numEventTypes]string{
	EvTxnBegin:        "txn.begin",
	EvExecSend:        "exec.send",
	EvExecRecv:        "exec.recv",
	EvExecDone:        "exec.done",
	EvVoteReqSend:     "votereq.send",
	EvVoteReqRecv:     "votereq.recv",
	EvVoteYes:         "vote.yes",
	EvVoteNo:          "vote.no",
	EvVoteRecv:        "vote.recv",
	EvPrepared:        "prepared",
	EvLocalCommit:     "local.commit",
	EvLockRelease:     "lock.release",
	EvDecisionReached: "decision.reached",
	EvDecisionSend:    "decision.send",
	EvDecisionRecv:    "decision.recv",
	EvDecisionAck:     "decision.ack",
	EvTxnOutcome:      "txn.outcome",
	EvResolveSend:     "resolve.send",
	EvResolveRecv:     "resolve.recv",
	EvCompBegin:       "comp.begin",
	EvCompRetry:       "comp.retry",
	EvCompEnd:         "comp.end",
	EvWALAppend:       "wal.append",
	EvWALSync:         "wal.sync",
	EvMsgSend:         "msg.send",
	EvMsgRecv:         "msg.recv",
	EvMsgDrop:         "msg.drop",
	EvCrash:           "crash",
	EvRecover:         "recover",
	EvExposed:         "exposed",
	EvRecoverPending:  "recover.pending",
	EvRecoverComp:     "recover.comp",
	EvRecoverMarks:    "recover.marks",
	EvSessionOpen:     "session.open",
	EvSessionRound:    "session.round",
	EvRPCBatch:        "rpc.batch",
	EvRepBegin:        "replog.begin",
	EvRepAccept:       "replog.accept",
	EvRepTakeover:     "replog.takeover",
}

// eventTypeByName is the inverse of eventTypeNames, for JSONL decoding.
var eventTypeByName = func() map[string]EventType {
	m := make(map[string]EventType, len(eventTypeNames))
	for i, n := range eventTypeNames {
		m[n] = EventType(i)
	}
	return m
}()

// String returns the canonical name, or a numeric form for unknown values.
func (t EventType) String() string {
	if t >= 0 && int(t) < len(eventTypeNames) {
		return eventTypeNames[t]
	}
	return fmt.Sprintf("eventtype(%d)", int(t))
}

// TypeByName resolves a canonical event-type name (e.g. "vote.yes").
func TypeByName(name string) (EventType, bool) {
	t, ok := eventTypeByName[name]
	return t, ok
}

// Event is one timestamped protocol step observed at a node.
type Event struct {
	// T is virtual time as nanoseconds since the Unix epoch
	// (clock.Now().UnixNano()); under a VirtualClock two runs with the
	// same seed produce identical values.
	T int64 `json:"t"`
	// Node names where the event was observed ("c0", "s1", "net", ...).
	Node string `json:"node"`
	// Seq is the node-local emission index; (T, Node, Seq) totally
	// orders a trace even when many events share a virtual timestamp.
	Seq uint64 `json:"seq"`
	// Type classifies the event.
	Type EventType `json:"-"`
	// Txn is the global transaction this event belongs to, "" for
	// node-scoped events such as crash/recover.
	Txn string `json:"txn,omitempty"`
	// Peer is the other endpoint for message events, "" otherwise.
	Peer string `json:"peer,omitempty"`
	// Detail carries event-specific context ("commit", "rec=update", ...).
	Detail string `json:"detail,omitempty"`
}

// ring is a fixed-capacity event buffer that drops the oldest entries.
type ring struct {
	buf     []Event
	start   int // index of the oldest event
	n       int // events currently held
	seq     uint64
	dropped uint64
}

func (r *ring) push(e Event) {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = e
		r.n++
		return
	}
	r.buf[r.start] = e
	r.start = (r.start + 1) % len(r.buf)
	r.dropped++
}

func (r *ring) events() []Event {
	out := make([]Event, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.start+i)%len(r.buf)])
	}
	return out
}

// DefaultNodeCapacity bounds each node's ring when New is given cap <= 0.
const DefaultNodeCapacity = 8192

// Tracer collects events from every node of a cluster. A nil *Tracer is
// valid and discards everything, so call sites never need a guard.
type Tracer struct {
	clock sim.Clock
	cap   int

	mu    sync.Mutex
	rings map[string]*ring
}

// New returns a Tracer stamping events from clock (sim.Real() if nil)
// with at most perNodeCap events retained per node (DefaultNodeCapacity
// if <= 0).
func New(clock sim.Clock, perNodeCap int) *Tracer {
	if perNodeCap <= 0 {
		perNodeCap = DefaultNodeCapacity
	}
	return &Tracer{clock: sim.OrReal(clock), cap: perNodeCap}
}

// Emit records one event observed at node. It is safe on a nil Tracer.
// The virtual-clock read happens before the tracer lock is taken so the
// tracer never blocks on virtual time while holding its mutex.
func (tr *Tracer) Emit(node string, typ EventType, txn, peer, detail string) {
	if tr == nil {
		return
	}
	now := tr.clock.Now().UnixNano()
	tr.mu.Lock()
	if tr.rings == nil {
		tr.rings = make(map[string]*ring)
	}
	r, ok := tr.rings[node]
	if !ok {
		r = &ring{buf: make([]Event, tr.cap)}
		tr.rings[node] = r
	}
	r.seq++
	r.push(Event{T: now, Node: node, Seq: r.seq, Type: typ, Txn: txn, Peer: peer, Detail: detail})
	tr.mu.Unlock()
}

// Events returns every retained event merged across nodes, ordered by
// (T, Node, Seq). The result is a copy; the tracer keeps collecting.
func (tr *Tracer) Events() []Event {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	var out []Event
	for _, r := range tr.rings {
		out = append(out, r.events()...)
	}
	tr.mu.Unlock()
	SortEvents(out)
	return out
}

// Drain atomically returns every retained event (ordered like Events)
// and empties the rings. Per-node sequence numbers and drop counts carry
// on, so interleaved Emit calls are never double-reported or lost: an
// event is returned by exactly one Drain (or a final Events call). The
// ops server's /trace/recent?drain=1 live tail is built on this.
func (tr *Tracer) Drain() []Event {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	var out []Event
	for _, r := range tr.rings {
		out = append(out, r.events()...)
		r.start = 0
		r.n = 0
	}
	tr.mu.Unlock()
	SortEvents(out)
	return out
}

// Dropped reports, per node, how many events the ring discarded.
func (tr *Tracer) Dropped() map[string]uint64 {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make(map[string]uint64)
	for node, r := range tr.rings {
		if r.dropped > 0 {
			out[node] = r.dropped
		}
	}
	return out
}

// Reset discards all retained events and sequence state.
func (tr *Tracer) Reset() {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.rings = nil
	tr.mu.Unlock()
}

// SortEvents orders events by (T, Node, Seq) — the canonical trace order.
func SortEvents(events []Event) {
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Seq < b.Seq
	})
}

// Nodes returns the sorted set of node names appearing in events.
func Nodes(events []Event) []string {
	seen := make(map[string]bool)
	var out []string
	for _, e := range events {
		if !seen[e.Node] {
			seen[e.Node] = true
			out = append(out, e.Node)
		}
	}
	sort.Strings(out)
	return out
}

// Txns returns the sorted set of non-empty transaction ids in events.
func Txns(events []Event) []string {
	seen := make(map[string]bool)
	var out []string
	for _, e := range events {
		if e.Txn != "" && !seen[e.Txn] {
			seen[e.Txn] = true
			out = append(out, e.Txn)
		}
	}
	sort.Strings(out)
	return out
}
