package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// eventJSON is the wire form of Event: the Type is spelled by name so
// traces stay readable and stable if the enum is ever reordered.
type eventJSON struct {
	T      int64  `json:"t"`
	Node   string `json:"node"`
	Seq    uint64 `json:"seq"`
	Type   string `json:"type"`
	Txn    string `json:"txn,omitempty"`
	Peer   string `json:"peer,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// MarshalJSON encodes the event with its type name.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(eventJSON{
		T: e.T, Node: e.Node, Seq: e.Seq, Type: e.Type.String(),
		Txn: e.Txn, Peer: e.Peer, Detail: e.Detail,
	})
}

// UnmarshalJSON decodes the wire form, resolving the type name.
func (e *Event) UnmarshalJSON(data []byte) error {
	var w eventJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	typ, ok := TypeByName(w.Type)
	if !ok {
		return fmt.Errorf("trace: unknown event type %q", w.Type)
	}
	*e = Event{T: w.T, Node: w.Node, Seq: w.Seq, Type: typ,
		Txn: w.Txn, Peer: w.Peer, Detail: w.Detail}
	return nil
}

// WriteJSONL writes one JSON object per line in canonical trace order.
// The output of a deterministic run is byte-identical across runs.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace, skipping blank lines.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// "M" metadata rows name processes/threads, "X" complete events draw
// spans, "i" instant events draw markers. Perfetto and chrome://tracing
// both load the {"traceEvents": [...]} envelope.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`            // microseconds
	Dur   int64          `json:"dur,omitempty"` // microseconds, "X" only
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant scope
	Args  map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChrome renders events as Chrome trace-event JSON. Each transaction
// becomes a process (pid) and each node a thread (tid) within it, so
// Perfetto shows one lane per (txn, node) pair: the lane's span runs from
// the transaction's first to last event at that node, with every event an
// instant marker on the lane. Events with no transaction (crash, recover,
// raw message traffic) land in a synthetic "cluster" process.
func WriteChrome(w io.Writer, events []Event) error {
	if len(events) == 0 {
		return json.NewEncoder(w).Encode(chromeFile{TraceEvents: []chromeEvent{}})
	}
	sorted := append([]Event(nil), events...)
	SortEvents(sorted)
	t0 := sorted[0].T

	// Stable pid/tid assignment: pid 0 is the txn-less "cluster" process,
	// then one pid per transaction id in sorted order; tids follow the
	// sorted node names.
	txns := Txns(sorted)
	pidOf := map[string]int{"": 0}
	for i, txn := range txns {
		pidOf[txn] = i + 1
	}
	nodes := Nodes(sorted)
	tidOf := make(map[string]int, len(nodes))
	for i, node := range nodes {
		tidOf[node] = i
	}

	var out []chromeEvent
	meta := func(pid int, kind, name string, tid int) {
		out = append(out, chromeEvent{
			Name: kind, Phase: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": name},
		})
	}
	meta(0, "process_name", "cluster", 0)
	for _, txn := range txns {
		meta(pidOf[txn], "process_name", txn, 0)
	}
	for pid := 0; pid <= len(txns); pid++ {
		for _, node := range nodes {
			meta(pid, "thread_name", node, tidOf[node])
		}
	}

	// One span per (txn, node) from first to last event.
	type laneKey struct {
		txn, node string
	}
	firstT := make(map[laneKey]int64)
	lastT := make(map[laneKey]int64)
	var laneOrder []laneKey
	for _, e := range sorted {
		k := laneKey{e.Txn, e.Node}
		if _, ok := firstT[k]; !ok {
			firstT[k] = e.T
			laneOrder = append(laneOrder, k)
		}
		lastT[k] = e.T
	}
	sort.Slice(laneOrder, func(i, j int) bool {
		a, b := laneOrder[i], laneOrder[j]
		if a.txn != b.txn {
			return a.txn < b.txn
		}
		return a.node < b.node
	})
	for _, k := range laneOrder {
		name := k.txn
		if name == "" {
			name = k.node
		}
		dur := (lastT[k] - firstT[k]) / 1e3
		if dur < 1 {
			dur = 1
		}
		out = append(out, chromeEvent{
			Name: name, Phase: "X",
			TS: (firstT[k] - t0) / 1e3, Dur: dur,
			PID: pidOf[k.txn], TID: tidOf[k.node],
		})
	}

	for _, e := range sorted {
		args := map[string]any{}
		if e.Peer != "" {
			args["peer"] = e.Peer
		}
		if e.Detail != "" {
			args["detail"] = e.Detail
		}
		if len(args) == 0 {
			args = nil
		}
		out = append(out, chromeEvent{
			Name: e.Type.String(), Phase: "i",
			TS:  (e.T - t0) / 1e3,
			PID: pidOf[e.Txn], TID: tidOf[e.Node],
			Scope: "t", Args: args,
		})
	}
	return json.NewEncoder(w).Encode(chromeFile{TraceEvents: out})
}
