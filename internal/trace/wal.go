package trace

import (
	"o2pc/internal/wal"
)

// tracedLog decorates a wal.Log so that every append and sync emits a
// trace event — the stable-storage write-ahead points of the paper's
// Theorem 2 become visible on the timeline without the wal package
// knowing about tracing.
type tracedLog struct {
	wal.Log
	tr   *Tracer
	node string
}

// WrapLog returns a wal.Log that forwards to inner and emits EvWALAppend
// and EvWALSync events at node. A nil tracer or nil inner returns inner
// unchanged.
func WrapLog(inner wal.Log, tr *Tracer, node string) wal.Log {
	if tr == nil || inner == nil {
		return inner
	}
	return &tracedLog{Log: inner, tr: tr, node: node}
}

func (l *tracedLog) Append(rec wal.Record) (uint64, error) {
	lsn, err := l.Log.Append(rec)
	if err == nil {
		detail := rec.Type.String()
		if rec.Aux != "" {
			detail += " " + rec.Aux
		}
		l.tr.Emit(l.node, EvWALAppend, rec.TxnID, "", detail)
	}
	return lsn, err
}

func (l *tracedLog) Sync() error {
	err := l.Log.Sync()
	if err == nil {
		l.tr.Emit(l.node, EvWALSync, "", "", "")
	}
	return err
}
