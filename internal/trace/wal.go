package trace

import (
	"o2pc/internal/wal"
)

// tracedLog decorates a wal.Log so that every append and sync emits a
// trace event — the stable-storage write-ahead points of the paper's
// Theorem 2 become visible on the timeline without the wal package
// knowing about tracing.
type tracedLog struct {
	wal.Log
	tr   *Tracer
	node string
	// syncEvents gates EvWALSync emission: a group-commit log emits its
	// own sync events (with batch sizes) at the physical sync, so the
	// per-caller Sync must stay silent to avoid double counting.
	syncEvents bool
}

// WrapLog returns a wal.Log that forwards to inner and emits EvWALAppend
// and EvWALSync events at node. A nil tracer or nil inner returns inner
// unchanged.
func WrapLog(inner wal.Log, tr *Tracer, node string) wal.Log {
	if tr == nil || inner == nil {
		return inner
	}
	return &tracedLog{Log: inner, tr: tr, node: node, syncEvents: true}
}

// WrapAppends is WrapLog without the EvWALSync events: appends are traced,
// syncs pass through silently. Used when a wal.GroupCommitLog sits between
// the callers and the physical log — the group commit layer reports each
// physical sync (with its batch size) through its OnFlush hook instead, so
// the timeline shows one EvWALSync per fsync rather than one per caller.
func WrapAppends(inner wal.Log, tr *Tracer, node string) wal.Log {
	if tr == nil || inner == nil {
		return inner
	}
	return &tracedLog{Log: inner, tr: tr, node: node}
}

func (l *tracedLog) Append(rec wal.Record) (uint64, error) {
	lsn, err := l.Log.Append(rec)
	if err == nil {
		detail := rec.Type.String()
		if rec.Aux != "" {
			detail += " " + rec.Aux
		}
		l.tr.Emit(l.node, EvWALAppend, rec.TxnID, "", detail)
	}
	return lsn, err
}

func (l *tracedLog) Sync() error {
	err := l.Log.Sync()
	if err == nil && l.syncEvents {
		l.tr.Emit(l.node, EvWALSync, "", "", "")
	}
	return err
}
