package analyzers_test

import (
	"testing"

	"o2pc/internal/analyzers"
	"o2pc/internal/analyzers/analysistest"
)

func TestGoleak(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Goleak,
		"goleak/a",
	)
}
