package analyzers_test

import (
	"testing"

	"o2pc/internal/analyzers"
	"o2pc/internal/analyzers/analysistest"
)

func TestWalorder(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Walorder,
		"walorder/internal/site",
		"walorder/internal/other",
	)
}
