package analyzers

import (
	"go/ast"

	"o2pc/internal/analyzers/framework"
)

// Ackorder enforces decision-durability ordering in the coordinator
// package: every call to deliverDecision — the DECISION fan-out to the
// participants — must be dominated, on the same path through the
// enclosing function, by a call that makes the decision durable first:
// DecisionLog.Decide, DecisionLog.PresumeAbort, DecisionLog.Snapshot
// (leader takeover re-reads — and re-proposes — the majority), or
// Coordinator.adoptPrior (which only returns a deliverable decision that
// is already logged). Under the replicated log "durable" means
// majority-acked: announcing a DECISION before the ballot's majority ack
// would let the decision die with the coordinator after participants
// acted on it — exactly the blocking window Paxos Commit exists to close.
//
// The walk is intraprocedural and path-sensitive like walorder's, with
// one deliberate difference: function literals inherit the flag at their
// syntactic position. Recovery's re-delivery fan-out spawns
// deliverDecision inside per-transaction goroutines after Snapshot has
// re-read the majority, and that dominance is real — the spawn site is
// only reachable through the durability call.
var Ackorder = &framework.Analyzer{
	Name: "ackorder",
	Doc: "in internal/coord, deliverDecision must be dominated by a " +
		"decision-durability call (Decide/PresumeAbort/Snapshot/adoptPrior)",
	Run: runAckorder,
}

// ackorderEstablishers are the DecisionLog methods whose return means the
// decision (or, for Snapshot, every possibly-chosen decision) is durable —
// synced locally, or majority-acked when the log is replicated. Sync is
// deliberately absent: it is a durability wait for records already
// appended, not evidence that this path appended one.
var ackorderEstablishers = map[string]bool{
	"Decide": true, "PresumeAbort": true, "Snapshot": true,
}

func runAckorder(pass *framework.Pass) error {
	if !pathEndsWith(pass.Pkg.Path(), "internal/coord") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w := &ackWalker{pass: pass}
					w.block(fn.Body, false)
				}
				return false
			case *ast.FuncLit:
				w := &ackWalker{pass: pass}
				w.block(fn.Body, false)
				return false
			}
			return true
		})
	}
	return nil
}

type ackWalker struct {
	pass *framework.Pass
}

// block walks stmts threading the acked flag; it returns the exit flag
// and whether control cannot flow past the block.
func (w *ackWalker) block(b *ast.BlockStmt, acked bool) (bool, bool) {
	return w.stmts(b.List, acked)
}

func (w *ackWalker) stmts(list []ast.Stmt, acked bool) (bool, bool) {
	for _, stmt := range list {
		var terminated bool
		acked, terminated = w.stmt(stmt, acked)
		if terminated {
			return acked, true
		}
	}
	return acked, false
}

func (w *ackWalker) stmt(stmt ast.Stmt, acked bool) (bool, bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		acked = w.expr(s.X, acked)
		if call, ok := s.X.(*ast.CallExpr); ok && isPanic(w.pass.TypesInfo, call) {
			return acked, true
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			acked = w.expr(e, acked)
		}
		for _, e := range s.Lhs {
			acked = w.expr(e, acked)
		}
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		acked = w.exprStmtScan(stmt, acked)
	case *ast.DeferStmt, *ast.GoStmt:
		var call *ast.CallExpr
		if d, ok := s.(*ast.DeferStmt); ok {
			call = d.Call
		} else {
			call = s.(*ast.GoStmt).Call
		}
		// The literal inherits the flag: a go/defer body is only reachable
		// through the statements that precede the spawn.
		if lit, ok := call.Fun.(*ast.FuncLit); ok {
			w.block(lit.Body, acked)
		}
		for _, arg := range call.Args {
			acked = w.expr(arg, acked)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			acked = w.expr(e, acked)
		}
		return acked, true
	case *ast.BranchStmt:
		return acked, true
	case *ast.BlockStmt:
		return w.block(s, acked)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, acked)
	case *ast.IfStmt:
		if s.Init != nil {
			acked, _ = w.stmt(s.Init, acked)
		}
		acked = w.expr(s.Cond, acked)
		thenExit, thenTerm := w.block(s.Body, acked)
		elseExit, elseTerm := acked, false
		if s.Else != nil {
			elseExit, elseTerm = w.stmt(s.Else, acked)
		}
		switch {
		case thenTerm && elseTerm:
			return acked, true
		case thenTerm:
			return elseExit, false
		case elseTerm:
			return thenExit, false
		default:
			return thenExit && elseExit, false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			acked, _ = w.stmt(s.Init, acked)
		}
		if s.Cond != nil {
			acked = w.expr(s.Cond, acked)
		}
		w.block(s.Body, acked)
		return acked, false
	case *ast.RangeStmt:
		acked = w.expr(s.X, acked)
		w.block(s.Body, acked)
		return acked, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.clauses(stmt, acked)
	}
	return acked, false
}

func (w *ackWalker) clauses(stmt ast.Stmt, acked bool) (bool, bool) {
	var bodies [][]ast.Stmt
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			acked, _ = w.stmt(s.Init, acked)
		}
		if s.Tag != nil {
			acked = w.expr(s.Tag, acked)
		}
		for _, c := range s.Body.List {
			bodies = append(bodies, c.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			acked, _ = w.stmt(s.Init, acked)
		}
		for _, c := range s.Body.List {
			bodies = append(bodies, c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				w.stmt(cc.Comm, acked)
			}
			bodies = append(bodies, cc.Body)
		}
	}
	merged := true
	allTerm := len(bodies) > 0
	anyLive := false
	for _, body := range bodies {
		exit, term := w.stmts(body, acked)
		if !term {
			merged = merged && exit
			allTerm = false
			anyLive = true
		}
	}
	if !anyLive {
		merged = acked
	}
	return merged, allTerm
}

func (w *ackWalker) exprStmtScan(stmt ast.Stmt, acked bool) bool {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.block(x.Body, acked)
			return false
		case *ast.CallExpr:
			acked = w.call(x, acked)
		}
		return true
	})
	return acked
}

// expr scans one expression in evaluation-ish order for durability calls
// and decision sends.
func (w *ackWalker) expr(e ast.Expr, acked bool) bool {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.block(x.Body, acked)
			return false
		case *ast.CallExpr:
			acked = w.call(x, acked)
		}
		return true
	})
	return acked
}

func (w *ackWalker) call(call *ast.CallExpr, acked bool) bool {
	fn := calleeFunc(w.pass.TypesInfo, call)
	if fn == nil {
		return acked
	}
	if !pathEndsWith(funcPkgPath(fn), "internal/coord") {
		return acked
	}
	named := recvNamed(fn)
	if named == nil {
		return acked
	}
	switch named.Obj().Name() {
	case "DecisionLog":
		if ackorderEstablishers[fn.Name()] {
			return true
		}
	case "Coordinator":
		switch fn.Name() {
		case "adoptPrior":
			// adoptPrior only hands back decisions that are already in the
			// log (a prior run's or recovery's), so delivery after it is
			// delivery of a durable decision.
			return true
		case "deliverDecision":
			if !acked {
				w.pass.Reportf(call.Pos(),
					"coord.Coordinator.deliverDecision is not dominated by a decision-durability call in this function: "+
						"a DECISION announced before DecisionLog.Decide/PresumeAbort/Snapshot returns (majority-acked "+
						"when replicated) can be lost with the coordinator after participants acted on it; "+
						"log the decision first or adopt the prior decided entry")
			}
		}
	}
	return acked
}
