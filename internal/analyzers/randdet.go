package analyzers

import (
	"go/ast"
	"go/types"

	"o2pc/internal/analyzers/framework"
)

// Randdet forbids drawing randomness from math/rand's global source
// outside test files. The global source is seeded differently on every
// process start (and is shared mutable state across goroutines), so any
// use of it makes workload generation, fault injection or retry jitter
// non-replayable; every consumer must thread an explicit seeded
// rand.New(rand.NewSource(seed)) instead.
var Randdet = &framework.Analyzer{
	Name: "randdet",
	Doc: "forbid the global math/rand source outside tests; " +
		"randomness must come from an explicitly seeded rand.New",
	Run: runRanddet,
}

// randdetGlobal is the set of math/rand (and math/rand/v2) package-level
// functions that consume the global source. Constructors (New, NewSource,
// NewZipf, NewPCG, NewChaCha8) are the sanctioned alternative and stay
// legal.
var randdetGlobal = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"IntN": true, "Int32": true, "Int32N": true,
	"Uint": true, "Uint32": true, "Uint64": true, "Uint32N": true,
	"Uint64N": true, "UintN": true, "N": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true,
	"Read": true, "Seed": true,
}

func runRanddet(pass *framework.Pass) error {
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		if isTestFile(filename) {
			// Tests may use throwaway randomness (e.g. shuffling inputs
			// where the property under test is order-independence).
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			path := funcPkgPath(fn)
			if (path != "math/rand" && path != "math/rand/v2") ||
				recvNamed(fn) != nil || !randdetGlobal[fn.Name()] {
				return true
			}
			pass.Reportf(id.Pos(), "rand.%s uses the global math/rand source, which is seeded per-process; "+
				"use an explicitly seeded rand.New(rand.NewSource(seed)) so runs are replayable", fn.Name())
			return true
		})
	}
	return nil
}
