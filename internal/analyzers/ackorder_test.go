package analyzers_test

import (
	"testing"

	"o2pc/internal/analyzers"
	"o2pc/internal/analyzers/analysistest"
)

func TestAckorder(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Ackorder,
		"ackorder/internal/coord",
	)
}
