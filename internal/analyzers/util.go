// Package analyzers holds the o2pcvet suite: ten static-analysis passes
// that mechanically enforce the protocol and determinism invariants the
// paper's guarantees rest on. See DESIGN.md §8 for the mapping from each
// pass to the property it protects.
package analyzers

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"o2pc/internal/analyzers/framework"
)

// All returns the full o2pcvet suite in reporting order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		Walltime,
		Walorder,
		Ackorder,
		Lockheld,
		Exhaustive,
		Randdet,
		Maporder,
		Errflow,
		Lockorder,
		Goleak,
	}
}

// pathEndsWith reports whether path ends with the given slash-separated
// segment suffix on a segment boundary ("o2pc/internal/sim" ends with
// "internal/sim" but "o2pc/internal/simx" does not). Matching by suffix
// rather than full path keeps the analyzers module-agnostic, which is what
// lets the testdata fixtures exercise them under synthetic import paths.
func pathEndsWith(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// pathHasSegment reports whether seg appears as a complete path segment.
func pathHasSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call expression to the static *types.Func it
// invokes (package function or method), or nil for indirect calls and
// conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcPkgPath returns the import path of the package a function (or the
// type its method is declared on) belongs to; "" for builtins.
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// recvNamed returns the named type of fn's receiver (dereferencing one
// pointer), or nil when fn is not a method.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isTestFile reports whether the file at pos is a _test.go file.
func isTestFile(filename string) bool {
	return strings.HasSuffix(filename, "_test.go")
}

// funcKey is the serialization-stable identity of a function inside its
// package, used as the key of membership facts: "Name" for package
// functions, "Type.Name" for methods (pointer receivers normalized away).
func funcKey(fn *types.Func) string {
	if named := recvNamed(fn); named != nil {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// declFunc resolves a FuncDecl to the *types.Func it declares.
func declFunc(info *types.Info, fd *ast.FuncDecl) *types.Func {
	fn, _ := info.Defs[fd.Name].(*types.Func)
	return fn
}

// returnsError reports whether fn's last result is the error type.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// factSet answers membership queries against a per-package []string fact
// (sorted function keys), caching the decoded set by import path. The
// analyzers that summarize functions cross-package (errflow propagators,
// maporder sinks, goleak context-bound spawn targets) all query through
// this shape.
type factSet struct {
	pass  *framework.Pass
	cache map[string]map[string]bool
}

func newFactSet(pass *framework.Pass) *factSet {
	return &factSet{pass: pass, cache: make(map[string]map[string]bool)}
}

// has reports whether fn is a member of its own package's fact.
func (fs *factSet) has(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	set, ok := fs.cache[path]
	if !ok {
		var keys []string
		if fs.pass.ImportFact(path, &keys) {
			set = make(map[string]bool, len(keys))
			for _, k := range keys {
				set[k] = true
			}
		}
		fs.cache[path] = set
	}
	return set[funcKey(fn)]
}

// sortedKeys flattens a membership set into the serialized fact shape.
func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
