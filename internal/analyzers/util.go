// Package analyzers holds the o2pcvet suite: five static-analysis passes
// that mechanically enforce the protocol and determinism invariants the
// paper's guarantees rest on. See DESIGN.md §8 for the mapping from each
// pass to the property it protects.
package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"o2pc/internal/analyzers/framework"
)

// All returns the full o2pcvet suite in reporting order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		Walltime,
		Walorder,
		Lockheld,
		Exhaustive,
		Randdet,
	}
}

// pathEndsWith reports whether path ends with the given slash-separated
// segment suffix on a segment boundary ("o2pc/internal/sim" ends with
// "internal/sim" but "o2pc/internal/simx" does not). Matching by suffix
// rather than full path keeps the analyzers module-agnostic, which is what
// lets the testdata fixtures exercise them under synthetic import paths.
func pathEndsWith(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// pathHasSegment reports whether seg appears as a complete path segment.
func pathHasSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call expression to the static *types.Func it
// invokes (package function or method), or nil for indirect calls and
// conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcPkgPath returns the import path of the package a function (or the
// type its method is declared on) belongs to; "" for builtins.
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// recvNamed returns the named type of fn's receiver (dereferencing one
// pointer), or nil when fn is not a method.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isTestFile reports whether the file at pos is a _test.go file.
func isTestFile(filename string) bool {
	return strings.HasSuffix(filename, "_test.go")
}
