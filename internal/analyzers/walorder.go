package analyzers

import (
	"go/ast"

	"o2pc/internal/analyzers/framework"
)

// Walorder enforces write-ahead ordering in the participant package: every
// direct storage mutation reachable in internal/site must be dominated by
// a WAL append (or a WAL-driven replay helper) on the same path through
// the enclosing function. The paper's semantic-atomicity guarantee
// (Theorem 2) assumes the log captures every exposure-relevant write — a
// store mutation that skips the log is invisible to crash recovery and to
// compensation, which is precisely the SeedInt64 bypass class of bug this
// pass exists to catch.
//
// The walk is intraprocedural and path-sensitive: branches fork the
// "appended" flag and merge by conjunction, so a mutation is clean only
// when every path from the function entry to it passes through an append.
var Walorder = &framework.Analyzer{
	Name: "walorder",
	Doc: "in internal/site, storage mutations must be dominated by a " +
		"wal append (or WAL-driven replay) in the same function",
	Run: runWalorder,
}

// walorderMutators is the set of storage.Store methods that mutate
// durable-looking state.
var walorderMutators = map[string]bool{
	"Put": true, "Delete": true, "Restore": true,
	"Remove": true, "LoadSnapshot": true,
}

// walorderAppends is the set of wal package calls that establish
// log-before-store ordering: direct appends plus the replay helpers whose
// inputs are, by construction, records already in the log. Matching is by
// package path and method name, so GroupCommitLog.Append (a pass-through
// to the inner log) qualifies, while Sync — a durability wait, not a log
// write — deliberately does not.
var walorderAppends = map[string]bool{
	"Append": true, "ApplyUndo": true, "ApplyRedo": true,
	"Recover": true, "WriteCheckpoint": true,
}

// walorderMarkMutators is the set of marking-set mutations that must obey
// the same write-ahead discipline as store mutations: a mark that exists
// only in memory vanishes on a crash, and the paper's marking protocols
// rely on undone/lc marks surviving exactly as long as the log says they
// do. Calls on the raw SiteMarks require a dominating append; calls on the
// LoggedMarks decorator log internally and count as appends themselves.
var walorderMarkMutators = map[string]bool{
	"MarkUndone": true, "Unmark": true,
}

func runWalorder(pass *framework.Pass) error {
	if !pathEndsWith(pass.Pkg.Path(), "internal/site") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w := &walWalker{pass: pass}
					w.block(fn.Body, false)
				}
				return false
			case *ast.FuncLit:
				w := &walWalker{pass: pass}
				w.block(fn.Body, false)
				return false
			}
			return true
		})
	}
	return nil
}

type walWalker struct {
	pass *framework.Pass
}

// block walks stmts threading the appended flag; it returns the exit flag
// and whether control cannot flow past the block.
func (w *walWalker) block(b *ast.BlockStmt, appended bool) (bool, bool) {
	return w.stmts(b.List, appended)
}

func (w *walWalker) stmts(list []ast.Stmt, appended bool) (bool, bool) {
	for _, stmt := range list {
		var terminated bool
		appended, terminated = w.stmt(stmt, appended)
		if terminated {
			return appended, true
		}
	}
	return appended, false
}

func (w *walWalker) stmt(stmt ast.Stmt, appended bool) (bool, bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		appended = w.expr(s.X, appended)
		if call, ok := s.X.(*ast.CallExpr); ok && isPanic(w.pass.TypesInfo, call) {
			return appended, true
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			appended = w.expr(e, appended)
		}
		for _, e := range s.Lhs {
			appended = w.expr(e, appended)
		}
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		appended = w.exprStmtScan(stmt, appended)
	case *ast.DeferStmt, *ast.GoStmt:
		var call *ast.CallExpr
		if d, ok := s.(*ast.DeferStmt); ok {
			call = d.Call
		} else {
			call = s.(*ast.GoStmt).Call
		}
		if lit, ok := call.Fun.(*ast.FuncLit); ok {
			w.block(lit.Body, false)
		}
		for _, arg := range call.Args {
			appended = w.expr(arg, appended)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			appended = w.expr(e, appended)
		}
		return appended, true
	case *ast.BranchStmt:
		return appended, true
	case *ast.BlockStmt:
		return w.block(s, appended)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, appended)
	case *ast.IfStmt:
		if s.Init != nil {
			appended, _ = w.stmt(s.Init, appended)
		}
		appended = w.expr(s.Cond, appended)
		thenExit, thenTerm := w.block(s.Body, appended)
		elseExit, elseTerm := appended, false
		if s.Else != nil {
			elseExit, elseTerm = w.stmt(s.Else, appended)
		}
		switch {
		case thenTerm && elseTerm:
			return appended, true
		case thenTerm:
			return elseExit, false
		case elseTerm:
			return thenExit, false
		default:
			return thenExit && elseExit, false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			appended, _ = w.stmt(s.Init, appended)
		}
		if s.Cond != nil {
			appended = w.expr(s.Cond, appended)
		}
		w.block(s.Body, appended)
		return appended, false
	case *ast.RangeStmt:
		appended = w.expr(s.X, appended)
		w.block(s.Body, appended)
		return appended, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.clauses(stmt, appended)
	}
	return appended, false
}

func (w *walWalker) clauses(stmt ast.Stmt, appended bool) (bool, bool) {
	var bodies [][]ast.Stmt
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			appended, _ = w.stmt(s.Init, appended)
		}
		if s.Tag != nil {
			appended = w.expr(s.Tag, appended)
		}
		for _, c := range s.Body.List {
			bodies = append(bodies, c.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			appended, _ = w.stmt(s.Init, appended)
		}
		for _, c := range s.Body.List {
			bodies = append(bodies, c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				w.stmt(cc.Comm, appended)
			}
			bodies = append(bodies, cc.Body)
		}
	}
	merged := true
	allTerm := len(bodies) > 0
	anyLive := false
	for _, body := range bodies {
		exit, term := w.stmts(body, appended)
		if !term {
			merged = merged && exit
			allTerm = false
			anyLive = true
		}
	}
	if !anyLive {
		merged = appended
	}
	return merged, allTerm
}

func (w *walWalker) exprStmtScan(stmt ast.Stmt, appended bool) bool {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.block(x.Body, false)
			return false
		case *ast.CallExpr:
			appended = w.call(x, appended)
		}
		return true
	})
	return appended
}

// expr scans one expression in evaluation-ish order for storage mutations
// and wal appends.
func (w *walWalker) expr(e ast.Expr, appended bool) bool {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.block(x.Body, false)
			return false
		case *ast.CallExpr:
			appended = w.call(x, appended)
		}
		return true
	})
	return appended
}

func (w *walWalker) call(call *ast.CallExpr, appended bool) bool {
	fn := calleeFunc(w.pass.TypesInfo, call)
	if fn == nil {
		return appended
	}
	path := funcPkgPath(fn)
	name := fn.Name()

	if pathEndsWith(path, "internal/wal") && walorderAppends[name] {
		return true
	}
	if pathEndsWith(path, "internal/marking") && walorderMarkMutators[name] {
		if named := recvNamed(fn); named != nil {
			switch named.Obj().Name() {
			case "LoggedMarks":
				// The decorator appends RecMark/RecUnmark before touching
				// the in-memory set: it is itself a wal append.
				return true
			case "SiteMarks":
				if !appended {
					w.pass.Reportf(call.Pos(),
						"marking.SiteMarks.%s is not dominated by a wal append in this function: "+
							"an unlogged mark vanishes on crash recovery; "+
							"mutate through marking.LoggedMarks or append a RecMark/RecUnmark record first", name)
				}
			}
		}
	}
	if pathEndsWith(path, "internal/storage") && walorderMutators[name] {
		if named := recvNamed(fn); named != nil && named.Obj().Name() == "Store" && !appended {
			w.pass.Reportf(call.Pos(),
				"storage.Store.%s is not dominated by a wal append in this function: "+
					"a crash here loses the mutation (Theorem 2 needs every exposure-relevant write in the log); "+
					"append the records first or route the write through the txn manager", name)
		}
	}
	return appended
}
