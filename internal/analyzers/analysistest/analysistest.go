// Package analysistest runs an analyzer over GOPATH-style fixture trees
// and checks its diagnostics against "// want" expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest closely enough that the
// fixtures would port unchanged.
//
// Fixtures live under testdata/src/<importpath>/, import each other by
// those synthetic paths, and annotate expected findings with end-of-line
// comments holding one or more quoted regular expressions:
//
//	time.Sleep(d) // want `time\.Sleep is wall-clock`
//
// Every reported diagnostic must match a want on its line and every want
// must be matched by a diagnostic; anything else fails the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"o2pc/internal/analyzers/framework"
)

// Run loads the fixture packages at the given import paths (rooted at
// testdata/src), applies the analyzer to each, and asserts the
// diagnostics exactly match the fixtures' want comments.
func Run(t *testing.T, testdata string, a *framework.Analyzer, paths ...string) {
	t.Helper()
	l := &loader{
		root:   filepath.Join(testdata, "src"),
		fset:   token.NewFileSet(),
		std:    importer.Default(),
		loaded: make(map[string]*framework.Package),
	}
	var targets []*framework.Package
	target := make(map[string]bool, len(paths))
	for _, path := range paths {
		pkg, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		targets = append(targets, pkg)
		target[path] = true
	}

	// The loader's recursion finishes dependencies before their importers,
	// so l.order is dependency order — what Run needs to compute facts for
	// fixture dependencies before the target packages consult them.
	all := make([]*framework.Package, 0, len(l.order))
	for _, path := range l.order {
		pkg := l.loaded[path]
		pkg.DepOnly = !target[path]
		all = append(all, pkg)
	}

	diags, err := framework.Run(all, []*framework.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, l.fset, targets)
	for _, d := range diags {
		if !wants.match(d) {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for _, w := range wants.unmatched() {
		t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
	}
}

// loader resolves fixture import paths recursively, falling back to the
// standard-library importer for everything outside the fixture tree.
type loader struct {
	root   string
	fset   *token.FileSet
	std    types.Importer
	loaded map[string]*framework.Package
	order  []string // import paths in completion (dependency) order
	stack  []string
}

func (l *loader) load(path string) (*framework.Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	for _, p := range l.stack {
		if p == path {
			return nil, fmt.Errorf("fixture import cycle: %s", strings.Join(append(l.stack, path), " -> "))
		}
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	// Load fixture-tree dependencies first so the importer below finds
	// them; stdlib imports resolve lazily through the default importer.
	l.stack = append(l.stack, path)
	defer func() { l.stack = l.stack[:len(l.stack)-1] }()
	for _, f := range files {
		for _, imp := range f.Imports {
			ipath, _ := strconv.Unquote(imp.Path.Value)
			if _, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(ipath))); err == nil {
				if _, err := l.load(ipath); err != nil {
					return nil, err
				}
			}
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: importerFunc(func(ipath string) (*types.Package, error) {
		if pkg, ok := l.loaded[ipath]; ok {
			return pkg.Types, nil
		}
		return l.std.Import(ipath)
	})}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	pkg := &framework.Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}
	l.loaded[path] = pkg
	l.order = append(l.order, path)
	return pkg, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// want is one expected-diagnostic annotation.
type want struct {
	file    string
	line    int
	re      string
	rx      *regexp.Regexp
	matched bool
}

type wantSet struct{ wants []*want }

var wantRe = regexp.MustCompile("//\\s*want\\s+((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)$")
var wantArgRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func collectWants(t *testing.T, fset *token.FileSet, pkgs []*framework.Package) *wantSet {
	t.Helper()
	ws := &wantSet{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, arg := range wantArgRe.FindAllString(m[1], -1) {
						pattern, err := strconv.Unquote(arg)
						if err != nil {
							t.Fatalf("%s: malformed want pattern %s: %v", pos, arg, err)
						}
						rx, err := regexp.Compile(pattern)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
						}
						ws.wants = append(ws.wants, &want{
							file: pos.Filename, line: pos.Line, re: pattern, rx: rx,
						})
					}
				}
			}
		}
	}
	return ws
}

func (ws *wantSet) match(d framework.Diagnostic) bool {
	for _, w := range ws.wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.rx.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws *wantSet) unmatched() []*want {
	var out []*want
	for _, w := range ws.wants {
		if !w.matched {
			out = append(out, w)
		}
	}
	return out
}
