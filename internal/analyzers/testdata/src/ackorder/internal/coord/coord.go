// Package coord is the ackorder fixture's coordinator package: every
// deliverDecision call must be dominated by a decision-durability call.
package coord

import "context"

type decided struct {
	commit  bool
	pending map[string]bool
}

// DecisionLog mirrors the real seam: Decide/PresumeAbort/Snapshot make
// decisions durable; Sync is only a durability wait.
type DecisionLog interface {
	Decide(ctx context.Context, id string, commit bool) (bool, error)
	PresumeAbort(ctx context.Context, id string) (bool, error)
	Snapshot(ctx context.Context) ([]string, map[string]bool, error)
	Sync(ctx context.Context) error
}

type Coordinator struct {
	dlog DecisionLog
}

func (c *Coordinator) deliverDecision(ctx context.Context, id string, d *decided) {}

func (c *Coordinator) adoptPrior(id string) (*decided, bool) { return nil, false }

// bareSend announces with no durability at all: the bug class.
func (c *Coordinator) bareSend(ctx context.Context, id string) {
	c.deliverDecision(ctx, id, &decided{}) // want `coord\.Coordinator\.deliverDecision is not dominated`
}

// decideFirst is the canonical decide path: clean.
func (c *Coordinator) decideFirst(ctx context.Context, id string, commit bool) {
	chosen, err := c.dlog.Decide(ctx, id, commit)
	if err != nil {
		return
	}
	c.deliverDecision(ctx, id, &decided{commit: chosen})
}

// presumeFirst is recovery's presumed-abort path: clean.
func (c *Coordinator) presumeFirst(ctx context.Context, id string) {
	chosen, err := c.dlog.PresumeAbort(ctx, id)
	if err != nil {
		return
	}
	c.deliverDecision(ctx, id, &decided{commit: chosen})
}

// adopted delivers a prior decision that is already in the log: clean.
func (c *Coordinator) adopted(ctx context.Context, id string) {
	if prior, done := c.adoptPrior(id); done {
		c.deliverDecision(ctx, id, prior)
	}
}

// branchMiss decides on only one path: still a violation.
func (c *Coordinator) branchMiss(ctx context.Context, id string, ok bool) {
	if ok {
		_, _ = c.dlog.Decide(ctx, id, true)
	}
	c.deliverDecision(ctx, id, &decided{}) // want `coord\.Coordinator\.deliverDecision is not dominated`
}

// earlyReturn decides on one path and returns on the other: the send is
// only reachable through the durability call, so it is clean.
func (c *Coordinator) earlyReturn(ctx context.Context, id string, ok bool) {
	if !ok {
		return
	}
	_, _ = c.dlog.Decide(ctx, id, true)
	c.deliverDecision(ctx, id, &decided{})
}

// syncOnly waits for durability of nothing: Sync does not establish the
// ordering, so the send is a violation.
func (c *Coordinator) syncOnly(ctx context.Context, id string) {
	_ = c.dlog.Sync(ctx)
	c.deliverDecision(ctx, id, &decided{}) // want `coord\.Coordinator\.deliverDecision is not dominated`
}

// takeoverRedelivery is recovery's shape: the fan-out goroutines inherit
// the flag at their spawn site, which is only reachable through Snapshot's
// majority read. Clean.
func (c *Coordinator) takeoverRedelivery(ctx context.Context) {
	_, decisions, err := c.dlog.Snapshot(ctx)
	if err != nil {
		return
	}
	for id, commit := range decisions {
		id, d := id, &decided{commit: commit}
		go func() {
			c.deliverDecision(ctx, id, d)
		}()
	}
}

// spawnBeforeDurability spawns the send before any durability call: the
// literal inherits a false flag and reports.
func (c *Coordinator) spawnBeforeDurability(ctx context.Context, id string) {
	go func() {
		c.deliverDecision(ctx, id, &decided{}) // want `coord\.Coordinator\.deliverDecision is not dominated`
	}()
	_, _ = c.dlog.Decide(ctx, id, true)
}
