// Package a exercises the lockheld analyzer: blocking calls with a mutex
// held, and mutexes passed by value.
package a

import (
	"context"
	"sync"
	"time"

	"lockheld/internal/rpc"
	"lockheld/internal/sim"
)

type server struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	clock sim.Clock
	net   *rpc.Caller
}

// sleepHeld blocks in virtual time with the mutex held: the classic
// whole-simulation stall.
func (s *server) sleepHeld(ctx context.Context) {
	s.mu.Lock()
	_ = s.clock.Sleep(ctx, time.Millisecond) // want `Sleep blocks in virtual time while s\.mu \(locked at line \d+\) is still held`
	s.mu.Unlock()
}

// sleepAfterUnlock releases first: clean.
func (s *server) sleepAfterUnlock(ctx context.Context) {
	s.mu.Lock()
	s.mu.Unlock()
	_ = s.clock.Sleep(ctx, time.Millisecond)
}

// deferredUnlock holds the mutex until return, so the sleep is still
// under the lock.
func (s *server) deferredUnlock(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.clock.Sleep(ctx, time.Millisecond) // want `Sleep blocks in virtual time while s\.mu \(locked at line \d+\) is still held`
}

// rlockHeld: read locks count too — an RPC round-trip under RLock blocks
// every writer for the duration of the network call.
func (s *server) rlockHeld(ctx context.Context) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	_, _ = s.net.Call(ctx, "site-1", "Prepare", nil) // want `Call performs a network round-trip while s\.rw \(locked at line \d+\) is still held`
}

// tryLockPoll is the lockPending idiom: TryLock is not tracked because
// its failure path holds nothing, and the poll exists precisely to avoid
// blocking with the lock contended.
func (s *server) tryLockPoll(ctx context.Context) {
	for !s.mu.TryLock() {
		_ = s.clock.Sleep(ctx, time.Microsecond)
	}
	s.mu.Unlock()
}

// branchHeld: held on one path in is held on the merged path out.
func (s *server) branchHeld(ctx context.Context, fast bool) {
	if !fast {
		s.mu.Lock()
	}
	s.clock.BlockOn(func() bool { return true }) // want `BlockOn blocks in virtual time while s\.mu \(locked at line \d+\) is still held`
	if !fast {
		s.mu.Unlock()
	}
}

// goroutineFresh: the literal runs on another goroutine with its own
// (empty) held-set, so the sleep inside it is clean.
func (s *server) goroutineFresh(ctx context.Context) {
	s.mu.Lock()
	s.clock.Go(func() {
		_ = s.clock.Sleep(ctx, time.Millisecond)
	})
	s.mu.Unlock()
}

// joinHeld: joining the clock waits for every tracked goroutine — doing
// that with the mutex held deadlocks any of them that need it.
func (s *server) joinHeld(wg *sync.WaitGroup) {
	s.mu.Lock()
	s.clock.Join(wg.Wait, func() bool { return true }) // want `Join blocks in virtual time while s\.mu \(locked at line \d+\) is still held`
	s.mu.Unlock()
}

// takeMutex copies the lock state on every call.
func takeMutex(mu sync.Mutex) { // want `sync\.Mutex passed by value copies the lock state`
	mu.Lock()
	mu.Unlock()
}

func pointerMutex(mu *sync.Mutex) { // clean: pointer parameter
	mu.Lock()
	mu.Unlock()
}
