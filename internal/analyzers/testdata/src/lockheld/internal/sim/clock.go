// Package sim is a miniature of the real internal/sim Clock surface for
// the lockheld fixture.
package sim

import (
	"context"
	"time"
)

type Clock interface {
	Sleep(ctx context.Context, d time.Duration) error
	BlockOn(wake func() bool)
	Join(wait func(), done func() bool)
	Go(fn func())
}
