// Package rpc is a miniature of the real internal/rpc for the lockheld
// fixture.
package rpc

import "context"

type Caller struct{}

func (c *Caller) Call(ctx context.Context, target, method string, payload []byte) ([]byte, error) {
	return nil, nil
}

func (c *Caller) Send(ctx context.Context, target string, payload []byte) error {
	return nil
}
