// Package a exercises the randdet analyzer: global math/rand use is
// flagged, explicitly seeded sources are the sanctioned alternative.
package a

import "math/rand"

// jitter draws from the process-global source: non-replayable.
func jitter(n int) int {
	rand.Seed(42)       // want `rand\.Seed uses the global math/rand source`
	return rand.Intn(n) // want `rand\.Intn uses the global math/rand source`
}

// shuffle is flagged too — Shuffle consumes the global source.
func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle uses the global math/rand source`
}

// seeded threads an explicit source: clean, and replayable from the seed.
func seeded(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}
