// Test files may use throwaway randomness: randdet skips them entirely.
package a

import (
	"math/rand"
	"testing"
)

func TestOrderIndependence(t *testing.T) {
	xs := []int{1, 2, 3}
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	if len(xs) != 3 {
		t.Fatal("lost an element")
	}
}
