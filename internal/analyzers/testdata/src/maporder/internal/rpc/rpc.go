// Package rpc is a miniature of the real internal/rpc for the maporder
// fixture: Call puts its payload on the wire, so both the call's position
// (inside a map range) and its arguments' taint matter.
package rpc

type Caller struct{}

func (c *Caller) Call(peer string, body any) error { return nil }
