// Package wal is a miniature of the real internal/wal for the maporder
// fixture: Append and WriteCheckpoint are determinism sinks.
package wal

type Record struct{ Key string }

type FileLog struct{}

func (l *FileLog) Append(rec Record) (uint64, error) { return 0, nil }

func (l *FileLog) WriteCheckpoint(keys []string) error { return nil }
