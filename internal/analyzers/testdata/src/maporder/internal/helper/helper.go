// Package helper is a maporder fixture dependency: Forward reaches the
// wal, so the package fact marks it a sink for importers.
package helper

import "maporder/internal/wal"

func Forward(l *wal.FileLog, rec wal.Record) error {
	_, err := l.Append(rec)
	return err
}
