package a

import (
	"maps"
	"slices"
	"sort"

	"maporder/internal/helper"
	"maporder/internal/wal"
)

func direct(l *wal.FileLog, m map[string]int) {
	for k := range m {
		_, _ = l.Append(wal.Record{Key: k}) // want `wal\.FileLog\.Append called inside range over map m`
	}
}

func collected(l *wal.FileLog, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	for _, k := range keys {
		_, _ = l.Append(wal.Record{Key: k}) // want `called inside range over map-ordered slice keys`
	}
	sort.Strings(keys)
	for _, k := range keys {
		_, _ = l.Append(wal.Record{Key: k})
	}
}

func sortedIdiom(l *wal.FileLog, m map[string]int) {
	for _, k := range slices.Sorted(maps.Keys(m)) {
		_, _ = l.Append(wal.Record{Key: k})
	}
}

func collectKeepsOrder(l *wal.FileLog, m map[string]int) {
	ks := slices.Collect(maps.Keys(m))
	for _, k := range ks {
		_, _ = l.Append(wal.Record{Key: k}) // want `called inside range over map-ordered slice ks`
	}
}

func taintedArg(l *wal.FileLog, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	_ = l.WriteCheckpoint(keys) // want `argument keys carries map-iteration order into wal\.FileLog\.WriteCheckpoint`
}

func sortedArg(l *wal.FileLog, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	_ = l.WriteCheckpoint(keys)
}

func crossPackage(l *wal.FileLog, m map[string]wal.Record) {
	for _, rec := range m {
		_ = helper.Forward(l, rec) // want `helper\.Forward called inside range over map m`
	}
}

func logAll(l *wal.FileLog, keys []string) {
	for _, k := range keys {
		_, _ = l.Append(wal.Record{Key: k})
	}
}

func viaLocalHelper(l *wal.FileLog, m map[string]int) {
	for k := range m {
		logAll(l, []string{k}) // want `a\.logAll called inside range over map m`
	}
}

func annotated(l *wal.FileLog, m map[string]int) {
	for k := range m {
		//o2pcvet:ignore maporder -- fixture: order-insensitive aggregate under test
		_, _ = l.Append(wal.Record{Key: k})
	}
}
