package a

import (
	"maps"
	"slices"
	"sort"

	"maporder/internal/helper"
	"maporder/internal/rpc"
	"maporder/internal/wal"
)

func direct(l *wal.FileLog, m map[string]int) {
	for k := range m {
		_, _ = l.Append(wal.Record{Key: k}) // want `wal\.FileLog\.Append called inside range over map m`
	}
}

func collected(l *wal.FileLog, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	for _, k := range keys {
		_, _ = l.Append(wal.Record{Key: k}) // want `called inside range over map-ordered slice keys`
	}
	sort.Strings(keys)
	for _, k := range keys {
		_, _ = l.Append(wal.Record{Key: k})
	}
}

func sortedIdiom(l *wal.FileLog, m map[string]int) {
	for _, k := range slices.Sorted(maps.Keys(m)) {
		_, _ = l.Append(wal.Record{Key: k})
	}
}

func collectKeepsOrder(l *wal.FileLog, m map[string]int) {
	ks := slices.Collect(maps.Keys(m))
	for _, k := range ks {
		_, _ = l.Append(wal.Record{Key: k}) // want `called inside range over map-ordered slice ks`
	}
}

func taintedArg(l *wal.FileLog, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	_ = l.WriteCheckpoint(keys) // want `argument keys carries map-iteration order into wal\.FileLog\.WriteCheckpoint`
}

func sortedArg(l *wal.FileLog, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	_ = l.WriteCheckpoint(keys)
}

func crossPackage(l *wal.FileLog, m map[string]wal.Record) {
	for _, rec := range m {
		_ = helper.Forward(l, rec) // want `helper\.Forward called inside range over map m`
	}
}

func logAll(l *wal.FileLog, keys []string) {
	for _, k := range keys {
		_, _ = l.Append(wal.Record{Key: k})
	}
}

func viaLocalHelper(l *wal.FileLog, m map[string]int) {
	for k := range m {
		logAll(l, []string{k}) // want `a\.logAll called inside range over map m`
	}
}

func annotated(l *wal.FileLog, m map[string]int) {
	for k := range m {
		//o2pcvet:ignore maporder -- fixture: order-insensitive aggregate under test
		_, _ = l.Append(wal.Record{Key: k})
	}
}

// batchFanout is the per-peer coalescing shape: flushing one envelope
// per peer by ranging the bucket map ships envelopes in map order.
func batchFanout(c *rpc.Caller, buckets map[string][]wal.Record) {
	for peer := range buckets {
		_ = c.Call(peer, buckets[peer]) // want `rpc\.Caller\.Call called inside range over map buckets`
	}
}

// batchFanoutSorted flushes peers in sorted order: clean.
func batchFanoutSorted(c *rpc.Caller, buckets map[string][]wal.Record) {
	for _, peer := range slices.Sorted(maps.Keys(buckets)) {
		_ = c.Call(peer, buckets[peer])
	}
}

// batchPayloadTainted builds one envelope's contents by ranging a map:
// the payload itself carries map order onto the wire even though the
// Call sits outside any range.
func batchPayloadTainted(c *rpc.Caller, waiters map[string]wal.Record) {
	var msgs []wal.Record
	for _, w := range waiters {
		msgs = append(msgs, w)
	}
	_ = c.Call("s0", msgs) // want `argument msgs carries map-iteration order into rpc\.Caller\.Call`
}
