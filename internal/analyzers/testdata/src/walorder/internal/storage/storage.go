// Package storage is a miniature of the real internal/storage: just
// enough surface for the walorder fixture to type-check.
package storage

type Key string

type Value []byte

type Record struct {
	Key   Key
	Value Value
}

type Store struct{ m map[Key]Record }

func NewStore() *Store { return &Store{m: make(map[Key]Record)} }

func (s *Store) Put(k Key, v Value, txnID string) { s.m[k] = Record{Key: k, Value: v} }
func (s *Store) Delete(k Key, txnID string)       { delete(s.m, k) }
func (s *Store) Restore(r Record, txnID string)   { s.m[r.Key] = r }
func (s *Store) Remove(k Key)                     { delete(s.m, k) }
func (s *Store) LoadSnapshot(snap map[Key]Record) { s.m = snap }
func (s *Store) Get(k Key) (Record, bool)         { r, ok := s.m[k]; return r, ok }
