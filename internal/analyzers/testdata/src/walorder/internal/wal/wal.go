// Package wal is a miniature of the real internal/wal for the walorder
// fixture.
package wal

import "walorder/internal/storage"

type Record struct {
	TxnID string
}

type Log interface {
	Append(rec Record) (uint64, error)
}

func ApplyUndo(store *storage.Store, recs []Record, by string) {}

func Recover(store *storage.Store, log Log) error { return nil }

// GroupCommitLog mirrors the real decorator: Append passes through to the
// inner log, Sync only batches the durability wait.
type GroupCommitLog struct {
	inner Log
}

func (g *GroupCommitLog) Append(rec Record) (uint64, error) { return g.inner.Append(rec) }

func (g *GroupCommitLog) Sync() error { return nil }
