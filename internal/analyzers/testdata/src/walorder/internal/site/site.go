// Package site is the walorder fixture's participant package: storage
// mutations here must be dominated by a wal append on every path.
package site

import (
	"walorder/internal/marking"
	"walorder/internal/storage"
	"walorder/internal/wal"
)

type Site struct {
	store *storage.Store
	log   wal.Log
	marks *marking.SiteMarks
	lm    *marking.LoggedMarks
}

// seedBypass is the SeedInt64 class of bug: an unlogged store write.
func (s *Site) seedBypass(k storage.Key, v storage.Value) {
	s.store.Put(k, v, "init") // want `storage\.Store\.Put is not dominated by a wal append`
}

// seedLogged appends first: clean.
func (s *Site) seedLogged(k storage.Key, v storage.Value) {
	_, _ = s.log.Append(wal.Record{TxnID: "init"})
	s.store.Put(k, v, "init")
}

// branchMiss appends on only one path: still a violation.
func (s *Site) branchMiss(k storage.Key, v storage.Value, ok bool) {
	if ok {
		_, _ = s.log.Append(wal.Record{})
	}
	s.store.Put(k, v, "x") // want `storage\.Store\.Put is not dominated by a wal append`
}

// branchBoth appends on every path: clean.
func (s *Site) branchBoth(k storage.Key, v storage.Value, ok bool) {
	if ok {
		_, _ = s.log.Append(wal.Record{})
	} else {
		_, _ = s.log.Append(wal.Record{})
	}
	s.store.Put(k, v, "x")
}

// earlyReturn appends on one path and returns on the other: the mutation
// is only reachable through the append, so it is clean.
func (s *Site) earlyReturn(k storage.Key, v storage.Value, ok bool) {
	if !ok {
		return
	}
	_, _ = s.log.Append(wal.Record{})
	s.store.Put(k, v, "x")
}

// replayHelpers mutate via WAL-driven replay: clean by construction.
func (s *Site) replayHelpers(recs []wal.Record) {
	wal.ApplyUndo(s.store, recs, "CT")
	s.store.Restore(storage.Record{}, "CT")
}

// recoverThenLoad mirrors Site.Recover: rebuild from the log, then
// install the snapshot.
func (s *Site) recoverThenLoad() error {
	fresh := storage.NewStore()
	if err := wal.Recover(fresh, s.log); err != nil {
		return err
	}
	s.store.LoadSnapshot(nil)
	return nil
}

// unloggedDelete exercises a second mutator method.
func (s *Site) unloggedDelete(k storage.Key) {
	s.store.Delete(k, "x") // want `storage\.Store\.Delete is not dominated by a wal append`
}

// groupCommitAppend appends through the group-commit decorator. The
// decorator lives in internal/wal and its Append passes straight through
// to the inner log, so it dominates the mutation like any wal append.
func (s *Site) groupCommitAppend(k storage.Key, v storage.Value, g *wal.GroupCommitLog) {
	_, _ = g.Append(wal.Record{})
	_ = g.Sync()
	s.store.Put(k, v, "x")
}

// groupCommitSyncAlone flushes the group-commit batch without appending
// anything: Sync is a durability wait, not a log write, so the mutation
// is still unlogged.
func (s *Site) groupCommitSyncAlone(k storage.Key, v storage.Value, g *wal.GroupCommitLog) {
	_ = g.Sync()
	s.store.Put(k, v, "x") // want `storage\.Store\.Put is not dominated by a wal append`
}

// rawMark mutates the raw marking set with no append: the mark exists
// only in memory and vanishes on crash recovery.
func (s *Site) rawMark(ti string) {
	s.marks.MarkUndone(ti) // want `marking\.SiteMarks\.MarkUndone is not dominated by a wal append`
}

// rawUnmark exercises the second mark mutator.
func (s *Site) rawUnmark(ti string) {
	s.marks.Unmark(ti) // want `marking\.SiteMarks\.Unmark is not dominated by a wal append`
}

// rawMarkLogged appends first, then mutates the raw set: clean, the
// replay path in Recover works exactly like this.
func (s *Site) rawMarkLogged(ti string) {
	_, _ = s.log.Append(wal.Record{TxnID: ti})
	s.marks.MarkUndone(ti)
}

// loggedMarks mutates through the decorator: its mutators append
// internally, so they are clean and dominate later store mutations too.
func (s *Site) loggedMarks(k storage.Key, v storage.Value, ti string) {
	_ = s.lm.MarkUndone(ti)
	s.store.Put(k, v, "x")
	_ = s.lm.Unmark(ti)
}

// markReadsAreFree reads never need the log.
func (s *Site) markReadsAreFree(ti string) bool {
	return s.marks.Contains(ti) || s.lm.Contains(ti)
}

// continueRoundLogged mirrors execContinue's write path for a multi-shot
// session round: the round's updates land only after the WAL append, so a
// crash between them replays cleanly.
func (s *Site) continueRoundLogged(k storage.Key, v storage.Value) {
	_, _ = s.log.Append(wal.Record{TxnID: "S1"})
	s.store.Put(k, v, "S1")
}

// continueRoundUnlogged applies a session round's write with no append:
// a crash mid-session would lose the round while the coordinator still
// counts the site as a participant.
func (s *Site) continueRoundUnlogged(k storage.Key, v storage.Value) {
	s.store.Put(k, v, "S1") // want `storage\.Store\.Put is not dominated by a wal append`
}

// batchApplyLogged mirrors the coalesced-envelope fan-out on the
// participant: each item in the batch logs before its write lands, so
// a crash mid-batch replays the logged prefix.
func (s *Site) batchApplyLogged(items []storage.Record) {
	for _, it := range items {
		_, _ = s.log.Append(wal.Record{})
		s.store.Restore(it, "batch")
	}
}

// batchApplyUnlogged applies a whole envelope with no appends: every
// item's write is invisible to recovery.
func (s *Site) batchApplyUnlogged(items []storage.Record) {
	for _, it := range items {
		s.store.Restore(it, "batch") // want `storage\.Store\.Restore is not dominated by a wal append`
	}
}

// batchHeaderLogOnly logs once for the envelope header but not per
// item — the append before the loop dominates every iteration, which
// is the analyzer's (sound for replay: the header record carries the
// batch) accepted shape.
func (s *Site) batchHeaderLogOnly(items []storage.Record) {
	_, _ = s.log.Append(wal.Record{TxnID: "batch"})
	for _, it := range items {
		s.store.Restore(it, "batch")
	}
}
