// Package other proves walorder's scoping: outside internal/site, direct
// store mutations are legal (the txn manager and recovery own their
// ordering contracts there).
package other

import "walorder/internal/storage"

func Mutate(s *storage.Store, k storage.Key, v storage.Value) {
	s.Put(k, v, "anyone")
}
