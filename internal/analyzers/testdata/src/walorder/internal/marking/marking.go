// Package marking is a miniature of the real internal/marking for the
// walorder fixture: SiteMarks is the raw in-memory set, LoggedMarks the
// WAL-backed decorator whose mutators log internally.
package marking

type SiteMarks struct {
	undone map[string]bool
}

func (s *SiteMarks) MarkUndone(ti string) {}

func (s *SiteMarks) Unmark(ti string) {}

func (s *SiteMarks) Contains(ti string) bool { return s.undone[ti] }

// LoggedMarks mirrors the real decorator: MarkUndone/Unmark append a
// RecMark/RecUnmark record before touching the in-memory set.
type LoggedMarks struct {
	inner *SiteMarks
}

func (m *LoggedMarks) MarkUndone(ti string) error { return nil }

func (m *LoggedMarks) Unmark(ti string) error { return nil }

func (m *LoggedMarks) Contains(ti string) bool { return m.inner.Contains(ti) }
