package a

import (
	"sync"

	"lockorder/internal/lock"
)

type S struct{ mu sync.Mutex }

type T struct{ mu sync.Mutex }

// ab and ba acquire {S.mu, T.mu} in opposite orders; the Finish hook
// reports the cycle at the earliest edge (here, in ab).
func ab(s *S, t *T) {
	s.mu.Lock()
	t.mu.Lock() // want `lock-order cycle`
	t.mu.Unlock()
	s.mu.Unlock()
}

func ba(s *S, t *T) {
	t.mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	t.mu.Unlock()
}

func doubleLock(a, b *S) {
	a.mu.Lock()
	b.mu.Lock() // want `acquired while another instance of the same class`
	b.mu.Unlock()
	a.mu.Unlock()
}

func relockAcrossCall(m *lock.Manager) {
	m.LockAll()
	m.LockOne(0) // want `calls lock\.Manager\.LockOne, which acquires`
	m.UnlockOne(0)
	m.UnlockAll()
}

// ascending is the sanctioned idiom: same-class instances through an
// index-ordered slice range.
func ascending(ss []*S) {
	for _, s := range ss {
		s.mu.Lock()
	}
	for _, s := range ss {
		s.mu.Unlock()
	}
}

// txnAfterKeys is the sanctioned direction: txn shard while key shards
// are held. No reverse acquisition exists, so no cycle is reported.
func txnAfterKeys(m *lock.Manager) {
	m.LockAll()
	m.TxnLock()
	m.TxnUnlock()
	m.UnlockAll()
}

// deferredUnlock re-walks the S-before-T direction with a deferred
// release: it adds no new edge pair, and the cycle is reported only once,
// at the earliest S->T edge in ab.
func deferredUnlock(s *S, t *T) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t.mu.Lock()
	t.mu.Unlock()
}
