// Package lock is a miniature of the real shard manager for the
// lockorder fixture.
package lock

import "sync"

type shard struct{ mu sync.Mutex }

type txnShard struct{ mu sync.Mutex }

type Manager struct {
	shards []*shard
	byName map[string]*shard
	txn    txnShard
}

// LockAll takes every key shard in ascending slice order — the
// sanctioned idiom — and leaves them held for the caller.
func (m *Manager) LockAll() {
	for _, sh := range m.shards {
		sh.mu.Lock()
	}
}

func (m *Manager) UnlockAll() {
	for _, sh := range m.shards {
		sh.mu.Unlock()
	}
}

func (m *Manager) LockOne(i int) { m.shards[i].mu.Lock() }

func (m *Manager) UnlockOne(i int) { m.shards[i].mu.Unlock() }

func (m *Manager) TxnLock() { m.txn.mu.Lock() }

func (m *Manager) TxnUnlock() { m.txn.mu.Unlock() }

// LockByName iterates the name index — a map, whose order no seed
// controls, so successive acquisitions cannot be proven ascending.
func (m *Manager) LockByName() {
	for _, sh := range m.byName {
		sh.mu.Lock() // want `acquired in a loop and still held`
	}
}
