// Package replog is a miniature of the real replicated decision log for
// the lockorder fixture: the leader and replica mutexes are distinct lock
// classes, and the real package's token discipline — leader state flips
// under its mutex, ballots run with no lock held — means the classes
// never nest. The fixture pins both that clean shape and the cycle report
// if someone ever nests them both ways.
package replog

import "sync"

type Leader struct {
	mu        sync.Mutex
	electing  bool
	proposing map[string]bool
}

type Replica struct {
	mu    sync.Mutex
	terms map[string]uint64
}

// tokenBallot is the real leader idiom: take the token under the mutex,
// release, then do the network round with nothing held. No edge between
// the classes exists on this path.
func (l *Leader) tokenBallot(id string, round func()) {
	l.mu.Lock()
	for l.proposing[id] {
		l.mu.Unlock()
		l.mu.Lock()
	}
	l.proposing[id] = true
	l.mu.Unlock()

	round()

	l.mu.Lock()
	delete(l.proposing, id)
	l.mu.Unlock()
}

// admit is the replica idiom: the acceptor state machine runs entirely
// under the replica's own mutex.
func (r *Replica) admit(group string, term uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if term < r.terms[group] {
		return false
	}
	r.terms[group] = term
	return true
}

// inlineDeliver nests Leader.mu -> Replica.mu; harmless alone, but
// replicaCallback nests the other way, and the Finish hook reports the
// cycle at its lexicographically smallest edge — here.
func inlineDeliver(l *Leader, r *Replica) {
	l.mu.Lock()
	r.mu.Lock() // want `lock-order cycle`
	r.mu.Unlock()
	l.mu.Unlock()
}

func replicaCallback(l *Leader, r *Replica) {
	r.mu.Lock()
	l.mu.Lock()
	l.mu.Unlock()
	r.mu.Unlock()
}
