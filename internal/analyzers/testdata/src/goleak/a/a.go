package a

import (
	"context"
	"sync"

	"goleak/internal/sim"
	"goleak/internal/worker"
)

type svc struct {
	epoch context.Context
	clock sim.Clock
}

func (s *svc) boundLoop() { <-s.epoch.Done() }

func (s *svc) freeLoop() {
	for {
	}
}

func spawns(ctx context.Context, c sim.Clock, s *svc, w *worker.Worker) {
	c.Go(func() { <-ctx.Done() })

	var wg sync.WaitGroup
	wg.Add(1)
	c.Go(func() { defer wg.Done() })
	wg.Wait()

	c.Go(func() { // want `neither joined nor cancellable`
		for {
		}
	})

	c.Go(s.boundLoop)
	c.Go(s.freeLoop) // want `goroutine a\.svc\.freeLoop spawned via clock\.Go is neither joined nor cancellable`

	c.Go(w.Run)
	c.Go(w.Spin) // want `goroutine worker\.Worker\.Spin spawned via clock\.Go is neither joined nor cancellable`

	fn := s.freeLoop
	c.Go(fn) // want `function value the analysis cannot resolve`

	g := sim.NewGroup(c)
	g.Go(func() {
		for {
		}
	})
	g.Wait()

	c.Go(s.freeLoop) //o2pcvet:ignore goleak -- fixture: deliberate leak under test
}
