// Package worker is a goleak fixture dependency: Run is lifecycle-bound
// (the package fact records it), Spin is not.
package worker

import "context"

type Worker struct {
	ctx context.Context
}

func New(ctx context.Context) *Worker { return &Worker{ctx: ctx} }

// Run blocks on the worker's context: a crash can cancel it.
func (w *Worker) Run() {
	<-w.ctx.Done()
}

// Spin consults no lifecycle handle.
func (w *Worker) Spin() {
	for {
	}
}
