// Package sim is a miniature of the real clock vocabulary for the
// goleak fixture.
package sim

import (
	"context"
	"sync"
	"time"
)

type Clock interface {
	Go(fn func())
	Sleep(ctx context.Context, d time.Duration) error
}

type VirtualClock struct{}

func (c *VirtualClock) Go(fn func()) { go fn() }

func (c *VirtualClock) Sleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

// Group joins its goroutines on Wait; spawning through it is always
// legal.
type Group struct {
	clock Clock
	wg    sync.WaitGroup
}

func NewGroup(c Clock) *Group { return &Group{clock: c} }

func (g *Group) Go(fn func()) {
	g.wg.Add(1)
	g.clock.Go(func() {
		defer g.wg.Done()
		fn()
	})
}

func (g *Group) Wait() { g.wg.Wait() }
