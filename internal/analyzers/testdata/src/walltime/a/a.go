// Package a is a walltime fixture: an ordinary (non-allowlisted) package
// where every wall-clock primitive must be reported.
package a

import (
	"context"
	"time"
)

func bad(ctx context.Context) {
	_ = time.Now()                  // want `time\.Now is wall-clock time`
	time.Sleep(time.Millisecond)    // want `time\.Sleep is wall-clock time`
	<-time.After(time.Millisecond)  // want `time\.After is wall-clock time`
	t := time.NewTimer(time.Second) // want `time\.NewTimer is wall-clock time`
	defer t.Stop()
	tctx, cancel := context.WithTimeout(ctx, time.Second) // want `context\.WithTimeout is wall-clock time`
	defer cancel()
	_ = tctx
	_ = time.Since(time.Time{}) // want `time\.Since is wall-clock time`
}

// okDurations shows that duration arithmetic is data, not a clock read.
func okDurations() time.Duration {
	return 5 * time.Millisecond
}

// ignored shows the justified escape hatch suppressing a finding.
func ignored() time.Time {
	//o2pcvet:ignore walltime -- fixture proves the ignore directive works
	return time.Now()
}
