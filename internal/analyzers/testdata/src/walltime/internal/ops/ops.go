// Package ops stands in for the live operations HTTP plane, allowlisted
// because its runtime sampler and uptime reporting are meaningful only in
// wall time. No finding is expected here; the non-allowlisted sibling
// fixture (walltime/a) proves the same calls still fail elsewhere.
package ops

import (
	"context"
	"time"
)

func Sample() time.Time { return time.Now() }

func Uptime(start time.Time) time.Duration { return time.Since(start) }

func Tick(stop <-chan struct{}) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	select {
	case <-stop:
	case <-t.C:
	}
}

func ShutdownCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, 3*time.Second)
}
