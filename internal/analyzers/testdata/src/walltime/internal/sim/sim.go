// Package sim stands in for the clock implementation itself, which is the
// one place allowed to touch the runtime's clock.
package sim

import "time"

func RealNow() time.Time { return time.Now() }

func RealSleep(d time.Duration) { time.Sleep(d) }
