// Package main stands in for cmd/o2pc-bench: the benchmark binary
// measures real elapsed time by definition and is allowlisted.
package main

import "time"

func Elapsed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

func main() {}
