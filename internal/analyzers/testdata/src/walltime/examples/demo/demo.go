// Package demo stands in for the examples tree: interactive demos run by
// humans in real time are allowlisted.
package demo

import (
	"context"
	"time"
)

func Wait(ctx context.Context) {
	tctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	<-tctx.Done()
	_ = time.Now()
}
