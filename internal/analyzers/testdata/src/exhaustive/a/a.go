// Package a exercises the exhaustive analyzer over internal enums, local
// enums, non-enums, and out-of-scope standard-library types.
package a

import (
	"fmt"
	"time"

	"exhaustive/internal/kinds"
)

// mode is a package-local enum: the analyzed package is always in scope.
type mode int

const (
	modeRead mode = iota
	modeWrite
	modeAdmin
)

// full names every constant: clean.
func full(rt kinds.RecordType) string {
	switch rt {
	case kinds.RecBegin:
		return "begin"
	case kinds.RecUpdate:
		return "update"
	case kinds.RecCommit:
		return "commit"
	case kinds.RecAbort:
		return "abort"
	}
	return ""
}

// missing drops two record types on the floor.
func missing(rt kinds.RecordType) string {
	switch rt { // want `switch over kinds\.RecordType is not exhaustive: missing RecAbort, RecCommit`
	case kinds.RecBegin:
		return "begin"
	case kinds.RecUpdate:
		return "update"
	}
	return ""
}

// silentDefault has a default, but an empty one: unhandled values vanish.
func silentDefault(rt kinds.RecordType) string {
	switch rt {
	case kinds.RecBegin:
		return "begin"
	default: // want `switch over kinds\.RecordType has an empty default that silently drops unhandled values \(RecAbort, RecCommit, RecUpdate\)`
	}
	return ""
}

// loudDefault fails loudly on anything unhandled: clean.
func loudDefault(rt kinds.RecordType) string {
	switch rt {
	case kinds.RecBegin:
		return "begin"
	default:
		panic(fmt.Sprintf("unhandled record type %d", rt))
	}
}

// localEnum: enums declared in the analyzed package are policed too.
func localEnum(m mode) bool {
	switch m { // want `switch over a\.mode is not exhaustive: missing modeAdmin`
	case modeRead:
		return true
	case modeWrite:
		return false
	}
	return false
}

// notAnEnum: Width has one constant, so it is not enum-like.
func notAnEnum(w kinds.Width) bool {
	switch w {
	case kinds.DefaultWidth:
		return true
	}
	return false
}

// stdlibEnum: standard-library integer types are out of scope.
func stdlibEnum(m time.Month) bool {
	switch m {
	case time.January:
		return true
	}
	return false
}

// sessionFull names every session state: clean.
func sessionFull(s kinds.SessionState) string {
	switch s {
	case kinds.SessionActive:
		return "active"
	case kinds.SessionCommitted:
		return "committed"
	case kinds.SessionAborted:
		return "aborted"
	}
	return ""
}

// sessionMissing forgets the aborted arm — the settle-path bug the
// analyzer exists to catch.
func sessionMissing(s kinds.SessionState) string {
	switch s { // want `switch over kinds\.SessionState is not exhaustive: missing SessionAborted`
	case kinds.SessionActive:
		return "active"
	case kinds.SessionCommitted:
		return "committed"
	}
	return ""
}

// acceptorFull names every acceptor state, including the zero value: clean.
func acceptorFull(s kinds.AcceptorState) string {
	switch s {
	case kinds.StateIdle:
		return "idle"
	case kinds.StateBegun:
		return "begun"
	case kinds.StateAccepted:
		return "accepted"
	}
	return ""
}

// acceptorMissing forgets the idle arm — exactly the promise-path bug
// class in the replica state machine, where an idle (never-begun)
// transaction must still be answered.
func acceptorMissing(s kinds.AcceptorState) string {
	switch s { // want `switch over kinds\.AcceptorState is not exhaustive: missing StateIdle`
	case kinds.StateBegun:
		return "begun"
	case kinds.StateAccepted:
		return "accepted"
	}
	return ""
}

// acceptorSilent handles only the accepted arm behind an empty default:
// begun and idle instances vanish silently.
func acceptorSilent(s kinds.AcceptorState) string {
	switch s {
	case kinds.StateAccepted:
		return "accepted"
	default: // want `switch over kinds\.AcceptorState has an empty default that silently drops unhandled values \(StateBegun, StateIdle\)`
	}
	return ""
}
