// Package kinds declares a protocol-style enum for the exhaustive
// fixture, mirroring wal.RecordType.
package kinds

type RecordType int

const (
	RecBegin RecordType = iota + 1
	RecUpdate
	RecCommit
	RecAbort
)

// Width is a named integer with a single constant: not an enum, so
// switches over it are unconstrained.
type Width int

const DefaultWidth Width = 80

// SessionState mirrors coord.SessionState: the multi-shot session
// lifecycle enum.
type SessionState uint8

const (
	SessionActive SessionState = iota + 1
	SessionCommitted
	SessionAborted
)

// AcceptorState mirrors replog.AcceptorState: the per-transaction
// consensus-instance state at a decision-log replica. Unlike the other
// enums it starts at iota, so the zero value is a real member.
type AcceptorState uint8

const (
	StateIdle AcceptorState = iota
	StateBegun
	StateAccepted
)
