// Package wal is a miniature of the real internal/wal for the errflow
// fixture: every error-returning function here is a base source.
package wal

type Record struct {
	TxnID string
}

type FileLog struct{}

func (l *FileLog) Append(rec Record) (uint64, error) { return 0, nil }

func (l *FileLog) Sync() error { return nil }

func (l *FileLog) Close() error { return nil }
