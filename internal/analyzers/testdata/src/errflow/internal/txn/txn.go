// Package txn is an errflow fixture dependency: Abort propagates a wal
// error, so the package fact marks it a source for importers.
package txn

import "errflow/internal/wal"

type Txn struct {
	log *wal.FileLog
}

func (t *Txn) Abort() error {
	return t.log.Sync()
}

// Describe returns no error and touches no layer: not a source.
func (t *Txn) Describe() string { return "txn" }
