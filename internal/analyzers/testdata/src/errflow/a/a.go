package a

import (
	"errflow/internal/txn"
	"errflow/internal/wal"
)

func discards(l *wal.FileLog, t *txn.Txn) {
	defer l.Close() // want `deferred call discards the error from wal\.FileLog\.Close`

	_, _ = l.Append(wal.Record{})    // want `blank assignment discards the error from wal\.FileLog\.Append`
	seq, _ := l.Append(wal.Record{}) // want `blank assignment discards the error from wal\.FileLog\.Append`
	_ = seq

	_ = l.Sync() // want `blank assignment discards the error from wal\.FileLog\.Sync`
	l.Sync()     // want `unchecked call discards the error from wal\.FileLog\.Sync`
	go l.Sync()  // want `go statement discards the error from wal\.FileLog\.Sync`

	// Abort's error carries a wal failure through the txn package's fact.
	_ = t.Abort() // want `blank assignment discards the error from txn\.Txn\.Abort`

	_ = t.Abort() //o2pcvet:ignore errflow -- fixture: deliberate discard under test
}

func handled(l *wal.FileLog) error {
	if err := l.Sync(); err != nil {
		return err
	}
	seq, err := l.Append(wal.Record{})
	_ = seq
	return err
}

func localErr() error { return nil }

func notASource() {
	// localErr touches no protocol layer; discarding it is vet's business,
	// not errflow's.
	_ = localErr()
}
