package analyzers_test

import (
	"testing"

	"o2pc/internal/analyzers"
	"o2pc/internal/analyzers/analysistest"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Maporder,
		"maporder/a",
	)
}
