package analyzers_test

import (
	"testing"

	"o2pc/internal/analyzers"
	"o2pc/internal/analyzers/framework"
)

// TestSuiteCleanAtHead is the acceptance gate for the whole module: every
// analyzer in the suite must report zero diagnostics over the repo as it
// stands. A failure here means a protocol or determinism invariant
// regressed; fix the code (or, for a deliberate exception, add an
// ignore directive with a reason) rather than loosening the
// analyzer.
func TestSuiteCleanAtHead(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped in -short")
	}
	pkgs, err := framework.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	diags, err := framework.Run(pkgs, analyzers.All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
	}
}
