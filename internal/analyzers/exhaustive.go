package analyzers

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"o2pc/internal/analyzers/framework"
)

// Exhaustive checks that switch statements over the protocol's enum types
// (wal.RecordType, proto decision/message enums, serialization-graph node
// kinds, and every other internal integer enum) either name every declared
// constant or carry a default clause with a non-empty body. A switch that
// silently falls through an unhandled protocol state is exactly how a new
// record type or marking mode slips past recovery and the verifier.
var Exhaustive = &framework.Analyzer{
	Name: "exhaustive",
	Doc: "switches over internal enum types must cover every constant " +
		"or carry a non-empty default clause",
	Run: runExhaustive,
}

// enumConstants returns the package-level constants of named's defining
// package whose type is exactly named, keyed by constant value. Types with
// fewer than two constants are not treated as enums.
func enumConstants(named *types.Named) map[string]string {
	tn := named.Obj()
	if tn.Pkg() == nil {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	consts := make(map[string]string)
	scope := tn.Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		key := c.Val().ExactString()
		if prev, dup := consts[key]; !dup || name < prev {
			consts[key] = name
		}
	}
	if len(consts) < 2 {
		return nil
	}
	return consts
}

// enumScoped reports whether the enum's defining package is one this suite
// polices: the package under analysis itself, or any module-internal
// package. Standard-library integer types (reflect.Kind, time.Month, ...)
// are out of scope.
func enumScoped(named *types.Named, analyzed *types.Package) bool {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	if pkg == analyzed {
		return true
	}
	return pathHasSegment(pkg.Path(), "internal")
}

func runExhaustive(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.TypesInfo.Types[sw.Tag]
			if !ok {
				return true
			}
			named, ok := tv.Type.(*types.Named)
			if !ok || !enumScoped(named, pass.Pkg) {
				return true
			}
			consts := enumConstants(named)
			if consts == nil {
				return true
			}
			checkEnumSwitch(pass, sw, named, consts)
			return true
		})
	}
	return nil
}

func checkEnumSwitch(pass *framework.Pass, sw *ast.SwitchStmt, named *types.Named, consts map[string]string) {
	missing := make(map[string]string, len(consts))
	for val, name := range consts {
		missing[val] = name
	}
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, expr := range cc.List {
			tv, ok := pass.TypesInfo.Types[expr]
			if !ok || tv.Value == nil {
				// A non-constant case expression (e.g. a variable) defeats
				// static coverage tracking; treat the switch as handled
				// only through its default clause.
				continue
			}
			delete(missing, exactString(tv.Value))
		}
	}

	if defaultClause != nil {
		if len(defaultClause.Body) == 0 && len(missing) > 0 {
			pass.Reportf(defaultClause.Pos(),
				"switch over %s has an empty default that silently drops unhandled values (%s); "+
					"handle them or make the default fail loudly", typeLabel(named), nameList(missing))
		}
		return
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Pos(),
			"switch over %s is not exhaustive: missing %s (add the cases or a default that fails loudly)",
			typeLabel(named), nameList(missing))
	}
}

func exactString(v constant.Value) string { return v.ExactString() }

func typeLabel(named *types.Named) string {
	tn := named.Obj()
	if tn.Pkg() == nil {
		return tn.Name()
	}
	return tn.Pkg().Name() + "." + tn.Name()
}

func nameList(missing map[string]string) string {
	names := make([]string, 0, len(missing))
	for _, name := range missing {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) > 4 {
		return fmt.Sprintf("%s and %d more", strings.Join(names[:4], ", "), len(names)-4)
	}
	return strings.Join(names, ", ")
}
