package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	// DepOnly marks a package loaded only because a target imports it.
	// Run computes facts for dep-only packages but reports no diagnostics
	// on them — mirroring how x/tools applies analyzers to dependencies
	// for their facts alone.
	DepOnly bool
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir, as the
// go command would resolve them), type-checks every non-standard-library
// package from source in dependency order, and returns all of them in that
// order. Packages that were loaded only as dependencies of a pattern match
// carry DepOnly; Run analyzes them for cross-package facts but suppresses
// their diagnostics.
//
// Standard-library imports resolve through go/importer's default (gc
// export data via the build cache), which works offline; module-internal
// imports resolve against the packages loaded here, so the loader needs no
// network and no modules beyond the repository's own.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	std := importer.Default()
	loaded := make(map[string]*Package)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := loaded[path]; ok {
			return p.Types, nil
		}
		return std.Import(path)
	})

	var out []*Package
	for _, lp := range listed {
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := newTypesInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", lp.ImportPath, err)
		}
		pkg := &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			TypesInfo:  info,
			DepOnly:    lp.DepOnly,
		}
		loaded[lp.ImportPath] = pkg
		out = append(out, pkg)
	}
	return out, nil
}

// goList shells out to `go list -deps -json`, which emits dependencies in
// depth-first post-order — exactly the type-checking order Load needs.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-deps",
		"-json=ImportPath,Dir,Name,Standard,DepOnly,GoFiles,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var out []listedPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
