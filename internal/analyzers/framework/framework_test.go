package framework

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"testing"
)

// parsePkg type-checks one synthetic source file into a Package, so the
// tests exercise Run without shelling out to the go command.
func parsePkg(t *testing.T, fset *token.FileSet, path, src string, deps map[string]*Package) *Package {
	t.Helper()
	f, err := parser.ParseFile(fset, path+"/a.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: importerFunc(func(ipath string) (*types.Package, error) {
		if dep, ok := deps[ipath]; ok {
			return dep.Types, nil
		}
		return importer.Default().Import(ipath)
	})}
	tpkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", path, err)
	}
	return &Package{
		ImportPath: path, Fset: fset, Files: []*ast.File{f},
		Types: tpkg, TypesInfo: info,
	}
}

// TestRunDeterministicDedup pins the baseline-workflow contract: the same
// findings reported multiple times, in scrambled order, come out of Run
// exactly once each, sorted by (file, line, column, analyzer, message) —
// so two runs over the same tree produce byte-identical output.
func TestRunDeterministicDedup(t *testing.T) {
	fset := token.NewFileSet()
	pkg := parsePkg(t, fset, "a", "package a\n\nfunc F() {}\n\nfunc G() {}\n", nil)

	noisy := &Analyzer{
		Name: "noisy",
		Doc:  "reports every func decl twice, in reverse order",
		Run: func(p *Pass) error {
			var decls []*ast.FuncDecl
			for _, f := range p.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok {
						decls = append(decls, fd)
					}
				}
			}
			for i := len(decls) - 1; i >= 0; i-- {
				p.Reportf(decls[i].Pos(), "func %s declared", decls[i].Name.Name)
				p.Reportf(decls[i].Pos(), "func %s declared", decls[i].Name.Name)
			}
			return nil
		},
	}

	first, err := Run([]*Package{pkg}, []*Analyzer{noisy})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(first) != 2 {
		t.Fatalf("got %d diagnostics after dedup, want 2: %v", len(first), first)
	}
	if first[0].Message != "func F declared" || first[1].Message != "func G declared" {
		t.Errorf("diagnostics not in source order: %v", first)
	}
	second, err := Run([]*Package{pkg}, []*Analyzer{noisy})
	if err != nil {
		t.Fatalf("Run (second): %v", err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("two runs over the same package differ:\nfirst:  %v\nsecond: %v", first, second)
	}
}

// TestRunFactsCrossPackage checks the fact pipeline end to end: a fact
// computed for a dependency (analyzed fact-only, DepOnly set) survives the
// JSON round-trip and is visible to the dependent package's Run, and the
// dep-only package contributes no diagnostics of its own.
func TestRunFactsCrossPackage(t *testing.T) {
	fset := token.NewFileSet()
	dep := parsePkg(t, fset, "dep", "package dep\n\nfunc Exported() {}\n", nil)
	dep.DepOnly = true
	app := parsePkg(t, fset, "app", "package app\n\nimport \"dep\"\n\nfunc Use() { dep.Exported() }\n",
		map[string]*Package{"dep": dep})

	type fact struct{ Funcs []string }
	a := &Analyzer{
		Name: "factprobe",
		Doc:  "exports declared func names; reports what it sees from deps",
		Facts: func(p *Pass) (any, error) {
			var fs fact
			for _, f := range p.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok {
						fs.Funcs = append(fs.Funcs, fd.Name.Name)
					}
				}
			}
			return fs, nil
		},
		Run: func(p *Pass) error {
			var fs fact
			if p.ImportFact("dep", &fs) {
				p.Reportf(p.Files[0].Pos(), "dep exports %v", fs.Funcs)
			}
			// The package's own fact is available too (Facts ran first).
			var own fact
			if !p.ImportFact(p.Pkg.Path(), &own) {
				p.Reportf(p.Files[0].Pos(), "missing own fact")
			}
			return nil
		},
	}

	diags, err := Run([]*Package{dep, app}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (dep-only package must stay silent): %v", len(diags), diags)
	}
	if got, want := diags[0].Message, "dep exports [Exported]"; got != want {
		t.Errorf("fact round-trip: got %q, want %q", got, want)
	}
}

// TestRunFinishHook checks that Finish sees every package's fact and that
// its diagnostics pass through the same ignore filter as Run's.
func TestRunFinishHook(t *testing.T) {
	fset := token.NewFileSet()
	clean := parsePkg(t, fset, "p1", "package p1\n\nfunc A() {}\n", nil)
	// The directive on the func line suppresses the Finish finding below.
	ignored := parsePkg(t, fset, "p2",
		"package p2\n\n//o2pcvet:ignore finprobe -- fixture exemption\nfunc B() {}\n", nil)

	a := &Analyzer{
		Name: "finprobe",
		Doc:  "reports one whole-program finding per package fact",
		Facts: func(p *Pass) (any, error) {
			pos := p.Fset.Position(p.Files[0].Decls[0].Pos())
			return map[string]any{"file": pos.Filename, "line": pos.Line}, nil
		},
		Finish: func(f *Finish) error {
			for _, pkg := range f.Pkgs {
				var fact struct {
					File string `json:"file"`
					Line int    `json:"line"`
				}
				if !f.Fact(pkg.ImportPath, &fact) {
					continue
				}
				f.Reportf(token.Position{Filename: fact.File, Line: fact.Line},
					"finish saw %s", pkg.ImportPath)
			}
			return nil
		},
	}

	diags, err := Run([]*Package{clean, ignored}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (p2's is directive-suppressed): %v", len(diags), diags)
	}
	if got, want := diags[0].Message, "finish saw p1"; got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}
