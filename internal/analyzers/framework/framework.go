// Package framework is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic)
// plus a package loader, sized for this repository's own vet suite.
//
// The real x/tools module is deliberately not imported: the build must stay
// stdlib-only (ROADMAP constraint), and everything the o2pcvet analyzers
// need — parsed files, full type information, and a reporting channel — is
// expressible with go/parser, go/types and the go command. The API mirrors
// x/tools closely enough that migrating the analyzers onto the real
// framework later is a mechanical edit.
package framework

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is the analyzer's help text; its first line is the summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
	// Facts, when set, computes the package-level fact this analyzer
	// exports to packages that import it (exported-function summaries,
	// acquisition edges, ...). It runs for every loaded package —
	// dependencies included — in dependency order, before Run sees any
	// importer, so a pass can resolve a cross-package call through
	// Pass.ImportFact. The returned value must survive a JSON round-trip:
	// the store serializes it on export and deserializes on import,
	// mirroring x/tools facts (position-free, process-independent), which
	// keeps facts honest — no smuggled AST pointers or type objects.
	Facts func(*Pass) (any, error)
	// Finish, when set, runs once after every package has been analyzed,
	// with access to the full fact store. Whole-program findings (lock
	// acquisition cycles) are reported here; ignore directives apply to
	// Finish diagnostics exactly as to Run diagnostics.
	Finish func(*Finish) error
}

// Diagnostic is one finding, attributed to an analyzer and a position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one package's worth of inputs to an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
	store *factStore
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ImportFact decodes the fact this analyzer exported for the package with
// the given import path into out (a pointer), reporting whether one was
// found. The current package's own fact is available too: Facts runs
// before Run on each package.
func (p *Pass) ImportFact(path string, out any) bool {
	if p.store == nil {
		return false
	}
	return p.store.decode(p.Analyzer.Name, path, out)
}

// Finish is the whole-program view handed to Analyzer.Finish after the
// last package: every loaded package plus the complete fact store.
type Finish struct {
	Analyzer *Analyzer
	// Pkgs holds every loaded package in dependency order, dep-only
	// packages included.
	Pkgs []*Package

	diags *[]Diagnostic
	store *factStore
}

// Fact decodes the named package's fact for this analyzer into out.
func (f *Finish) Fact(path string, out any) bool {
	return f.store.decode(f.Analyzer.Name, path, out)
}

// Reportf records a whole-program diagnostic at an explicit position
// (facts carry file/line, not token.Pos, across the serialization
// boundary).
func (f *Finish) Reportf(pos token.Position, format string, args ...any) {
	*f.diags = append(*f.diags, Diagnostic{
		Analyzer: f.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// factStore holds each analyzer's per-package facts as serialized JSON.
// Facts cross package boundaries only through this encoding, which is what
// guarantees they are position- and process-independent.
type factStore struct {
	facts map[factKey]json.RawMessage
}

type factKey struct{ analyzer, pkg string }

func newFactStore() *factStore {
	return &factStore{facts: make(map[factKey]json.RawMessage)}
}

func (s *factStore) encode(analyzer, pkg string, v any) error {
	if v == nil {
		return nil
	}
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("fact for %s in %s: %w", analyzer, pkg, err)
	}
	s.facts[factKey{analyzer, pkg}] = b
	return nil
}

func (s *factStore) decode(analyzer, pkg string, out any) bool {
	b, ok := s.facts[factKey{analyzer, pkg}]
	if !ok {
		return false
	}
	return json.Unmarshal(b, out) == nil
}

// Run applies each analyzer to each package and returns the surviving
// diagnostics sorted by position and deduplicated, so repeated runs over
// the same tree are byte-identical (the baseline workflow diffs them).
// Packages must be in dependency order (Load guarantees it): each
// analyzer's Facts hook runs on every package — dep-only ones included —
// before its Run reports on the targets, and Finish hooks see the complete
// store afterwards. Findings on lines carrying an "//o2pcvet:ignore
// <name> -- reason" directive (same line or the line above) are
// suppressed; the directive requires a reason so every exemption is
// self-documenting.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	store := newFactStore()
	allIgnores := make(map[ignoreKey]bool)
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg)
		for k := range ignores {
			allIgnores[k] = true
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
				store:     store,
			}
			if a.Facts != nil {
				fact, err := a.Facts(pass)
				if err != nil {
					return nil, fmt.Errorf("%s: facts: %s: %w", a.Name, pkg.ImportPath, err)
				}
				if err := store.encode(a.Name, pkg.Types.Path(), fact); err != nil {
					return nil, err
				}
			}
			if pkg.DepOnly || a.Run == nil {
				continue
			}
			before := len(diags)
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
			diags = filterIgnored(diags, before, ignores)
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		before := len(diags)
		fin := &Finish{Analyzer: a, Pkgs: pkgs, diags: &diags, store: store}
		if err := a.Finish(fin); err != nil {
			return nil, fmt.Errorf("%s: finish: %w", a.Name, err)
		}
		diags = filterIgnored(diags, before, allIgnores)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return dedup(diags), nil
}

// dedup drops exact repeats from a sorted diagnostic list. Two analyzer
// mechanisms can legitimately land on the same coordinate with the same
// message (an intra-package walk and a fact-driven Finish, or the same
// helper invoked from two files of a package); the baseline diff must see
// one finding, not a count that shifts with analysis internals.
func dedup(diags []Diagnostic) []Diagnostic {
	if len(diags) < 2 {
		return diags
	}
	out := diags[:1]
	for _, d := range diags[1:] {
		last := out[len(out)-1]
		if d.Analyzer == last.Analyzer && d.Pos == last.Pos && d.Message == last.Message {
			continue
		}
		out = append(out, d)
	}
	return out
}

var ignoreRe = regexp.MustCompile(`^//o2pcvet:ignore\s+([\w,]+)\s+--\s+\S`)

// ignoreKey locates one suppressed (file, line, analyzer) coordinate.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// collectIgnores scans the package's comments for ignore directives. A
// directive suppresses matches on its own line and on the line below it
// (covering both end-of-line and preceding-line placement).
func collectIgnores(pkg *Package) map[ignoreKey]bool {
	out := make(map[ignoreKey]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Split(m[1], ",") {
					out[ignoreKey{pos.Filename, pos.Line, name}] = true
					out[ignoreKey{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
	return out
}

func filterIgnored(diags []Diagnostic, from int, ignores map[ignoreKey]bool) []Diagnostic {
	if len(ignores) == 0 {
		return diags
	}
	kept := diags[:from]
	for _, d := range diags[from:] {
		if ignores[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
			ignores[ignoreKey{d.Pos.Filename, d.Pos.Line, "all"}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
