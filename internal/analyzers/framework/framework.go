// Package framework is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic)
// plus a package loader, sized for this repository's own vet suite.
//
// The real x/tools module is deliberately not imported: the build must stay
// stdlib-only (ROADMAP constraint), and everything the o2pcvet analyzers
// need — parsed files, full type information, and a reporting channel — is
// expressible with go/parser, go/types and the go command. The API mirrors
// x/tools closely enough that migrating the analyzers onto the real
// framework later is a mechanical edit.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is the analyzer's help text; its first line is the summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Diagnostic is one finding, attributed to an analyzer and a position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one package's worth of inputs to an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies each analyzer to each package and returns the surviving
// diagnostics sorted by position. Findings on lines carrying an
// "//o2pcvet:ignore <name> -- reason" directive (same line or the line
// above) are suppressed; the directive requires a reason so every
// exemption is self-documenting.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
			}
			before := len(diags)
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
			diags = filterIgnored(diags, before, ignores)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags, nil
}

var ignoreRe = regexp.MustCompile(`^//o2pcvet:ignore\s+([\w,]+)\s+--\s+\S`)

// ignoreKey locates one suppressed (file, line, analyzer) coordinate.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// collectIgnores scans the package's comments for ignore directives. A
// directive suppresses matches on its own line and on the line below it
// (covering both end-of-line and preceding-line placement).
func collectIgnores(pkg *Package) map[ignoreKey]bool {
	out := make(map[ignoreKey]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Split(m[1], ",") {
					out[ignoreKey{pos.Filename, pos.Line, name}] = true
					out[ignoreKey{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
	return out
}

func filterIgnored(diags []Diagnostic, from int, ignores map[ignoreKey]bool) []Diagnostic {
	if len(ignores) == 0 {
		return diags
	}
	kept := diags[:from]
	for _, d := range diags[from:] {
		if ignores[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
			ignores[ignoreKey{d.Pos.Filename, d.Pos.Line, "all"}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
