package analyzers_test

import (
	"testing"

	"o2pc/internal/analyzers"
	"o2pc/internal/analyzers/analysistest"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Walltime,
		"walltime/a",
		"walltime/internal/sim",
		"walltime/examples/demo",
		"walltime/cmd/o2pc-bench",
		"walltime/internal/ops",
	)
}
