package analyzers

import (
	"go/ast"
	"go/types"

	"o2pc/internal/analyzers/framework"
)

// Goleak enforces the repository's goroutine-lifecycle discipline: every
// goroutine spawned through the clock (sim.Clock.Go and its
// implementations) must be joinable or cancellable — bound to a
// sync.WaitGroup or to a context (in practice the site's epoch context,
// which SetCrashed cancels). Recovery drains depend on this: a crash
// must be able to stop every background loop the up-period started, or
// the virtual-time scheduler counts a runnable goroutine that never
// parks and the deterministic replay wedges.
//
// A spawn is accepted when its function literal references a
// context.Context or sync.WaitGroup value, or when it names a function
// whose package fact records it as bound (the fact carries boundness
// across package boundaries for named spawn targets). sim.Group.Go is
// exempt: the group joins its goroutines by construction.
var Goleak = &framework.Analyzer{
	Name: "goleak",
	Doc: "goroutines spawned via clock.Go must be joined (WaitGroup) or " +
		"bound to a cancellable context",
	Facts: goleakFacts,
	Run:   runGoleak,
}

// goleakFacts exports the set of declared functions that are
// lifecycle-bound: their bodies reference a context.Context or
// sync.WaitGroup value.
func goleakFacts(pass *framework.Pass) (any, error) {
	local := make(map[string]bool)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := declFunc(pass.TypesInfo, fd)
			if fn == nil {
				continue
			}
			if goleakBoundBody(pass, fd.Body) {
				local[funcKey(fn)] = true
			}
		}
	}
	return sortedKeys(local), nil
}

// goleakBoundBody reports whether a function body holds a lifecycle
// handle: an identifier (local, parameter, or field selector) typed
// context.Context or sync.WaitGroup. Call results
// (context.Background()) deliberately do not count — a background
// context cancels nothing — and neither does calling a function that
// manages its own contexts internally: a callee's private timeout does
// not make the spawned goroutine cancellable from outside.
func goleakBoundBody(pass *framework.Pass, body *ast.BlockStmt) bool {
	bound := false
	ast.Inspect(body, func(n ast.Node) bool {
		if bound {
			return false
		}
		if x, ok := n.(*ast.Ident); ok {
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = pass.TypesInfo.Defs[x]
			}
			if v, ok := obj.(*types.Var); ok && isLifecycleType(v.Type()) {
				bound = true
			}
		}
		return !bound
	})
	return bound
}

// isLifecycleType recognizes context.Context and (pointers to)
// sync.WaitGroup.
func isLifecycleType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (pkg == "context" && name == "Context") ||
		(pkg == "sync" && name == "WaitGroup")
}

func runGoleak(pass *framework.Pass) error {
	fs := newFactSet(pass)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isClockGo(pass.TypesInfo, call) || len(call.Args) != 1 {
				return true
			}
			switch arg := ast.Unparen(call.Args[0]).(type) {
			case *ast.FuncLit:
				if !goleakBoundBody(pass, arg.Body) {
					pass.Reportf(call.Pos(),
						"goroutine spawned via clock.Go is neither joined nor cancellable: "+
							"the literal references no sync.WaitGroup or context.Context, so a crash "+
							"cannot drain it and deterministic replay can wedge; bind it to the site "+
							"epoch or a sim.Group, or annotate //o2pcvet:ignore goleak -- reason")
				}
			default:
				fn := spawnTarget(pass.TypesInfo, call.Args[0])
				if fn == nil {
					pass.Reportf(call.Pos(),
						"goroutine spawned via clock.Go from a function value the analysis cannot "+
							"resolve: prove it joinable or cancellable, or annotate "+
							"//o2pcvet:ignore goleak -- reason")
					return true
				}
				if !fs.has(fn) {
					pass.Reportf(call.Pos(),
						"goroutine %s spawned via clock.Go is neither joined nor cancellable: "+
							"it references no sync.WaitGroup or context.Context (a Background context "+
							"does not count — nothing cancels it), so crash recovery cannot drain it; "+
							"bind it to the site epoch or a sim.Group, or annotate "+
							"//o2pcvet:ignore goleak -- reason",
						describeFunc(fn))
				}
			}
			return true
		})
	}
	return nil
}

// isClockGo matches spawn calls on the clock vocabulary: the Clock
// interface and its implementations, but not Group (whose Wait joins).
func isClockGo(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "Go" || !pathEndsWith(funcPkgPath(fn), "internal/sim") {
		return false
	}
	named := recvNamed(fn)
	if named == nil {
		return false
	}
	switch named.Obj().Name() {
	case "Clock", "VirtualClock", "realClock":
		return true
	}
	return false
}

// spawnTarget resolves a spawn argument naming a function or method
// value (s.resolverLoop, flushLoop) to its *types.Func.
func spawnTarget(info *types.Info, arg ast.Expr) *types.Func {
	var id *ast.Ident
	switch x := ast.Unparen(arg).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
