package analyzers

import (
	"go/ast"
	"go/types"

	"o2pc/internal/analyzers/framework"
)

// Walltime forbids direct wall-clock primitives outside the clock
// implementation itself and a short, documented allowlist. Everything else
// must draw time from the injected sim.Clock: the virtual-time scheduler
// (DESIGN.md §7) can only make executions a function of the seed if no
// code path consults the runtime's clock behind its back.
var Walltime = &framework.Analyzer{
	Name: "walltime",
	Doc: "forbid wall-clock time primitives outside internal/sim and the allowlist; " +
		"use the injected sim.Clock so simulated runs stay deterministic",
	Run: runWalltime,
}

// walltimeBanned maps package path -> banned function names -> the
// sim.Clock replacement named in the diagnostic.
var walltimeBanned = map[string]map[string]string{
	"time": {
		"Now":       "Clock.Now",
		"Sleep":     "Clock.Sleep",
		"After":     "Clock.Sleep",
		"Tick":      "Clock.Sleep in a loop",
		"NewTimer":  "Clock.Sleep or Clock.WithTimeout",
		"NewTicker": "Clock.Sleep in a loop",
		"AfterFunc": "Clock.Go + Clock.Sleep",
		"Since":     "Clock.Since",
		"Until":     "Clock.Now arithmetic",
	},
	"context": {
		"WithTimeout":       "Clock.WithTimeout",
		"WithTimeoutCause":  "Clock.WithTimeout",
		"WithDeadline":      "Clock.WithTimeout",
		"WithDeadlineCause": "Clock.WithTimeout",
	},
}

// walltimeAllowed reports whether an import path may use wall-clock time
// directly. The allowlist is deliberately tiny:
//
//   - internal/sim IS the clock: its real-clock implementation wraps the
//     time package, and the virtual clock's test harness compares against
//     it.
//   - examples/* are interactive demos run by humans against real
//     deployments; their latencies and timeouts are meant to be felt in
//     wall time, and nothing replays them under the explorer.
//   - cmd/o2pc-bench measures real elapsed time by definition — its whole
//     output is wall-clock throughput and latency tables.
//   - internal/ops is the live operations HTTP plane: its runtime
//     sampler (goroutine/heap gauges), uptime reporting, and graceful
//     shutdown run against the real process and are meaningful only in
//     wall time. Protocol metrics are still observed via sim.Clock in
//     coord/site; nothing deterministic imports ops.
func walltimeAllowed(path string) bool {
	return pathEndsWith(path, "internal/sim") ||
		pathHasSegment(path, "examples") ||
		pathEndsWith(path, "cmd/o2pc-bench") ||
		pathEndsWith(path, "internal/ops")
}

func runWalltime(pass *framework.Pass) error {
	if walltimeAllowed(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			repl, banned := walltimeBanned[funcPkgPath(fn)][fn.Name()]
			if !banned || recvNamed(fn) != nil {
				return true
			}
			pass.Reportf(id.Pos(), "%s.%s is wall-clock time; use the injected sim.%s so runs stay deterministic",
				funcPkgPath(fn), fn.Name(), repl)
			return true
		})
	}
	return nil
}
