package analyzers_test

import (
	"testing"

	"o2pc/internal/analyzers"
	"o2pc/internal/analyzers/analysistest"
)

func TestErrflow(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Errflow,
		"errflow/a",
	)
}
