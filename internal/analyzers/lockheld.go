package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"o2pc/internal/analyzers/framework"
)

// Lockheld flags blocking operations — virtual-clock sleeps, BlockOn
// parks, clock joins, and RPC calls — made while a sync.Mutex or RWMutex
// acquired in the same function is still held. Under the virtual clock a
// goroutine that sleeps with a mutex held stalls every other goroutine
// that needs the mutex, and since virtual time only advances when all
// tracked goroutines are blocked, the run deadlocks (or, with the baton
// scheduler, serializes unpredictably); under the real clock it is a
// latency bug. The pass also flags mutexes passed by value, which copy the
// lock state and silently split the critical section.
//
// The analysis is an intraprocedural path walk: branches fork the held-set
// and merge by union, so a mutex held on any path to the blocking call is
// reported. TryLock is ignored (its failure path holds nothing), and
// function literals are walked with a fresh held-set (they run on other
// goroutines or after return).
var Lockheld = &framework.Analyzer{
	Name: "lockheld",
	Doc: "forbid Clock.Sleep/BlockOn/Join and RPC calls while a mutex " +
		"acquired in the same function is held; forbid mutexes passed by value",
	Run: runLockheld,
}

func runLockheld(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				checkMutexParams(pass, fn.Recv, fn.Type)
				if fn.Body != nil {
					w := &lockWalker{pass: pass}
					w.block(fn.Body, lockSet{})
				}
				return false // nested literals are walked by lockWalker
			case *ast.FuncLit:
				checkMutexParams(pass, nil, fn.Type)
				w := &lockWalker{pass: pass}
				w.block(fn.Body, lockSet{})
				return false
			}
			return true
		})
	}
	return nil
}

// lockSet maps a canonical mutex expression ("s.mu") to its Lock position.
type lockSet map[string]token.Pos

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s lockSet) union(other lockSet) {
	for k, v := range other {
		if _, ok := s[k]; !ok {
			s[k] = v
		}
	}
}

type lockWalker struct {
	pass *framework.Pass
}

// block walks stmts sequentially, threading the held-set through; it
// returns the exit state and whether control cannot flow past the block.
func (w *lockWalker) block(b *ast.BlockStmt, state lockSet) (lockSet, bool) {
	return w.stmts(b.List, state)
}

func (w *lockWalker) stmts(list []ast.Stmt, state lockSet) (lockSet, bool) {
	for _, stmt := range list {
		var terminated bool
		state, terminated = w.stmt(stmt, state)
		if terminated {
			return state, true
		}
	}
	return state, false
}

func (w *lockWalker) stmt(stmt ast.Stmt, state lockSet) (lockSet, bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		w.expr(s.X, state)
		if call, ok := s.X.(*ast.CallExpr); ok && isPanic(w.pass.TypesInfo, call) {
			return state, true
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, state)
		}
		for _, e := range s.Lhs {
			w.expr(e, state)
		}
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		ast.Inspect(stmt, w.exprVisitor(state))
	case *ast.DeferStmt:
		// A deferred Unlock runs at return: the mutex stays held for the
		// remainder of the function, so the held-set is unchanged. Other
		// deferred calls (and deferred closures) run outside the critical
		// path being analyzed.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.block(lit.Body, lockSet{})
		}
		for _, arg := range s.Call.Args {
			w.expr(arg, state)
		}
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.block(lit.Body, lockSet{})
		}
		for _, arg := range s.Call.Args {
			w.expr(arg, state)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, state)
		}
		return state, true
	case *ast.BranchStmt:
		// break/continue/goto leave the linear walk; treat as terminating
		// so their state does not merge into the fall-through path.
		return state, true
	case *ast.BlockStmt:
		return w.block(s, state)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, state)
	case *ast.IfStmt:
		if s.Init != nil {
			state, _ = w.stmt(s.Init, state)
		}
		w.expr(s.Cond, state)
		thenExit, thenTerm := w.block(s.Body, state.clone())
		elseExit, elseTerm := state, false
		if s.Else != nil {
			elseExit, elseTerm = w.stmt(s.Else, state.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return state, true
		case thenTerm:
			return elseExit, false
		case elseTerm:
			return thenExit, false
		default:
			thenExit.union(elseExit)
			return thenExit, false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			state, _ = w.stmt(s.Init, state)
		}
		if s.Cond != nil {
			w.expr(s.Cond, state)
		}
		bodyExit, _ := w.block(s.Body, state.clone())
		if s.Post != nil {
			w.stmt(s.Post, bodyExit)
		}
		state.union(bodyExit)
		return state, false
	case *ast.RangeStmt:
		w.expr(s.X, state)
		bodyExit, _ := w.block(s.Body, state.clone())
		state.union(bodyExit)
		return state, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.clauses(stmt, state)
	}
	return state, false
}

// clauses handles the branchy statements whose bodies all start from the
// same entry state and merge by union.
func (w *lockWalker) clauses(stmt ast.Stmt, state lockSet) (lockSet, bool) {
	var bodies [][]ast.Stmt
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			state, _ = w.stmt(s.Init, state)
		}
		if s.Tag != nil {
			w.expr(s.Tag, state)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.expr(e, state)
			}
			bodies = append(bodies, cc.Body)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			state, _ = w.stmt(s.Init, state)
		}
		for _, c := range s.Body.List {
			bodies = append(bodies, c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				w.stmt(cc.Comm, state.clone())
			}
			bodies = append(bodies, cc.Body)
		}
	}
	merged := state.clone()
	allTerm := len(bodies) > 0
	for _, body := range bodies {
		exit, term := w.stmts(body, state.clone())
		if !term {
			merged.union(exit)
			allTerm = false
		}
	}
	return merged, allTerm
}

// expr scans one expression for lock transitions and blocking calls.
func (w *lockWalker) expr(e ast.Expr, state lockSet) {
	ast.Inspect(e, w.exprVisitor(state))
}

func (w *lockWalker) exprVisitor(state lockSet) func(ast.Node) bool {
	return func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			checkMutexParams(w.pass, nil, x.Type)
			w.block(x.Body, lockSet{})
			return false
		case *ast.CallExpr:
			w.call(x, state)
		}
		return true
	}
}

func (w *lockWalker) call(call *ast.CallExpr, state lockSet) {
	fn := calleeFunc(w.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	path := funcPkgPath(fn)
	name := fn.Name()

	if path == "sync" && isMutexType(recvNamed(fn)) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		key := types.ExprString(sel.X)
		switch name {
		case "Lock", "RLock":
			state[key] = call.Pos()
		case "Unlock", "RUnlock":
			delete(state, key)
		}
		// TryLock/TryRLock are not tracked: on their failure path nothing
		// is held, so treating them as acquisitions would flag the
		// poll-through-the-clock idiom (site.lockPending) that exists
		// precisely to avoid blocking with the lock contended.
		return
	}

	var verb string
	switch {
	case pathEndsWith(path, "internal/sim") && (name == "Sleep" || name == "BlockOn" || name == "Join"):
		verb = "blocks in virtual time"
	case pathEndsWith(path, "internal/rpc") && (name == "Call" || name == "Send"):
		verb = "performs a network round-trip"
	default:
		return
	}
	for key, pos := range state {
		w.pass.Reportf(call.Pos(),
			"%s %s while %s (locked at line %d) is still held; release the mutex first or hand off to a clock-tracked goroutine",
			name, verb, key, w.pass.Fset.Position(pos).Line)
	}
}

// checkMutexParams reports receiver and parameter declarations that pass a
// sync.Mutex or RWMutex by value.
func checkMutexParams(pass *framework.Pass, recv *ast.FieldList, ftype *ast.FuncType) {
	check := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := pass.TypesInfo.Types[field.Type]
			if !ok {
				continue
			}
			if named, isNamed := tv.Type.(*types.Named); isNamed && isMutexType(named) {
				pass.Reportf(field.Type.Pos(),
					"sync.%s passed by value copies the lock state; pass a pointer", named.Obj().Name())
			}
		}
	}
	check(recv)
	check(ftype.Params)
}

func isMutexType(named *types.Named) bool {
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	name := named.Obj().Name()
	return named.Obj().Pkg().Path() == "sync" && (name == "Mutex" || name == "RWMutex")
}

func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
