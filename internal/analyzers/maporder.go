package analyzers

import (
	"go/ast"
	"go/types"

	"o2pc/internal/analyzers/framework"
)

// Maporder flags code where Go's randomized map-iteration order can flow
// into a determinism-critical sink: a WAL append, a trace emission, or an
// rpc payload. The replay and exploration machinery (DESIGN.md §10)
// depends on byte-identical traces across same-seed runs; a `range` over
// a map that feeds the log or the wire in iteration order injects
// scheduler-independent nondeterminism that no seed controls.
//
// The pass runs a lightweight intra-procedural dataflow walk per
// function: ranging over a map (or over a slice that accumulated
// map-ordered elements) opens an "ordered context"; sinks called inside
// one are reported, as are sink arguments whose value is tainted by
// map order. Sorting (sort.*, slices.Sort*) launders the taint, and
// slices.Sorted(maps.Keys(m)) is the canonical clean idiom. Sinks
// propagate interprocedurally via package facts, so a helper that
// forwards to wal.Append is itself a sink for its callers.
var Maporder = &framework.Analyzer{
	Name: "maporder",
	Doc: "map iteration order must not flow into WAL appends, trace " +
		"events, or rpc payloads without an intervening sort",
	Facts: maporderFacts,
	Run:   runMaporder,
}

// maporderBaseSink reports whether fn is a determinism sink by
// definition: bytes or events it receives become part of the durable or
// replayed stream in argument order.
func maporderBaseSink(fn *types.Func) bool {
	path, name := funcPkgPath(fn), fn.Name()
	switch {
	case pathEndsWith(path, "internal/wal"):
		return name == "Append" || name == "WriteCheckpoint"
	case pathEndsWith(path, "internal/trace"):
		return name == "Emit"
	case pathEndsWith(path, "internal/rpc"):
		return name == "Call" || name == "Send"
	}
	return false
}

// maporderFacts exports the set of declared functions that transitively
// call a sink, so cross-package callers treat them as sinks too.
func maporderFacts(pass *framework.Pass) (any, error) {
	fs := newFactSet(pass)
	local := make(map[string]bool)
	for changed := true; changed; {
		changed = false
		for _, f := range pass.Files {
			if isTestFile(pass.Fset.Position(f.Pos()).Filename) {
				continue
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn := declFunc(pass.TypesInfo, fd)
				if fn == nil || local[funcKey(fn)] {
					continue
				}
				found := false
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if found {
						return false
					}
					if call, ok := n.(*ast.CallExpr); ok {
						if maporderSink(pass, fs, local, calleeFunc(pass.TypesInfo, call)) {
							found = true
						}
					}
					return !found
				})
				if found {
					local[funcKey(fn)] = true
					changed = true
				}
			}
		}
	}
	return sortedKeys(local), nil
}

func maporderSink(pass *framework.Pass, fs *factSet, local map[string]bool, fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if maporderBaseSink(fn) {
		return true
	}
	if fn.Pkg() != nil && fn.Pkg() == pass.Pkg {
		return local[funcKey(fn)]
	}
	return fs.has(fn)
}

func runMaporder(pass *framework.Pass) error {
	fs := newFactSet(pass)
	var own []string
	ownSet := make(map[string]bool)
	if pass.ImportFact(pass.Pkg.Path(), &own) {
		for _, k := range own {
			ownSet[k] = true
		}
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w := &mapWalker{pass: pass, fs: fs, own: ownSet, tainted: make(map[types.Object]bool)}
					w.stmts(fn.Body.List)
				}
				return false
			case *ast.FuncLit:
				w := &mapWalker{pass: pass, fs: fs, own: ownSet, tainted: make(map[types.Object]bool)}
				w.stmts(fn.Body.List)
				return false
			}
			return true
		})
	}
	return nil
}

// mapWalker carries the per-function dataflow state: which slice
// variables hold map-ordered elements, and how many map-ordered range
// bodies enclose the current statement.
type mapWalker struct {
	pass    *framework.Pass
	fs      *factSet
	own     map[string]bool
	tainted map[types.Object]bool
	ordered []string // descriptions of enclosing map-ordered ranges
}

func (w *mapWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *mapWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.RangeStmt:
		w.scan(s.X)
		desc := w.orderedSource(s.X)
		if desc != "" {
			w.ordered = append(w.ordered, desc)
			defer func() { w.ordered = w.ordered[:len(w.ordered)-1] }()
		}
		w.stmts(s.Body.List)
	case *ast.AssignStmt:
		w.assign(s)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			w.launder(call)
		}
		w.scan(s.X)
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.scan(s.Cond)
		w.stmts(s.Body.List)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.scan(s.Cond)
		}
		if s.Post != nil {
			w.stmt(s.Post)
		}
		w.stmts(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.scan(s.Tag)
		}
		for _, c := range s.Body.List {
			w.stmts(c.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			w.stmts(c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				w.stmt(cc.Comm)
			}
			w.stmts(cc.Body)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scan(e)
		}
	case *ast.DeferStmt:
		w.scan(s.Call)
	case *ast.GoStmt:
		w.scan(s.Call)
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		w.scan(s)
	}
}

// orderedSource classifies a range operand: non-empty when iterating it
// yields elements in map order (a map, or a slice tainted by map order).
func (w *mapWalker) orderedSource(x ast.Expr) string {
	t := w.pass.TypesInfo.Types[x].Type
	if t != nil {
		if _, ok := t.Underlying().(*types.Map); ok {
			return "map " + types.ExprString(x)
		}
	}
	if w.taintedExpr(x) {
		return "map-ordered slice " + types.ExprString(x)
	}
	return ""
}

func (w *mapWalker) taintedExpr(x ast.Expr) bool {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return false
	}
	obj := w.pass.TypesInfo.Uses[id]
	return obj != nil && w.tainted[obj]
}

// assign updates taint for each assigned variable, then scans the right
// sides for sink calls.
func (w *mapWalker) assign(s *ast.AssignStmt) {
	for i, lhs := range s.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" || i >= len(s.Rhs) {
			continue
		}
		obj := w.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = w.pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			continue
		}
		w.tainted[obj] = w.taintSource(obj, ast.Unparen(s.Rhs[i]))
	}
	for _, rhs := range s.Rhs {
		w.scan(rhs)
	}
}

// taintSource decides whether the assigned value carries map order:
// maps.Keys/maps.Values (directly or through slices.Collect), appending
// inside a map-ordered range, or aliasing an already-tainted slice.
// slices.Sorted* and sort-returning forms produce clean values.
func (w *mapWalker) taintSource(dst types.Object, rhs ast.Expr) bool {
	if w.taintedExpr(rhs) {
		return true
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return false
	}
	// append(dst, ...) inside a map-ordered range accumulates elements in
	// iteration order.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if len(w.ordered) > 0 && len(call.Args) > 0 {
			if base, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && w.pass.TypesInfo.Uses[base] == dst {
				return true
			}
		}
		// Appending a tainted slice's elements spreads the taint.
		for _, a := range call.Args {
			if w.taintedExpr(a) {
				return true
			}
		}
		return false
	}
	fn := calleeFunc(w.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "maps":
		return fn.Name() == "Keys" || fn.Name() == "Values"
	case "slices":
		if fn.Name() == "Collect" || fn.Name() == "AppendSeq" {
			// Collecting a maps.Keys/Values iterator keeps map order;
			// slices.Sorted consumes the same iterators cleanly.
			for _, a := range call.Args {
				if inner, ok := ast.Unparen(a).(*ast.CallExpr); ok {
					ifn := calleeFunc(w.pass.TypesInfo, inner)
					if ifn != nil && ifn.Pkg() != nil && ifn.Pkg().Path() == "maps" {
						return true
					}
				}
			}
		}
	}
	return false
}

// launder clears taint from arguments of in-place sorting calls.
func (w *mapWalker) launder(call *ast.CallExpr) {
	fn := calleeFunc(w.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path, name := fn.Pkg().Path(), fn.Name()
	sorts := path == "sort" ||
		(path == "slices" && len(name) >= 4 && name[:4] == "Sort")
	if !sorts {
		return
	}
	for _, a := range call.Args {
		if id, ok := ast.Unparen(a).(*ast.Ident); ok {
			if obj := w.pass.TypesInfo.Uses[id]; obj != nil {
				delete(w.tainted, obj)
			}
		}
	}
}

// scan inspects an expression for sink calls, reporting those reached
// inside a map-ordered context or fed a tainted argument.
func (w *mapWalker) scan(n ast.Node) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			inner := &mapWalker{pass: w.pass, fs: w.fs, own: w.own, tainted: w.tainted, ordered: w.ordered}
			inner.stmts(x.Body.List)
			return false
		case *ast.CallExpr:
			w.checkSink(x)
		}
		return true
	})
}

func (w *mapWalker) checkSink(call *ast.CallExpr) {
	fn := calleeFunc(w.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	isSink := maporderBaseSink(fn) ||
		(fn.Pkg() == w.pass.Pkg && w.own[funcKey(fn)]) ||
		(fn.Pkg() != w.pass.Pkg && w.fs.has(fn))
	if !isSink {
		return
	}
	if len(w.ordered) > 0 {
		w.pass.Reportf(call.Pos(),
			"%s called inside range over %s: map iteration order is randomized per run, "+
				"so the durable/replayed stream is no longer byte-identical across same-seed runs; "+
				"iterate sorted keys (slices.Sorted(maps.Keys(m))) or annotate //o2pcvet:ignore maporder -- reason",
			describeFunc(fn), w.ordered[len(w.ordered)-1])
		return
	}
	for _, a := range call.Args {
		if w.taintedExpr(a) {
			w.pass.Reportf(call.Pos(),
				"argument %s carries map-iteration order into %s: sort it before it reaches "+
					"the durable/replayed stream, or annotate //o2pcvet:ignore maporder -- reason",
				types.ExprString(a), describeFunc(fn))
			return
		}
	}
}
