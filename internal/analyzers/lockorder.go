package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"o2pc/internal/analyzers/framework"
)

// Lockorder builds the program's mutex acquisition graph and enforces
// the shard discipline PR 4's lock manager established: key shards are
// locked together only in ascending slice order (lockAllShards), a txn
// shard may be taken while key shards are held but never the reverse,
// and no two lock classes may be acquired in inconsistent order anywhere
// in the program.
//
// A lock class is a (package, type, field) coordinate —
// "o2pc/internal/lock.keyShard.mu" — so every instance of a shard mutex
// shares a class. Each package's fact carries per-function summaries
// (classes locked, released, and transiently acquired) plus the
// held-while-acquiring edges observed in its bodies; summaries propagate
// acquisition effects across package boundaries, and a Finish hook
// unions all edges and reports every cycle (a potential deadlock) at its
// lexicographically smallest edge.
//
// Intra-procedurally the pass reports re-acquisition of a held class —
// except through an index-ordered range over a slice or array, the
// sanctioned ascending idiom — and locks acquired inside a loop that are
// still held when the iteration ends, since successive iterations would
// then acquire same-class instances in an unprovable order.
var Lockorder = &framework.Analyzer{
	Name: "lockorder",
	Doc: "mutex classes must be acquired in a consistent global order; " +
		"same-class instances only via ascending slice iteration",
	Facts:  lockorderFactsHook,
	Run:    runLockorder,
	Finish: finishLockorder,
}

// lockorderFunc summarizes one function's lock effects for callers.
type lockorderFunc struct {
	// Locks are classes still held when the function returns
	// (lockAllShards leaves keyShard.mu held).
	Locks []string `json:"locks,omitempty"`
	// Unlocks are classes released without a matching acquire
	// (unlockAllShards drops the caller's keyShard.mu).
	Unlocks []string `json:"unlocks,omitempty"`
	// Acquires are all classes transiently acquired anywhere within,
	// including through callees.
	Acquires []string `json:"acquires,omitempty"`
}

// lockorderEdge records "From was held while To was acquired" at a
// source position (serialized file/line — positions must survive the
// fact JSON round-trip).
type lockorderEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	File string `json:"file"`
	Line int    `json:"line"`
}

// lockorderFact is the per-package fact: function summaries plus the
// package's contribution to the global acquisition graph.
type lockorderFact struct {
	Funcs map[string]lockorderFunc `json:"funcs,omitempty"`
	Edges []lockorderEdge          `json:"edges,omitempty"`
}

// lockorderFactsHook computes the package's summaries by intra-package
// fixpoint (imported packages' facts are already available — the
// framework runs Facts in dependency order), then replays the walk once
// more to collect acquisition edges under the stable summaries.
func lockorderFactsHook(pass *framework.Pass) (any, error) {
	lw := newLockContext(pass)
	for changed := true; changed; {
		changed = false
		lw.forEachFunc(func(fd *ast.FuncDecl, fn *types.Func) {
			sum := lw.walkFunc(fd, false)
			key := funcKey(fn)
			if !sameSummary(lw.local[key], sum) {
				lw.local[key] = sum
				changed = true
			}
		})
	}
	lw.collectEdges = true
	lw.forEachFunc(func(fd *ast.FuncDecl, fn *types.Func) {
		lw.walkFunc(fd, false)
	})

	fact := lockorderFact{Edges: lw.edges}
	if len(lw.local) > 0 {
		fact.Funcs = make(map[string]lockorderFunc)
		for k, v := range lw.local {
			if len(v.Locks)+len(v.Unlocks)+len(v.Acquires) > 0 {
				fact.Funcs[k] = v
			}
		}
		if len(fact.Funcs) == 0 {
			fact.Funcs = nil
		}
	}
	if fact.Funcs == nil && len(fact.Edges) == 0 {
		return nil, nil
	}
	return fact, nil
}

func runLockorder(pass *framework.Pass) error {
	lw := newLockContext(pass)
	// Summaries were computed by the Facts hook; reuse them from the
	// store so the reporting walk resolves intra-package calls.
	var own lockorderFact
	if pass.ImportFact(pass.Pkg.Path(), &own) {
		for k, v := range own.Funcs {
			lw.local[k] = v
		}
	}
	lw.forEachFunc(func(fd *ast.FuncDecl, fn *types.Func) {
		lw.walkFunc(fd, true)
	})
	return nil
}

func sameSummary(a, b lockorderFunc) bool {
	return strings.Join(a.Locks, ",") == strings.Join(b.Locks, ",") &&
		strings.Join(a.Unlocks, ",") == strings.Join(b.Unlocks, ",") &&
		strings.Join(a.Acquires, ",") == strings.Join(b.Acquires, ",")
}

// lockContext is the per-package state shared by the fixpoint, edge, and
// reporting walks.
type lockContext struct {
	pass         *framework.Pass
	local        map[string]lockorderFunc
	imported     map[string]*lockorderFact
	edges        []lockorderEdge
	edgeSeen     map[[2]string]bool
	collectEdges bool
}

func newLockContext(pass *framework.Pass) *lockContext {
	return &lockContext{
		pass:     pass,
		local:    make(map[string]lockorderFunc),
		imported: make(map[string]*lockorderFact),
		edgeSeen: make(map[[2]string]bool),
	}
}

func (lc *lockContext) forEachFunc(fn func(*ast.FuncDecl, *types.Func)) {
	for _, f := range lc.pass.Files {
		if isTestFile(lc.pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if tfn := declFunc(lc.pass.TypesInfo, fd); tfn != nil {
				fn(fd, tfn)
			}
		}
	}
}

// summary resolves a callee's lock summary from the intra-package map or
// an imported package's fact.
func (lc *lockContext) summary(fn *types.Func) (lockorderFunc, bool) {
	if fn == nil || fn.Pkg() == nil {
		return lockorderFunc{}, false
	}
	if fn.Pkg() == lc.pass.Pkg {
		s, ok := lc.local[funcKey(fn)]
		return s, ok
	}
	path := fn.Pkg().Path()
	fact, ok := lc.imported[path]
	if !ok {
		fact = &lockorderFact{}
		if !lc.pass.ImportFact(path, fact) {
			fact = nil
		}
		lc.imported[path] = fact
	}
	if fact == nil {
		return lockorderFunc{}, false
	}
	s, ok := fact.Funcs[funcKey(fn)]
	return s, ok
}

func (lc *lockContext) addEdge(from, to string, pos token.Pos) {
	if !lc.collectEdges || from == to {
		return
	}
	key := [2]string{from, to}
	if lc.edgeSeen[key] {
		return
	}
	lc.edgeSeen[key] = true
	p := lc.pass.Fset.Position(pos)
	lc.edges = append(lc.edges, lockorderEdge{From: from, To: to, File: p.Filename, Line: p.Line})
}

// walkFunc runs one linear, source-order pass over a function body and
// returns its summary. With report set it also emits the
// intra-procedural diagnostics.
func (lc *lockContext) walkFunc(fd *ast.FuncDecl, report bool) lockorderFunc {
	w := &orderWalker{
		lc:       lc,
		report:   report,
		held:     make(map[string]heldLock),
		acquired: make(map[string]bool),
		released: make(map[string]bool),
	}
	w.stmts(fd.Body.List)
	return w.finish()
}

// heldLock is one held class: the instance expression that acquired it
// (a syntactic heuristic distinguishing sh.mu from other.mu) and where.
type heldLock struct {
	inst string
	pos  token.Pos
}

type orderWalker struct {
	lc       *lockContext
	report   bool
	held     map[string]heldLock
	acquired map[string]bool // every class acquired in this function
	released map[string]bool // classes released without a local acquire
	deferred []string        // classes unlocked by deferred calls
}

func (w *orderWalker) finish() lockorderFunc {
	for _, class := range w.deferred {
		if _, ok := w.held[class]; ok {
			delete(w.held, class)
		} else if !w.acquired[class] {
			w.released[class] = true
		}
	}
	var sum lockorderFunc
	for class := range w.held {
		sum.Locks = append(sum.Locks, class)
	}
	for class := range w.released {
		sum.Unlocks = append(sum.Unlocks, class)
	}
	for class := range w.acquired {
		sum.Acquires = append(sum.Acquires, class)
	}
	sort.Strings(sum.Locks)
	sort.Strings(sum.Unlocks)
	sort.Strings(sum.Acquires)
	return sum
}

func (w *orderWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *orderWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.scan(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scan(e)
		}
		for _, e := range s.Lhs {
			w.scan(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scan(e)
		}
	case *ast.DeferStmt:
		w.deferCall(s.Call)
	case *ast.GoStmt:
		// The spawned goroutine runs concurrently; its locks are its own
		// (walked standalone), and argument expressions evaluate here.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.standalone(lit)
		}
		for _, a := range s.Call.Args {
			w.scan(a)
		}
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.scan(s.Cond)
		w.stmts(s.Body.List)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.scan(s.Cond)
		}
		before := w.snapshot()
		w.stmts(s.Body.List)
		if s.Post != nil {
			w.stmt(s.Post)
		}
		w.loopEnd(before, false)
	case *ast.RangeStmt:
		w.scan(s.X)
		before := w.snapshot()
		w.stmts(s.Body.List)
		w.loopEnd(before, rangeOverIndexed(w.lc.pass.TypesInfo, s))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.scan(s.Tag)
		}
		for _, c := range s.Body.List {
			w.stmts(c.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			w.stmts(c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				w.stmt(cc.Comm)
			}
			w.stmts(cc.Body)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		w.scan(s)
	}
}

func (w *orderWalker) snapshot() map[string]bool {
	out := make(map[string]bool, len(w.held))
	for class := range w.held {
		out[class] = true
	}
	return out
}

// loopEnd flags classes acquired inside the loop body and still held at
// its end: iteration two would re-acquire the class while instance one
// is held, in an order the analysis cannot prove ascending — unless the
// loop is an index-ordered range over a slice or array, the sanctioned
// lockAllShards idiom.
func (w *orderWalker) loopEnd(before map[string]bool, ascending bool) {
	if !w.report || ascending {
		return
	}
	var classes []string
	for class := range w.held {
		if !before[class] {
			classes = append(classes, class)
		}
	}
	sort.Strings(classes)
	for _, class := range classes {
		w.lc.pass.Reportf(w.held[class].pos,
			"%s is acquired in a loop and still held when the iteration ends: successive "+
				"iterations take same-class instances in an unprovable order; only an "+
				"index-ordered range over a slice keeps the ascending-shard discipline "+
				"(see lock.Manager.lockAllShards)",
			class)
	}
}

// deferCall applies a deferred statement's releases at function end.
func (w *orderWalker) deferCall(call *ast.CallExpr) {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		// Deferred literals commonly wrap unlocks; harvest those, and
		// analyze the rest of the literal standalone.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if class, _, kind := w.mutexOp(c); kind == opUnlock && class != "" {
					w.deferred = append(w.deferred, class)
				}
			}
			return true
		})
		return
	}
	if class, _, kind := w.mutexOp(call); kind == opUnlock && class != "" {
		w.deferred = append(w.deferred, class)
		return
	}
	if sum, ok := w.lc.summary(calleeFunc(w.lc.pass.TypesInfo, call)); ok {
		w.deferred = append(w.deferred, sum.Unlocks...)
	}
	for _, a := range call.Args {
		w.scan(a)
	}
}

// standalone walks a function literal with a fresh lock state (its
// goroutine or escaping closure acquires independently).
func (w *orderWalker) standalone(lit *ast.FuncLit) {
	inner := &orderWalker{
		lc:       w.lc,
		report:   w.report,
		held:     make(map[string]heldLock),
		acquired: make(map[string]bool),
		released: make(map[string]bool),
	}
	inner.stmts(lit.Body.List)
	inner.finish()
}

// scan visits an expression in source order, dispatching lock/unlock
// operations and callee summaries.
func (w *orderWalker) scan(n ast.Node) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			w.standalone(x)
			return false
		case *ast.CallExpr:
			w.call(x)
		}
		return true
	})
}

type mutexOpKind int

const (
	opNone mutexOpKind = iota
	opLock
	opUnlock
)

// mutexOp classifies a call as a blocking acquire or a release of a
// classifiable mutex. TryLock is ignored (non-blocking, no deadlock
// contribution), and mutexes that are not fields of a named struct
// (locals, bare globals) have no class.
func (w *orderWalker) mutexOp(call *ast.CallExpr) (class, inst string, kind mutexOpKind) {
	fn := calleeFunc(w.lc.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", opNone
	}
	named := recvNamed(fn)
	if named == nil {
		return "", "", opNone
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return "", "", opNone
	}
	switch fn.Name() {
	case "Lock", "RLock":
		kind = opLock
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return "", "", opNone
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", kind
	}
	class, inst = w.mutexClass(ast.Unparen(sel.X))
	return class, inst, kind
}

// mutexClass names the (package, type, field) coordinate of a mutex
// expression: "pkg.keyShard.mu" for sh.mu, "pkg.Tracer.Mutex" for an
// embedded mutex reached as tr.Lock()/tr.Mutex.Lock(). Returns "" for
// mutexes that are not struct fields.
func (w *orderWalker) mutexClass(recv ast.Expr) (string, string) {
	inst := types.ExprString(recv)
	if fsel, ok := recv.(*ast.SelectorExpr); ok {
		if named := namedOf(w.lc.pass.TypesInfo.Types[fsel.X].Type); named != nil {
			if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() != "sync" {
				return pkg.Path() + "." + named.Obj().Name() + "." + fsel.Sel.Name, inst
			}
		}
		return "", inst
	}
	// Promoted method on an embedding struct: t.Lock().
	if named := namedOf(w.lc.pass.TypesInfo.Types[recv].Type); named != nil {
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() != "sync" {
			return pkg.Path() + "." + named.Obj().Name() + ".Mutex", inst
		}
	}
	return "", inst
}

func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func (w *orderWalker) call(call *ast.CallExpr) {
	class, inst, kind := w.mutexOp(call)
	switch kind {
	case opLock:
		if class != "" {
			w.lock(class, inst, call.Pos())
		}
		return
	case opUnlock:
		if class == "" {
			return
		}
		if _, ok := w.held[class]; ok {
			delete(w.held, class)
		} else if !w.acquired[class] {
			w.released[class] = true
		}
		return
	case opNone:
		// Not a mutex operation: fall through to callee-summary handling.
	}

	fn := calleeFunc(w.lc.pass.TypesInfo, call)
	sum, ok := w.lc.summary(fn)
	if !ok {
		return
	}
	for _, c := range sum.Acquires {
		if held, isHeld := w.held[c]; isHeld && w.report {
			w.lc.pass.Reportf(call.Pos(),
				"calls %s, which acquires %s while an instance of that class (%s) is already "+
					"held here: same-class acquisition across a call cannot preserve the "+
					"ascending-shard order and admits deadlock; release first or restructure "+
					"(see lock.Manager.lockAllShards)",
				describeFunc(fn), c, held.inst)
		}
		for h := range w.held {
			w.lc.addEdge(h, c, call.Pos())
		}
		w.acquired[c] = true
	}
	for _, c := range sum.Locks {
		if _, isHeld := w.held[c]; !isHeld {
			w.held[c] = heldLock{inst: "via " + describeFunc(fn), pos: call.Pos()}
		}
	}
	for _, c := range sum.Unlocks {
		delete(w.held, c)
	}
}

func (w *orderWalker) lock(class, inst string, pos token.Pos) {
	if prev, ok := w.held[class]; ok && w.report {
		w.lc.pass.Reportf(pos,
			"%s (instance %s) acquired while another instance of the same class (%s) is "+
				"held: same-class instances may only be taken together through an "+
				"index-ordered slice range (the ascending lockAllShards discipline)",
			class, inst, prev.inst)
	}
	for h := range w.held {
		w.lc.addEdge(h, class, pos)
	}
	w.acquired[class] = true
	if _, ok := w.held[class]; !ok {
		w.held[class] = heldLock{inst: inst, pos: pos}
	}
}

// rangeOverIndexed reports whether the range statement iterates a slice,
// array, or pointer-to-array — index order, the sanctioned ascending
// acquisition idiom. Maps (randomized) and channels do not qualify.
func rangeOverIndexed(info *types.Info, s *ast.RangeStmt) bool {
	t := info.Types[s.X].Type
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	}
	return false
}

// finishLockorder unions every package's acquisition edges and reports
// each cycle in the resulting graph: two lock classes acquired in both
// orders somewhere in the program is a deadlock the scheduler only has
// to get unlucky once to hit.
func finishLockorder(f *framework.Finish) error {
	type edgeKey struct{ from, to string }
	best := make(map[edgeKey]lockorderEdge)
	for _, pkg := range f.Pkgs {
		var fact lockorderFact
		if !f.Fact(pkg.ImportPath, &fact) {
			continue
		}
		for _, e := range fact.Edges {
			k := edgeKey{e.From, e.To}
			if prev, ok := best[k]; !ok || e.File < prev.File ||
				(e.File == prev.File && e.Line < prev.Line) {
				best[k] = e
			}
		}
	}
	if len(best) == 0 {
		return nil
	}

	adj := make(map[string][]string)
	nodes := make(map[string]bool)
	for k := range best {
		adj[k.from] = append(adj[k.from], k.to)
		nodes[k.from], nodes[k.to] = true, true
	}
	var order []string
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)
	for _, tos := range adj {
		sort.Strings(tos)
	}

	for _, scc := range tarjan(order, adj) {
		if len(scc) < 2 {
			continue
		}
		sort.Strings(scc)
		in := make(map[string]bool, len(scc))
		for _, n := range scc {
			in[n] = true
		}
		var anchor lockorderEdge
		haveAnchor := false
		for k, e := range best {
			if !in[k.from] || !in[k.to] {
				continue
			}
			if !haveAnchor || e.File < anchor.File ||
				(e.File == anchor.File && e.Line < anchor.Line) ||
				(e.File == anchor.File && e.Line == anchor.Line && e.From < anchor.From) {
				anchor, haveAnchor = e, true
			}
		}
		f.Reportf(token.Position{Filename: anchor.File, Line: anchor.Line},
			"lock-order cycle among {%s}: these classes are acquired in inconsistent "+
				"orders across the program, admitting deadlock; impose one global order "+
				"(key shards ascending, then txn shard — never the reverse)",
			strings.Join(scc, ", "))
	}
	return nil
}

// tarjan computes strongly connected components over the sorted node
// list, iteratively (no recursion-depth concerns, deterministic output).
func tarjan(order []string, adj map[string][]string) [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0

	type frame struct {
		node string
		ai   int
	}
	for _, root := range order {
		if _, seen := index[root]; seen {
			continue
		}
		frames := []frame{{node: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			fr := &frames[len(frames)-1]
			if fr.ai < len(adj[fr.node]) {
				child := adj[fr.node][fr.ai]
				fr.ai++
				if _, seen := index[child]; !seen {
					index[child], low[child] = next, next
					next++
					stack = append(stack, child)
					onStack[child] = true
					frames = append(frames, frame{node: child})
				} else if onStack[child] && index[child] < low[fr.node] {
					low[fr.node] = index[child]
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].node
				if low[fr.node] < low[parent] {
					low[parent] = low[fr.node]
				}
			}
			if low[fr.node] == index[fr.node] {
				var scc []string
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					scc = append(scc, top)
					if top == fr.node {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}
