package analyzers

import (
	"go/ast"
	"go/types"

	"o2pc/internal/analyzers/framework"
)

// Errflow tracks error results that originate in the protocol-critical
// layers — wal appends/syncs, lock-manager admission, rpc delivery, and
// the virtual clock — through the call graph, and reports every point
// where such an error is discarded: a blank assignment (`_ = call`), a
// bare expression statement, or a defer/go whose result vanishes.
//
// The paper's guarantees assume these errors are observed. Theorem 2's
// semantic atomicity holds only if a failed Append aborts the transaction
// rather than exposing an unlogged write; a swallowed lock error breaks
// admission; a dropped rpc error desynchronizes coordinator and
// participant state. Propagation is interprocedural via package facts:
// each package exports the set of its error-returning functions that
// transitively surface a layer error, so a discard of `txn.Abort`'s
// result is flagged even though the wal call is three frames down.
//
// Deliberate discards carry an "//o2pcvet:ignore errflow -- reason"
// directive, which keeps every exemption self-documenting.
var Errflow = &framework.Analyzer{
	Name: "errflow",
	Doc: "errors originating in the wal/lock/rpc/clock layer must be " +
		"handled or propagated, never silently discarded",
	Facts: errflowFacts,
	Run:   runErrflow,
}

// errflowBasePkg reports whether every error-returning function of the
// package is an error source by definition. These are the layers whose
// failures the protocol proofs reason about.
func errflowBasePkg(path string) bool {
	return pathEndsWith(path, "internal/wal") ||
		pathEndsWith(path, "internal/lock") ||
		pathEndsWith(path, "internal/rpc") ||
		pathEndsWith(path, "internal/sim")
}

// errflowFacts computes the package's propagator set: error-returning
// declared functions whose bodies (transitively, via an intra-package
// fixpoint and imported facts) call an error source. Base packages export
// all their error-returning declarations.
func errflowFacts(pass *framework.Pass) (any, error) {
	local := make(map[string]bool)
	if errflowBasePkg(pass.Pkg.Path()) {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn := declFunc(pass.TypesInfo, fd); fn != nil && returnsError(fn) {
					local[funcKey(fn)] = true
				}
			}
		}
		return sortedKeys(local), nil
	}

	fs := newFactSet(pass)
	for changed := true; changed; {
		changed = false
		for _, f := range pass.Files {
			if isTestFile(pass.Fset.Position(f.Pos()).Filename) {
				continue
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn := declFunc(pass.TypesInfo, fd)
				if fn == nil || !returnsError(fn) || local[funcKey(fn)] {
					continue
				}
				found := false
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if found {
						return false
					}
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if errflowSourceFunc(pass, fs, local, calleeFunc(pass.TypesInfo, call)) {
						found = true
					}
					return !found
				})
				if found {
					local[funcKey(fn)] = true
					changed = true
				}
			}
		}
	}
	return sortedKeys(local), nil
}

// errflowSourceFunc reports whether fn's error result carries a layer
// error: a base-package function, an intra-package propagator discovered
// so far (local), or a propagator recorded in an imported package's fact.
func errflowSourceFunc(pass *framework.Pass, fs *factSet, local map[string]bool, fn *types.Func) bool {
	if fn == nil || !returnsError(fn) {
		return false
	}
	if errflowBasePkg(funcPkgPath(fn)) {
		return true
	}
	if fn.Pkg() != nil && fn.Pkg() == pass.Pkg {
		return local[funcKey(fn)]
	}
	return fs.has(fn)
}

func runErrflow(pass *framework.Pass) error {
	fs := newFactSet(pass)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				errflowAssign(pass, fs, s)
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					errflowUnchecked(pass, fs, call, "unchecked call")
				}
			case *ast.DeferStmt:
				errflowUnchecked(pass, fs, s.Call, "deferred call")
			case *ast.GoStmt:
				errflowUnchecked(pass, fs, s.Call, "go statement")
			}
			return true
		})
	}
	return nil
}

// errflowAssign flags blank identifiers that receive a source call's
// error result, covering `_ = call`, `v, _ := call`, and parallel
// assignments.
func errflowAssign(pass *framework.Pass, fs *factSet, s *ast.AssignStmt) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// Multi-value call: match each blank against its result slot.
		call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
		if !ok || !errflowSource(pass, fs, call) {
			return
		}
		tuple, ok := pass.TypesInfo.Types[call].Type.(*types.Tuple)
		if !ok || tuple.Len() != len(s.Lhs) {
			return
		}
		for i, lhs := range s.Lhs {
			if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				errflowReport(pass, call, "blank assignment")
				return
			}
		}
		return
	}
	for i, lhs := range s.Lhs {
		if !isBlank(lhs) || i >= len(s.Rhs) {
			continue
		}
		call, ok := ast.Unparen(s.Rhs[i]).(*ast.CallExpr)
		if !ok || !errflowSource(pass, fs, call) {
			continue
		}
		if t, ok := pass.TypesInfo.Types[call].Type.(*types.Tuple); ok {
			if t.Len() == 0 || !isErrorType(t.At(t.Len()-1).Type()) {
				continue
			}
		} else if !isErrorType(pass.TypesInfo.Types[call].Type) {
			continue
		}
		errflowReport(pass, call, "blank assignment")
	}
}

// errflowUnchecked flags statements that invoke a source call and never
// bind its error result.
func errflowUnchecked(pass *framework.Pass, fs *factSet, call *ast.CallExpr, how string) {
	if errflowSource(pass, fs, call) {
		errflowReport(pass, call, how)
	}
}

func errflowSource(pass *framework.Pass, fs *factSet, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || !returnsError(fn) {
		return false
	}
	return errflowBasePkg(funcPkgPath(fn)) || fs.has(fn)
}

func errflowReport(pass *framework.Pass, call *ast.CallExpr, how string) {
	fn := calleeFunc(pass.TypesInfo, call)
	pass.Reportf(call.Pos(),
		"%s discards the error from %s, which originates in the wal/lock/rpc/clock layer: "+
			"the protocol's write-ahead and admission guarantees assume it is observed; "+
			"handle or propagate it, or annotate //o2pcvet:ignore errflow -- reason",
		how, describeFunc(fn))
}

// describeFunc renders a function as "pkgname.Key" for diagnostics.
func describeFunc(fn *types.Func) string {
	if fn == nil {
		return "call"
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + funcKey(fn)
	}
	return funcKey(fn)
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}
