package analyzers_test

import (
	"testing"

	"o2pc/internal/analyzers"
	"o2pc/internal/analyzers/analysistest"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Lockorder,
		"lockorder/internal/lock",
		"lockorder/internal/replog",
		"lockorder/a",
	)
}
