package site

import (
	"testing"

	"o2pc/internal/history"
	"o2pc/internal/proto"
)

// TestStaleExecFenced models an ExecRequest delayed across a coordinator
// crash: the abort decision for the transaction reaches the site first;
// the late request must be refused instead of executing on behalf of a
// dead transaction.
func TestStaleExecFenced(t *testing.T) {
	s := newTestSite(t, Config{})
	s.SeedInt64("n", 0)
	// The (presumed-abort) decision arrives before the site ever saw the
	// transaction.
	decide(t, s, "Tstale", false)
	reply := exec(t, s, o2pcReq("Tstale", proto.Add("n", 1)))
	if reply.OK {
		t.Fatalf("stale subtransaction executed: %+v", reply)
	}
	if got := s.ReadInt64("n"); got != 0 {
		t.Fatalf("n = %d after fenced exec", got)
	}
	if s.Manager().Locks().HoldsAny("Tstale") {
		t.Fatalf("fenced exec leaked locks")
	}
}

// TestUnexposedRollbackVoidsHistory: a subtransaction aborted before any
// vote leaves no trace in the recorded history (committed projection).
func TestUnexposedRollbackVoidsHistory(t *testing.T) {
	rec := history.NewRecorder()
	s := newTestSite(t, Config{Recorder: rec})
	s.SeedInt64("n", 3)
	reply := exec(t, s, o2pcReq("Tf", proto.AddMin("n", -5, 0)))
	if reply.OK {
		t.Fatalf("constraint violation not reported")
	}
	h := rec.Snapshot()
	for _, op := range h.Ops {
		if op.Txn == "Tf" {
			t.Fatalf("unexposed subtransaction left history ops: %+v", op)
		}
		if op.Txn == "CTTf" {
			t.Fatalf("unexposed roll-back modeled as compensation: %+v", op)
		}
	}
}

// TestPostVoteRollbackKeepsCompensationModel: the NO-vote roll-back stays
// in the history as CTik (Section 3.2) because sibling subtransactions may
// already be exposed.
func TestPostVoteRollbackKeepsCompensationModel(t *testing.T) {
	rec := history.NewRecorder()
	s := newTestSite(t, Config{Recorder: rec})
	s.SeedInt64("n", 3)
	s.SetVoteAbortInjector(func(id string) bool { return id == "Tv" })
	exec(t, s, o2pcReq("Tv", proto.Add("n", 1)))
	v := vote(t, s, "Tv")
	if v.Commit {
		t.Fatalf("injected NO vote ignored")
	}
	h := rec.Snapshot()
	sawCT := false
	for _, op := range h.Ops {
		if op.Txn == "CTTv" {
			sawCT = true
		}
	}
	if !sawCT {
		t.Fatalf("post-vote roll-back not modeled as CTik")
	}
}
