// Package site implements the participant side of the commit protocols: a
// multidatabase member DBMS that executes local transactions, executes
// subtransactions of global transactions, votes, locally commits or rolls
// back, runs compensating subtransactions, and maintains the P1/P2 marking
// sets.
//
// One Site owns one txn.Manager (storage + locks + WAL) and serves the
// protocol messages of package proto. Site autonomy is preserved
// throughout: local transactions bypass every global protocol (they are
// plain strict-2PL transactions), and the site may unilaterally abort any
// subtransaction before it votes (via the abort injector or an operation
// failure).
package site

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"o2pc/internal/compensate"
	"o2pc/internal/history"
	"o2pc/internal/lock"
	"o2pc/internal/marking"
	"o2pc/internal/metrics"
	"o2pc/internal/proto"
	"o2pc/internal/rpc"
	"o2pc/internal/sim"
	"o2pc/internal/storage"
	"o2pc/internal/trace"
	"o2pc/internal/txn"
	"o2pc/internal/wal"
)

// MarkKey is the designated system key under which the site's marking set
// lives "as part of the database": every access to the marks is coupled to
// the site's lock manager through this key, exactly as Section 6.2
// prescribes, so the marking set participates in local 2PL (and in the
// deadlock scenario the paper discusses).
const MarkKey storage.Key = "__sitemarks__"

// CheckStrategy selects how the R1 compatibility check interacts with the
// marking-set lock (the deadlock trade-off of Section 6.2; ablation A2).
type CheckStrategy uint8

const (
	// CheckEarlyRevalidate acquires the marking-set read lock, checks,
	// releases the lock before executing the subtransaction, and validates
	// the check again as the subtransaction's last action (the paper's
	// "acceptable compromise").
	CheckEarlyRevalidate CheckStrategy = iota
	// CheckHold keeps the marking-set read lock for the subtransaction's
	// entire duration (plain 2PL; prone to the Section 6.2 deadlock, which
	// the waits-for detector then resolves).
	CheckHold
)

// String returns the strategy mnemonic.
func (c CheckStrategy) String() string {
	if c == CheckHold {
		return "hold"
	}
	return "early-revalidate"
}

// Config parameterizes a Site.
type Config struct {
	// Name is the site's node name on the network.
	Name string
	// ReleaseSharedAtVote releases read locks when the VOTE-REQ arrives
	// even under plain 2PC (permitted by Section 2; ablation A1).
	ReleaseSharedAtVote bool
	// CheckStrategy selects the R1 locking discipline.
	CheckStrategy CheckStrategy
	// Compensators resolves CompCustom compensator names.
	Compensators *compensate.Registry
	// EnsureWriteCoverage makes every compensating transaction cover the
	// forward write set (Theorem 2's premise). Defaults to true via
	// NewSite unless explicitly disabled with DisableWriteCoverage.
	DisableWriteCoverage bool
	// Recorder, when non-nil, captures the execution history for the
	// Section 5 verifier.
	Recorder *history.Recorder
	// ResolvePeriod is how often a blocked prepared participant re-asks
	// the coordinator for a lost decision. Defaults to 5ms.
	ResolvePeriod time.Duration
	// ReadOnlyVotes enables the classic read-only participant
	// optimization: a subtransaction that wrote nothing answers its
	// VOTE-REQ with a READ-ONLY vote, releases everything immediately and
	// drops out of the protocol (no DECISION is sent to it). Off by
	// default so the message census of experiment E6 compares the
	// unoptimized protocols; experiment A4 measures the saving.
	ReadOnlyVotes bool
	// Clock supplies the site's notion of time (lock timeouts, resolver
	// periods, background retries). Nil defaults to the real clock.
	Clock sim.Clock
	// LockTimeout bounds lock waits during subtransaction execution.
	// Per-site waits-for detection catches local deadlocks, but a
	// distributed 2PL deadlock (a lock cycle spanning sites) is invisible
	// to every individual site; the classical remedy — which this
	// implementation adopts — is timing out the wait and aborting the
	// global transaction. Defaults to 250ms. Local transactions and
	// compensating transactions are not subject to it (their lock scopes
	// are single-site, where the waits-for detector suffices).
	LockTimeout time.Duration
	// Log overrides the WAL (defaults to an in-memory log).
	Log wal.Log
	// LockShards overrides the lock manager's shard count; zero selects
	// lock.DefaultShards.
	LockShards int
	// WALGroupCommit wraps the site's WAL in a group-commit decorator:
	// concurrent Append+Sync committers coalesce into one physical sync
	// (wal.GroupCommitLog). The record order in the log is untouched, so
	// the Theorem 2 write-ahead discipline holds verbatim; only the
	// durability waits are batched.
	WALGroupCommit bool
	// WALGroupWindow bounds how long a committer waits for companions
	// before its batch is synced; zero selects wal.DefaultGroupWindow.
	WALGroupWindow time.Duration
	// WALGroupMaxBatch syncs a batch immediately once this many committers
	// are queued; zero selects wal.DefaultGroupMaxBatch.
	WALGroupMaxBatch int
	// Tracer, when non-nil, records the site's protocol steps (exec,
	// vote, local commit, decision, compensation) and its WAL writes.
	Tracer *trace.Tracer
}

// Stats exposes the site's protocol counters.
type Stats struct {
	Execs          *metrics.Counter
	RejectsRetry   *metrics.Counter
	RejectsFatal   *metrics.Counter
	ExecFailures   *metrics.Counter
	VotesYes       *metrics.Counter
	VotesNo        *metrics.Counter
	Commits        *metrics.Counter
	Aborts         *metrics.Counter
	Compensations  *metrics.Counter
	Rollbacks      *metrics.Counter
	LocalTxns      *metrics.Counter
	RevalidateFail *metrics.Counter
	// Recoveries counts completed Recover runs (site restarts).
	Recoveries *metrics.Counter
	// RecoveredInDoubt counts prepared-undecided subtransactions rebuilt
	// from the WAL by Recover (the 2PC blocking window).
	RecoveredInDoubt *metrics.Counter
	// RecoveredExposed counts exposed-undecided subtransactions rebuilt
	// from RecExposed records by Recover (the O2PC window).
	RecoveredExposed *metrics.Counter
	// ResumedCompensations counts compensating transactions re-run by
	// Recover after a crash interrupted them (or preempted their start).
	ResumedCompensations *metrics.Counter
	// PendingGlobal gauges the global subtransactions currently tracked
	// at this site (executed / prepared / locally committed, undecided).
	PendingGlobal *metrics.Gauge
	// ExposureDuration measures the O2PC exposure window per decided
	// subtransaction: local commit (lock release at the YES vote) to the
	// decision's arrival. Multi-shot sessions lengthen it only indirectly —
	// the window opens at the vote, after every round — but a longer
	// session keeps more concurrent transactions exposed at once, and
	// experiment E12 reads this histogram to show the distribution.
	ExposureDuration *metrics.Histogram
	// ExposureCommit and ExposureAbort split ExposureDuration by decision
	// outcome: a committed window closed harmlessly, an aborted one is
	// exactly the interval during which removable effects leaked and a
	// compensation became necessary (the paper's Section 5 criterion).
	ExposureCommit *metrics.Histogram
	ExposureAbort  *metrics.Histogram
	// CompensationDuration measures each compensating transaction CTik
	// from start to installed, in ms (retries included).
	CompensationDuration *metrics.Histogram
	// ReadmitRejects counts rule R1 re-admission refusals: continuation
	// rounds and session re-votes turned away because the transaction's
	// marking state is no longer compatible with the site.
	ReadmitRejects *metrics.Counter
}

func newStats() *Stats {
	return &Stats{
		Execs:                &metrics.Counter{},
		RejectsRetry:         &metrics.Counter{},
		RejectsFatal:         &metrics.Counter{},
		ExecFailures:         &metrics.Counter{},
		VotesYes:             &metrics.Counter{},
		VotesNo:              &metrics.Counter{},
		Commits:              &metrics.Counter{},
		Aborts:               &metrics.Counter{},
		Compensations:        &metrics.Counter{},
		Rollbacks:            &metrics.Counter{},
		LocalTxns:            &metrics.Counter{},
		RevalidateFail:       &metrics.Counter{},
		Recoveries:           &metrics.Counter{},
		RecoveredInDoubt:     &metrics.Counter{},
		RecoveredExposed:     &metrics.Counter{},
		ResumedCompensations: &metrics.Counter{},
		PendingGlobal:        &metrics.Gauge{},
		ExposureDuration:     metrics.NewHistogram(),
		ExposureCommit:       metrics.NewHistogram(),
		ExposureAbort:        metrics.NewHistogram(),
		CompensationDuration: metrics.NewHistogram(),
		ReadmitRejects:       &metrics.Counter{},
	}
}

// Publish adopts every instrument into reg under prefixed Prometheus-style
// names, for text exposition via Registry.WriteText.
func (s *Stats) Publish(reg *metrics.Registry, prefix string) {
	reg.Adopt(prefix+"execs_total", s.Execs)
	reg.Adopt(prefix+"rejects_retry_total", s.RejectsRetry)
	reg.Adopt(prefix+"rejects_fatal_total", s.RejectsFatal)
	reg.Adopt(prefix+"exec_failures_total", s.ExecFailures)
	reg.Adopt(prefix+"votes_yes_total", s.VotesYes)
	reg.Adopt(prefix+"votes_no_total", s.VotesNo)
	reg.Adopt(prefix+"commits_total", s.Commits)
	reg.Adopt(prefix+"aborts_total", s.Aborts)
	reg.Adopt(prefix+"compensations_total", s.Compensations)
	reg.Adopt(prefix+"rollbacks_total", s.Rollbacks)
	reg.Adopt(prefix+"local_txns_total", s.LocalTxns)
	reg.Adopt(prefix+"revalidate_fail_total", s.RevalidateFail)
	reg.Adopt(prefix+"recoveries_total", s.Recoveries)
	reg.Adopt(prefix+"recovered_in_doubt_total", s.RecoveredInDoubt)
	reg.Adopt(prefix+"recovered_exposed_total", s.RecoveredExposed)
	reg.Adopt(prefix+"resumed_compensations_total", s.ResumedCompensations)
	reg.Adopt(prefix+"pending_global_txns", s.PendingGlobal)
	reg.Adopt(prefix+"exposure_duration_ms", s.ExposureDuration)
	reg.Adopt(prefix+metrics.Label("exposure_duration_ms", "outcome", "commit"), s.ExposureCommit)
	reg.Adopt(prefix+metrics.Label("exposure_duration_ms", "outcome", "abort"), s.ExposureAbort)
	reg.Adopt(prefix+"compensation_duration_ms", s.CompensationDuration)
	reg.Adopt(prefix+"readmit_rejects_total", s.ReadmitRejects)
	reg.SetHelp(prefix+"exposure_duration_ms", "O2PC exposure window: local commit at YES vote to decision arrival; the unlabeled series aggregates both outcomes, abort windows required compensation")
	reg.SetHelp(prefix+"compensation_duration_ms", "compensating transaction CTik start to installed, retries included")
	reg.SetHelp(prefix+"readmit_rejects_total", "rule R1 re-admission refusals on continuation rounds and re-votes")
}

// pending tracks one global transaction's subtransaction at this site.
//
// mu serializes the vote and decision handlers for this transaction: a
// stale VOTE-REQ (delayed across a coordinator crash) can race the
// recovery's presumed-abort DECISION, and without mutual exclusion the
// vote's local commit can interleave with an abort path that believes the
// subtransaction is still unexposed — silently skipping compensation.
type pending struct {
	req     proto.ExecRequest
	t       *txn.Txn
	updates []wal.Record // captured at local commit for compensation
	state   pendingState
	coord   string // coordinator node name, learned from the vote request
	marks   []string
	// exposedAt stamps the local commit of an O2PC YES vote; the decision
	// handler measures the exposure window from it. Zero for recovered
	// entries, whose original exposure instant did not survive the crash.
	exposedAt time.Time

	mu      sync.Mutex
	decided bool // a decision has been (or is being) applied
}

type pendingState uint8

const (
	stateExecuted         pendingState = iota + 1 // ops done, awaiting VOTE-REQ
	statePrepared                                 // voted YES, locks retained (2PC / real action)
	stateLocallyCommitted                         // voted YES, locks released (O2PC)
)

// Site is one participant DBMS.
type Site struct {
	cfg    Config
	clock  sim.Clock
	mgr    *txn.Manager
	marks  *marking.LoggedMarks // undone marks (P1 / Simple), WAL-backed
	lc     *marking.LoggedMarks // locally-committed marks (P2 / Simple), WAL-backed
	stats  *Stats
	tracer *trace.Tracer
	group  *wal.GroupCommitLog // non-nil when WALGroupCommit is on

	caller rpc.Caller // for Resolve inquiries back to coordinators

	mu         sync.Mutex
	pend       map[string]*pending
	resolved   map[string]bool // txns whose decision this site has processed
	injector   func(txnID string) bool
	localSeq   uint64
	sysSeq     uint64
	crashed    bool
	recovering bool // Recover is rebuilding state from the WAL
	inflight   int  // protocol handlers currently running (drained by Recover)
	resolverOn bool // the site-wide decision-inquiry scanner is running

	// epoch is cancelled by a crash and replaced on restart: it scopes work
	// that must survive the triggering request but not the process — the
	// compensation retry loop, background mark maintenance. A real crash
	// kills those threads outright; cancelling the epoch is the in-process
	// analogue, and it is what lets Recover's handler drain terminate when
	// a handler is parked in a retry loop (its lock holder may be waiting
	// for a decision that cannot arrive while the site is closed).
	epoch       context.Context
	epochCancel context.CancelFunc
}

// NewSite assembles a site over a fresh store and lock manager.
func NewSite(cfg Config) *Site {
	if cfg.ResolvePeriod <= 0 {
		cfg.ResolvePeriod = 5 * time.Millisecond
	}
	if cfg.LockTimeout <= 0 {
		cfg.LockTimeout = 250 * time.Millisecond
	}
	clock := sim.OrReal(cfg.Clock)
	log := cfg.Log
	if log == nil {
		log = wal.NewMemoryLog()
	}
	var group *wal.GroupCommitLog
	if cfg.WALGroupCommit {
		gcfg := wal.GroupCommitConfig{
			Window:   cfg.WALGroupWindow,
			MaxBatch: cfg.WALGroupMaxBatch,
			Clock:    clock,
		}
		if tr, node := cfg.Tracer, cfg.Name; tr != nil {
			// One EvWALSync per physical sync, carrying the batch size —
			// the per-caller Sync returns stay silent (WrapAppends).
			gcfg.OnFlush = func(batch int) {
				tr.Emit(node, trace.EvWALSync, "", "", "batch="+strconv.Itoa(batch))
			}
		}
		group = wal.NewGroupCommitLog(log, gcfg)
		log = trace.WrapAppends(group, cfg.Tracer, cfg.Name)
	} else {
		log = trace.WrapLog(log, cfg.Tracer, cfg.Name)
	}
	store := storage.NewStore()
	locks := lock.NewManagerShards(cfg.LockShards)
	locks.SetClock(clock)
	// Bound every blocking lock wait — execution, marking-set traffic,
	// compensation — by the lock timeout: distributed 2PL deadlocks
	// (including ones through the marking set and compensating
	// transactions) are invisible to per-site detection and are broken by
	// timing out and aborting the global transaction. Arming the deadline
	// inside the manager's wait path keeps the grant fast path free of
	// timers and derived contexts.
	locks.SetWaitTimeout(cfg.LockTimeout)
	// Persistence of compensation: compensating transactions are only
	// chosen as deadlock victims when a cycle consists solely of them.
	locks.SetVictimPriority(func(id string) int {
		if strings.HasPrefix(id, "CT") {
			return -1
		}
		return 0
	})
	mgr := txn.NewManager(cfg.Name, store, locks, log, cfg.Recorder)
	epoch, epochCancel := context.WithCancel(context.Background())
	return &Site{
		epoch:       epoch,
		epochCancel: epochCancel,
		cfg:         cfg,
		clock:       clock,
		mgr:         mgr,
		// Marking sets are WAL-backed: every mutation logs a RecMark or
		// RecUnmark record write-ahead through the same (traced, possibly
		// group-committed) log as the store, so sitemarks.k survives a
		// site crash like the rest of the database (Section 6.2).
		marks:    marking.NewLoggedMarks(marking.NewSiteMarks(), log, wal.MarkSetUndone),
		lc:       marking.NewLoggedMarks(marking.NewSiteMarks(), log, wal.MarkSetLC),
		stats:    newStats(),
		tracer:   cfg.Tracer,
		group:    group,
		pend:     make(map[string]*pending),
		resolved: make(map[string]bool),
	}
}

// GroupCommit returns the site's WAL group-commit decorator, or nil when
// WALGroupCommit is off (metrics publication, tests).
func (s *Site) GroupCommit() *wal.GroupCommitLog { return s.group }

// Name returns the site's node name.
func (s *Site) Name() string { return s.cfg.Name }

// Manager exposes the site kernel (tests, consistency checks).
func (s *Site) Manager() *txn.Manager { return s.mgr }

// Marks exposes the undone-mark set (tests, Figure 2 audits).
func (s *Site) Marks() *marking.SiteMarks { return s.marks.Raw() }

// LCMarks exposes the locally-committed-mark set used by protocol P2 and
// the simple protocol.
func (s *Site) LCMarks() *marking.SiteMarks { return s.lc.Raw() }

// Stats returns the site's counters.
func (s *Site) Stats() *Stats { return s.stats }

// SetCaller wires the transport used for Resolve inquiries after an
// apparent coordinator failure.
func (s *Site) SetCaller(c rpc.Caller) { s.caller = c }

// SetVoteAbortInjector installs a predicate consulted at VOTE-REQ time; a
// true return makes the site exercise its autonomy and vote NO for that
// transaction.
func (s *Site) SetVoteAbortInjector(f func(txnID string) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.injector = f
}

// SetCrashed marks the site crashed for handler purposes: all inbound
// messages error until recovery. (The network's SetDown models the
// unreachability; this models loss of volatile state on a real crash via
// Recover.)
func (s *Site) SetCrashed(crashed bool) {
	s.mu.Lock()
	s.crashed = crashed
	cancel := s.epochCancel
	if !crashed && s.epoch.Err() != nil {
		// Un-crashing without Recover (tests): open a fresh epoch so
		// epoch-scoped work is not stillborn.
		s.epoch, s.epochCancel = context.WithCancel(context.Background())
	}
	s.mu.Unlock()
	if crashed {
		// Kill the up period's background work: a crash takes the
		// process's threads with it, and handlers blocked in retry loops
		// must unwind so Recover's drain can complete.
		cancel()
		s.tracer.Emit(s.cfg.Name, trace.EvCrash, "", "", "")
	}
}

// upCtx returns the context scoping work to the site's current up period.
// It is cancelled by SetCrashed(true) and replaced when the site reopens.
func (s *Site) upCtx() context.Context {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// ErrCrashed is returned by handlers while the site is crashed.
var ErrCrashed = errors.New("site: crashed")

// ErrRecovering is reported by Health while Recover is rebuilding the
// site's state from the WAL.
var ErrRecovering = errors.New("site: recovering")

// Health reports whether the site can serve protocol messages: nil when
// up, ErrCrashed while crashed, ErrRecovering while Recover is replaying
// the WAL. The ops server's /healthz maps nil to 200 and an error to 503,
// so a scraper watches the crash/recover epoch directly.
func (s *Site) Health() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.recovering:
		// Recovery marks the site crashed while it rebuilds; report the
		// more specific condition.
		return ErrRecovering
	case s.crashed:
		return ErrCrashed
	default:
		return nil
	}
}

// Ready extends Health with a WAL probe: a site whose log cannot sync
// must not take traffic — every vote and decision is write-ahead logged,
// so an unwritable WAL turns every request into an error. The ops
// server's /readyz maps nil to 200.
func (s *Site) Ready() error {
	if err := s.Health(); err != nil {
		return err
	}
	if err := s.mgr.Log().Sync(); err != nil {
		return fmt.Errorf("site %s: wal not writable: %w", s.cfg.Name, err)
	}
	return nil
}

// Handle implements rpc.Handler: the site's protocol message dispatcher.
// Handlers register as in-flight so Recover can wait for them to drain —
// the in-process analogue of "the crashed process's threads are gone by the
// time the site restarts".
func (s *Site) Handle(ctx context.Context, from string, req any) (any, error) {
	s.mu.Lock()
	if s.crashed {
		s.mu.Unlock()
		return nil, ErrCrashed
	}
	s.inflight++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.inflight--
		s.mu.Unlock()
	}()
	switch m := req.(type) {
	case proto.ExecRequest:
		return s.handleExec(ctx, m), nil
	case proto.VoteRequest:
		return s.handleVote(ctx, from, m), nil
	case proto.Decision:
		return s.handleDecision(ctx, m)
	default:
		return nil, fmt.Errorf("site %s: unknown message %T", s.cfg.Name, req)
	}
}

// nextSysID returns an ID for short system transactions (mark maintenance).
func (s *Site) nextSysID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sysSeq++
	return fmt.Sprintf("sys%d@%s", s.sysSeq, s.cfg.Name)
}

// handleExec executes a subtransaction shipped by a coordinator. Every
// reply — success, failure or rejection — carries the site's pending UDUM1
// witness facts, so unmarking is never delayed behind a vote round.
func (s *Site) handleExec(ctx context.Context, req proto.ExecRequest) proto.ExecReply {
	s.stats.Execs.Inc()
	detail := ""
	if req.Round > 0 {
		detail = "round=" + strconv.Itoa(req.Round)
	}
	s.tracer.Emit(s.cfg.Name, trace.EvExecRecv, req.TxnID, "", detail)
	reply := s.execLocked(ctx, req)
	reply.Witnesses = s.drainWitnesses()
	s.tracer.Emit(s.cfg.Name, trace.EvExecDone, req.TxnID, "", execDetail(reply))
	return reply
}

// execDetail spells an ExecReply for trace details.
func execDetail(r proto.ExecReply) string {
	switch {
	case r.OK:
		return "ok"
	case r.Rejected && r.Fatal:
		return "rejected-fatal"
	case r.Rejected:
		return "rejected-retry"
	default:
		return "failed"
	}
}

func (s *Site) execLocked(ctx context.Context, req proto.ExecRequest) proto.ExecReply {
	// Fence stale requests: a subtransaction whose global transaction has
	// already been decided here (e.g. an ExecRequest delayed in the
	// network across a coordinator crash, arriving after recovery's
	// presumed-abort decision) must not execute — it would take locks and
	// write on behalf of a dead transaction.
	s.mu.Lock()
	stale := s.resolved[req.TxnID]
	open := s.pend[req.TxnID]
	s.mu.Unlock()
	if stale {
		return proto.ExecReply{Err: "stale subtransaction: transaction already decided at this site"}
	}
	if req.Round > 0 && open != nil {
		// A session round continuing a subtransaction already open here.
		return s.execContinue(ctx, open, req)
	}

	t, err := s.mgr.Begin(req.TxnID, history.KindGlobal, "")
	if err != nil {
		return proto.ExecReply{Err: err.Error()}
	}

	// Lock waits below — including the marking-set acquisition — are
	// bounded by the manager's wait timeout (wired from LockTimeout at
	// construction), so no per-execution deadline context is needed.

	// R1: marking compatibility check, coupled to 2PL via MarkKey.
	var merged []string
	holdMarkLock := false
	if req.Marking != proto.MarkNone {
		verdict, m, err := s.checkMarks(ctx, t, req)
		if err != nil {
			//o2pcvet:ignore errflow -- the reply carries the primary error; this abort logged nothing yet (no writes executed)
			_ = t.Abort("")
			return proto.ExecReply{Err: err.Error()}
		}
		switch verdict {
		case marking.Admit:
			// Compatible: execution proceeds below.
		case marking.Retry:
			s.stats.RejectsRetry.Inc()
			//o2pcvet:ignore errflow -- the reply carries the rejection; the write-free abort only releases locks
			_ = t.Abort("")
			return proto.ExecReply{Rejected: true, Reason: "marking: retryable incompatibility"}
		case marking.Abort:
			s.stats.RejectsFatal.Inc()
			//o2pcvet:ignore errflow -- the reply carries the rejection; the write-free abort only releases locks
			_ = t.Abort("")
			return proto.ExecReply{Rejected: true, Fatal: true, Reason: "marking: incompatibility requires abort"}
		}
		merged = m
		// Witness for UDUM1: this global transaction executed here while
		// the site was undone w.r.t. every adopted undone mark. (P2 carries
		// prefixed evidence; extract its undone half.)
		if req.Marking == proto.MarkP2 {
			s.marks.RecordWitness(marking.P2UndoneSeen(merged))
		} else {
			s.marks.RecordWitness(merged)
		}
		holdMarkLock = s.cfg.CheckStrategy == CheckHold
		if !holdMarkLock {
			// The paper's compromise: unlock the marking set now,
			// revalidate as the subtransaction's last action (at vote).
			s.mgr.Locks().Release(t.ID(), MarkKey)
		}
	}

	reads, execErr := s.runOps(ctx, t, req.Ops)
	if execErr == nil && !holdMarkLock && req.Marking != proto.MarkNone {
		// The validation step of the early-unlock compromise, "as the last
		// action of the subtransaction" (Section 6.2) — while this
		// subtransaction still holds its locks. Any compensating
		// transaction that preceded our conflicting operations at this
		// site published its mark before releasing its locks, so it is
		// visible here; validating later (e.g. at vote time) would race
		// with UDUM1 unmarking and could admit a reader of inconsistent
		// compensation states.
		if !s.validateMarks(ctx, t.ID(), req.Marking, merged) {
			s.stats.RevalidateFail.Inc()
			// Nothing was exposed (all locks still held everywhere, the
			// vote phase has not begun): unexposed roll-back, and the
			// incompatibility is final for this transaction.
			s.rollbackUnexposed(t)
			return proto.ExecReply{Rejected: true, Fatal: true, Reason: "marking validation failed after execution"}
		}
	}
	if execErr != nil {
		// Unilateral abort before voting. The vote phase has not started,
		// so every site of this transaction still holds its locks —
		// nothing was exposed anywhere and the roll-back is atomic with
		// the transaction under 2PL: the equivalent history is the one
		// where this subtransaction never ran (committed projection), so
		// its operations are voided rather than modeled as a compensating
		// subtransaction, and no undone mark is needed.
		s.stats.ExecFailures.Inc()
		s.rollbackUnexposed(t)
		return proto.ExecReply{Err: execErr.Error()}
	}

	s.mu.Lock()
	s.pend[req.TxnID] = &pending{req: req, t: t, state: stateExecuted, marks: merged}
	s.mu.Unlock()
	s.stats.PendingGlobal.Inc()
	return proto.ExecReply{OK: true, Reads: reads, Marks: merged}
}

// execContinue applies one more session round to a subtransaction already
// open at this site (multi-shot sessions, req.Round >= 1). The open
// transaction keeps its data locks across rounds, so earlier rounds' work
// stays protected through the think-time gaps; the round re-runs the R1
// admission check against the site's *current* marking state — a session is
// re-admitted on every round, which is exactly what stresses R1 against
// data marked while the session was thinking.
//
// Failure handling deliberately differs from the one-shot path: the open
// transaction is NOT rolled back here. A retryable rejection leaves the
// session intact so the coordinator's retry re-runs the same round against
// the same open transaction (a local roll-back would void the earlier
// rounds and the retry would silently restart the session); a fatal
// rejection or execution failure is reported and the coordinator's abort
// DECISION rolls the whole session back (applyAbort's stateExecuted path).
func (s *Site) execContinue(ctx context.Context, p *pending, req proto.ExecRequest) proto.ExecReply {
	s.lockPending(p)
	defer p.mu.Unlock()
	if p.decided {
		return proto.ExecReply{Err: "stale session round: transaction already decided at this site"}
	}
	if p.t == nil {
		return proto.ExecReply{Err: "session round for a subtransaction recovered from WAL; awaiting decision"}
	}
	if p.state != stateExecuted {
		return proto.ExecReply{Err: fmt.Sprintf("session round %d after the vote round", req.Round)}
	}

	var merged []string
	if req.Marking != proto.MarkNone {
		verdict, m, err := s.checkMarks(ctx, p.t, req)
		if err != nil {
			return proto.ExecReply{Err: err.Error()}
		}
		// Under early-revalidate the check's shared MarkKey lock is fresh
		// and must not outlive a rejected round (the session's data locks
		// stay; the marking-set lock belongs to the admitted window only).
		hold := s.cfg.CheckStrategy == CheckHold
		switch verdict {
		case marking.Admit:
			// Compatible: the round proceeds below.
		case marking.Retry:
			s.stats.RejectsRetry.Inc()
			s.stats.ReadmitRejects.Inc()
			if !hold {
				s.mgr.Locks().Release(p.t.ID(), MarkKey)
			}
			return proto.ExecReply{Rejected: true, Reason: "marking: retryable incompatibility"}
		case marking.Abort:
			s.stats.RejectsFatal.Inc()
			s.stats.ReadmitRejects.Inc()
			if !hold {
				s.mgr.Locks().Release(p.t.ID(), MarkKey)
			}
			return proto.ExecReply{Rejected: true, Fatal: true, Reason: "marking: incompatibility requires abort"}
		}
		merged = m
		if req.Marking == proto.MarkP2 {
			s.marks.RecordWitness(marking.P2UndoneSeen(merged))
		} else {
			s.marks.RecordWitness(merged)
		}
		if !hold {
			s.mgr.Locks().Release(p.t.ID(), MarkKey)
		}
	}

	reads, execErr := s.runOps(ctx, p.t, req.Ops)
	if execErr == nil && req.Marking != proto.MarkNone && s.cfg.CheckStrategy != CheckHold {
		// Per-round validation, as the round's last action — same compromise
		// as the one-shot path, scoped to the round.
		if !s.validateMarks(ctx, p.t.ID(), req.Marking, merged) {
			s.stats.RevalidateFail.Inc()
			s.stats.ReadmitRejects.Inc()
			return proto.ExecReply{Rejected: true, Fatal: true, Reason: "marking validation failed after session round"}
		}
	}
	if execErr != nil {
		s.stats.ExecFailures.Inc()
		return proto.ExecReply{Err: execErr.Error()}
	}

	// The accumulated request is what the vote's exposure record logs and
	// what recovery-time compensation inverts: it must cover every round's
	// operations, not just the last one's.
	p.req.Ops = append(p.req.Ops, req.Ops...)
	p.req.Round = req.Round
	p.req.TransMarks = req.TransMarks
	p.marks = merged
	return proto.ExecReply{OK: true, Reads: reads, Marks: merged}
}

// checkMarks performs the R1 check under a shared lock on MarkKey.
func (s *Site) checkMarks(ctx context.Context, t *txn.Txn, req proto.ExecRequest) (marking.Verdict, []string, error) {
	if err := s.mgr.Locks().AcquireBounded(ctx, t.ID(), MarkKey, lock.Shared); err != nil {
		return marking.Retry, nil, err
	}
	var verdict marking.Verdict
	var merged []string
	switch req.Marking {
	case proto.MarkP2:
		verdict, merged = marking.CompatibleP2(req.TransMarks, req.Visited, s.lc.Snapshot(), s.marks.Snapshot())
	case proto.MarkSimple:
		verdict, merged = marking.CompatibleSimple(req.TransMarks, req.Visited, s.marks.Snapshot(), s.lc.Snapshot())
	default:
		verdict, merged = marking.Compatible(req.TransMarks, req.Visited, s.marks.Snapshot())
	}
	return verdict, merged, nil
}

// validateMarks re-runs the compatibility check against the site's current
// marks under a fresh shared lock on the marking set; used as the
// subtransaction's last action (the validation step of the early-release
// compromise). The caller's transaction still holds its data locks.
func (s *Site) validateMarks(ctx context.Context, txnID string, mark proto.MarkProtocol, adopted []string) bool {
	if err := s.mgr.Locks().AcquireBounded(ctx, txnID, MarkKey, lock.Shared); err != nil {
		return false
	}
	defer s.mgr.Locks().Release(txnID, MarkKey)
	var verdict marking.Verdict
	switch mark {
	case proto.MarkP2:
		verdict, _ = marking.CompatibleP2(adopted, true, s.lc.Snapshot(), s.marks.Snapshot())
	case proto.MarkSimple:
		verdict, _ = marking.CompatibleSimple(adopted, true, s.marks.Snapshot(), s.lc.Snapshot())
	default:
		verdict, _ = marking.Compatible(adopted, true, s.marks.Snapshot())
	}
	return verdict == marking.Admit
}

// runOps executes the operation list, returning OpRead results.
func (s *Site) runOps(ctx context.Context, t *txn.Txn, ops []proto.Operation) (map[string][]byte, error) {
	var reads map[string][]byte
	for _, op := range ops {
		key := storage.Key(op.Key)
		switch op.Kind {
		case proto.OpRead:
			v, err := t.Read(ctx, key)
			if err != nil && !storage.IsNotFound(err) {
				return nil, err
			}
			if err == nil {
				if reads == nil {
					reads = make(map[string][]byte)
				}
				reads[op.Key] = append([]byte(nil), v...)
			}
		case proto.OpWrite:
			if err := t.Write(ctx, key, op.Value); err != nil {
				return nil, err
			}
		case proto.OpDelete:
			if err := t.Delete(ctx, key); err != nil {
				return nil, err
			}
		case proto.OpAdd:
			cur, err := t.ReadInt64ForUpdate(ctx, key)
			if err != nil {
				return nil, err
			}
			next := cur + op.Delta
			if op.HasMin && next < op.Min {
				return nil, fmt.Errorf("site %s: constraint violated on %s: %d + %d < %d",
					s.cfg.Name, op.Key, cur, op.Delta, op.Min)
			}
			if err := t.WriteInt64(ctx, key, next); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("site %s: unknown operation %v", s.cfg.Name, op.Kind)
		}
	}
	return reads, nil
}

// rollbackAsCompensation rolls back an active subtransaction, attributing
// the restored versions to CTik, and (under P1 / the simple protocol)
// marks the site undone.
//
// Ordering matters: rule R2 makes the mark the LAST operation of CTik —
// it must be visible no later than the roll-back's lock release, or a
// reader could slip in, observe the restored (compensated) versions at a
// seemingly-unmarked site, and complete a regular cycle elsewhere. The
// mark is therefore set synchronously BEFORE Abort releases the locks.
// Writing it without the MarkKey lock is safe: an early mark is strictly
// conservative (it can only cause extra rejections, never admit a
// dangerous reader), and in-flight R1 checks revalidate at vote time.
func (s *Site) rollbackAsCompensation(ctx context.Context, t *txn.Txn, mark proto.MarkProtocol) {
	ctID := compensate.CTID(t.ID())
	s.tracer.Emit(s.cfg.Name, trace.EvCompBegin, t.ID(), "", "rollback as "+ctID)
	hadWrites := len(t.WriteSet()) > 0
	if mark != proto.MarkNone && hadWrites {
		// A log failure leaves the mark applied in memory (conservative);
		// the Abort append below would surface the same broken log.
		//o2pcvet:ignore errflow -- see above: conservative in-memory mark; the same broken log fails the abort append
		_ = s.marks.MarkUndone(t.ID())
	}
	//o2pcvet:ignore errflow -- decision-application is fire-and-forget: a failed undo leaves the txn pending and the resolver retries
	_ = t.Abort(ctID)
	s.stats.Rollbacks.Inc()
	s.tracer.Emit(s.cfg.Name, trace.EvCompEnd, t.ID(), "", "rollback")
	if rec := s.cfg.Recorder; rec != nil {
		rec.SetFate(ctID, history.FateCommitted)
	}
}

// rollbackUnexposed rolls back a subtransaction that was never exposed:
// the vote phase has not begun, every site still holds this transaction's
// locks, and nothing could have observed its effects. The roll-back keeps
// the original writers of the restored versions and voids the recorded
// operations — the committed-projection history is as if the
// subtransaction never ran. This also covers stale subtransactions (an
// ExecRequest delayed across a coordinator crash, executed after the
// presumed-abort decision): their atomically-undone operations must not
// introduce serialization-graph edges for a transaction the rest of the
// system already aborted.
func (s *Site) rollbackUnexposed(t *txn.Txn) {
	//o2pcvet:ignore errflow -- nothing was exposed and no one awaits this txn; a failed undo append surfaces at the next Sync
	_ = t.Abort("")
	s.stats.Rollbacks.Inc()
	if rec := s.cfg.Recorder; rec != nil {
		rec.VoidSiteOps(s.cfg.Name, t.ID())
	}
}

// writeMark adds (or removes) the undone mark for forward under an
// exclusive lock on MarkKey, as a short system transaction. The wait is
// bounded by the lock timeout — a protocol handler must never block
// indefinitely on the marking set (under CheckHold the S holders it waits
// for may themselves be waiting for this very handler's decision) — and a
// failed attempt retries in the background: mark maintenance is idempotent
// and safe at any later time.
func (s *Site) writeMark(ctx context.Context, forward string, add bool, set *marking.LoggedMarks) {
	if s.tryWriteMark(ctx, forward, add, set) {
		return
	}
	// Retries are scoped to the current up period: a crash kills them (a
	// real crash takes the threads), and Recover's WAL replay restores the
	// authoritative mark state they would otherwise race.
	ep := s.upCtx()
	s.clock.Go(func() {
		// The short sleep parks the fresh goroutine on its own timer
		// before it touches the lock manager, so the spawning handler
		// finishes its (virtually instantaneous) work alone rather than
		// racing the retry for queue positions.
		for ep.Err() == nil {
			if s.clock.Sleep(ep, time.Microsecond) != nil {
				return
			}
			if s.tryWriteMark(ep, forward, add, set) {
				return
			}
		}
	})
}

func (s *Site) tryWriteMark(ctx context.Context, forward string, add bool, set *marking.LoggedMarks) bool {
	sys := s.nextSysID()
	if err := s.mgr.Locks().AcquireBounded(ctx, sys, MarkKey, lock.Exclusive); err != nil {
		return false
	}
	var err error
	if add {
		err = set.MarkUndone(forward)
	} else {
		err = set.Unmark(forward)
	}
	s.mgr.Locks().ReleaseAll(sys)
	// A failed log append reports false so the background loop retries the
	// (idempotent) mark maintenance until the record lands.
	return err == nil
}

// lockPending takes p.mu on behalf of a protocol handler. The holder may be
// sleeping in virtual time (compensation runs its retry backoff with p.mu
// held), so a contended acquisition polls through the clock rather than
// blocking — a raw mutex wait would stall virtual time forever, and a
// plain Unlock carries no wake reservation the scheduler could account.
func (s *Site) lockPending(p *pending) {
	for !p.mu.TryLock() {
		//o2pcvet:ignore errflow -- Background never expires, so this virtual-time poll interval cannot fail
		_ = s.clock.Sleep(context.Background(), 50*time.Microsecond)
	}
}
