package site

import (
	"encoding/json"
	"fmt"

	"o2pc/internal/proto"
)

// exposure is the Aux payload of a RecExposed record: everything a
// restarted site needs to resume an exposed-but-undecided subtransaction
// from its WAL alone — the coordinator to direct the decision inquiry at,
// and the original request, whose operation list drives the semantic
// compensation plan on an ABORT decision (re-deriving a plan from
// before-images would erase interleaved committed updates; the paper's
// semantic atomicity demands the inverse operations instead).
//
// The payload is JSON so the wal package stays protocol-agnostic: it frames
// Aux as an opaque string and only this package interprets it.
type exposure struct {
	Coord string            `json:"coord"`
	Req   proto.ExecRequest `json:"req"`
}

// encodeExposure serializes e for the RecExposed Aux field.
func encodeExposure(e exposure) string {
	b, err := json.Marshal(e)
	if err != nil {
		// ExecRequest is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("site: encoding exposure for %s: %v", e.Req.TxnID, err))
	}
	return string(b)
}

// decodeExposure parses a RecExposed Aux payload.
func decodeExposure(aux string) (exposure, error) {
	var e exposure
	if err := json.Unmarshal([]byte(aux), &e); err != nil {
		return exposure{}, fmt.Errorf("site: decoding exposure record: %w", err)
	}
	return e, nil
}
