package site

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"o2pc/internal/proto"
)

// exposure is the Aux payload of a RecExposed record: everything a
// restarted site needs to resume an exposed-but-undecided subtransaction
// from its WAL alone — the coordinator to direct the decision inquiry at,
// and the original request, whose operation list drives the semantic
// compensation plan on an ABORT decision (re-deriving a plan from
// before-images would erase interleaved committed updates; the paper's
// semantic atomicity demands the inverse operations instead).
//
// The payload is opaque to the wal package (it frames Aux as a string and
// only this package interprets it). It used to be JSON, which made the
// exposure record the single hottest allocation site in the contended
// benchmark; it is now the protocol's binary codec behind a one-byte
// magic. Decode still accepts the JSON form so WALs written by older
// builds replay.
type exposure struct {
	Coord string            `json:"coord"`
	Req   proto.ExecRequest `json:"req"`
}

// exposureMagic tags the binary Aux encoding. It deliberately cannot
// collide with the legacy form: JSON objects start with '{' (0x7B).
const exposureMagic = 0xEB

// encodeExposure serializes e for the RecExposed Aux field: magic byte,
// uvarint-length-prefixed coordinator name, then the request through the
// proto wire codec.
func encodeExposure(e exposure) string {
	buf := make([]byte, 0, 64+len(e.Coord)+len(e.Req.TxnID)+16*len(e.Req.Ops))
	buf = append(buf, exposureMagic)
	buf = binary.AppendUvarint(buf, uint64(len(e.Coord)))
	buf = append(buf, e.Coord...)
	buf, err := proto.AppendMessage(buf, &e.Req)
	if err != nil {
		// ExecRequest is in the wire vocabulary; Append cannot fail on it.
		panic(fmt.Sprintf("site: encoding exposure for %s: %v", e.Req.TxnID, err))
	}
	return string(buf)
}

// decodeExposure parses a RecExposed Aux payload, sniffing the leading
// byte to keep replaying JSON records from pre-binary WALs.
func decodeExposure(aux string) (exposure, error) {
	if len(aux) == 0 {
		return exposure{}, fmt.Errorf("site: decoding exposure record: empty payload")
	}
	if aux[0] != exposureMagic {
		var e exposure
		if err := json.Unmarshal([]byte(aux), &e); err != nil {
			return exposure{}, fmt.Errorf("site: decoding exposure record: %w", err)
		}
		return e, nil
	}
	b := []byte(aux[1:])
	n, used := binary.Uvarint(b)
	if used <= 0 || uint64(len(b)-used) < n {
		return exposure{}, fmt.Errorf("site: decoding exposure record: truncated coordinator name")
	}
	coord := string(b[used : used+int(n)])
	msg, err := proto.DecodeMessage(b[used+int(n):])
	if err != nil {
		return exposure{}, fmt.Errorf("site: decoding exposure record: %w", err)
	}
	req, ok := msg.(proto.ExecRequest)
	if !ok {
		return exposure{}, fmt.Errorf("site: decoding exposure record: unexpected %T payload", msg)
	}
	return exposure{Coord: coord, Req: req}, nil
}
