package site

import (
	"testing"
	"time"

	"o2pc/internal/storage"
	"o2pc/internal/txn"
)

// TestSeedSurvivesCrashRecovery is the regression test for the SeedInt64
// WAL bypass: Seed used to Put straight into the store without logging, so
// the bootstrap data existed only in volatile state and vanished on the
// first Recover. Seeds are now logged as committed mini-transactions under
// SeedTxnID and must replay.
func TestSeedSurvivesCrashRecovery(t *testing.T) {
	s := newTestSite(t, Config{ResolvePeriod: time.Hour})
	s.SeedInt64("balance", 100)
	s.Seed("greeting", storage.Value("hello"))
	// Unrelated committed work, so recovery replays a mixed log rather
	// than a seeds-only one.
	if err := s.RunLocal(bg(), func(tx *txn.Txn) error {
		return tx.WriteInt64(bg(), "other", 7)
	}); err != nil {
		t.Fatalf("local txn: %v", err)
	}

	s.SetCrashed(true)
	if _, err := s.Recover(bg()); err != nil {
		t.Fatalf("recover: %v", err)
	}

	if got := s.ReadInt64("balance"); got != 100 {
		t.Fatalf("balance = %d after recovery, want 100 (seed lost: WAL bypass)", got)
	}
	if v, err := s.ReadKey("greeting"); err != nil || string(v) != "hello" {
		t.Fatalf("greeting = %q, %v after recovery, want \"hello\"", v, err)
	}
	if got := s.ReadInt64("other"); got != 7 {
		t.Fatalf("other = %d after recovery, want 7", got)
	}
}

// TestSeedThenOverwriteRecoversLatest pins the replay order: a seed and a
// later committed update to the same key must recover to the update's
// value, with the seed's writer attribution preserved underneath.
func TestSeedThenOverwriteRecoversLatest(t *testing.T) {
	s := newTestSite(t, Config{ResolvePeriod: time.Hour})
	s.SeedInt64("n", 1)
	if err := s.RunLocal(bg(), func(tx *txn.Txn) error {
		v, err := tx.ReadInt64(bg(), "n")
		if err != nil {
			return err
		}
		return tx.WriteInt64(bg(), "n", v+4)
	}); err != nil {
		t.Fatalf("local txn: %v", err)
	}

	s.SetCrashed(true)
	if _, err := s.Recover(bg()); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if got := s.ReadInt64("n"); got != 5 {
		t.Fatalf("n = %d after recovery, want 5", got)
	}
}
