package site

import (
	"testing"

	"o2pc/internal/proto"
)

func simpleReq(txnID string, ops ...proto.Operation) proto.ExecRequest {
	return proto.ExecRequest{
		TxnID: txnID, Ops: ops,
		Comp: proto.CompSemantic, Protocol: proto.O2PC, Marking: proto.MarkSimple,
	}
}

func TestSimpleRejectsLocallyCommittedSite(t *testing.T) {
	s := newTestSite(t, Config{})
	s.SeedInt64("n", 0)

	// T1 executes and votes YES: the site is now locally committed w.r.t.
	// T1 (lc mark set, Figure 2 dual).
	exec(t, s, simpleReq("T1", proto.Add("n", 1)))
	v := vote(t, s, "T1")
	if !v.Commit {
		t.Fatalf("vote = %+v", v)
	}
	if !s.LCMarks().Contains("T1") {
		t.Fatalf("lc mark missing after YES vote")
	}

	// The simple protocol refuses any transaction while the site is
	// locally committed w.r.t. anything; retryable (the mark clears at
	// T1's decision).
	reply := exec(t, s, simpleReq("T2", proto.Add("n", 1)))
	if !reply.Rejected || reply.Fatal {
		t.Fatalf("reply = %+v, want retryable rejection", reply)
	}

	// The decision clears the lc mark; T2 is then admitted.
	decide(t, s, "T1", true)
	if s.LCMarks().Contains("T1") {
		t.Fatalf("lc mark survived the decision")
	}
	reply = exec(t, s, simpleReq("T2", proto.Add("n", 1)))
	if !reply.OK {
		t.Fatalf("post-decision exec = %+v", reply)
	}
	vote(t, s, "T2")
	decide(t, s, "T2", true)
}

func TestSimpleUndoneMarksMustMatchExactly(t *testing.T) {
	s := newTestSite(t, Config{})
	s.SeedInt64("n", 0)
	s.Marks().MarkUndone("Tdead")

	// First visit adopts the undone marks, like P1.
	reply := exec(t, s, simpleReq("T2", proto.Add("n", 1)))
	if !reply.OK || len(reply.Marks) != 1 || reply.Marks[0] != "Tdead" {
		t.Fatalf("reply = %+v", reply)
	}
	vote(t, s, "T2")
	decide(t, s, "T2", true)

	// A visited transaction carrying marks this site lacks is retryable;
	// one missing a mark this site has is fatal — the P1 classification.
	req := simpleReq("T3", proto.Add("n", 1))
	req.TransMarks = []string{"Tghost"}
	req.Visited = true
	if reply := exec(t, s, req); !reply.Rejected || reply.Fatal {
		t.Fatalf("carried-missing: %+v", reply)
	}
	req = simpleReq("T4", proto.Add("n", 1))
	req.Visited = true
	if reply := exec(t, s, req); !reply.Rejected || !reply.Fatal {
		t.Fatalf("site-extra: %+v", reply)
	}
}

func TestSimpleAbortSetsUndoneAndClearsLC(t *testing.T) {
	s := newTestSite(t, Config{})
	s.SeedInt64("n", 10)
	exec(t, s, simpleReq("T1", proto.Add("n", 5)))
	vote(t, s, "T1")
	decide(t, s, "T1", false)
	if got := s.ReadInt64("n"); got != 10 {
		t.Fatalf("n = %d after compensation", got)
	}
	if !s.Marks().Contains("T1") {
		t.Fatalf("undone mark missing after abort (rule R2)")
	}
	if s.LCMarks().Contains("T1") {
		t.Fatalf("lc mark survived the abort decision")
	}
}
