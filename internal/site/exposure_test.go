package site

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"o2pc/internal/proto"
)

func sampleExposure() exposure {
	return exposure{
		Coord: "c1",
		Req: proto.ExecRequest{
			TxnID:      "T42",
			Ops:        []proto.Operation{proto.Write("x", []byte("7")), proto.Add("acct", -3), proto.Read("y")},
			Comp:       proto.CompSemantic,
			Protocol:   proto.O2PC,
			Marking:    proto.MarkP2,
			TransMarks: []string{"s1", "s3"},
			Visited:    true,
		},
	}
}

// TestExposureBinaryRoundTrip pins the binary Aux encoding: encode →
// decode is the identity, and the payload is not JSON anymore.
func TestExposureBinaryRoundTrip(t *testing.T) {
	e := sampleExposure()
	aux := encodeExposure(e)
	if aux[0] != exposureMagic {
		t.Fatalf("binary exposure starts with %#x, want magic %#x", aux[0], exposureMagic)
	}
	got, err := decodeExposure(aux)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, e)
	}
}

// TestExposureDecodesLegacyJSON replays an Aux payload written by the JSON
// encoder this record used before the binary codec: WALs from older builds
// must keep recovering.
func TestExposureDecodesLegacyJSON(t *testing.T) {
	e := sampleExposure()
	legacy, err := json.Marshal(e)
	if err != nil {
		t.Fatalf("marshal legacy form: %v", err)
	}
	got, err := decodeExposure(string(legacy))
	if err != nil {
		t.Fatalf("decode legacy JSON: %v", err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("legacy decode mismatch:\n got %+v\nwant %+v", got, e)
	}
}

// TestExposureDecodeErrors: corrupt payloads must fail loudly, not yield
// a zero exposure that would silently skip compensation.
func TestExposureDecodeErrors(t *testing.T) {
	aux := encodeExposure(sampleExposure())
	for name, bad := range map[string]string{
		"empty":          "",
		"truncated":      aux[:len(aux)/2],
		"not json":       "coord=c1",
		"bad coord len":  string([]byte{exposureMagic, 0xFF}),
		"trailing bytes": aux + "x",
	} {
		if _, err := decodeExposure(bad); err == nil {
			t.Errorf("%s: decode accepted corrupt payload %q", name, bad)
		} else if !strings.Contains(err.Error(), "exposure record") {
			t.Errorf("%s: error %v lacks exposure context", name, err)
		}
	}
}
