package site

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"time"

	"o2pc/internal/history"
	"o2pc/internal/lock"
	"o2pc/internal/proto"
	"o2pc/internal/storage"
	"o2pc/internal/trace"
	"o2pc/internal/txn"
	"o2pc/internal/wal"
)

// RunLocal executes fn as an independent local transaction. Local
// transactions are entirely outside the global protocols — they see no
// marking checks and no commit protocol, preserving the site's autonomy —
// and run under the site's ordinary strict 2PL with deadlock retry.
func (s *Site) RunLocal(ctx context.Context, fn func(t *txn.Txn) error) error {
	s.mu.Lock()
	s.localSeq++
	id := fmt.Sprintf("L%d@%s", s.localSeq, s.cfg.Name)
	s.mu.Unlock()
	s.stats.LocalTxns.Inc()
	return s.mgr.RunLocal(ctx, id, 5, fn)
}

// ReadKey returns a key's current value outside any transaction (test and
// example inspection only; real readers use transactions).
func (s *Site) ReadKey(key storage.Key) (storage.Value, error) {
	rec, err := s.mgr.Store().Get(key)
	if err != nil {
		return nil, err
	}
	return rec.Value, nil
}

// ReadInt64 returns a key's current int64 value (0 when absent), outside
// any transaction.
func (s *Site) ReadInt64(key storage.Key) int64 {
	v, err := s.ReadKey(key)
	if err != nil {
		return 0
	}
	n, err := storage.DecodeInt64(v)
	if err != nil {
		return 0
	}
	return n
}

// SeedTxnID is the transaction ID under which bootstrap seed writes are
// logged. Each Seed call is its own committed mini-transaction in the WAL,
// so a recovered site replays its seed data instead of forgetting it.
const SeedTxnID = "init"

// Seed installs initial data without locking (bootstrap only). The write
// is logged ahead of the store mutation — an unlogged seed would vanish on
// the first crash recovery, silently breaking every invariant that assumed
// the seeded balance existed (the SeedInt64 WAL bypass).
func (s *Site) Seed(key storage.Key, value storage.Value) {
	store := s.mgr.Store()
	prev, existed := store.GetAny(key)
	after := wal.Image{
		Key:     key,
		Value:   append(storage.Value(nil), value...),
		Existed: true,
		Writer:  SeedTxnID,
	}
	log := s.mgr.Log()
	if _, err := log.Append(wal.Record{
		Type:   wal.RecUpdate,
		TxnID:  SeedTxnID,
		Before: wal.ImageOf(prev, existed),
		After:  after,
	}); err != nil {
		// Bootstrap precedes all traffic; an unloggable seed would silently
		// vanish on the first crash recovery, so it is a setup bug.
		panic(fmt.Sprintf("site %s: seeding %s: %v", s.cfg.Name, key, err))
	}
	if _, err := log.Append(wal.Record{Type: wal.RecCommit, TxnID: SeedTxnID}); err != nil {
		panic(fmt.Sprintf("site %s: seeding %s: %v", s.cfg.Name, key, err))
	}
	store.Put(key, value, SeedTxnID)
}

// SeedInt64 installs an initial int64 value.
func (s *Site) SeedInt64(key storage.Key, v int64) {
	s.Seed(key, storage.EncodeInt64(v))
}

// Recover rebuilds the site's volatile state from its WAL after a crash:
// the store is reconstructed, loser transactions are rolled back, the
// marking sets are replayed from their RecMark/RecUnmark records, in-doubt
// (prepared, undecided) transactions re-acquire exclusive locks on their
// written keys and resume the decision inquiry — the participant stays
// blocked exactly as the 2PC protocol requires — and exposed-but-undecided
// subtransactions (RecExposed without a decision) re-enter the pending
// table lock-free and resume their inquiry too, which is the window O2PC
// opens: the restarted site can still honour an eventual ABORT by
// compensation, driven entirely by its own log. A compensation the crash
// interrupted (RecCompBegin without RecCompEnd, or an ABORT decision the
// crash preempted) is re-run before the site reopens.
func (s *Site) Recover(ctx context.Context) (wal.RecoverResult, error) {
	s.tracer.Emit(s.cfg.Name, trace.EvRecover, "", "", "")

	// Health reports ErrRecovering until the site reopens for traffic —
	// the ops server's /healthz shows 503 for exactly this window. The
	// flag is cleared where crashed is (the reopen below), not by defer:
	// the post-reopen compensation re-runs happen on a healthy site.
	s.mu.Lock()
	s.recovering = true
	s.mu.Unlock()
	defer func() {
		// Error paths leave crashed as-is but must drop the recovering
		// flag so Health falls back to reporting the crash.
		s.mu.Lock()
		s.recovering = false
		s.mu.Unlock()
	}()

	// Drain handlers that were mid-flight when the crash hit: a real crash
	// kills the process's threads, and by restart time they are gone. The
	// in-process analogue is waiting for them to return (they observe the
	// crashed flag at their next fence and cannot install new state).
	for {
		s.mu.Lock()
		n := s.inflight
		s.mu.Unlock()
		if n == 0 {
			break
		}
		if err := s.clock.Sleep(ctx, 200*time.Microsecond); err != nil {
			return wal.RecoverResult{}, err
		}
	}

	// Volatile state is lost: pending and resolved tables, the in-memory
	// marking sets, and the kernel's live transactions with their locks.
	s.mu.Lock()
	s.pend = make(map[string]*pending)
	s.resolved = make(map[string]bool)
	s.mu.Unlock()
	s.stats.PendingGlobal.Set(0)
	s.mgr.CrashReset()

	store := storage.NewStore()
	res, err := wal.Recover(store, s.mgr.Log())
	if err != nil {
		return res, err
	}
	s.mgr.Store().LoadSnapshot(store.Snapshot())

	records, err := s.mgr.Log().Records()
	if err != nil {
		return res, err
	}
	// Analyze the records recovery replays: carried checkpoint state plus
	// the tail (image records of the checkpoint itself carry no protocol
	// state).
	replay := wal.Replay(records)
	analysis := wal.Analyze(replay)
	coords := make(map[string]string)
	for _, rec := range replay {
		if rec.Type == wal.RecPrepared {
			coords[rec.TxnID] = rec.Aux
		}
	}

	// The resolved table fences stale subtransactions; rebuild it from the
	// logged decisions.
	s.mu.Lock()
	for txnID := range analysis.Decisions {
		s.resolved[txnID] = true
	}
	s.mu.Unlock()

	// Marking sets: replay the RecMark/RecUnmark history. Witness state is
	// volatile UDUM1 bookkeeping and restarts empty (the marks it would
	// have reported are still present and will be witnessed again).
	s.marks.Restore(analysis.Marks[wal.MarkSetUndone])
	s.lc.Restore(analysis.Marks[wal.MarkSetLC])
	s.tracer.Emit(s.cfg.Name, trace.EvRecoverMarks, "", "",
		"undone="+strconv.Itoa(s.marks.Len())+" lc="+strconv.Itoa(s.lc.Len()))

	// Loser transactions (began, no terminal record) were undone by the
	// store rebuild; void their recorded operations so the history shows
	// the committed projection — exactly what rollbackUnexposed does for a
	// live unexposed roll-back. Compensating transactions are excluded:
	// interrupted compensation re-runs below and re-records.
	if rec := s.cfg.Recorder; rec != nil {
		for _, txnID := range sortedActives(analysis) {
			rec.VoidSiteOps(s.cfg.Name, txnID)
		}
	}

	// In-doubt transactions can only arise under 2PC (or O2PC real-action
	// subtransactions): O2PC participants never enter the prepared-and-
	// waiting state, which is the entire point of the protocol. Each one
	// re-acquires exclusive locks on its write set and resumes the
	// decision inquiry — the participant is blocked again, as 2PC demands.
	sort.Strings(res.InDoubt)
	for _, txnID := range res.InDoubt {
		p := &pending{
			req:     proto.ExecRequest{TxnID: txnID, Protocol: proto.TwoPC},
			state:   statePrepared,
			coord:   coords[txnID],
			updates: analysis.Updates[txnID],
		}
		for _, u := range analysis.Updates[txnID] {
			if err := s.mgr.Locks().Acquire(ctx, txnID, u.Before.Key, lock.Exclusive); err != nil {
				return res, err
			}
		}
		s.mu.Lock()
		s.pend[txnID] = p
		s.mu.Unlock()
		s.stats.PendingGlobal.Inc()
		s.stats.RecoveredInDoubt.Inc()
		s.tracer.Emit(s.cfg.Name, trace.EvRecoverPending, txnID, p.coord, "in-doubt")
	}

	// Exposed subtransactions: locally committed and lock-free before the
	// crash. Undecided ones re-enter the pending table (still lock-free)
	// and resume the inquiry; ones whose ABORT decision was logged but not
	// fully compensated re-run the compensating subtransaction now.
	var resumeComp []*pending
	for _, txnID := range sortedExposed(analysis) {
		info, err := decodeExposure(analysis.Exposed[txnID])
		if err != nil {
			return res, fmt.Errorf("site %s: recovering %s: %w", s.cfg.Name, txnID, err)
		}
		p := &pending{
			req:     info.Req,
			state:   stateLocallyCommitted,
			coord:   info.Coord,
			updates: analysis.Updates[txnID],
		}
		if analysis.Decisions[txnID] == "abort" {
			p.decided = true
			resumeComp = append(resumeComp, p)
		} else {
			s.mu.Lock()
			s.pend[txnID] = p
			s.mu.Unlock()
			s.stats.PendingGlobal.Inc()
			s.stats.RecoveredExposed.Inc()
			s.tracer.Emit(s.cfg.Name, trace.EvRecoverPending, txnID, p.coord, "exposed")
		}
	}

	// Reopen for traffic before re-running interrupted compensations: they
	// acquire data locks like any compensating transaction, and marking
	// keeps concurrent readers safe exactly as it does outside recovery.
	// The fresh epoch scopes the new up period's background work (the
	// crash cancelled the previous one).
	s.mu.Lock()
	s.epoch, s.epochCancel = context.WithCancel(context.Background())
	s.crashed = false
	s.recovering = false
	s.mu.Unlock()
	s.stats.Recoveries.Inc()
	s.armResolver()

	for _, p := range resumeComp {
		s.stats.ResumedCompensations.Inc()
		s.tracer.Emit(s.cfg.Name, trace.EvRecoverComp, p.req.TxnID, "", "")
		if rec := s.cfg.Recorder; rec != nil {
			rec.SetFate(p.req.TxnID, history.FateAborted)
		}
		s.compensateExposed(ctx, p)
		if err := ctx.Err(); err != nil {
			return res, err
		}
	}
	return res, nil
}

// sortedActives lists the still-active (loser) non-compensating
// transactions of an analysis in sorted order, for deterministic replay.
func sortedActives(a wal.Analysis) []string {
	var out []string
	for txnID, st := range a.Status {
		if st != wal.StatusActive {
			continue
		}
		if _, isCT := a.CompForward[txnID]; isCT {
			continue
		}
		out = append(out, txnID)
	}
	sort.Strings(out)
	return out
}

// sortedExposed lists, in sorted order, the exposed subtransactions that
// actually locally committed (the exposure record lands just before the
// commit record; if the commit failed the vote handler rolled the
// subtransaction back and the exposure is void) and still need attention:
// either undecided, or abort-decided with the compensation incomplete.
func sortedExposed(a wal.Analysis) []string {
	var out []string
	for txnID := range a.Exposed {
		if a.Status[txnID] != wal.StatusCommitted {
			continue
		}
		switch a.Decisions[txnID] {
		case "commit":
			continue
		case "abort":
			if a.CompensationComplete(txnID) {
				continue
			}
		}
		out = append(out, txnID)
	}
	sort.Strings(out)
	return out
}
