package site

import (
	"context"
	"fmt"

	"o2pc/internal/lock"
	"o2pc/internal/proto"
	"o2pc/internal/storage"
	"o2pc/internal/trace"
	"o2pc/internal/txn"
	"o2pc/internal/wal"
)

// RunLocal executes fn as an independent local transaction. Local
// transactions are entirely outside the global protocols — they see no
// marking checks and no commit protocol, preserving the site's autonomy —
// and run under the site's ordinary strict 2PL with deadlock retry.
func (s *Site) RunLocal(ctx context.Context, fn func(t *txn.Txn) error) error {
	s.mu.Lock()
	s.localSeq++
	id := fmt.Sprintf("L%d@%s", s.localSeq, s.cfg.Name)
	s.mu.Unlock()
	s.stats.LocalTxns.Inc()
	return s.mgr.RunLocal(ctx, id, 5, fn)
}

// ReadKey returns a key's current value outside any transaction (test and
// example inspection only; real readers use transactions).
func (s *Site) ReadKey(key storage.Key) (storage.Value, error) {
	rec, err := s.mgr.Store().Get(key)
	if err != nil {
		return nil, err
	}
	return rec.Value, nil
}

// ReadInt64 returns a key's current int64 value (0 when absent), outside
// any transaction.
func (s *Site) ReadInt64(key storage.Key) int64 {
	v, err := s.ReadKey(key)
	if err != nil {
		return 0
	}
	n, err := storage.DecodeInt64(v)
	if err != nil {
		return 0
	}
	return n
}

// SeedTxnID is the transaction ID under which bootstrap seed writes are
// logged. Each Seed call is its own committed mini-transaction in the WAL,
// so a recovered site replays its seed data instead of forgetting it.
const SeedTxnID = "init"

// Seed installs initial data without locking (bootstrap only). The write
// is logged ahead of the store mutation — an unlogged seed would vanish on
// the first crash recovery, silently breaking every invariant that assumed
// the seeded balance existed (the SeedInt64 WAL bypass).
func (s *Site) Seed(key storage.Key, value storage.Value) {
	store := s.mgr.Store()
	prev, existed := store.GetAny(key)
	after := wal.Image{
		Key:     key,
		Value:   append(storage.Value(nil), value...),
		Existed: true,
		Writer:  SeedTxnID,
	}
	log := s.mgr.Log()
	if _, err := log.Append(wal.Record{
		Type:   wal.RecUpdate,
		TxnID:  SeedTxnID,
		Before: wal.ImageOf(prev, existed),
		After:  after,
	}); err != nil {
		// Bootstrap precedes all traffic; an unloggable seed would silently
		// vanish on the first crash recovery, so it is a setup bug.
		panic(fmt.Sprintf("site %s: seeding %s: %v", s.cfg.Name, key, err))
	}
	if _, err := log.Append(wal.Record{Type: wal.RecCommit, TxnID: SeedTxnID}); err != nil {
		panic(fmt.Sprintf("site %s: seeding %s: %v", s.cfg.Name, key, err))
	}
	store.Put(key, value, SeedTxnID)
}

// SeedInt64 installs an initial int64 value.
func (s *Site) SeedInt64(key storage.Key, v int64) {
	s.Seed(key, storage.EncodeInt64(v))
}

// Recover rebuilds the site's volatile state from its WAL after a crash:
// the store is reconstructed, loser transactions are rolled back, and
// in-doubt (prepared, undecided) transactions re-acquire exclusive locks on
// their written keys and resume the decision inquiry — the participant
// stays blocked exactly as the 2PC protocol requires.
func (s *Site) Recover(ctx context.Context) (wal.RecoverResult, error) {
	s.tracer.Emit(s.cfg.Name, trace.EvRecover, "", "", "")
	s.mu.Lock()
	s.pend = make(map[string]*pending)
	s.crashed = false
	s.mu.Unlock()
	s.stats.PendingGlobal.Set(0)

	store := storage.NewStore()
	res, err := wal.Recover(store, s.mgr.Log())
	if err != nil {
		return res, err
	}
	s.mgr.Store().LoadSnapshot(store.Snapshot())

	records, err := s.mgr.Log().Records()
	if err != nil {
		return res, err
	}
	analysis := wal.Analyze(records)
	coords := make(map[string]string)
	for _, rec := range records {
		if rec.Type == wal.RecPrepared {
			coords[rec.TxnID] = rec.Aux
		}
	}
	// In-doubt transactions can only arise under 2PC (or O2PC real-action
	// subtransactions): O2PC participants never enter the prepared-and-
	// waiting state, which is the entire point of the protocol. Each one
	// re-acquires exclusive locks on its write set and resumes the
	// decision inquiry — the participant is blocked again, as 2PC demands.
	for _, txnID := range res.InDoubt {
		p := &pending{
			req:     proto.ExecRequest{TxnID: txnID, Protocol: proto.TwoPC},
			state:   statePrepared,
			coord:   coords[txnID],
			updates: analysis.Updates[txnID],
		}
		for _, u := range analysis.Updates[txnID] {
			if err := s.mgr.Locks().Acquire(ctx, txnID, u.Before.Key, lock.Exclusive); err != nil {
				return res, err
			}
		}
		s.mu.Lock()
		s.pend[txnID] = p
		s.mu.Unlock()
		s.stats.PendingGlobal.Inc()
		s.armResolver()
	}
	return res, nil
}
