package site

import (
	"context"
	"fmt"
	"sort"

	"o2pc/internal/compensate"
	"o2pc/internal/history"
	"o2pc/internal/lock"
	"o2pc/internal/proto"
	"o2pc/internal/trace"
	"o2pc/internal/txn"
	"o2pc/internal/wal"
)

// handleVote answers a VOTE-REQ. This is where the two protocols diverge:
//
//   - 2PC (and O2PC subtransactions flagged CompNone, i.e. real actions):
//     the participant logs PREPARED and retains its exclusive locks — the
//     blocking window begins;
//   - O2PC: the participant locally commits the subtransaction and
//     releases every lock at once; the transaction is now exposed and an
//     eventual abort decision will be honoured by compensation.
func (s *Site) handleVote(ctx context.Context, from string, req proto.VoteRequest) proto.VoteReply {
	witnesses := s.drainWitnesses()
	s.tracer.Emit(s.cfg.Name, trace.EvVoteReqRecv, req.TxnID, from, "")

	s.mu.Lock()
	p, ok := s.pend[req.TxnID]
	injector := s.injector
	s.mu.Unlock()
	if !ok {
		// Exec failed or never arrived: the site has already rolled back.
		s.stats.VotesNo.Inc()
		s.tracer.Emit(s.cfg.Name, trace.EvVoteNo, req.TxnID, from, "unknown txn")
		return proto.VoteReply{Commit: false, Reason: "unknown or already rolled-back transaction", Witnesses: witnesses}
	}
	// Serialize against a concurrently-arriving decision for this
	// transaction (see the pending type's comment).
	s.lockPending(p)
	defer p.mu.Unlock()
	if p.decided {
		s.stats.VotesNo.Inc()
		s.tracer.Emit(s.cfg.Name, trace.EvVoteNo, req.TxnID, from, "already decided")
		return proto.VoteReply{Commit: false, Reason: "transaction already decided", Witnesses: witnesses}
	}
	p.coord = from
	if p.t == nil {
		// A pending entry rebuilt by Recover has no live transaction: its
		// vote already happened in a previous incarnation, so a duplicate
		// VOTE-REQ (delayed in the network across the crash) answers NO
		// without touching anything — the resolver is already inquiring.
		s.stats.VotesNo.Inc()
		s.tracer.Emit(s.cfg.Name, trace.EvVoteNo, req.TxnID, from, "recovered entry")
		return proto.VoteReply{Commit: false, Reason: "subtransaction recovered from WAL; awaiting decision", Witnesses: witnesses}
	}

	// Site autonomy: the site may abort any subtransaction before it
	// terminates (vote-abort injection models a local decision to do so).
	if injector != nil && injector(req.TxnID) {
		s.voteNo(ctx, p)
		s.tracer.Emit(s.cfg.Name, trace.EvVoteNo, req.TxnID, from, "unilateral abort")
		return proto.VoteReply{Commit: false, Reason: "site unilaterally aborted", Witnesses: witnesses}
	}

	// Multi-shot sessions re-validate R1 at the vote. Each round validated
	// as its own last action, but the think-time gaps between rounds leave
	// a much longer window in which compensating transactions can mark the
	// site than a one-shot subtransaction ever sees. The check is
	// conservative: a failure only converts a YES into a unilateral NO, so
	// it can cause extra aborts but never admit a dangerous reader.
	if p.req.Round > 0 && p.req.Marking != proto.MarkNone {
		if !s.validateMarks(ctx, p.t.ID(), p.req.Marking, p.marks) {
			s.stats.RevalidateFail.Inc()
			s.stats.ReadmitRejects.Inc()
			s.voteNo(ctx, p)
			s.tracer.Emit(s.cfg.Name, trace.EvVoteNo, req.TxnID, from, "session revalidation")
			return proto.VoteReply{Commit: false, Reason: "marking validation failed at vote", Witnesses: witnesses}
		}
	}

	// Under the dual protocol P2 the site's mark set tracks transactions
	// the site is locally-committed with respect to: the mark is written
	// at the YES vote — inside the voting transaction itself, under an
	// exclusive lock on the marking set, so it becomes visible atomically
	// with the lock release — and cleared when the decision arrives (both
	// purely local transitions, so P2 needs no UDUM machinery).
	if p.req.Marking == proto.MarkP2 || p.req.Marking == proto.MarkSimple {
		if err := s.mgr.Locks().Acquire(ctx, p.t.ID(), MarkKey, lock.Exclusive); err != nil {
			s.voteNo(ctx, p)
			s.tracer.Emit(s.cfg.Name, trace.EvVoteNo, req.TxnID, from, "marking-set lock")
			return proto.VoteReply{Commit: false, Reason: "marking-set lock: " + err.Error(), Witnesses: witnesses}
		}
		if err := s.lc.MarkUndone(p.req.TxnID); err != nil {
			s.voteNo(ctx, p)
			s.tracer.Emit(s.cfg.Name, trace.EvVoteNo, req.TxnID, from, "marking-set log")
			return proto.VoteReply{Commit: false, Reason: "marking-set log: " + err.Error(), Witnesses: witnesses}
		}
	}

	// Read-only participant optimization: nothing to commit, nothing to
	// compensate — release everything and leave the protocol. (The
	// subtransaction still counts as executed for marking purposes; its
	// locks are what serialized it.)
	if s.cfg.ReadOnlyVotes && len(p.t.WriteSet()) == 0 {
		if err := p.t.Commit(); err != nil {
			s.voteNo(ctx, p)
			s.tracer.Emit(s.cfg.Name, trace.EvVoteNo, req.TxnID, from, "read-only commit failed")
			return proto.VoteReply{Commit: false, Reason: err.Error(), Witnesses: witnesses}
		}
		s.mu.Lock()
		delete(s.pend, p.req.TxnID)
		s.resolved[p.req.TxnID] = true
		s.mu.Unlock()
		s.stats.PendingGlobal.Dec()
		s.stats.VotesYes.Inc()
		s.tracer.Emit(s.cfg.Name, trace.EvLockRelease, req.TxnID, "", "read-only")
		s.tracer.Emit(s.cfg.Name, trace.EvVoteYes, req.TxnID, from, "read-only")
		return proto.VoteReply{Commit: true, ReadOnly: true, Witnesses: witnesses}
	}

	// Paxos Commit participants behave exactly like 2PC participants at
	// the sites (Gray & Lamport): what the replicated decision log removes
	// is the wait-on-a-dead-coordinator, not the prepared state.
	holdLocks := p.req.Protocol == proto.TwoPC || p.req.Protocol == proto.Paxos ||
		p.req.Comp == proto.CompNone
	if holdLocks {
		if err := p.t.Prepare(from); err != nil {
			s.voteNo(ctx, p)
			s.tracer.Emit(s.cfg.Name, trace.EvVoteNo, req.TxnID, from, "prepare failed")
			return proto.VoteReply{Commit: false, Reason: err.Error(), Witnesses: witnesses}
		}
		if s.cfg.ReleaseSharedAtVote {
			p.t.ReleaseSharedLocks()
		}
		p.state = statePrepared
		s.tracer.Emit(s.cfg.Name, trace.EvPrepared, req.TxnID, from, "locks retained")
		s.armResolver()
	} else {
		// O2PC: locally commit durably and release everything now. The
		// durable sync before the release is Theorem 2's write-ahead point:
		// the exposure record must survive a crash once other transactions
		// can read the exposed state. The RecExposed record lands before the
		// commit record so the CommitDurable sync covers both: a restarted
		// site finds everything it needs — the coordinator to ask, the
		// operations to compensate — in its own log.
		p.updates = p.t.Updates()
		if _, err := s.mgr.Log().Append(wal.Record{
			Type:  wal.RecExposed,
			TxnID: p.req.TxnID,
			Aux:   encodeExposure(exposure{Coord: from, Req: p.req}),
		}); err != nil {
			s.voteNo(ctx, p)
			s.tracer.Emit(s.cfg.Name, trace.EvVoteNo, req.TxnID, from, "exposure log failed")
			return proto.VoteReply{Commit: false, Reason: err.Error(), Witnesses: witnesses}
		}
		if err := p.t.CommitDurable(); err != nil {
			s.voteNo(ctx, p)
			s.tracer.Emit(s.cfg.Name, trace.EvVoteNo, req.TxnID, from, "local commit failed")
			return proto.VoteReply{Commit: false, Reason: err.Error(), Witnesses: witnesses}
		}
		p.state = stateLocallyCommitted
		p.exposedAt = s.clock.Now()
		s.tracer.Emit(s.cfg.Name, trace.EvExposed, req.TxnID, from, "")
		s.tracer.Emit(s.cfg.Name, trace.EvLocalCommit, req.TxnID, "", "")
		s.tracer.Emit(s.cfg.Name, trace.EvLockRelease, req.TxnID, "", "")
		// The site still carries on with the second phase of the protocol
		// (Section 2): if the decision is lost to a coordinator failure it
		// inquires — without holding any locks meanwhile.
		s.armResolver()
	}
	s.stats.VotesYes.Inc()
	s.tracer.Emit(s.cfg.Name, trace.EvVoteYes, req.TxnID, from, "")
	return proto.VoteReply{Commit: true, Witnesses: witnesses}
}

// voteNo rolls the subtransaction back (standard recovery, modeled as
// CTik) and forgets it.
func (s *Site) voteNo(ctx context.Context, p *pending) {
	s.stats.VotesNo.Inc()
	s.rollbackAsCompensation(ctx, p.t, p.req.Marking)
	s.mu.Lock()
	delete(s.pend, p.req.TxnID)
	s.mu.Unlock()
	s.stats.PendingGlobal.Dec()
}

// drainWitnesses converts pending local witness facts into the piggyback
// form carried on VOTE replies.
func (s *Site) drainWitnesses() []proto.WitnessDelta {
	tis := s.marks.DrainWitnesses()
	if len(tis) == 0 {
		return nil
	}
	out := make([]proto.WitnessDelta, 0, len(tis))
	for _, ti := range tis {
		out = append(out, proto.WitnessDelta{Forward: ti, Site: s.cfg.Name})
	}
	return out
}

// handleDecision applies a coordinator DECISION, including any piggybacked
// undone-to-unmarked notices (rule R3). Decisions are idempotent: a
// re-sent decision for a forgotten transaction is acknowledged again. A
// WAL failure surfaces as an error (no ack), so the coordinator keeps
// retrying rather than treating the decision as applied.
func (s *Site) handleDecision(ctx context.Context, d proto.Decision) (proto.Ack, error) {
	// The resolver loop calls in directly (not through Handle), so a crashed
	// site must refuse here too: volatile state mutated "while down" would
	// not survive the Recover replay.
	s.mu.Lock()
	crashed := s.crashed
	s.mu.Unlock()
	if crashed {
		return proto.Ack{}, ErrCrashed
	}
	s.tracer.Emit(s.cfg.Name, trace.EvDecisionRecv, d.TxnID, "", decisionAux(d.Commit))
	for _, ti := range d.Unmarks {
		s.writeMark(ctx, ti, false, s.marks)
	}

	s.mu.Lock()
	p, ok := s.pend[d.TxnID]
	if ok {
		delete(s.pend, d.TxnID)
	}
	wasResolved := s.resolved[d.TxnID]
	s.resolved[d.TxnID] = true // fence late ExecRequests for this txn
	s.mu.Unlock()
	if ok {
		s.stats.PendingGlobal.Dec()
	}
	if !ok {
		// Already resolved (e.g. the site voted NO and rolled back, or a
		// duplicate decision): still report mark state for UDUM1.
		return proto.Ack{TxnID: d.TxnID, Marked: s.marks.Contains(d.TxnID)}, nil
	}
	// Serialize against a concurrently-running vote handler for this
	// transaction: the decision must observe the post-vote state (e.g.
	// stateLocallyCommitted, which needs compensation) and never treat an
	// exposed subtransaction as unexposed.
	s.lockPending(p)
	defer p.mu.Unlock()
	p.decided = true
	if p.state == stateLocallyCommitted && !p.exposedAt.IsZero() {
		// The exposure window closes when the decision arrives (commit or
		// abort — compensation for an abort starts now). Recovered entries
		// have a zero stamp and are skipped. The per-outcome split feeds
		// the ops plane: an aborted window is the interval during which
		// effects leaked to other transactions and must be compensated.
		window := s.clock.Since(p.exposedAt)
		s.stats.ExposureDuration.ObserveDuration(window)
		if d.Commit {
			s.stats.ExposureCommit.ObserveDuration(window)
		} else {
			s.stats.ExposureAbort.ObserveDuration(window)
		}
	}

	// Write-ahead: the decision record lands before the decision's effects.
	// If the log refuses it, undo the bookkeeping and report the failure —
	// the transaction stays pending and the coordinator's retry (or the
	// resolver) delivers the decision again once the site can log it.
	if _, err := s.mgr.Log().Append(wal.Record{
		Type:  wal.RecDecision,
		TxnID: d.TxnID,
		Aux:   decisionAux(d.Commit),
	}); err != nil {
		p.decided = false
		s.mu.Lock()
		s.pend[d.TxnID] = p
		if !wasResolved {
			delete(s.resolved, d.TxnID)
		}
		s.mu.Unlock()
		s.stats.PendingGlobal.Inc()
		return proto.Ack{}, fmt.Errorf("site %s: logging decision for %s: %w", s.cfg.Name, d.TxnID, err)
	}

	var applyErr error
	if d.Commit {
		applyErr = s.applyCommit(p)
	} else {
		s.applyAbort(ctx, p)
	}
	if p.req.Marking == proto.MarkP2 || p.req.Marking == proto.MarkSimple {
		// Figure 2 dual: locally-committed -> unmarked at the decision
		// (for the check's purposes aborts clear the lc mark too; under
		// the simple protocol the abort path separately sets the undone
		// mark via compensation/rollback).
		s.writeMark(ctx, d.TxnID, false, s.lc)
	}
	return proto.Ack{TxnID: d.TxnID, Marked: s.marks.Contains(d.TxnID)}, applyErr
}

func decisionAux(commit bool) string {
	if commit {
		return "commit"
	}
	return "abort"
}

func (s *Site) applyCommit(p *pending) error {
	var err error
	switch p.state {
	case statePrepared:
		if p.t == nil {
			// Recovered in-doubt transaction: effects are already in the
			// store; just release the re-acquired locks.
			s.mgr.Locks().ReleaseAll(p.req.TxnID)
			break
		}
		err = p.t.Commit() // releases the retained locks
	case stateLocallyCommitted:
		// Already committed locally; nothing to release.
	case stateExecuted:
		// A commit decision without a vote round cannot happen for this
		// site (the coordinator only commits after unanimous YES votes);
		// commit defensively.
		err = p.t.Commit()
	}
	s.stats.Commits.Inc()
	if rec := s.cfg.Recorder; rec != nil {
		rec.SetFate(p.req.TxnID, history.FateCommitted)
	}
	return err
}

func (s *Site) applyAbort(ctx context.Context, p *pending) {
	s.stats.Aborts.Inc()
	if rec := s.cfg.Recorder; rec != nil {
		rec.SetFate(p.req.TxnID, history.FateAborted)
	}
	switch p.state {
	case statePrepared, stateExecuted:
		if p.t == nil {
			// Recovered in-doubt transaction: undo from the log. The ABORT
			// record follows the restore and precedes the lock release —
			// Txn.Abort's ordering — so a later crash replays this undo at
			// its position in the log, before any later writer of the same
			// keys. (A failed append leaves a log that the next Sync-ing
			// committer will surface; the undo itself is already justified
			// by the logged before-images.)
			ctID := compensate.CTID(p.req.TxnID)
			wal.ApplyUndo(s.mgr.Store(), p.updates, ctID)
			//o2pcvet:ignore errflow -- a failed append leaves a broken log the next Sync-ing committer surfaces; the undo is justified by the logged before-images
			_, _ = s.mgr.Log().Append(wal.Record{Type: wal.RecAbort, TxnID: p.req.TxnID, Aux: ctID})
			s.mgr.Locks().ReleaseAll(p.req.TxnID)
			s.stats.Rollbacks.Inc()
			break
		}
		if p.state == stateExecuted {
			// An abort during execution precedes every vote: nothing was
			// exposed anywhere, so the subtransaction is rolled back
			// unexposed (voided from the history, no mark) rather than
			// modeled as a compensating subtransaction.
			s.rollbackUnexposed(p.t)
			break
		}
		// Locks still held after a YES vote (2PC or a real action):
		// standard roll-back, modeled as the degenerate CTik — sibling
		// subtransactions under O2PC may have been exposed, so the undone
		// mark applies.
		s.rollbackAsCompensation(ctx, p.t, p.req.Marking)
	case stateLocallyCommitted:
		// Epoch scope, not the delivery context: compensation is the
		// site's own obligation once the abort decision is logged — it
		// must outlive the triggering request, and it must die with the
		// up period (a crash mid-retry unwinds here; Recover re-runs the
		// compensation from the WAL).
		s.compensateExposed(s.upCtx(), p)
	}
}

// compensateExposed runs the real compensating subtransaction for a
// locally-committed, exposed subtransaction. Persistence of compensation:
// the run retries until it succeeds.
func (s *Site) compensateExposed(ctx context.Context, p *pending) {
	s.stats.Compensations.Inc()
	compStart := s.clock.Now()
	defer func() {
		if ctx.Err() == nil {
			// Only completed compensations count toward the duration
			// histogram; a crash-interrupted run is resumed (and measured)
			// by recovery.
			s.stats.CompensationDuration.ObserveDuration(s.clock.Since(compStart))
		}
	}()
	plan, err := compensate.PlanFor(p.req.Comp, p.req.Compensator, s.cfg.Compensators)
	if err != nil {
		// Unreachable for well-formed requests: CompNone subtransactions
		// hold locks and never take this path.
		panic(fmt.Sprintf("site %s: no compensation plan for %s: %v", s.cfg.Name, p.req.TxnID, err))
	}
	forward := compensate.Forward{TxnID: p.req.TxnID, Ops: p.req.Ops, Updates: p.updates}
	opts := compensate.Options{
		EnsureWriteCoverage: !s.cfg.DisableWriteCoverage,
		Clock:               s.clock,
		Tracer:              s.tracer,
		TraceNode:           s.cfg.Name,
	}
	if p.req.Marking != proto.MarkNone && len(p.updates) > 0 {
		// Rule R2: the last operation of CTik marks the site undone with
		// respect to the forward transaction, under the marking-set lock,
		// atomically with the compensation's local commit. Read-only
		// subtransactions restore nothing and need no mark.
		opts.Finalize = func(fctx context.Context, t *txn.Txn) error {
			if err := s.mgr.Locks().Acquire(fctx, t.ID(), MarkKey, lock.Exclusive); err != nil {
				return err
			}
			return s.marks.MarkUndone(p.req.TxnID)
		}
	}
	if err := compensate.Run(ctx, s.mgr, forward, plan, opts); err != nil {
		// Only context cancellation can get here; persistence of
		// compensation absorbs every transient failure.
		if ctx.Err() == nil {
			panic(fmt.Sprintf("site %s: compensation for %s failed: %v", s.cfg.Name, p.req.TxnID, err))
		}
	}
}

// armResolver ensures the site's decision-inquiry scanner is running: if no
// decision arrives for a voted transaction, the site periodically asks the
// coordinator to resolve it — the classic in-doubt inquiry. A prepared
// participant stays blocked (locks held) until an answer arrives; this is
// the unbounded window O2PC exists to remove. (An O2PC participant runs the
// same inquiry loop without holding any locks.)
//
// One scanner serves every pending transaction of the site: decisions
// normally arrive within a round trip, so a per-transaction watchdog
// goroutine (plus its cancel context and timer) is pure overhead on the
// commit path — the scanner costs one timer per ResolvePeriod for the whole
// site and exits as soon as nothing is pending.
func (s *Site) armResolver() {
	if s.caller == nil {
		return
	}
	s.mu.Lock()
	armed := s.resolverOn
	s.resolverOn = true
	s.mu.Unlock()
	if armed {
		return
	}
	s.clock.Go(s.resolverLoop)
}

// resolverLoop periodically scans the pending table for voted, undecided
// transactions and inquires about each. Targets are visited in transaction
// ID order so virtual-time runs stay deterministic. The loop exits (and
// disarms) when a scan finds nothing to resolve, or when the site crashes
// (the crash kills the process's threads; Recover re-arms the inquiry for
// the entries it rebuilds); the next vote or recovery re-arms it.
func (s *Site) resolverLoop() {
	// Scope the scanner to the site's current up period: a crash cancels
	// the epoch, the sleep returns early, and the loop disarms instead of
	// ticking on as an undrainable goroutine.
	ep := s.upCtx()
	for {
		if s.clock.Sleep(ep, s.cfg.ResolvePeriod) != nil {
			s.mu.Lock()
			s.resolverOn = false
			s.mu.Unlock()
			return
		}
		s.mu.Lock()
		if s.crashed {
			s.resolverOn = false
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		targets := s.resolveTargets()
		if targets == nil {
			return
		}
		for _, p := range targets {
			s.resolveOnce(p)
		}
	}
}

// resolveTargets snapshots the voted, undecided pending transactions in ID
// order. A nil return means the scanner disarmed itself (under the same
// mutex armResolver checks, so no vote can slip between the empty scan and
// the disarm).
func (s *Site) resolveTargets() []*pending {
	s.mu.Lock()
	defer s.mu.Unlock()
	var targets []*pending
	for _, p := range s.pend {
		if p.coord == "" || (p.state != statePrepared && p.state != stateLocallyCommitted) {
			continue
		}
		targets = append(targets, p)
	}
	if len(targets) == 0 {
		s.resolverOn = false
		return nil
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].req.TxnID < targets[j].req.TxnID })
	return targets
}

// resolveOnce sends one decision inquiry for p and applies the answer, if
// the coordinator knows one. handleDecision is idempotent, so racing a
// concurrently-arriving decision is harmless.
func (s *Site) resolveOnce(p *pending) {
	cctx, cancel := s.clock.WithTimeout(context.Background(), s.cfg.ResolvePeriod*4)
	s.tracer.Emit(s.cfg.Name, trace.EvResolveSend, p.req.TxnID, p.coord, "")
	resp, err := s.caller.Call(cctx, s.cfg.Name, p.coord, proto.ResolveRequest{TxnID: p.req.TxnID})
	cancel()
	if err != nil {
		return
	}
	rr, ok := resp.(proto.ResolveReply)
	if !ok || !rr.Known {
		return
	}
	// A WAL failure leaves the transaction pending; the next scan retries.
	//o2pcvet:ignore errflow -- see above: failure leaves the txn pending and the next resolver scan retries
	_, _ = s.handleDecision(context.Background(), proto.Decision{TxnID: p.req.TxnID, Commit: rr.Commit})
}
