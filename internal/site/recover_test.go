package site

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"o2pc/internal/lock"
	"o2pc/internal/proto"
	"o2pc/internal/storage"
	"o2pc/internal/wal"
)

// restart models a true site restart: a second Site constructed over the
// same WAL, with none of the first incarnation's volatile state.
func restart(t *testing.T, log wal.Log, cfg Config) *Site {
	t.Helper()
	cfg.Log = log
	if cfg.Name == "" {
		cfg.Name = "s0"
	}
	return NewSite(cfg)
}

// TestSiteCrashRecoversExposureAndCompensates is the PR's headline
// scenario: an O2PC participant votes YES, locally commits and releases
// its locks (exposure), then the whole site crashes. The restarted site —
// a fresh Site over the same WAL, nothing else — must rediscover the
// exposed subtransaction from its RecExposed record, resume the decision
// inquiry, and on learning the global ABORT compensate the exposed write
// and set the undone mark. Everything it needs is in its own log.
func TestSiteCrashRecoversExposureAndCompensates(t *testing.T) {
	log := wal.NewMemoryLog()
	s1 := newTestSite(t, Config{Log: log})
	s1.SeedInt64("n", 100)
	reply := exec(t, s1, o2pcReq("T1", proto.Add("n", -10)))
	if !reply.OK {
		t.Fatalf("exec: %+v", reply)
	}
	if v := vote(t, s1, "T1"); !v.Commit {
		t.Fatalf("vote: %+v", v)
	}
	if got := s1.ReadInt64("n"); got != 90 {
		t.Fatalf("n = %d before crash, want 90 (exposed)", got)
	}

	// Crash: s1 is abandoned, its volatile state gone. The coordinator's
	// decision never arrived.
	s2 := restart(t, log, Config{ResolvePeriod: 2 * time.Millisecond})
	caller := &stubCaller{known: true, commit: false} // c0 decided ABORT
	s2.SetCaller(caller)
	res, err := s2.Recover(bg())
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(res.InDoubt) != 0 {
		t.Fatalf("O2PC exposure misclassified as in-doubt: %v", res.InDoubt)
	}
	// The exposed commit survives the restart, still lock-free.
	if got := s2.ReadInt64("n"); got != 90 {
		t.Fatalf("n = %d after recovery, want 90 (exposure redone)", got)
	}
	if s2.Manager().Locks().HoldsAny("T1") {
		t.Fatalf("recovered exposed subtransaction holds locks — exposure means lock-free")
	}
	if got := s2.Stats().RecoveredExposed.Value(); got != 1 {
		t.Fatalf("RecoveredExposed = %d, want 1", got)
	}

	// The re-armed resolver asks c0, learns ABORT, and compensates.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s2.ReadInt64("n") == 100 && s2.Marks().Contains("T1") {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("recovered site never compensated: n=%d marked=%v calls=%d",
		s2.ReadInt64("n"), s2.Marks().Contains("T1"), func() int { caller.mu.Lock(); defer caller.mu.Unlock(); return caller.calls }())
}

// TestSiteCrashRecoversExposureAndCommits is the happy twin: the
// coordinator decided COMMIT, so the restarted site's inquiry simply
// confirms the exposed state and retires the entry — no compensation, no
// mark.
func TestSiteCrashRecoversExposureAndCommits(t *testing.T) {
	log := wal.NewMemoryLog()
	s1 := newTestSite(t, Config{Log: log})
	s1.SeedInt64("n", 100)
	exec(t, s1, o2pcReq("T1", proto.Add("n", -10)))
	vote(t, s1, "T1")

	s2 := restart(t, log, Config{ResolvePeriod: 2 * time.Millisecond})
	s2.SetCaller(&stubCaller{known: true, commit: true})
	if _, err := s2.Recover(bg()); err != nil {
		t.Fatalf("recover: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		s2.mu.Lock()
		_, pending := s2.pend["T1"]
		s2.mu.Unlock()
		if !pending {
			if got := s2.ReadInt64("n"); got != 90 {
				t.Fatalf("n = %d after confirmed commit, want 90", got)
			}
			if s2.Marks().Contains("T1") {
				t.Fatalf("committed transaction marked undone")
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("recovered exposure never resolved")
}

// TestRecoverResumesInterruptedCompensation: the ABORT decision made it to
// the log but the crash preempted the compensating transaction. Recover
// must re-run it before the site reopens — no coordinator contact needed,
// the decision is already local.
func TestRecoverResumesInterruptedCompensation(t *testing.T) {
	log := wal.NewMemoryLog()
	s1 := newTestSite(t, Config{Log: log})
	s1.SeedInt64("n", 100)
	exec(t, s1, o2pcReq("T1", proto.Add("n", -10)))
	vote(t, s1, "T1")
	// The decision record lands; the crash hits before compensation.
	if _, err := log.Append(wal.Record{Type: wal.RecDecision, TxnID: "T1", Aux: "abort"}); err != nil {
		t.Fatalf("append decision: %v", err)
	}

	s2 := restart(t, log, Config{})
	if _, err := s2.Recover(bg()); err != nil {
		t.Fatalf("recover: %v", err)
	}
	// Compensation re-ran inside Recover: balance restored, mark set,
	// nothing left pending.
	if got := s2.ReadInt64("n"); got != 100 {
		t.Fatalf("n = %d after resumed compensation, want 100", got)
	}
	if !s2.Marks().Contains("T1") {
		t.Fatalf("resumed compensation did not set the undone mark")
	}
	if got := s2.Stats().ResumedCompensations.Value(); got != 1 {
		t.Fatalf("ResumedCompensations = %d, want 1", got)
	}
	s2.mu.Lock()
	_, pending := s2.pend["T1"]
	s2.mu.Unlock()
	if pending {
		t.Fatalf("compensated transaction still pending after recovery")
	}
}

// TestRecoverInDoubtReacquiresLocks: a 2PC participant prepared and
// undecided at crash time must come back blocked — exclusive locks on its
// write set, awaiting the decision — which is exactly the window O2PC
// exists to remove.
func TestRecoverInDoubtReacquiresLocks(t *testing.T) {
	log := wal.NewMemoryLog()
	s1 := newTestSite(t, Config{Log: log})
	s1.SeedInt64("n", 100)
	req := o2pcReq("T1", proto.Add("n", -10))
	req.Protocol = proto.TwoPC
	req.Marking = proto.MarkNone
	exec(t, s1, req)
	vote(t, s1, "T1")

	s2 := restart(t, log, Config{})
	res, err := s2.Recover(bg())
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(res.InDoubt) != 1 || res.InDoubt[0] != "T1" {
		t.Fatalf("in-doubt = %v, want [T1]", res.InDoubt)
	}
	if !s2.Manager().Locks().HoldsAny("T1") {
		t.Fatalf("recovered in-doubt participant holds no locks — 2PC demands it stays blocked")
	}
	// The prepared update stays applied in place, shielded from other
	// transactions by the re-acquired exclusive locks, and a late ABORT
	// decision undoes it from the logged before-images.
	if got := s2.ReadInt64("n"); got != 90 {
		t.Fatalf("n = %d, want 90 (prepared update applied, lock-protected)", got)
	}
	if _, err := s2.Handle(bg(), "c0", proto.Decision{TxnID: "T1", Commit: false}); err != nil {
		t.Fatalf("decision after recovery: %v", err)
	}
	if got := s2.ReadInt64("n"); got != 100 {
		t.Fatalf("n = %d after abort decision, want 100", got)
	}
	if s2.Manager().Locks().HoldsAny("T1") {
		t.Fatalf("locks held after decision")
	}
}

// TestLateAbortUndoSurvivesNextCrash pins the replay ordering of a late
// abort: a recovered in-doubt participant receives ABORT (undo applied in
// place, ABORT record logged, locks released), a later transaction then
// writes the same key and commits, and the site crashes again. The next
// recovery must replay the first transaction's undo at its ABORT record's
// log position — undoing it after the redo pass would re-install the
// stale before-image on top of the later committed write (the explorer's
// seed-107 conservation violation).
func TestLateAbortUndoSurvivesNextCrash(t *testing.T) {
	log := wal.NewMemoryLog()
	s1 := newTestSite(t, Config{Log: log})
	s1.SeedInt64("n", 100)
	req := o2pcReq("T1", proto.Add("n", -10))
	req.Protocol = proto.TwoPC
	req.Marking = proto.MarkNone
	exec(t, s1, req)
	vote(t, s1, "T1")

	// First crash: T1 comes back in-doubt, then the coordinator aborts it.
	s2 := restart(t, log, Config{})
	if _, err := s2.Recover(bg()); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if _, err := s2.Handle(bg(), "c0", proto.Decision{TxnID: "T1", Commit: false}); err != nil {
		t.Fatalf("late abort: %v", err)
	}
	if got := s2.ReadInt64("n"); got != 100 {
		t.Fatalf("n = %d after late abort, want 100", got)
	}

	// T9 now writes the same key and commits durably.
	exec(t, s2, o2pcReq("T9", proto.Add("n", -5)))
	vote(t, s2, "T9")
	decide(t, s2, "T9", true)
	if got := s2.ReadInt64("n"); got != 95 {
		t.Fatalf("n = %d after T9, want 95", got)
	}

	// Second crash: T9's committed write must survive T1's replayed undo.
	s3 := restart(t, log, Config{})
	if _, err := s3.Recover(bg()); err != nil {
		t.Fatalf("second recover: %v", err)
	}
	if got := s3.ReadInt64("n"); got != 95 {
		t.Fatalf("n = %d after second recovery, want 95 (T1's stale undo clobbered T9's committed write)", got)
	}
}

// TestCrashUnwedgesBlockedCompensation: a decision handler whose
// compensation is parked behind a held data lock must unwind when the
// site crashes — a real crash kills the process's threads, and Recover's
// handler drain would otherwise spin against a retry loop whose lock
// holder may itself be waiting for a decision the closed site cannot
// take. The restarted site re-runs the interrupted compensation from the
// WAL.
func TestCrashUnwedgesBlockedCompensation(t *testing.T) {
	log := wal.NewMemoryLog()
	s1 := newTestSite(t, Config{Log: log, LockTimeout: 2 * time.Millisecond})
	s1.SeedInt64("n", 100)
	exec(t, s1, o2pcReq("T1", proto.Add("n", -10)))
	vote(t, s1, "T1")

	// A foreign holder keeps an exclusive lock on T1's write set, so the
	// abort decision's compensation cannot finish.
	if err := s1.Manager().Locks().Acquire(bg(), "blocker", "n", lock.Exclusive); err != nil {
		t.Fatalf("blocker lock: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = s1.Handle(bg(), "c0", proto.Decision{TxnID: "T1", Commit: false})
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s1.Stats().Compensations.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("compensation never started")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond) // let the retry loop park on the lock

	s1.SetCrashed(true)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("decision handler did not unwind after crash — Recover's drain would wedge")
	}

	// The restarted site owes the compensation (DECISION abort logged, no
	// CompEnd) and completes it from the WAL alone.
	s2 := restart(t, log, Config{})
	if _, err := s2.Recover(bg()); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if got := s2.ReadInt64("n"); got != 100 {
		t.Fatalf("n = %d after recovery, want 100 (compensation re-run)", got)
	}
	if !s2.Marks().Contains("T1") {
		t.Fatalf("undone mark missing after resumed compensation")
	}
	if got := s2.Stats().ResumedCompensations.Value(); got != 1 {
		t.Fatalf("ResumedCompensations = %d, want 1", got)
	}
}

// recoveryFingerprint summarizes everything Recover rebuilds, for
// idempotence comparison: store contents, pending states, marking sets.
func recoveryFingerprint(s *Site) map[string]string {
	fp := make(map[string]string)
	store := s.Manager().Store()
	for key, rec := range store.Snapshot() {
		fp["store:"+string(key)] = string(rec.Value) + "/" + rec.Writer
	}
	s.mu.Lock()
	for id, p := range s.pend {
		fp["pend:"+id] = fmt.Sprintf("%d@%s", p.state, p.coord)
	}
	s.mu.Unlock()
	undone := s.Marks().Snapshot()
	sort.Strings(undone)
	for _, ti := range undone {
		fp["mark:"+ti] = "undone"
	}
	lc := s.LCMarks().Snapshot()
	sort.Strings(lc)
	for _, ti := range lc {
		fp["lc:"+ti] = "lc"
	}
	return fp
}

// TestRecoverIdempotent is the WAL-replay idempotence property: recovering
// twice from the same log yields the same store, pending table, and
// marking sets as recovering once. The log mixes every recovery class —
// committed, exposed-undecided, in-doubt, loser, and compensated-abort.
func TestRecoverIdempotent(t *testing.T) {
	log := wal.NewMemoryLog()
	s1 := newTestSite(t, Config{Log: log})
	for _, key := range []storage.Key{"a", "b", "c", "d", "e"} {
		s1.SeedInt64(key, 100)
	}
	// T1: exposed, decided COMMIT — fully resolved.
	exec(t, s1, o2pcReq("T1", proto.Add("a", 1)))
	vote(t, s1, "T1")
	decide(t, s1, "T1", true)
	// T2: exposed, undecided at crash time.
	exec(t, s1, o2pcReq("T2", proto.Add("b", 2)))
	vote(t, s1, "T2")
	// T3: 2PC prepared, in-doubt.
	req := o2pcReq("T3", proto.Add("c", 3))
	req.Protocol = proto.TwoPC
	req.Marking = proto.MarkNone
	exec(t, s1, req)
	vote(t, s1, "T3")
	// T4: loser — executed, never voted.
	exec(t, s1, o2pcReq("T4", proto.Add("d", 4)))
	// T5: exposed, decided ABORT, fully compensated (undone mark set).
	exec(t, s1, o2pcReq("T5", proto.Add("e", 5)))
	vote(t, s1, "T5")
	decide(t, s1, "T5", false)

	s2 := restart(t, log, Config{})
	if _, err := s2.Recover(bg()); err != nil {
		t.Fatalf("first recover: %v", err)
	}
	once := recoveryFingerprint(s2)
	if _, err := s2.Recover(bg()); err != nil {
		t.Fatalf("second recover: %v", err)
	}
	twice := recoveryFingerprint(s2)

	if len(once) != len(twice) {
		t.Fatalf("fingerprint size changed: %d -> %d\nonce:  %v\ntwice: %v", len(once), len(twice), once, twice)
	}
	for k, v := range once {
		if twice[k] != v {
			t.Fatalf("recovery not idempotent at %q: %q -> %q", k, v, twice[k])
		}
	}
	// Spot-check the classes landed where they should.
	if once["store:b"] != "" && s2.ReadInt64("b") != 102 {
		t.Fatalf("b = %d, want 102 (exposed commit)", s2.ReadInt64("b"))
	}
	if got := s2.ReadInt64("d"); got != 100 {
		t.Fatalf("d = %d, want 100 (loser undone)", got)
	}
	if got := s2.ReadInt64("e"); got != 100 {
		t.Fatalf("e = %d, want 100 (compensated abort)", got)
	}
	if !s2.Marks().Contains("T5") {
		t.Fatalf("T5's undone mark lost across recovery")
	}
}
