package site

import (
	"context"
	"sync"
	"testing"
	"time"

	"o2pc/internal/history"
	"o2pc/internal/proto"
	"o2pc/internal/storage"
	"o2pc/internal/txn"
)

func bg() context.Context { return context.Background() }

func newTestSite(t *testing.T, cfg Config) *Site {
	t.Helper()
	if cfg.Name == "" {
		cfg.Name = "s0"
	}
	return NewSite(cfg)
}

func exec(t *testing.T, s *Site, req proto.ExecRequest) proto.ExecReply {
	t.Helper()
	raw, err := s.Handle(bg(), "c0", req)
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	return raw.(proto.ExecReply)
}

func vote(t *testing.T, s *Site, txnID string) proto.VoteReply {
	t.Helper()
	raw, err := s.Handle(bg(), "c0", proto.VoteRequest{TxnID: txnID})
	if err != nil {
		t.Fatalf("vote: %v", err)
	}
	return raw.(proto.VoteReply)
}

func decide(t *testing.T, s *Site, txnID string, commit bool, unmarks ...string) proto.Ack {
	t.Helper()
	raw, err := s.Handle(bg(), "c0", proto.Decision{TxnID: txnID, Commit: commit, Unmarks: unmarks})
	if err != nil {
		t.Fatalf("decide: %v", err)
	}
	return raw.(proto.Ack)
}

func o2pcReq(txnID string, ops ...proto.Operation) proto.ExecRequest {
	return proto.ExecRequest{
		TxnID: txnID, Ops: ops,
		Comp: proto.CompSemantic, Protocol: proto.O2PC, Marking: proto.MarkP1,
	}
}

func TestExecReturnsReads(t *testing.T) {
	s := newTestSite(t, Config{})
	s.SeedInt64("n", 5)
	s.Seed("str", storage.Value("hello"))
	reply := exec(t, s, o2pcReq("T1", proto.Read("str"), proto.Read("missing")))
	if !reply.OK {
		t.Fatalf("reply = %+v", reply)
	}
	if string(reply.Reads["str"]) != "hello" {
		t.Fatalf("reads = %v", reply.Reads)
	}
	if _, ok := reply.Reads["missing"]; ok {
		t.Fatalf("missing key present in reads")
	}
	decide(t, s, "T1", true)
}

func TestO2PCReleasesLocksAtYesVote(t *testing.T) {
	s := newTestSite(t, Config{})
	s.SeedInt64("n", 0)
	reply := exec(t, s, o2pcReq("T1", proto.Add("n", 1)))
	if !reply.OK {
		t.Fatalf("exec failed: %+v", reply)
	}
	if !s.Manager().Locks().HoldsAny("T1") {
		t.Fatalf("locks not held between exec and vote")
	}
	v := vote(t, s, "T1")
	if !v.Commit {
		t.Fatalf("vote = %+v", v)
	}
	if s.Manager().Locks().HoldsAny("T1") {
		t.Fatalf("O2PC site held locks after YES vote")
	}
	// The update is locally committed (exposed) before any decision.
	if got := s.ReadInt64("n"); got != 1 {
		t.Fatalf("n = %d, want 1 (exposed)", got)
	}
	decide(t, s, "T1", true)
}

func TestTwoPCHoldsLocksUntilDecision(t *testing.T) {
	s := newTestSite(t, Config{})
	s.SeedInt64("n", 0)
	req := o2pcReq("T1", proto.Add("n", 1))
	req.Protocol = proto.TwoPC
	req.Marking = proto.MarkNone
	exec(t, s, req)
	v := vote(t, s, "T1")
	if !v.Commit {
		t.Fatalf("vote = %+v", v)
	}
	if !s.Manager().Locks().HoldsAny("T1") {
		t.Fatalf("2PC site released locks at vote — that's the bug O2PC fixes, not 2PC behavior")
	}
	decide(t, s, "T1", true)
	if s.Manager().Locks().HoldsAny("T1") {
		t.Fatalf("locks held after commit decision")
	}
	if got := s.ReadInt64("n"); got != 1 {
		t.Fatalf("n = %d", got)
	}
}

func TestRealActionHoldsLocksUnderO2PC(t *testing.T) {
	s := newTestSite(t, Config{})
	s.SeedInt64("n", 0)
	req := o2pcReq("T1", proto.Add("n", 1))
	req.Comp = proto.CompNone // real action
	exec(t, s, req)
	vote(t, s, "T1")
	if !s.Manager().Locks().HoldsAny("T1") {
		t.Fatalf("real-action site must retain locks until the decision")
	}
	decide(t, s, "T1", false)
	if s.Manager().Locks().HoldsAny("T1") {
		t.Fatalf("locks held after abort decision")
	}
	if got := s.ReadInt64("n"); got != 0 {
		t.Fatalf("n = %d, want 0 (rolled back)", got)
	}
}

func TestAbortDecisionTriggersCompensation(t *testing.T) {
	rec := history.NewRecorder()
	s := newTestSite(t, Config{Recorder: rec})
	s.SeedInt64("n", 10)
	exec(t, s, o2pcReq("T1", proto.Add("n", 5)))
	vote(t, s, "T1")
	if got := s.ReadInt64("n"); got != 15 {
		t.Fatalf("n = %d before abort", got)
	}
	ack := decide(t, s, "T1", false)
	if !ack.Marked {
		t.Fatalf("abort ack must report the undone mark")
	}
	if got := s.ReadInt64("n"); got != 10 {
		t.Fatalf("n = %d, want 10 after compensation", got)
	}
	if s.Stats().Compensations.Value() != 1 {
		t.Fatalf("compensations = %d", s.Stats().Compensations.Value())
	}
	if !s.Marks().Contains("T1") {
		t.Fatalf("site not marked undone wrt T1 (rule R2)")
	}
	h := rec.Snapshot()
	if h.KindOf("CTT1") != history.KindCompensating {
		t.Fatalf("CT not in history")
	}
}

func TestVoteAbortInjection(t *testing.T) {
	s := newTestSite(t, Config{})
	s.SeedInt64("n", 10)
	s.SetVoteAbortInjector(func(id string) bool { return id == "T1" })
	exec(t, s, o2pcReq("T1", proto.Add("n", 5)))
	v := vote(t, s, "T1")
	if v.Commit {
		t.Fatalf("injected abort ignored")
	}
	if got := s.ReadInt64("n"); got != 10 {
		t.Fatalf("n = %d after NO vote", got)
	}
	if !s.Marks().Contains("T1") {
		t.Fatalf("NO-voting site must be marked undone")
	}
	// The later abort decision is acknowledged idempotently with the mark.
	ack := decide(t, s, "T1", false)
	if !ack.Marked {
		t.Fatalf("ack.Marked = false for marked site")
	}
}

func TestExecConstraintFailureRollsBackWithoutMark(t *testing.T) {
	s := newTestSite(t, Config{})
	s.SeedInt64("n", 3)
	reply := exec(t, s, o2pcReq("T1", proto.AddMin("n", -5, 0)))
	if reply.OK || reply.Err == "" {
		t.Fatalf("constraint violation not reported: %+v", reply)
	}
	if got := s.ReadInt64("n"); got != 3 {
		t.Fatalf("n = %d", got)
	}
	// Exec-phase failure precedes all votes: no undone mark.
	if s.Marks().Contains("T1") {
		t.Fatalf("exec-phase abort must not mark the site")
	}
	if s.Manager().Locks().HoldsAny("T1") {
		t.Fatalf("locks leaked")
	}
}

func TestVoteUnknownTxnIsNo(t *testing.T) {
	s := newTestSite(t, Config{})
	v := vote(t, s, "ghost")
	if v.Commit {
		t.Fatalf("vote YES for unknown transaction")
	}
}

func TestMarkingRejectRetryable(t *testing.T) {
	s := newTestSite(t, Config{})
	s.SeedInt64("n", 0)
	// Transaction carries a mark this site lacks.
	req := o2pcReq("T2", proto.Add("n", 1))
	req.TransMarks = []string{"T1"}
	req.Visited = true
	reply := exec(t, s, req)
	if !reply.Rejected || reply.Fatal {
		t.Fatalf("reply = %+v, want retryable rejection", reply)
	}
	if s.Stats().RejectsRetry.Value() != 1 {
		t.Fatalf("retry counter = %d", s.Stats().RejectsRetry.Value())
	}
	if s.Manager().Locks().HoldsAny("T2") {
		t.Fatalf("rejected subtransaction leaked locks")
	}
}

func TestMarkingRejectFatal(t *testing.T) {
	s := newTestSite(t, Config{})
	s.SeedInt64("n", 0)
	s.Marks().MarkUndone("T1")
	req := o2pcReq("T2", proto.Add("n", 1))
	req.Visited = true // visited elsewhere without collecting T1
	reply := exec(t, s, req)
	if !reply.Rejected || !reply.Fatal {
		t.Fatalf("reply = %+v, want fatal rejection", reply)
	}
}

func TestMarkingFirstVisitAdoptsAndWitnesses(t *testing.T) {
	s := newTestSite(t, Config{})
	s.SeedInt64("n", 0)
	s.Marks().MarkUndone("T1")
	req := o2pcReq("T2", proto.Add("n", 1))
	reply := exec(t, s, req)
	if !reply.OK {
		t.Fatalf("reply = %+v", reply)
	}
	if len(reply.Marks) != 1 || reply.Marks[0] != "T1" {
		t.Fatalf("merged marks = %v", reply.Marks)
	}
	// The witness piggybacks on this very reply (or the next).
	found := false
	for _, w := range reply.Witnesses {
		if w.Forward == "T1" && w.Site == "s0" {
			found = true
		}
	}
	if !found {
		t.Fatalf("witness not piggybacked: %+v", reply.Witnesses)
	}
	vote(t, s, "T2")
	decide(t, s, "T2", true)
}

func TestDecisionUnmarksRideAlong(t *testing.T) {
	s := newTestSite(t, Config{})
	s.SeedInt64("n", 0)
	s.Marks().MarkUndone("T1")
	exec(t, s, proto.ExecRequest{
		TxnID: "T3", Ops: []proto.Operation{proto.Add("n", 1)},
		Comp: proto.CompSemantic, Protocol: proto.O2PC, Marking: proto.MarkP1,
	})
	vote(t, s, "T3")
	decide(t, s, "T3", true, "T1") // unmark notice piggybacked
	if s.Marks().Contains("T1") {
		t.Fatalf("unmark notice ignored")
	}
}

func TestMarkAfterExecDoesNotFailVote(t *testing.T) {
	// A mark appearing AFTER the subtransaction completed (its validation
	// already ran as its last action) is harmless: the compensating
	// transaction it stands for ran after this transaction's conflicting
	// operations, which is the safe Tj -> CTi direction. The vote must
	// still be YES.
	s := newTestSite(t, Config{})
	s.SeedInt64("n", 0)
	reply := exec(t, s, o2pcReq("T2", proto.Add("n", 1)))
	if !reply.OK {
		t.Fatalf("exec: %+v", reply)
	}
	s.Marks().MarkUndone("T9")
	v := vote(t, s, "T2")
	if !v.Commit {
		t.Fatalf("vote failed for a post-execution mark: %+v", v)
	}
	decide(t, s, "T2", true)
}

func TestDuplicateDecisionIdempotent(t *testing.T) {
	s := newTestSite(t, Config{})
	s.SeedInt64("n", 0)
	exec(t, s, o2pcReq("T1", proto.Add("n", 1)))
	vote(t, s, "T1")
	decide(t, s, "T1", true)
	decide(t, s, "T1", true) // retransmit
	if got := s.ReadInt64("n"); got != 1 {
		t.Fatalf("n = %d after duplicate decision", got)
	}
}

func TestLocalTxnsUnaffectedByMarks(t *testing.T) {
	s := newTestSite(t, Config{})
	s.SeedInt64("n", 0)
	s.Marks().MarkUndone("T1")
	s.Marks().MarkUndone("T2")
	// Local transactions never consult markings (autonomy).
	if err := s.RunLocal(bg(), func(tx *txn.Txn) error {
		return tx.WriteInt64(bg(), "n", 7)
	}); err != nil {
		t.Fatalf("local txn: %v", err)
	}
	if got := s.ReadInt64("n"); got != 7 {
		t.Fatalf("n = %d", got)
	}
}

func TestCrashedSiteRejectsMessages(t *testing.T) {
	s := newTestSite(t, Config{})
	s.SetCrashed(true)
	if _, err := s.Handle(bg(), "c0", proto.VoteRequest{TxnID: "T1"}); err == nil {
		t.Fatalf("crashed site served a message")
	}
	s.SetCrashed(false)
	if _, err := s.Handle(bg(), "c0", proto.VoteRequest{TxnID: "T1"}); err != nil {
		t.Fatalf("recovered site rejected a message: %v", err)
	}
}

func TestSiteRecoverRebuildsStoreAndInDoubt(t *testing.T) {
	s := newTestSite(t, Config{ResolvePeriod: time.Hour}) // no live resolver
	s.SeedInt64("n", 0)
	req := o2pcReq("T1", proto.Add("n", 1))
	req.Protocol = proto.TwoPC
	req.Marking = proto.MarkNone
	exec(t, s, req)
	vote(t, s, "T1") // prepared, in doubt
	// Committed unrelated data via a local transaction.
	_ = s.RunLocal(bg(), func(tx *txn.Txn) error { return tx.WriteInt64(bg(), "m", 9) })

	// Crash: volatile state gone; recover from WAL.
	s.SetCrashed(true)
	res, err := s.Recover(bg())
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(res.InDoubt) != 1 || res.InDoubt[0] != "T1" {
		t.Fatalf("in-doubt = %v", res.InDoubt)
	}
	if got := s.ReadInt64("m"); got != 9 {
		t.Fatalf("m = %d after recovery", got)
	}
	// The in-doubt transaction holds its write lock again: a conflicting
	// local transaction blocks until the decision arrives.
	blocked := make(chan error, 1)
	go func() {
		blocked <- s.RunLocal(bg(), func(tx *txn.Txn) error {
			_, err := tx.ReadInt64(bg(), "n")
			return err
		})
	}()
	select {
	case err := <-blocked:
		t.Fatalf("conflicting local txn not blocked by in-doubt txn: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	decide(t, s, "T1", true)
	if err := <-blocked; err != nil {
		t.Fatalf("local txn after decision: %v", err)
	}
	if got := s.ReadInt64("n"); got != 1 {
		t.Fatalf("n = %d after recovered commit", got)
	}
}

func TestSiteRecoverAbortInDoubt(t *testing.T) {
	s := newTestSite(t, Config{ResolvePeriod: time.Hour})
	s.SeedInt64("n", 0)
	req := o2pcReq("T1", proto.Add("n", 1))
	req.Protocol = proto.TwoPC
	req.Marking = proto.MarkNone
	exec(t, s, req)
	vote(t, s, "T1")
	s.SetCrashed(true)
	if _, err := s.Recover(bg()); err != nil {
		t.Fatalf("recover: %v", err)
	}
	decide(t, s, "T1", false)
	if got := s.ReadInt64("n"); got != 0 {
		t.Fatalf("n = %d after recovered abort", got)
	}
}

// stubCaller answers Resolve requests with a fixed decision.
type stubCaller struct {
	mu     sync.Mutex
	known  bool
	commit bool
	calls  int
}

func (c *stubCaller) Call(ctx context.Context, from, to string, req any) (any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if _, ok := req.(proto.ResolveRequest); ok {
		return proto.ResolveReply{Known: c.known, Commit: c.commit}, nil
	}
	return nil, nil
}

func TestBlockedParticipantResolves(t *testing.T) {
	s := newTestSite(t, Config{ResolvePeriod: 2 * time.Millisecond})
	caller := &stubCaller{known: true, commit: true}
	s.SetCaller(caller)
	s.SeedInt64("n", 0)
	req := o2pcReq("T1", proto.Add("n", 1))
	req.Protocol = proto.TwoPC
	req.Marking = proto.MarkNone
	exec(t, s, req)
	vote(t, s, "T1")
	// No decision arrives; the resolver must fetch one.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if !s.Manager().Locks().HoldsAny("T1") {
			if got := s.ReadInt64("n"); got != 1 {
				t.Fatalf("n = %d after resolved commit", got)
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("blocked participant never resolved (resolver calls: %d)", caller.calls)
}

func TestCheckHoldStrategyKeepsMarkLock(t *testing.T) {
	s := newTestSite(t, Config{CheckStrategy: CheckHold})
	s.SeedInt64("n", 0)
	reply := exec(t, s, o2pcReq("T1", proto.Add("n", 1)))
	if !reply.OK {
		t.Fatalf("exec: %+v", reply)
	}
	held := s.Manager().Locks().Held("T1")
	if _, ok := held[MarkKey]; !ok {
		t.Fatalf("CheckHold did not retain the marking-set lock: %v", held)
	}
	vote(t, s, "T1")
	decide(t, s, "T1", true)
}

func TestCheckEarlyStrategyReleasesMarkLock(t *testing.T) {
	s := newTestSite(t, Config{CheckStrategy: CheckEarlyRevalidate})
	s.SeedInt64("n", 0)
	exec(t, s, o2pcReq("T1", proto.Add("n", 1)))
	held := s.Manager().Locks().Held("T1")
	if _, ok := held[MarkKey]; ok {
		t.Fatalf("early strategy kept the marking-set lock: %v", held)
	}
	vote(t, s, "T1")
	decide(t, s, "T1", true)
}

func TestReadOnlyVoteOptimization(t *testing.T) {
	s := newTestSite(t, Config{ReadOnlyVotes: true})
	s.SeedInt64("n", 7)
	req := o2pcReq("Tro", proto.Read("n"))
	req.Protocol = proto.TwoPC // even 2PC readers drop out
	req.Marking = proto.MarkNone
	exec(t, s, req)
	v := vote(t, s, "Tro")
	if !v.Commit || !v.ReadOnly {
		t.Fatalf("vote = %+v, want read-only YES", v)
	}
	if s.Manager().Locks().HoldsAny("Tro") {
		t.Fatalf("read-only participant kept locks after its vote")
	}
	// The participant has left the protocol: a (stray) decision is just
	// acknowledged, and a stale re-exec is fenced.
	decide(t, s, "Tro", true)
	reply := exec(t, s, req)
	if reply.OK {
		t.Fatalf("re-exec after read-only departure accepted")
	}
}

func TestReadOnlyVoteNotUsedForWriters(t *testing.T) {
	s := newTestSite(t, Config{ReadOnlyVotes: true})
	s.SeedInt64("n", 7)
	exec(t, s, o2pcReq("Tw", proto.Add("n", 1)))
	v := vote(t, s, "Tw")
	if v.ReadOnly {
		t.Fatalf("writing participant voted read-only")
	}
	decide(t, s, "Tw", true)
}
