package workload

import (
	"context"
	"reflect"
	"testing"
	"time"

	"o2pc/internal/core"
	"o2pc/internal/proto"
)

// TestWorkloadMultiShotHostile drives the full hostile mix — multi-shot
// sessions with think time, Zipfian hot keys, analytics scans among OLTP
// writers, flash-crowd bursts, long-tail stragglers, doomed votes — and
// checks the standing oracles over the result.
func TestWorkloadMultiShotHostile(t *testing.T) {
	cl := core.NewCluster(core.Config{Sites: 4, Record: true})
	cfg := Config{
		Clients:         4,
		TxnsPerClient:   15,
		SitesPerTxn:     2,
		OpsPerSite:      2,
		KeysPerSite:     48,
		ZipfS:           1.2,
		ReadFrac:        0.3,
		AbortProb:       0.2,
		Protocol:        proto.O2PC,
		Marking:         proto.MarkP1,
		Rounds:          3,
		ThinkTime:       10 * time.Microsecond,
		BurstSize:       5,
		BurstGap:        50 * time.Microsecond,
		StragglerFrac:   0.2,
		StragglerFactor: 4,
		AnalyticsFrac:   0.3,
	}
	rep := Run(context.Background(), cl, cfg)
	if rep.Committed == 0 {
		t.Fatalf("no sessions committed: %+v", rep)
	}
	if rep.Aborted == 0 {
		t.Fatalf("abort injection produced no aborted sessions")
	}
	t.Logf("report: %s", rep)
	t.Logf("exposure p50=%.3fms p99=%.3fms count=%d",
		rep.Exposure.P50, rep.Exposure.P99, rep.Exposure.Count)

	audit := cl.Audit()
	if len(audit.LocalCycles) != 0 {
		t.Fatalf("local cycles detected: %v", audit.LocalCycles)
	}
	if audit.EffectiveCount != 0 {
		t.Fatalf("effective regular cycles under P1: %d", audit.EffectiveCount)
	}
	if v := cl.CompensationViolations(); len(v) != 0 {
		t.Fatalf("Theorem 2 violations under multi-shot load: %v", v)
	}
}

// TestWorkloadMultiShotTwoPC runs the same session shape under the 2PC
// baseline: no marking, no exposure, and the oracles must still hold.
func TestWorkloadMultiShotTwoPC(t *testing.T) {
	cl := core.NewCluster(core.Config{Sites: 3, Record: true})
	cfg := Config{
		Clients:       3,
		TxnsPerClient: 10,
		SitesPerTxn:   2,
		KeysPerSite:   32,
		HotKeys:       4,
		HotProb:       0.6,
		ReadFrac:      0.4,
		AbortProb:     0.15,
		Protocol:      proto.TwoPC,
		Rounds:        2,
	}
	rep := Run(context.Background(), cl, cfg)
	if rep.Committed == 0 {
		t.Fatalf("no sessions committed: %+v", rep)
	}
	if rep.Exposure.Count != 0 {
		t.Fatalf("2PC produced exposure windows: %+v", rep.Exposure)
	}
	if audit := cl.Audit(); !audit.Correct() {
		t.Fatalf("Section 5 criterion violated under 2PC sessions")
	}
}

// TestSessionScriptDeterminism pins the seeded generator: the same (seed,
// config) must yield byte-identical session scripts draw for draw.
func TestSessionScriptDeterminism(t *testing.T) {
	cfg := Config{
		Seed:          7,
		SitesPerTxn:   2,
		OpsPerSite:    3,
		KeysPerSite:   64,
		ZipfS:         1.5,
		ReadFrac:      0.4,
		AbortProb:     0.3,
		Rounds:        4,
		ThinkTime:     time.Millisecond,
		StragglerFrac: 0.25,
		AnalyticsFrac: 0.25,
	}
	sites := []string{"s0", "s1", "s2"}
	ga := NewGenerator(cfg, sites)
	gb := NewGenerator(cfg, sites)
	for i := 0; i < 20; i++ {
		a, b := ga.NextSession(), gb.NextSession()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("draw %d diverged:\n a=%+v\n b=%+v", i, a, b)
		}
		if len(a.Rounds) != cfg.Rounds || len(a.Think) != cfg.Rounds {
			t.Fatalf("draw %d: %d rounds / %d thinks, want %d", i, len(a.Rounds), len(a.Think), cfg.Rounds)
		}
		if a.Straggler && a.Think[0] != cfg.ThinkTime*time.Duration(8) {
			t.Fatalf("draw %d: straggler think = %v, want 8x%v", i, a.Think[0], cfg.ThinkTime)
		}
		if a.Analytics {
			for r, round := range a.Rounds {
				for _, op := range round[0].Ops {
					if op.Kind != proto.OpRead {
						t.Fatalf("draw %d round %d: analytics session has write %+v", i, r, op)
					}
				}
			}
		}
	}
}
