package workload

import (
	"math"
	"strconv"
	"testing"
)

// FuzzZipfGenerator hammers the key-skew machinery with hostile parameters:
// s -> 1 from above (where rand.NewZipf refuses), s <= 1, infinite and NaN
// s, hot-set size 1, hot sets larger than the keyspace, and empty or
// negative keyspaces. Every drawn key must land inside the effective
// keyspace and every draw sequence must be seed-deterministic.
func FuzzZipfGenerator(f *testing.F) {
	f.Add(1.2, 64, 8, 0.5, int64(1))
	f.Add(1.0, 16, 1, 0.9, int64(2))                  // s == 1: NewZipf returns nil
	f.Add(math.Nextafter(1, 2), 16, 0, 0.0, int64(3)) // s -> 1 from above
	f.Add(math.Inf(1), 8, 4, 0.5, int64(4))           // infinite skew
	f.Add(0.0, 0, 0, 0.0, int64(0))                   // empty keyspace, zero seed
	f.Add(2.5, -7, 99, 1.5, int64(-1))                // negative keyspace, hot > keys
	f.Add(1.5, 1, 1, 0.5, int64(5))                   // keyspace of one, hot set of one
	f.Fuzz(func(t *testing.T, s float64, keys, hot int, hotProb float64, seed int64) {
		cfg := Config{
			Seed:        seed,
			KeysPerSite: keys,
			HotKeys:     hot,
			HotProb:     hotProb,
			ZipfS:       s,
			ReadFrac:    0.3,
			AbortProb:   0.2,
			Rounds:      3,
		}
		eff := cfg.withDefaults()
		sites := []string{"s0", "s1"}
		ga := NewGenerator(cfg, sites)
		gb := NewGenerator(cfg, sites)

		checkKey := func(key string) {
			i, err := strconv.Atoi(key[1:])
			if err != nil || i < 0 || i >= eff.KeysPerSite {
				t.Fatalf("key %q outside effective keyspace [0,%d)", key, eff.KeysPerSite)
			}
		}
		for n := 0; n < 25; n++ {
			spec, doom := ga.Next()
			specB, doomB := gb.Next()
			if doom != doomB || len(spec.Subtxns) != len(specB.Subtxns) {
				t.Fatalf("draw %d: one-shot generators diverged", n)
			}
			for _, st := range spec.Subtxns {
				for _, op := range st.Ops {
					checkKey(op.Key)
				}
			}
		}
		for n := 0; n < 10; n++ {
			script := ga.NextSession()
			scriptB := gb.NextSession()
			if script.ID != scriptB.ID || script.DoomSite != scriptB.DoomSite ||
				len(script.Rounds) != len(scriptB.Rounds) {
				t.Fatalf("draw %d: session generators diverged", n)
			}
			for _, round := range script.Rounds {
				for _, st := range round {
					for _, op := range st.Ops {
						checkKey(op.Key)
					}
				}
			}
		}
	})
}
