package workload

import (
	"context"
	"testing"

	"o2pc/internal/core"
	"o2pc/internal/proto"
)

func TestWorkloadO2PCP1UnderAborts(t *testing.T) {
	cl := core.NewCluster(core.Config{Sites: 4, Record: true})
	cfg := Config{
		Clients:       4,
		TxnsPerClient: 40,
		SitesPerTxn:   2,
		OpsPerSite:    2,
		KeysPerSite:   64,
		HotKeys:       8,
		HotProb:       0.5,
		ReadFrac:      0.3,
		AbortProb:     0.2,
		Protocol:      proto.O2PC,
		Marking:       proto.MarkP1,
	}
	rep := Run(context.Background(), cl, cfg)
	if rep.Committed == 0 {
		t.Fatalf("no transactions committed: %+v", rep)
	}
	if rep.Aborted == 0 {
		t.Fatalf("abort injection produced no aborts")
	}
	t.Logf("report: %s", rep)
	t.Logf("rejects retry=%d fatal=%d compensations=%d rollbacks=%d",
		rep.RejectsRetry, rep.RejectsFatal, rep.Compensations, rep.Rollbacks)

	// The Section 5 verifier must find the run correct under P1.
	audit := cl.Audit()
	if audit.Truncated {
		t.Logf("audit truncated at %d cycles", len(audit.Cycles))
	}
	if len(audit.LocalCycles) != 0 {
		t.Fatalf("local cycles detected: %v", audit.LocalCycles)
	}
	if audit.EffectiveCount != 0 {
		t.Fatalf("effective regular cycles under P1: %d (first: %+v)", audit.EffectiveCount, audit.Cycles[0])
	}
	if audit.DoomedCount > 0 {
		t.Logf("doomed-reader cycles (allowed, see CycleClass.Effective): %d", audit.DoomedCount)
	}
	if v := cl.CompensationViolations(); len(v) != 0 {
		t.Fatalf("atomicity-of-compensation violations under P1: %v", v)
	}
}

func TestWorkloadTwoPCBaseline(t *testing.T) {
	cl := core.NewCluster(core.Config{Sites: 4, Record: true})
	cfg := Config{
		Clients:       4,
		TxnsPerClient: 30,
		SitesPerTxn:   2,
		KeysPerSite:   64,
		ReadFrac:      0.5,
		AbortProb:     0.1,
		Protocol:      proto.TwoPC,
		Marking:       proto.MarkNone,
	}
	rep := Run(context.Background(), cl, cfg)
	if rep.Committed == 0 {
		t.Fatalf("no transactions committed")
	}
	// Without any aborted global transaction surviving uncompensated, and
	// with strict 2PL + 2PC, the history must have no regular cycles.
	audit := cl.Audit()
	if !audit.Correct() {
		t.Fatalf("2PC audit failed: local=%v regular=%d", audit.LocalCycles, audit.RegularCount)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	sites := []string{"s0", "s1", "s2"}
	g1 := NewGenerator(Config{Seed: 7, SitesPerTxn: 2}, sites)
	g2 := NewGenerator(Config{Seed: 7, SitesPerTxn: 2}, sites)
	for i := 0; i < 50; i++ {
		a, da := g1.Next()
		b, db := g2.Next()
		if a.ID != b.ID || da != db || len(a.Subtxns) != len(b.Subtxns) {
			t.Fatalf("generator diverged at %d", i)
		}
		for j := range a.Subtxns {
			if a.Subtxns[j].Site != b.Subtxns[j].Site {
				t.Fatalf("site choice diverged at txn %d sub %d", i, j)
			}
		}
	}
}
