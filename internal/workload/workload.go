// Package workload generates and drives transaction mixes against a
// cluster, producing the measurements every experiment table is built
// from.
//
// A workload is a population of global transactions (plus an optional
// stream of independent local transactions per site), with controlled
// knobs for the quantities the paper's claims depend on: data contention
// (hot-set size and hot-access probability, or a Zipf skew), the number of
// sites each transaction touches, the read/write mix, and — critically —
// the probability that a transaction is doomed to a unilateral NO vote,
// which is the axis of the optimistic-assumption crossover (experiment
// E4).
package workload

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"o2pc/internal/coord"
	"o2pc/internal/core"
	"o2pc/internal/metrics"
	"o2pc/internal/proto"
	"o2pc/internal/sim"
	"o2pc/internal/storage"
	"o2pc/internal/txn"
)

// Config parameterizes one workload run.
type Config struct {
	// Seed drives all workload randomness (deterministic by default).
	Seed int64
	// Clients is the number of concurrent client goroutines issuing
	// global transactions.
	Clients int
	// TxnsPerClient is each client's transaction count.
	TxnsPerClient int
	// SitesPerTxn is how many distinct sites each transaction touches.
	SitesPerTxn int
	// OpsPerSite is the number of operations per subtransaction.
	OpsPerSite int
	// KeysPerSite is the per-site keyspace size.
	KeysPerSite int
	// HotKeys and HotProb model contention: with probability HotProb an
	// access targets one of HotKeys hot keys, otherwise the cold range.
	// HotKeys=0 disables the hot set (uniform access).
	HotKeys int
	HotProb float64
	// ZipfS, when > 1, replaces the hot-set model with a Zipf(s) skew
	// over the keyspace.
	ZipfS float64
	// ReadFrac is the fraction of operations that are reads; the rest are
	// Add read-modify-writes.
	ReadFrac float64
	// AbortProb is the probability that a transaction is doomed: one of
	// its sites (chosen uniformly) votes NO.
	AbortProb float64
	// LocalTxnsPerSite, when > 0, runs that many independent local
	// transactions per site concurrently with the global load (autonomy
	// and E5's "local transactions are unaffected" measurement).
	LocalTxnsPerSite int
	// Protocol, Marking and Comp select the protocol stack under test.
	Protocol proto.Protocol
	Marking  proto.MarkProtocol
	Comp     proto.CompMode
	// AllowReadOnly permits subtransactions with no writes (by default
	// every subtransaction is guaranteed at least one write so aborts
	// exercise compensation at every site).
	AllowReadOnly bool
	// RealActionFrac is the fraction of subtransactions flagged CompNone
	// (real actions that retain locks even under O2PC; experiment E9).
	RealActionFrac float64
	// SeedValue is the initial value of every key (large enough that
	// AddMin never fires spuriously).
	SeedValue int64

	// Rounds, when > 1, switches clients to multi-shot sessions: each
	// "transaction" is a session of that many read/write rounds against the
	// cluster, held open across think times, then driven through the
	// ordinary commit point. Rounds <= 1 keeps the classic one-shot shape.
	Rounds int
	// ThinkTime is the client think time before each session round.
	ThinkTime time.Duration
	// BurstSize and BurstGap model flash-crowd arrival: after every
	// BurstSize transactions (or sessions) a client pauses BurstGap, so
	// clients slam the cluster in synchronized waves. BurstSize=0 disables
	// bursting (smooth arrivals).
	BurstSize int
	BurstGap  time.Duration
	// StragglerFrac is the fraction of sessions that are long-tail
	// stragglers: their think times are multiplied by StragglerFactor
	// (default 8), stretching how long their locks and marking-set entries
	// sit under everyone else's feet.
	StragglerFrac   float64
	StragglerFactor int
	// AnalyticsFrac is the fraction of sessions that are read-mostly
	// analytics scans (every operation a read), mixed in with the OLTP
	// writers drawn from ReadFrac.
	AnalyticsFrac float64
}

// withDefaults fills zero fields and clamps hostile values (negative
// counts would panic the RNG) so fuzzed configs are safe to run.
func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.TxnsPerClient <= 0 {
		c.TxnsPerClient = 50
	}
	if c.SitesPerTxn <= 0 {
		c.SitesPerTxn = 2
	}
	if c.OpsPerSite <= 0 {
		c.OpsPerSite = 2
	}
	if c.KeysPerSite <= 0 {
		c.KeysPerSite = 1024
	}
	if c.HotKeys < 0 {
		c.HotKeys = 0
	}
	if c.HotKeys > c.KeysPerSite {
		c.HotKeys = c.KeysPerSite
	}
	if c.Protocol == 0 {
		c.Protocol = proto.O2PC
	}
	if c.Comp == 0 {
		c.Comp = proto.CompSemantic
	}
	if c.SeedValue == 0 {
		c.SeedValue = 1 << 40
	}
	if c.Rounds < 0 {
		c.Rounds = 0
	}
	if c.StragglerFactor <= 0 {
		c.StragglerFactor = 8
	}
	return c
}

// Report summarizes one workload run.
type Report struct {
	Config  Config
	Elapsed time.Duration

	Committed   int64
	Aborted     int64
	MarkRetries int64

	// Throughput is committed transactions per second.
	Throughput float64
	// CommitRate is Committed / (Committed + Aborted).
	CommitRate float64

	// Latency summarizes committed-transaction latency (ms).
	Latency metrics.Summary
	// LockHoldX summarizes exclusive-lock hold times across sites (ms).
	LockHoldX metrics.Summary
	// LockWait summarizes lock wait times across sites (ms).
	LockWait metrics.Summary
	// LocalLatency summarizes local-transaction latency (ms), when local
	// load was enabled.
	LocalLatency metrics.Summary
	// Exposure summarizes O2PC exposure windows across sites (ms): local
	// commit to decision arrival, per decided subtransaction (E12).
	Exposure metrics.Summary

	Deadlocks     int64
	Compensations int64
	Rollbacks     int64
	RejectsRetry  int64
	RejectsFatal  int64
}

// String renders the headline numbers.
func (r Report) String() string {
	return fmt.Sprintf("%s/%s: %0.0f txn/s commit=%.1f%% p50=%.2fms p99=%.2fms holdX(mean)=%.3fms deadlocks=%d comps=%d",
		r.Config.Protocol, r.Config.Marking, r.Throughput, 100*r.CommitRate,
		r.Latency.P50, r.Latency.P99, r.LockHoldX.Mean, r.Deadlocks, r.Compensations)
}

// keyPicker generates per-site key choices under the configured skew.
type keyPicker struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
}

func newKeyPicker(cfg Config, rng *rand.Rand) *keyPicker {
	kp := &keyPicker{cfg: cfg, rng: rng}
	// s must be finite and > 1 for a well-defined Zipf; s <= 1 (including
	// s -> 1 from above failing NewZipf's check) falls back to the hot-set
	// model. An infinite s would make NewZipf's internals NaN out.
	if cfg.ZipfS > 1 && !math.IsInf(cfg.ZipfS, 1) {
		kp.zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.KeysPerSite-1))
	}
	return kp
}

func (kp *keyPicker) pick() int {
	if kp.zipf != nil {
		i := int(kp.zipf.Uint64())
		// rand.Zipf can overshoot imax when s is within a few ulps of 1:
		// the rejection test suffers catastrophic cancellation in 1-s.
		// Clamp into the keyspace rather than index out of range.
		if i >= kp.cfg.KeysPerSite {
			i = kp.cfg.KeysPerSite - 1
		}
		return i
	}
	if kp.cfg.HotKeys > 0 && kp.rng.Float64() < kp.cfg.HotProb {
		return kp.rng.Intn(kp.cfg.HotKeys)
	}
	return kp.rng.Intn(kp.cfg.KeysPerSite)
}

// Key returns the storage key string for index i (site-local keyspaces
// share names across sites; locality comes from the site choice).
func Key(i int) string { return fmt.Sprintf("k%05d", i) }

// Generator produces transaction specs deterministically from the seed.
type Generator struct {
	mu     sync.Mutex
	cfg    Config
	rng    *rand.Rand
	picker *keyPicker
	sites  []string
	n      int
	// keys caches the Key strings for the configured keyspace and perm is
	// the reusable site-permutation buffer: spec generation sits on the
	// benchmark's critical path, and formatting every key name (and
	// allocating a fresh permutation) per transaction shows up as a
	// measurable share of the allocation profile.
	keys []string
	perm []int
}

// NewGenerator builds a generator over the given site names.
func NewGenerator(cfg Config, sites []string) *Generator {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	keys := make([]string, cfg.KeysPerSite)
	for i := range keys {
		keys[i] = Key(i)
	}
	return &Generator{
		cfg:    cfg,
		rng:    rng,
		picker: newKeyPicker(cfg, rng),
		sites:  sites,
		keys:   keys,
		perm:   make([]int, len(sites)),
	}
}

// Next produces the next transaction spec plus, when the transaction is
// doomed, the name of the site that must vote NO.
func (g *Generator) Next() (coord.TxnSpec, string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
	id := "w" + strconv.Itoa(g.n)

	k := g.cfg.SitesPerTxn
	if k > len(g.sites) {
		k = len(g.sites)
	}
	// In-place Fisher-Yates with rand.Perm's exact draw sequence, so
	// seeded workloads are unchanged while the permutation buffer is
	// reused across calls.
	for i := 0; i < len(g.sites); i++ {
		j := g.rng.Intn(i + 1)
		g.perm[i] = g.perm[j]
		g.perm[j] = i
	}
	perm := g.perm[:k]

	spec := coord.TxnSpec{
		ID:       id,
		Protocol: g.cfg.Protocol,
		Marking:  g.cfg.Marking,
	}
	for _, si := range perm {
		ops := make([]proto.Operation, 0, g.cfg.OpsPerSite)
		wrote := false
		for j := 0; j < g.cfg.OpsPerSite; j++ {
			key := g.keys[g.picker.pick()]
			if g.rng.Float64() < g.cfg.ReadFrac {
				ops = append(ops, proto.Read(key))
			} else {
				ops = append(ops, proto.Add(key, 1))
				wrote = true
			}
		}
		if !wrote && g.cfg.ReadFrac < 1 && !g.cfg.AllowReadOnly {
			// Guarantee at least one write per subtransaction so that
			// aborts exercise compensation at every site.
			ops[len(ops)-1] = proto.Add(ops[len(ops)-1].Key, 1)
		}
		comp := g.cfg.Comp
		if g.cfg.RealActionFrac > 0 && g.rng.Float64() < g.cfg.RealActionFrac {
			comp = proto.CompNone
		}
		spec.Subtxns = append(spec.Subtxns, coord.SubtxnSpec{
			Site: g.sites[si],
			Ops:  ops,
			Comp: comp,
		})
	}

	doomSite := ""
	if g.cfg.AbortProb > 0 && g.rng.Float64() < g.cfg.AbortProb {
		doomSite = spec.Subtxns[g.rng.Intn(len(spec.Subtxns))].Site
	}
	return spec, doomSite
}

// SessionScript is one multi-shot session drawn from the generator: the
// per-round subtransaction batches, the think time preceding each round,
// and — when the session is doomed — the site that must vote NO. The whole
// script is drawn up front from the seeded RNG, so (seed, config) fixes the
// session population regardless of how clients interleave at runtime.
type SessionScript struct {
	ID     string
	Rounds [][]coord.SubtxnSpec
	// Think is the pre-round think time, one entry per round.
	Think []time.Duration
	// DoomSite, when non-empty, is the site scripted to vote NO.
	DoomSite string
	// Analytics marks a read-mostly scan session (every operation a read).
	Analytics bool
	// Straggler marks a long-tail session with stretched think times.
	Straggler bool
}

// NextSession produces the next multi-shot session script. The session
// visits SitesPerTxn distinct sites; each of Rounds rounds targets one of
// them round-robin with OpsPerSite operations, so sites revisited in later
// rounds exercise the continuation (R1 re-admission) path at the site.
func (g *Generator) NextSession() SessionScript {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
	script := SessionScript{ID: "w" + strconv.Itoa(g.n)}

	rounds := g.cfg.Rounds
	if rounds < 1 {
		rounds = 1
	}
	k := g.cfg.SitesPerTxn
	if k > len(g.sites) {
		k = len(g.sites)
	}
	for i := 0; i < len(g.sites); i++ {
		j := g.rng.Intn(i + 1)
		g.perm[i] = g.perm[j]
		g.perm[j] = i
	}
	perm := g.perm[:k]

	script.Analytics = g.cfg.AnalyticsFrac > 0 && g.rng.Float64() < g.cfg.AnalyticsFrac
	script.Straggler = g.cfg.StragglerFrac > 0 && g.rng.Float64() < g.cfg.StragglerFrac
	think := g.cfg.ThinkTime
	if script.Straggler {
		think *= time.Duration(g.cfg.StragglerFactor)
	}

	wrote := false
	for r := 0; r < rounds; r++ {
		site := g.sites[perm[r%k]]
		ops := make([]proto.Operation, 0, g.cfg.OpsPerSite)
		for j := 0; j < g.cfg.OpsPerSite; j++ {
			key := g.keys[g.picker.pick()]
			if script.Analytics || g.rng.Float64() < g.cfg.ReadFrac {
				ops = append(ops, proto.Read(key))
			} else {
				ops = append(ops, proto.Add(key, 1))
				wrote = true
			}
		}
		comp := g.cfg.Comp
		if g.cfg.RealActionFrac > 0 && g.rng.Float64() < g.cfg.RealActionFrac {
			comp = proto.CompNone
		}
		script.Rounds = append(script.Rounds, []coord.SubtxnSpec{{Site: site, Ops: ops, Comp: comp}})
		script.Think = append(script.Think, think)
	}
	if !wrote && !script.Analytics && g.cfg.ReadFrac < 1 && !g.cfg.AllowReadOnly {
		// Guarantee at least one write per OLTP session so aborts exercise
		// compensation; analytics scans stay genuinely read-only.
		last := script.Rounds[rounds-1][0].Ops
		last[len(last)-1] = proto.Add(last[len(last)-1].Key, 1)
	}

	if g.cfg.AbortProb > 0 && g.rng.Float64() < g.cfg.AbortProb {
		script.DoomSite = g.sites[perm[g.rng.Intn(k)]]
	}
	return script
}

// Run seeds the cluster, drives the configured load, and reports. All
// timing flows through the cluster's clock and every driver goroutine is
// spawned through it, so a workload over a virtual clock is fully
// explorer-deterministic: the seed (plus any fault script) determines the
// execution, and elapsed time is virtual time.
func Run(ctx context.Context, cl *core.Cluster, cfg Config) Report {
	cfg = cfg.withDefaults()
	clock := cl.Clock()
	gen := NewGenerator(cfg, cl.SiteNames())
	for i := 0; i < cfg.KeysPerSite; i++ {
		cl.SeedInt64(Key(i), cfg.SeedValue)
	}

	latency := metrics.NewHistogram()
	localLatency := metrics.NewHistogram()
	var committed, aborted, markRetries metrics.Counter

	// Driver goroutines go through clock.Go so a virtual clock can track
	// them, and the join below polls a completion count instead of blocking
	// on the WaitGroup (which would stall virtual time).
	start := clock.Now()
	var wg sync.WaitGroup
	var finished, launched atomic.Int64
	spawn := func(fn func()) {
		launched.Add(1)
		wg.Add(1)
		clock.Go(func() {
			defer wg.Done()
			defer finished.Add(1)
			fn()
		})
	}
	// burstPause stalls the client between arrival waves: after every
	// BurstSize transactions all clients sleep BurstGap together (same
	// schedule, same clock), so load arrives as synchronized flash crowds.
	burstPause := func(ctx context.Context, i int) {
		if cfg.BurstSize > 0 && cfg.BurstGap > 0 && (i+1)%cfg.BurstSize == 0 {
			//o2pcvet:ignore errflow -- a dead context just skips the burst gap; the client loop checks ctx itself
			_ = clock.Sleep(ctx, cfg.BurstGap)
		}
	}
	record := func(res coord.Result) {
		markRetries.Add(int64(res.MarkRetries))
		if res.Committed() {
			committed.Inc()
			latency.ObserveDuration(res.Latency)
		} else {
			aborted.Inc()
		}
	}
	for c := 0; c < cfg.Clients; c++ {
		client := c
		spawn(func() {
			nCoords := len(cl.Coordinators())
			for i := 0; i < cfg.TxnsPerClient; i++ {
				if cfg.Rounds > 1 {
					script := gen.NextSession()
					record(runSession(ctx, cl, clock, client%nCoords, cfg, script))
				} else {
					spec, doomSite := gen.Next()
					if doomSite != "" {
						cl.DoomAtSite(spec.ID, doomSite)
					}
					record(cl.RunAt(ctx, client%nCoords, spec))
				}
				if ctx.Err() != nil {
					return
				}
				burstPause(ctx, i)
			}
		})
	}

	// Optional concurrent local load, measured separately.
	if cfg.LocalTxnsPerSite > 0 {
		for si := range cl.Sites() {
			si := si
			spawn(func() {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(si) + 1000))
				picker := newKeyPicker(cfg, rng)
				for i := 0; i < cfg.LocalTxnsPerSite; i++ {
					key := storage.Key(Key(picker.pick()))
					t0 := clock.Now()
					err := cl.RunLocal(ctx, si, func(t *txn.Txn) error {
						v, err := t.ReadInt64ForUpdate(ctx, key)
						if err != nil {
							return err
						}
						return t.WriteInt64(ctx, key, v+1)
					})
					if err == nil {
						localLatency.ObserveDuration(clock.Since(t0))
					}
					if ctx.Err() != nil {
						return
					}
				}
			})
		}
	}
	clock.Join(wg.Wait, func() bool { return finished.Load() == launched.Load() })
	elapsed := clock.Since(start)

	// Allow outstanding compensations to settle before collecting stats.
	qctx, cancel := clock.WithTimeout(context.Background(), 10*time.Second)
	//o2pcvet:ignore errflow -- best-effort settling bounded by the timeout; the report reflects whatever state was reached
	_ = cl.Quiesce(qctx)
	cancel()

	return buildReport(cl, cfg, elapsed, committed.Value(), aborted.Value(),
		markRetries.Value(), latency, localLatency)
}

// runSession drives one multi-shot session script: open, think + round per
// entry, then the commit point. A round failure settles the session inside
// Round, so Commit afterwards just reports the stored abort.
func runSession(ctx context.Context, cl *core.Cluster, clock sim.Clock,
	coordIdx int, cfg Config, script SessionScript) coord.Result {

	if script.DoomSite != "" {
		cl.DoomAtSite(script.ID, script.DoomSite)
	}
	sess, err := cl.OpenSessionAt(coordIdx, coord.SessionSpec{
		ID: script.ID, Protocol: cfg.Protocol, Marking: cfg.Marking,
	})
	if err != nil {
		return coord.Result{ID: script.ID, Outcome: coord.AbortedCoordinator, Err: err}
	}
	for r, round := range script.Rounds {
		if script.Think[r] > 0 {
			if clock.Sleep(ctx, script.Think[r]) != nil {
				return sess.Abort(ctx)
			}
		}
		if _, err := sess.Round(ctx, round); err != nil {
			break
		}
	}
	return sess.Commit(ctx)
}

func buildReport(cl *core.Cluster, cfg Config, elapsed time.Duration,
	committed, aborted, markRetries int64, latency, localLatency *metrics.Histogram) Report {

	r := Report{
		Config:      cfg,
		Elapsed:     elapsed,
		Committed:   committed,
		Aborted:     aborted,
		MarkRetries: markRetries,
		Latency:     latency.Snapshot(),
	}
	if total := committed + aborted; total > 0 {
		r.CommitRate = float64(committed) / float64(total)
	}
	if elapsed > 0 {
		r.Throughput = float64(committed) / elapsed.Seconds()
	}
	r.LocalLatency = localLatency.Snapshot()

	holdX := metrics.NewHistogram()
	waits := metrics.NewHistogram()
	exposure := metrics.NewHistogram()
	for _, s := range cl.Sites() {
		ls := s.Manager().Locks().Stats()
		mergeHistogram(holdX, ls.HoldTimeX)
		mergeHistogram(waits, ls.WaitTime)
		r.Deadlocks += ls.Deadlocks.Value()
		st := s.Stats()
		mergeHistogram(exposure, st.ExposureDuration)
		r.Compensations += st.Compensations.Value()
		r.Rollbacks += st.Rollbacks.Value()
		r.RejectsRetry += st.RejectsRetry.Value()
		r.RejectsFatal += st.RejectsFatal.Value()
	}
	r.LockHoldX = holdX.Snapshot()
	r.LockWait = waits.Snapshot()
	r.Exposure = exposure.Snapshot()
	return r
}

// mergeHistogram folds src's quantile structure into dst by sampling its
// snapshot; exact merging is unnecessary for reporting, so we transfer the
// raw samples via quantile stratification when counts are large and copy
// the summary moments otherwise.
func mergeHistogram(dst, src *metrics.Histogram) {
	n := src.Count()
	if n == 0 {
		return
	}
	// Transfer a quantile-stratified sample bounded at 4096 points per
	// source histogram to keep report building cheap.
	samples := 4096
	if n < samples {
		samples = n
	}
	for i := 0; i < samples; i++ {
		q := (float64(i) + 0.5) / float64(samples)
		dst.Observe(src.Quantile(q))
	}
}
