// Package workload generates and drives transaction mixes against a
// cluster, producing the measurements every experiment table is built
// from.
//
// A workload is a population of global transactions (plus an optional
// stream of independent local transactions per site), with controlled
// knobs for the quantities the paper's claims depend on: data contention
// (hot-set size and hot-access probability, or a Zipf skew), the number of
// sites each transaction touches, the read/write mix, and — critically —
// the probability that a transaction is doomed to a unilateral NO vote,
// which is the axis of the optimistic-assumption crossover (experiment
// E4).
package workload

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"o2pc/internal/coord"
	"o2pc/internal/core"
	"o2pc/internal/metrics"
	"o2pc/internal/proto"
	"o2pc/internal/storage"
	"o2pc/internal/txn"
)

// Config parameterizes one workload run.
type Config struct {
	// Seed drives all workload randomness (deterministic by default).
	Seed int64
	// Clients is the number of concurrent client goroutines issuing
	// global transactions.
	Clients int
	// TxnsPerClient is each client's transaction count.
	TxnsPerClient int
	// SitesPerTxn is how many distinct sites each transaction touches.
	SitesPerTxn int
	// OpsPerSite is the number of operations per subtransaction.
	OpsPerSite int
	// KeysPerSite is the per-site keyspace size.
	KeysPerSite int
	// HotKeys and HotProb model contention: with probability HotProb an
	// access targets one of HotKeys hot keys, otherwise the cold range.
	// HotKeys=0 disables the hot set (uniform access).
	HotKeys int
	HotProb float64
	// ZipfS, when > 1, replaces the hot-set model with a Zipf(s) skew
	// over the keyspace.
	ZipfS float64
	// ReadFrac is the fraction of operations that are reads; the rest are
	// Add read-modify-writes.
	ReadFrac float64
	// AbortProb is the probability that a transaction is doomed: one of
	// its sites (chosen uniformly) votes NO.
	AbortProb float64
	// LocalTxnsPerSite, when > 0, runs that many independent local
	// transactions per site concurrently with the global load (autonomy
	// and E5's "local transactions are unaffected" measurement).
	LocalTxnsPerSite int
	// Protocol, Marking and Comp select the protocol stack under test.
	Protocol proto.Protocol
	Marking  proto.MarkProtocol
	Comp     proto.CompMode
	// AllowReadOnly permits subtransactions with no writes (by default
	// every subtransaction is guaranteed at least one write so aborts
	// exercise compensation at every site).
	AllowReadOnly bool
	// RealActionFrac is the fraction of subtransactions flagged CompNone
	// (real actions that retain locks even under O2PC; experiment E9).
	RealActionFrac float64
	// SeedValue is the initial value of every key (large enough that
	// AddMin never fires spuriously).
	SeedValue int64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.TxnsPerClient == 0 {
		c.TxnsPerClient = 50
	}
	if c.SitesPerTxn == 0 {
		c.SitesPerTxn = 2
	}
	if c.OpsPerSite == 0 {
		c.OpsPerSite = 2
	}
	if c.KeysPerSite == 0 {
		c.KeysPerSite = 1024
	}
	if c.Protocol == 0 {
		c.Protocol = proto.O2PC
	}
	if c.Comp == 0 {
		c.Comp = proto.CompSemantic
	}
	if c.SeedValue == 0 {
		c.SeedValue = 1 << 40
	}
	return c
}

// Report summarizes one workload run.
type Report struct {
	Config  Config
	Elapsed time.Duration

	Committed   int64
	Aborted     int64
	MarkRetries int64

	// Throughput is committed transactions per second.
	Throughput float64
	// CommitRate is Committed / (Committed + Aborted).
	CommitRate float64

	// Latency summarizes committed-transaction latency (ms).
	Latency metrics.Summary
	// LockHoldX summarizes exclusive-lock hold times across sites (ms).
	LockHoldX metrics.Summary
	// LockWait summarizes lock wait times across sites (ms).
	LockWait metrics.Summary
	// LocalLatency summarizes local-transaction latency (ms), when local
	// load was enabled.
	LocalLatency metrics.Summary

	Deadlocks     int64
	Compensations int64
	Rollbacks     int64
	RejectsRetry  int64
	RejectsFatal  int64
}

// String renders the headline numbers.
func (r Report) String() string {
	return fmt.Sprintf("%s/%s: %0.0f txn/s commit=%.1f%% p50=%.2fms p99=%.2fms holdX(mean)=%.3fms deadlocks=%d comps=%d",
		r.Config.Protocol, r.Config.Marking, r.Throughput, 100*r.CommitRate,
		r.Latency.P50, r.Latency.P99, r.LockHoldX.Mean, r.Deadlocks, r.Compensations)
}

// keyPicker generates per-site key choices under the configured skew.
type keyPicker struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
}

func newKeyPicker(cfg Config, rng *rand.Rand) *keyPicker {
	kp := &keyPicker{cfg: cfg, rng: rng}
	if cfg.ZipfS > 1 {
		kp.zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.KeysPerSite-1))
	}
	return kp
}

func (kp *keyPicker) pick() int {
	if kp.zipf != nil {
		return int(kp.zipf.Uint64())
	}
	if kp.cfg.HotKeys > 0 && kp.rng.Float64() < kp.cfg.HotProb {
		return kp.rng.Intn(kp.cfg.HotKeys)
	}
	return kp.rng.Intn(kp.cfg.KeysPerSite)
}

// Key returns the storage key string for index i (site-local keyspaces
// share names across sites; locality comes from the site choice).
func Key(i int) string { return fmt.Sprintf("k%05d", i) }

// Generator produces transaction specs deterministically from the seed.
type Generator struct {
	mu     sync.Mutex
	cfg    Config
	rng    *rand.Rand
	picker *keyPicker
	sites  []string
	n      int
	// keys caches the Key strings for the configured keyspace and perm is
	// the reusable site-permutation buffer: spec generation sits on the
	// benchmark's critical path, and formatting every key name (and
	// allocating a fresh permutation) per transaction shows up as a
	// measurable share of the allocation profile.
	keys []string
	perm []int
}

// NewGenerator builds a generator over the given site names.
func NewGenerator(cfg Config, sites []string) *Generator {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	keys := make([]string, cfg.KeysPerSite)
	for i := range keys {
		keys[i] = Key(i)
	}
	return &Generator{
		cfg:    cfg,
		rng:    rng,
		picker: newKeyPicker(cfg, rng),
		sites:  sites,
		keys:   keys,
		perm:   make([]int, len(sites)),
	}
}

// Next produces the next transaction spec plus, when the transaction is
// doomed, the name of the site that must vote NO.
func (g *Generator) Next() (coord.TxnSpec, string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
	id := "w" + strconv.Itoa(g.n)

	k := g.cfg.SitesPerTxn
	if k > len(g.sites) {
		k = len(g.sites)
	}
	// In-place Fisher-Yates with rand.Perm's exact draw sequence, so
	// seeded workloads are unchanged while the permutation buffer is
	// reused across calls.
	for i := 0; i < len(g.sites); i++ {
		j := g.rng.Intn(i + 1)
		g.perm[i] = g.perm[j]
		g.perm[j] = i
	}
	perm := g.perm[:k]

	spec := coord.TxnSpec{
		ID:       id,
		Protocol: g.cfg.Protocol,
		Marking:  g.cfg.Marking,
	}
	for _, si := range perm {
		ops := make([]proto.Operation, 0, g.cfg.OpsPerSite)
		wrote := false
		for j := 0; j < g.cfg.OpsPerSite; j++ {
			key := g.keys[g.picker.pick()]
			if g.rng.Float64() < g.cfg.ReadFrac {
				ops = append(ops, proto.Read(key))
			} else {
				ops = append(ops, proto.Add(key, 1))
				wrote = true
			}
		}
		if !wrote && g.cfg.ReadFrac < 1 && !g.cfg.AllowReadOnly {
			// Guarantee at least one write per subtransaction so that
			// aborts exercise compensation at every site.
			ops[len(ops)-1] = proto.Add(ops[len(ops)-1].Key, 1)
		}
		comp := g.cfg.Comp
		if g.cfg.RealActionFrac > 0 && g.rng.Float64() < g.cfg.RealActionFrac {
			comp = proto.CompNone
		}
		spec.Subtxns = append(spec.Subtxns, coord.SubtxnSpec{
			Site: g.sites[si],
			Ops:  ops,
			Comp: comp,
		})
	}

	doomSite := ""
	if g.cfg.AbortProb > 0 && g.rng.Float64() < g.cfg.AbortProb {
		doomSite = spec.Subtxns[g.rng.Intn(len(spec.Subtxns))].Site
	}
	return spec, doomSite
}

// Run seeds the cluster, drives the configured load, and reports. All
// timing flows through the cluster's clock and every driver goroutine is
// spawned through it, so a workload over a virtual clock is fully
// explorer-deterministic: the seed (plus any fault script) determines the
// execution, and elapsed time is virtual time.
func Run(ctx context.Context, cl *core.Cluster, cfg Config) Report {
	cfg = cfg.withDefaults()
	clock := cl.Clock()
	gen := NewGenerator(cfg, cl.SiteNames())
	for i := 0; i < cfg.KeysPerSite; i++ {
		cl.SeedInt64(Key(i), cfg.SeedValue)
	}

	latency := metrics.NewHistogram()
	localLatency := metrics.NewHistogram()
	var committed, aborted, markRetries metrics.Counter

	// Driver goroutines go through clock.Go so a virtual clock can track
	// them, and the join below polls a completion count instead of blocking
	// on the WaitGroup (which would stall virtual time).
	start := clock.Now()
	var wg sync.WaitGroup
	var finished, launched atomic.Int64
	spawn := func(fn func()) {
		launched.Add(1)
		wg.Add(1)
		clock.Go(func() {
			defer wg.Done()
			defer finished.Add(1)
			fn()
		})
	}
	for c := 0; c < cfg.Clients; c++ {
		client := c
		spawn(func() {
			nCoords := len(cl.Coordinators())
			for i := 0; i < cfg.TxnsPerClient; i++ {
				spec, doomSite := gen.Next()
				if doomSite != "" {
					cl.DoomAtSite(spec.ID, doomSite)
				}
				res := cl.RunAt(ctx, client%nCoords, spec)
				markRetries.Add(int64(res.MarkRetries))
				if res.Committed() {
					committed.Inc()
					latency.ObserveDuration(res.Latency)
				} else {
					aborted.Inc()
				}
				if ctx.Err() != nil {
					return
				}
			}
		})
	}

	// Optional concurrent local load, measured separately.
	if cfg.LocalTxnsPerSite > 0 {
		for si := range cl.Sites() {
			si := si
			spawn(func() {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(si) + 1000))
				picker := newKeyPicker(cfg, rng)
				for i := 0; i < cfg.LocalTxnsPerSite; i++ {
					key := storage.Key(Key(picker.pick()))
					t0 := clock.Now()
					err := cl.RunLocal(ctx, si, func(t *txn.Txn) error {
						v, err := t.ReadInt64ForUpdate(ctx, key)
						if err != nil {
							return err
						}
						return t.WriteInt64(ctx, key, v+1)
					})
					if err == nil {
						localLatency.ObserveDuration(clock.Since(t0))
					}
					if ctx.Err() != nil {
						return
					}
				}
			})
		}
	}
	clock.Join(wg.Wait, func() bool { return finished.Load() == launched.Load() })
	elapsed := clock.Since(start)

	// Allow outstanding compensations to settle before collecting stats.
	qctx, cancel := clock.WithTimeout(context.Background(), 10*time.Second)
	_ = cl.Quiesce(qctx)
	cancel()

	return buildReport(cl, cfg, elapsed, committed.Value(), aborted.Value(),
		markRetries.Value(), latency, localLatency)
}

func buildReport(cl *core.Cluster, cfg Config, elapsed time.Duration,
	committed, aborted, markRetries int64, latency, localLatency *metrics.Histogram) Report {

	r := Report{
		Config:      cfg,
		Elapsed:     elapsed,
		Committed:   committed,
		Aborted:     aborted,
		MarkRetries: markRetries,
		Latency:     latency.Snapshot(),
	}
	if total := committed + aborted; total > 0 {
		r.CommitRate = float64(committed) / float64(total)
	}
	if elapsed > 0 {
		r.Throughput = float64(committed) / elapsed.Seconds()
	}
	r.LocalLatency = localLatency.Snapshot()

	holdX := metrics.NewHistogram()
	waits := metrics.NewHistogram()
	for _, s := range cl.Sites() {
		ls := s.Manager().Locks().Stats()
		mergeHistogram(holdX, ls.HoldTimeX)
		mergeHistogram(waits, ls.WaitTime)
		r.Deadlocks += ls.Deadlocks.Value()
		st := s.Stats()
		r.Compensations += st.Compensations.Value()
		r.Rollbacks += st.Rollbacks.Value()
		r.RejectsRetry += st.RejectsRetry.Value()
		r.RejectsFatal += st.RejectsFatal.Value()
	}
	r.LockHoldX = holdX.Snapshot()
	r.LockWait = waits.Snapshot()
	return r
}

// mergeHistogram folds src's quantile structure into dst by sampling its
// snapshot; exact merging is unnecessary for reporting, so we transfer the
// raw samples via quantile stratification when counts are large and copy
// the summary moments otherwise.
func mergeHistogram(dst, src *metrics.Histogram) {
	n := src.Count()
	if n == 0 {
		return
	}
	// Transfer a quantile-stratified sample bounded at 4096 points per
	// source histogram to keep report building cheap.
	samples := 4096
	if n < samples {
		samples = n
	}
	for i := 0; i < samples; i++ {
		q := (float64(i) + 0.5) / float64(samples)
		dst.Observe(src.Quantile(q))
	}
}
