package sim

import (
	"context"
	"sync"
)

// Pool is a bounded worker pool for protocol fan-out. The per-phase
// pattern everywhere in the commit path is "spawn one goroutine per
// site, join" — correct, but at high concurrency the spawns dominate the
// profile: every goroutine starts on a small stack and grows it through
// the WAL/lock call chain (runtime newstack/copystack), then dies. A Pool
// keeps at most size long-lived workers whose stacks stay grown, and runs
// the same closures on them.
//
// Determinism: workers are tracked goroutines (spawned via Clock.Go), park
// under BlockOn, and are woken through PrepareWake claim tokens, so under
// a VirtualClock dispatch follows the same baton discipline as direct
// spawning — idle workers are reused LIFO and overflow tasks queue FIFO,
// both orders functions of the submission schedule alone. Same-seed runs
// with a pool produce byte-identical traces (pinned by the explorer golden
// test with ExecWorkers enabled). Under the real clock the workers park in
// a plain channel receive instead: the claim discipline exists only for
// virtual time, and allocating its closures per park showed up in the
// contended allocation profile.
//
// Submission never blocks: a saturated pool queues the task for the next
// free worker. Tasks that park for long stretches occupy their worker for
// the duration, so size pools generously relative to worst-case
// simultaneous blockers; the commit path's joins still complete because
// queued tasks run as soon as any worker frees. Work that can block
// UNBOUNDEDLY (decision delivery retrying against a crashed site) must not
// be pooled at all — see coord.Config.ExecWorkers.
type Pool struct {
	clock Clock
	size  int
	real  bool // clock is the real clock: skip the baton discipline

	mu      sync.Mutex
	idle    []*poolWorker // parked workers, woken LIFO
	queue   []poolTask    // overflow tasks, run FIFO
	spawned int
	closed  bool
}

// poolTask is one unit of pooled work: fn, optionally joined to a Group
// (entered by the submitter, exited by the worker). A zero task (nil fn)
// shuts the receiving worker down.
type poolTask struct {
	g  *Group
	fn func()
}

// run executes the task, releasing its Group membership even on panic.
func (t poolTask) run() {
	if t.g != nil {
		defer t.g.exit()
	}
	t.fn()
}

// poolWorker is one parked worker awaiting a task.
type poolWorker struct {
	task chan poolTask // buffered(1)
	// claim is the submitter's PrepareWake reservation, installed before
	// the send on task and consumed by the worker's BlockOn (virtual
	// clock only).
	claim func()
}

// NewPool returns a pool of at most size workers drawing time from clock
// (nil defaults to the real clock). Workers spawn lazily on demand and
// live until Close.
func NewPool(clock Clock, size int) *Pool {
	if size < 1 {
		size = 1
	}
	clock = OrReal(clock)
	_, real := clock.(realClock)
	return &Pool{clock: clock, size: size, real: real}
}

// Size reports the worker bound.
func (p *Pool) Size() int { return p.size }

// Go runs fn on a pool worker as a member of g, exactly like g.Go(fn)
// but without the per-call goroutine: g.Wait still joins it, and fn still
// counts against g for the virtual clock's completion predicate. The
// fallback g.Go path is what a nil Pool gives — see Spawn.
func (p *Pool) Go(g *Group, fn func()) {
	g.enter()
	p.submit(poolTask{g: g, fn: fn})
}

// Run executes task on a pool worker: an idle worker if one is parked, a
// fresh worker while under the size bound, else the FIFO overflow queue.
// It never blocks the caller.
func (p *Pool) Run(task func()) {
	p.submit(poolTask{fn: task})
}

func (p *Pool) submit(t poolTask) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		w := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		if !p.real {
			w.claim = p.clock.PrepareWake()
		}
		w.task <- t
		return
	}
	if p.closed {
		// Closed pools degrade to plain spawning so late stragglers (a
		// retry goroutine racing teardown) still run rather than queue
		// forever.
		p.mu.Unlock()
		//o2pcvet:ignore goleak -- the task is the caller's own closure; it runs to completion exactly as it would have on the caller's goroutine
		p.clock.Go(t.run)
		return
	}
	if p.spawned < p.size {
		p.spawned++
		p.mu.Unlock()
		//o2pcvet:ignore goleak -- workers park until Close; every Pool owner closes it on teardown
		p.clock.Go(func() { p.worker(t) })
		return
	}
	p.queue = append(p.queue, t)
	p.mu.Unlock()
}

// worker runs task, then drains the overflow queue, then parks awaiting
// the next hand-off; a zero hand-off (Close) ends it.
func (p *Pool) worker(task poolTask) {
	for {
		task.run()
		p.mu.Lock()
		if len(p.queue) > 0 {
			task = p.queue[0]
			p.queue[0] = poolTask{}
			p.queue = p.queue[1:]
			p.mu.Unlock()
			continue
		}
		if p.closed {
			p.spawned--
			p.mu.Unlock()
			return
		}
		w := &poolWorker{task: make(chan poolTask, 1)}
		p.idle = append(p.idle, w)
		p.mu.Unlock()
		var next poolTask
		if p.real {
			next = <-w.task
		} else {
			p.clock.BlockOn(context.Background(), func() func() {
				next = <-w.task
				return w.claim
			})
		}
		if next.fn == nil {
			p.mu.Lock()
			p.spawned--
			p.mu.Unlock()
			return
		}
		task = next
	}
}

// Close shuts the pool down: parked workers exit now, busy workers exit
// after finishing their current task (and any queued overflow). Close is
// idempotent; tasks submitted after it run as plain spawned goroutines.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, w := range idle {
		if !p.real {
			w.claim = p.clock.PrepareWake()
		}
		w.task <- poolTask{}
	}
}

// Spawn is the polymorphic entry the commit path uses: pool the work when
// a Pool is configured, fall back to a per-task goroutine otherwise. It
// keeps call sites free of nil checks.
func (p *Pool) Spawn(g *Group, fn func()) {
	if p == nil {
		g.Go(fn)
		return
	}
	p.Go(g, fn)
}
