package sim

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunsEverythingWithinBound checks the basic contract under the
// real clock: every submitted task runs exactly once, concurrency never
// exceeds the bound, and Group.Wait joins pooled members.
func TestPoolRunsEverythingWithinBound(t *testing.T) {
	const size, tasks = 4, 200
	p := NewPool(nil, size)
	defer p.Close()
	var running, peak, done atomic.Int64
	g := NewGroup(nil)
	for i := 0; i < tasks; i++ {
		p.Go(g, func() {
			n := running.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(100 * time.Microsecond)
			running.Add(-1)
			done.Add(1)
		})
	}
	g.Wait()
	if done.Load() != tasks {
		t.Fatalf("done = %d, want %d", done.Load(), tasks)
	}
	if peak.Load() > size {
		t.Fatalf("peak concurrency %d exceeds pool size %d", peak.Load(), size)
	}
}

// TestPoolDeterministicUnderVirtualClock runs the same schedule twice on
// virtual clocks and requires an identical execution order and elapsed
// time — the property that lets the commit path adopt pooling without
// perturbing explorer golden traces.
func TestPoolDeterministicUnderVirtualClock(t *testing.T) {
	run := func() (string, time.Duration) {
		clock := NewVirtualClock()
		p := NewPool(clock, 3)
		var mu sync.Mutex
		var order []string
		g := NewGroup(clock)
		for i := 0; i < 12; i++ {
			i := i
			p.Go(g, func() {
				// Stagger in virtual time so workers park and wake between
				// tasks, exercising the hand-off path, not just the queue.
				_ = clock.Sleep(context.Background(), time.Duration(i%4+1)*10*time.Microsecond)
				mu.Lock()
				order = append(order, fmt.Sprintf("t%d", i))
				mu.Unlock()
			})
		}
		g.Wait()
		p.Close()
		return fmt.Sprint(order), clock.Elapsed()
	}
	o1, e1 := run()
	o2, e2 := run()
	if o1 != o2 || e1 != e2 {
		t.Fatalf("runs differ:\n%s (%v)\nvs\n%s (%v)", o1, e1, o2, e2)
	}
}

// TestPoolWorkerReuse checks that the pool actually reuses workers: no
// more distinct goroutines serve the tasks than the pool size.
func TestPoolWorkerReuse(t *testing.T) {
	clock := NewVirtualClock()
	p := NewPool(clock, 2)
	workers := make(map[string]int) // goroutine id -> tasks served
	var mu sync.Mutex
	g := NewGroup(clock)
	for i := 0; i < 40; i++ {
		p.Go(g, func() {
			id := goroutineID()
			mu.Lock()
			workers[id]++
			mu.Unlock()
		})
	}
	g.Wait()
	p.Close()
	if len(workers) > 2 {
		t.Fatalf("%d distinct workers served tasks, want <= pool size 2", len(workers))
	}
	total := 0
	for _, n := range workers {
		total += n
	}
	if total != 40 {
		t.Fatalf("tasks served = %d, want 40", total)
	}
}

// TestPoolCloseThenRun checks that a closed pool still runs stragglers
// (degraded to plain goroutines) instead of stranding them.
func TestPoolCloseThenRun(t *testing.T) {
	clock := NewVirtualClock()
	p := NewPool(clock, 2)
	g := NewGroup(clock)
	var ran atomic.Bool
	p.Go(g, func() {})
	g.Wait()
	p.Close()
	g2 := NewGroup(clock)
	p.Go(g2, func() { ran.Store(true) })
	g2.Wait()
	if !ran.Load() {
		t.Fatal("task after Close never ran")
	}
}

// TestPoolSpawnNilFallsBack checks the nil-pool convenience path.
func TestPoolSpawnNilFallsBack(t *testing.T) {
	var p *Pool
	g := NewGroup(nil)
	var ran atomic.Bool
	p.Spawn(g, func() { ran.Store(true) })
	g.Wait()
	if !ran.Load() {
		t.Fatal("nil-pool Spawn never ran the task")
	}
}

// goroutineID extracts the current goroutine's id from its stack header
// ("goroutine 17 [running]:") — a test-only identity probe.
func goroutineID() string {
	buf := make([]byte, 64)
	buf = buf[:runtime.Stack(buf, false)]
	fields := strings.Fields(string(buf))
	if len(fields) < 2 {
		return string(buf)
	}
	return fields[1]
}
