package sim

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestVirtualSleepOrdering checks that sleepers wake in deadline order and
// that virtual time jumps instead of elapsing.
func TestVirtualSleepOrdering(t *testing.T) {
	c := NewVirtualClock()
	start := c.Now()

	var mu sync.Mutex
	var order []int
	g := NewGroup(c)
	for _, d := range []struct {
		id    int
		delay time.Duration
	}{
		{3, 30 * time.Second},
		{1, 10 * time.Second},
		{2, 20 * time.Second},
	} {
		d := d
		g.Go(func() {
			if err := c.Sleep(context.Background(), d.delay); err != nil {
				t.Errorf("sleep %d: %v", d.id, err)
			}
			mu.Lock()
			order = append(order, d.id)
			mu.Unlock()
		})
	}
	g.Wait()

	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wake order = %v, want [1 2 3]", order)
	}
	if el := c.Since(start); el < 30*time.Second {
		t.Fatalf("virtual time advanced only %v, want >= 30s", el)
	}
}

// TestVirtualTieBreak checks that equal deadlines fire in arming order.
func TestVirtualTieBreak(t *testing.T) {
	c := NewVirtualClock()
	var order []int
	var mu sync.Mutex
	g := NewGroup(c)
	for i := 0; i < 5; i++ {
		i := i
		g.Go(func() {
			// Stagger arming deterministically: each goroutine first sleeps
			// i microseconds, then arms the shared 1s deadline.
			_ = c.Sleep(context.Background(), time.Duration(i+1)*time.Microsecond)
			_ = c.Sleep(context.Background(), time.Second)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	g.Wait()
	for i, id := range order {
		if id != i {
			t.Fatalf("tie-break order = %v, want [0 1 2 3 4]", order)
		}
	}
}

// TestWithTimeoutFires checks that a virtual deadline cancels its context
// and unblocks a sleeper through it.
func TestWithTimeoutFires(t *testing.T) {
	c := NewVirtualClock()
	ctx, cancel := c.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Sleep(ctx, time.Hour); err != context.Canceled {
		t.Fatalf("Sleep returned %v, want context.Canceled", err)
	}
	if el := c.Elapsed(); el != 5*time.Second {
		t.Fatalf("elapsed = %v, want exactly 5s", el)
	}
}

// TestWithTimeoutCancelStopsTimer checks that cancelling early removes the
// deadline so time does not jump to it.
func TestWithTimeoutCancelStopsTimer(t *testing.T) {
	c := NewVirtualClock()
	_, cancel := c.WithTimeout(context.Background(), time.Hour)
	cancel()
	if err := c.Sleep(context.Background(), time.Second); err != nil {
		t.Fatalf("sleep: %v", err)
	}
	if el := c.Elapsed(); el != time.Second {
		t.Fatalf("elapsed = %v, want 1s (stopped deadline must not fire)", el)
	}
}

// TestBlockOnHandoff models the lock-grant pattern: a waiter blocks on a
// channel outside the clock, the waker reserves the wake-up before sending.
func TestBlockOnHandoff(t *testing.T) {
	c := NewVirtualClock()
	ch := make(chan func(), 1)
	var got atomic.Bool
	g := NewGroup(c)
	g.Go(func() {
		c.BlockOn(context.Background(), func() func() { return <-ch })
		got.Store(true)
	})
	g.Go(func() {
		_ = c.Sleep(context.Background(), time.Minute)
		ch <- c.PrepareWake()
	})
	g.Wait()
	if !got.Load() {
		t.Fatal("waiter never resumed")
	}
}

// TestGroupWaitRealClock checks Group against the real clock too.
func TestGroupWaitRealClock(t *testing.T) {
	g := NewGroup(nil)
	var n atomic.Int64
	for i := 0; i < 8; i++ {
		g.Go(func() { n.Add(1) })
	}
	g.Wait()
	if n.Load() != 8 {
		t.Fatalf("ran %d goroutines, want 8", n.Load())
	}
}

// TestDeterministicInterleaving runs a small scripted concurrent workload
// twice and requires the identical event order.
func TestDeterministicInterleaving(t *testing.T) {
	run := func() []int {
		c := NewVirtualClock()
		var mu sync.Mutex
		var log []int
		g := NewGroup(c)
		for i := 0; i < 6; i++ {
			i := i
			g.Go(func() {
				for k := 0; k < 4; k++ {
					_ = c.Sleep(context.Background(), time.Duration((i+1)*(k+1))*time.Millisecond)
					mu.Lock()
					log = append(log, i*10+k)
					mu.Unlock()
				}
			})
		}
		g.Wait()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a, b)
		}
	}
}
