// Package sim provides the virtual-time scheduler behind the deterministic
// simulation harness: a Clock abstraction that the transport, sites,
// coordinators and compensation framework all draw their time from, a
// trivial real-time implementation, and VirtualClock (virtual.go), which
// executes an entire cluster run — timeouts, retry backoffs, network
// latencies, crash/recovery scripts — in logical time with zero real
// sleeping, so that a seeded execution is fast and replayable.
//
// The discipline VirtualClock imposes is cooperative: every goroutine that
// participates in a simulated run must be spawned through Clock.Go (or
// Group.Go), must sleep and arm timeouts only through the Clock, and must
// flag waits on non-clock synchronization (channels, mutexes held across
// virtual sleeps) with BlockOn. In exchange, virtual time only advances
// when every tracked goroutine is blocked, one timer fires per advance, and
// the interleaving of a run is (modulo benign scheduler races on
// independent state) a function of the seed alone.
package sim

import (
	"context"
	"time"
)

// Clock abstracts the passage of time for a cluster. The zero/nil Clock is
// not usable; use Real() or NewVirtualClock(), or OrReal to default.
type Clock interface {
	// Now returns the current (real or virtual) time.
	Now() time.Time
	// Since returns the time elapsed since t.
	Since(t time.Time) time.Duration
	// Sleep pauses the calling goroutine for d, returning early with
	// ctx.Err() if ctx is cancelled first. d <= 0 returns immediately.
	Sleep(ctx context.Context, d time.Duration) error
	// WithTimeout derives a context cancelled after d has elapsed on this
	// clock (or when the returned CancelFunc runs, whichever is first).
	WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc)
	// Go spawns fn as a tracked goroutine. Under a virtual clock every
	// goroutine that uses the clock MUST be spawned this way (or be the
	// goroutine that created the clock): the clock advances only when all
	// tracked goroutines are blocked.
	Go(fn func())
	// Join waits for a set of tracked goroutines to finish. wait is a
	// blocking join (e.g. WaitGroup.Wait) used by the real clock; done is a
	// non-blocking completion predicate polled in virtual time by the
	// virtual clock. Group packages the pattern.
	Join(wait func(), done func() bool)
	// BlockOn runs wait(), which blocks on synchronization outside the
	// clock's knowledge (a channel receive whose sender may be sleeping in
	// virtual time). The virtual clock parks the caller for the duration so
	// the wait cannot stall time. wait returns the claim token it received
	// from the waker's PrepareWake (nil if it was released another way);
	// the clock consumes it once the caller is accounted for again. If
	// wait can be unblocked by ctx's cancellation, ctx must be the context
	// it selects on, so a deadline expiry reserves the wake
	// deterministically; pass context.Background() when wait is only
	// released by a PrepareWake'd hand-off.
	BlockOn(ctx context.Context, wait func() func())
	// PrepareWake reserves a wake-up for a goroutine about to be unblocked
	// through a non-clock channel (e.g. a lock grant): until the returned
	// claim function is called by the wakee, virtual time will not advance.
	// This closes the gap between the waker's send and the wakee resuming.
	// The real clock returns nil (no reservation needed).
	PrepareWake() func()
}

// realClock implements Clock with the runtime's own notion of time.
type realClock struct{}

// Real returns the wall-clock Clock.
func Real() Clock { return realClock{} }

// OrReal returns c, or the real clock when c is nil, so components can
// accept an optional Clock in their configs.
func OrReal(c Clock) Clock {
	if c == nil {
		return Real()
	}
	return c
}

func (realClock) Now() time.Time                  { return time.Now() }
func (realClock) Since(t time.Time) time.Duration { return time.Since(t) }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (realClock) WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(parent, d)
}

func (realClock) Go(fn func()) { go fn() }

func (realClock) Join(wait func(), done func() bool) {
	if wait != nil {
		wait()
	}
}

func (realClock) BlockOn(_ context.Context, wait func() func()) {
	if claim := wait(); claim != nil {
		claim()
	}
}

func (realClock) PrepareWake() func() { return nil }
