package explore

import (
	"bytes"
	"flag"
	"fmt"
	"strings"
	"testing"
	"time"

	"o2pc/internal/proto"
)

var (
	simSeed = flag.Int64("sim.seed", 0,
		"replay one explorer run (the 'everything' fault schedule) with this seed and print its trace")
	simSmoke = flag.Duration("sim.smoke", 0,
		"run the explorer smoke loop for this wall-clock duration")
)

// matrix is the fault schedule sweep: each entry is explored under several
// seeds, and the smoke loop cycles through all of them indefinitely.
func matrix() []struct {
	name string
	cfg  Config
} {
	return []struct {
		name string
		cfg  Config
	}{
		{"clean", Config{Marking: proto.MarkP1}},
		{"drops", Config{Marking: proto.MarkP2, Faults: Faults{DropProb: 0.05}}},
		{"doom", Config{Marking: proto.MarkSimple, Faults: Faults{DoomRate: 0.3}}},
		{"coord-crash", Config{Marking: proto.MarkP1, Faults: Faults{CoordCrashCycles: 3}}},
		{"site-crash", Config{Marking: proto.MarkP1, Faults: Faults{SiteCrashCycles: 2}}},
		{"partition", Config{Marking: proto.MarkP1, Faults: Faults{PartitionCycles: 2}}},
		{"everything", Config{Marking: proto.MarkP1, Faults: Faults{
			DropProb:         0.03,
			DoomRate:         0.15,
			CoordCrashCycles: 2,
			SiteCrashCycles:  2,
			PartitionCycles:  1,
		}}},
		// Multi-shot sessions under the fault classes that stress them most:
		// sites crashing while sessions hold open subtransactions across
		// think times, the coordinator dying between rounds, and slow links
		// stretching every round's RPC exchange.
		{"multishot-site-crash", Config{Marking: proto.MarkP1, MultiShot: true,
			Faults: Faults{SiteCrashCycles: 2, DoomRate: 0.15}}},
		{"multishot-coord-crash", Config{Marking: proto.MarkP1, MultiShot: true,
			Faults: Faults{CoordCrashCycles: 2, DoomRate: 0.15}}},
		{"multishot-delay", Config{Marking: proto.MarkP2, MultiShot: true,
			MaxLatency: 4 * time.Millisecond,
			Faults:     Faults{DropProb: 0.03, DoomRate: 0.2}}},
		// Paxos Commit entries: every transaction's decision goes through
		// the replicated log, under the fault classes that distinguish it
		// from a local WAL — leader (coordinator) crashes mid-ballot,
		// minority replica loss (ballots keep reaching quorum), and
		// majority replica loss (ballots stall until recovery).
		{"paxos-clean", Config{Marking: proto.MarkP1, PaxosShare: 1}},
		{"paxos-mixed", Config{Marking: proto.MarkP1, PaxosShare: 0.4,
			Faults: Faults{DropProb: 0.03, DoomRate: 0.15}}},
		{"paxos-leader-crash", Config{Marking: proto.MarkP1, PaxosShare: 1,
			Faults: Faults{CoordCrashCycles: 2, DoomRate: 0.15}}},
		{"paxos-replica-minority", Config{Marking: proto.MarkP1, PaxosShare: 1,
			Faults: Faults{ReplicaCrashCycles: 2}}},
		{"paxos-replica-majority", Config{Marking: proto.MarkP1, PaxosShare: 1,
			Faults: Faults{ReplicaCrashCycles: 2, ReplicaCrashMajority: true}}},
	}
}

// report fails the test with everything needed to reproduce: the seed, a
// minimized configuration, and the event trace.
func report(t *testing.T, res *Result) {
	t.Helper()
	min := Minimize(res.Config)
	t.Fatalf("oracle violation at seed %d (replay: -sim.seed=%d)\nminimized config: %+v\n%s",
		res.Config.Seed, res.Config.Seed, min, Trace(res))
}

// TestExplorerMatrix sweeps every fault schedule across several seeds.
func TestExplorerMatrix(t *testing.T) {
	for _, entry := range matrix() {
		entry := entry
		t.Run(entry.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				cfg := entry.cfg
				cfg.Seed = seed
				res := Run(cfg)
				if res.Failed() {
					report(t, res)
				}
				if res.Committed == 0 {
					t.Errorf("seed %d: degenerate run, nothing committed", seed)
				}
			}
		})
	}
}

// TestExplorerDeterministic is the determinism contract: two runs of the
// same seed and fault schedule must record byte-identical histories.
func TestExplorerDeterministic(t *testing.T) {
	cfg := Config{
		Seed:    7,
		Marking: proto.MarkP1,
		Faults: Faults{
			DropProb:         0.03,
			DoomRate:         0.15,
			CoordCrashCycles: 2,
			PartitionCycles:  1,
		},
	}
	a := Run(cfg)
	b := Run(cfg)
	aj, err := CanonicalJSON(a.History)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := CanonicalJSON(b.History)
	if err != nil {
		t.Fatal(err)
	}
	if a.Committed != b.Committed || a.Aborted != b.Aborted {
		t.Errorf("outcome divergence: %d/%d committed, %d/%d aborted",
			a.Committed, b.Committed, a.Aborted, b.Aborted)
	}
	if !bytes.Equal(aj, bj) {
		t.Errorf("histories diverge for identical seed:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", aj, bj)
	}
	if a.Failed() {
		report(t, a)
	}
}

// TestExplorerTraceGolden is the tracing determinism contract: two runs of
// the same seed and fault schedule must serialize byte-identical JSONL
// event logs — every virtual timestamp, node sequence number, and detail
// string included.
func TestExplorerTraceGolden(t *testing.T) {
	cfg := Config{
		Seed:    11,
		Marking: proto.MarkP1,
		Faults: Faults{
			DropProb:         0.03,
			DoomRate:         0.15,
			CoordCrashCycles: 2,
			PartitionCycles:  1,
		},
	}
	a := Run(cfg)
	b := Run(cfg)
	if len(a.Events) == 0 {
		t.Fatal("run captured no trace events")
	}
	aj, err := EventsJSONL(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := EventsJSONL(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		i := 0
		for i < len(aj) && i < len(bj) && aj[i] == bj[i] {
			i++
		}
		lo, hi := i-200, i+200
		if lo < 0 {
			lo = 0
		}
		clip := func(b []byte) []byte {
			if hi < len(b) {
				return b[lo:hi]
			}
			return b[lo:]
		}
		t.Errorf("trace JSONL diverges at byte %d for identical seed:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			i, clip(aj), clip(bj))
	}
}

// TestExplorerTraceInFailureReport checks that an oracle-failure report
// carries the protocol event log, so every explorer failure arrives with
// its trace dump attached.
func TestExplorerTraceInFailureReport(t *testing.T) {
	res := Run(Config{Seed: 2, Marking: proto.MarkP1, Txns: 2, Clients: 1})
	if len(res.Events) == 0 {
		t.Fatal("run captured no trace events")
	}
	res.fail("synthetic oracle failure")
	out := Trace(res)
	if !strings.Contains(out, "FAIL: synthetic oracle failure") {
		t.Errorf("report lost the failure line:\n%s", out)
	}
	if !strings.Contains(out, "protocol events:") || !strings.Contains(out, "txn.begin") {
		t.Errorf("report has no protocol event dump:\n%s", out)
	}
}

// TestExplorerSeedReplay replays one seed on demand:
//
//	go test ./internal/sim/explore -run SeedReplay -v -sim.seed=12345
func TestExplorerSeedReplay(t *testing.T) {
	if *simSeed == 0 {
		t.Skip("pass -sim.seed=N to replay a seed")
	}
	var cfg Config
	for _, entry := range matrix() {
		if entry.name == "everything" {
			cfg = entry.cfg
			break
		}
	}
	cfg.Seed = *simSeed
	res := Run(cfg)
	t.Logf("replay:\n%s", Trace(res))
	if res.Failed() {
		report(t, res)
	}
}

// TestExplorerSmoke runs fresh seeds through the whole matrix until the
// -sim.smoke budget is spent (CI runs this for 30s per push).
func TestExplorerSmoke(t *testing.T) {
	if *simSmoke == 0 {
		t.Skip("pass -sim.smoke=duration to run the smoke loop")
	}
	deadline := time.Now().Add(*simSmoke)
	seed := int64(100)
	runs := 0
	for time.Now().Before(deadline) {
		for _, entry := range matrix() {
			seed++
			cfg := entry.cfg
			cfg.Seed = seed
			res := Run(cfg)
			runs++
			if res.Failed() {
				t.Logf("schedule %q failed", entry.name)
				report(t, res)
			}
		}
	}
	t.Logf("smoke: %d runs, %s per run", runs, (*simSmoke / time.Duration(max(runs, 1))).Round(time.Microsecond))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestExplorerTraceGoldenMultiShot is the determinism contract over the
// multi-shot session workload with site crashes in the schedule: the same
// (seed, faults, workload config) must serialize byte-identical JSONL event
// logs — session.open and session.round events, think-time jitter, crash
// recovery and all. This is the replayability guarantee for the hostile
// multi-shot matrix entries.
func TestExplorerTraceGoldenMultiShot(t *testing.T) {
	cfg := Config{
		Seed:      11,
		Marking:   proto.MarkP1,
		MultiShot: true,
		Faults: Faults{
			SiteCrashCycles: 2,
			DoomRate:        0.15,
		},
	}
	a := Run(cfg)
	b := Run(cfg)
	if a.Failed() {
		report(t, a)
	}
	aj, err := EventsJSONL(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := EventsJSONL(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(aj, []byte(`"session.open"`)) {
		t.Error("no session.open event in trace: multi-shot sessions never engaged")
	}
	if !bytes.Contains(aj, []byte(`"session.round"`)) {
		t.Error("no session.round event in trace")
	}
	if !bytes.Equal(aj, bj) {
		i := 0
		for i < len(aj) && i < len(bj) && aj[i] == bj[i] {
			i++
		}
		t.Errorf("trace JSONL diverges at byte %d with multi-shot sessions enabled", i)
	}
	ah, err := CanonicalJSON(a.History)
	if err != nil {
		t.Fatal(err)
	}
	bh, err := CanonicalJSON(b.History)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ah, bh) {
		t.Error("histories diverge for identical seed with multi-shot sessions enabled")
	}
}

// TestExplorerTraceGoldenFastPath is the determinism contract over the
// PR9 fast path: with the coordinator worker pool AND per-peer RPC
// coalescing enabled — both running entirely in virtual time — the same
// (seed, faults) must still serialize byte-identical JSONL event logs,
// rpc.batch events included. This is what licenses turning the fast path
// on in production workloads without losing replayability.
func TestExplorerTraceGoldenFastPath(t *testing.T) {
	cfg := Config{
		Seed:        13,
		Marking:     proto.MarkP1,
		ExecWorkers: 4,
		CoalesceRPC: true,
		Faults: Faults{
			DropProb: 0.03,
			DoomRate: 0.15,
		},
	}
	a := Run(cfg)
	b := Run(cfg)
	if a.Failed() {
		report(t, a)
	}
	aj, err := EventsJSONL(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := EventsJSONL(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(aj, []byte(`"rpc.batch"`)) {
		t.Error("no rpc.batch event in trace: coalescing never engaged")
	}
	if !bytes.Equal(aj, bj) {
		i := 0
		for i < len(aj) && i < len(bj) && aj[i] == bj[i] {
			i++
		}
		t.Errorf("trace JSONL diverges at byte %d with the fast path enabled", i)
	}
	ah, err := CanonicalJSON(a.History)
	if err != nil {
		t.Fatal(err)
	}
	bh, err := CanonicalJSON(b.History)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ah, bh) {
		t.Error("histories diverge for identical seed with the fast path enabled")
	}
}

// TestExplorerTraceGoldenPaxos is the determinism contract over the
// replicated decision log: with every transaction's commit decision
// going through Paxos Commit ballots — leader election, replica accepts,
// majority acks, all in virtual time — two runs of the same seed must
// still serialize byte-identical JSONL event logs, replog.begin and
// replog.accept events included. This is what lets a failing Paxos seed
// be replayed and shrunk like any other.
func TestExplorerTraceGoldenPaxos(t *testing.T) {
	cfg := Config{
		Seed:       11,
		Marking:    proto.MarkP1,
		PaxosShare: 1,
		Faults: Faults{
			DropProb:           0.03,
			DoomRate:           0.15,
			ReplicaCrashCycles: 1,
		},
	}
	a := Run(cfg)
	b := Run(cfg)
	if a.Failed() {
		report(t, a)
	}
	aj, err := EventsJSONL(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := EventsJSONL(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(aj, []byte(`"replog.begin"`)) {
		t.Error("no replog.begin event in trace: the replicated log never engaged")
	}
	if !bytes.Contains(aj, []byte(`"replog.accept"`)) {
		t.Error("no replog.accept event in trace: no decision ballot ran")
	}
	if !bytes.Equal(aj, bj) {
		i := 0
		for i < len(aj) && i < len(bj) && aj[i] == bj[i] {
			i++
		}
		t.Errorf("trace JSONL diverges at byte %d with Paxos Commit enabled", i)
	}
	ah, err := CanonicalJSON(a.History)
	if err != nil {
		t.Fatal(err)
	}
	bh, err := CanonicalJSON(b.History)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ah, bh) {
		t.Error("histories diverge for identical seed with Paxos Commit enabled")
	}
}

// TestExplorerPaxosLeaderTakeover pins the non-blocking property the
// replicated log buys: the coordinator (the Paxos Commit leader) crashes
// mid-run — including between a decision reaching a replica majority and
// its delivery to the sites — and recovery must finish every in-flight
// transaction by reading the replica majority, never leaving a
// YES-voting participant blocked. The recovering leader's majority read
// shows up as replog.takeover grants at a term above 1; the marking-
// hygiene and conservation oracles then prove no participant stayed in
// doubt. CI runs this under -race -count=5.
func TestExplorerPaxosLeaderTakeover(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		cfg := Config{
			Seed:       seed,
			Marking:    proto.MarkP1,
			PaxosShare: 1,
			Faults: Faults{
				CoordCrashCycles: 2,
				DoomRate:         0.15,
			},
		}
		res := Run(cfg)
		if res.Failed() {
			report(t, res)
		}
		if res.Committed == 0 {
			t.Errorf("seed %d: degenerate run, nothing committed", seed)
		}
		takeover := false
		for _, ev := range res.Events {
			if ev.Type.String() == "replog.takeover" && strings.Contains(ev.Detail, "grant term=") &&
				!strings.Contains(ev.Detail, "grant term=1 ") && ev.Detail != "grant term=1" {
				takeover = true
				break
			}
		}
		if !takeover {
			t.Errorf("seed %d: no post-crash takeover grant (term > 1) in trace", seed)
		}
	}
}

// TestExplorerConfigDefaults pins the documented defaults.
func TestExplorerConfigDefaults(t *testing.T) {
	cfg := withDefaults(Config{})
	want := fmt.Sprintf("%+v", Config{
		Seed: 1, Sites: 3, Coordinators: 2, Clients: 3, Txns: 24, Accounts: 4,
		InitialBalance: 1000, Marking: proto.MarkP1, TwoPCShare: 0.2,
		MinLatency: 100 * time.Microsecond, MaxLatency: 2 * time.Millisecond,
		LockTimeout: 5 * time.Millisecond,
	})
	if got := fmt.Sprintf("%+v", cfg); got != want {
		t.Errorf("defaults drifted:\n got %s\nwant %s", got, want)
	}
}

// TestExplorerTraceGoldenGroupCommit is the determinism contract with WAL
// group commit switched on: the sites' durability waits coalesce through
// the virtual-clock-driven flusher, and two runs of the same seed must
// still serialize byte-identical JSONL event logs — including the
// wal.sync events that now carry physical batch sizes.
func TestExplorerTraceGoldenGroupCommit(t *testing.T) {
	cfg := Config{
		Seed:           11,
		Marking:        proto.MarkP1,
		WALGroupCommit: true,
		Faults: Faults{
			DropProb:         0.03,
			DoomRate:         0.15,
			CoordCrashCycles: 2,
			PartitionCycles:  1,
		},
	}
	a := Run(cfg)
	b := Run(cfg)
	if a.Failed() {
		report(t, a)
	}
	aj, err := EventsJSONL(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := EventsJSONL(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(aj, []byte("batch=")) {
		t.Error("no batched wal.sync event in trace: group commit never engaged")
	}
	if !bytes.Equal(aj, bj) {
		i := 0
		for i < len(aj) && i < len(bj) && aj[i] == bj[i] {
			i++
		}
		t.Errorf("trace JSONL diverges at byte %d with group commit enabled", i)
	}
	ah, err := CanonicalJSON(a.History)
	if err != nil {
		t.Fatal(err)
	}
	bh, err := CanonicalJSON(b.History)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ah, bh) {
		t.Error("histories diverge for identical seed with group commit enabled")
	}
}

// TestExplorerTraceGoldenSiteCrash is the determinism contract over a
// schedule that includes site crash/recover cycles: two runs of the same
// seed must serialize byte-identical JSONL event logs, recovery events
// (recover.pending, recover.marks, resumed compensation) included. This
// is what lets a failing site-crash seed be replayed and shrunk.
func TestExplorerTraceGoldenSiteCrash(t *testing.T) {
	cfg := Config{
		Seed:    11,
		Marking: proto.MarkP1,
		Faults: Faults{
			DropProb:        0.03,
			SiteCrashCycles: 2,
		},
	}
	a := Run(cfg)
	b := Run(cfg)
	if a.Failed() {
		report(t, a)
	}
	aj, err := EventsJSONL(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := EventsJSONL(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(aj, []byte(`"recover"`)) {
		t.Error("no site recovery event in trace: crash cycles never engaged")
	}
	if !bytes.Equal(aj, bj) {
		i := 0
		for i < len(aj) && i < len(bj) && aj[i] == bj[i] {
			i++
		}
		t.Errorf("trace JSONL diverges at byte %d with site crashes enabled", i)
	}
	ah, err := CanonicalJSON(a.History)
	if err != nil {
		t.Fatal(err)
	}
	bh, err := CanonicalJSON(b.History)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ah, bh) {
		t.Error("histories diverge for identical seed with site crashes enabled")
	}
}
