// Package explore drives deterministic schedule exploration: whole cluster
// executions — concurrent transfers, coordinator crashes, site crashes,
// partitions, message loss — run under a virtual clock (internal/sim)
// across seeded fault matrices, and every recorded history is fed to the
// Section 5 verifier. A given (Config, Seed) reproduces the identical
// execution, so a failing run is reported as its seed plus a minimized
// configuration and an event trace rather than as an unreproducible flake.
//
// The oracles checked after each run:
//
//   - conservation: the transfer workload must leave total money unchanged
//     (semantic atomicity, Section 3);
//   - the Section 5 criterion: no local cycles, no effective regular
//     cycles in the global serialization graph;
//   - Theorem 2: no committed transaction read a forward value that
//     compensation later erased;
//   - marking hygiene (Fig. 2): once every decision is delivered and
//     compensation has drained, no locally-committed marks remain, and
//     every surviving undone mark names a globally aborted transaction.
package explore

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"o2pc/internal/coord"
	"o2pc/internal/core"
	"o2pc/internal/history"
	"o2pc/internal/proto"
	"o2pc/internal/rpc"
	"o2pc/internal/sg"
	"o2pc/internal/sim"
	"o2pc/internal/storage"
	"o2pc/internal/trace"
)

// Faults selects the failure schedule of one exploration run. The zero
// value injects nothing.
type Faults struct {
	// DropProb is the per-message loss probability.
	DropProb float64
	// CoordCrashCycles crash/recover the last coordinator this many times;
	// CrashSpacing separates the cycles and CrashDowntime is how long the
	// coordinator stays down. Requires at least two coordinators.
	CoordCrashCycles int
	CrashSpacing     time.Duration
	CrashDowntime    time.Duration
	// PartitionCycles sever the c0 -> site link (rotating over sites) for
	// PartitionSpan, then heal it.
	PartitionCycles int
	PartitionSpan   time.Duration
	// SiteCrashCycles crash/recover sites this many times, rotating over
	// the cluster; SiteCrashSpacing separates the cycles and
	// SiteCrashDowntime is how long each site stays down. A crashed site
	// loses all volatile state — pending subtransactions, marking sets,
	// lock tables — and Recover rebuilds it from the WAL, so these cycles
	// exercise exposure records, resumed inquiries and re-run compensation.
	SiteCrashCycles   int
	SiteCrashSpacing  time.Duration
	SiteCrashDowntime time.Duration
	// ReplicaCrashCycles crash/recover decision-log replicas this many
	// times, rotating over the replica group (requires Config.Replicas > 0).
	// Each cycle crashes one replica — a minority, so Paxos Commit keeps
	// deciding — unless ReplicaCrashMajority is set, in which case a full
	// majority goes down at once and in-flight ballots stall until the
	// replicas recover. ReplicaCrashSpacing separates the cycles and
	// ReplicaCrashDowntime is how long the replicas stay down.
	ReplicaCrashCycles   int
	ReplicaCrashSpacing  time.Duration
	ReplicaCrashDowntime time.Duration
	ReplicaCrashMajority bool
	// DoomRate is the probability that a transaction is doomed to a
	// unilateral NO vote at one of its sites.
	DoomRate float64
}

// Config is one point of the exploration space. Zero fields take the
// defaults documented on each.
type Config struct {
	// Seed drives everything: the workload, the network, the fault timing.
	Seed int64
	// Sites (default 3), Coordinators (default 2), Clients (default 3)
	// set the cluster and driver shape.
	Sites        int
	Coordinators int
	Clients      int
	// Txns is the total number of global transfers (default 24), spread
	// round-robin over the clients; Accounts (default 4) is the number of
	// replicated account keys, each seeded with InitialBalance (default
	// 1000) at every site.
	Txns           int
	Accounts       int
	InitialBalance int64
	// Marking selects the correctness protocol (default P1).
	Marking proto.MarkProtocol
	// TwoPCShare is the fraction of transactions run under baseline 2PC
	// (default 0.2); PaxosShare (default 0) is the fraction run under
	// Paxos Commit; the rest run O2PC. Both draw from one uniform sample
	// per transaction, so schedules with PaxosShare = 0 are byte-identical
	// to those generated before the protocol existed.
	TwoPCShare float64
	PaxosShare float64
	// Replicas sizes the replicated decision log (see core.Config.Replicas).
	// Defaults to 3 when PaxosShare > 0 and stays 0 — classic local WAL
	// logging — otherwise.
	Replicas int
	// MinLatency/MaxLatency bound one-way message delay (defaults 100µs
	// and 2ms). A nonzero span matters: it spreads timer deadlines so the
	// virtual clock's (when, seq) order is seed-determined.
	MinLatency time.Duration
	MaxLatency time.Duration
	// LockTimeout bounds lock waits at the sites (default 5ms — short, so
	// distributed deadlocks resolve quickly in virtual time).
	LockTimeout time.Duration
	// WALGroupCommit enables the sites' WAL group-commit decorator: the
	// durability waits of concurrent committers coalesce into shared
	// syncs, with the batching window driven by the run's virtual clock.
	// WALGroupWindow overrides the decorator's default window when set.
	WALGroupCommit bool
	WALGroupWindow time.Duration
	// ExecWorkers runs the coordinators' per-site fan-out on bounded
	// worker pools (see coord.Config.ExecWorkers); CoalesceRPC batches
	// coordinator→site VOTE-REQs and DECISIONs per peer into envelopes
	// (see core.Config.CoalesceRPC), with CoalesceWindow overriding the
	// batching window when set. Both run entirely in virtual time, so the
	// determinism contract — same seed, byte-identical trace — holds with
	// them enabled (pinned by TestExplorerTraceGoldenFastPath).
	ExecWorkers    int
	CoalesceRPC    bool
	CoalesceWindow time.Duration
	// MultiShot runs every transfer as a multi-shot session instead of a
	// one-shot spec: round 1 reads the source account, round 2 debits it,
	// round 3 credits the destination — with SessionThink of seed-jittered
	// think time before rounds 2 and 3 (default 500µs, applied only when
	// MultiShot is set). Sessions hold their locks across think times, so
	// this schedule stretches lock footprints and R1 re-admission windows.
	MultiShot    bool
	SessionThink time.Duration
	// Faults is the failure schedule.
	Faults Faults
}

func withDefaults(cfg Config) Config {
	if cfg.Sites <= 0 {
		cfg.Sites = 3
	}
	if cfg.Coordinators <= 0 {
		cfg.Coordinators = 2
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 3
	}
	if cfg.Txns <= 0 {
		cfg.Txns = 24
	}
	if cfg.Accounts <= 0 {
		cfg.Accounts = 4
	}
	if cfg.InitialBalance == 0 {
		cfg.InitialBalance = 1000
	}
	if cfg.Marking == proto.MarkNone {
		cfg.Marking = proto.MarkP1
	}
	if cfg.TwoPCShare == 0 {
		cfg.TwoPCShare = 0.2
	}
	if cfg.PaxosShare > 0 && cfg.Replicas == 0 {
		cfg.Replicas = 3
	}
	if cfg.MinLatency == 0 {
		cfg.MinLatency = 100 * time.Microsecond
	}
	if cfg.MaxLatency == 0 {
		cfg.MaxLatency = 2 * time.Millisecond
	}
	if cfg.LockTimeout == 0 {
		cfg.LockTimeout = 5 * time.Millisecond
	}
	if cfg.MultiShot && cfg.SessionThink == 0 {
		cfg.SessionThink = 500 * time.Microsecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// Result reports one exploration run.
type Result struct {
	// Config is the fully-defaulted configuration that ran.
	Config Config
	// Committed/Aborted count global transaction outcomes.
	Committed int
	Aborted   int
	// Total is the summed account balance after quiesce; Expected is what
	// conservation demands.
	Total    int64
	Expected int64
	// History is the recorded execution; Audit its Section 5 verdict.
	History *history.History
	Audit   *sg.Audit
	// Events is the protocol event log of the run (virtual-time ordered),
	// as captured by the cluster tracer. Deterministic for a given Config.
	Events []trace.Event
	// Failures lists every violated oracle (empty on a correct run).
	Failures []string
}

// Failed reports whether any oracle was violated.
func (r *Result) Failed() bool { return len(r.Failures) > 0 }

func (r *Result) fail(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

func acctKey(a int) string  { return fmt.Sprintf("acct%d", a) }
func siteName(i int) string { return fmt.Sprintf("s%d", i) }

// Run executes one exploration run to completion in virtual time and
// checks every oracle against the recorded history.
func Run(cfg Config) *Result {
	cfg = withDefaults(cfg)
	clock := sim.NewVirtualClock()
	tracer := trace.New(clock, trace.DefaultNodeCapacity)
	cl := core.NewCluster(core.Config{
		Sites:          cfg.Sites,
		Coordinators:   cfg.Coordinators,
		Replicas:       cfg.Replicas,
		Record:         true,
		Clock:          clock,
		Tracer:         tracer,
		LockTimeout:    cfg.LockTimeout,
		WALGroupCommit: cfg.WALGroupCommit,
		WALGroupWindow: cfg.WALGroupWindow,
		ExecWorkers:    cfg.ExecWorkers,
		CoalesceRPC:    cfg.CoalesceRPC,
		CoalesceWindow: cfg.CoalesceWindow,
		Network: rpc.Config{
			MinLatency: cfg.MinLatency,
			MaxLatency: cfg.MaxLatency,
			DropProb:   cfg.Faults.DropProb,
			Seed:       cfg.Seed,
		},
	})
	for a := 0; a < cfg.Accounts; a++ {
		cl.SeedInt64(acctKey(a), cfg.InitialBalance)
	}

	// The whole workload is precomputed from the seed before any goroutine
	// starts, so the only randomness live during the run is the network's
	// per-link streams.
	rng := rand.New(rand.NewSource(cfg.Seed))
	type job struct {
		spec     coord.TxnSpec
		doom     string
		coordIdx int
		// rounds and think are the multi-shot session shape: per-round
		// subtransaction batches and the seed-jittered think time that
		// precedes every round after the first. Empty for one-shot jobs.
		rounds [][]coord.SubtxnSpec
		think  time.Duration
	}
	jobs := make([]job, cfg.Txns)
	for i := range jobs {
		from := rng.Intn(cfg.Sites)
		to := rng.Intn(cfg.Sites)
		if to == from {
			to = (from + 1) % cfg.Sites
		}
		amount := int64(1 + rng.Intn(20))
		acct := acctKey(rng.Intn(cfg.Accounts))
		// One uniform draw splits three ways so a PaxosShare of zero
		// consumes the seed stream exactly as the old two-way draw did.
		protocol := proto.O2PC
		switch f := rng.Float64(); {
		case f < cfg.TwoPCShare:
			protocol = proto.TwoPC
		case f < cfg.TwoPCShare+cfg.PaxosShare:
			protocol = proto.Paxos
		}
		j := job{
			spec: coord.TxnSpec{
				ID:             fmt.Sprintf("x%d", i),
				Protocol:       protocol,
				Marking:        cfg.Marking,
				MarkingRetries: 5,
				Subtxns: []coord.SubtxnSpec{
					{Site: siteName(from), Ops: []proto.Operation{proto.AddMin(acct, -amount, 0)}, Comp: proto.CompSemantic},
					{Site: siteName(to), Ops: []proto.Operation{proto.Add(acct, amount)}, Comp: proto.CompSemantic},
				},
			},
			coordIdx: rng.Intn(cfg.Coordinators),
		}
		if cfg.MultiShot {
			j.rounds = [][]coord.SubtxnSpec{
				{{Site: siteName(from), Ops: []proto.Operation{proto.Read(acct)}, Comp: proto.CompSemantic}},
				{{Site: siteName(from), Ops: []proto.Operation{proto.AddMin(acct, -amount, 0)}, Comp: proto.CompSemantic}},
				{{Site: siteName(to), Ops: []proto.Operation{proto.Add(acct, amount)}, Comp: proto.CompSemantic}},
			}
			j.think = cfg.SessionThink/2 + time.Duration(rng.Int63n(int64(cfg.SessionThink)+1))
		}
		if cfg.Faults.DoomRate > 0 && rng.Float64() < cfg.Faults.DoomRate {
			j.doom = siteName([]int{from, to}[rng.Intn(2)])
		}
		jobs[i] = j
	}

	// runJob executes one precomputed job — as a one-shot transaction or,
	// under MultiShot, as a session of rounds with think time between them —
	// and reports whether it committed.
	runJob := func(ctx context.Context, j job) bool {
		if j.doom != "" {
			cl.DoomAtSite(j.spec.ID, j.doom)
		}
		if !cfg.MultiShot {
			return cl.RunAt(ctx, j.coordIdx, j.spec).Committed()
		}
		sess, err := cl.OpenSessionAt(j.coordIdx, coord.SessionSpec{
			ID:             j.spec.ID,
			Protocol:       j.spec.Protocol,
			Marking:        cfg.Marking,
			MarkingRetries: 5,
		})
		if err != nil {
			return false
		}
		for r, round := range j.rounds {
			if r > 0 && clock.Sleep(ctx, j.think) != nil {
				return sess.Abort(ctx).Committed()
			}
			if _, err := sess.Round(ctx, round); err != nil {
				break
			}
		}
		return sess.Commit(ctx).Committed()
	}

	ctx, cancel := clock.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	var committed, aborted atomic.Int64
	clients := sim.NewGroup(clock)
	for c := 0; c < cfg.Clients; c++ {
		c := c
		clients.Go(func() {
			// Distinct start offsets: each client arms a uniquely-timed
			// timer and from then on only runs when its own timer fires,
			// keeping the spawn burst off the shared network streams.
			if clock.Sleep(ctx, time.Duration(c+1)*time.Microsecond) != nil {
				return
			}
			for i := c; i < len(jobs); i += cfg.Clients {
				if runJob(ctx, jobs[i]) {
					committed.Add(1)
				} else {
					aborted.Add(1)
				}
			}
		})
	}

	// Recovery failures anywhere in the fault schedule are oracle-grade
	// evidence (a site that cannot rebuild from its WAL is exactly the bug
	// this matrix hunts), so they are collected and surfaced in the result
	// rather than discarded.
	var recMu sync.Mutex
	var recoveryErrs []string
	recordRecovery := func(what string, err error) {
		if err == nil {
			return
		}
		recMu.Lock()
		recoveryErrs = append(recoveryErrs, fmt.Sprintf("%s: %v", what, err))
		recMu.Unlock()
	}

	faults := sim.NewGroup(clock)
	if n := cfg.Faults.CoordCrashCycles; n > 0 && cfg.Coordinators > 1 {
		target := cfg.Coordinators - 1
		spacing, downtime := cfg.Faults.CrashSpacing, cfg.Faults.CrashDowntime
		if spacing <= 0 {
			spacing = 4 * time.Millisecond
		}
		if downtime <= 0 {
			downtime = 3 * time.Millisecond
		}
		faults.Go(func() {
			for i := 0; i < n; i++ {
				if clock.Sleep(ctx, spacing) != nil {
					return
				}
				cl.CrashCoordinator(target)
				//o2pcvet:ignore errflow -- downtime sleep on a dead context just shortens the outage; recovery below runs regardless
				_ = clock.Sleep(ctx, downtime)
				// Always bring it back, even on a dead context: the final
				// recovery pass needs a live coordinator.
				rctx, rcancel := clock.WithTimeout(context.Background(), time.Minute)
				recordRecovery(fmt.Sprintf("recover coordinator c%d (cycle %d)", target, i),
					cl.RecoverCoordinator(rctx, target))
				rcancel()
			}
		})
	}
	if n := cfg.Faults.SiteCrashCycles; n > 0 {
		spacing, downtime := cfg.Faults.SiteCrashSpacing, cfg.Faults.SiteCrashDowntime
		if spacing <= 0 {
			spacing = 4 * time.Millisecond
		}
		if downtime <= 0 {
			downtime = 3 * time.Millisecond
		}
		faults.Go(func() {
			for i := 0; i < n; i++ {
				if clock.Sleep(ctx, spacing) != nil {
					return
				}
				target := i % cfg.Sites
				cl.CrashSite(target)
				//o2pcvet:ignore errflow -- downtime sleep on a dead context just shortens the outage; the restart below runs regardless
				_ = clock.Sleep(ctx, downtime)
				// Always restart, even on a dead context: the oracles read
				// every site's post-recovery state.
				rctx, rcancel := clock.WithTimeout(context.Background(), time.Minute)
				recordRecovery(fmt.Sprintf("recover site s%d (cycle %d)", target, i),
					cl.RecoverSite(rctx, target))
				rcancel()
			}
		})
	}
	if n := cfg.Faults.ReplicaCrashCycles; n > 0 && cfg.Replicas > 0 {
		spacing, downtime := cfg.Faults.ReplicaCrashSpacing, cfg.Faults.ReplicaCrashDowntime
		if spacing <= 0 {
			spacing = 4 * time.Millisecond
		}
		if downtime <= 0 {
			downtime = 3 * time.Millisecond
		}
		// One replica per cycle is always a minority (Replicas defaults to
		// 3), so ballots keep reaching quorum; the majority variant takes
		// out floor(n/2)+1 at once, stalling every in-flight ballot until
		// the recovery half of the cycle.
		count := 1
		if cfg.Faults.ReplicaCrashMajority {
			count = cfg.Replicas/2 + 1
		}
		faults.Go(func() {
			for i := 0; i < n; i++ {
				if clock.Sleep(ctx, spacing) != nil {
					return
				}
				for k := 0; k < count; k++ {
					cl.CrashReplica((i + k) % cfg.Replicas)
				}
				//o2pcvet:ignore errflow -- downtime sleep on a dead context just shortens the outage; the restart below runs regardless
				_ = clock.Sleep(ctx, downtime)
				// Always restart, even on a dead context: Paxos liveness
				// needs a majority of replicas back up, and the final
				// recovery pass depends on it.
				for k := 0; k < count; k++ {
					target := (i + k) % cfg.Replicas
					recordRecovery(fmt.Sprintf("recover replica r%d (cycle %d)", target, i),
						cl.RecoverReplica(target))
				}
			}
		})
	}
	if n := cfg.Faults.PartitionCycles; n > 0 {
		span := cfg.Faults.PartitionSpan
		if span <= 0 {
			span = 5 * time.Millisecond
		}
		faults.Go(func() {
			for i := 0; i < n; i++ {
				if clock.Sleep(ctx, span) != nil {
					return
				}
				target := siteName(i % cfg.Sites)
				cl.Network().SetOneWayPartition("c0", target, true)
				//o2pcvet:ignore errflow -- a dead context just shortens the partition window; it must be healed below either way
				_ = clock.Sleep(ctx, span)
				cl.Network().SetOneWayPartition("c0", target, false)
			}
		})
	}
	clients.Wait()
	faults.Wait()
	cancel()

	// Final recovery pass: Recover rebuilds delivery state from the WAL,
	// so this re-sends every logged decision (idempotently) and presumes
	// abort for anything still undecided — no participant is left in
	// doubt, no mark is left waiting on an undelivered decision.
	for i := 0; i < cfg.Coordinators; i++ {
		rctx, rcancel := clock.WithTimeout(context.Background(), 2*time.Minute)
		recordRecovery(fmt.Sprintf("final recovery pass, coordinator c%d", i),
			cl.RecoverCoordinator(rctx, i))
		rcancel()
	}

	res := &Result{
		Config:    cfg,
		Committed: int(committed.Load()),
		Aborted:   int(aborted.Load()),
		Expected:  int64(cfg.Sites*cfg.Accounts) * cfg.InitialBalance,
	}
	recMu.Lock()
	for _, e := range recoveryErrs {
		res.fail("recovery error: %s", e)
	}
	recMu.Unlock()

	qctx, qcancel := clock.WithTimeout(context.Background(), 2*time.Minute)
	qerr := cl.Quiesce(qctx)
	qcancel()
	if qerr != nil {
		res.fail("quiesce: %v", qerr)
	}
	res.Events = tracer.Events()

	// Oracle 1: conservation (semantic atomicity).
	for s := 0; s < cfg.Sites; s++ {
		for a := 0; a < cfg.Accounts; a++ {
			res.Total += cl.Site(s).ReadInt64(storage.Key(acctKey(a)))
		}
	}
	if res.Total != res.Expected {
		res.fail("money not conserved: total %d != %d", res.Total, res.Expected)
	}

	// Oracle 2: the Section 5 criterion over the recorded history.
	res.History = cl.History()
	res.Audit = cl.Audit()
	for site, cycle := range res.Audit.LocalCycles {
		res.fail("local cycle at %s: %v", site, cycle)
	}
	if res.Audit.EffectiveCount > 0 {
		for _, c := range res.Audit.Cycles {
			if c.Effective {
				res.fail("effective regular cycle: %+v", c)
			}
		}
	}

	// Oracle 3: Theorem 2, atomicity of compensation.
	for _, v := range cl.CompensationViolations() {
		res.fail("Theorem 2 violation: %+v", v)
	}

	// Oracle 4: Fig. 2 marking hygiene. Every decision has been delivered,
	// so no site may still hold a locally-committed mark, and any undone
	// mark still awaiting UDUM1 unmarking must name an aborted transaction.
	for _, s := range cl.Sites() {
		if lc := s.LCMarks().Snapshot(); len(lc) > 0 {
			res.fail("lc marks remain at %s after all decisions: %v", s.Name(), lc)
		}
		for _, ti := range s.Marks().Snapshot() {
			if res.History.FateOf(ti) != history.FateAborted {
				res.fail("undone mark at %s names %s, which did not abort (fate %v)",
					s.Name(), ti, res.History.FateOf(ti))
			}
		}
	}

	if res.Committed+res.Aborted != cfg.Txns {
		res.fail("outcome count mismatch: %d committed + %d aborted != %d txns",
			res.Committed, res.Aborted, cfg.Txns)
	}
	cl.Close()
	return res
}

// CanonicalJSON renders a history with its ops in (site, seq) order. The
// recorder's flat slice interleaves sites in append order; the per-site
// orders and the read-from edges — everything the verifier consumes — are
// what determinism promises, so histories are compared in this form.
func CanonicalJSON(h *history.History) ([]byte, error) {
	cp := &history.History{
		Ops:  append([]history.Op(nil), h.Ops...),
		Txns: h.Txns,
	}
	sortOps(cp.Ops)
	var buf bytes.Buffer
	if err := history.WriteJSON(&buf, cp); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func sortOps(ops []history.Op) {
	sort.SliceStable(ops, func(i, j int) bool {
		if ops[i].Site != ops[j].Site {
			return ops[i].Site < ops[j].Site
		}
		return ops[i].Seq < ops[j].Seq
	})
}

// Minimize greedily shrinks a failing configuration — halving the
// workload, dropping clients, removing fault classes — as long as the
// oracles still fail, and returns the smallest still-failing Config. The
// input is returned unchanged if it does not fail (or no longer fails).
func Minimize(cfg Config) Config {
	cfg = withDefaults(cfg)
	if !Run(cfg).Failed() {
		return cfg
	}
	for changed := true; changed; {
		changed = false
		for _, cand := range shrinkCandidates(cfg) {
			if Run(cand).Failed() {
				cfg = cand
				changed = true
				break
			}
		}
	}
	return cfg
}

func shrinkCandidates(c Config) []Config {
	var out []Config
	if c.Txns > 1 {
		d := c
		d.Txns = c.Txns / 2
		out = append(out, d)
	}
	if c.Clients > 1 {
		d := c
		d.Clients = c.Clients - 1
		out = append(out, d)
	}
	if c.Faults.DropProb > 0 {
		d := c
		d.Faults.DropProb = 0
		out = append(out, d)
	}
	if c.Faults.PartitionCycles > 0 {
		d := c
		d.Faults.PartitionCycles = 0
		out = append(out, d)
	}
	if c.Faults.CoordCrashCycles > 0 {
		d := c
		d.Faults.CoordCrashCycles = 0
		out = append(out, d)
	}
	if c.Faults.SiteCrashCycles > 0 {
		d := c
		d.Faults.SiteCrashCycles = 0
		out = append(out, d)
	}
	if c.Faults.ReplicaCrashCycles > 0 {
		d := c
		d.Faults.ReplicaCrashCycles = 0
		d.Faults.ReplicaCrashMajority = false
		out = append(out, d)
	}
	if c.PaxosShare > 0 {
		d := c
		d.PaxosShare = 0
		d.Replicas = 0
		d.Faults.ReplicaCrashCycles = 0
		d.Faults.ReplicaCrashMajority = false
		out = append(out, d)
	}
	if c.Faults.DoomRate > 0 {
		d := c
		d.Faults.DoomRate = 0
		out = append(out, d)
	}
	if c.MultiShot {
		d := c
		d.MultiShot = false
		d.SessionThink = 0
		out = append(out, d)
	}
	return out
}

// Trace renders a result as a replayable report: the seed and oracle
// failures, then the per-site event sequences and every transaction's
// fate.
func Trace(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d marking=%d committed=%d aborted=%d total=%d/%d\n",
		res.Config.Seed, res.Config.Marking, res.Committed, res.Aborted, res.Total, res.Expected)
	for _, f := range res.Failures {
		fmt.Fprintf(&b, "FAIL: %s\n", f)
	}
	if res.History == nil {
		return b.String()
	}
	ops := append([]history.Op(nil), res.History.Ops...)
	sortOps(ops)
	for _, op := range ops {
		typ := "r"
		if op.Type == history.OpWrite {
			typ = "w"
		}
		fmt.Fprintf(&b, "%s #%-3d %s %s %s", op.Site, op.Seq, op.Txn, typ, op.Key)
		if op.ReadFrom != "" {
			fmt.Fprintf(&b, " <- %s", op.ReadFrom)
		}
		b.WriteByte('\n')
	}
	ids := make([]string, 0, len(res.History.Txns))
	for id := range res.History.Txns {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "%s: %v\n", id, res.History.Txns[id].Fate)
	}
	if len(res.Events) > 0 {
		b.WriteString("protocol events:\n")
		t0 := res.Events[0].T
		for _, ev := range res.Events {
			fmt.Fprintf(&b, "+%-9s %-3s %-18s", time.Duration(ev.T-t0), ev.Node, ev.Type)
			if ev.Txn != "" {
				fmt.Fprintf(&b, " txn=%s", ev.Txn)
			}
			if ev.Peer != "" {
				fmt.Fprintf(&b, " peer=%s", ev.Peer)
			}
			if ev.Detail != "" {
				fmt.Fprintf(&b, " %q", ev.Detail)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// EventsJSONL serializes a result's protocol event log as JSON lines —
// the byte-stable form the determinism contract is checked against.
func EventsJSONL(res *Result) ([]byte, error) {
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, res.Events); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
