package sim

import (
	"container/heap"
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// VirtualClock is a deterministic logical clock and cooperative scheduler.
// Time never passes on its own: it jumps to the next armed timer the moment
// no tracked goroutine is runnable, and exactly one timer fires per jump.
//
// Determinism comes from a baton discipline: at most one tracked goroutine
// runs at any instant. Every clock operation (Sleep, BlockOn, Go, exit) is
// a yield point; goroutines made runnable by a wake re-enter a run queue
// ordered by the sequence number assigned when they parked — a value fixed
// under the baton, so the queue order is a function of the schedule, not of
// the Go runtime or machine load. The baton passes to the lowest-keyed
// runnable goroutine, and only when no wake is still in flight (pending),
// so the dispatcher never races a resuming goroutine. Together with seeded
// PRNGs this makes a simulated cluster run a deterministic function of its
// seed, executing hours of protocol timeouts in milliseconds of real time.
//
// Tracking rules (see Clock): the goroutine that calls NewVirtualClock is
// the initial tracked goroutine (and holds the baton); all others must be
// spawned via Go.
type VirtualClock struct {
	mu      sync.Mutex
	now     int64 // virtual nanoseconds since base
	base    time.Time
	seq     uint64 // park/arm order; timer tiebreak and run-queue key
	running bool   // a tracked goroutine holds the baton
	pending int    // wake-ups in flight: granted but not yet re-entered
	runq    runQueue
	timers  timerHeap
	// sleepers and blockers register every goroutine parked with a
	// cancellable context (on a clock timer or in BlockOn). Before handing
	// the baton anywhere, the dispatcher reserves a wake for each waiter
	// whose context has been cancelled, so cancellation hand-offs are part
	// of the accounting instead of a real-time race between the woken
	// goroutine re-entering and the clock moving on without it.
	sleepers map[*vtimer]struct{}
	blockers map[*blocker]struct{}
}

// blocker is one goroutine parked in BlockOn with a cancellable context.
type blocker struct {
	ctx      context.Context
	reserved bool
}

// joinPoll is the virtual-time granularity at which Join polls its
// completion predicate.
const joinPoll = 100 * time.Microsecond

// vtimer is one heap entry: either a sleeper (wake != nil) or a context
// deadline (cancel != nil).
type vtimer struct {
	when     int64
	seq      uint64
	wake     chan struct{}
	cancel   context.CancelFunc
	ctx      context.Context // sleeper's context, for cancellation wakes
	fired    bool
	stopped  bool
	reserved bool // a cancellation wake has been reserved for this sleeper
}

type timerHeap []*vtimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(*vtimer)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// runEntry is a goroutine that is runnable and waiting for the baton.
type runEntry struct {
	seq uint64 // assigned when the goroutine parked (or was spawned)
	run chan struct{}
}

type runQueue []*runEntry

func (q runQueue) Len() int           { return len(q) }
func (q runQueue) Less(i, j int) bool { return q[i].seq < q[j].seq }
func (q runQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *runQueue) Push(x any)        { *q = append(*q, x.(*runEntry)) }
func (q *runQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// NewVirtualClock returns a virtual clock starting at a fixed epoch, with
// the calling goroutine as the first tracked goroutine, holding the baton.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{
		base:     time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC),
		running:  true,
		sleepers: make(map[*vtimer]struct{}),
		blockers: make(map[*blocker]struct{}),
	}
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.base.Add(time.Duration(c.now))
}

// Since returns the virtual time elapsed since t.
func (c *VirtualClock) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// Elapsed returns the total virtual time elapsed since the clock's epoch.
func (c *VirtualClock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.now)
}

// enqueueLocked adds the caller to the run queue under the given park key.
func (c *VirtualClock) enqueueLocked(seq uint64) *runEntry {
	e := &runEntry{seq: seq, run: make(chan struct{})}
	heap.Push(&c.runq, e)
	return e
}

// releaseLocked gives up the baton and lets the dispatcher pick what runs
// (or which timer fires) next.
func (c *VirtualClock) releaseLocked() {
	c.running = false
	c.dispatchLocked()
}

// dispatchLocked hands the baton to the next runnable goroutine, or — when
// none is runnable — jumps virtual time to the next timer and fires it. It
// does nothing while the baton is held or any wake is still in flight: a
// woken goroutine must re-enter the run queue before scheduling decisions
// are made, so those decisions depend only on the schedule. Callers must
// hold c.mu.
func (c *VirtualClock) dispatchLocked() {
	for !c.running && c.pending == 0 {
		if c.reserveCancelledLocked() > 0 {
			// A cancellation has released parked goroutines that have not
			// re-entered yet. They now hold wake reservations, so dispatch
			// waits for them to enqueue — never racing them.
			return
		}
		if len(c.runq) > 0 {
			e := heap.Pop(&c.runq).(*runEntry)
			c.running = true
			close(e.run)
			return
		}
		if len(c.timers) == 0 {
			return
		}
		t := heap.Pop(&c.timers).(*vtimer)
		if t.stopped {
			continue
		}
		if t.when > c.now {
			c.now = t.when
		}
		t.fired = true
		if t.wake != nil {
			// The sleeper resumes holding the baton.
			c.running = true
			close(t.wake)
			return
		}
		// Deadline: cancel the context and loop. The next iteration either
		// reserves wakes for the goroutines this cancellation released (and
		// returns), or — when nobody was waiting on the context — fires the
		// next timer. All context waiters go through Sleep or BlockOn, so
		// the registry scan sees every goroutine a cancellation can wake.
		t.cancel()
	}
}

// reserveCancelledLocked reserves a wake (pending++) for every registered
// waiter whose context has been cancelled but who has not yet re-entered
// the run queue. Each waiter claims its reservation as it re-enters.
func (c *VirtualClock) reserveCancelledLocked() int {
	n := 0
	for t := range c.sleepers {
		if !t.reserved && !t.fired && !t.stopped && t.ctx.Err() != nil {
			t.reserved = true
			c.pending++
			n++
		}
	}
	for b := range c.blockers {
		if !b.reserved && b.ctx.Err() != nil {
			b.reserved = true
			c.pending++
			n++
		}
	}
	return n
}

// Sleep pauses the calling (tracked) goroutine for d of virtual time.
func (c *VirtualClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	c.mu.Lock()
	c.seq++
	t := &vtimer{when: c.now + int64(d), seq: c.seq, wake: make(chan struct{}), ctx: ctx}
	heap.Push(&c.timers, t)
	if ctx.Done() != nil {
		c.sleepers[t] = struct{}{}
	}
	c.releaseLocked()
	c.mu.Unlock()

	select {
	case <-t.wake:
		// Fired: the dispatcher handed us the baton with the wake.
		if ctx.Done() != nil {
			c.mu.Lock()
			delete(c.sleepers, t)
			c.mu.Unlock()
		}
		return nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.sleepers, t)
		if t.fired {
			c.mu.Unlock()
			// The timer fired concurrently and carries the baton; consume
			// the wake and report the cancellation.
			<-t.wake
			return ctx.Err()
		}
		t.stopped = true
		e := c.enqueueLocked(t.seq)
		if t.reserved {
			t.reserved = false
			c.pending--
		}
		c.dispatchLocked()
		c.mu.Unlock()
		<-e.run
		return ctx.Err()
	}
}

// WithTimeout derives a context cancelled after d of virtual time.
func (c *VirtualClock) WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	if d <= 0 {
		cancel()
		return ctx, func() {}
	}
	c.mu.Lock()
	c.seq++
	t := &vtimer{when: c.now + int64(d), seq: c.seq, cancel: cancel}
	heap.Push(&c.timers, t)
	c.mu.Unlock()
	return ctx, func() {
		c.mu.Lock()
		if !t.fired {
			t.stopped = true
		}
		c.mu.Unlock()
		cancel()
	}
}

// Go spawns fn as a tracked goroutine. It enters the run queue keyed by its
// spawn order and starts once the baton reaches it.
func (c *VirtualClock) Go(fn func()) {
	c.mu.Lock()
	c.seq++
	e := c.enqueueLocked(c.seq)
	c.dispatchLocked()
	c.mu.Unlock()
	go func() {
		<-e.run
		defer c.exit()
		fn()
	}()
}

// exit untracks a finished goroutine, releasing the baton.
func (c *VirtualClock) exit() {
	c.mu.Lock()
	c.releaseLocked()
	c.mu.Unlock()
}

// Join polls done in virtual time until it reports completion. The
// blocking wait is unused: the predicate (an atomic counter in Group)
// already synchronizes with the joined goroutines.
func (c *VirtualClock) Join(wait func(), done func() bool) {
	_ = wait
	for !done() {
		//o2pcvet:ignore errflow -- Background never expires, so this virtual-time poll interval cannot fail
		_ = c.Sleep(context.Background(), joinPoll)
	}
}

// BlockOn runs wait() with the baton released, so a wait on non-clock
// synchronization (channel, mutex) cannot stall virtual time when the
// eventual waker is itself asleep on the clock. The claim token wait
// returns (from the waker's PrepareWake, or nil) is consumed after the
// caller is back in the run queue, which keeps the wake accounted for
// until the scheduler can see the re-entered goroutine.
func (c *VirtualClock) BlockOn(ctx context.Context, wait func() func()) {
	var b *blocker
	c.mu.Lock()
	c.seq++
	key := c.seq
	if ctx != nil && ctx.Done() != nil {
		b = &blocker{ctx: ctx}
		c.blockers[b] = struct{}{}
	}
	c.releaseLocked()
	c.mu.Unlock()

	claim := wait()

	c.mu.Lock()
	if b != nil {
		delete(c.blockers, b)
		if b.reserved {
			c.pending--
		}
	}
	e := c.enqueueLocked(key)
	c.dispatchLocked()
	c.mu.Unlock()
	if claim != nil {
		claim()
	}
	<-e.run
}

// PrepareWake reserves a wake-up: scheduling halts until the returned claim
// token runs (idempotently). The waker passes the token through its wake
// channel; the wakee's BlockOn returns it so it is claimed only after the
// wakee has re-entered the run queue.
func (c *VirtualClock) PrepareWake() func() {
	c.mu.Lock()
	c.pending++
	c.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			c.pending--
			c.dispatchLocked()
			c.mu.Unlock()
		})
	}
}

var _ Clock = (*VirtualClock)(nil)

// Group joins a set of tracked goroutines under either clock discipline:
// a WaitGroup for the real clock's blocking join, an atomic counter as the
// virtual clock's completion predicate.
type Group struct {
	clock Clock
	wg    sync.WaitGroup
	left  atomic.Int64
}

// NewGroup returns a Group spawning through c (nil defaults to the real
// clock).
func NewGroup(c Clock) *Group {
	return &Group{clock: OrReal(c)}
}

// Go spawns fn as a tracked member of the group.
func (g *Group) Go(fn func()) {
	g.enter()
	g.clock.Go(func() {
		defer g.wg.Done()
		defer g.left.Add(-1)
		fn()
	})
}

// enter registers one member about to start; exit is its counterpart.
// They let Pool run group members on pooled workers: the accounting
// matches Go's, only the goroutine is borrowed instead of spawned.
func (g *Group) enter() {
	g.wg.Add(1)
	g.left.Add(1)
}

func (g *Group) exit() {
	g.left.Add(-1)
	g.wg.Done()
}

// Wait blocks (in real or virtual time) until every spawned member has
// finished. The real clock joins directly on the WaitGroup — the generic
// path's method value and progress closure allocate, which the commit
// path's per-phase joins would pay on every transaction.
func (g *Group) Wait() {
	if _, ok := g.clock.(realClock); ok {
		g.wg.Wait()
		return
	}
	g.clock.Join(g.wg.Wait, func() bool { return g.left.Load() == 0 })
}
