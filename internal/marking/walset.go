package marking

import "o2pc/internal/wal"

// LoggedMarks is a WAL-backed decorator over SiteMarks: every mutation of
// the marking set is logged write-ahead (RecMark/RecUnmark with the set's
// label in Aux) before the in-memory set changes, so a restarted site can
// rebuild sitemarks.k from its log. The paper stores the marking set "as
// part of the database" precisely so it enjoys the database's recoverability
// (Section 6.2); this decorator is that durability without moving the set
// into the keyspace. The caller keeps the lock-on-system-key discipline —
// LoggedMarks adds logging, not locking.
type LoggedMarks struct {
	inner *SiteMarks
	log   wal.Log
	set   string // wal.MarkSetUndone or wal.MarkSetLC
}

// NewLoggedMarks wraps inner so mutations are logged to log under the given
// set label. A nil log disables logging (pure in-memory behavior).
func NewLoggedMarks(inner *SiteMarks, log wal.Log, set string) *LoggedMarks {
	return &LoggedMarks{inner: inner, log: log, set: set}
}

// Raw returns the underlying SiteMarks for read-side consumers.
func (l *LoggedMarks) Raw() *SiteMarks { return l.inner }

// MarkUndone logs a RecMark record and then marks ti in the in-memory set.
// On a log failure the mark is still applied — an extra undone mark is
// strictly conservative (it can only force retries or aborts, never admit a
// regular cycle) — and the error is returned so the caller can retry the
// logging.
func (l *LoggedMarks) MarkUndone(ti string) error {
	var err error
	if l.log != nil {
		_, err = l.log.Append(wal.Record{Type: wal.RecMark, TxnID: ti, Aux: l.set})
	}
	l.inner.MarkUndone(ti)
	return err
}

// Unmark logs a RecUnmark record and then clears ti from the in-memory set.
// On a log failure the in-memory set is left untouched: a stale mark is
// safe (conservative), but clearing a mark that would resurface after a
// crash would let the UDUM1 condition appear satisfied when the durable
// state says otherwise.
func (l *LoggedMarks) Unmark(ti string) error {
	if l.log != nil {
		if _, err := l.log.Append(wal.Record{Type: wal.RecUnmark, TxnID: ti, Aux: l.set}); err != nil {
			return err
		}
	}
	l.inner.Unmark(ti)
	return nil
}

// Restore replaces the in-memory set with marks without logging — the
// recovery replay hook. Witness state is volatile and cleared.
func (l *LoggedMarks) Restore(marks map[string]bool) { l.inner.Restore(marks) }

// Contains delegates to the underlying set.
func (l *LoggedMarks) Contains(ti string) bool { return l.inner.Contains(ti) }

// Snapshot delegates to the underlying set.
func (l *LoggedMarks) Snapshot() []string { return l.inner.Snapshot() }

// Len delegates to the underlying set.
func (l *LoggedMarks) Len() int { return l.inner.Len() }

// RecordWitness delegates to the underlying set; witness state is volatile
// UDUM1 bookkeeping and deliberately not logged.
func (l *LoggedMarks) RecordWitness(marks []string) { l.inner.RecordWitness(marks) }

// DrainWitnesses delegates to the underlying set.
func (l *LoggedMarks) DrainWitnesses() []string { return l.inner.DrainWitnesses() }

// Restore replaces the mark set with marks and clears the (volatile)
// witness state. Used by recovery to install the set replayed from the WAL.
func (s *SiteMarks) Restore(marks map[string]bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.undone = make(map[string]bool, len(marks))
	for ti, on := range marks {
		if on {
			s.undone[ti] = true
		}
	}
	s.witnessed = make(map[string]bool)
}
