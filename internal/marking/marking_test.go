package marking

import (
	"reflect"
	"testing"
)

func TestSiteMarksBasics(t *testing.T) {
	m := NewSiteMarks()
	if m.Contains("T1") || m.Len() != 0 {
		t.Fatalf("fresh set not empty")
	}
	m.MarkUndone("T1")
	m.MarkUndone("T2")
	m.MarkUndone("T1") // idempotent
	if !m.Contains("T1") || m.Len() != 2 {
		t.Fatalf("marks = %v", m.Snapshot())
	}
	if got := m.Snapshot(); !reflect.DeepEqual(got, []string{"T1", "T2"}) {
		t.Fatalf("snapshot = %v", got)
	}
	m.Unmark("T1")
	if m.Contains("T1") || m.Len() != 1 {
		t.Fatalf("unmark failed")
	}
}

func TestWitnessRecordingOnlyForPresentMarks(t *testing.T) {
	m := NewSiteMarks()
	m.MarkUndone("T1")
	m.RecordWitness([]string{"T1", "T9"}) // T9 not marked here
	w := m.DrainWitnesses()
	if !reflect.DeepEqual(w, []string{"T1"}) {
		t.Fatalf("witnesses = %v, want [T1]", w)
	}
	if len(m.DrainWitnesses()) != 0 {
		t.Fatalf("drain not empty after drain")
	}
}

func TestUnmarkClearsWitness(t *testing.T) {
	m := NewSiteMarks()
	m.MarkUndone("T1")
	m.RecordWitness([]string{"T1"})
	m.Unmark("T1")
	if len(m.DrainWitnesses()) != 0 {
		t.Fatalf("witness survived unmark")
	}
}

func TestCompatibleFirstVisitAdoptsMarks(t *testing.T) {
	v, merged := Compatible(nil, false, []string{"T1", "T2"})
	if v != Admit {
		t.Fatalf("verdict = %v", v)
	}
	if !reflect.DeepEqual(merged, []string{"T1", "T2"}) {
		t.Fatalf("merged = %v", merged)
	}
}

func TestCompatibleMatchingSetsAdmit(t *testing.T) {
	v, merged := Compatible([]string{"T1"}, true, []string{"T1"})
	if v != Admit || !reflect.DeepEqual(merged, []string{"T1"}) {
		t.Fatalf("v=%v merged=%v", v, merged)
	}
}

func TestCompatibleSupersetSiteAdmitsAndMerges(t *testing.T) {
	// The transaction carries T1; the site has T1 and T3. Visited: the
	// extra T3 means some visited site was not undone w.r.t. T3 -> Abort.
	v, _ := Compatible([]string{"T1"}, true, []string{"T1", "T3"})
	if v != Abort {
		t.Fatalf("verdict = %v, want Abort (mixed undone/not-undone for T3)", v)
	}
}

func TestCompatibleCarriedMarkMissingAtSiteIsRetry(t *testing.T) {
	// The transaction saw a site undone w.r.t. T1; this site is not (yet):
	// compensation for T1 may still be in flight here, so retry.
	v, _ := Compatible([]string{"T1"}, true, nil)
	if v != Retry {
		t.Fatalf("verdict = %v, want Retry", v)
	}
}

func TestCompatibleUnmarkedThenUndoneIsFatal(t *testing.T) {
	// The paper's explicit example: executed at a site unmarked w.r.t. Ti,
	// then attempts a site undone w.r.t. Ti -> only abort resolves it.
	v, _ := Compatible(nil, true, []string{"T1"})
	if v != Abort {
		t.Fatalf("verdict = %v, want Abort", v)
	}
}

func TestCompatibleFreshTxnEmptySite(t *testing.T) {
	v, merged := Compatible(nil, false, nil)
	if v != Admit || len(merged) != 0 {
		t.Fatalf("v=%v merged=%v", v, merged)
	}
}

func TestCompatibleRetryBeatsAbortWhenBothApply(t *testing.T) {
	// Carried T1 missing here AND site has extra T2: the retryable
	// direction is checked first (a retry may resolve both once T1's
	// compensation lands here).
	v, _ := Compatible([]string{"T1"}, true, []string{"T2"})
	if v != Retry {
		t.Fatalf("verdict = %v, want Retry", v)
	}
}

func TestCompatibleP2FirstVisitAdoptsBothKinds(t *testing.T) {
	v, merged := CompatibleP2(nil, false, []string{"T1"}, []string{"T2"})
	if v != Admit {
		t.Fatalf("verdict = %v", v)
	}
	if !reflect.DeepEqual(merged, []string{"l:T1", "u:T2"}) {
		t.Fatalf("merged = %v", merged)
	}
	if got := P2UndoneSeen(merged); !reflect.DeepEqual(got, []string{"T2"}) {
		t.Fatalf("undone seen = %v", got)
	}
}

func TestCompatibleP2AllLCBranch(t *testing.T) {
	// Carried lc evidence matches an lc site: admitted.
	if v, _ := CompatibleP2([]string{"l:T1"}, true, []string{"T1"}, nil); v != Admit {
		t.Fatalf("all-lc: %v", v)
	}
	// Carried lc evidence meets an undone site: the mix behind a regular
	// cycle — only abort resolves it.
	if v, _ := CompatibleP2([]string{"l:T1"}, true, nil, []string{"T1"}); v != Abort {
		t.Fatalf("lc-vs-undone: %v", v)
	}
	// Carried lc evidence meets an unmarked site: the all-lc branch cannot
	// complete; retry (T1's decision clears lc marks everywhere).
	if v, _ := CompatibleP2([]string{"l:T1"}, true, nil, nil); v != Retry {
		t.Fatalf("lc-vs-unmarked: %v", v)
	}
}

func TestCompatibleP2UndoneBranchMirrorsP1(t *testing.T) {
	if v, _ := CompatibleP2([]string{"u:T1"}, true, nil, []string{"T1"}); v != Admit {
		t.Fatalf("undone match: %v", v)
	}
	if v, _ := CompatibleP2([]string{"u:T1"}, true, nil, nil); v != Retry {
		t.Fatalf("undone carried-missing: %v", v)
	}
	// Visited with no evidence hitting an undone site: the P1 fatal case —
	// this is exactly the unsoundness of the paper's literal branch (b)
	// that the repair closes.
	if v, _ := CompatibleP2(nil, true, nil, []string{"T1"}); v != Abort {
		t.Fatalf("unmarked-then-undone: %v", v)
	}
	// And lc at the site with no evidence after a visit: retryable (lc
	// clears at the decision).
	if v, _ := CompatibleP2(nil, true, []string{"T1"}, nil); v != Retry {
		t.Fatalf("unmarked-then-lc: %v", v)
	}
}

func TestCompatibleP2UndoneDominatesTransientLC(t *testing.T) {
	// Around the decision a site may briefly hold both marks; undone wins.
	v, merged := CompatibleP2(nil, false, []string{"T1"}, []string{"T1"})
	if v != Admit || !reflect.DeepEqual(merged, []string{"u:T1"}) {
		t.Fatalf("v=%v merged=%v", v, merged)
	}
}

func TestVerdictStrings(t *testing.T) {
	if Admit.String() != "admit" || Retry.String() != "retry" || Abort.String() != "abort" {
		t.Fatalf("verdict strings wrong")
	}
}

func TestBoardUnmarksAfterAllMarkedSitesWitnessed(t *testing.T) {
	b := NewBoard()
	b.AddMarked("T1", "s0")
	b.AddMarked("T1", "s1")
	b.FinalizeMarked("T1")

	b.AddWitness("T1", "s0")
	if b.PendingFor("s0") != 0 || b.PendingFor("s1") != 0 {
		t.Fatalf("unmark queued before all sites witnessed")
	}
	b.AddWitness("T1", "s1")
	if b.PendingFor("s0") != 1 || b.PendingFor("s1") != 1 {
		t.Fatalf("unmark not queued after full witness coverage")
	}
	if got := b.DrainUnmarks("s0"); !reflect.DeepEqual(got, []string{"T1"}) {
		t.Fatalf("drain s0 = %v", got)
	}
	if b.PendingFor("s0") != 0 {
		t.Fatalf("drain did not clear")
	}
}

func TestBoardWitnessBeforeRegistrationBuffers(t *testing.T) {
	b := NewBoard()
	b.AddWitness("T1", "s0") // arrives before any AddMarked/Finalize
	b.AddMarked("T1", "s0")
	b.FinalizeMarked("T1")
	if b.PendingFor("s0") != 1 {
		t.Fatalf("buffered witness not honoured")
	}
}

func TestBoardFinalizeWithoutMarksDropsEntry(t *testing.T) {
	b := NewBoard()
	b.FinalizeMarked("T1")
	if got := b.Outstanding(); len(got) != 0 {
		t.Fatalf("outstanding = %v", got)
	}
}

func TestBoardWitnessAtUnmarkedSiteIgnoredForCompletion(t *testing.T) {
	b := NewBoard()
	b.AddMarked("T1", "s0")
	b.FinalizeMarked("T1")
	b.AddWitness("T1", "s9") // a site that never marked
	if b.PendingFor("s9") != 0 {
		t.Fatalf("notice queued for unmarked site")
	}
	// Completion requires the marked site, not s9.
	if b.PendingFor("s0") != 0 {
		t.Fatalf("completed without s0's witness")
	}
	b.AddWitness("T1", "s0")
	if b.PendingFor("s0") != 1 {
		t.Fatalf("completion missed")
	}
}

func TestBoardRequeue(t *testing.T) {
	b := NewBoard()
	b.AddMarked("T1", "s0")
	b.FinalizeMarked("T1")
	b.AddWitness("T1", "s0")
	got := b.DrainUnmarks("s0")
	if len(got) != 1 {
		t.Fatalf("drain = %v", got)
	}
	b.Requeue("s0", got)
	if b.PendingFor("s0") != 1 {
		t.Fatalf("requeue lost the notice")
	}
	b.Requeue("s0", nil) // no-op
	if b.PendingFor("s0") != 1 {
		t.Fatalf("nil requeue changed state")
	}
}

func TestBoardOutstanding(t *testing.T) {
	b := NewBoard()
	b.AddMarked("T2", "s0")
	b.AddMarked("T1", "s0")
	got := b.Outstanding()
	if !reflect.DeepEqual(got, []string{"T1", "T2"}) {
		t.Fatalf("outstanding = %v", got)
	}
}
