package marking

import (
	"sort"
	"sync"
)

// Board is the coordinator-side aggregation point for the UDUM1 condition
// (Lemma 4): a site may transition from undone to unmarked with respect to
// an aborted transaction Ti once every site marked undone w.r.t. Ti has
// been accessed by some transaction while marked.
//
// The board learns which sites actually marked themselves from the Marked
// flag piggybacked on Decision acknowledgements (a site marks at its NO
// vote, rule R2 at compensation completion, or a prepared-abort roll-back),
// and learns per-site witnesses from the WitnessDelta entries sites
// piggyback on VOTE replies. Once the marked-site set is final (all acks
// in) and every marked site has a witness, the board queues an "unmark Ti"
// notice for each marked site; coordinators drain per-site notices into
// the Unmarks field of outgoing Decision messages. No extra messages are
// ever sent.
type Board struct {
	mu      sync.Mutex
	entries map[string]*boardEntry
	// pending maps site -> set of forward txns whose unmark notice has not
	// yet been delivered to that site.
	pending map[string]map[string]bool
}

type boardEntry struct {
	marked    map[string]bool
	witnessed map[string]bool
	final     bool // marked set complete (all decision acks received)
}

// NewBoard returns an empty board.
func NewBoard() *Board {
	return &Board{
		entries: make(map[string]*boardEntry),
		pending: make(map[string]map[string]bool),
	}
}

func (b *Board) entry(ti string) *boardEntry {
	e, ok := b.entries[ti]
	if !ok {
		e = &boardEntry{marked: make(map[string]bool), witnessed: make(map[string]bool)}
		b.entries[ti] = e
	}
	return e
}

// AddMarked records that site holds an undone mark for ti (learned from a
// Decision ack).
func (b *Board) AddMarked(ti, site string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.entry(ti).marked[site] = true
	b.checkDone(ti)
}

// FinalizeMarked declares ti's marked-site set complete: every decision
// acknowledgement has been received. UDUM1 can now be established.
func (b *Board) FinalizeMarked(ti string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(ti)
	e.final = true
	b.checkDone(ti)
}

// AddWitness records that some global transaction executed at site while
// the site was undone w.r.t. ti.
func (b *Board) AddWitness(ti, site string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.entry(ti).witnessed[site] = true
	b.checkDone(ti)
}

// checkDone queues unmark notices when UDUM1 is established. Callers must
// hold b.mu.
func (b *Board) checkDone(ti string) {
	e, ok := b.entries[ti]
	if !ok || !e.final {
		return
	}
	if len(e.marked) == 0 {
		delete(b.entries, ti)
		return
	}
	for s := range e.marked {
		if !e.witnessed[s] {
			return
		}
	}
	for s := range e.marked {
		m, ok := b.pending[s]
		if !ok {
			m = make(map[string]bool)
			b.pending[s] = m
		}
		m[ti] = true
	}
	delete(b.entries, ti)
}

// DrainUnmarks returns and clears the pending unmark notices for site;
// coordinators attach them to the next Decision message sent to that site.
func (b *Board) DrainUnmarks(site string) []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.pending[site]
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for ti := range m {
		out = append(out, ti)
	}
	delete(b.pending, site)
	sort.Strings(out)
	return out
}

// Requeue restores drained unmark notices for site after a failed Decision
// delivery, so they ride the next one.
func (b *Board) Requeue(site string, tis []string) {
	if len(tis) == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	m, ok := b.pending[site]
	if !ok {
		m = make(map[string]bool)
		b.pending[site] = m
	}
	for _, ti := range tis {
		m[ti] = true
	}
}

// PendingFor reports (without draining) how many unmark notices are queued
// for site; used by tests and by the idle-flush in the simulation harness.
func (b *Board) PendingFor(site string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending[site])
}

// Outstanding returns the aborted transactions whose UDUM1 condition is not
// yet established, for diagnostics.
func (b *Board) Outstanding() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.entries))
	for ti := range b.entries {
		out = append(out, ti)
	}
	sort.Strings(out)
	return out
}
