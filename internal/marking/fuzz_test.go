package marking

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

// splitMarks turns a comma-separated fuzz string into a mark list, dropping
// empty elements so the fuzzer can explore list shapes freely.
func splitMarks(csv string) []string {
	if csv == "" {
		return nil
	}
	var out []string
	for _, m := range strings.Split(csv, ",") {
		if m != "" {
			out = append(out, m)
		}
	}
	return out
}

func toSet(marks []string) map[string]bool {
	s := make(map[string]bool, len(marks))
	for _, m := range marks {
		s[m] = true
	}
	return s
}

// FuzzCompatible checks the R1 compatibility invariants over arbitrary mark
// sets, for P1 (Compatible), the very simple protocol (CompatibleSimple)
// and the sound P2 dual (CompatibleP2):
//
//   - pure function: a second call with the same inputs returns the same
//     verdict and merged set;
//   - P1 Admit implies transmarks ⊆ sitemarks, and with visited=true the
//     two sets are equal;
//   - the merged set is the sorted union of transmarks and sitemarks;
//   - admission is stable: re-checking the merged set against the same site
//     (now as a visited transaction) must admit again, unchanged;
//   - CompatibleSimple retries on any locally-committed mark and otherwise
//     agrees with Compatible.
func FuzzCompatible(f *testing.F) {
	f.Add("", "", "", false)
	f.Add("t1", "t1", "", true)
	f.Add("t1,t2", "t1", "", true)
	f.Add("", "t3", "", true)
	f.Add("", "t3", "t9", false)
	f.Add("u:t1,l:t2", "t1", "t2", true)
	f.Add("l:t4", "", "t4,t5", false)

	f.Fuzz(func(t *testing.T, transCSV, siteUndoneCSV, siteLCCSV string, visited bool) {
		trans := splitMarks(transCSV)
		siteUndone := splitMarks(siteUndoneCSV)
		siteLC := splitMarks(siteLCCSV)

		v1, m1 := Compatible(trans, visited, siteUndone)
		v2, m2 := Compatible(trans, visited, siteUndone)
		if v1 != v2 || !reflect.DeepEqual(m1, m2) {
			t.Fatalf("Compatible not deterministic: (%v,%v) vs (%v,%v)", v1, m1, v2, m2)
		}
		if v1 == Admit {
			siteSet, transSet := toSet(siteUndone), toSet(trans)
			for _, ti := range trans {
				if !siteSet[ti] {
					t.Fatalf("admitted with carried mark %q absent at site", ti)
				}
			}
			if visited {
				for _, ti := range siteUndone {
					if !transSet[ti] {
						t.Fatalf("visited transaction admitted past uncarried site mark %q", ti)
					}
				}
			}
			union := toSet(trans)
			for _, ti := range siteUndone {
				union[ti] = true
			}
			want := make([]string, 0, len(union))
			for ti := range union {
				want = append(want, ti)
			}
			sort.Strings(want)
			if len(want) == 0 {
				want = nil
			}
			if !reflect.DeepEqual(m1, want) && !(len(m1) == 0 && len(want) == 0) {
				t.Fatalf("merged = %v, want sorted union %v", m1, want)
			}
			rv, rm := Compatible(m1, true, siteUndone)
			if rv != Admit || !reflect.DeepEqual(rm, m1) {
				t.Fatalf("re-check of merged set = (%v,%v), want (admit,%v)", rv, rm, m1)
			}
		}

		sv, sm := CompatibleSimple(trans, visited, siteUndone, siteLC)
		if len(siteLC) > 0 {
			if sv != Retry || sm != nil {
				t.Fatalf("CompatibleSimple with lc marks = (%v,%v), want (retry,nil)", sv, sm)
			}
		} else if sv != v1 || !reflect.DeepEqual(sm, m1) {
			t.Fatalf("CompatibleSimple without lc marks = (%v,%v), diverges from Compatible (%v,%v)", sv, sm, v1, m1)
		}

		pv1, pm1 := CompatibleP2(trans, visited, siteLC, siteUndone)
		pv2, pm2 := CompatibleP2(trans, visited, siteLC, siteUndone)
		if pv1 != pv2 || !reflect.DeepEqual(pm1, pm2) {
			t.Fatalf("CompatibleP2 not deterministic: (%v,%v) vs (%v,%v)", pv1, pm1, pv2, pm2)
		}
		if pv1 == Admit {
			if !sort.StringsAreSorted(pm1) {
				t.Fatalf("CompatibleP2 merged set not sorted: %v", pm1)
			}
			for _, m := range pm1 {
				if !strings.HasPrefix(m, "l:") && !strings.HasPrefix(m, "u:") {
					t.Fatalf("CompatibleP2 merged mark %q lacks an evidence prefix", m)
				}
			}
			rv, rm := CompatibleP2(pm1, true, siteLC, siteUndone)
			if rv != Admit || !reflect.DeepEqual(rm, pm1) {
				t.Fatalf("CompatibleP2 re-check of merged set = (%v,%v), want (admit,%v)", rv, rm, pm1)
			}
		} else if pm1 != nil {
			t.Fatalf("CompatibleP2 returned marks %v with verdict %v", pm1, pv1)
		}
	})
}
