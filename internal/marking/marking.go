// Package marking implements the site-marking protocols of the paper's
// Section 6 (P1 and its dual P2), which layer the correctness criterion
// over O2PC without adding messages.
//
// Protocol P1 tracks, per site, the set of transactions with respect to
// which the site is "undone" (sitemarks.k). A site enters that state when
// it rolls back or compensates for a transaction (rule R2: the mark is
// written as the last operation of the compensating subtransaction), and
// leaves it — becoming "unmarked" — only once the UDUM1 condition holds
// (rule R3): every site where the transaction executed has since been
// accessed by another transaction while marked. Global transactions carry
// an accumulated mark set (transmarks.j); rule R1 admits a subtransaction
// at a site only when the two sets are compatible.
//
// Compatibility, spelled out (the paper's compatible() pseudo-code plus the
// augmented-data-structure discussion around it):
//
//   - every mark the transaction carries must be present at the site
//     (transmarks ⊆ sitemarks) — otherwise the transaction has touched a
//     site undone w.r.t. some Ti and is now entering one that is not, which
//     is exactly the "unmarked + undone" mix the retry note calls
//     unresolvable-without-abort once marks can no longer appear here;
//   - conversely, if the site carries a mark the transaction lacks AND the
//     transaction has already executed somewhere, then some visited site
//     was not undone w.r.t. that Ti (had it been, the mark would have been
//     collected), so admitting the subtransaction would mix an undone site
//     with locally-committed/unmarked sites — the scenario that produces
//     the regular cycle CTi -> Tj -> CTi. Only aborting Tj resolves this
//     (Fatal). A transaction entering its FIRST site simply adopts the
//     site's marks (the R1 union step).
//
// P2 is the dual: it tracks "locally committed" marks, added at the YES
// vote and cleared at the decision; rule: a transaction's sites must be
// all locally-committed w.r.t. Ti or all not.
//
// The UDUM1 witness machinery (Lemma 4) is split between SiteMarks (local
// witness recording) and Board (coordinator-side aggregation). All state
// travels piggybacked on ExecRequest/VoteReply/Decision messages.
package marking

import (
	"sort"
	"strings"
	"sync"
)

// SiteMarks is one site's sitemarks.k set plus local witness state.
//
// Concurrency note: the protocol stores the marking set "as part of the
// database" so that 2PL governs access (Section 6.2). The site package
// enforces that by guarding every SiteMarks access with a lock on a
// designated system key; SiteMarks itself is additionally mutex-protected
// so misuse cannot corrupt it.
type SiteMarks struct {
	mu sync.Mutex
	// undone maps forward-transaction ID -> marked.
	undone map[string]bool
	// witnessed maps forward-transaction ID -> a global transaction has
	// executed here while the mark was present (pending UDUM1 deltas to
	// report on the next VOTE message).
	witnessed map[string]bool
}

// NewSiteMarks returns an empty mark set.
func NewSiteMarks() *SiteMarks {
	return &SiteMarks{
		undone:    make(map[string]bool),
		witnessed: make(map[string]bool),
	}
}

// MarkUndone records that this site is undone with respect to forward
// transaction ti (rule R2).
func (s *SiteMarks) MarkUndone(ti string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.undone[ti] = true
}

// Unmark clears the undone mark for ti (rule R3).
func (s *SiteMarks) Unmark(ti string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.undone, ti)
	delete(s.witnessed, ti)
}

// Contains reports whether the site is undone with respect to ti.
func (s *SiteMarks) Contains(ti string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.undone[ti]
}

// Snapshot returns the sorted current mark set.
func (s *SiteMarks) Snapshot() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.undone))
	for ti := range s.undone {
		out = append(out, ti)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of marks currently present.
func (s *SiteMarks) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.undone)
}

// RecordWitness notes that a global transaction executed at this site while
// the site was marked undone w.r.t. each element of marks.
func (s *SiteMarks) RecordWitness(marks []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ti := range marks {
		if s.undone[ti] {
			s.witnessed[ti] = true
		}
	}
}

// DrainWitnesses returns and clears the pending witness deltas; the site
// attaches them to its next VOTE reply.
func (s *SiteMarks) DrainWitnesses() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.witnessed))
	for ti := range s.witnessed {
		out = append(out, ti)
	}
	for ti := range s.witnessed {
		delete(s.witnessed, ti)
	}
	sort.Strings(out)
	return out
}

// Verdict is the outcome of an R1 compatibility check.
type Verdict uint8

const (
	// Admit means the subtransaction may start; the caller should merge
	// the site's marks into the transaction's transmarks.
	Admit Verdict = iota
	// Retry means the check failed but waiting and retrying may succeed
	// (the site may yet acquire the missing marks while compensation is in
	// flight elsewhere).
	Retry
	// Abort means only aborting the global transaction resolves the
	// incompatibility.
	Abort
)

// String returns the verdict mnemonic.
func (v Verdict) String() string {
	switch v {
	case Admit:
		return "admit"
	case Retry:
		return "retry"
	default:
		return "abort"
	}
}

// Compatible performs the R1 check for protocol P1 between a transaction's
// accumulated transmarks (with visited reporting whether any earlier
// subtransaction was admitted) and a site's current marks. On Admit it
// returns the merged transmarks.
func Compatible(transmarks []string, visited bool, sitemarks []string) (Verdict, []string) {
	siteSet := make(map[string]bool, len(sitemarks))
	for _, ti := range sitemarks {
		siteSet[ti] = true
	}
	transSet := make(map[string]bool, len(transmarks))
	for _, ti := range transmarks {
		transSet[ti] = true
	}

	// Direction 1 (the paper's printed check): every carried mark must be
	// present at the site.
	for _, ti := range transmarks {
		if !siteSet[ti] {
			return Retry, nil
		}
	}
	// Direction 2 (augmented check): a mark present here but not carried
	// means some visited site was not undone w.r.t. ti.
	if visited {
		for _, ti := range sitemarks {
			if !transSet[ti] {
				return Abort, nil
			}
		}
	}

	merged := make([]string, 0, len(transSet)+len(siteSet))
	for ti := range transSet {
		merged = append(merged, ti)
	}
	for ti := range siteSet {
		if !transSet[ti] {
			merged = append(merged, ti)
		}
	}
	sort.Strings(merged)
	return Admit, merged
}

// CompatibleSimple performs the check for the "very simple protocol" of
// Section 6.2's closing discussion: a transaction may execute only at
// sites that are (a) undone with respect to exactly the same transactions
// as every other site it executes at, and (b) locally-committed with
// respect to no transaction. Less concurrency, trivially safe.
//
// siteUndone and siteLC are the site's two mark sets. A non-empty lc set
// is always retryable (locally-committed marks clear at the decision);
// undone mismatches classify exactly as in Compatible.
func CompatibleSimple(transmarks []string, visited bool, siteUndone, siteLC []string) (Verdict, []string) {
	if len(siteLC) > 0 {
		return Retry, nil
	}
	return Compatible(transmarks, visited, siteUndone)
}

// P2 transmark encoding: the dual protocol must track two kinds of
// evidence per forward transaction, so its wire marks are prefixed.
const (
	p2LCPrefix     = "l:" // the transaction executed at a site locally-committed w.r.t. Ti
	p2UndonePrefix = "u:" // the transaction executed at a site undone w.r.t. Ti
)

// P2UndoneSeen extracts the plain forward-transaction IDs of the undone
// evidence in a P2 transmark list (for UDUM1 witness recording).
func P2UndoneSeen(transmarks []string) []string {
	var out []string
	for _, m := range transmarks {
		if strings.HasPrefix(m, p2UndonePrefix) {
			out = append(out, strings.TrimPrefix(m, p2UndonePrefix))
		}
	}
	return out
}

// CompatibleP2 performs the sound dual check for protocol P2.
//
// The paper sketches P2 only as "in some sense dual to P1": a
// transaction's sites must be all locally-committed w.r.t. each Ti, or all
// undone-or-unmarked. Taken literally, the second branch is unsound — it
// admits a transaction that executed at a site *before* Ti arrived there
// (unmarked) and later at a site already compensated for Ti (undone),
// which is precisely the interleaving behind a regular cycle; P1 excludes
// it by keeping undone sites marked until UDUM1. (Reproduction finding:
// see EXPERIMENTS.md.) The sound dual implemented here therefore combines
// P1's undone discipline with the additional all-locally-committed branch:
// per forward transaction Ti, the transaction's sites must be
//
//   - all locally-committed w.r.t. Ti (the dual's extra permissiveness:
//     the reader sees Ti's exposed effects everywhere, A2-style), or
//   - all undone w.r.t. Ti (P1's first branch), or
//   - all unmarked w.r.t. Ti (safe by Lemma 6, as under P1).
//
// siteLC and siteUndone are the site's two mark sets; transmarks carries
// prefixed evidence. Verdicts follow P1's classification: a missing mark
// that may still appear (in-flight compensation, an lc mark not yet
// cleared) is Retry; an established mix is Abort.
func CompatibleP2(transmarks []string, visited bool, siteLC, siteUndone []string) (Verdict, []string) {
	transLC := make(map[string]bool)
	transU := make(map[string]bool)
	for _, m := range transmarks {
		switch {
		case strings.HasPrefix(m, p2LCPrefix):
			transLC[strings.TrimPrefix(m, p2LCPrefix)] = true
		case strings.HasPrefix(m, p2UndonePrefix):
			transU[strings.TrimPrefix(m, p2UndonePrefix)] = true
		}
	}
	lcSet := make(map[string]bool, len(siteLC))
	for _, ti := range siteLC {
		lcSet[ti] = true
	}
	uSet := make(map[string]bool, len(siteUndone))
	for _, ti := range siteUndone {
		uSet[ti] = true
		// A site can transiently hold both marks around the decision;
		// undone dominates (the lc mark is about to clear).
		delete(lcSet, ti)
	}

	universeSet := make(map[string]bool)
	for ti := range transLC {
		universeSet[ti] = true
	}
	for ti := range transU {
		universeSet[ti] = true
	}
	for ti := range lcSet {
		universeSet[ti] = true
	}
	for ti := range uSet {
		universeSet[ti] = true
	}
	// The verdict must not depend on map iteration order: classify every
	// forward transaction (in sorted order), then rank Abort over Retry.
	universe := make([]string, 0, len(universeSet))
	for ti := range universeSet {
		universe = append(universe, ti)
	}
	sort.Strings(universe)

	var merged []string
	abortAny, retryAny := false, false
	for _, ti := range universe {
		tl, tu := transLC[ti], transU[ti]
		sl, su := lcSet[ti], uSet[ti]
		switch {
		case tl: // committed branch: every site must be locally-committed
			switch {
			case sl:
				merged = append(merged, p2LCPrefix+ti)
			case su:
				abortAny = true // lc evidence meets an undone site: unmixable
			default:
				// Unmarked here: Ti's decision already landed (or Ti never
				// ran here); the all-lc branch cannot be completed.
				retryAny = true
			}
		case tu: // undone branch, exactly as P1
			switch {
			case su:
				merged = append(merged, p2UndonePrefix+ti)
			case sl:
				abortAny = true
			default:
				retryAny = true // compensation may still land here
			}
		default: // no evidence yet for ti
			switch {
			case su:
				if visited {
					abortAny = true // some visited site was not undone w.r.t. ti
				} else {
					merged = append(merged, p2UndonePrefix+ti)
				}
			case sl:
				if visited {
					// Previous sites were unmarked w.r.t. ti; the lc mark
					// here will clear at ti's decision — retry.
					retryAny = true
				} else {
					merged = append(merged, p2LCPrefix+ti)
				}
			}
		}
	}
	if abortAny {
		return Abort, nil
	}
	if retryAny {
		return Retry, nil
	}
	sort.Strings(merged)
	return Admit, merged
}
