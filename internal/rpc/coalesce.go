package rpc

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"o2pc/internal/metrics"
	"o2pc/internal/proto"
	"o2pc/internal/sim"
	"o2pc/internal/trace"
)

// Per-peer message coalescing: the wire-side mirror of WAL group commit.
//
// Within one clock tick a coordinator addresses the same site many times —
// a VOTE-REQ per in-flight transaction, a DECISION per decided one. Each
// such call is a full envelope (and, over TCP, a syscall pair) on its own
// pooled connection. The Coalescer decorator batches the calls instead:
// callers enqueue per destination peer, a per-peer flusher (armed on
// demand, driven by the configured Clock so virtual-time runs stay
// deterministic) ships the accumulated messages as a single proto.Batch,
// the server fans them back out through BatchHandler, and the replies
// (votes, ACKs) ride back coalesced in the matching BatchReply.
//
// Ordering: coalescing changes the envelope shape, not the concurrency
// semantics. The decorated transports never ordered independent calls to
// one peer (the in-process Network draws a latency per message; TCP runs
// each call on its own pooled connection), so envelopes ship concurrently
// and BatchHandler handles a batch's items concurrently — exactly as the
// same calls would have been delivered unbatched. What IS guaranteed is
// request/reply matching (each caller gets the reply to its own message)
// and therefore per-sender order: a caller that issues its calls
// sequentially observes them handled sequentially, because each Call
// blocks until its reply lands (TestCoalescerFIFOPerPeer pins this under
// -race). Serializing envelopes or their items would be STRONGER than the
// baseline and deadlocks: a DECISION whose handling blocks on another
// in-flight transaction's lock would wedge the very envelope carrying
// that transaction's DECISION.

// Coalescing defaults, used when the corresponding CoalesceConfig fields
// are zero.
const (
	// DefaultCoalesceWindow is how long a flusher waits to accumulate a
	// batch before shipping it.
	DefaultCoalesceWindow = 200 * time.Microsecond
	// DefaultCoalesceMaxBatch caps the messages per envelope.
	DefaultCoalesceMaxBatch = 64
)

// CoalesceConfig parameterizes NewCoalescer.
type CoalesceConfig struct {
	// Window bounds how long a queued message waits for companions before
	// its batch ships. Zero selects DefaultCoalesceWindow.
	Window time.Duration
	// MaxBatch caps the messages per envelope; a fuller queue ships in
	// several consecutive batches. Zero selects DefaultCoalesceMaxBatch.
	MaxBatch int
	// Clock drives the flusher windows. Under a sim.VirtualClock the whole
	// batching dance runs in virtual time and stays deterministic; nil
	// selects the real clock.
	Clock sim.Clock
	// Tracer, when set, records an rpc.batch event per shipped envelope
	// (node = sender, other = peer, detail = batch size).
	Tracer *trace.Tracer
}

// CoalesceStats exposes the decorator's instruments for adoption into a
// metrics.Registry.
type CoalesceStats struct {
	// Batches counts shipped envelopes.
	Batches *metrics.Counter
	// BatchSize records the number of messages coalesced per envelope.
	BatchSize *metrics.Histogram
}

// Publish adopts the instruments into reg under prefixed names.
func (s CoalesceStats) Publish(reg *metrics.Registry, prefix string) {
	reg.Adopt(prefix+"rpc_batches_total", s.Batches)
	reg.Adopt(prefix+"rpc_batch_size", s.BatchSize)
}

// callResult is one batched call's outcome.
type callResult struct {
	body any
	err  error
}

// callWaiter is one caller parked in Call awaiting its batch's reply.
type callWaiter struct {
	ctx  context.Context
	msg  any
	done chan callResult // buffered(1); receives the fan-out outcome
	// claim is the clock's wake-up reservation, installed by the flusher
	// immediately before the send on done and consumed by the woken caller
	// (the wal.GroupCommitLog discipline).
	claim func()
}

// peerBatch is the queue and flusher state for one (from, to) pair.
type peerBatch struct {
	from, to string
	waiters  []*callWaiter
	armed    bool
}

// Coalescer is a Caller decorator that batches coalescable messages
// (VOTE-REQs, DECISIONs — and their replies implicitly) per destination
// peer. Everything else passes straight through to the inner transport.
type Coalescer struct {
	inner    Caller
	clock    sim.Clock
	window   time.Duration
	maxBatch int
	tracer   *trace.Tracer

	mu    sync.Mutex
	peers map[linkKey]*peerBatch

	batches   metrics.Counter
	batchSize *metrics.Histogram
}

// NewCoalescer wraps inner with per-peer message coalescing. The peer's
// handler must be wrapped in BatchHandler (core.Cluster and the cmd/
// binaries do this whenever coalescing can be enabled).
func NewCoalescer(inner Caller, cfg CoalesceConfig) *Coalescer {
	if cfg.Window <= 0 {
		cfg.Window = DefaultCoalesceWindow
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultCoalesceMaxBatch
	}
	return &Coalescer{
		inner:     inner,
		clock:     sim.OrReal(cfg.Clock),
		window:    cfg.Window,
		maxBatch:  cfg.MaxBatch,
		tracer:    cfg.Tracer,
		peers:     make(map[linkKey]*peerBatch),
		batchSize: metrics.NewHistogram(),
	}
}

// Stats returns the decorator's instruments.
func (c *Coalescer) Stats() CoalesceStats {
	return CoalesceStats{Batches: &c.batches, BatchSize: c.batchSize}
}

// coalescable reports whether msg rides a batch envelope. Only the
// second-phase fan-out messages qualify: VOTE-REQs and DECISIONs are what
// a coordinator sends to one site many times per tick. ExecRequests carry
// the bulk payload and open the per-transaction conversation — delaying
// them a window buys nothing — and resolve inquiries are rare by design.
func coalescable(msg any) bool {
	switch msg.(type) {
	case proto.VoteRequest, *proto.VoteRequest, proto.Decision, *proto.Decision, proto.Ack, *proto.Ack:
		return true
	default:
		return false
	}
}

// Call implements Caller: coalescable messages are queued for their peer's
// next envelope; everything else passes through.
func (c *Coalescer) Call(ctx context.Context, from, to string, req any) (any, error) {
	if !coalescable(req) {
		return c.inner.Call(ctx, from, to, req)
	}
	w := &callWaiter{ctx: ctx, msg: req, done: make(chan callResult, 1)}
	c.mu.Lock()
	key := linkKey{from, to}
	pb := c.peers[key]
	if pb == nil {
		pb = &peerBatch{from: from, to: to}
		c.peers[key] = pb
	}
	pb.waiters = append(pb.waiters, w)
	if !pb.armed {
		pb.armed = true
		//o2pcvet:ignore goleak -- the flusher disarms and exits as soon as a window finds its peer queue empty
		c.clock.Go(func() { c.flusherLoop(pb) })
	}
	c.mu.Unlock()
	return c.await(w)
}

// flusherLoop drains one peer's queue every window until a window closes
// on an empty queue. Each envelope ships on its own goroutine: the loop
// must never block inside a flush, because the in-process transport runs
// the peer's handler on the shipping goroutine, and a handler can block
// on state (a compensation lock, say) that only a LATER envelope's
// message releases. The flusher's only job is pacing.
func (c *Coalescer) flusherLoop(pb *peerBatch) {
	for {
		//o2pcvet:ignore errflow -- Background never expires, so the window sleep cannot fail
		_ = c.clock.Sleep(context.Background(), c.window)
		c.mu.Lock()
		if len(pb.waiters) == 0 {
			pb.armed = false
			c.mu.Unlock()
			return
		}
		all := pb.waiters
		pb.waiters = nil
		c.mu.Unlock()
		for len(all) > 0 {
			batch := all
			if len(batch) > c.maxBatch {
				batch = batch[:c.maxBatch]
			}
			all = all[len(batch):]
			//o2pcvet:ignore goleak -- the shipping goroutine exits as soon as the inner call returns and the waiters are released
			c.clock.Go(func() { c.flush(pb, batch) })
		}
	}
}

// flush ships one envelope and fans its replies back to the waiters.
func (c *Coalescer) flush(pb *peerBatch, batch []*callWaiter) {
	msgs := make([]any, len(batch))
	for i, w := range batch {
		msgs[i] = w.msg
	}
	c.batches.Inc()
	c.batchSize.Observe(float64(len(batch)))
	c.tracer.Emit(pb.from, trace.EvRPCBatch, "", pb.to, strconv.Itoa(len(batch)))
	// The envelope rides under the first waiter's context: waiters queue
	// in arrival order, so the oldest call's deadline is the tightest one.
	raw, err := c.inner.Call(batch[0].ctx, pb.from, pb.to, proto.Batch{Msgs: msgs})
	if err != nil {
		c.release(batch, func(int) callResult { return callResult{err: err} })
		return
	}
	reply, ok := raw.(proto.BatchReply)
	if !ok || len(reply.Items) != len(batch) {
		err := fmt.Errorf("%w: peer %s answered batch of %d with %T", ErrDecode, pb.to, len(batch), raw)
		c.release(batch, func(int) callResult { return callResult{err: err} })
		return
	}
	c.release(batch, func(i int) callResult {
		if e := reply.Items[i].Err; e != "" {
			return callResult{err: fmt.Errorf("rpc: remote error from %s: %s", pb.to, e)}
		}
		return callResult{body: reply.Items[i].Body}
	})
}

// release hands each waiter its result, pairing every send with a
// PrepareWake reservation so virtual time cannot advance between the send
// and the waiter resuming.
func (c *Coalescer) release(batch []*callWaiter, result func(int) callResult) {
	for i, w := range batch {
		w.claim = c.clock.PrepareWake()
		w.done <- result(i)
	}
}

// await blocks the caller until its batch's reply is fanned out, following
// the group-commit wait discipline: try the channel first, then park under
// BlockOn so a virtual clock knows the goroutine waits on a non-clock
// hand-off.
func (c *Coalescer) await(w *callWaiter) (any, error) {
	var res callResult
	select {
	case res = <-w.done:
		if w.claim != nil {
			w.claim()
		}
		return res.body, res.err
	default:
	}
	c.clock.BlockOn(context.Background(), func() func() {
		res = <-w.done
		return w.claim
	})
	if w.claim != nil {
		w.claim()
	}
	return res.body, res.err
}

// BatchHandler wraps a node handler so proto.Batch envelopes fan back out
// server-side: each inner message is handled on its own goroutine — the
// same concurrency the transport would have given the calls unbatched,
// and necessary for liveness, since one message's handler may block on
// state another message in the same envelope releases — and the replies
// ride back index-matched as one BatchReply. Spawns go through clock
// (nil selects the real clock) so virtual-time runs stay deterministic.
// Non-batch messages pass straight through, so wrapping is always safe.
func BatchHandler(h Handler, clock sim.Clock) Handler {
	clock = sim.OrReal(clock)
	return func(ctx context.Context, from string, req any) (any, error) {
		b, ok := req.(proto.Batch)
		if !ok {
			return h(ctx, from, req)
		}
		items := make([]proto.BatchItem, len(b.Msgs))
		g := sim.NewGroup(clock)
		for i, m := range b.Msgs {
			i, m := i, m
			g.Go(func() {
				body, err := h(ctx, from, m)
				items[i] = proto.BatchItem{Body: body}
				if err != nil {
					items[i].Err = err.Error()
				}
			})
		}
		g.Wait()
		return proto.BatchReply{Items: items}, nil
	}
}

var _ Caller = (*Coalescer)(nil)
