package rpc

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"o2pc/internal/proto"
)

func startEchoServer(t *testing.T) (net.Addr, *Server) {
	t.Helper()
	srv := NewServer("b", func(ctx context.Context, from string, m any) (any, error) {
		if v, ok := m.(proto.VoteRequest); ok {
			return proto.VoteReply{Commit: true, Reason: v.TxnID + " from " + from}, nil
		}
		return m, nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr(), srv
}

// TestTCPProtoRoundTrip pins that protocol messages cross the wire via the
// binary codec (no gob registration needed for them) and come back as the
// same value types the in-process Network delivers.
func TestTCPProtoRoundTrip(t *testing.T) {
	addr, _ := startEchoServer(t)
	client := NewTCPClient(map[string]string{"b": addr.String()})
	defer client.Close()
	raw, err := client.Call(context.Background(), "a", "b", proto.VoteRequest{TxnID: "T9"})
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	reply, ok := raw.(proto.VoteReply)
	if !ok || !reply.Commit || reply.Reason != "T9 from a" {
		t.Fatalf("reply = %#v", raw)
	}
	// A request with every container shape survives the round trip.
	req := proto.ExecRequest{TxnID: "T10", Ops: []proto.Operation{proto.AddMin("acct", -40, 0)},
		Comp: proto.CompSemantic, Protocol: proto.O2PC, Marking: proto.MarkP1,
		TransMarks: []string{"T1", "T2"}, Visited: true, Round: 3}
	raw, err = client.Call(context.Background(), "a", "b", req)
	if err != nil {
		t.Fatalf("exec echo: %v", err)
	}
	got := raw.(proto.ExecRequest)
	if got.TxnID != "T10" || len(got.Ops) != 1 || !got.Ops[0].HasMin || got.TransMarks[1] != "T2" || got.Round != 3 {
		t.Fatalf("exec echo = %#v", got)
	}
}

// TestTCPServerTornFrame pins transport robustness: a connection killed
// mid-envelope must neither wedge the server nor poison other
// connections — a fresh call right after the torn one succeeds.
func TestTCPServerTornFrame(t *testing.T) {
	addr, _ := startEchoServer(t)

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	// A valid header announcing 64 payload bytes, then only 5 of them, then
	// the kill: the server sees a torn frame.
	frame, err := appendRequestFrame(nil, "a", proto.VoteRequest{TxnID: "TTORN-padding-so-the-frame-is-long"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame[:frameHdrSize+5]); err != nil {
		t.Fatalf("partial write: %v", err)
	}
	conn.Close()

	client := NewTCPClient(map[string]string{"b": addr.String()})
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := client.Call(ctx, "a", "b", proto.VoteRequest{TxnID: "T1"}); err != nil {
		t.Fatalf("call after torn frame: %v", err)
	}
}

// TestTCPServerDecodeErrorReply pins the typed decode error: garbage that
// fails the magic check is answered with a decode-error frame naming the
// problem — not a silent connection drop — and then the conn is closed
// (the stream cannot be resynchronized).
func TestTCPServerDecodeErrorReply(t *testing.T) {
	addr, _ := startEchoServer(t)
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	kind, payload, err := readFrame(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatalf("expected a decode-error frame, got read error %v", err)
	}
	if kind != frameDecodeErr {
		t.Fatalf("frame kind = %d, want decode-error", kind)
	}
	if !strings.Contains(string(payload), "magic") {
		t.Fatalf("decode-error payload %q does not name the bad magic", payload)
	}
	// The server closes after the notice.
	if _, err := io.ReadAll(conn); err != nil && !errors.Is(err, io.EOF) {
		t.Fatalf("post-notice read: %v", err)
	}
}

// TestTCPVersionMismatch pins the negotiation byte both ways: a server
// seeing a future version refuses with ErrWireVersion detail, and a client
// whose peer answers with a different version surfaces a typed error
// rather than misparsing the stream.
func TestTCPVersionMismatch(t *testing.T) {
	addr, _ := startEchoServer(t)

	// Old/new client against this server: stamp version+1 on a frame.
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	frame, err := appendRequestFrame(nil, "a", proto.VoteRequest{TxnID: "T1"})
	if err != nil {
		t.Fatal(err)
	}
	frame[2] = proto.WireVersion + 1
	if _, err := conn.Write(frame); err != nil {
		t.Fatalf("write: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	kind, payload, err := readFrame(bufio.NewReader(conn), nil)
	if err != nil || kind != frameDecodeErr {
		t.Fatalf("version mismatch answer: kind=%d payload=%q err=%v", kind, payload, err)
	}
	if !strings.Contains(string(payload), "version") {
		t.Fatalf("decode-error payload %q does not name the version", payload)
	}

	// Client against a peer speaking another version: the fake server
	// echoes a reply frame stamped version+1.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		if _, _, err := readFrame(bufio.NewReader(c), nil); err != nil {
			return
		}
		reply, _ := appendReplyFrame(nil, "", proto.Ack{TxnID: "T1"})
		reply[2] = proto.WireVersion + 1
		//o2pcvet:ignore errflow -- test fake peer; the client-side assertion below is the check
		_, _ = c.Write(reply)
	}()
	client := NewTCPClient(map[string]string{"b": ln.Addr().String()})
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err = client.Call(ctx, "a", "b", proto.VoteRequest{TxnID: "T1"})
	if !errors.Is(err, ErrWireVersion) {
		t.Fatalf("err = %v, want ErrWireVersion", err)
	}
}
