package rpc

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// The TCP transport frames each RPC as a binary frame pair (frame.go) on a
// fresh or pooled connection. It exists for the cmd/ multi-process
// deployment; simulations use Network.

// Server serves a node's handler over TCP.
type Server struct {
	node    string
	handler Handler
	ln      net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
}

// NewServer returns a server for node backed by handler; call Serve to
// accept connections.
func NewServer(node string, handler Handler) *Server {
	return &Server{node: node, handler: handler, conns: make(map[net.Conn]bool)}
}

// Serve accepts connections on ln until Close. Each connection carries a
// sequential stream of RPCs.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = true
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var inBuf, outBuf []byte
	for {
		kind, payload, err := readFrame(br, inBuf)
		if err != nil {
			// A version mismatch or corrupt frame gets a typed decode-error
			// frame before the close, so the peer learns why instead of
			// seeing a silent hangup; a plain EOF/conn error gets nothing
			// (there is no one left to tell).
			if errors.Is(err, ErrWireVersion) || errors.Is(err, ErrDecode) {
				s.replyDecodeErr(bw, err)
			}
			return
		}
		inBuf = payload[:0]
		if kind != frameRequest {
			s.replyDecodeErr(bw, fmt.Errorf("%w: unexpected frame kind %d", ErrDecode, kind))
			return
		}
		from, body, err := decodeRequestPayload(payload)
		if err != nil {
			s.replyDecodeErr(bw, err)
			return
		}
		resp, err := s.handler(context.Background(), from, body)
		errText := ""
		if err != nil {
			errText = err.Error()
		}
		out, err := appendReplyFrame(outBuf[:0], errText, resp)
		if err != nil {
			// The handler produced a reply the codec cannot ship; report it
			// as a remote error rather than killing the stream.
			//o2pcvet:ignore errflow -- a nil-body error frame always encodes; the error path cannot recurse
			out, _ = appendReplyFrame(outBuf[:0], "rpc: unencodable reply: "+err.Error(), nil)
		}
		outBuf = out[:0]
		if _, err := bw.Write(out); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// replyDecodeErr best-effort sends the typed decode-error frame; the
// caller closes the connection either way (the stream lost framing).
func (s *Server) replyDecodeErr(bw *bufio.Writer, err error) {
	//o2pcvet:ignore errflow -- best-effort courtesy frame on an already-broken conn; the close follows regardless
	_, _ = bw.Write(appendDecodeErrFrame(nil, err.Error()))
	//o2pcvet:ignore errflow -- see above
	_ = bw.Flush()
}

// Close stops the server and closes active connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	return err
}

// TCPClient is a Caller that maps node names to TCP addresses.
//
// Each in-flight call owns a whole connection, drawn from a per-peer idle
// pool (up to maxIdle kept warm) and dialled fresh beyond that. A single
// shared connection would serialize every call to a peer behind the
// slowest one — with the server handling each connection's requests
// sequentially, one subtransaction blocked in a lock wait at a site would
// stall the lock holder's own vote and decision traffic to that site on
// the client side, turning every lock conflict into a timeout convoy.
type TCPClient struct {
	mu      sync.Mutex
	addrs   map[string]string
	idle    map[string][]*tcpConn
	open    map[*tcpConn]bool // every live conn, pooled or checked out
	maxIdle int
}

// DefaultMaxIdlePerPeer bounds the warm connections kept per peer unless
// TCPClientConfig overrides it; calls beyond the bound dial and close
// ephemeral connections instead of growing the pool.
const DefaultMaxIdlePerPeer = 16

// TCPClientConfig tunes a TCPClient.
type TCPClientConfig struct {
	// MaxIdlePerPeer bounds the warm connections kept per peer. Zero
	// selects DefaultMaxIdlePerPeer; negative disables pooling entirely
	// (every call dials).
	MaxIdlePerPeer int
}

type tcpConn struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	// buf is the conn's scratch encode/read buffer; the conn is owned by
	// one call at a time, so reuse is race-free.
	buf []byte
}

// NewTCPClient returns a client over the given node -> "host:port" map
// with default tuning.
func NewTCPClient(addrs map[string]string) *TCPClient {
	return NewTCPClientConfig(addrs, TCPClientConfig{})
}

// NewTCPClientConfig returns a client with explicit tuning.
func NewTCPClientConfig(addrs map[string]string, cfg TCPClientConfig) *TCPClient {
	cp := make(map[string]string, len(addrs))
	for k, v := range addrs {
		cp[k] = v
	}
	maxIdle := cfg.MaxIdlePerPeer
	if maxIdle == 0 {
		maxIdle = DefaultMaxIdlePerPeer
	}
	if maxIdle < 0 {
		maxIdle = 0
	}
	return &TCPClient{addrs: cp, idle: make(map[string][]*tcpConn), open: make(map[*tcpConn]bool), maxIdle: maxIdle}
}

// checkout returns a connection to "to" for this call's exclusive use:
// the most recently parked idle one, else a fresh dial.
func (c *TCPClient) checkout(to string) (*tcpConn, error) {
	c.mu.Lock()
	if pool := c.idle[to]; len(pool) > 0 {
		tc := pool[len(pool)-1]
		c.idle[to] = pool[:len(pool)-1]
		c.mu.Unlock()
		return tc, nil
	}
	addr, ok := c.addrs[to]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, to)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %s (%v)", ErrUnreachable, to, err)
	}
	tc := &tcpConn{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	c.mu.Lock()
	if c.open == nil { // Closed while dialling: refuse to leak the conn
		c.mu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("%w: %s (client closed)", ErrUnreachable, to)
	}
	c.open[tc] = true
	c.mu.Unlock()
	return tc, nil
}

// checkin parks a healthy connection back in to's idle pool, or closes it
// when the pool is full or the client is closed.
func (c *TCPClient) checkin(to string, tc *tcpConn) {
	c.mu.Lock()
	if c.open != nil && c.open[tc] && len(c.idle[to]) < c.maxIdle {
		c.idle[to] = append(c.idle[to], tc)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	c.drop(tc)
}

func (c *TCPClient) drop(tc *tcpConn) {
	c.mu.Lock()
	delete(c.open, tc)
	c.mu.Unlock()
	tc.conn.Close()
}

// Call implements Caller over TCP. Transport failures surface as
// ErrUnreachable so that protocol-level retry logic is transport-agnostic;
// frame-level failures (version mismatch, torn frame, server decode-error
// notice) additionally match ErrWireVersion/ErrDecode for diagnosis.
func (c *TCPClient) Call(ctx context.Context, from, to string, req any) (any, error) {
	tc, err := c.checkout(to)
	if err != nil {
		return nil, err
	}
	dl := zeroTime
	if d, ok := ctx.Deadline(); ok {
		dl = d
	}
	if err := tc.conn.SetDeadline(dl); err != nil {
		c.drop(tc)
		return nil, fmt.Errorf("%w: set deadline for %s (%v)", ErrUnreachable, to, err)
	}
	out, err := appendRequestFrame(tc.buf[:0], from, req)
	if err != nil {
		c.checkin(to, tc) // the conn is fine; the message was not
		return nil, err
	}
	tc.buf = out[:0]
	if _, err := tc.bw.Write(out); err != nil {
		c.drop(tc)
		return nil, fmt.Errorf("%w: send to %s (%v)", ErrUnreachable, to, err)
	}
	if err := tc.bw.Flush(); err != nil {
		c.drop(tc)
		return nil, fmt.Errorf("%w: send to %s (%v)", ErrUnreachable, to, err)
	}
	kind, payload, err := readFrame(tc.br, nil)
	if err != nil {
		c.drop(tc)
		if errors.Is(err, ErrWireVersion) || errors.Is(err, ErrDecode) {
			return nil, fmt.Errorf("%w: recv from %s: %w", ErrUnreachable, to, err)
		}
		return nil, fmt.Errorf("%w: recv from %s (%v)", ErrUnreachable, to, err)
	}
	switch kind {
	case frameReply:
	case frameDecodeErr:
		// The server refused our frame with a typed notice and is closing
		// the conn; surface its reason verbatim.
		c.drop(tc)
		return nil, fmt.Errorf("%w: peer %s rejected frame: %s", ErrDecode, to, string(payload))
	default:
		c.drop(tc)
		return nil, fmt.Errorf("%w: unexpected frame kind %d from %s", ErrDecode, kind, to)
	}
	errText, body, err := decodeReplyPayload(payload)
	if err != nil {
		c.drop(tc)
		return nil, fmt.Errorf("%w: reply from %s: %w", ErrUnreachable, to, err)
	}
	c.checkin(to, tc)
	if errText != "" {
		return nil, fmt.Errorf("rpc: remote error from %s: %s", to, errText)
	}
	return body, nil
}

// Close closes every connection, idle or in flight, and stops the client
// from pooling or dialling new ones.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	open := c.open
	c.open = nil
	c.idle = nil
	c.mu.Unlock()
	for tc := range open {
		tc.conn.Close()
	}
	return nil
}

var zeroTime time.Time

var _ Caller = (*TCPClient)(nil)
