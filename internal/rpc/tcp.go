package rpc

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"
)

// The TCP transport frames each RPC as a gob-encoded envelope pair on a
// fresh or pooled connection. It exists for the cmd/ multi-process
// deployment; simulations use Network.

// envelope is the on-wire request frame.
type envelope struct {
	From string
	Body any
}

// replyEnvelope is the on-wire response frame.
type replyEnvelope struct {
	Err  string
	Body any
}

// Server serves a node's handler over TCP.
type Server struct {
	node    string
	handler Handler
	ln      net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
}

// NewServer returns a server for node backed by handler; call Serve to
// accept connections.
func NewServer(node string, handler Handler) *Server {
	return &Server{node: node, handler: handler, conns: make(map[net.Conn]bool)}
}

// Serve accepts connections on ln until Close. Each connection carries a
// sequential stream of RPCs.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = true
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		resp, err := s.handler(context.Background(), env.From, env.Body)
		out := replyEnvelope{Body: resp}
		if err != nil {
			out.Err = err.Error()
		}
		if err := enc.Encode(&out); err != nil {
			return
		}
	}
}

// Close stops the server and closes active connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	return err
}

// TCPClient is a Caller that maps node names to TCP addresses.
//
// Each in-flight call owns a whole connection, drawn from a per-peer idle
// pool (up to maxIdlePerPeer kept warm) and dialled fresh beyond that.
// A single shared connection would serialize every call to a peer behind
// the slowest one — with the server handling each connection's requests
// sequentially, one subtransaction blocked in a lock wait at a site would
// stall the lock holder's own vote and decision traffic to that site on
// the client side, turning every lock conflict into a timeout convoy.
type TCPClient struct {
	mu    sync.Mutex
	addrs map[string]string
	idle  map[string][]*tcpConn
	open  map[*tcpConn]bool // every live conn, pooled or checked out
}

// maxIdlePerPeer bounds the warm connections kept per peer; calls beyond
// that dial and close ephemeral connections instead of growing the pool.
const maxIdlePerPeer = 16

type tcpConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// NewTCPClient returns a client over the given node -> "host:port" map.
func NewTCPClient(addrs map[string]string) *TCPClient {
	cp := make(map[string]string, len(addrs))
	for k, v := range addrs {
		cp[k] = v
	}
	return &TCPClient{addrs: cp, idle: make(map[string][]*tcpConn), open: make(map[*tcpConn]bool)}
}

// checkout returns a connection to "to" for this call's exclusive use:
// the most recently parked idle one, else a fresh dial.
func (c *TCPClient) checkout(to string) (*tcpConn, error) {
	c.mu.Lock()
	if pool := c.idle[to]; len(pool) > 0 {
		tc := pool[len(pool)-1]
		c.idle[to] = pool[:len(pool)-1]
		c.mu.Unlock()
		return tc, nil
	}
	addr, ok := c.addrs[to]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, to)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %s (%v)", ErrUnreachable, to, err)
	}
	tc := &tcpConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
	c.mu.Lock()
	if c.open == nil { // Closed while dialling: refuse to leak the conn
		c.mu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("%w: %s (client closed)", ErrUnreachable, to)
	}
	c.open[tc] = true
	c.mu.Unlock()
	return tc, nil
}

// checkin parks a healthy connection back in to's idle pool, or closes it
// when the pool is full or the client is closed.
func (c *TCPClient) checkin(to string, tc *tcpConn) {
	c.mu.Lock()
	if c.open != nil && c.open[tc] && len(c.idle[to]) < maxIdlePerPeer {
		c.idle[to] = append(c.idle[to], tc)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	c.drop(tc)
}

func (c *TCPClient) drop(tc *tcpConn) {
	c.mu.Lock()
	delete(c.open, tc)
	c.mu.Unlock()
	tc.conn.Close()
}

// Call implements Caller over TCP. Transport failures surface as
// ErrUnreachable so that protocol-level retry logic is transport-agnostic.
func (c *TCPClient) Call(ctx context.Context, from, to string, req any) (any, error) {
	tc, err := c.checkout(to)
	if err != nil {
		return nil, err
	}
	dl := zeroTime
	if d, ok := ctx.Deadline(); ok {
		dl = d
	}
	if err := tc.conn.SetDeadline(dl); err != nil {
		c.drop(tc)
		return nil, fmt.Errorf("%w: set deadline for %s (%v)", ErrUnreachable, to, err)
	}
	if err := tc.enc.Encode(&envelope{From: from, Body: req}); err != nil {
		c.drop(tc)
		return nil, fmt.Errorf("%w: send to %s (%v)", ErrUnreachable, to, err)
	}
	var reply replyEnvelope
	if err := tc.dec.Decode(&reply); err != nil {
		c.drop(tc)
		return nil, fmt.Errorf("%w: recv from %s (%v)", ErrUnreachable, to, err)
	}
	c.checkin(to, tc)
	if reply.Err != "" {
		return nil, fmt.Errorf("rpc: remote error from %s: %s", to, reply.Err)
	}
	return reply.Body, nil
}

// Close closes every connection, idle or in flight, and stops the client
// from pooling or dialling new ones.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	open := c.open
	c.open = nil
	c.idle = nil
	c.mu.Unlock()
	for tc := range open {
		tc.conn.Close()
	}
	return nil
}

var zeroTime time.Time

var _ Caller = (*TCPClient)(nil)
