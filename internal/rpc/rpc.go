// Package rpc provides the message transport between coordinators and
// sites.
//
// Two transports implement the same Caller interface:
//
//   - Network: an in-process simulated network with configurable one-way
//     latency, jitter, message loss, link partitions and node crashes. All
//     simulation experiments run over it; its per-message-type census is
//     the data source for experiment E6 ("no extra messages beyond 2PC").
//   - TCP (tcp.go): a gob-encoded TCP transport for the multi-process
//     deployment under cmd/.
//
// Every request and every reply counts as one message, mirroring the
// paper's three-round accounting (request-for-vote, vote, decision).
package rpc

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"o2pc/internal/metrics"
	"o2pc/internal/proto"
	"o2pc/internal/sim"
	"o2pc/internal/trace"
)

// Handler processes one inbound request at a node.
type Handler func(ctx context.Context, from string, req any) (any, error)

// Caller issues a request to a named node and waits for its reply.
type Caller interface {
	Call(ctx context.Context, from, to string, req any) (any, error)
}

// Transport errors.
var (
	// ErrUnreachable is returned when the destination is down, partitioned
	// away, or the message was dropped.
	ErrUnreachable = errors.New("rpc: destination unreachable")
	// ErrUnknownNode is returned for destinations that were never
	// registered.
	ErrUnknownNode = errors.New("rpc: unknown node")
)

// Config parameterizes the simulated network.
type Config struct {
	// MinLatency and MaxLatency bound the one-way delay applied to every
	// message; the actual delay is uniform in [Min, Max].
	MinLatency time.Duration
	MaxLatency time.Duration
	// DropProb is the probability that any single message is lost (the
	// caller observes ErrUnreachable).
	DropProb float64
	// Seed seeds the network's private RNG; 0 selects a fixed default so
	// simulations are reproducible by default.
	Seed int64
	// Clock supplies the network's notion of time (latency waits). Nil
	// defaults to the real clock; the deterministic simulation harness
	// passes a sim.VirtualClock.
	Clock sim.Clock
	// Tracer, when set, records msg.send/msg.recv/msg.drop events for
	// every message crossing the network.
	Tracer *trace.Tracer
}

// linkKey identifies one directed link for per-link randomness.
type linkKey struct{ from, to string }

// netState is the network's topology snapshot: which nodes exist, which are
// down, and which directed links are severed. It is immutable once
// published — mutators clone the current snapshot under the network mutex
// and swap the pointer, so the per-message reachability checks are plain
// atomic loads instead of mutex acquisitions (topology changes are rare;
// messages are the hot path).
type netState struct {
	nodes       map[string]Handler
	down        map[string]bool
	partitioned map[string]map[string]bool
}

// Network is the in-process simulated transport.
type Network struct {
	cfg    Config
	seed   int64
	clock  sim.Clock
	tracer *trace.Tracer

	mu    sync.Mutex
	links map[linkKey]*rand.Rand
	state atomic.Pointer[netState]

	counts *metrics.Registry
	// census lazily caches the counters for the known protocol messages so
	// steady-state per-message accounting is one atomic increment, not a
	// registry lookup under a mutex. Entries are created on first sight of
	// each type, preserving the census property that only message types
	// actually sent appear in Counts() (experiment E6 relies on that).
	census [censusKinds]atomic.Pointer[metrics.Counter]
}

// census indices, one per protocol message type; censusOther covers
// anything outside the protocol vocabulary (counted via the registry
// directly).
const (
	censusExecRequest = iota
	censusExecReply
	censusVoteRequest
	censusVoteReply
	censusDecision
	censusAck
	censusResolveRequest
	censusResolveReply
	censusRepBegin
	censusRepAccept
	censusRepReply
	censusRepNewTerm
	censusRepNewTermReply
	censusKinds
	censusOther = -1
)

// NewNetwork returns a network with the given configuration.
func NewNetwork(cfg Config) *Network {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	n := &Network{
		cfg:    cfg,
		seed:   seed,
		clock:  sim.OrReal(cfg.Clock),
		tracer: cfg.Tracer,
		links:  make(map[linkKey]*rand.Rand),
		counts: metrics.NewRegistry(),
	}
	n.state.Store(&netState{
		nodes:       make(map[string]Handler),
		down:        make(map[string]bool),
		partitioned: make(map[string]map[string]bool),
	})
	return n
}

// mutate applies f to a deep copy of the current topology snapshot and
// publishes the result. The network mutex serializes concurrent mutators.
func (n *Network) mutate(f func(*netState)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	cur := n.state.Load()
	next := &netState{
		nodes:       make(map[string]Handler, len(cur.nodes)),
		down:        make(map[string]bool, len(cur.down)),
		partitioned: make(map[string]map[string]bool, len(cur.partitioned)),
	}
	for k, v := range cur.nodes {
		next.nodes[k] = v
	}
	for k, v := range cur.down {
		next.down[k] = v
	}
	for k, m := range cur.partitioned {
		mm := make(map[string]bool, len(m))
		for k2, v := range m {
			mm[k2] = v
		}
		next.partitioned[k] = mm
	}
	f(next)
	n.state.Store(next)
}

// linkRNG returns the directed link's private RNG, creating it on first
// use. Per-link RNGs keep the delay/drop sequence of one link independent
// of traffic on every other link: under the virtual clock a run's outcome
// then depends only on the seed, not on which goroutine drew first from a
// shared stream. Callers must hold n.mu.
func (n *Network) linkRNG(from, to string) *rand.Rand {
	k := linkKey{from, to}
	if r, ok := n.links[k]; ok {
		return r
	}
	h := fnv.New64a()
	h.Write([]byte(from))
	h.Write([]byte{0})
	h.Write([]byte(to))
	r := rand.New(rand.NewSource(int64(h.Sum64()) ^ n.seed))
	n.links[k] = r
	return r
}

// Register installs the handler for a node name, replacing any previous
// handler.
func (n *Network) Register(node string, h Handler) {
	n.mutate(func(st *netState) { st.nodes[node] = h })
}

// SetDown marks a node crashed (true) or recovered (false). Messages to a
// down node are lost after the usual delay.
func (n *Network) SetDown(node string, down bool) {
	n.mutate(func(st *netState) { st.down[node] = down })
}

// SetPartition severs (or heals) the bidirectional link between a and b.
func (n *Network) SetPartition(a, b string, severed bool) {
	n.SetOneWayPartition(a, b, severed)
	n.SetOneWayPartition(b, a, severed)
}

// SetOneWayPartition severs (or heals) only the from -> to direction:
// requests from `from` are lost, but traffic the other way still flows.
// Useful for isolating one protocol round (e.g. decisions but not votes).
func (n *Network) SetOneWayPartition(from, to string, severed bool) {
	n.mutate(func(st *netState) {
		m, ok := st.partitioned[from]
		if !ok {
			m = make(map[string]bool)
			st.partitioned[from] = m
		}
		m[to] = severed
	})
}

// Counts returns the message census registry. Counter names are message
// type names (e.g. "proto.ExecRequest").
func (n *Network) Counts() *metrics.Registry { return n.counts }

// delay computes one random one-way latency for the from -> to link.
func (n *Network) delay(from, to string) time.Duration {
	// cfg is immutable after construction: a degenerate latency range
	// needs no RNG draw and — on the zero-latency configurations the
	// benchmarks run — no mutex either.
	if n.cfg.MaxLatency <= n.cfg.MinLatency {
		return n.cfg.MinLatency
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	span := n.cfg.MaxLatency - n.cfg.MinLatency
	return n.cfg.MinLatency + time.Duration(n.linkRNG(from, to).Int63n(int64(span)))
}

func (n *Network) dropped(from, to string) bool {
	if n.cfg.DropProb <= 0 {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.linkRNG(from, to).Float64() < n.cfg.DropProb
}

// reachable reports whether a message from -> to can currently be
// delivered.
func (n *Network) reachable(from, to string) (Handler, error) {
	st := n.state.Load()
	h, ok := st.nodes[to]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, to)
	}
	if st.down[to] {
		return nil, fmt.Errorf("%w: node %s is down", ErrUnreachable, to)
	}
	if st.partitioned[from][to] {
		return nil, fmt.Errorf("%w: link %s<->%s partitioned", ErrUnreachable, from, to)
	}
	return h, nil
}

func (n *Network) count(msg any) {
	kind := msgKind(msg)
	if kind == censusOther {
		n.counts.Counter(msgName(msg)).Inc()
		return
	}
	c := n.census[kind].Load()
	if c == nil {
		// Registry.Counter is idempotent, so a racing first sight of the
		// same type caches the same counter.
		c = n.counts.Counter(censusNames[kind])
		n.census[kind].Store(c)
	}
	c.Inc()
}

// censusNames spells each census kind the way "%T" would a value of the
// type ("proto.ExecRequest"), the counter-name convention of E6.
var censusNames = [censusKinds]string{
	censusExecRequest:     "proto.ExecRequest",
	censusExecReply:       "proto.ExecReply",
	censusVoteRequest:     "proto.VoteRequest",
	censusVoteReply:       "proto.VoteReply",
	censusDecision:        "proto.Decision",
	censusAck:             "proto.Ack",
	censusResolveRequest:  "proto.ResolveRequest",
	censusResolveReply:    "proto.ResolveReply",
	censusRepBegin:        "proto.RepBegin",
	censusRepAccept:       "proto.RepAccept",
	censusRepReply:        "proto.RepReply",
	censusRepNewTerm:      "proto.RepNewTerm",
	censusRepNewTermReply: "proto.RepNewTermReply",
}

// msgKind classifies a message into its census slot, or censusOther for
// types outside the protocol vocabulary.
func msgKind(msg any) int {
	switch msg.(type) {
	case proto.ExecRequest, *proto.ExecRequest:
		return censusExecRequest
	case proto.ExecReply, *proto.ExecReply:
		return censusExecReply
	case proto.VoteRequest, *proto.VoteRequest:
		return censusVoteRequest
	case proto.VoteReply, *proto.VoteReply:
		return censusVoteReply
	case proto.Decision, *proto.Decision:
		return censusDecision
	case proto.Ack, *proto.Ack:
		return censusAck
	case proto.ResolveRequest, *proto.ResolveRequest:
		return censusResolveRequest
	case proto.ResolveReply, *proto.ResolveReply:
		return censusResolveReply
	case proto.RepBegin, *proto.RepBegin:
		return censusRepBegin
	case proto.RepAccept, *proto.RepAccept:
		return censusRepAccept
	case proto.RepReply, *proto.RepReply:
		return censusRepReply
	case proto.RepNewTerm, *proto.RepNewTerm:
		return censusRepNewTerm
	case proto.RepNewTermReply, *proto.RepNewTermReply:
		return censusRepNewTermReply
	default:
		return censusOther
	}
}

// msgName spells a message type compactly for trace details and census
// counter names ("proto.ExecRequest" rather than "*proto.ExecRequest").
// The protocol messages are enumerated explicitly: formatting "%T" per
// message was one of the hottest allocations on the commit path.
func msgName(msg any) string {
	if kind := msgKind(msg); kind != censusOther {
		return censusNames[kind]
	}
	return fmt.Sprintf("%T", msg)
}

// Call delivers req to node `to` and returns its reply, modeling one-way
// latency in each direction. Message loss, partitions and crashed nodes
// surface as ErrUnreachable (after the request's one-way delay, as a
// timeout would).
func (n *Network) Call(ctx context.Context, from, to string, req any) (any, error) {
	// Emit is nil-receiver-safe, but its arguments (TxnIDOf, msgName,
	// detail concatenation) are not free; guard every emission so untraced
	// runs pay nothing.
	traced := n.tracer != nil
	n.count(req)
	if traced {
		n.tracer.Emit(from, trace.EvMsgSend, proto.TxnIDOf(req), to, msgName(req))
	}
	if err := n.clock.Sleep(ctx, n.delay(from, to)); err != nil {
		return nil, err
	}
	if n.dropped(from, to) {
		if traced {
			n.tracer.Emit(to, trace.EvMsgDrop, proto.TxnIDOf(req), from, msgName(req))
		}
		return nil, fmt.Errorf("%w: request dropped", ErrUnreachable)
	}
	h, err := n.reachable(from, to)
	if err != nil {
		if traced {
			n.tracer.Emit(to, trace.EvMsgDrop, proto.TxnIDOf(req), from, msgName(req)+" unreachable")
		}
		return nil, err
	}
	if traced {
		n.tracer.Emit(to, trace.EvMsgRecv, proto.TxnIDOf(req), from, msgName(req))
	}
	resp, err := h(ctx, from, req)
	if err != nil {
		return nil, err
	}
	n.count(resp)
	if traced {
		n.tracer.Emit(to, trace.EvMsgSend, proto.TxnIDOf(req), from, msgName(resp))
	}
	if err := n.clock.Sleep(ctx, n.delay(to, from)); err != nil {
		return nil, err
	}
	if n.dropped(to, from) {
		if traced {
			n.tracer.Emit(from, trace.EvMsgDrop, proto.TxnIDOf(req), to, msgName(resp))
		}
		return nil, fmt.Errorf("%w: reply dropped", ErrUnreachable)
	}
	// The sender may have crashed or been partitioned away while the reply
	// was in flight. (The sender need not be a registered node: pure
	// clients may call without serving.)
	st := n.state.Load()
	if st.down[from] || st.partitioned[to][from] {
		if traced {
			n.tracer.Emit(from, trace.EvMsgDrop, proto.TxnIDOf(req), to, msgName(resp)+" undeliverable")
		}
		return nil, fmt.Errorf("%w: reply undeliverable", ErrUnreachable)
	}
	if traced {
		n.tracer.Emit(from, trace.EvMsgRecv, proto.TxnIDOf(req), to, msgName(resp))
	}
	return resp, nil
}

var _ Caller = (*Network)(nil)
